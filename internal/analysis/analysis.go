// Package analysis implements simlint, the repository's determinism
// and simulation-safety static-analysis suite.
//
// The internal/sim engine promises bit-for-bit reproducible runs: one
// process executes at a time, ties are broken by insertion order, and
// all time is virtual. That promise is easy to break from outside the
// engine — a single time.Now, an unsorted map iteration feeding output,
// or a raw goroutine touching shared state silently turns exhaustive
// protocol tests into flaky ones. The analyzers in this package lint
// the whole tree for those hazards using only the standard library
// (go/ast, go/parser, go/types).
//
// Findings can be suppressed with a comment on the offending line (or
// on its own line directly above):
//
//	//simlint:ignore rule[,rule...] reason
//
// The reason is free text and should say why the construct is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the finding as "file:line: [rule] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer scope labels: how much of the program one rule reasons
// about at a time. Reported by `simlint -list` so users know whether a
// finding can depend on code far from its position.
const (
	// ScopeIntra: the rule looks at one function body at a time.
	ScopeIntra = "intraprocedural"
	// ScopeInter: the rule follows same-package calls through
	// summaries or the call graph.
	ScopeInter = "interprocedural"
	// ScopeWholePackage: the rule reasons about package-level state and
	// every function that can reach it.
	ScopeWholePackage = "whole-package"
)

// An Analyzer checks one determinism invariant over a type-checked
// package.
type Analyzer struct {
	// Name is the rule identifier used in reports and in
	// //simlint:ignore comments.
	Name string
	// Doc is a one-line description of the invariant.
	Doc string
	// Scope is one of ScopeIntra, ScopeInter, ScopeWholePackage.
	Scope string
	// AppliesTo reports whether the analyzer runs on the given
	// package. Nil means it runs everywhere.
	AppliesTo func(p *Pass) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// All returns every analyzer in the suite, in report order.
func All() []*Analyzer {
	return []*Analyzer{Nondet, MapOrder, RawGo, ErrCheck, FloatSum, MRLeak, MRPin, Offload, ReqWait, Memdomain, BufHazard, BlockCycle, CollOrder, HotAlloc, GlobalMut, FSMCheck}
}

// ByName selects analyzers from a comma-separated list, or All() when
// the list is empty. Each entry is a rule name to include, `-name` to
// exclude, or the keyword `all`; entries apply left to right, and a
// list that opens with an exclusion starts from the full set, so
// `-blockcycle` means "everything except blockcycle". The selection is
// returned in All() order and must not end up empty.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	selected := map[string]bool{}
	for i, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "all" {
			for _, a := range All() {
				selected[a.Name] = true
			}
			continue
		}
		name, exclude := strings.CutPrefix(entry, "-")
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		if exclude && i == 0 {
			for _, a := range All() {
				selected[a.Name] = true
			}
		}
		selected[name] = !exclude
	}
	var out []*Analyzer
	for _, a := range All() {
		if selected[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rule list %q selects no analyzers", list)
	}
	return out, nil
}

// Pass carries one type-checked package through the analyzers.
type Pass struct {
	Fset       *token.FileSet
	Path       string // package import path
	ModulePath string // enclosing module path ("" for loose dirs)
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	rule     string // rule currently running, for suppression checks
	findings []Finding
	// suppress maps filename -> line -> rules ignored on that line.
	suppress map[string]map[int][]string
	// callgraph and summaries cache the interprocedural layer across
	// the rules that share it (built lazily, once per pass).
	callgraph *CallGraph
	summaries map[string]*SummarySet
	// constFuncs caches the const-returning helper summaries of the
	// communication-safety rules' constant evaluator.
	constFuncs map[*types.Func]ConstVal
	// devirt caches interface devirtualization targets and the
	// function-valued-local bindings (devirt.go).
	devirt *devirtIndex
	// contracts caches the //simlint:contract directive index
	// (contracts.go).
	contracts *contractIndex
}

// NewPass assembles a pass and indexes its suppression comments.
func NewPass(fset *token.FileSet, path, modulePath string, files []*ast.File, tpkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Fset:       fset,
		Path:       path,
		ModulePath: modulePath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		suppress:   map[string]map[int][]string{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p.indexSuppression(c)
			}
		}
	}
	return p
}

const ignorePrefix = "//simlint:ignore"

// indexSuppression records a //simlint:ignore comment. The suppression
// covers the comment's own line (trailing-comment form) and the line
// directly below it (own-line form).
func (p *Pass) indexSuppression(c *ast.Comment) {
	if !strings.HasPrefix(c.Text, ignorePrefix) {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
	if len(fields) == 0 {
		return // no rule named; ignore the malformed directive
	}
	rules := strings.Split(fields[0], ",")
	pos := p.Fset.Position(c.Pos())
	byLine := p.suppress[pos.Filename]
	if byLine == nil {
		byLine = map[int][]string{}
		p.suppress[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], rules...)
	byLine[pos.Line+1] = append(byLine[pos.Line+1], rules...)
}

// suppressed reports whether rule is ignored at position.
func (p *Pass) suppressed(pos token.Position, rule string) bool {
	for _, r := range p.suppress[pos.Filename][pos.Line] {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

// Reportf records a finding for the running rule unless the position
// carries a matching suppression comment.
func (p *Pass) Reportf(at token.Pos, format string, args ...any) {
	pos := p.Fset.Position(at)
	if p.suppressed(pos, p.rule) {
		return
	}
	p.findings = append(p.findings, Finding{
		Pos:     pos,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// RunStats aggregates analysis cost when the caller asks for it
// (simlint -stats): wall time per rule, summed over packages.
type RunStats struct {
	Packages int
	RuleTime map[string]time.Duration
}

// Run executes the analyzers that apply to this package and returns
// the findings sorted by position.
func (p *Pass) Run(analyzers []*Analyzer) []Finding {
	return p.RunTimed(analyzers, nil)
}

// RunTimed is Run with per-rule wall-time attribution added to stats
// (which may be nil).
func (p *Pass) RunTimed(analyzers []*Analyzer, stats *RunStats) []Finding {
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(p) {
			continue
		}
		p.rule = a.Name
		if stats == nil {
			a.Run(p)
			continue
		}
		t0 := time.Now()
		a.Run(p)
		stats.RuleTime[a.Name] += time.Since(t0)
	}
	sort.Slice(p.findings, func(i, j int) bool {
		a, b := p.findings[i], p.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return p.findings
}

// basePath is the pass's import path with any test-package suffix
// stripped, so scope rules treat test files like the package they
// exercise.
func (p *Pass) basePath() string {
	path := strings.TrimSuffix(p.Path, TestSuffix)
	return strings.TrimSuffix(path, ExtTestSuffix)
}

// inModule reports whether the pass's package lives under the named
// module subtree (path == sub or path == module/sub...).
func (p *Pass) inModule(sub string) bool {
	if p.ModulePath == "" {
		return false
	}
	full := p.ModulePath + "/" + sub
	path := p.basePath()
	return path == full || strings.HasPrefix(path, full+"/")
}

// external reports whether the package is outside the enclosing module
// — true for the synthetic packages the golden tests load, which all
// analyzers treat as in scope.
func (p *Pass) external() bool {
	path := p.basePath()
	return p.ModulePath == "" || (path != p.ModulePath && !strings.HasPrefix(path, p.ModulePath+"/"))
}

// pkgCallee resolves a call of the form pkg.Fn(...) to the imported
// package path and function name. It returns ok=false for method
// calls, locals, and builtins.
func (p *Pass) pkgCallee(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// objOf returns the object an identifier resolves to, or nil.
func (p *Pass) objOf(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// declaredOutside reports whether e is an identifier whose declaration
// lies outside node — i.e. the loop or function literal writes state
// owned by an enclosing scope.
func (p *Pass) declaredOutside(e ast.Expr, node ast.Node) bool {
	obj := p.objOf(e)
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() > node.End()
}

// isMapType reports whether the expression's type is a map.
func (p *Pass) isMapType(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isFloat reports whether the expression's type is a floating-point
// scalar.
func (p *Pass) isFloat(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsFloat != 0
}

// isString reports whether the expression's type is a string.
func (p *Pass) isString(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsString != 0
}
