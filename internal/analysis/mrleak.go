package analysis

// MRLeak enforces the memory-registration protocol: every MR produced
// by RegMR/RegMRBuffer must reach DeregMR (directly or via defer) or
// transfer ownership out of the function on every path, and must not
// be used after deregistration. Registration crosses the PCIe command
// channel, so a leaked MR pins card-side resources for the life of the
// process.
// The verb tables (RegMR/RegMRBuffer acquire, DeregMR release) are
// populated from builtinContracts at init — see contracts.go.
var mrleakSpec = &lifecycleSpec{
	rule:       "mrleak",
	what:       "memory region",
	resultType: "MR",
	checkUse:   true,
	leakMsg:    "memory region from %s is not deregistered on every path: call DeregMR or transfer ownership before returning",
	discardMsg: "result of %s discarded: the memory region can never be deregistered",
	useMsg:     "use of memory region after DeregMR",
	doubleMsg:  "memory region may already be deregistered: double DeregMR",
}

var MRLeak = &Analyzer{
	Name:      "mrleak",
	Scope:     ScopeInter,
	Doc:       "every RegMR/RegMRBuffer result must reach DeregMR or escape on all paths; no use after dereg",
	AppliesTo: notTestPackage,
	Run:       func(p *Pass) { runLifecycle(p, mrleakSpec) },
}
