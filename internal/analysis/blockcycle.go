package analysis

import (
	"go/ast"
	"go/types"
)

// BlockCycle flags blocking point-to-point sequences that deadlock
// when every rank runs them symmetrically — the §IV-B3 protocol-switch
// trap. Two orderings are hazardous when a Send and a Recv against the
// same peer both execute on every rank (no rank-dependent guard
// decides between them):
//
//   - Send before Recv: correct while the payload fits the eager
//     limit, because the sender's eager copy completes without the
//     receiver; once the provable size exceeds EagerMax (or is not
//     provably below it) the send takes the rendezvous path, every
//     rank blocks in Send, and no rank reaches its Recv.
//   - Recv before Send: every rank waits for a message no rank has
//     sent yet — a deadlock at any size. Reported only when no earlier
//     send-type call (Send, Sendrecv, Isend — even a rank-guarded one)
//     targets the same peer, since such a call means the message may
//     already be en route.
//
// Sendrecv is exempt: it posts both sides nonblockingly and is the
// recommended fix. Peer equality must be provable (equal folded
// constants or structurally identical expressions over the same
// variables); a peer variable reassigned between the two calls can
// defeat that proof — a documented false-negative boundary.
var BlockCycle = &Analyzer{
	Name:      "blockcycle",
	Scope:     ScopeInter,
	Doc:       "no symmetric blocking Send/Recv orderings that deadlock past the eager limit",
	AppliesTo: notTestPackage,
	Run:       runBlockCycle,
}

var blockingNames = map[string]bool{"Send": true, "Recv": true, "Sendrecv": true}

func runBlockCycle(p *Pass) {
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		if !mentionsCommNames(body, blockingNames) {
			return
		}
		events, env := collectCommEvents(p, body)
		checkBlockCycle(p, env, events)
	})
}

// sendType reports whether an event puts a message toward its peer.
func sendType(k commKind) bool {
	return k == commSend || k == commSendrecv || k == commIsend
}

func checkBlockCycle(p *Pass, env *constEnv, events []*commEvent) {
	reported := map[*commEvent]bool{}
	for i, a := range events {
		if a.rankGuarded || a.afterRankExit || reported[a] {
			continue
		}
		switch a.kind {
		case commSend:
			// Symmetric send-first: a later Recv against the same peer on
			// a compatible, unguarded path.
			if v, ok := a.size.Known(); ok && v <= defaultEagerMax {
				continue // provably eager: completes without the peer
			}
			for _, b := range events[i+1:] {
				if b.kind != commRecv || b.rankGuarded || b.afterRankExit {
					continue
				}
				if !compatiblePaths(a, b) || !env.mustSameValue(a.peer, b.peer) {
					continue
				}
				p.Reportf(a.call.Pos(), "every rank blocks in Send to %s before its Recv: a payload over the %d-byte eager limit switches to rendezvous and deadlocks — use Sendrecv or Isend/Irecv", peerString(a.peer), defaultEagerMax)
				reported[a] = true
				break
			}
		case commRecv:
			// Symmetric recv-first: every rank waits before any rank
			// sends. An earlier send-type call to the same peer on a
			// compatible path (rank-guarded or not) may have put the
			// message in flight, so it suppresses the finding.
			matched := false
			for _, b := range events[i+1:] {
				if b.kind == commSend && !b.rankGuarded && !b.afterRankExit &&
					compatiblePaths(a, b) && env.mustSameValue(a.peer, b.peer) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
			sent := false
			for _, b := range events[:i] {
				if sendType(b.kind) && compatiblePaths(a, b) && env.mustSameValue(a.peer, b.peer) {
					sent = true
					break
				}
			}
			if !sent {
				p.Reportf(a.call.Pos(), "every rank blocks in Recv from %s before the matching Send runs anywhere: order the pair by rank or use Sendrecv", peerString(a.peer))
				reported[a] = true
			}
		default:
			// Only the blocking point-to-point verbs can head a symmetric
			// cycle; nonblocking posts, Sendrecv, and collectives are
			// handled by their own rules.
		}
	}
}

// peerString renders a peer expression for findings.
func peerString(e ast.Expr) string {
	if e == nil {
		return "peer"
	}
	return types.ExprString(e)
}
