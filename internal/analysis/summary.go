package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file computes per-function obligation summaries for the
// lifecycle rules. A summary records what a function does to each
// tracked parameter (borrows it, advances its protocol, releases it,
// or takes ownership) and what each result carries back (a fresh
// obligation, or a parameter's resource passed through). The dataflow
// engine consults summaries at call sites in place of the conservative
// "any unknown call escapes everything" rule, so acquire/release
// protocols split across helpers, constructors, and cleanup functions
// are still checked end to end.
//
// Summaries are computed bottom-up over the package call graph's
// strongly connected components: by the time a function is summarized,
// everything it calls (outside its own component) already has a
// summary. Recursive components start conservative (everything
// escapes) and re-summarize to a bounded fixpoint, reverting to
// conservative if they fail to stabilize.

// ParamEffect describes what a callee does to one parameter's tracked
// resource.
type ParamEffect uint8

const (
	// EffBorrow: the callee only reads the resource; the caller keeps
	// every obligation.
	EffBorrow ParamEffect = iota
	// EffAdvance: the callee advances the protocol (offload sync),
	// clearing the Unsynced obligation.
	EffAdvance
	// EffRelease: the callee discharges the release obligation on every
	// path (DeregMR behind a helper, deferred cleanup, ...).
	EffRelease
	// EffEscape: the callee stores, captures, or conditionally releases
	// the resource — ownership leaves the caller's view.
	EffEscape
)

func (e ParamEffect) String() string {
	switch e {
	case EffBorrow:
		return "borrow"
	case EffAdvance:
		return "advance"
	case EffRelease:
		return "release"
	case EffEscape:
		return "escape"
	}
	return "?"
}

// ResultEffect describes what one result position hands the caller.
type ResultEffect struct {
	// Acquires, when nonzero, is the obligation state a fresh resource
	// returned here starts in (a constructor's summary).
	Acquires State
	// FromParams lists parameter indices whose resource may be passed
	// through to this result (an identity or wrapper function).
	FromParams []int
}

func (r ResultEffect) String() string {
	var parts []string
	if r.Acquires != 0 {
		s := "acquire"
		if r.Acquires&stateUnsynced != 0 {
			s += "+unsynced"
		}
		parts = append(parts, s)
	}
	for _, j := range r.FromParams {
		parts = append(parts, fmt.Sprintf("p%d", j))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// FuncSummary is one function's obligation summary under one rule.
type FuncSummary struct {
	Params  []ParamEffect
	Results []ResultEffect
}

func (s *FuncSummary) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, e := range s.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.String())
	}
	b.WriteString(") -> (")
	for i, r := range s.Results {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(r.String())
	}
	b.WriteByte(')')
	return b.String()
}

// paramEffect returns the effect on the i-th argument, mapping excess
// arguments onto the final (variadic) parameter.
func (s *FuncSummary) paramEffect(i int) ParamEffect {
	if i < len(s.Params) {
		return s.Params[i]
	}
	if n := len(s.Params); n > 0 {
		return s.Params[n-1]
	}
	return EffBorrow
}

// interesting reports whether the summary differs from the neutral
// all-borrow summary — i.e. call sites need to consult it.
func (s *FuncSummary) interesting() bool {
	for _, e := range s.Params {
		if e != EffBorrow {
			return true
		}
	}
	return s.binds()
}

// binds reports whether any result carries tracked state back to the
// caller (a fresh obligation or a passed-through parameter).
func (s *FuncSummary) binds() bool {
	for _, r := range s.Results {
		if r.Acquires != 0 || len(r.FromParams) > 0 {
			return true
		}
	}
	return false
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if len(s.Params) != len(o.Params) || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range s.Results {
		a, b := s.Results[i], o.Results[i]
		if a.Acquires != b.Acquires || len(a.FromParams) != len(b.FromParams) {
			return false
		}
		for j := range a.FromParams {
			if a.FromParams[j] != b.FromParams[j] {
				return false
			}
		}
	}
	return true
}

// SummarySet holds one rule's summaries for every function declared in
// the package.
type SummarySet struct {
	spec  *lifecycleSpec
	funcs map[*types.Func]*FuncSummary
}

// forCall returns the summary governing a call site: the declared
// contract of the callee (a //simlint:contract directive is
// authoritative and overrides any inferred summary), the computed
// summary of a directly resolved callee (method-value calls included),
// or — for a call through an interface — the meet of every
// devirtualized target's summary. Nil means the callee is unknown or
// external and the call site falls back to the conservative escape
// rule.
func (ss *SummarySet) forCall(p *Pass, call *ast.CallExpr) *FuncSummary {
	if ss == nil {
		return nil
	}
	fn := p.calledFunc(call)
	if fn == nil {
		return nil
	}
	if s := ss.summaryOf(p, fn); s != nil {
		return s
	}
	return ss.meetOf(p, p.ifaceTargetsOf(fn))
}

// summaryOf resolves one function to its governing summary: directive
// contract first, then the computed bottom-up summary.
func (ss *SummarySet) summaryOf(p *Pass, fn *types.Func) *FuncSummary {
	if role, ok := p.contractRoleOf(fn, ss.spec.rule); ok {
		return contractSummary(ss.spec, fn, role)
	}
	return ss.funcs[fn]
}

// meetOf combines the summaries of an interface call's devirtualized
// targets into the weakest obligation every target upholds — the meet:
// a parameter is released only if every target releases it, any
// disagreement that could strand or double-discharge an obligation
// degrades to escape, and a result acquires only the obligation bits
// all targets acquire. Any target without a summary makes the whole
// call conservative (nil).
func (ss *SummarySet) meetOf(p *Pass, targets []*types.Func) *FuncSummary {
	var out *FuncSummary
	for _, t := range targets {
		s := ss.summaryOf(p, t)
		if s == nil {
			return nil
		}
		if out == nil {
			out = cloneSummary(s)
			continue
		}
		if !meetInto(out, s) {
			return nil
		}
	}
	return out
}

func cloneSummary(s *FuncSummary) *FuncSummary {
	c := &FuncSummary{
		Params:  append([]ParamEffect(nil), s.Params...),
		Results: make([]ResultEffect, len(s.Results)),
	}
	for i, r := range s.Results {
		c.Results[i] = ResultEffect{
			Acquires:   r.Acquires,
			FromParams: append([]int(nil), r.FromParams...),
		}
	}
	return c
}

// meetInto folds s into acc. It reports false on a signature-shape
// mismatch, which sends the call site back to the conservative rule.
func meetInto(acc, s *FuncSummary) bool {
	if len(acc.Params) != len(s.Params) || len(acc.Results) != len(s.Results) {
		return false
	}
	for i := range acc.Params {
		acc.Params[i] = meetEffect(acc.Params[i], s.Params[i])
	}
	for i := range acc.Results {
		acc.Results[i].Acquires &= s.Results[i].Acquires
		acc.Results[i].FromParams = unionInts(acc.Results[i].FromParams, s.Results[i].FromParams)
	}
	return true
}

// meetEffect combines two targets' effects on one parameter. Matching
// effects keep their meaning; a release on only some targets means the
// caller can neither rely on it nor release again, so it degrades to
// escape (exactly like a conditional release within one function); any
// escape wins; the remaining mix (borrow vs. advance) keeps only what
// both promise — borrow.
func meetEffect(a, b ParamEffect) ParamEffect {
	switch {
	case a == b:
		return a
	case a == EffEscape || b == EffEscape:
		return EffEscape
	case a == EffRelease || b == EffRelease:
		return EffEscape
	default:
		return EffBorrow
	}
}

// unionInts merges two sorted index slices, deduplicated and sorted.
func unionInts(a, b []int) []int {
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// mentionsAcquirer reports whether the body calls a function whose
// summary returns a fresh obligation — the widened prescreen that lets
// runLifecycle analyze functions which only create resources through
// helper constructors.
func (ss *SummarySet) mentionsAcquirer(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sum := ss.forCall(p, call); sum != nil && sum.binds() {
			found = true
			return false
		}
		return true
	})
	return found
}

// Dump renders every summary deterministically (sorted by the
// function's fully qualified name), for tests and debugging.
func (ss *SummarySet) Dump() string {
	names := make([]string, 0, len(ss.funcs))
	byName := map[string]*FuncSummary{}
	for fn, s := range ss.funcs {
		n := fn.FullName()
		names = append(names, n)
		byName[n] = s
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %s\n", n, byName[n])
	}
	return b.String()
}

// summariesFor returns the pass's summaries for one rule, computing
// and caching them on first use.
func (p *Pass) summariesFor(spec *lifecycleSpec) *SummarySet {
	if p.summaries == nil {
		p.summaries = map[string]*SummarySet{}
	}
	if ss, ok := p.summaries[spec.rule]; ok {
		return ss
	}
	ss := computeSummaries(p, spec)
	p.summaries[spec.rule] = ss
	return ss
}

// computeSummaries walks the call graph's components bottom-up.
func computeSummaries(p *Pass, spec *lifecycleSpec) *SummarySet {
	g := p.CallGraph()
	ss := &SummarySet{spec: spec, funcs: map[*types.Func]*FuncSummary{}}
	for _, scc := range g.SCCs {
		if len(scc) == 1 && !g.selfRecursive(scc[0]) {
			fn := scc[0]
			ss.funcs[fn] = summarizeFunc(p, spec, ss, fn, g.Funcs[fn])
			continue
		}
		// Recursive component: start every member conservative, then
		// re-summarize against the current summaries until a round
		// changes nothing. The bound keeps pathological components from
		// looping; on timeout they stay conservative.
		for _, fn := range scc {
			ss.funcs[fn] = conservativeSummary(fn)
		}
		converged := false
		for round := 0; round < len(scc)+2 && !converged; round++ {
			converged = true
			for _, fn := range scc {
				s := summarizeFunc(p, spec, ss, fn, g.Funcs[fn])
				if !s.equal(ss.funcs[fn]) {
					ss.funcs[fn] = s
					converged = false
				}
			}
		}
		if !converged {
			for _, fn := range scc {
				ss.funcs[fn] = conservativeSummary(fn)
			}
		}
	}
	return ss
}

// conservativeSummary assumes ownership of every tracked parameter
// transfers to the callee and nothing comes back — exactly the
// engine's historical treatment of an unknown call.
func conservativeSummary(fn *types.Func) *FuncSummary {
	sig := fn.Type().(*types.Signature)
	s := &FuncSummary{
		Params:  make([]ParamEffect, sig.Params().Len()),
		Results: make([]ResultEffect, sig.Results().Len()),
	}
	for i := range s.Params {
		s.Params[i] = EffEscape
	}
	return s
}

func neutralSummary(sig *types.Signature) *FuncSummary {
	return &FuncSummary{
		Params:  make([]ParamEffect, sig.Params().Len()),
		Results: make([]ResultEffect, sig.Results().Len()),
	}
}

// summarizeFunc runs the lifecycle dataflow over one function in
// observation mode: tracked parameters are seeded as pre-live
// resources, no findings are emitted, and the recorder classifies each
// parameter and result from the converged exit facts.
func summarizeFunc(p *Pass, spec *lifecycleSpec, ss *SummarySet, fn *types.Func, fd *ast.FuncDecl) *FuncSummary {
	sig := fn.Type().(*types.Signature)
	rec := &summaryRecorder{
		paramSite:  make([]ast.Node, sig.Params().Len()),
		acquires:   make([]State, sig.Results().Len()),
		fromParams: make([]map[int]bool, sig.Results().Len()),
	}
	entry := NewFacts()
	seed := stateLive
	if spec.trackUnsynced {
		seed |= stateUnsynced
	}
	tracked := false
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // anonymous parameter: nothing to bind
			continue
		}
		for _, name := range names {
			obj := p.Info.Defs[name]
			if obj != nil && name.Name != "_" && namedTypeName(obj.Type()) == spec.resultType {
				entry.Res[name] = seed
				entry.Bind[obj] = []ast.Node{name}
				rec.paramSite[idx] = name
				tracked = true
			}
			idx++
		}
	}
	// Cheap skip: a function that holds no tracked parameter, mentions
	// no creation verb, and calls nothing with an interesting summary
	// cannot affect this rule's obligations.
	if !tracked && !mentionsCreate(p, spec, fd.Body) && !callsInteresting(p, ss, fd.Body) {
		return neutralSummary(sig)
	}
	lf := &lifecycleFlow{p: p, spec: spec, reported: map[reportKey]bool{}, sums: ss, sum: rec}
	SolveInit(NewCFG(fd.Body), lf, entry)
	return rec.finish(spec)
}

// callsInteresting reports whether the body calls any function whose
// current summary a call site would act on.
func callsInteresting(p *Pass, ss *SummarySet, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sum := ss.forCall(p, call); sum != nil && sum.interesting() {
			found = true
			return false
		}
		return true
	})
	return found
}

// summaryRecorder observes one function's dataflow run and classifies
// its parameters and results into a FuncSummary.
type summaryRecorder struct {
	// paramSite[i] is the synthetic creation site (the parameter's
	// declaring identifier) seeded for tracked parameter i, nil for
	// untracked parameters.
	paramSite []ast.Node
	// acquires[r] accumulates the obligation bits of fresh resources
	// returned at result position r, joined over all returns.
	acquires []State
	// fromParams[r] collects parameter indices whose resource may flow
	// to result position r.
	fromParams []map[int]bool
	// exit holds the converged facts at the function's ExitCheck;
	// captured is false when the exit is unreachable (the function
	// always panics or loops).
	exit     *Facts
	captured bool
}

func (rec *summaryRecorder) paramIndexOf(site ast.Node) int {
	for i, s := range rec.paramSite {
		if s != nil && s == site {
			return i
		}
	}
	return -1
}

func (rec *summaryRecorder) captureExit(f *Facts) {
	rec.exit = f.Clone()
	rec.captured = true
}

func (rec *summaryRecorder) recordAcquire(i int, st State) {
	if i < len(rec.acquires) {
		rec.acquires[i] |= st & (stateLive | stateUnsynced)
	}
}

func (rec *summaryRecorder) addFromParam(i, j int) {
	if i >= len(rec.fromParams) {
		return
	}
	if rec.fromParams[i] == nil {
		rec.fromParams[i] = map[int]bool{}
	}
	rec.fromParams[i][j] = true
}

// recordReturnIdent classifies `return x` at result position i: sites
// bound to x that are seeded parameters become pass-throughs, live
// creation sites become acquisitions.
func (rec *summaryRecorder) recordReturnIdent(lf *lifecycleFlow, i int, id *ast.Ident, f *Facts) {
	obj := lf.p.objOf(id)
	if obj == nil {
		return
	}
	for _, site := range f.Bind[obj] {
		if j := rec.paramIndexOf(site); j >= 0 {
			rec.addFromParam(i, j)
			continue
		}
		if st := f.Res[site]; st&(stateLive|stateUnsynced) != 0 && st&stateEscaped == 0 {
			rec.recordAcquire(i, st)
		}
	}
}

// recordCallReturn propagates a summarized callee's result effects
// when its call is returned directly (`return helper(...)`). With a
// single return expression spreading a multi-result callee, callee
// result r maps to our result r; otherwise the callee is single-result
// and maps to position i.
func (rec *summaryRecorder) recordCallReturn(lf *lifecycleFlow, i, nresults int, call *ast.CallExpr, sum *FuncSummary, f *Facts) {
	for r, re := range sum.Results {
		target := i
		if nresults == 1 && len(sum.Results) > 1 {
			target = r
		}
		if target >= len(rec.acquires) {
			continue
		}
		rec.acquires[target] |= re.Acquires
		for _, j := range re.FromParams {
			if j >= len(call.Args) {
				continue
			}
			id, ok := unparen(call.Args[j]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := lf.p.objOf(id)
			if obj == nil {
				continue
			}
			for _, site := range f.Bind[obj] {
				if k := rec.paramIndexOf(site); k >= 0 {
					rec.addFromParam(target, k)
				} else if st := f.Res[site]; st&(stateLive|stateUnsynced) != 0 {
					rec.recordAcquire(target, st)
				}
			}
		}
	}
}

// finish classifies the converged facts into the summary. Precedence
// per parameter: escape beats release beats advance beats borrow, and
// a resource released on only some paths escapes (the caller can
// neither rely on the release nor release again safely).
func (rec *summaryRecorder) finish(spec *lifecycleSpec) *FuncSummary {
	s := &FuncSummary{
		Params:  make([]ParamEffect, len(rec.paramSite)),
		Results: make([]ResultEffect, len(rec.acquires)),
	}
	if !rec.captured {
		// The exit is unreachable: the function never returns, so the
		// caller gets nothing back and must not rely on any effect.
		for i, site := range rec.paramSite {
			if site != nil {
				s.Params[i] = EffEscape
			}
		}
		return s
	}
	for i, site := range rec.paramSite {
		if site == nil {
			continue // untracked type: borrow by definition
		}
		st, ok := rec.exit.Res[site]
		switch {
		case !ok:
			// Dropped on every path by nil refinement: no effect.
		case st&stateEscaped != 0:
			s.Params[i] = EffEscape
		case st&stateReleased != 0 && st&stateLive == 0:
			s.Params[i] = EffRelease
		case st&stateReleased != 0:
			s.Params[i] = EffEscape // conditional release
		case spec.trackUnsynced && st&stateUnsynced == 0:
			s.Params[i] = EffAdvance
		}
	}
	for r := range rec.acquires {
		s.Results[r].Acquires = rec.acquires[r]
		if m := rec.fromParams[r]; len(m) > 0 {
			for j := range m {
				s.Results[r].FromParams = append(s.Results[r].FromParams, j)
			}
			sort.Ints(s.Results[r].FromParams)
		}
	}
	return s
}
