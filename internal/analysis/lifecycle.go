package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared engine behind the four flow-sensitive
// lifecycle rules (mrleak, mrpin, offload, reqwait). Each rule is a
// lifecycleSpec — a small state machine over the protocol's verbs —
// and the engine runs it as a forward may-dataflow problem over every
// function's CFG:
//
//   - a create verb (RegMR, MRCache.Get, RegOffloadMR, Isend/Irecv)
//     starts tracking its call site with the Live obligation;
//   - a release verb (DeregMR, Release, DeregOffloadMR, Wait/WaitAll)
//     discharges the obligation and arms use-after-release detection;
//   - an advance verb (SyncOffloadMR) moves the offload protocol from
//     registered to synced, unlocking RDMA posts;
//   - escaping the function (stored into a field/slice/map/global,
//     passed to a non-verb call, captured by a closure, returned, sent
//     on a channel) transfers ownership and ends tracking.
//
// A resource still Live at a return (or at the implicit fall-off-the-
// end exit) leaks on that path and is reported at its creation site.
// Error results assigned alongside a creation are paired with it, so
// the `if err != nil { return err }` guard does not count as a leak:
// on the err-non-nil edge the resource is known nil and the obligation
// is dropped. Paths ending in panic/os.Exit/log.Fatal never reach the
// exit and carry no obligations.

// Lifecycle states. Live and Unsynced mark pending obligations;
// Released arms use-after-release checks; Deferred means a `defer
// <release>(x)` registered on this path will discharge the obligation
// when the exit block's DeferRun executes; Escaped means ownership left
// the function's view (stored, captured, passed to an owning callee) —
// the site stays in the fact map as a tombstone so interprocedural
// summaries can observe the escape, but carries no obligation and is
// exempt from use/double-release checks.
const (
	stateLive State = 1 << iota
	stateUnsynced
	stateReleased
	stateDeferred
	stateEscaped
)

// actionable reports whether checks still apply to a site: once it
// escapes, the function no longer owns the protocol obligations.
func actionable(st State) bool {
	return st&stateEscaped == 0
}

// verb classifies what a call does to a protocol's resource.
type verb int

const (
	verbNone verb = iota
	verbCreate
	verbAdvance
	verbRelease
	verbTestRelease // releases only when the call's result is true
)

// lifecycleSpec describes one resource protocol.
type lifecycleSpec struct {
	rule string
	// what names the resource in findings ("memory region", ...).
	what string
	// resultType is the named type of the created value ("MR",
	// "OffloadMR", "Request"); creation calls must return a pointer to
	// it as their first result.
	resultType string
	// createNames / createRecv select the creating calls; empty
	// createRecv accepts any receiver.
	createNames map[string]bool
	createRecv  string
	// releaseNames / releaseRecv select the releasing calls.
	releaseNames map[string]bool
	releaseRecv  string
	// advanceNames select the protocol-advancing calls (offload sync).
	advanceNames map[string]bool
	// testNames select calls that release only on a true result (Test).
	testNames map[string]bool
	// trackUnsynced arms the ordered-use check: creation starts in
	// Live|Unsynced and uses matched by postPrefix/orderFields while
	// Unsynced are wrong-order findings.
	trackUnsynced bool
	postPrefix    string
	orderFields   map[string]bool
	// checkUse arms use-after-release reporting.
	checkUse bool

	// Finding messages. leakMsg and discardMsg receive the creating
	// call's name; the others are fixed.
	leakMsg    string
	discardMsg string
	useMsg     string
	doubleMsg  string
	orderMsg   string
}

// lifecycleSpecs returns the four protocol-rule specs in report order,
// for the pooled interprocedural corpus and the summary-dump tests.
func lifecycleSpecs() []*lifecycleSpec {
	return []*lifecycleSpec{mrleakSpec, mrpinSpec, offloadSpec, reqwaitSpec}
}

// notTestPackage keeps the lifecycle rules off _test.go passes: tests
// tear whole simulated machines down at once and intentionally
// exercise double-free and wrong-order error paths.
func notTestPackage(p *Pass) bool {
	return !strings.HasSuffix(p.Path, TestSuffix) && !strings.HasSuffix(p.Path, ExtTestSuffix)
}

// runLifecycle analyzes every function declaration and function
// literal in the pass against one protocol spec.
func runLifecycle(p *Pass, spec *lifecycleSpec) {
	sums := p.summariesFor(spec)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			// Prescreen: run only where a creation verb appears directly
			// or a helper constructor (per its summary) can acquire.
			if body != nil && (mentionsCreate(p, spec, body) || sums.mentionsAcquirer(p, body)) {
				lf := &lifecycleFlow{p: p, spec: spec, reported: map[reportKey]bool{}, sums: sums}
				Solve(NewCFG(body), lf)
			}
			return true
		})
	}
}

// mentionsCreate cheaply pre-screens a body for the spec's creation
// verbs — builtin names plus any names declared acquire by a
// //simlint:contract directive in this pass — so the CFG + solver only
// run where they can matter. Nested function literals are skipped:
// they are analyzed on their own.
func mentionsCreate(p *Pass, spec *lifecycleSpec, body *ast.BlockStmt) bool {
	acquirers := p.contractAcquireNames(spec.rule)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && (spec.createNames[sel.Sel.Name] || acquirers[sel.Sel.Name]) {
			found = true
			return false
		}
		return true
	})
	return found
}

// reportKey dedups findings across the converged-facts replay: a leak
// is reported once per creation site even when several returns leak it.
type reportKey struct {
	pos  token.Pos
	kind byte
}

// lifecycleFlow adapts one spec to the dataflow solver for one
// function body.
type lifecycleFlow struct {
	p        *Pass
	spec     *lifecycleSpec
	reported map[reportKey]bool
	// sums holds the package's interprocedural summaries for this spec;
	// call sites consult it before falling back to the conservative
	// everything-escapes rule.
	sums *SummarySet
	// sum, when non-nil, marks summary-computation mode: the flow runs
	// silently (no findings) and records what the function does to its
	// parameters and results.
	sum *summaryRecorder
}

func (lf *lifecycleFlow) reportOnce(pos token.Pos, kind byte, format string, args ...any) {
	if lf.sum != nil {
		return // summary mode is observational: never report
	}
	k := reportKey{pos, kind}
	if lf.reported[k] {
		return
	}
	lf.reported[k] = true
	lf.p.Reportf(pos, format, args...)
}

// classify resolves what a call does under this spec: the builtin
// verb tables first (selector calls and calls through method-valued
// locals), then any //simlint:contract directive on the resolved
// callee.
func (lf *lifecycleFlow) classify(call *ast.CallExpr) verb {
	spec := lf.spec
	var name, recv string
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = recvTypeName(lf.p, call)
	case *ast.Ident:
		// A call through a function-valued local classifies only when
		// it is singly bound to a method value (`f := rank.Isend`);
		// plain local function calls are governed by their summaries.
		if _, direct := lf.p.Info.Uses[fun].(*types.Func); !direct {
			if fn := lf.p.methodValue(fun); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					name = fn.Name()
					recv = namedTypeName(sig.Recv().Type())
				}
			}
		}
	default:
		return verbNone
	}
	if name != "" {
		switch {
		case spec.createNames[name]:
			if (spec.createRecv == "" || recv == spec.createRecv) &&
				callResultTypeName(lf.p, call, 0) == spec.resultType {
				return verbCreate
			}
		case spec.releaseNames[name]:
			if spec.releaseRecv == "" || recv == spec.releaseRecv {
				return verbRelease
			}
		case spec.advanceNames[name]:
			return verbAdvance
		case spec.testNames[name]:
			return verbTestRelease
		}
	}
	if fn := lf.p.calledFunc(call); fn != nil {
		if role, ok := lf.p.contractRoleOf(fn, spec.rule); ok {
			switch role {
			case roleAcquire:
				if callResultTypeName(lf.p, call, 0) == spec.resultType {
					return verbCreate
				}
			case roleRelease:
				return verbRelease
			case roleAdvance:
				return verbAdvance
			case roleTest:
				return verbTestRelease
			default:
				// borrow and pass carry no verb: they act through the
				// synthesized summary (contractSummary) instead.
			}
		}
	}
	return verbNone
}

// recvTypeName returns the named type of a method call's receiver, or
// "" for non-method calls, package-qualified calls, and unnamed
// receivers.
func recvTypeName(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
			return ""
		}
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	return namedTypeName(tv.Type)
}

// callResultTypeName returns the named type of the call's i-th result
// (pointers dereferenced), or "".
func callResultTypeName(p *Pass, call *ast.CallExpr, i int) string {
	sig := p.calleeSignature(call)
	if sig == nil || sig.Results().Len() <= i {
		return ""
	}
	return namedTypeName(sig.Results().At(i).Type())
}

// namedTypeName unwraps pointers and returns the named type's name.
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// callName returns the called name of a creating call site — the
// selector for method/package calls, the identifier for local helper
// constructors.
func callName(site ast.Node) string {
	if call, ok := site.(*ast.CallExpr); ok {
		switch fun := unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name
		case *ast.Ident:
			return fun.Name
		}
	}
	return "create"
}

// initState is the state a freshly created resource starts in.
func (lf *lifecycleFlow) initState() State {
	if lf.spec.trackUnsynced {
		return stateLive | stateUnsynced
	}
	return stateLive
}

// ---- FlowProblem implementation ----

func (lf *lifecycleFlow) Transfer(n ast.Node, f *Facts, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		lf.assign(n.Lhs, n.Rhs, f, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					lf.assign(lhs, vs.Values, f, report)
					continue
				}
				// `var x T` zeroes x: drop bindings the loop back-edge
				// may have carried in from a prior iteration.
				for _, id := range vs.Names {
					if obj := lf.p.objOf(id); obj != nil {
						delete(f.Bind, obj)
					}
				}
			}
		}
	case *ast.ExprStmt:
		lf.scanExpr(n.X, f, report)
	case *ast.ReturnStmt:
		for i, e := range n.Results {
			lf.scanExpr(e, f, report)
			if call, ok := unparen(e).(*ast.CallExpr); ok {
				// Returning a protocol verb's own result (`return
				// v.SyncOffloadMR(p, omr, ...)`) hands the caller an error
				// value, not the resource: the obligation stays here.
				if v := lf.classify(call); v != verbNone {
					if lf.sum != nil && report && v == verbCreate {
						lf.sum.recordAcquire(i, lf.initState())
					}
					continue
				}
				// A summarized callee in return position: call() above
				// already applied its effects, and its result effects
				// propagate into this function's own summary.
				if sum := lf.sums.forCall(lf.p, call); sum != nil {
					if lf.sum != nil {
						if report {
							lf.sum.recordCallReturn(lf, i, len(n.Results), call, sum, f)
						}
					} else {
						// `return pass(mr)`: a pass-through result hands the
						// argument's resource to the caller, so its obligation
						// leaves with the return value. (An acquired result was
						// never bound here — nothing to discharge for it.)
						lf.escapePassThroughArgs(call, sum, f)
					}
					continue
				}
			}
			if lf.sum != nil {
				// Observation mode: keep returned locals live so the exit
				// facts classify them (pass-through vs. acquisition).
				if id, ok := unparen(e).(*ast.Ident); ok {
					if report {
						lf.sum.recordReturnIdent(lf, i, id, f)
					}
					continue
				}
			}
			lf.escapeIdents(e, f)
		}
	case *ImplicitReturn:
		// Leak checking happens at the exit block's ExitCheck, after
		// deferred cleanups have run.
	case *DeferRun:
		lf.deferRun(n, f)
	case *ExitCheck:
		if report {
			if lf.sum != nil {
				lf.sum.captureExit(f)
			} else {
				lf.leakCheck(f)
			}
		}
	case *ast.DeferStmt:
		lf.deferStmt(n, f, report)
	case *ast.GoStmt:
		lf.scanExpr(n.Call, f, report)
		lf.escapeIdents(n.Call, f)
	case *ast.SendStmt:
		lf.scanExpr(n.Chan, f, report)
		lf.scanExpr(n.Value, f, report)
		lf.escapeIdents(n.Value, f)
	case *ast.IncDecStmt:
		lf.scanExpr(n.X, f, report)
	case *ast.RangeStmt:
		lf.rangeHead(n, f, report)
	case *ast.LabeledStmt, *ast.EmptyStmt:
		// no effect
	default:
		if e, ok := n.(ast.Expr); ok {
			lf.scanExpr(e, f, report) // condition leaves, switch tags, case exprs
		}
	}
}

// rangeHead handles the loop-head node of a range statement: ranging
// over a tracked slice aliases the value variable to its sites.
func (lf *lifecycleFlow) rangeHead(n *ast.RangeStmt, f *Facts, report bool) {
	lf.scanExpr(n.X, f, report)
	xid, ok := unparen(n.X).(*ast.Ident)
	if !ok {
		return
	}
	xobj := lf.p.objOf(xid)
	if xobj == nil || len(f.Bind[xobj]) == 0 || n.Value == nil {
		return
	}
	if vid, ok := n.Value.(*ast.Ident); ok && vid.Name != "_" {
		if vobj := lf.p.objOf(vid); vobj != nil {
			f.Bind[vobj] = append([]ast.Node(nil), f.Bind[xobj]...)
		}
	}
}

// assign handles assignment-shaped nodes: creations bind, appends
// transfer, bare copies alias, writes into non-local storage escape,
// and overwrites kill stale bindings and error pairings.
func (lf *lifecycleFlow) assign(lhs, rhs []ast.Expr, f *Facts, report bool) {
	// Creation: lhs... := create(...)
	if len(rhs) == 1 {
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			if lf.classify(call) == verbCreate {
				for _, a := range call.Args {
					lf.scanExpr(a, f, report)
				}
				lf.bindCreate(lhs, call, f, report)
				return
			}
			// A summarized callee whose results carry tracked state: a
			// helper constructor acquires a fresh obligation here, a
			// wrapper passes a parameter's resource through to the LHS.
			if sum := lf.sums.forCall(lf.p, call); sum != nil && sum.binds() {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					lf.scanExpr(sel.X, f, report)
				}
				for i, a := range call.Args {
					if sum.paramEffect(i) == EffRelease {
						if _, ok := unparen(a).(*ast.Ident); ok {
							// Mirrors call(): handing a resource to a
							// releasing helper is the release itself, not
							// a read — applySummaryCall below reports the
							// double release if there is one.
							continue
						}
					}
					lf.scanExpr(a, f, report)
				}
				lf.applySummaryCall(call, sum, f, report)
				lf.bindSummaryResults(lhs, call, sum, f, report)
				return
			}
		}
	}
	bound := make([]bool, len(lhs))
	if len(lhs) == len(rhs) {
		for i := range lhs {
			lid, lok := lhs[i].(*ast.Ident)
			if !lok || lid.Name == "_" {
				continue
			}
			lobj := lf.p.objOf(lid)
			if lobj == nil {
				continue
			}
			switch r := unparen(rhs[i]).(type) {
			case *ast.Ident:
				// Alias copy: x := mr.
				if robj := lf.p.objOf(r); robj != nil {
					if sites := f.Bind[robj]; len(sites) > 0 {
						f.Bind[lobj] = append([]ast.Node(nil), sites...)
						bound[i] = true
					}
				}
			case *ast.CallExpr:
				// Transfer: reqs = append(reqs, q, ...).
				if lf.isBuiltinAppend(r) {
					var sites []ast.Node
					for _, a := range r.Args {
						if aid, ok := unparen(a).(*ast.Ident); ok {
							if aobj := lf.p.objOf(aid); aobj != nil {
								sites, _ = unionSites(sites, f.Bind[aobj])
							}
						} else {
							lf.scanExpr(a, f, report)
							lf.escapeIdents(a, f)
						}
					}
					if len(sites) > 0 {
						f.Bind[lobj] = sites
						bound[i] = true
					}
				}
			}
		}
	}
	for i, r := range rhs {
		if i < len(bound) && bound[i] {
			continue // alias/append already handled; don't escape
		}
		lf.scanExpr(r, f, report)
		// A tracked value assigned anywhere but a plain local variable
		// (field, element, dereference) escapes the function's view.
		target := lhs[0]
		if len(lhs) == len(rhs) {
			target = lhs[i]
		}
		if _, isIdent := target.(*ast.Ident); !isIdent {
			lf.escapeIdents(r, f)
		}
	}
	// Overwrites: a plain local LHS that did not take a tracked value
	// loses any stale binding, and reassigning an error variable
	// invalidates pairings that referred to its previous value.
	for i, l := range lhs {
		lid, ok := l.(*ast.Ident)
		if !ok || lid.Name == "_" {
			continue
		}
		lobj := lf.p.objOf(lid)
		if lobj == nil {
			continue
		}
		if i >= len(bound) || !bound[i] {
			delete(f.Bind, lobj)
		}
		for site, eobj := range f.Pair {
			if eobj == lobj {
				f.Pair[site] = nil // tombstone: refinement no longer valid
			}
		}
	}
}

// bindCreate starts tracking a creation call assigned to locals.
func (lf *lifecycleFlow) bindCreate(lhs []ast.Expr, call *ast.CallExpr, f *Facts, report bool) {
	// Invalidate pairings through any overwritten error variable first.
	for _, l := range lhs {
		if lid, ok := l.(*ast.Ident); ok && lid.Name != "_" {
			if lobj := lf.p.objOf(lid); lobj != nil {
				for site, eobj := range f.Pair {
					if eobj == lobj {
						f.Pair[site] = nil
					}
				}
			}
		}
	}
	switch target := lhs[0].(type) {
	case *ast.Ident:
		if target.Name == "_" {
			if report {
				lf.reportOnce(call.Pos(), 'd', lf.spec.discardMsg, callName(call))
			}
			return
		}
		obj := lf.p.objOf(target)
		if obj == nil {
			return
		}
		f.Res[call] = lf.initState()
		f.Bind[obj] = []ast.Node{call}
		// Pair the error result assigned in the same statement.
		if len(lhs) >= 2 {
			if eid, ok := lhs[len(lhs)-1].(*ast.Ident); ok && eid.Name != "_" && eid != target {
				if eobj := lf.p.objOf(eid); eobj != nil {
					f.Pair[call] = eobj
				}
			}
		}
	default:
		// Stored straight into a field/element: ownership escapes.
		lf.scanExpr(lhs[0], f, report)
	}
}

// bindSummaryResults binds the results of a summarized call to the
// assignment's targets: an acquiring result starts tracking the call
// site with the summary's obligation state (discarding it to `_` is a
// finding, as with a direct creation), and a pass-through result
// aliases the LHS to the argument's existing sites.
func (lf *lifecycleFlow) bindSummaryResults(lhs []ast.Expr, call *ast.CallExpr, sum *FuncSummary, f *Facts, report bool) {
	// Invalidate pairings through any overwritten error variable first.
	for _, l := range lhs {
		if lid, ok := l.(*ast.Ident); ok && lid.Name != "_" {
			if lobj := lf.p.objOf(lid); lobj != nil {
				for site, eobj := range f.Pair {
					if eobj == lobj {
						f.Pair[site] = nil
					}
				}
			}
		}
	}
	acquired := false
	for r := 0; r < len(lhs) && r < len(sum.Results); r++ {
		re := sum.Results[r]
		lid, ok := lhs[r].(*ast.Ident)
		if !ok {
			// Stored straight into a field/element: ownership escapes
			// immediately — nothing to track, nothing leaked here.
			continue
		}
		if lid.Name == "_" {
			if re.Acquires != 0 && report {
				lf.reportOnce(call.Pos(), 'd', lf.spec.discardMsg, callName(call))
			}
			continue
		}
		lobj := lf.p.objOf(lid)
		if lobj == nil {
			continue
		}
		var sites []ast.Node
		// One acquiring result per call keeps the call expression usable
		// as the creation-site key (constructors return (*T, error)).
		if re.Acquires != 0 && !acquired {
			acquired = true
			f.Res[call] = re.Acquires
			sites = append(sites, call)
			if len(lhs) >= 2 {
				if eid, ok := lhs[len(lhs)-1].(*ast.Ident); ok && eid.Name != "_" && eid != lid {
					if eobj := lf.p.objOf(eid); eobj != nil {
						f.Pair[call] = eobj
					}
				}
			}
		}
		for _, j := range re.FromParams {
			if j >= len(call.Args) {
				continue
			}
			if aid, ok := unparen(call.Args[j]).(*ast.Ident); ok {
				if aobj := lf.p.objOf(aid); aobj != nil {
					sites, _ = unionSites(sites, f.Bind[aobj])
				}
			}
		}
		if len(sites) > 0 {
			f.Bind[lobj] = sites
		} else {
			delete(f.Bind, lobj)
		}
	}
	// Targets past the summarized results (or untracked ones handled
	// above) lose any stale binding.
	for r := len(sum.Results); r < len(lhs); r++ {
		if lid, ok := lhs[r].(*ast.Ident); ok && lid.Name != "_" {
			if lobj := lf.p.objOf(lid); lobj != nil {
				delete(f.Bind, lobj)
			}
		}
	}
}

// deferStmt handles the registration of a deferred call: a deferred
// release arms the Deferred state on this path (the exit block's
// DeferRun completes the transition to Released); any other deferred
// call that mentions a tracked value is treated as an owning cleanup
// (escape).
func (lf *lifecycleFlow) deferStmt(n *ast.DeferStmt, f *Facts, report bool) {
	switch lf.classify(n.Call) {
	case verbRelease:
		lf.releaseArgs(n.Call, f, report, stateDeferred)
	case verbAdvance:
		lf.advanceArgs(n.Call, f, report)
	default:
		// A deferred cleanup helper whose summary releases a parameter
		// arms the Deferred state just like a direct deferred release.
		if sum := lf.sums.forCall(lf.p, n.Call); sum != nil {
			for i, a := range n.Call.Args {
				id, ok := unparen(a).(*ast.Ident)
				if !ok {
					lf.scanExpr(a, f, report)
					if sum.paramEffect(i) == EffEscape {
						lf.escapeIdents(a, f)
					}
					continue
				}
				obj := lf.p.objOf(id)
				if obj == nil {
					continue
				}
				switch sum.paramEffect(i) {
				case EffRelease:
					for _, site := range f.Bind[obj] {
						st, tracked := f.Res[site]
						if !tracked || !actionable(st) {
							continue
						}
						if report && (mustReleased(st) || st&stateDeferred != 0) {
							lf.reportOnce(n.Call.Pos(), '2', "%s", lf.spec.doubleMsg)
						}
						f.Res[site] = st&^(stateLive|stateUnsynced) | stateDeferred
					}
				case EffEscape:
					lf.escapeObj(obj, f)
				default:
					// Borrow keeps every obligation with the caller, and a
					// deferred advance has no protocol meaning here.
				}
			}
			return
		}
		lf.scanExpr(n.Call, f, report)
		lf.escapeIdents(n.Call, f)
	}
}

// deferRun executes one deferred call at an exit (or on a panic path):
// sites armed Deferred by the registering statement complete their
// release. Paths that never reached the defer statement carry no
// Deferred bit and are unaffected — the gate is the dataflow fact, not
// the CFG node.
func (lf *lifecycleFlow) deferRun(n *DeferRun, f *Facts) {
	call := n.Defer.Call
	var sum *FuncSummary
	if lf.classify(call) != verbRelease {
		if sum = lf.sums.forCall(lf.p, call); sum == nil {
			return
		}
	}
	for i, a := range call.Args {
		if sum != nil && sum.paramEffect(i) != EffRelease {
			continue
		}
		id, ok := unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		obj := lf.p.objOf(id)
		if obj == nil {
			continue
		}
		for _, site := range f.Bind[obj] {
			if st, tracked := f.Res[site]; tracked && st&stateDeferred != 0 {
				f.Res[site] = st&^stateDeferred | stateReleased
			}
		}
	}
}

// scanExpr walks an expression for protocol verbs, uses of tracked
// values (use-after-release, wrong-order posts), and escapes.
func (lf *lifecycleFlow) scanExpr(e ast.Expr, f *Facts, report bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		lf.useIdent(e, f, report)
	case *ast.SelectorExpr:
		if id, ok := unparen(e.X).(*ast.Ident); ok {
			lf.checkOrderField(id, e.Sel.Name, f, report)
		}
		lf.scanExpr(e.X, f, report)
	case *ast.CallExpr:
		lf.call(e, f, report)
	case *ast.FuncLit:
		lf.escapeFuncLit(e, f)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			lf.scanExpr(el, f, report)
			lf.escapeIdents(el, f)
		}
	case *ast.KeyValueExpr:
		lf.scanExpr(e.Key, f, report)
		lf.scanExpr(e.Value, f, report)
	case *ast.ParenExpr:
		lf.scanExpr(e.X, f, report)
	case *ast.UnaryExpr:
		lf.scanExpr(e.X, f, report)
		if e.Op == token.AND {
			lf.escapeIdents(e.X, f) // address taken: aliases unknown
		}
	case *ast.StarExpr:
		lf.scanExpr(e.X, f, report)
	case *ast.BinaryExpr:
		lf.scanExpr(e.X, f, report)
		lf.scanExpr(e.Y, f, report)
	case *ast.IndexExpr:
		lf.scanExpr(e.X, f, report)
		lf.scanExpr(e.Index, f, report)
	case *ast.SliceExpr:
		lf.scanExpr(e.X, f, report)
		lf.scanExpr(e.Low, f, report)
		lf.scanExpr(e.High, f, report)
		lf.scanExpr(e.Max, f, report)
	case *ast.TypeAssertExpr:
		lf.scanExpr(e.X, f, report)
	}
}

// call dispatches one call expression.
func (lf *lifecycleFlow) call(call *ast.CallExpr, f *Facts, report bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		lf.scanExpr(sel.X, f, report)
	} else if _, ok := call.Fun.(*ast.Ident); !ok {
		lf.scanExpr(call.Fun, f, report)
	}
	switch lf.classify(call) {
	case verbCreate:
		// Result not assigned to a local (checked in assign): the
		// value flows elsewhere immediately — untracked by design.
		for _, a := range call.Args {
			lf.scanExpr(a, f, report)
		}
	case verbAdvance:
		lf.advanceArgs(call, f, report)
	case verbRelease:
		lf.releaseArgs(call, f, report, stateReleased)
	case verbTestRelease:
		// The call may complete the resource, so the Live obligation is
		// weakly discharged (no Released bit, no double-release report);
		// when the call is a branch condition, Refine upgrades the true
		// edge to a full release.
		for _, a := range call.Args {
			id, ok := unparen(a).(*ast.Ident)
			if !ok {
				lf.scanExpr(a, f, report)
				continue
			}
			obj := lf.p.objOf(id)
			if obj == nil {
				continue
			}
			for _, site := range f.Bind[obj] {
				if st, tracked := f.Res[site]; tracked && actionable(st) {
					f.Res[site] = st &^ (stateLive | stateUnsynced)
				}
			}
		}
	default:
		if lf.isBuiltinAppend(call) {
			// Binding transfer happens at the assignment level; a bare
			// append cannot escape the elements it copies.
			for _, a := range call.Args {
				if !lf.isBoundIdent(a, f) {
					lf.scanExpr(a, f, report)
				}
			}
			return
		}
		sum := lf.sums.forCall(lf.p, call)
		for i, a := range call.Args {
			if sum != nil && sum.paramEffect(i) == EffRelease {
				if _, ok := unparen(a).(*ast.Ident); ok {
					// Mirrors releaseArgs: handing a resource to a
					// releasing helper is the release itself, not a
					// read, so it must not double-report as a use.
					continue
				}
			}
			lf.scanExpr(a, f, report)
		}
		lf.checkPostCall(call, f, report)
		if lf.isPostCall(call) {
			// An RDMA post reads the region but does not take
			// ownership: the poster still owes the dereg.
			return
		}
		// A same-package callee with a summary: apply its per-parameter
		// effects instead of assuming everything escapes.
		if sum != nil {
			lf.applySummaryCall(call, sum, f, report)
			return
		}
		for _, a := range call.Args {
			lf.escapeIdents(a, f)
		}
	}
}

// escapePassThroughArgs marks arguments a summarized callee may pass
// through to its results as escaped: when the call itself is returned,
// those resources travel to the caller with the result, so the
// obligation no longer sits on this function's binding.
func (lf *lifecycleFlow) escapePassThroughArgs(call *ast.CallExpr, sum *FuncSummary, f *Facts) {
	for _, re := range sum.Results {
		for _, j := range re.FromParams {
			if j < len(call.Args) {
				lf.escapeIdents(call.Args[j], f)
			}
		}
	}
}

// applySummaryCall transfers a summarized callee's parameter effects
// onto the caller's tracked arguments: borrows leave the obligation in
// place, advances and releases mirror the direct verbs (including
// double-release and use-after-release detection through the helper),
// and escapes tombstone the sites exactly like the conservative rule.
func (lf *lifecycleFlow) applySummaryCall(call *ast.CallExpr, sum *FuncSummary, f *Facts, report bool) {
	for i, a := range call.Args {
		eff := sum.paramEffect(i)
		id, ok := unparen(a).(*ast.Ident)
		if !ok {
			if eff == EffEscape {
				lf.escapeIdents(a, f)
			}
			continue
		}
		obj := lf.p.objOf(id)
		if obj == nil {
			continue
		}
		switch eff {
		case EffBorrow:
			// Caller keeps every obligation.
		case EffAdvance:
			for _, site := range f.Bind[obj] {
				st, tracked := f.Res[site]
				if !tracked || !actionable(st) {
					continue
				}
				if report && lf.spec.checkUse && mustReleased(st) {
					lf.reportOnce(call.Pos(), 'u', "%s", lf.spec.useMsg)
				}
				f.Res[site] = st &^ stateUnsynced
			}
		case EffRelease:
			for _, site := range f.Bind[obj] {
				st, tracked := f.Res[site]
				if !tracked || !actionable(st) {
					continue
				}
				if report && (mustReleased(st) || st&stateDeferred != 0) {
					lf.reportOnce(call.Pos(), '2', "%s", lf.spec.doubleMsg)
				}
				f.Res[site] = st&^(stateLive|stateUnsynced) | stateReleased
			}
		case EffEscape:
			lf.escapeObj(obj, f)
		}
	}
}

// isPostCall reports whether the call is an RDMA posting verb under a
// spec that orders posts (offload).
func (lf *lifecycleFlow) isPostCall(call *ast.CallExpr) bool {
	if lf.spec.postPrefix == "" {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && strings.HasPrefix(sel.Sel.Name, lf.spec.postPrefix)
}

// isBoundIdent reports whether e is a bare identifier currently bound
// to tracked sites.
func (lf *lifecycleFlow) isBoundIdent(e ast.Expr, f *Facts) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := lf.p.objOf(id)
	return obj != nil && len(f.Bind[obj]) > 0
}

// isBuiltinAppend reports whether the call is the predeclared append.
func (lf *lifecycleFlow) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := lf.p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// useIdent flags a read of a tracked value that may already be
// released.
func (lf *lifecycleFlow) useIdent(id *ast.Ident, f *Facts, report bool) {
	if !report || !lf.spec.checkUse {
		return
	}
	obj := lf.p.objOf(id)
	if obj == nil {
		return
	}
	for _, site := range f.Bind[obj] {
		if st := f.Res[site]; actionable(st) && mustReleased(st) {
			lf.reportOnce(id.Pos(), 'u', "%s", lf.spec.useMsg)
			return
		}
	}
}

// mustReleased reports whether a may-state proves the resource is
// released on every path reaching this point: the Released bit is set
// and no path still holds it Live. Requiring the Live bit clear keeps
// loop back-edges quiet — a site released last iteration and
// re-created this one joins to Live|Released, which is fine.
func mustReleased(st State) bool {
	return st&stateReleased != 0 && st&stateLive == 0
}

// checkOrderField flags access to posting fields of an unsynced
// offload MR (omr.HostBuf / omr.HostMR before SyncOffloadMR).
func (lf *lifecycleFlow) checkOrderField(id *ast.Ident, field string, f *Facts, report bool) {
	if !report || !lf.spec.trackUnsynced || !lf.spec.orderFields[field] {
		return
	}
	obj := lf.p.objOf(id)
	if obj == nil {
		return
	}
	for _, site := range f.Bind[obj] {
		if f.Res[site]&stateUnsynced != 0 {
			lf.reportOnce(id.Pos(), 'o', "%s", lf.spec.orderMsg)
			return
		}
	}
}

// checkPostCall flags a Post* call carrying an unsynced offload MR.
func (lf *lifecycleFlow) checkPostCall(call *ast.CallExpr, f *Facts, report bool) {
	if !report || !lf.spec.trackUnsynced || lf.spec.postPrefix == "" {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, lf.spec.postPrefix) {
		return
	}
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := lf.p.objOf(id)
			if obj == nil {
				return true
			}
			for _, site := range f.Bind[obj] {
				if f.Res[site]&stateUnsynced != 0 {
					lf.reportOnce(id.Pos(), 'o', "%s", lf.spec.orderMsg)
					return false
				}
			}
			return true
		})
	}
}

// releaseArgs discharges every tracked argument of a release call; to
// is stateReleased for direct releases, stateDeferred for `defer`.
func (lf *lifecycleFlow) releaseArgs(call *ast.CallExpr, f *Facts, report bool, to State) {
	for _, a := range call.Args {
		id, ok := unparen(a).(*ast.Ident)
		if !ok {
			lf.scanExpr(a, f, report)
			continue
		}
		obj := lf.p.objOf(id)
		if obj == nil {
			continue
		}
		for _, site := range f.Bind[obj] {
			st, tracked := f.Res[site]
			if !tracked || !actionable(st) {
				continue
			}
			if report && (mustReleased(st) || st&stateDeferred != 0) {
				lf.reportOnce(call.Pos(), '2', "%s", lf.spec.doubleMsg)
			}
			f.Res[site] = st&^(stateLive|stateUnsynced) | to
		}
	}
}

// advanceArgs moves tracked arguments of an advance call (offload
// sync) out of the Unsynced state; syncing a released region is a
// use-after-release.
func (lf *lifecycleFlow) advanceArgs(call *ast.CallExpr, f *Facts, report bool) {
	for _, a := range call.Args {
		id, ok := unparen(a).(*ast.Ident)
		if !ok {
			lf.scanExpr(a, f, report)
			continue
		}
		obj := lf.p.objOf(id)
		if obj == nil {
			continue
		}
		for _, site := range f.Bind[obj] {
			st, tracked := f.Res[site]
			if !tracked || !actionable(st) {
				continue
			}
			if report && lf.spec.checkUse && mustReleased(st) {
				lf.reportOnce(call.Pos(), 'u', "%s", lf.spec.useMsg)
			}
			f.Res[site] = st &^ stateUnsynced
		}
	}
}

// escapeIdents transfers ownership out of the function's view for
// every bound identifier whose handle leaves through e. A field
// projection (mr.LKey, omr.Size) hands out a copy of one field, not
// the tracked handle, so selector bases stay tracked — the obligation
// to release remains here. Escaped sites stay in the fact map as
// tombstones (Escaped bit, obligations cleared) so summary computation
// can observe the escape.
func (lf *lifecycleFlow) escapeIdents(e ast.Node, f *Facts) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if _, isID := unparen(sel.X).(*ast.Ident); isID {
				return false // x.Field / x.Method(): projection, not the handle
			}
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lf.escapeObj(lf.p.objOf(id), f)
		return true
	})
}

// escapeObj marks every site bound to obj as escaped.
func (lf *lifecycleFlow) escapeObj(obj types.Object, f *Facts) {
	if obj == nil {
		return
	}
	for _, site := range f.Bind[obj] {
		if st, tracked := f.Res[site]; tracked {
			f.Res[site] = st&^(stateLive|stateUnsynced|stateDeferred) | stateEscaped
		}
	}
}

// escapeFuncLit ends tracking for values captured by a closure.
func (lf *lifecycleFlow) escapeFuncLit(fl *ast.FuncLit, f *Facts) {
	lf.escapeIdents(fl.Body, f)
}

// leakCheck reports every resource still carrying a Live obligation at
// a function exit, anchored at its creation site.
func (lf *lifecycleFlow) leakCheck(f *Facts) {
	for _, site := range f.SortedSites() {
		if f.Res[site]&stateLive != 0 {
			lf.reportOnce(site.Pos(), 'l', lf.spec.leakMsg, callName(site))
		}
	}
}

// Refine narrows facts along condition edges: the nil guard paired
// with a creation's error result, direct nil checks of tracked
// variables, and Test-style conditional completion.
func (lf *lifecycleFlow) Refine(cond ast.Expr, branch bool, f *Facts) {
	if id, op, ok := nilComparison(lf.p.Info, cond); ok {
		obj := lf.p.objOf(id)
		if obj == nil {
			return
		}
		nonNilEdge := (op == token.NEQ) == branch
		if nonNilEdge {
			// err != nil: every creation paired with err produced nil —
			// no obligation on this path.
			for site, eobj := range f.Pair {
				if eobj == obj {
					delete(f.Res, site)
				}
			}
		} else {
			// x == nil: a nil tracked value carries no obligation.
			for _, site := range f.Bind[obj] {
				delete(f.Res, site)
			}
		}
		return
	}
	if call, ok := unparen(cond).(*ast.CallExpr); ok && branch && lf.classify(call) == verbTestRelease {
		lf.releaseArgs(call, f, false, stateReleased)
	}
}
