package analysis

import (
	"go/ast"
)

// BufHazard flags buffer reuse while a nonblocking operation is in
// flight — the MPI datatype/RDMA hazard the simulator cannot observe
// at runtime because its transfers are instantaneous at Wait time:
//
//   - writing any byte range overlapping a buffer captured by a
//     pending Isend or Irecv (the send may transmit the new bytes, the
//     receive may overwrite them);
//   - reading a byte range a pending Irecv may still overwrite;
//   - posting two simultaneously in-flight requests over provably
//     overlapping bytes when at least one is an Irecv.
//
// In-flight-ness rides on the reqwait dataflow (creation sites, Wait/
// Test/WaitAll completion, escapes, interprocedural summaries), and
// extents come from the ConstVal lattice, so only provable overlaps
// are reported.
var BufHazard = &Analyzer{
	Name:      "bufhazard",
	Scope:     ScopeInter,
	Doc:       "no buffer access may overlap a pending Isend/Irecv before its Wait/Test",
	AppliesTo: notTestPackage,
	Run:       runBufHazard,
}

func runBufHazard(p *Pass) {
	sums := p.summariesFor(reqwaitSpec)
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		if !mentionsCreate(p, reqwaitSpec, body) && !sums.mentionsAcquirer(p, body) {
			return
		}
		env := newConstEnv(p, body)
		bufs, recv := prescanBufs(p, env, sums, body)
		if len(bufs) == 0 {
			return
		}
		// The reqwait lifecycle runs in silent observation mode (non-nil
		// recorder): it maintains the in-flight facts, and bufFlow alone
		// reports.
		lf := &lifecycleFlow{p: p, spec: reqwaitSpec, reported: map[reportKey]bool{}, sums: sums, sum: &summaryRecorder{}}
		bf := &bufFlow{p: p, env: env, lf: lf, bufs: bufs, recv: recv, reported: map[reportKey]bool{}}
		Solve(NewCFG(body), bf)
	})
}

// prescanBufs maps every request-creating call in the body — direct
// Isend/Irecv, or a summarized helper whose result carries a fresh
// request — to the descriptor of the buffer it captures. Creations
// whose extent cannot be resolved (or is the empty Slice{}) are left
// out: no overlap involving them is provable. Nested function
// literals are analyzed on their own.
func prescanBufs(p *Pass, env *constEnv, sums *SummarySet, body *ast.BlockStmt) (map[ast.Node]*bufDesc, map[ast.Node]bool) {
	bufs := map[ast.Node]*bufDesc{}
	recv := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch classifyComm(p, call) {
		case commIsend, commIrecv:
			if d := env.sliceDesc(call.Args[3]); d != nil && d.kind != descEmpty {
				bufs[call] = d
				recv[call] = classifyComm(p, call) == commIrecv
			}
			return true
		default:
			// Only the nonblocking posts capture a buffer across
			// statements; everything else is checked as an access below.
		}
		// A helper constructor that acquires a request (per its reqwait
		// summary): the captured buffer is its Slice argument. More than
		// one Slice argument is ambiguous — skip. Direction is unknown,
		// so it is treated as a send (write conflicts only), the
		// fewer-findings side.
		if sum := sums.forCall(p, call); sum != nil && summaryAcquires(sum) {
			var d *bufDesc
			slices := 0
			for _, a := range call.Args {
				if namedTypeName(p.typeOf(a)) != "Slice" {
					continue
				}
				slices++
				d = env.sliceDesc(a)
			}
			if slices == 1 && d != nil && d.kind != descEmpty {
				bufs[call] = d
				recv[call] = false
			}
		}
		return true
	})
	return bufs, recv
}

// summaryAcquires reports whether any result of the summary hands the
// caller a fresh obligation.
func summaryAcquires(sum *FuncSummary) bool {
	for _, r := range sum.Results {
		if r.Acquires != 0 {
			return true
		}
	}
	return false
}

// bufFlow layers the hazard checks over the silent reqwait dataflow:
// each node is checked against the in-facts (the state before the
// node's own effect), then handed to the lifecycle transfer.
type bufFlow struct {
	p   *Pass
	env *constEnv
	lf  *lifecycleFlow
	// bufs and recv are the prescan results: creation site -> captured
	// buffer, and whether the site is a receive.
	bufs     map[ast.Node]*bufDesc
	recv     map[ast.Node]bool
	reported map[reportKey]bool
}

func (bf *bufFlow) Transfer(n ast.Node, f *Facts, report bool) {
	if report {
		bf.check(n, f)
	}
	bf.lf.Transfer(n, f, report)
}

func (bf *bufFlow) Refine(cond ast.Expr, branch bool, f *Facts) {
	bf.lf.Refine(cond, branch, f)
}

func (bf *bufFlow) reportOnce(pos ast.Node, kind byte, format string, args ...any) {
	k := reportKey{pos.Pos(), kind}
	if bf.reported[k] {
		return
	}
	bf.reported[k] = true
	bf.p.Reportf(pos.Pos(), format, args...)
}

// inFlight returns the creation sites whose request may still be
// pending at this point and whose buffer the prescan resolved, in
// position order.
func (bf *bufFlow) inFlight(f *Facts) []ast.Node {
	var out []ast.Node
	for _, site := range f.SortedSites() {
		st := f.Res[site]
		if st&stateLive != 0 && actionable(st) && bf.bufs[site] != nil {
			out = append(out, site)
		}
	}
	return out
}

// check scans one statement for buffer accesses and new request
// postings against the current in-flight set.
func (bf *bufFlow) check(n ast.Node, f *Facts) {
	switch n.(type) {
	case *ExitCheck, *DeferRun, *ImplicitReturn:
		// Synthetic CFG nodes touch no buffer bytes; a request still in
		// flight at exit is reqwait's leak, not a hazard.
		return
	}
	live := bf.inFlight(f)
	if len(live) == 0 {
		return
	}
	// Non-identifier LHS of assignments (b.Data[i] = v, s.Bytes()[0] =
	// v) are memory writes; a plain identifier LHS only rebinds the
	// variable and touches no buffer byte. Everything else reached
	// below is a read unless a call's signature says otherwise.
	writes := map[ast.Expr]bool{}
	skips := map[ast.Expr]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if _, isIdent := unparen(l).(*ast.Ident); isIdent {
				skips[l] = true
			} else {
				writes[l] = true
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := x.(ast.Expr); ok {
			if skips[e] {
				return false
			}
			if writes[e] {
				bf.access(e, true, live, f)
				return false
			}
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if bf.bufs[call] != nil {
			// A new posting: its buffer must not overlap one already in
			// flight when either side receives.
			bf.creation(call, live, f)
			return false
		}
		switch classifyComm(bf.p, call) {
		case commSend:
			bf.access(call.Args[3], false, live, f)
			return false
		case commRecv:
			bf.access(call.Args[3], true, live, f)
			return false
		case commSendrecv:
			bf.access(call.Args[3], false, live, f)
			bf.access(call.Args[6], true, live, f)
			return false
		default:
			// Nonblocking posts were handled by the prescan; non-comm
			// calls fall through to the builtin access patterns below.
		}
		switch fn := unparen(call.Fun).(type) {
		case *ast.Ident:
			switch {
			case fn.Name == "copy" && len(call.Args) == 2:
				bf.access(call.Args[0], true, live, f)
				bf.access(call.Args[1], false, live, f)
				return false
			case fn.Name == "PutF64s" && len(call.Args) >= 1:
				bf.access(call.Args[0], true, live, f)
				return false
			case fn.Name == "GetF64s" && len(call.Args) >= 1:
				bf.access(call.Args[0], false, live, f)
				return false
			}
		case *ast.SelectorExpr:
			switch {
			case fn.Sel.Name == "PutF64s" && len(call.Args) >= 1:
				bf.access(call.Args[0], true, live, f)
				return false
			case fn.Sel.Name == "GetF64s" && len(call.Args) >= 1:
				bf.access(call.Args[0], false, live, f)
				return false
			}
		}
		return true
	})
}

// creation checks a freshly posted request against the requests
// already in flight. The site itself is skipped: a loop back-edge
// carries the previous iteration's posting of the same call, and the
// wait inside the loop is what serializes those.
func (bf *bufFlow) creation(call *ast.CallExpr, live []ast.Node, f *Facts) {
	d := bf.bufs[call]
	for _, site := range live {
		if site == call {
			continue
		}
		if !bf.recv[call] && !bf.recv[site] {
			continue // two sends may share a source buffer
		}
		if bf.env.mustOverlap(d, bf.bufs[site]) {
			bf.reportOnce(call, 'p', "buffer overlaps one captured by an in-flight %s: complete that request with Wait/Test before posting over the same bytes", callName(site))
		}
	}
}

// access checks one read or write against the in-flight set: any
// overlap with a pending request's buffer is a hazard on write, and an
// overlap with a pending receive is a hazard on read too.
func (bf *bufFlow) access(e ast.Expr, isWrite bool, live []ast.Node, f *Facts) {
	d := bf.accessDesc(e)
	if d == nil {
		return
	}
	for _, site := range live {
		if !isWrite && !bf.recv[site] {
			continue
		}
		if !bf.env.mustOverlap(d, bf.bufs[site]) {
			continue
		}
		if isWrite {
			bf.reportOnce(e, 'w', "buffer is written while an in-flight %s holds it: complete the request with Wait/Test first", callName(site))
		} else {
			bf.reportOnce(e, 'r', "buffer is read while an in-flight Irecv may still overwrite it: complete the request with Wait/Test first")
		}
		return
	}
}

// accessDesc resolves the buffer extent an expression touches:
// Slice-typed values via sliceDesc, s.Bytes() through the slice,
// b.Data through the whole buffer, and indexing/slicing through its
// base.
func (bf *bufFlow) accessDesc(e ast.Expr) *bufDesc {
	e = unparen(e)
	if namedTypeName(bf.p.typeOf(e)) == "Slice" {
		return bf.env.sliceDesc(e)
	}
	switch e := e.(type) {
	case *ast.IndexExpr:
		return bf.accessDesc(e.X)
	case *ast.SliceExpr:
		return bf.accessDesc(e.X)
	case *ast.CallExpr:
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Bytes" && len(e.Args) == 0 {
			if namedTypeName(bf.p.typeOf(sel.X)) == "Slice" {
				return bf.env.sliceDesc(sel.X)
			}
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "Data" && namedTypeName(bf.p.typeOf(e.X)) == "Buffer" {
			if id, ok := unparen(e.X).(*ast.Ident); ok {
				if obj := bf.p.objOf(id); obj != nil {
					return &bufDesc{kind: descWhole, root: obj}
				}
			}
		}
	}
	return nil
}
