package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// ruleDirs pairs each analyzer with its testdata corpus.
var ruleDirs = []*Analyzer{Nondet, MapOrder, RawGo, ErrCheck, FloatSum, MRLeak, MRPin, Offload, ReqWait, Memdomain, BufHazard, BlockCycle, CollOrder, HotAlloc, GlobalMut, FSMCheck}

// loadTestdata type-checks testdata/src/<rule> as a synthetic package
// outside the module, which every analyzer treats as in scope.
func loadTestdata(t *testing.T, rule string) (*Loader, *Pass) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", rule)
	pkg, err := l.LoadDir(dir, rule)
	if err != nil {
		t.Fatal(err)
	}
	return l, NewPass(l.Fset, pkg.Path, l.ModulePath, pkg.Files, pkg.Types, pkg.Info)
}

var wantRE = regexp.MustCompile(`// want (.+)$`)
var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// wantComments extracts the expected-finding annotations: map from
// "file:line" to the list of expected message substrings.
func wantComments(p *Pass) map[string][]string {
	wants := map[string][]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					wants[key] = append(wants[key], q[1])
				}
			}
		}
	}
	return wants
}

// TestGolden runs each analyzer over its own corpus and requires an
// exact match against the want annotations: every annotated line must
// produce a finding with the expected message, and no unannotated line
// may produce one.
func TestGolden(t *testing.T) {
	for _, a := range ruleDirs {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			_, pass := loadTestdata(t, a.Name)
			findings := pass.Run([]*Analyzer{a})
			wants := wantComments(pass)

			matched := map[string]bool{}
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				subs, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding at %s: %v", key, f)
					continue
				}
				found := false
				for _, sub := range subs {
					if strings.Contains(f.Message, sub) {
						found = true
					}
				}
				if !found {
					t.Errorf("finding at %s does not match any want %q: %s", key, subs, f.Message)
				}
				if f.Rule != a.Name {
					t.Errorf("finding at %s reported by rule %q, want %q", key, f.Rule, a.Name)
				}
				matched[key] = true
			}
			for key := range wants {
				if !matched[key] {
					t.Errorf("no finding at annotated line %s", key)
				}
			}
		})
	}
}

// lifecycleAnalyzers are the four protocol rules that share the
// interprocedural summary layer.
var lifecycleAnalyzers = []*Analyzer{MRLeak, MRPin, Offload, ReqWait}

// TestInterprocedural runs all four lifecycle rules pooled over the
// shared cross-function corpus (helper-acquire, helper-release,
// constructor-returns-obligation, deferred cleanup through a helper)
// and requires an exact match: every annotated line fires, and nothing
// else does — the zero-false-positive half is what proves the
// summaries replace the old "any call escapes everything" rule.
func TestInterprocedural(t *testing.T) {
	_, pass := loadTestdata(t, "interp")
	findings := pass.Run(lifecycleAnalyzers)
	wants := wantComments(pass)

	matched := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		subs, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding at %s: %v", key, f)
			continue
		}
		found := false
		for _, sub := range subs {
			if strings.Contains(f.Message, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("finding at %s does not match any want %q: %s", key, subs, f.Message)
		}
		matched[key] = true
	}
	for key := range wants {
		if !matched[key] {
			t.Errorf("no finding at annotated line %s", key)
		}
	}
}

// TestInterfaceResolution runs the four lifecycle rules plus bufhazard
// pooled over the interface corpus: every acquiring or releasing call
// there crosses an interface boundary (devirtualized targets, contract
// directives, or builtin verbs on an interface receiver), so both the
// findings and the silences prove the interface-aware layers.
func TestInterfaceResolution(t *testing.T) {
	_, pass := loadTestdata(t, "iface")
	findings := pass.Run(append(append([]*Analyzer{}, lifecycleAnalyzers...), BufHazard))
	wants := wantComments(pass)

	matched := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		subs, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding at %s: %v", key, f)
			continue
		}
		found := false
		for _, sub := range subs {
			if strings.Contains(f.Message, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("finding at %s does not match any want %q: %s", key, subs, f.Message)
		}
		matched[key] = true
	}
	for key := range wants {
		if !matched[key] {
			t.Errorf("no finding at annotated line %s", key)
		}
	}
}

// TestSummaryDumpDeterministic loads the interprocedural corpus twice
// through independent loaders and requires byte-identical summary
// dumps for every rule — the cache must not depend on map iteration
// order or pointer identity.
func TestSummaryDumpDeterministic(t *testing.T) {
	dump := func() string {
		_, pass := loadTestdata(t, "interp")
		var b strings.Builder
		for _, spec := range lifecycleSpecs() {
			b.WriteString("== " + spec.rule + "\n")
			b.WriteString(pass.summariesFor(spec).Dump())
		}
		return b.String()
	}
	d1, d2 := dump(), dump()
	if d1 != d2 {
		t.Errorf("summary dumps differ between loads:\n--- first\n%s\n--- second\n%s", d1, d2)
	}
	// Spot-check the classifications the corpus is built around.
	for _, want := range []string{
		"interp.closeMR (borrow,borrow,release) -> ()",
		"interp.newMR (borrow,borrow,borrow) -> (acquire,-)",
		"interp.newMRIndirect (borrow,borrow,borrow) -> (acquire,-)",
		"interp.pass (borrow) -> (p0)",
		"interp.condClose (borrow,borrow,escape,borrow) -> ()",
	} {
		if !strings.Contains(d1, want) {
			t.Errorf("summary dump missing %q\ndump:\n%s", want, d1)
		}
	}

	// The communication rules ride on the same layers: bufhazard reuses
	// the reqwait summaries for helper-posted requests, and blockcycle
	// reuses the const-helper summaries. Both must be load-independent
	// too.
	commDump := func() string {
		var b strings.Builder
		_, pass := loadTestdata(t, "bufhazard")
		b.WriteString("== reqwait/bufhazard\n")
		b.WriteString(pass.summariesFor(reqwaitSpec).Dump())
		_, pass = loadTestdata(t, "blockcycle")
		b.WriteString("== const/blockcycle\n")
		names := []string{}
		for fn, v := range pass.constSummaries() {
			names = append(names, fmt.Sprintf("%s=%s", fn.Name(), v))
		}
		sort.Strings(names)
		b.WriteString(strings.Join(names, "\n"))
		return b.String()
	}
	c1, c2 := commDump(), commDump()
	if c1 != c2 {
		t.Errorf("communication-rule summary dumps differ between loads:\n--- first\n%s\n--- second\n%s", c1, c2)
	}
	if !strings.Contains(c1, "bufhazard.start") || !strings.Contains(c1, "acquire") {
		t.Errorf("bufhazard helper summary missing acquire classification:\n%s", c1)
	}
	if !strings.Contains(c1, "chunk=4096") {
		t.Errorf("blockcycle const summary missing chunk=4096:\n%s", c1)
	}

	// The scalability rules add two more summary layers: hotalloc's
	// per-parameter escape bits and globalmut's transitive write
	// effects. Same contract: byte-identical across independent loads.
	scaleDump := func() string {
		var b strings.Builder
		_, pass := loadTestdata(t, "hotalloc")
		b.WriteString("== escape/hotalloc\n")
		b.WriteString(EscapeSummaryDump(pass))
		_, pass = loadTestdata(t, "globalmut")
		b.WriteString("== writes/globalmut\n")
		b.WriteString(WriteEffectDump(pass))
		return b.String()
	}
	s1, s2 := scaleDump(), scaleDump()
	if s1 != s2 {
		t.Errorf("scalability-rule summary dumps differ between loads:\n--- first\n%s\n--- second\n%s", s1, s2)
	}
	for _, want := range []string{
		"hotalloc.use: p0=borrow",
		"globalmut.set: writes globalmut.cache",
		"globalmut.bump: writes globalmut.Count",
	} {
		if !strings.Contains(s1, want) {
			t.Errorf("scalability summary dump missing %q\ndump:\n%s", want, s1)
		}
	}

	// The interface layers add devirtualized call edges and
	// directive-contract summaries; both feed the lifecycle summaries,
	// so all three dumps must also be load-independent.
	ifaceDump := func() string {
		_, pass := loadTestdata(t, "iface")
		var b strings.Builder
		for _, spec := range lifecycleSpecs() {
			b.WriteString("== " + spec.rule + "\n")
			b.WriteString(pass.summariesFor(spec).Dump())
			b.WriteString("== contracts/" + spec.rule + "\n")
			b.WriteString(ContractSummaryDump(pass, spec.rule))
		}
		b.WriteString("== devirt\n")
		b.WriteString(DevirtDump(pass))
		return b.String()
	}
	i1, i2 := ifaceDump(), ifaceDump()
	if i1 != i2 {
		t.Errorf("interface-layer dumps differ between loads:\n--- first\n%s\n--- second\n%s", i1, i2)
	}
	for _, want := range []string{
		// Devirtualized edges, sorted, all targets listed.
		"(iface.Transport).Open -> (*iface.ibTransport).Open",
		"(iface.Closer).Shut -> (*iface.nullCloser).Shut | (*iface.realCloser).Shut",
		"(iface.Poster).Post -> (*iface.rankPoster).Post",
		// A directive on an interface method synthesizes its summary.
		"(iface.Registrar).Acquire contract(acquire)",
		"(iface.Registrar).Free contract(release)",
		// The devirtualized constructor's summary acquires.
		"(*iface.rankPoster).Post (borrow,borrow) -> (acquire,-)",
	} {
		if !strings.Contains(i1, want) {
			t.Errorf("interface-layer dump missing %q\ndump:\n%s", want, i1)
		}
	}
}

// TestExactlyOneAnalyzer verifies the corpus seeds are disjoint: on
// every annotated line, only the corpus's own analyzer fires.
func TestExactlyOneAnalyzer(t *testing.T) {
	for _, a := range ruleDirs {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			_, pass := loadTestdata(t, a.Name)
			findings := pass.Run(All())
			wants := wantComments(pass)
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				if _, annotated := wants[key]; annotated && f.Rule != a.Name {
					t.Errorf("annotated line %s also triggers %q: %s", key, f.Rule, f.Message)
				}
			}
		})
	}
}

// TestSuppressionComments verifies both placements of the ignore
// directive end-to-end on a synthetic file pair.
func TestSuppressionComments(t *testing.T) {
	_, pass := loadTestdata(t, "nondet")
	// The corpus's Suppressed function calls time.Now with an ignore
	// comment on the line above; the golden test already proves no
	// finding escapes. Here double-check the suppression index itself.
	found := false
	for file, lines := range pass.suppress {
		for _, rules := range lines {
			for _, r := range rules {
				if r == "nondet" {
					found = true
					_ = file
				}
			}
		}
	}
	if !found {
		t.Fatal("suppression comment not indexed")
	}
}

// TestRepoIsClean runs the full suite (tests included) over the entire
// module — the CI acceptance gate in unit-test form. Like CI it
// subtracts lint.baseline: the baseline holds the accepted hot-path
// findings (trace-argument boxing, per-message protocol state, the
// hardware model's completion closures), and anything beyond it fails.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	findings, err := l.Check([]string{root + "/..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range base.Filter(root, findings) {
		t.Errorf("%v", f)
	}
}

// TestEveryRuleHasCorpus is the corpus-completeness gate: every
// analyzer registered in All() must have a golden corpus directory and
// appear in ruleDirs, so a new rule cannot land untested.
func TestEveryRuleHasCorpus(t *testing.T) {
	inRuleDirs := map[string]bool{}
	for _, a := range ruleDirs {
		inRuleDirs[a.Name] = true
	}
	// The shared interprocedural and interface corpora are not tied to
	// a single rule but are completeness requirements like the per-rule
	// directories.
	names := []string{"interp", "iface"}
	for _, a := range All() {
		if !inRuleDirs[a.Name] {
			t.Errorf("rule %q is registered but missing from ruleDirs", a.Name)
		}
		names = append(names, a.Name)
	}
	for _, name := range names {
		dir := filepath.Join("testdata", "src", name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("corpus %q has no directory %s: %v", name, dir, err)
			continue
		}
		goFiles := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				goFiles++
			}
		}
		if goFiles == 0 {
			t.Errorf("corpus directory %s contains no Go files", dir)
		}
	}
}

// TestByName covers rule-subset selection, including the exclusion
// syntax: -name removes a rule, "all" expands the full set, and a
// leading exclusion implicitly starts from everything.
// TestEveryRuleHasScope pins the registry contract: each analyzer
// declares one of the three scope levels, which simlint -list prints
// so a reader knows how much context a finding consumed.
func TestEveryRuleHasScope(t *testing.T) {
	for _, a := range All() {
		switch a.Scope {
		case ScopeIntra, ScopeInter, ScopeWholePackage:
		default:
			t.Errorf("rule %q declares no scope (got %q)", a.Name, a.Scope)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("nondet,rawgo")
	if err != nil || len(as) != 2 || as[0].Name != "nondet" || as[1].Name != "rawgo" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
	if _, err := ByName("all,-nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown excluded rule")
	}
	if as, _ := ByName(""); len(as) != len(All()) {
		t.Fatal("empty rule list must select all analyzers")
	}

	as, err = ByName("all,-bufhazard")
	if err != nil || len(as) != len(All())-1 {
		t.Fatalf("ByName(all,-bufhazard) = %d rules, %v; want %d", len(as), err, len(All())-1)
	}
	for _, a := range as {
		if a.Name == "bufhazard" {
			t.Fatal("excluded rule survived selection")
		}
	}

	// Leading exclusion seeds the full set.
	as, err = ByName("-blockcycle,-collorder")
	if err != nil || len(as) != len(All())-2 {
		t.Fatalf("ByName(-blockcycle,-collorder) = %d rules, %v; want %d", len(as), err, len(All())-2)
	}

	// Later entries win: exclude-then-include restores the rule.
	as, err = ByName("-nondet,nondet")
	if err != nil || len(as) != len(All()) {
		t.Fatalf("ByName(-nondet,nondet) = %d rules, %v; want %d", len(as), err, len(All()))
	}

	if _, err := ByName("nondet,-nondet"); err == nil {
		t.Fatal("ByName accepted a selection of zero rules")
	}
}

// TestExpandPatterns covers ./... expansion and testdata skipping.
func TestExpandPatterns(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/internal/sim":      false,
		"repro/internal/analysis": false,
		"repro/cmd/simlint":       false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into expansion: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("expected package %s in expansion, got %v", p, paths)
		}
	}
}

// BenchmarkAnalyzePackage measures a full load + analyze cycle of the
// interprocedural corpus under every rule. The call-graph and summary
// layer dominates; this keeps its cost visible in CI.
func BenchmarkAnalyzePackage(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", "interp"), "interp")
		if err != nil {
			b.Fatal(err)
		}
		pass := NewPass(l.Fset, pkg.Path, l.ModulePath, pkg.Files, pkg.Types, pkg.Info)
		if got := pass.Run(All()); len(got) == 0 {
			b.Fatal("expected findings in the interp corpus")
		}
	}
}

// TestSortedAfterRecognizesSortVariants pins the collect-then-sort
// exemption to both sort.* and slices.* spellings.
func TestSortedAfterRecognizesSortVariants(t *testing.T) {
	_, pass := loadTestdata(t, "maporder")
	// SortedCollect uses sort.Strings and must produce no finding; the
	// golden test already asserts that. Sanity-check the AST hook here:
	var sorted *ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "SortedCollect" {
				sorted = fd
			}
		}
	}
	if sorted == nil {
		t.Fatal("SortedCollect not found in corpus")
	}
}
