package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body for direct CFG construction.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func cfgString(t *testing.T, body string) string {
	t.Helper()
	return NewCFG(parseBody(t, body)).String()
}

func TestCFGIfElse(t *testing.T) {
	got := cfgString(t, `
if c {
	a()
}
b()`)
	want := `b0?[1n] -> b2 b3
b1E[1n]
b2[1n] -> b3
b3[2n] -> b1
`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGShortCircuit(t *testing.T) {
	// `a && b` must desugar into two condition blocks so facts can be
	// refined separately along the a-false and b-false edges.
	got := cfgString(t, `
if a && b {
	x()
}
y()`)
	want := `b0?[1n] -> b4 b3
b1E[1n]
b2[1n] -> b3
b3[2n] -> b1
b4?[1n] -> b2 b3
`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGGoto(t *testing.T) {
	c := NewCFG(parseBody(t, `
x()
goto L
y()
L:
z()`))
	// The block holding y() is skipped by the goto and must be
	// unreachable; the label block must be reachable and flow to exit.
	reach := c.Reachable()
	for _, b := range reach {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "y" {
						t.Error("y() is reachable despite the goto jumping over it")
					}
				}
			}
		}
	}
	if !blockReachable(c, c.Exit) {
		t.Error("exit unreachable")
	}
}

func TestCFGNestedLoopsLabeledBreak(t *testing.T) {
	got := cfgString(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if bad() {
			break outer
		}
		work()
	}
}
done()`)
	// Hand-checked shape: b5 is the after-loop block holding done() and
	// the implicit return; the labeled break block b11 jumps straight to
	// it, bypassing both loop heads.
	want := `b0[0n] -> b2
b1E[1n]
b2[1n] -> b3
b3?[1n] -> b4 b5
b4[1n] -> b7
b5[2n] -> b1
b6[1n] -> b3
b7?[1n] -> b8 b9
b8?[1n] -> b11 b12
b9[0n] -> b6
b10[1n] -> b7
b11[0n] -> b5
b12[1n] -> b10
`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGContinueTargetsPost(t *testing.T) {
	c := NewCFG(parseBody(t, `
for i := 0; i < 3; i++ {
	if skip() {
		continue
	}
	work()
}`))
	// Every reachable non-exit block must eventually reach exit: continue
	// must loop via the post block, not strand control.
	for _, b := range c.Reachable() {
		if b != c.Exit && !reachesExit(c, b) {
			t.Errorf("block b%d cannot reach exit", b.Index)
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := NewCFG(parseBody(t, `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	d()
}
after()`))
	if !blockReachable(c, c.Exit) {
		t.Error("exit unreachable")
	}
	// The case-1 body must have exactly one successor: the case-2 body
	// (the fallthrough), not the after block.
	var case1 *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "a" {
						case1 = b
					}
				}
			}
		}
	}
	if case1 == nil {
		t.Fatal("case-1 body not found")
	}
	if len(case1.Succs) != 1 {
		t.Fatalf("case-1 body has %d successors, want 1 (fallthrough)", len(case1.Succs))
	}
	next := case1.Succs[0]
	found := false
	for _, n := range next.Nodes {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "b" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("fallthrough edge does not lead to the case-2 body")
	}
}

func TestCFGSelect(t *testing.T) {
	c := NewCFG(parseBody(t, `
select {
case <-a:
	x()
case b <- 1:
	y()
}
after()`))
	if !blockReachable(c, c.Exit) {
		t.Error("exit unreachable")
	}
}

func TestCFGRangeBodyNotInHead(t *testing.T) {
	c := NewCFG(parseBody(t, `
for _, v := range xs {
	use(v)
}`))
	// The RangeStmt appears exactly once, as a loop-head node, and the
	// body statement lives in a different block.
	heads := 0
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				heads++
				if len(b.Succs) != 2 {
					t.Errorf("range head has %d successors, want 2 (body, after)", len(b.Succs))
				}
			}
		}
	}
	if heads != 1 {
		t.Errorf("RangeStmt appears in %d blocks, want 1", heads)
	}
}

func TestCFGTerminatingCalls(t *testing.T) {
	c := NewCFG(parseBody(t, `
if c {
	panic("boom")
}
rest()`))
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if terminatingCall(es.X) && len(b.Succs) != 0 {
				t.Errorf("panic block b%d has successors %v", b.Index, b.Succs)
			}
		}
	}
	for _, src := range []string{`os.Exit(1)`, `log.Fatalf("x")`, `t.Fatal(err)`} {
		body := parseBody(t, src)
		es := body.List[0].(*ast.ExprStmt)
		if !terminatingCall(es.X) {
			t.Errorf("terminatingCall(%s) = false", src)
		}
	}
	if terminatingCall(parseBody(t, `f(1)`).List[0].(*ast.ExprStmt).X) {
		t.Error("terminatingCall(f(1)) = true")
	}
}

func TestCFGImplicitReturnOnlyOnFallOff(t *testing.T) {
	// A body ending in return gets no ImplicitReturn node.
	c := NewCFG(parseBody(t, `
x()
return`))
	if n := countImplicitReturns(c); n != 0 {
		t.Errorf("explicit-return body has %d ImplicitReturn nodes, want 0", n)
	}
	c = NewCFG(parseBody(t, `
if c {
	return
}
x()`))
	if n := countImplicitReturns(c); n != 1 {
		t.Errorf("fall-off body has %d ImplicitReturn nodes, want 1", n)
	}
}

func countImplicitReturns(c *CFG) int {
	n := 0
	for _, b := range c.Blocks {
		for _, node := range b.Nodes {
			if _, ok := node.(*ImplicitReturn); ok {
				n++
			}
		}
	}
	return n
}

func blockReachable(c *CFG, target *Block) bool {
	for _, b := range c.Reachable() {
		if b == target {
			return true
		}
	}
	return false
}

// reachesExit reports whether the exit block is reachable from b.
func reachesExit(c *CFG, b *Block) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(x *Block) bool {
		if x == c.Exit {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(b)
}

// TestCFGExitEpilogue verifies the exit block runs deferred calls in
// LIFO order and ends with the obligation-check anchor.
func TestCFGExitEpilogue(t *testing.T) {
	c := NewCFG(parseBody(t, `
defer a()
defer b()
if cond {
	return
}
x()`))
	nodes := c.Exit.Nodes
	if len(nodes) != 3 {
		t.Fatalf("exit block has %d nodes, want 2 DeferRun + 1 ExitCheck: %v", len(nodes), nodes)
	}
	for i, wantName := range []string{"b", "a"} {
		dr, ok := nodes[i].(*DeferRun)
		if !ok {
			t.Fatalf("exit node %d is %T, want *DeferRun", i, nodes[i])
		}
		call := dr.Defer.Call
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != wantName {
			t.Errorf("exit DeferRun %d runs %v, want %s() (LIFO order)", i, call.Fun, wantName)
		}
	}
	if _, ok := nodes[2].(*ExitCheck); !ok {
		t.Errorf("last exit node is %T, want *ExitCheck", nodes[2])
	}
}

// TestCFGExitCheckAlwaysPresent: even without defers, the exit block
// anchors the obligation check.
func TestCFGExitCheckAlwaysPresent(t *testing.T) {
	c := NewCFG(parseBody(t, `x()`))
	if len(c.Exit.Nodes) != 1 {
		t.Fatalf("exit block has %d nodes, want 1", len(c.Exit.Nodes))
	}
	if _, ok := c.Exit.Nodes[0].(*ExitCheck); !ok {
		t.Errorf("exit node is %T, want *ExitCheck", c.Exit.Nodes[0])
	}
}

// TestCFGDeferRunsOnPanicPath: deferred calls execute during a panic
// unwind, so the terminating block replays registered defers before the
// path is pruned.
func TestCFGDeferRunsOnPanicPath(t *testing.T) {
	c := NewCFG(parseBody(t, `
defer a()
if bad {
	panic("boom")
}
x()`))
	found := false
	for _, b := range c.Blocks {
		for i, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok || !terminatingCall(es.X) {
				continue
			}
			if len(b.Succs) != 0 {
				t.Errorf("panic block b%d has successors", b.Index)
			}
			rest := b.Nodes[i+1:]
			if len(rest) != 1 {
				t.Fatalf("panic block has %d nodes after the call, want 1 DeferRun", len(rest))
			}
			if _, ok := rest[0].(*DeferRun); !ok {
				t.Errorf("node after panic is %T, want *DeferRun", rest[0])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("panic block not found")
	}
}

// TestCFGDeferNotCollectedFromNestedLiteral: a defer inside a nested
// function literal belongs to that literal's CFG, not the outer one.
func TestCFGDeferNotCollectedFromNestedLiteral(t *testing.T) {
	c := NewCFG(parseBody(t, `
f := func() {
	defer inner()
}
f()`))
	for _, n := range c.Exit.Nodes {
		if _, ok := n.(*DeferRun); ok {
			t.Error("outer exit block runs a defer registered inside a nested function literal")
		}
	}
}

// TestCFGStringMarksExit pins the debug-dump format the goldens above
// rely on.
func TestCFGStringMarksExit(t *testing.T) {
	s := cfgString(t, `x()`)
	if !strings.Contains(s, "E") {
		t.Errorf("String() does not mark the exit block: %q", s)
	}
}
