package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func fakeFinding(file string, line int, rule, msg string) Finding {
	return Finding{
		Pos:     token.Position{Filename: file, Line: line},
		Rule:    rule,
		Message: msg,
	}
}

// TestBaselineRoundTrip writes a baseline from findings and verifies
// the loaded baseline absorbs exactly those findings, independent of
// line numbers.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.baseline")
	root := filepath.Join(dir, "repo")

	findings := []Finding{
		fakeFinding(filepath.Join(root, "a", "a.go"), 10, "mrleak", "leaked"),
		fakeFinding(filepath.Join(root, "b", "b.go"), 20, "nondet", "time.Now"),
		// The scalability rules name call chains, never line numbers,
		// precisely so their findings survive this round trip.
		fakeFinding(filepath.Join(root, "a", "a.go"), 30, "hotalloc",
			"&arrival{} escapes: heap allocation per event (hot path: handlePacket)"),
		fakeFinding(filepath.Join(root, "b", "b.go"), 40, "globalmut",
			"write to package-level bench.StencilIters in Figure11: state shared across engine instances; thread it through an instance struct instead"),
	}
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Same findings on different lines: all absorbed.
	moved := []Finding{
		fakeFinding(filepath.Join(root, "a", "a.go"), 99, "mrleak", "leaked"),
		fakeFinding(filepath.Join(root, "b", "b.go"), 1, "nondet", "time.Now"),
		fakeFinding(filepath.Join(root, "a", "a.go"), 7, "hotalloc",
			"&arrival{} escapes: heap allocation per event (hot path: handlePacket)"),
		fakeFinding(filepath.Join(root, "b", "b.go"), 3, "globalmut",
			"write to package-level bench.StencilIters in Figure11: state shared across engine instances; thread it through an instance struct instead"),
	}
	if got := b.Filter(root, moved); len(got) != 0 {
		t.Errorf("baseline did not absorb line-shifted findings: %v", got)
	}

	// A new finding in a baselined file still surfaces.
	fresh := fakeFinding(filepath.Join(root, "a", "a.go"), 5, "mrleak", "other message")
	if got := b.Filter(root, []Finding{fresh}); len(got) != 1 {
		t.Errorf("baseline absorbed a finding with a different message: %v", got)
	}
}

// TestBaselineMultiset verifies counting semantics: N accepted copies
// absorb at most N occurrences.
func TestBaselineMultiset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.baseline")
	root := dir

	two := []Finding{
		fakeFinding(filepath.Join(root, "x.go"), 1, "mrleak", "leaked"),
		fakeFinding(filepath.Join(root, "x.go"), 2, "mrleak", "leaked"),
	}
	if err := WriteBaseline(path, root, two); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	three := append(two, fakeFinding(filepath.Join(root, "x.go"), 3, "mrleak", "leaked"))
	got := b.Filter(root, three)
	if len(got) != 1 {
		t.Fatalf("2-entry baseline against 3 findings: got %d surviving, want 1", len(got))
	}
	if got[0].Pos.Line != 3 {
		t.Errorf("survivor should be the last occurrence, got line %d", got[0].Pos.Line)
	}
}

// TestBaselineDeterministicWrite pins byte-identical output for
// identical findings regardless of input order.
func TestBaselineDeterministicWrite(t *testing.T) {
	dir := t.TempDir()
	root := dir
	fs := []Finding{
		fakeFinding(filepath.Join(root, "b.go"), 2, "nondet", "m2"),
		fakeFinding(filepath.Join(root, "a.go"), 1, "mrleak", "m1"),
		fakeFinding(filepath.Join(root, "a.go"), 9, "errcheck", "m0"),
	}
	p1 := filepath.Join(dir, "one.baseline")
	p2 := filepath.Join(dir, "two.baseline")
	if err := WriteBaseline(p1, root, fs); err != nil {
		t.Fatal(err)
	}
	reversed := []Finding{fs[2], fs[0], fs[1]}
	if err := WriteBaseline(p2, root, reversed); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Errorf("baseline bytes depend on finding order:\n%s\nvs\n%s", b1, b2)
	}
}

// TestBaselineOutsideRootKeepsAbsolutePath: findings outside the
// module root keep their absolute filename rather than a ../ path.
func TestBaselineOutsideRootKeepsAbsolutePath(t *testing.T) {
	e := baselineEntry("/srv/repo", fakeFinding("/tmp/elsewhere/x.go", 1, "r", "m"))
	if e.File != "/tmp/elsewhere/x.go" {
		t.Errorf("outside-root file mangled to %q", e.File)
	}
	e = baselineEntry("/srv/repo", fakeFinding("/srv/repo/pkg/x.go", 1, "r", "m"))
	if e.File != "pkg/x.go" {
		t.Errorf("inside-root file not relativized: %q", e.File)
	}
}
