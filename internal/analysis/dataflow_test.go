package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"
)

// genKill is a toy flow problem for exercising the solver: a call to
// gen() starts tracking its own statement as Live; a call to kill()
// moves every tracked site to Released.
type genKill struct {
	reports int
}

func (g *genKill) Transfer(n ast.Node, f *Facts, report bool) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	switch id.Name {
	case "gen":
		f.Res[es] = stateLive
	case "kill":
		for _, site := range f.SortedSites() {
			f.Res[site] = stateReleased
		}
	case "observe":
		if report {
			g.reports++
		}
	}
}

func (g *genKill) Refine(cond ast.Expr, branch bool, f *Facts) {}

func solveBody(t *testing.T, body string) (*CFG, []*Facts, *genKill) {
	t.Helper()
	c := NewCFG(parseBody(t, body))
	g := &genKill{}
	return c, Solve(c, g), g
}

func TestSolveBranchJoinIsUnion(t *testing.T) {
	c, in, _ := solveBody(t, `
if c {
	gen()
} else {
	gen()
	kill()
}
observe()`)
	// At the exit block the two paths merge: one site arrives Live, the
	// other Released, so the union holds one of each.
	exitFacts := in[c.Exit.Index]
	if exitFacts == nil {
		t.Fatal("exit block has no facts")
	}
	var live, released int
	for _, st := range exitFacts.Res {
		if st&stateLive != 0 {
			live++
		}
		if st&stateReleased != 0 {
			released++
		}
	}
	if live != 1 || released != 1 {
		t.Errorf("exit facts: live=%d released=%d, want 1 and 1", live, released)
	}
}

func TestSolveLoopReachesFixpoint(t *testing.T) {
	// The kill on iteration k affects the site generated on iteration
	// k-1, so the loop-head in-fact must converge to Live|Released.
	c, in, _ := solveBody(t, `
for i := 0; i < 3; i++ {
	gen()
	kill()
}
observe()`)
	exitFacts := in[c.Exit.Index]
	if exitFacts == nil {
		t.Fatal("exit block has no facts")
	}
	for site, st := range exitFacts.Res {
		if st&stateReleased == 0 {
			t.Errorf("site %v not released at exit: state %b", site, st)
		}
	}
	// Find the loop-head (condition) block and check its in-fact saw the
	// back edge: the site must be present there after round two.
	for _, b := range c.Blocks {
		if b.Cond == nil || in[b.Index] == nil {
			continue
		}
		if len(in[b.Index].Res) == 0 {
			t.Errorf("loop head b%d in-fact has no sites: back edge not propagated", b.Index)
		}
	}
}

func TestSolveReportReplayRunsOncePerBlock(t *testing.T) {
	// observe() sits inside a loop: fixpoint iteration visits its block
	// several times, but the report replay must run exactly once.
	_, _, g := solveBody(t, `
for i := 0; i < 3; i++ {
	gen()
	observe()
	kill()
}`)
	if g.reports != 1 {
		t.Errorf("report replay ran %d times, want 1", g.reports)
	}
}

func TestSolveUnreachableBlockSkipped(t *testing.T) {
	c, in, g := solveBody(t, `
return
observe()`)
	_ = c
	if g.reports != 0 {
		t.Errorf("observe() after return was replayed %d times, want 0", g.reports)
	}
	reachable := 0
	for _, f := range in {
		if f != nil {
			reachable++
		}
	}
	if reachable == len(in) {
		t.Error("every block has facts; the dead block should have none")
	}
}

func TestFactsJoinTombstonesPairDisagreement(t *testing.T) {
	site := &ast.Ident{Name: "site"}
	errA := types.NewVar(token.NoPos, nil, "errA", types.Universe.Lookup("error").Type())
	errB := types.NewVar(token.NoPos, nil, "errB", types.Universe.Lookup("error").Type())

	a := NewFacts()
	a.Pair[site] = errA
	b := NewFacts()
	b.Pair[site] = errB

	if !a.Join(b) {
		t.Fatal("join of disagreeing pairs reported no change")
	}
	if got, ok := a.Pair[site]; !ok || got != nil {
		t.Errorf("disagreeing pair = %v, want nil tombstone", got)
	}
	// A tombstone must survive further joins against a concrete value.
	c := NewFacts()
	c.Pair[site] = errA
	a.Join(c)
	if got := a.Pair[site]; got != nil {
		t.Errorf("tombstone overwritten by later join: %v", got)
	}
}

func TestFactsJoinUnionsStatesAndBindings(t *testing.T) {
	s1 := &ast.Ident{Name: "s1", NamePos: 1}
	s2 := &ast.Ident{Name: "s2", NamePos: 2}
	v := types.NewVar(token.NoPos, nil, "v", types.Typ[types.Int])

	a := NewFacts()
	a.Res[s1] = stateLive
	a.Bind[v] = []ast.Node{s1}
	b := NewFacts()
	b.Res[s1] = stateReleased
	b.Res[s2] = stateLive
	b.Bind[v] = []ast.Node{s2}

	if !a.Join(b) {
		t.Fatal("join reported no change")
	}
	if a.Res[s1] != stateLive|stateReleased {
		t.Errorf("Res[s1] = %b, want union of Live|Released", a.Res[s1])
	}
	if len(a.Bind[v]) != 2 {
		t.Errorf("Bind[v] = %v, want both sites", a.Bind[v])
	}
	if a.Bind[v][0].Pos() > a.Bind[v][1].Pos() {
		t.Error("Bind sites not sorted by position")
	}
	// Idempotence: joining the same facts again changes nothing.
	if a.Join(b) {
		t.Error("second identical join reported a change")
	}
}

func TestNilComparison(t *testing.T) {
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	for _, tc := range []struct {
		src  string
		name string
		op   token.Token
		ok   bool
	}{
		{"err != nil", "err", token.NEQ, true},
		{"err == nil", "err", token.EQL, true},
		{"nil != mr", "mr", token.NEQ, true},
		{"(err) != (nil)", "err", token.NEQ, true},
		{"a < b", "", 0, false},
		{"a != b", "", 0, false},
	} {
		body := parseBody(t, "_ = "+tc.src)
		expr := body.List[0].(*ast.AssignStmt).Rhs[0]
		id, op, ok := nilComparison(info, expr)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.src, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if id.Name != tc.name || op != tc.op {
			t.Errorf("%s: got (%s, %v), want (%s, %v)", tc.src, id.Name, op, tc.name, tc.op)
		}
	}
}
