package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// MapOrder flags range-over-map loops whose bodies do order-sensitive
// work: appending to an outer slice (without a subsequent sort),
// writing output, returning a value, or assigning loop-dependent
// values to enclosing-scope variables. Go randomizes map iteration
// precisely to surface such code; in this repository the failure mode
// is worse — bench tables, traces, and protocol decisions silently
// change between runs. The sanctioned pattern is: collect keys, sort,
// then iterate the sorted slice.
var MapOrder = &Analyzer{
	Name:  "maporder",
	Scope: ScopeIntra,
	Doc:   "forbid order-sensitive work (append/output/return/assignment) inside range-over-map",
	Run:   runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !p.isMapType(rs.X) {
					continue
				}
				p.checkMapRange(rs, list[i+1:])
			}
			return true
		})
	}
}

// stmtList returns the statement list a node carries, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// checkMapRange reports order-sensitive sinks inside one map-range
// body. rest holds the statements that follow the loop in its
// enclosing block, used to recognize the collect-then-sort idiom.
func (p *Pass) checkMapRange(rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			p.checkMapRangeAssign(rs, n, rest)
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				p.Reportf(n.Pos(), "return inside map iteration: which entry returns first depends on map order; iterate sorted keys")
			}
		case *ast.CallExpr:
			p.checkMapRangeOutput(n)
		}
		return true
	})
}

// checkMapRangeAssign flags writes from a map-range body into
// enclosing scope whose value depends on the iteration.
func (p *Pass) checkMapRangeAssign(rs *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || !p.declaredOutside(id, rs) {
			continue // writes to loop-locals or keyed element stores are order-safe
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		// s = append(s, ...) — the canonical key-collection idiom; fine
		// when the slice is sorted after the loop, flagged otherwise.
		if call, isCall := rhs.(*ast.CallExpr); isCall {
			if fn, isIdent := call.Fun.(*ast.Ident); isIdent && fn.Name == "append" {
				if !p.sortedAfter(id, rest) {
					p.Reportf(as.Pos(), "append to %s in map-iteration order: sort %s after the loop (or iterate sorted keys)", id.Name, id.Name)
				}
				continue
			}
		}
		// Float accumulation belongs to the floatsum analyzer.
		if p.isFloat(id) && (isCompoundAssign(as.Tok) || selfReferential(p, id, rhs)) {
			continue
		}
		// Order only matters when successive iterations can write
		// different values: require the RHS to depend on loop-local
		// state (the key/value variables or anything derived from them).
		if isCompoundAssign(as.Tok) && p.isString(id) {
			p.Reportf(as.Pos(), "string concatenation onto %s in map-iteration order: iterate sorted keys", id.Name)
			continue
		}
		if p.dependsOnLoop(rhs, rs) {
			p.Reportf(as.Pos(), "assignment to %s of an iteration-dependent value: which key wins depends on map order; iterate sorted keys", id.Name)
		}
	}
}

// checkMapRangeOutput flags calls that emit output from inside the
// loop: fmt printing and io-style Write methods.
func (p *Pass) checkMapRangeOutput(call *ast.CallExpr) {
	if pkg, name, ok := p.pkgCallee(call); ok {
		if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			p.Reportf(call.Pos(), "fmt.%s inside map iteration: output order follows map order; iterate sorted keys", name)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		p.Reportf(call.Pos(), "%s inside map iteration: output order follows map order; iterate sorted keys", sel.Sel.Name)
	}
}

// sortedAfter reports whether a sort.* or slices.* call mentioning the
// slice appears in the statements after the loop.
func (p *Pass) sortedAfter(slice *ast.Ident, rest []ast.Stmt) bool {
	target := p.objOf(slice)
	if target == nil {
		return false
	}
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, _, ok := p.pkgCallee(call)
			if !ok || (pkg != "sort" && pkg != "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && p.objOf(id) == target {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// dependsOnLoop reports whether expr references any identifier
// declared inside the range statement (the key/value variables or
// locals derived from them).
func (p *Pass) dependsOnLoop(expr ast.Expr, rs *ast.RangeStmt) bool {
	dep := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.objOf(id); obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			dep = true
		}
		return !dep
	})
	return dep
}

// selfReferential reports whether rhs mentions lhs (the x = x + v
// accumulation form).
func selfReferential(p *Pass, lhs *ast.Ident, rhs ast.Expr) bool {
	target := p.objOf(lhs)
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.objOf(id) == target {
			found = true
		}
		return !found
	})
	return found
}

// isCompoundAssign reports whether tok is an op= assignment.
func isCompoundAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}
