package analysis

import "go/ast"

// simDrivenPkgs are the module subtrees whose code runs under the sim
// engine's virtual clock and single-threaded dispatch. Wall-clock
// time, ambient randomness, and environment-dependent behavior are
// forbidden there: they make two runs of the same workload diverge.
var simDrivenPkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/dcfa",
	"internal/ib",
	"internal/pcie",
	"internal/scif",
	"internal/machine",
	"internal/causal",
	"dcfampi",
}

// timeFuncs are the wall-clock entry points of package time. Reading
// the real clock inside a simulation ties results to host scheduling.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// envFuncs are the os functions that make behavior depend on the
// ambient process environment.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// Nondet flags nondeterminism sources — wall-clock time, the shared
// math/rand generators, and environment reads — inside sim-driven
// packages. Virtual time comes from sim.Proc/sim.Engine; randomness
// must flow from an explicit seeded *rand.Rand threaded through the
// workload; configuration belongs in perfmodel calibrations.
var Nondet = &Analyzer{
	Name:  "nondet",
	Scope: ScopeIntra,
	Doc:   "forbid wall-clock time, ambient randomness, and env reads in sim-driven packages",
	AppliesTo: func(p *Pass) bool {
		if p.external() {
			return true
		}
		for _, sub := range simDrivenPkgs {
			if p.inModule(sub) {
				return true
			}
		}
		return false
	},
	Run: runNondet,
}

func runNondet(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := p.pkgCallee(call)
			if !ok {
				return true
			}
			switch pkg {
			case "time":
				if timeFuncs[name] {
					p.Reportf(call.Pos(), "time.%s reads the wall clock: simulations must use the engine's virtual clock (sim.Proc.Now/Sleep)", name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(call.Pos(), "rand.%s uses the shared global generator: thread an explicitly seeded *rand.Rand through the workload instead", name)
			case "os":
				if envFuncs[name] {
					p.Reportf(call.Pos(), "os.%s makes simulation behavior depend on the ambient environment: pass configuration explicitly (perfmodel calibration)", name)
				}
			}
			return true
		})
	}
}
