package analysis

import (
	"go/ast"
	"go/token"
	"testing"
)

// findFuncBody returns the body of the named top-level function.
func findFuncBody(t *testing.T, p *Pass, name string) *ast.BlockStmt {
	t.Helper()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd.Body
			}
		}
	}
	t.Fatalf("function %s not found in corpus", name)
	return nil
}

// localVal looks up the lattice value of the named local defined
// inside body.
func localVal(t *testing.T, p *Pass, env *constEnv, body *ast.BlockStmt, name string) ConstVal {
	t.Helper()
	var val ConstVal
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if obj := p.Info.Defs[id]; obj != nil {
				val = env.vals[obj]
				found = true
			}
		}
		return true
	})
	if !found {
		t.Fatalf("local %s not defined in body", name)
	}
	return val
}

// TestConstEnvLattice runs the flow-insensitive environment over the
// constprop corpus: straight-line assignments and binops fold to Known
// values, summarized helper calls resolve through the call graph, and
// reassignment, compound assignment, and non-constant helpers all
// poison to not-Known.
func TestConstEnvLattice(t *testing.T) {
	_, pass := loadTestdata(t, "constprop")
	body := findFuncBody(t, pass, "Locals")
	env := newConstEnv(pass, body)

	for name, want := range map[string]int64{
		"a":         8,
		"b":         32,
		"c":         4128,
		"shifted":   1024,
		"masked":    32,
		"viaHelper": 8192,
	} {
		got, ok := localVal(t, pass, env, body, name).Known()
		if !ok || got != want {
			t.Errorf("%s = %v (known=%v), want %d", name, got, ok, want)
		}
	}
	for _, name := range []string{"d", "loop", "viaVarying", "viaParam"} {
		if got, ok := localVal(t, pass, env, body, name).Known(); ok {
			t.Errorf("%s = %d, want not-Known", name, got)
		}
	}
}

// TestConstSummaries pins the bottom-up helper summaries: a helper
// returning a literal and one returning another helper times two both
// fold, while divergent returns do not.
func TestConstSummaries(t *testing.T) {
	_, pass := loadTestdata(t, "constprop")
	byName := map[string]ConstVal{}
	for fn, v := range pass.constSummaries() {
		byName[fn.Name()] = v
	}
	if v, ok := byName["base"].Known(); !ok || v != 4096 {
		t.Errorf("base summary = %v (known=%v), want 4096", v, ok)
	}
	if v, ok := byName["double"].Known(); !ok || v != 8192 {
		t.Errorf("double summary = %v (known=%v), want 8192", v, ok)
	}
	if v, ok := byName["pick"].Known(); ok {
		t.Errorf("pick summary = %d, want not-Known (divergent returns)", v)
	}
	if v, ok := byName["ident"].Known(); ok {
		t.Errorf("ident summary = %d, want not-Known (parameter pass-through)", v)
	}
}

// TestConstValLattice exercises Join and the operator folds directly.
func TestConstValLattice(t *testing.T) {
	u, k1, k2, vy := UnknownConst(), KnownConst(1), KnownConst(2), VaryingConst()

	if got := u.Join(k1); got != k1 {
		t.Errorf("Unknown ⊔ 1 = %v, want 1", got)
	}
	if got := k1.Join(u); got != k1 {
		t.Errorf("1 ⊔ Unknown = %v, want 1", got)
	}
	if got := k1.Join(k1); got != k1 {
		t.Errorf("1 ⊔ 1 = %v, want 1", got)
	}
	if _, ok := k1.Join(k2).Known(); ok {
		t.Error("1 ⊔ 2 must be Varying")
	}
	if _, ok := k1.Join(vy).Known(); ok {
		t.Error("1 ⊔ Varying must be Varying")
	}

	if got := constBinop(token.MUL, KnownConst(6), KnownConst(7)); got != KnownConst(42) {
		t.Errorf("6*7 = %v, want 42", got)
	}
	if got := constBinop(token.SHL, KnownConst(1), KnownConst(13)); got != KnownConst(8192) {
		t.Errorf("1<<13 = %v, want 8192", got)
	}
	if _, ok := constBinop(token.QUO, KnownConst(1), KnownConst(0)).Known(); ok {
		t.Error("division by zero must not fold")
	}
	// Unknown operands stay Unknown so the environment fixpoint is
	// monotone.
	if got := constBinop(token.ADD, u, KnownConst(1)); got != u {
		t.Errorf("Unknown+1 = %v, want Unknown", got)
	}
	if got := constUnary(token.SUB, KnownConst(5)); got != KnownConst(-5) {
		t.Errorf("-5 = %v, want -5", got)
	}
}
