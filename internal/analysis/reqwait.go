package analysis

// ReqWait enforces nonblocking-request completion: every Request
// returned by Isend/Irecv must reach Wait, WaitAll, or Test (or escape
// to a caller that will) on every path. An uncompleted request leaks
// its pinned buffers and, for Irecv, silently drops the message its
// sender believes was delivered.
// The verb tables (Isend/Irecv acquire, Wait/WaitAll release, Test
// test) are populated from builtinContracts at init — see contracts.go.
var reqwaitSpec = &lifecycleSpec{
	rule:       "reqwait",
	what:       "request",
	resultType: "Request",
	leakMsg:    "request from %s is not completed on every path: call Wait, WaitAll, or Test before returning",
	discardMsg: "request from %s discarded: the nonblocking operation can never be completed",
	doubleMsg:  "request may already be completed: waiting twice on the same request",
}

var ReqWait = &Analyzer{
	Name:      "reqwait",
	Scope:     ScopeInter,
	Doc:       "every Isend/Irecv request must reach Wait/Test/WaitAll on all paths",
	AppliesTo: notTestPackage,
	Run:       func(p *Pass) { runLifecycle(p, reqwaitSpec) },
}
