package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoadRespectsBuildConstraints: the loader must evaluate //go:build
// lines against the default (non-race, host GOOS/GOARCH) configuration
// — otherwise a tag-gated constant pair like core's race_on/race_off
// shim type-checks as a redeclaration.
func TestLoadRespectsBuildConstraints(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tagmod\n\ngo 1.22\n")
	write("on.go", "//go:build race\n\npackage tagmod\n\nconst raceEnabled = true\n")
	write("off.go", "//go:build !race\n\npackage tagmod\n\nconst raceEnabled = false\n")
	write("plain.go", "package tagmod\n\nvar _ = raceEnabled\n")
	write("osgated.go", "//go:build "+runtime.GOOS+"\n\npackage tagmod\n\nvar hostOnly = 1\n")
	write("othros.go", "//go:build plan9x\n\npackage tagmod\n\nconst raceEnabled = 7 // would redeclare if loaded\n")

	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "tagmod")
	if err != nil {
		t.Fatalf("tag-gated package failed to load: %v", err)
	}
	if got, want := len(pkg.Files), 3; got != want {
		t.Errorf("loaded %d files, want %d (off.go, plain.go, osgated.go)", got, want)
	}
	if pkg.Types.Scope().Lookup("hostOnly") == nil {
		t.Error("host-GOOS-gated file was excluded")
	}
	if obj := pkg.Types.Scope().Lookup("raceEnabled"); obj == nil {
		t.Error("raceEnabled missing: !race half not loaded")
	}
}
