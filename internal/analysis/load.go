package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are resolved from source under
// the module root, and standard-library imports go through go/importer's
// source importer so no compiled export data or network is needed.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	// IncludeTests also loads _test.go files (both in-package and
	// external test packages) for analysis.
	IncludeTests bool
	// Stats, when non-nil, accumulates per-rule wall time and the
	// package count across Check (simlint -stats).
	Stats *RunStats

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module rooted at moduleRoot (the
// directory containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// buildTagSatisfied evaluates one build tag against the default build
// configuration the analyzers model: the host GOOS/GOARCH, the gc
// toolchain, and any minimum-Go-version tag. Everything else — notably
// "race" — is off, matching what `go build` (no -race, no -tags)
// would select.
func buildTagSatisfied(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// fileIncluded reports whether the file's build constraint (if any)
// admits it under the default build configuration, so tag-gated shims
// (e.g. a `//go:build race` constant pair) are excluded exactly as the
// compiler would exclude them instead of colliding at type-check time.
func fileIncluded(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true // let the parser report the real error
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if constraint.IsGoBuild(trimmed) {
				expr, err := constraint.Parse(trimmed)
				if err != nil {
					return true
				}
				return expr.Eval(buildTagSatisfied)
			}
			continue
		}
		break // package clause or code: constraints only appear above it
	}
	return true
}

// Import implements types.Importer: module-local paths load from
// source, everything else falls through to the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the non-test Go files in dir under
// the given import path. Used directly by tests on testdata packages.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileIncluded(filepath.Join(dir, name)) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// TestSuffix and ExtTestSuffix mark the synthetic import paths of test
// packages; inModule strips them so scope rules treat test files like
// the package they exercise.
const (
	TestSuffix    = " [test]"
	ExtTestSuffix = " [ext-test]"
)

// LoadTests type-checks the _test.go files belonging to the package:
// in-package test files are checked together with the package sources,
// external (pkg_test) files as their own package. The returned
// packages' Files hold only the test files, so analyzers do not
// re-report the base package.
func (l *Loader) LoadTests(path string) ([]*Package, error) {
	base, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(base.Dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var inPkg, ext []*ast.File
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileIncluded(filepath.Join(base.Dir, name)) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(base.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if f.Name.Name == base.Types.Name() {
			inPkg = append(inPkg, f)
		} else {
			ext = append(ext, f)
		}
	}
	var out []*Package
	check := func(path string, all, report []*ast.File) error {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path, l.Fset, all, info)
		if err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		out = append(out, &Package{Path: path, Dir: base.Dir, Files: report, Types: tpkg, Info: info})
		return nil
	}
	if len(inPkg) > 0 {
		if err := check(path+TestSuffix, append(append([]*ast.File{}, base.Files...), inPkg...), inPkg); err != nil {
			return nil, err
		}
	}
	if len(ext) > 0 {
		if err := check(path+ExtTestSuffix, ext, ext); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Expand resolves command-line package patterns to import paths. It
// understands "./...", "dir/...", and plain (relative) directories,
// resolved against the current working directory.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(dir string) error {
		p, err := l.dirToPath(dir)
		if err != nil {
			return err
		}
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
		return nil
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := strings.TrimSuffix(rest, "/")
			if root == "" || root == "." {
				root = "."
			}
			dirs, err := packageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				if err := add(d); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := add(pat); err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// dirToPath maps a directory to its import path within the module.
func (l *Loader) dirToPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// packageDirs lists directories under root that contain non-test Go
// files, skipping testdata, vendor, and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// Check loads every pattern-matched package and runs the analyzers,
// returning all findings sorted by position with filenames relative to
// the module root.
func (l *Loader) Check(patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs := []*Package{pkg}
		if l.IncludeTests {
			tests, err := l.LoadTests(path)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, tests...)
		}
		for _, pk := range pkgs {
			pass := NewPass(l.Fset, pk.Path, l.ModulePath, pk.Files, pk.Types, pk.Info)
			if l.Stats != nil {
				l.Stats.Packages++
			}
			fs := pass.RunTimed(analyzers, l.Stats)
			for i := range fs {
				if rel, err := filepath.Rel(l.ModuleRoot, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					fs[i].Pos.Filename = rel
				}
			}
			all = append(all, fs...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return all, nil
}
