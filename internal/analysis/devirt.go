package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file resolves the two call shapes the static call graph alone
// cannot see through:
//
//   - Calls through interface values. These are devirtualized
//     CHA-style: the candidate targets of iface.M() are the M methods
//     of every concrete named type declared in the package that
//     implements the interface. The closed-world assumption — no
//     implementation outside the package dispatches through the call
//     site — is the documented soundness boundary (DESIGN.md §7f).
//     Rules consume the target set as a meet of obligations (a call
//     releases only if every target releases), so an unseen external
//     implementation can at worst hide a finding, never fabricate one.
//     A target set is usable only when every implementing method is
//     declared with a body in the pass; an embedded or external method
//     leaves the set open and the call stays conservative.
//
//   - Calls through function-valued locals (`f := rank.Isend; f(...)`).
//     A flow-insensitive scan maps each local variable to the single
//     static function or method value every assignment binds it to;
//     variables with conflicting, opaque, or aliased bindings are
//     dropped and their calls stay conservative.

// devirtIndex caches the pass's devirtualization state, built lazily
// once per pass.
type devirtIndex struct {
	// concrete lists the package's declared concrete named types in
	// scope-name order — the deterministic iteration basis.
	concrete []*types.Named
	// declared marks every function declared with a body in the pass.
	declared map[*types.Func]bool
	// targets caches interface method → implementing methods (nil for
	// "unresolvable": no implementers, or an open set).
	targets map[*types.Func][]*types.Func
	// methodVals maps a local function-valued variable to the one
	// static function it is bound to.
	methodVals map[types.Object]*types.Func
}

// devirtFor returns the pass's devirtualization index, building it on
// first use.
func (p *Pass) devirtFor() *devirtIndex {
	if p.devirt != nil {
		return p.devirt
	}
	d := &devirtIndex{
		declared:   map[*types.Func]bool{},
		targets:    map[*types.Func][]*types.Func{},
		methodVals: map[types.Object]*types.Func{},
	}
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		d.concrete = append(d.concrete, named)
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				d.declared[fn] = true
			}
		}
	}
	d.scanMethodValues(p)
	p.devirt = d
	return d
}

// scanMethodValues builds the function-valued-local map: one entry per
// variable whose every binding is the same statically known function.
// The poison set removes variables bound opaquely (a call result, a
// range clause, a multi-value assignment), bound to two different
// functions, or aliased by address-of.
func (d *devirtIndex) scanMethodValues(p *Pass) {
	poisoned := map[types.Object]bool{}
	bind := func(lhs, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.objOf(id)
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || obj.Parent() == p.Types.Scope() {
			return // only function-scoped locals are tracked
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return
		}
		fn := staticFuncValue(p, rhs)
		if fn == nil {
			poisoned[obj] = true
			return
		}
		if prev, seen := d.methodVals[obj]; seen && prev != fn {
			poisoned[obj] = true
			return
		}
		d.methodVals[obj] = fn
	}
	opaque := func(lhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := p.objOf(id); obj != nil {
			if v, isVar := obj.(*types.Var); isVar {
				if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
					poisoned[obj] = true
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				} else {
					for _, l := range n.Lhs {
						opaque(l)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						bind(n.Names[i], n.Values[i])
					}
				} else if len(n.Values) > 0 {
					for _, id := range n.Names {
						opaque(id)
					}
				}
			case *ast.RangeStmt:
				opaque(n.Key)
				opaque(n.Value)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					opaque(n.X) // address taken: aliases unknown
				}
			}
			return true
		})
	}
	for obj := range poisoned {
		delete(d.methodVals, obj)
	}
}

// staticFuncValue resolves an expression used as a value to the
// function it denotes: a package function (`helper`), a package-
// qualified function (`pkg.Fn`), or a bound method value (`rank.Isend`).
// Method expressions (`Rank.Isend`) are excluded — their signature
// shifts the receiver into the parameter list, which would misalign
// every per-parameter summary.
func staticFuncValue(p *Pass, e ast.Expr) *types.Func {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok && sel.Kind() != types.MethodVal {
			return nil
		}
		fn, _ := p.Info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// methodValue returns the function a function-valued identifier is
// statically bound to, or nil.
func (p *Pass) methodValue(id *ast.Ident) *types.Func {
	obj := p.objOf(id)
	if obj == nil {
		return nil
	}
	return p.devirtFor().methodVals[obj]
}

// ifaceTargets resolves a call through an interface value to the
// implementing methods declared in the package, or nil when the callee
// is not an interface method or the implementation set is open.
func (p *Pass) ifaceTargets(call *ast.CallExpr) []*types.Func {
	return p.ifaceTargetsOf(p.calledFunc(call))
}

// ifaceTargetsOf devirtualizes one interface method.
func (p *Pass) ifaceTargetsOf(fn *types.Func) []*types.Func {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	d := p.devirtFor()
	if ts, cached := d.targets[fn]; cached {
		return ts
	}
	var out []*types.Func
	for _, named := range d.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, p.Types, fn.Name())
		m, ok := obj.(*types.Func)
		if !ok || !d.declared[m] {
			// Embedded or external implementation: the set is open and
			// the call must stay conservative.
			out = nil
			break
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		out = nil
	}
	d.targets[fn] = out
	return out
}

// DevirtDump renders every devirtualized interface call edge in the
// pass as deterministic text (sorted by interface method name), e.g.:
//
//	iface.Backend.AcquireMR -> (*iface.Fast).AcquireMR | (*iface.Slow).AcquireMR
//
// Exposed for the summary-determinism tests.
func DevirtDump(p *Pass) string {
	edges := map[string][]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calledFunc(call)
			targets := p.ifaceTargetsOf(fn)
			if len(targets) == 0 {
				return true
			}
			var names []string
			for _, t := range targets {
				names = append(names, t.FullName())
			}
			edges[fn.FullName()] = names
			return true
		})
	}
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s -> %s\n", k, strings.Join(edges[k], " | "))
	}
	return b.String()
}
