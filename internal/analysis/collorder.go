package analysis

import "go/ast"

// CollOrder flags collective operations that only a rank-dependent
// subset of the communicator can reach. Every member must enter every
// collective in the same order; a Barrier or Allreduce nested under an
// `if rank == 0` branch (or placed after a `return` that only some
// ranks take) leaves the other members waiting forever — the classic
// collective-mismatch hang.
//
// Rank dependence is a syntactic taint from the rank identity (ID()/
// Rank() on a Rank or Comm, the core package's own rank fields)
// through local assignments into branch conditions. Nil comparisons
// are exempt even when tainted: `sub != nil` after a Split is how a
// rank legitimately discovers whether it belongs to the new
// communicator, and collectives on sub inside that guard involve only
// its members. Split itself is likewise never flagged — rank-dependent
// arguments are its purpose. Taint does not flow through control
// dependence (a flag set inside a rank branch and tested later), a
// documented false-negative boundary.
var CollOrder = &Analyzer{
	Name:      "collorder",
	Scope:     ScopeInter,
	Doc:       "collectives must not be reachable only under rank-dependent control flow",
	AppliesTo: notTestPackage,
	Run:       runCollOrder,
}

func runCollOrder(p *Pass) {
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		if !mentionsCommNames(body, collectiveNames) {
			return
		}
		events, _ := collectCommEvents(p, body)
		for _, ev := range events {
			if ev.kind != commCollective {
				continue
			}
			switch {
			case ev.rankGuarded:
				p.Reportf(ev.call.Pos(), "collective %s is guarded by a rank-dependent condition: ranks taking the other branch never enter it and the collective hangs", ev.name)
			case ev.afterRankExit:
				p.Reportf(ev.call.Pos(), "collective %s follows a rank-dependent early exit: ranks that left never enter it and the collective hangs", ev.name)
			}
		}
	})
}
