package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file is the shared machinery of the communication-safety rules
// (bufhazard, blockcycle, collorder): classification of the
// simulator's MPI-style communication calls, a per-function constant
// environment over the ConstVal lattice in dataflow.go, rank-taint
// tracking for rank-dependent control flow, slice descriptors with a
// must-overlap test for buffer aliasing, and a guard-aware walk that
// turns a function body into an ordered list of communication events.
//
// Scope discipline: every classification requires the method name AND
// the receiver's named type (Rank or Comm) AND the call's arity, so
// look-alike APIs (scif endpoints, the stand-in types of other rules'
// corpora) do not match.
//
// Precision discipline: the rules built on this file only fire on
// must-facts. A peer match requires provably equal expressions, a
// buffer conflict requires provably overlapping extents, and anything
// the lattice cannot decide stays silent. The known false-negative
// boundaries are documented in DESIGN.md §7d.

// defaultEagerMax mirrors perfmodel's default §IV-B3 protocol-switch
// threshold: payloads at or below it complete eagerly (the sender does
// not block on the receiver), larger ones take the rendezvous path and
// block until the peer arrives.
const defaultEagerMax = 8192

// commRecvTypes are the receiver named types whose methods form the
// communication API.
var commRecvTypes = map[string]bool{"Rank": true, "Comm": true}

// collectiveNames are the operations every member of the communicator
// must enter, in the same order. Split is deliberately absent: it is
// collective too, but rank-dependent arguments are its entire purpose,
// so collorder would flag every legitimate use.
var collectiveNames = map[string]bool{
	"Barrier": true, "Bcast": true, "Reduce": true, "Allreduce": true,
	"Allgather": true, "Gather": true, "Scatter": true, "Gatherv": true,
	"Scatterv": true, "Scan": true, "ReduceScatter": true, "Alltoall": true,
}

// commKind classifies one communication call.
type commKind int

const (
	commNone     commKind = iota
	commSend              // blocking Send(p, dst, tag, s)
	commRecv              // blocking Recv(p, src, tag, s)
	commSendrecv          // Sendrecv(p, dst, stag, sbuf, src, rtag, rbuf)
	commIsend
	commIrecv
	commCollective
)

// classifyComm resolves a call against the communication API, or
// commNone for everything else.
func classifyComm(p *Pass, call *ast.CallExpr) commKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return commNone
	}
	if !commRecvTypes[recvTypeName(p, call)] {
		return commNone
	}
	switch sel.Sel.Name {
	case "Send":
		if len(call.Args) >= 4 {
			return commSend
		}
	case "Recv":
		if len(call.Args) >= 4 {
			return commRecv
		}
	case "Sendrecv":
		if len(call.Args) >= 7 {
			return commSendrecv
		}
	case "Isend":
		if len(call.Args) >= 4 {
			return commIsend
		}
	case "Irecv":
		if len(call.Args) >= 4 {
			return commIrecv
		}
	default:
		if collectiveNames[sel.Sel.Name] {
			return commCollective
		}
	}
	return commNone
}

// ---- Constant environment ----

// constEnv evaluates integer expressions inside one function over the
// ConstVal lattice. It is flow-insensitive: every assignment to a
// local joins into the variable's value, so a variable holding two
// different constants is Varying. That is the precision the
// communication rules need — peers, tags, and sizes are usually bound
// once.
type constEnv struct {
	p *Pass
	// vals holds integer locals; a missing object reads as Unknown
	// during the environment fixpoint and as not-Known afterwards.
	vals map[types.Object]ConstVal
	// bufLen holds the byte length of locally allocated buffers
	// (b := r.Mem(n), d.Alloc(n)).
	bufLen map[types.Object]ConstVal
	// slices maps a slice-typed local to its single defining expression
	// (nil after a second assignment), letting descriptors resolve
	// through s := Whole(b) indirection.
	slices map[types.Object]ast.Expr
	multi  map[types.Object]bool
	// consts holds the package's const-returning helper summaries.
	consts map[*types.Func]ConstVal
}

// newConstEnv builds the constant environment of one function body.
// Nested function literals are skipped: they are analyzed on their own.
func newConstEnv(p *Pass, body *ast.BlockStmt) *constEnv {
	env := &constEnv{
		p:      p,
		vals:   map[types.Object]ConstVal{},
		bufLen: map[types.Object]ConstVal{},
		slices: map[types.Object]ast.Expr{},
		multi:  map[types.Object]bool{},
		consts: p.constSummaries(),
	}
	// Bounded fixpoint over the assignments in source order: a second
	// round resolves values fed backwards through loops, and values
	// only climb the lattice so the bound is safe.
	for round := 0; round < 3; round++ {
		if !env.scan(body) {
			break
		}
	}
	return env
}

// scan records every assignment in the body once and reports whether
// any recorded value changed.
func (env *constEnv) scan(body *ast.BlockStmt) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				changed = env.record(n.Lhs, n.Rhs) || changed
			} else {
				// Compound assignment (+=, <<=, ...): the value moves.
				for _, l := range n.Lhs {
					changed = env.poison(l) || changed
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, id := range vs.Names {
							lhs[i] = id
						}
						changed = env.record(lhs, vs.Values) || changed
					}
				}
			}
		case *ast.IncDecStmt:
			changed = env.poison(n.X) || changed
		case *ast.RangeStmt:
			changed = env.poison(n.Key) || changed
			changed = env.poison(n.Value) || changed
		}
		return true
	})
	return changed
}

// poison joins Varying into an assigned identifier's value.
func (env *constEnv) poison(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := env.p.objOf(id)
	if obj == nil {
		return false
	}
	old := env.vals[obj]
	nv := old.Join(VaryingConst())
	if nv != old {
		env.vals[obj] = nv
		return true
	}
	return false
}

// record joins one assignment's effects into the environment.
func (env *constEnv) record(lhs, rhs []ast.Expr) bool {
	if len(lhs) != len(rhs) {
		// Multi-value call or comma-ok: nothing the evaluator can see
		// through; targets it already tracks move to Varying.
		changed := false
		for _, l := range lhs {
			changed = env.poison(l) || changed
		}
		return changed
	}
	changed := false
	for i := range lhs {
		id, ok := lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := env.p.objOf(id)
		if obj == nil {
			continue
		}
		switch namedTypeName(obj.Type()) {
		case "Slice":
			prev, seen := env.slices[obj]
			if !seen {
				env.slices[obj] = rhs[i]
			} else if prev != rhs[i] {
				env.multi[obj] = true
			}
			continue
		case "Buffer":
			if call, ok := unparen(rhs[i]).(*ast.CallExpr); ok && len(call.Args) >= 1 {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Mem" || sel.Sel.Name == "Alloc") {
					old := env.bufLen[obj]
					nv := old.Join(env.eval(call.Args[0]))
					if nv != old {
						env.bufLen[obj] = nv
						changed = true
					}
					continue
				}
			}
			env.bufLen[obj] = VaryingConst()
			continue
		}
		if !isIntObj(obj) {
			continue
		}
		old := env.vals[obj]
		nv := old.Join(env.eval(rhs[i]))
		if nv != old {
			env.vals[obj] = nv
			changed = true
		}
	}
	return changed
}

// isIntObj reports whether the object's type is an integer scalar.
func isIntObj(obj types.Object) bool {
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// eval folds an expression into the lattice: the type checker's own
// constant folding first, then locals, binops, conversions, and
// const-returning helper calls.
func (env *constEnv) eval(e ast.Expr) ConstVal {
	e = unparen(e)
	if tv, ok := env.p.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return KnownConst(v)
		}
		return VaryingConst()
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := env.p.objOf(e); obj != nil {
			return env.vals[obj] // missing reads as Unknown (bottom)
		}
	case *ast.BinaryExpr:
		return constBinop(e.Op, env.eval(e.X), env.eval(e.Y))
	case *ast.UnaryExpr:
		return constUnary(e.Op, env.eval(e.X))
	case *ast.CallExpr:
		if fn := env.p.calledFunc(e); fn != nil {
			if v, ok := env.consts[fn]; ok {
				return v
			}
			// A call through an interface folds only when every
			// devirtualized target provably returns the same constant.
			if targets := env.p.ifaceTargetsOf(fn); targets != nil {
				v := UnknownConst()
				foldable := true
				for _, t := range targets {
					tv, ok := env.consts[t]
					if !ok {
						foldable = false
						break
					}
					v = v.Join(tv)
				}
				if foldable {
					if _, known := v.Known(); known {
						return v
					}
				}
			}
		}
		// Conversions like int(x) are transparent.
		if len(e.Args) == 1 {
			if tv, ok := env.p.Info.Types[e.Fun]; ok && tv.IsType() {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return env.eval(e.Args[0])
				}
			}
		}
	}
	return VaryingConst()
}

// constSummaries computes (once per pass) which package functions
// provably return one integer constant: single-result functions whose
// every return folds to the same Known value. Computed bottom-up over
// the call graph so helpers returning helpers resolve too.
func (p *Pass) constSummaries() map[*types.Func]ConstVal {
	if p.constFuncs != nil {
		return p.constFuncs
	}
	out := map[*types.Func]ConstVal{}
	g := p.CallGraph()
	for _, scc := range g.SCCs {
		for _, fn := range scc {
			sig := fn.Type().(*types.Signature)
			if sig.Results().Len() != 1 {
				continue
			}
			b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsInteger == 0 {
				continue
			}
			fd := g.Funcs[fn]
			env := &constEnv{
				p:      p,
				vals:   map[types.Object]ConstVal{},
				bufLen: map[types.Object]ConstVal{},
				slices: map[types.Object]ast.Expr{},
				multi:  map[types.Object]bool{},
				consts: out,
			}
			for round := 0; round < 3; round++ {
				if !env.scan(fd.Body) {
					break
				}
			}
			v := UnknownConst()
			returns := 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if ret, ok := n.(*ast.ReturnStmt); ok {
					returns++
					if len(ret.Results) == 1 {
						v = v.Join(env.eval(ret.Results[0]))
					} else {
						v = VaryingConst() // naked return: not foldable
					}
				}
				return true
			})
			if returns > 0 {
				if _, known := v.Known(); known {
					out[fn] = v
				}
			}
		}
	}
	p.constFuncs = out
	return out
}

// mustSameValue reports whether two expressions provably evaluate to
// the same value at their respective sites: equal folded constants, or
// structural equality over the same objects. A variable reassigned
// between the two sites can defeat the structural half — the rules
// accept that imprecision because peers are almost always bound once.
func (env *constEnv) mustSameValue(a, b ast.Expr) bool {
	av, aok := env.eval(a).Known()
	bv, bok := env.eval(b).Known()
	if aok && bok {
		return av == bv
	}
	if aok != bok {
		return false
	}
	return env.structEqual(a, b)
}

// structEqual compares two expressions structurally, resolving
// identifiers to their objects.
func (env *constEnv) structEqual(a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := env.p.objOf(ax), env.p.objOf(bx)
		return ao != nil && ao == bo
	case *ast.BasicLit:
		bx, ok := b.(*ast.BasicLit)
		return ok && ax.Kind == bx.Kind && ax.Value == bx.Value
	case *ast.BinaryExpr:
		bx, ok := b.(*ast.BinaryExpr)
		return ok && ax.Op == bx.Op && env.structEqual(ax.X, bx.X) && env.structEqual(ax.Y, bx.Y)
	case *ast.UnaryExpr:
		bx, ok := b.(*ast.UnaryExpr)
		return ok && ax.Op == bx.Op && env.structEqual(ax.X, bx.X)
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && env.structEqual(ax.X, bx.X)
	case *ast.CallExpr:
		bx, ok := b.(*ast.CallExpr)
		if !ok || len(ax.Args) != len(bx.Args) {
			return false
		}
		af, bf := env.p.calledFunc(ax), env.p.calledFunc(bx)
		if af == nil || af != bf {
			return false
		}
		if as, ok := ax.Fun.(*ast.SelectorExpr); ok {
			bs, ok := bx.Fun.(*ast.SelectorExpr)
			if !ok || !env.structEqual(as.X, bs.X) {
				return false
			}
		}
		for i := range ax.Args {
			if !env.mustSameValue(ax.Args[i], bx.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// ---- Slice descriptors ----

// bufDesc describes the extent of one buffer access for the
// must-overlap test.
type bufDesc struct {
	kind uint8
	// root is the buffer (or slice) variable the extent is relative to.
	root types.Object
	// off and n bound descRange extents in bytes.
	off, n ConstVal
	// call is the producing helper for descCall extents (row(i), ...).
	call *ast.CallExpr
}

const (
	descWhole  uint8 = iota // the entire buffer: Whole(b)
	descRange               // a byte range: b[off, off+n): Sub, Slice{...}
	descOpaque              // a slice variable of unknown extent (parameter)
	descCall                // produced by a helper call; compared by call identity
	descEmpty               // the zero Slice{}: no storage, never conflicts
)

// sliceDesc resolves a Slice-valued expression to a descriptor, or nil
// when the extent cannot be tracked.
func (env *constEnv) sliceDesc(e ast.Expr) *bufDesc {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := env.p.objOf(e)
		if obj == nil || env.multi[obj] {
			return nil
		}
		if def, ok := env.slices[obj]; ok {
			return env.sliceDesc(def)
		}
		// A parameter or field-sourced slice: its extent is opaque, but
		// identity against itself is still decidable.
		return &bufDesc{kind: descOpaque, root: obj}
	case *ast.CompositeLit:
		if namedTypeName(env.p.typeOf(e)) != "Slice" {
			return nil
		}
		var buf, off, n ast.Expr
		for i, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					switch key.Name {
					case "Buf":
						buf = kv.Value
					case "Off":
						off = kv.Value
					case "N":
						n = kv.Value
					}
				}
				continue
			}
			switch i {
			case 0:
				buf = el
			case 1:
				off = el
			case 2:
				n = el
			}
		}
		if buf == nil || n == nil {
			// Slice{} (the barrier's zero-byte token) and Slice{Buf: b}
			// carry no extent: nothing to conflict with.
			return &bufDesc{kind: descEmpty}
		}
		id, ok := unparen(buf).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := env.p.objOf(id)
		if obj == nil {
			return nil
		}
		offV := KnownConst(0)
		if off != nil {
			offV = env.eval(off)
		}
		return &bufDesc{kind: descRange, root: obj, off: offV, n: env.eval(n)}
	case *ast.CallExpr:
		switch fun := unparen(e.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "Whole" && len(e.Args) == 1 {
				if id, ok := unparen(e.Args[0]).(*ast.Ident); ok {
					if obj := env.p.objOf(id); obj != nil {
						return &bufDesc{kind: descWhole, root: obj}
					}
				}
				return nil
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Whole" && len(e.Args) == 1 {
				if id, ok := unparen(e.Args[0]).(*ast.Ident); ok {
					if obj := env.p.objOf(id); obj != nil {
						return &bufDesc{kind: descWhole, root: obj}
					}
				}
				return nil
			}
			if fun.Sel.Name == "Sub" && len(e.Args) == 2 {
				base := env.sliceDesc(fun.X)
				if base == nil {
					return &bufDesc{kind: descCall, call: e}
				}
				off := env.eval(e.Args[0])
				switch base.kind {
				case descWhole:
					return &bufDesc{kind: descRange, root: base.root, off: off, n: env.eval(e.Args[1])}
				case descRange:
					return &bufDesc{kind: descRange, root: base.root, off: constBinop(token.ADD, base.off, off), n: env.eval(e.Args[1])}
				case descEmpty:
					return &bufDesc{kind: descEmpty}
				}
				return &bufDesc{kind: descCall, call: e}
			}
		}
		// A helper producing the slice (row(i), rowSlice(cur, i)):
		// compared by callee identity and argument values.
		if env.p.calledFunc(e) != nil {
			return &bufDesc{kind: descCall, call: e}
		}
	}
	return nil
}

// typeOf returns the expression's type, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// mustOverlap reports whether two descriptors provably address at
// least one common byte. Undecidable pairs answer false: the rules
// built on this stay silent rather than guess.
func (env *constEnv) mustOverlap(a, b *bufDesc) bool {
	if a == nil || b == nil || a.kind == descEmpty || b.kind == descEmpty {
		return false
	}
	if a.kind == descCall || b.kind == descCall {
		return a.kind == descCall && b.kind == descCall && env.structEqual(a.call, b.call)
	}
	if a.root == nil || a.root != b.root {
		return false
	}
	switch {
	case a.kind == descOpaque || b.kind == descOpaque:
		// Same object twice: the very same slice value.
		return a.kind == b.kind
	case a.kind == descWhole && b.kind == descWhole:
		return true
	case a.kind == descWhole || b.kind == descWhole:
		r := a
		if a.kind == descWhole {
			r = b
		}
		if n, ok := r.n.Known(); ok && n <= 0 {
			return false
		}
		// Any non-empty sub-range of a buffer meets the whole buffer.
		return true
	default: // range vs range
		ao, ok1 := a.off.Known()
		an, ok2 := a.n.Known()
		bo, ok3 := b.off.Known()
		bn, ok4 := b.n.Known()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return false
		}
		return ao < bo+bn && bo < ao+an
	}
}

// ---- Rank taint ----

// rankDeps tracks which locals of one function derive from the
// process's own rank identity — the seed of rank-dependent control
// flow. Propagation is syntactic: any assignment whose source mentions
// a tainted value taints the target. Control-dependence is not
// propagated (a flag set inside a rank branch stays untainted), a
// documented false-negative boundary.
type rankDeps struct {
	p       *Pass
	tainted map[types.Object]bool
}

// isRankSource reports whether the expression reads the process's rank
// within a communicator: a zero-argument ID/Rank method on Rank or
// Comm, or the id/myRank fields inside package core itself.
func isRankSource(p *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || len(e.Args) != 0 {
			return false
		}
		name := sel.Sel.Name
		if name != "ID" && name != "Rank" {
			return false
		}
		return commRecvTypes[recvTypeName(p, e)]
	case *ast.SelectorExpr:
		t := namedTypeName(p.typeOf(e.X))
		return (e.Sel.Name == "id" && t == "Rank") || (e.Sel.Name == "myRank" && t == "Comm")
	}
	return false
}

// newRankDeps computes the function's rank-tainted locals to a
// fixpoint. Nested function literals are skipped.
func newRankDeps(p *Pass, body *ast.BlockStmt) *rankDeps {
	rd := &rankDeps{p: p, tainted: map[types.Object]bool{}}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				for i, l := range n.Lhs {
					var src ast.Expr
					switch {
					case len(n.Lhs) == len(n.Rhs):
						src = n.Rhs[i]
					case len(n.Rhs) == 1:
						src = n.Rhs[0]
					}
					changed = rd.taintIf(l, src) || changed
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, sp := range gd.Specs {
						vs, ok := sp.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for i, id := range vs.Names {
							var src ast.Expr
							switch {
							case len(vs.Values) == len(vs.Names):
								src = vs.Values[i]
							case len(vs.Values) == 1:
								src = vs.Values[0]
							}
							changed = rd.taintIf(id, src) || changed
						}
					}
				}
			case *ast.RangeStmt:
				if rd.depends(n.X) {
					changed = rd.taintIf(n.Key, n.X) || changed
					changed = rd.taintIf(n.Value, n.X) || changed
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return rd
}

// taintIf taints the target identifier when the source is
// rank-dependent, reporting whether the set grew.
func (rd *rankDeps) taintIf(target, src ast.Expr) bool {
	if target == nil || src == nil {
		return false
	}
	id, ok := unparen(target).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := rd.p.objOf(id)
	if obj == nil || rd.tainted[obj] || !rd.depends(src) {
		return false
	}
	rd.tainted[obj] = true
	return true
}

// depends reports whether the expression mentions the rank identity —
// a source pattern or a tainted local — anywhere inside it.
func (rd *rankDeps) depends(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ne, ok := n.(ast.Expr); ok && isRankSource(rd.p, ne) {
			found = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := rd.p.objOf(id); obj != nil && rd.tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rankCond reports whether a branch condition makes control flow
// rank-dependent. Nil comparisons are exempt even when the compared
// value is tainted: `sub != nil` after a Split partitions by
// communicator membership, and a collective guarded by its own
// communicator's existence is the legitimate Split idiom.
func (rd *rankDeps) rankCond(cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	if _, _, ok := nilComparison(rd.p.Info, cond); ok {
		return false
	}
	return rd.depends(cond)
}

// ---- Guarded communication events ----

// commEvent is one communication call found by the guarded walk of a
// function body, in source order.
type commEvent struct {
	call *ast.CallExpr
	kind commKind
	name string
	// peer is the destination/source argument (nil for collectives) and
	// size the lattice value of the payload length in bytes.
	peer ast.Expr
	size ConstVal
	// guards records the enclosing branch decisions, for
	// path-compatibility checks between events.
	guards []eventGuard
	// rankGuarded: an enclosing condition depends on the process's
	// rank, so different ranks take different paths through this call.
	rankGuarded bool
	// afterRankExit: an earlier statement returned (or broke out of the
	// enclosing loop) under a rank-dependent condition, so only a
	// rank-dependent subset of processes reaches this call.
	afterRankExit bool
}

// eventGuard identifies one branch decision: the controlling node and
// which way it went. Two events conflict — cannot lie on one path —
// when they disagree on the same node.
type eventGuard struct {
	at  ast.Node
	arm int
}

// compatiblePaths reports whether some execution can pass through both
// events.
func compatiblePaths(a, b *commEvent) bool {
	for _, ga := range a.guards {
		for _, gb := range b.guards {
			if ga.at == gb.at && ga.arm != gb.arm {
				return false
			}
		}
	}
	return true
}

// commWalker collects a body's communication events with their guard
// context.
type commWalker struct {
	p    *Pass
	env  *constEnv
	deps *rankDeps

	guards    []eventGuard
	rankDepth int
	// funcExited: a return/terminating call ran under a rank guard, so
	// the remainder of the function sees only a rank subset.
	funcExited bool
	// loopExits parallels the enclosing-loop stack; a true entry means
	// a break/continue ran under a rank guard inside that loop.
	loopExits []bool
	events    []*commEvent
}

// collectCommEvents walks one function body and returns its
// communication events in source order, along with the constant
// environment the events' peers and sizes were folded in.
func collectCommEvents(p *Pass, body *ast.BlockStmt) ([]*commEvent, *constEnv) {
	env := newConstEnv(p, body)
	w := &commWalker{p: p, env: env, deps: newRankDeps(p, body)}
	w.stmtList(body.List)
	return w.events, env
}

func (w *commWalker) exited() bool {
	if w.funcExited {
		return true
	}
	for _, e := range w.loopExits {
		if e {
			return true
		}
	}
	return false
}

// scanCalls records the communication events inside one straight-line
// statement (or expression), skipping nested function literals.
func (w *commWalker) scanCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := classifyComm(w.p, call)
		if kind == commNone {
			return true
		}
		ev := &commEvent{
			call:          call,
			kind:          kind,
			name:          call.Fun.(*ast.SelectorExpr).Sel.Name,
			guards:        append([]eventGuard(nil), w.guards...),
			rankGuarded:   w.rankDepth > 0,
			afterRankExit: w.exited(),
		}
		switch kind {
		case commSend, commRecv, commIsend, commIrecv:
			ev.peer = call.Args[1]
			ev.size = w.env.sliceSize(call.Args[3])
		case commSendrecv:
			ev.peer = call.Args[1]
			ev.size = w.env.sliceSize(call.Args[3])
		default:
			// Wait/Test and collectives carry no peer or payload extent;
			// the event records only its kind and guards.
		}
		w.events = append(w.events, ev)
		return true
	})
}

// sliceSize folds a Slice-valued expression's byte length.
func (env *constEnv) sliceSize(e ast.Expr) ConstVal {
	d := env.sliceDesc(e)
	if d == nil {
		return VaryingConst()
	}
	switch d.kind {
	case descEmpty:
		return KnownConst(0)
	case descWhole:
		if v, ok := env.bufLen[d.root]; ok {
			return v
		}
	case descRange:
		return d.n
	}
	return VaryingConst()
}

// markExit records a statement that leaves the current control scope
// while rank-guarded.
func (w *commWalker) markExit(isReturn bool) {
	if w.rankDepth == 0 {
		return
	}
	if isReturn || len(w.loopExits) == 0 {
		w.funcExited = true
		return
	}
	w.loopExits[len(w.loopExits)-1] = true
}

func (w *commWalker) stmtList(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *commWalker) withGuard(at ast.Node, arm int, rankDep bool, body func()) {
	w.guards = append(w.guards, eventGuard{at: at, arm: arm})
	if rankDep {
		w.rankDepth++
	}
	body()
	if rankDep {
		w.rankDepth--
	}
	w.guards = w.guards[:len(w.guards)-1]
}

func (w *commWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmtList(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scanCalls(s.Cond)
		rankDep := w.deps.rankCond(s.Cond)
		w.withGuard(s, 0, rankDep, func() { w.stmt(s.Body) })
		if s.Else != nil {
			w.withGuard(s, 1, rankDep, func() { w.stmt(s.Else) })
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scanCalls(s.Cond)
		rankDep := w.deps.rankCond(s.Cond)
		w.loopExits = append(w.loopExits, false)
		w.withGuard(s, 0, rankDep, func() {
			w.stmt(s.Body)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		})
		w.loopExits = w.loopExits[:len(w.loopExits)-1]
	case *ast.RangeStmt:
		w.scanCalls(s.X)
		w.loopExits = append(w.loopExits, false)
		w.withGuard(s, 0, false, func() { w.stmt(s.Body) })
		w.loopExits = w.loopExits[:len(w.loopExits)-1]
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.scanCalls(s.Tag)
		rankDep := w.deps.rankCond(s.Tag)
		for i, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			armDep := rankDep
			for _, e := range cc.List {
				w.scanCalls(e)
				armDep = armDep || w.deps.rankCond(e)
			}
			w.withGuard(s, i, armDep, func() { w.stmtList(cc.Body) })
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for i, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.withGuard(s, i, false, func() { w.stmtList(cc.Body) })
		}
	case *ast.SelectStmt:
		for i, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.withGuard(s, i, false, func() { w.stmtList(cc.Body) })
		}
	case *ast.ReturnStmt:
		w.scanCalls(s)
		// A return whose error result is provably non-nil is failure
		// propagation: the harness aborts the whole run on any rank
		// error, so it does not desynchronize the survivors. Only clean
		// early exits (`return nil`, non-error results) diverge.
		if !w.errorReturn(s) {
			w.markExit(true)
		}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			w.markExit(false)
		case token.GOTO:
			w.markExit(true) // conservative: treat like a function exit
		}
	case *ast.ExprStmt:
		w.scanCalls(s)
		if terminatingCall(s.X) {
			w.markExit(true)
		}
	default:
		// Assign, Decl, Defer, Go, Send, IncDec: straight-line.
		w.scanCalls(s)
	}
}

// errorReturn reports whether the return's final result is an
// error-typed expression other than nil — the error-propagation shape
// (`return err`, `return fmt.Errorf(...)`).
func (w *commWalker) errorReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := unparen(ret.Results[len(ret.Results)-1])
	if nilExpr(w.p.Info, last) {
		return false
	}
	tv, ok := w.p.Info.Types[last]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// mentionsCommNames cheaply pre-screens a body for any of the given
// method names so the walkers only run where they can matter.
func mentionsCommNames(body *ast.BlockStmt, names map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && names[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// forEachFuncBody invokes fn on every function declaration and
// function literal body in the pass, the shared iteration of the
// communication-safety rules.
func forEachFuncBody(p *Pass, fn func(body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}
