package analysis

import (
	"go/ast"
	"strconv"
)

// RawGo flags real concurrency — go statements, the sync packages, and
// channel construction — everywhere except the sim engine internals.
// The engine is the only component allowed to own goroutines: it runs
// exactly one simulated process at a time and sequences everything
// else through the virtual calendar. Concurrency introduced anywhere
// else races against that schedule and destroys reproducibility.
var RawGo = &Analyzer{
	Name:  "rawgo",
	Scope: ScopeIntra,
	Doc:   "forbid goroutines, sync primitives, and channels outside internal/sim",
	AppliesTo: func(p *Pass) bool {
		return !p.inModule("internal/sim")
	},
	Run: runRawGo,
}

func runRawGo(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				p.Reportf(imp.Pos(), "import of %s outside internal/sim: real locking orders run under the host scheduler, not the virtual calendar", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "raw goroutine outside internal/sim: spawn simulated processes with Engine.Spawn so dispatch order stays deterministic")
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, isChan := n.Args[0].(*ast.ChanType); isChan {
						p.Reportf(n.Pos(), "channel construction outside internal/sim: use sim.Queue/sim.Event for deterministic rendezvous")
					}
				}
			}
			return true
		})
	}
}
