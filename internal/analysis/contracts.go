package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the declarative contract layer behind the lifecycle
// rules. The verbs each rule recognizes are not hardcoded in the rule
// implementations: builtinContracts is the checked-in contract spec
// for the stdlib-visible DCFA/IB stack (it populates the four
// lifecycleSpecs at init), and source code can declare further
// contracts directly on functions and methods — including interface
// methods — with a directive:
//
//	//simlint:contract <rule> <role> [reason]
//
// on the line above the declaration or in its doc comment. Roles:
//
//	acquire — the call returns a fresh tracked resource (its first
//	          result must be the rule's resource type)
//	release — the call discharges the obligation of every
//	          resource-typed argument on every path
//	advance — the call advances the protocol (offload sync)
//	test    — the call releases only when its result is true
//	borrow  — the call only reads its arguments; suppresses the
//	          conservative everything-escapes treatment
//	pass    — the call returns its resource-typed argument (a wrapper)
//
// A directive on an interface method applies to every call dispatched
// through that interface, so a new transport backend gets lifecycle
// checking by declaring contracts once on the interface it implements
// — no analyzer change required. A directive on a function that also
// has a body is authoritative: it overrides the inferred summary.

// contractRole is one lifecycle obligation role.
type contractRole int

const (
	roleAcquire contractRole = iota + 1
	roleRelease
	roleAdvance
	roleTest
	roleBorrow
	rolePass
)

var contractRoleNames = map[string]contractRole{
	"acquire": roleAcquire,
	"release": roleRelease,
	"advance": roleAdvance,
	"test":    roleTest,
	"borrow":  roleBorrow,
	"pass":    rolePass,
}

func (r contractRole) String() string {
	switch r {
	case roleAcquire:
		return "acquire"
	case roleRelease:
		return "release"
	case roleAdvance:
		return "advance"
	case roleTest:
		return "test"
	case roleBorrow:
		return "borrow"
	case rolePass:
		return "pass"
	}
	return "?"
}

// builtinContracts is the contract spec for the repository's visible
// protocol API. Each entry binds one callee name (optionally
// restricted to a receiver type) to a role under one rule; init()
// below derives the lifecycleSpecs' verb tables from it, so this table
// is the single place the recognized API surface lives.
var builtinContracts = []struct {
	rule string
	recv string // required receiver named type; "" accepts any
	name string
	role contractRole
}{
	{"mrleak", "", "RegMR", roleAcquire},
	{"mrleak", "", "RegMRBuffer", roleAcquire},
	{"mrleak", "", "DeregMR", roleRelease},

	{"mrpin", "MRCache", "Get", roleAcquire},
	{"mrpin", "MRCache", "Release", roleRelease},

	{"offload", "", "RegOffloadMR", roleAcquire},
	{"offload", "", "SyncOffloadMR", roleAdvance},
	{"offload", "", "DeregOffloadMR", roleRelease},

	{"reqwait", "", "Isend", roleAcquire},
	{"reqwait", "", "Irecv", roleAcquire},
	{"reqwait", "", "Wait", roleRelease},
	{"reqwait", "", "WaitAll", roleRelease},
	{"reqwait", "", "Test", roleTest},
}

// init populates the four lifecycleSpecs' verb tables from
// builtinContracts. Package-level spec variables initialize before any
// init function runs, so the pointers lifecycleSpecs returns are valid
// here.
func init() {
	byRule := map[string]*lifecycleSpec{}
	for _, spec := range lifecycleSpecs() {
		byRule[spec.rule] = spec
	}
	ensure := func(m *map[string]bool, name string) {
		if *m == nil {
			*m = map[string]bool{}
		}
		(*m)[name] = true
	}
	for _, c := range builtinContracts {
		spec := byRule[c.rule]
		if spec == nil {
			panic("simlint: builtin contract names unknown rule " + c.rule)
		}
		switch c.role {
		case roleAcquire:
			ensure(&spec.createNames, c.name)
			spec.createRecv = c.recv
		case roleRelease:
			ensure(&spec.releaseNames, c.name)
			spec.releaseRecv = c.recv
		case roleAdvance:
			ensure(&spec.advanceNames, c.name)
		case roleTest:
			ensure(&spec.testNames, c.name)
		default:
			panic("simlint: builtin contracts must use acquire/release/advance/test")
		}
	}
}

const contractPrefix = "//simlint:contract"

// parseContract parses one //simlint:contract comment.
func parseContract(text string) (rule string, role contractRole, ok bool) {
	if !strings.HasPrefix(text, contractPrefix) {
		return "", 0, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, contractPrefix))
	if len(fields) < 2 {
		return "", 0, false
	}
	role, ok = contractRoleNames[fields[1]]
	if !ok {
		return "", 0, false
	}
	return fields[0], role, true
}

// contractIndex holds one pass's directive contracts.
type contractIndex struct {
	// byFunc maps a declared function or interface method to its
	// rule → role contracts.
	byFunc map[*types.Func]map[string]contractRole
	// acquireNames collects, per rule, the names carrying an acquire
	// contract — the lifecycle prescreen consults it alongside the
	// builtin creation names.
	acquireNames map[string]map[string]bool
}

// contractsFor returns the pass's directive-contract index, building
// it on first use: every //simlint:contract comment is attached to the
// function declaration or interface method it annotates (doc comment,
// trailing comment, or the line directly above).
func (p *Pass) contractsFor() *contractIndex {
	if p.contracts != nil {
		return p.contracts
	}
	ix := &contractIndex{
		byFunc:       map[*types.Func]map[string]contractRole{},
		acquireNames: map[string]map[string]bool{},
	}
	type decl struct {
		rule string
		role contractRole
	}
	lines := map[string]map[int][]decl{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, role, ok := parseContract(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if lines[pos.Filename] == nil {
					lines[pos.Filename] = map[int][]decl{}
				}
				lines[pos.Filename][pos.Line] = append(lines[pos.Filename][pos.Line], decl{rule, role})
			}
		}
	}
	attachAt := func(fn *types.Func, file string, line int) {
		for _, d := range lines[file][line] {
			if ix.byFunc[fn] == nil {
				ix.byFunc[fn] = map[string]contractRole{}
			}
			ix.byFunc[fn][d.rule] = d.role
			if d.role == roleAcquire {
				if ix.acquireNames[d.rule] == nil {
					ix.acquireNames[d.rule] = map[string]bool{}
				}
				ix.acquireNames[d.rule][fn.Name()] = true
			}
		}
	}
	attachAround := func(fn *types.Func, doc, trailing *ast.CommentGroup, decl ast.Node) {
		if fn == nil {
			return
		}
		if doc != nil {
			for _, c := range doc.List {
				pos := p.Fset.Position(c.Pos())
				attachAt(fn, pos.Filename, pos.Line)
			}
		}
		if trailing != nil {
			for _, c := range trailing.List {
				pos := p.Fset.Position(c.Pos())
				attachAt(fn, pos.Filename, pos.Line)
			}
		}
		// Line directly above the declaration, for directives separated
		// from the doc comment (mirrors //simlint:hot attachment).
		pos := p.Fset.Position(decl.Pos())
		attachAt(fn, pos.Filename, pos.Line-1)
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				attachAround(fn, fd.Doc, nil, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, field := range it.Methods.List {
				for _, name := range field.Names {
					fn, _ := p.Info.Defs[name].(*types.Func)
					attachAround(fn, field.Doc, field.Comment, field)
				}
			}
			return true
		})
	}
	p.contracts = ix
	return p.contracts
}

// contractRoleOf returns fn's declared role under rule, if any.
func (p *Pass) contractRoleOf(fn *types.Func, rule string) (contractRole, bool) {
	if fn == nil {
		return 0, false
	}
	r, ok := p.contractsFor().byFunc[fn][rule]
	return r, ok
}

// contractAcquireNames returns the callee names declared acquire under
// rule by directives in this pass (nil when there are none).
func (p *Pass) contractAcquireNames(rule string) map[string]bool {
	return p.contractsFor().acquireNames[rule]
}

// contractSummary synthesizes the FuncSummary a declared role implies
// for fn's signature. Only parameters and results of the rule's
// resource type participate; everything else borrows.
func contractSummary(spec *lifecycleSpec, fn *types.Func, role contractRole) *FuncSummary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	s := neutralSummary(sig)
	resourceParam := func(i int) bool {
		return namedTypeName(sig.Params().At(i).Type()) == spec.resultType
	}
	resourceResult := sig.Results().Len() > 0 &&
		namedTypeName(sig.Results().At(0).Type()) == spec.resultType
	switch role {
	case roleAcquire:
		if resourceResult {
			st := stateLive
			if spec.trackUnsynced {
				st |= stateUnsynced
			}
			s.Results[0].Acquires = st
		}
	case roleRelease:
		for i := 0; i < sig.Params().Len(); i++ {
			if resourceParam(i) {
				s.Params[i] = EffRelease
			}
		}
	case roleAdvance:
		for i := 0; i < sig.Params().Len(); i++ {
			if resourceParam(i) {
				s.Params[i] = EffAdvance
			}
		}
	case rolePass:
		if resourceResult {
			for i := 0; i < sig.Params().Len(); i++ {
				if resourceParam(i) {
					s.Results[0].FromParams = append(s.Results[0].FromParams, i)
				}
			}
		}
	case roleBorrow, roleTest:
		// Neutral: the caller keeps every obligation (test's conditional
		// release is handled by classify/Refine, not the summary).
	}
	return s
}

// ContractSummaryDump renders every directive contract in the pass as
// its synthesized summary under the given rule, deterministically
// sorted, for the determinism tests:
//
//	iface.Transport.AcquireMR contract(acquire) () -> (acquire)
func ContractSummaryDump(p *Pass, rule string) string {
	var spec *lifecycleSpec
	for _, s := range lifecycleSpecs() {
		if s.rule == rule {
			spec = s
		}
	}
	if spec == nil {
		return ""
	}
	var entries []string
	for fn, roles := range p.contractsFor().byFunc {
		role, ok := roles[rule]
		if !ok {
			continue
		}
		entries = append(entries, fmt.Sprintf("%s contract(%s) %s", fn.FullName(), role, contractSummary(spec, fn, role)))
	}
	sort.Strings(entries)
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return b.String()
}
