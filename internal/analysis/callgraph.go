package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the package-level call graph the interprocedural
// summaries are computed over. Nodes are the functions and methods
// declared with bodies in the pass's files; edges are direct calls
// resolved through go/types (method calls included), calls through
// singly-bound function-valued locals (`f := rank.Isend; f(...)`,
// resolved by devirt.go's method-value scan), and calls through
// interface values devirtualized to every in-package implementation
// (devirt.go). Cross-package calls stay conservative at the call
// site. Strongly connected components are ordered bottom-up (callees
// before callers) so summary computation processes a function only
// after everything it calls — including all devirtualized targets of
// its interface calls.

// CallGraph is the package-level call graph of one pass.
type CallGraph struct {
	// Funcs maps every function declared with a body in the pass to its
	// declaration.
	Funcs map[*types.Func]*ast.FuncDecl
	// Calls maps a function to its same-package callees, deduplicated
	// and sorted by declaration position.
	Calls map[*types.Func][]*types.Func
	// SCCs lists the strongly connected components bottom-up: every
	// callee of a component lives in the same or an earlier component.
	SCCs [][]*types.Func
}

// CallGraph returns the pass's call graph, building it on first use.
func (p *Pass) CallGraph() *CallGraph {
	if p.callgraph != nil {
		return p.callgraph
	}
	g := &CallGraph{
		Funcs: map[*types.Func]*ast.FuncDecl{},
		Calls: map[*types.Func][]*types.Func{},
	}
	var order []*types.Func // declaration order, for determinism
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Funcs[fn] = fd
			order = append(order, fn)
		}
	}
	for _, fn := range order {
		fd := g.Funcs[fn]
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calledFunc(call)
			if callee == nil {
				return true
			}
			if _, declared := g.Funcs[callee]; !declared {
				// An interface method has no body here; its
				// devirtualized targets become the edges so the SCC
				// order still computes every possible callee first.
				for _, t := range p.ifaceTargetsOf(callee) {
					if _, ok := g.Funcs[t]; ok && !seen[t] {
						seen[t] = true
						g.Calls[fn] = append(g.Calls[fn], t)
					}
				}
				return true
			}
			if !seen[callee] {
				seen[callee] = true
				g.Calls[fn] = append(g.Calls[fn], callee)
			}
			return true
		})
		sort.Slice(g.Calls[fn], func(i, j int) bool {
			return g.Calls[fn][i].Pos() < g.Calls[fn][j].Pos()
		})
	}
	g.SCCs = tarjanSCC(order, g.Calls)
	p.callgraph = g
	return g
}

// calledFunc resolves a call expression to the *types.Func it invokes
// directly, or nil for builtins, conversions, and function values with
// no statically known binding. A call through a local variable that
// every assignment binds to the same function or method value
// (`f := rank.Isend; f(...)`) resolves to that function.
func (p *Pass) calledFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
		return p.methodValue(fun)
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// tarjanSCC computes strongly connected components over the given
// nodes. Tarjan's algorithm emits a component only after every
// component it can reach, so the returned order is already bottom-up.
// Iteration over nodes in declaration order keeps the result
// deterministic.
func tarjanSCC(nodes []*types.Func, edges map[*types.Func][]*types.Func) [][]*types.Func {
	type vstate struct {
		index, lowlink int
		onStack        bool
	}
	states := map[*types.Func]*vstate{}
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		sv := &vstate{index: next, lowlink: next, onStack: true}
		states[v] = sv
		next++
		stack = append(stack, v)

		for _, w := range edges[v] {
			sw, visited := states[w]
			switch {
			case !visited:
				strongconnect(w)
				if lw := states[w].lowlink; lw < sv.lowlink {
					sv.lowlink = lw
				}
			case sw.onStack:
				if sw.index < sv.lowlink {
					sv.lowlink = sw.index
				}
			}
		}

		if sv.lowlink == sv.index {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			// Members in declaration order, for deterministic recompute
			// order inside the component.
			sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
			sccs = append(sccs, scc)
		}
	}

	for _, v := range nodes {
		if _, visited := states[v]; !visited {
			strongconnect(v)
		}
	}
	return sccs
}

// selfRecursive reports whether fn calls itself directly.
func (g *CallGraph) selfRecursive(fn *types.Func) bool {
	for _, c := range g.Calls[fn] {
		if c == fn {
			return true
		}
	}
	return false
}
