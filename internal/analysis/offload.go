package analysis

// Offload enforces the paper's offloading send-buffer protocol order:
// RegOffloadMR → SyncOffloadMR → RDMA post → DeregOffloadMR. Posting
// from an offload MR before its host mirror is synced transfers stale
// bytes; using one after deregistration touches freed card memory; and
// a leaked offload MR holds both host and card buffers forever.
// The verb tables (RegOffloadMR acquire, SyncOffloadMR advance,
// DeregOffloadMR release) are populated from builtinContracts at init
// — see contracts.go.
var offloadSpec = &lifecycleSpec{
	rule:          "offload",
	what:          "offload MR",
	resultType:    "OffloadMR",
	trackUnsynced: true,
	postPrefix:    "Post",
	orderFields:   map[string]bool{"HostBuf": true, "HostMR": true},
	checkUse:      true,
	leakMsg:       "offload MR from %s is not deregistered on every path: call DeregOffloadMR before returning",
	discardMsg:    "result of %s discarded: the offload MR can never be deregistered",
	useMsg:        "use of offload MR after DeregOffloadMR",
	doubleMsg:     "offload MR may already be deregistered: double DeregOffloadMR",
	orderMsg:      "offload MR posted or read before SyncOffloadMR: the host mirror may hold stale data",
}

var Offload = &Analyzer{
	Name:      "offload",
	Scope:     ScopeInter,
	Doc:       "offload MRs follow RegOffloadMR → SyncOffloadMR → post → DeregOffloadMR; no post before sync, no use after dereg, no leak",
	AppliesTo: notTestPackage,
	Run:       func(p *Pass) { runLifecycle(p, offloadSpec) },
}
