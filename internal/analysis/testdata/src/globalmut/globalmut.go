// Package globalmut is the golden corpus for the instance-isolation
// rule: writes to package-level state outside init, mutating method
// calls on globals, and library reads of exported mutable globals all
// report; init wiring, locals shadowing globals, and error sentinels
// stay silent.
package globalmut

import "errors"

var cache = map[string]int{}

// Count is exported mutable state: writes and reads both report.
var Count int

// limit is never written outside init: reads are silent.
var limit = 8

// ErrShut is an error sentinel: rebinding it reports, comparing
// against it does not.
var ErrShut = errors.New("shut")

type config struct{ depth int }

var conf config

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

var hits counter

// init wiring is the one sanctioned place to touch package state.
func init() {
	cache["seed"] = 1
	Count = 0
}

func set(k string, v int) {
	cache[k] = v // want "write to package-level globalmut.cache"
}

func bump() {
	Count++ // want "write to package-level globalmut.Count"
}

func drop(k string) {
	delete(cache, k) // want "delete from package-level globalmut.cache"
}

func ref() *int {
	return &Count // want "address of package-level globalmut.Count"
}

func track() {
	hits.inc() // want "pointer-receiver inc called on package-level globalmut.hits"
}

func tune(v int) {
	conf.depth = v // want "write to package-level globalmut.conf"
}

func shut() {
	ErrShut = errors.New("shut again") // want "write to package-level globalmut.ErrShut"
}

// check reads the sentinel: exempt even though shut rebinds it.
func check(err error) bool { return err == ErrShut }

func within(n int) bool {
	return n < Count // want "read of mutable package-level globalmut.Count"
}

// quota reads a never-written global: silent.
func quota() int { return limit }

// local shadows the global cache: nothing here is package-level.
func local() int {
	cache := map[string]int{}
	cache["a"] = 1
	return cache["a"]
}
