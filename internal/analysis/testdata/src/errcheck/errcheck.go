// Package errcheck seeds dropped error returns from MPI-shaped
// operations on a local stand-in for core.Rank.
package errcheck

type Proc struct{}

type Status struct{ Len int }

type Rank struct{}

func (r *Rank) Send(p *Proc, dst, tag int) error           { return nil }
func (r *Rank) Recv(p *Proc, src, tag int) (Status, error) { return Status{}, nil }
func (r *Rank) Barrier(p *Proc) error                      { return nil }
func (r *Rank) Render()                                    {}

func Drops(r *Rank, p *Proc) {
	r.Send(p, 1, 0) // want "error result of Send dropped"
	r.Recv(p, 1, 0) // want "error result of Recv dropped"
	r.Barrier(p)    // want "error result of Barrier dropped"

	st, _ := r.Recv(p, 1, 0) // want "error result of Recv assigned to _"
	_ = st.Len

	defer r.Barrier(p) // want "error result of deferred Barrier dropped"

	r.Render() // returns nothing: not flagged
}

// DropsAliased calls through a method-valued local: the alias is still
// the MPI operation, and its dropped error is still a finding.
func DropsAliased(r *Rank, p *Proc) {
	send := r.Send
	send(p, 1, 0) // want "error result of Send dropped"

	st, _ := r.Recv(p, 1, 0) // want "error result of Recv assigned to _"
	_ = st.Len
}

// localHelper is a plain function whose name is not an MPI operation;
// calling it through its identifier is never flagged.
func localHelper(p *Proc) error { return nil }

// NotAliased: plain local function calls and rebound locals stay out
// of scope.
func NotAliased(r *Rank, p *Proc) {
	_ = localHelper(p)
	f := r.Barrier
	f = localHelper // rebound: no single method value governs f
	f(p)            // conflicting bindings resolve to nothing: not flagged
}

// Checked propagates errors properly: not flagged.
func Checked(r *Rank, p *Proc) error {
	if err := r.Send(p, 1, 0); err != nil {
		return err
	}
	if _, err := r.Recv(p, 0, 0); err != nil {
		return err
	}
	//simlint:ignore errcheck teardown path where a failed barrier is acceptable
	r.Barrier(p)
	return nil
}
