// Package rawgo seeds real concurrency outside the sim engine: a
// goroutine, a channel, and the sync package.
package rawgo

import "sync" // want "import of sync outside internal/sim"

func Race(n int) int {
	var mu sync.Mutex
	total := 0
	done := make(chan struct{}) // want "channel construction outside internal/sim"
	go func() {                 // want "raw goroutine outside internal/sim"
		mu.Lock()
		total += n
		mu.Unlock()
		close(done)
	}()
	<-done
	return total
}

// MakeSliceOK uses make for a slice, not a channel: not flagged.
func MakeSliceOK(n int) []int {
	return make([]int, n)
}

// Suppressed shows the escape hatch for vetted helpers.
func Suppressed(f func()) {
	//simlint:ignore rawgo joins before any sim state is touched
	go f()
}
