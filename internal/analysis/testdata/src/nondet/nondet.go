// Package nondet seeds every nondeterminism source the nondet
// analyzer must catch: wall-clock reads, the shared math/rand
// generators, and environment-driven behavior.
package nondet

import (
	"math/rand"
	"os"
	"time"
)

func WallClock() int64 {
	t := time.Now()                            // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)               // want "time.Sleep reads the wall clock"
	return t.UnixNano() + int64(time.Since(t)) // want "time.Since reads the wall clock"
}

func AmbientRand() int {
	return rand.Intn(6) // want "rand.Intn uses the shared global generator"
}

func EnvDriven() string {
	return os.Getenv("SIM_SEED") // want "os.Getenv makes simulation behavior depend on the ambient environment"
}

// SeededOK draws from an explicitly seeded generator: the sanctioned
// pattern, not flagged.
func SeededOK(r *rand.Rand) int {
	return r.Intn(6)
}

// Suppressed shows the escape hatch for genuinely wall-clock code.
func Suppressed() int64 {
	//simlint:ignore nondet calibration harness measures real host time on purpose
	return time.Now().UnixNano()
}
