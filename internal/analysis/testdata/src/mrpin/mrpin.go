// Package mrpin seeds MR-cache pin/release imbalances on a local
// stand-in for core.MRCache: Get pins an entry against eviction, so an
// unmatched Get permanently shrinks the cache and an unmatched Release
// panics at runtime.
package mrpin

type Proc struct{}

type MR struct{ LKey uint32 }

type MRCache struct{}

func (c *MRCache) Get(p *Proc, addr uint64, n int) (*MR, error) { return &MR{}, nil }
func (c *MRCache) Release(p *Proc, mr *MR)                      {}

type request struct{ held []*MR }

func post(k uint32) {}
func cond() bool    { return false }
func fail() error   { return nil }

// PinLeak gets a pinned MR and never releases it.
func PinLeak(c *MRCache, p *Proc) error {
	mr, err := c.Get(p, 0x1000, 64) // want "pinned MR from MRCache.Get is not released on every path"
	if err != nil {
		return err
	}
	post(mr.LKey)
	return nil
}

// PinLeakOnErrorPath releases on the main path but not when the
// intervening operation fails.
func PinLeakOnErrorPath(c *MRCache, p *Proc) error {
	mr, err := c.Get(p, 0x2000, 64) // want "pinned MR from MRCache.Get is not released on every path"
	if err != nil {
		return err
	}
	if err := fail(); err != nil {
		return err // leaks the pin
	}
	c.Release(p, mr)
	return nil
}

// DoubleRelease unpins the same MR twice: the second Release panics.
func DoubleRelease(c *MRCache, p *Proc) {
	mr, err := c.Get(p, 0x3000, 64)
	if err != nil {
		return
	}
	c.Release(p, mr)
	c.Release(p, mr) // want "pinned MR may already be released"
}

// Suppressed carries an ignore directive: no finding.
func Suppressed(c *MRCache, p *Proc) {
	//simlint:ignore mrpin pin intentionally held until Flush
	mr, err := c.Get(p, 0x4000, 64)
	if err != nil {
		return
	}
	post(mr.LKey)
}

// Balanced pins and releases on every path: not flagged.
func Balanced(c *MRCache, p *Proc) error {
	mr, err := c.Get(p, 0x5000, 64)
	if err != nil {
		return err
	}
	post(mr.LKey)
	c.Release(p, mr)
	return nil
}

// LoopPinRelease pins fresh each iteration and releases before the
// back edge: not flagged.
func LoopPinRelease(c *MRCache, p *Proc) error {
	for i := 0; i < 4; i++ {
		mr, err := c.Get(p, uint64(i)*0x1000, 64)
		if err != nil {
			return err
		}
		post(mr.LKey)
		c.Release(p, mr)
	}
	return nil
}

// EarlyReturnAfterRelease releases before the early return and again
// on the fall-through: disjoint paths, no double release, no leak.
func EarlyReturnAfterRelease(c *MRCache, p *Proc) error {
	mr, err := c.Get(p, 0x6000, 64)
	if err != nil {
		return err
	}
	if cond() {
		c.Release(p, mr)
		return nil
	}
	post(mr.LKey)
	c.Release(p, mr)
	return nil
}

// TransfersToRequest stores the pinned MR in a request that owns the
// release from now on: not flagged here.
func TransfersToRequest(c *MRCache, p *Proc, req *request) error {
	mr, err := c.Get(p, 0x7000, 64)
	if err != nil {
		return err
	}
	req.held = append(req.held, mr)
	return nil
}
