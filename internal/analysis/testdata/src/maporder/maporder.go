// Package maporder seeds order-sensitive map iterations: appends
// without a sort, output, first-match returns and assignments — plus
// the sanctioned collect-then-sort idiom that must NOT be flagged.
package maporder

import (
	"fmt"
	"sort"
)

func LeakAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out in map-iteration order"
	}
	return out
}

// SortedCollect is the sanctioned idiom: collect, sort, then use. The
// analyzer must treat the append as safe.
func SortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func LeakOutput(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

func LeakReturn(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k // want "return inside map iteration"
		}
	}
	return ""
}

func LeakFirstWins(m map[uint64]string, needle string) uint64 {
	var found uint64
	for h, s := range m {
		if s == needle {
			found = h // want "assignment to found of an iteration-dependent value"
		}
	}
	return found
}

func LeakConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string concatenation onto s in map-iteration order"
	}
	return s
}

// MembershipOK sets a flag to a constant: idempotent under any
// iteration order, not flagged.
func MembershipOK(m map[string]bool, key string) bool {
	ok := false
	for k := range m {
		if k == key {
			ok = true
		}
	}
	return ok
}

// KeyedStoreOK writes through the ranged key: each entry lands in its
// own slot regardless of order, not flagged.
func KeyedStoreOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Suppressed shows the escape hatch.
func Suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //simlint:ignore maporder iteration order randomized deliberately for fuzzing
	}
	return out
}
