// Package collorder seeds collective-mismatch hazards on a local
// stand-in for core.Comm: every member of the communicator must enter
// every collective, so a collective reachable only under a
// rank-dependent branch (or after a rank-dependent early exit) hangs
// the members that never arrive.
package collorder

type Proc struct{}

type Buffer struct{ Data []byte }

type Slice struct {
	Buf    *Buffer
	Off, N int
}

type Op struct{ name string }

type Comm struct{ myRank int }

func (c *Comm) Rank() int { return c.myRank }
func (c *Comm) Size() int { return 8 }

func (c *Comm) Barrier(p *Proc) error                   { return nil }
func (c *Comm) Bcast(p *Proc, root int, s Slice) error  { return nil }
func (c *Comm) Allreduce(p *Proc, s Slice, op Op) error { return nil }
func (c *Comm) Split(p *Proc, color, key int) (*Comm, error) {
	return &Comm{}, nil
}

func (c *Comm) Flush(p *Proc) error { return nil }

func work(s Slice) {}

// RootOnlyBarrier hides the barrier behind a root check: every other
// rank never enters it.
func RootOnlyBarrier(c *Comm, p *Proc) error {
	if c.Rank() == 0 {
		return c.Barrier(p) // want "guarded by a rank-dependent condition"
	}
	return nil
}

// DerivedGuard reaches the rank through a local: the taint follows the
// assignment into the condition.
func DerivedGuard(c *Comm, p *Proc, s Slice, op Op) error {
	isRoot := c.Rank() == 0
	if isRoot {
		return c.Allreduce(p, s, op) // want "guarded by a rank-dependent condition"
	}
	return nil
}

// EarlyExit lets most ranks return before the barrier: the survivors
// wait forever.
func EarlyExit(c *Comm, p *Proc) error {
	if c.Rank() > 0 {
		return nil
	}
	return c.Barrier(p) // want "follows a rank-dependent early exit"
}

// RankBoundedLoop runs the collective a rank-dependent number of
// times: members disagree on how many they enter.
func RankBoundedLoop(c *Comm, p *Proc, s Slice, op Op) error {
	for i := 0; i < c.Rank(); i++ {
		if err := c.Allreduce(p, s, op); err != nil { // want "guarded by a rank-dependent condition"
			return err
		}
	}
	return nil
}

// AllEnter runs its collectives unconditionally: no finding.
func AllEnter(c *Comm, p *Proc, s Slice, op Op) error {
	if err := c.Allreduce(p, s, op); err != nil {
		return err
	}
	return c.Barrier(p)
}

// SplitMembership is the legitimate Split idiom: the nil check decides
// membership in the sub-communicator, and the collective inside the
// guard involves exactly its members — no finding, even though sub is
// rank-tainted.
func SplitMembership(c *Comm, p *Proc, s Slice, op Op) error {
	sub, err := c.Split(p, c.Rank()%2, 0)
	if err != nil {
		return err
	}
	if sub != nil {
		return sub.Allreduce(p, s, op)
	}
	return nil
}

// SkipSelfLoop continues past its own rank inside the loop; the
// rank-dependent continue only skips loop iterations, so the barrier
// after the loop is still entered by every rank — no finding.
func SkipSelfLoop(c *Comm, p *Proc, s Slice) error {
	for i := 0; i < c.Size(); i++ {
		if i == c.Rank() {
			continue
		}
		work(s)
	}
	return c.Barrier(p)
}

// ErrorPropagation bails out with a non-nil error inside a
// rank-guarded branch: the harness aborts the whole run on any rank's
// error, so the failure path does not desynchronize the survivors and
// the barrier after the guarded phase is not flagged.
func ErrorPropagation(c *Comm, p *Proc) error {
	if c.Rank() == 0 {
		if err := c.Flush(p); err != nil {
			return err
		}
	}
	return c.Barrier(p)
}

// SizeGuard branches on the group size, which every member agrees on:
// no finding.
func SizeGuard(c *Comm, p *Proc, s Slice, op Op) error {
	if c.Size() == 1 {
		return nil
	}
	return c.Allreduce(p, s, op)
}
