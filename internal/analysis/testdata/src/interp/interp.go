// Package interp seeds cross-function lifecycle shapes for all four
// protocol rules: helpers that acquire, helpers that release,
// constructors whose obligation travels to the caller, deferred
// cleanup through a helper, and the borrow/escape shapes that must
// keep their obligations in place. Every case here is invisible to a
// purely intraprocedural engine — the findings (and the silences)
// depend on function summaries.
package interp

type Proc struct{}

type PD struct{}

type MR struct {
	LKey uint32
	Addr uint64
}

type Verbs struct{}

func (v *Verbs) RegMR(p *Proc, pd *PD, addr uint64, n int) (*MR, error) { return &MR{}, nil }
func (v *Verbs) DeregMR(p *Proc, mr *MR) error                          { return nil }

type MRCache struct{}

func (c *MRCache) Get(addr uint64) (*MR, error) { return &MR{}, nil }
func (c *MRCache) Release(mr *MR)               {}

type OffloadMR struct {
	HostBuf []byte
	HostMR  *MR
}

func (v *Verbs) RegOffloadMR(p *Proc, n int) (*OffloadMR, error) { return &OffloadMR{}, nil }
func (v *Verbs) SyncOffloadMR(p *Proc, omr *OffloadMR) error     { return nil }
func (v *Verbs) DeregOffloadMR(p *Proc, omr *OffloadMR) error    { return nil }

type QP struct{}

func (q *QP) PostSend(p *Proc, addr uint64, k uint32) error { return nil }

type Request struct{}

type Rank struct{}

func (r *Rank) Isend(p *Proc, to, tag int, b []byte) (*Request, error)   { return &Request{}, nil }
func (r *Rank) Irecv(p *Proc, from, tag int, b []byte) (*Request, error) { return &Request{}, nil }
func (r *Rank) Wait(p *Proc, q *Request) error                           { return nil }

// ---- helpers the summaries must classify ----

// closeMR releases its parameter on every path: summary EffRelease.
func closeMR(v *Verbs, p *Proc, mr *MR) { _ = v.DeregMR(p, mr) }

// peek only reads a field: summary EffBorrow — the caller keeps the
// dereg obligation.
func peek(mr *MR) uint32 { return mr.LKey }

// newMR is a constructor: its result carries the dereg obligation out.
func newMR(v *Verbs, p *Proc, pd *PD) (*MR, error) {
	return v.RegMR(p, pd, 0x1000, 64)
}

// newMRIndirect layers constructors: the obligation still propagates.
func newMRIndirect(v *Verbs, p *Proc, pd *PD) (*MR, error) {
	return newMR(v, p, pd)
}

// pass returns its parameter: the caller's binding flows through.
func pass(mr *MR) *MR { return mr }

// unpin releases a cache pin behind a helper.
func unpin(c *MRCache, mr *MR) { c.Release(mr) }

// syncIt advances the offload protocol behind a helper.
func syncIt(v *Verbs, p *Proc, omr *OffloadMR) error {
	return v.SyncOffloadMR(p, omr)
}

// dropOff deregisters an offload MR behind a helper.
func dropOff(v *Verbs, p *Proc, omr *OffloadMR) { _ = v.DeregOffloadMR(p, omr) }

// finish completes a request behind a helper.
func finish(r *Rank, p *Proc, q *Request) { _ = r.Wait(p, q) }

// sendAsync is a request constructor.
func sendAsync(r *Rank, p *Proc, b []byte) (*Request, error) {
	return r.Isend(p, 1, 1, b)
}

// condClose releases only on one path: summary EffEscape — callers can
// neither count on the release nor safely release again, so both
// caller shapes below stay quiet.
func condClose(v *Verbs, p *Proc, mr *MR, really bool) {
	if really {
		_ = v.DeregMR(p, mr)
	}
}

// closeRec releases through self-recursion: the bounded component
// fixpoint keeps it conservative (escape), so callers stay quiet.
func closeRec(v *Verbs, p *Proc, mr *MR, n int) {
	if n == 0 {
		_ = v.DeregMR(p, mr)
		return
	}
	closeRec(v, p, mr, n-1)
}

// ---- mrleak through helpers ----

// HelperReleaseOK: the dereg lives in closeMR; no leak.
func HelperReleaseOK(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x2000, 64)
	if err != nil {
		return
	}
	closeMR(v, p, mr)
}

// BorrowDoesNotDischarge: peek only borrows, so falling off the end
// still leaks.
func BorrowDoesNotDischarge(v *Verbs, p *Proc, pd *PD) uint32 {
	mr, err := v.RegMR(p, pd, 0x3000, 64) // want "memory region from RegMR is not deregistered on every path"
	if err != nil {
		return 0
	}
	return peek(mr)
}

// ConstructorLeak: the obligation created inside newMR surfaces at the
// caller's binding.
func ConstructorLeak(v *Verbs, p *Proc, pd *PD) {
	mr, err := newMR(v, p, pd) // want "memory region from newMR is not deregistered on every path"
	if err != nil {
		return
	}
	_ = peek(mr)
}

// ConstructorClosedOK: constructor + helper release balance out.
func ConstructorClosedOK(v *Verbs, p *Proc, pd *PD) {
	mr, err := newMR(v, p, pd)
	if err != nil {
		return
	}
	closeMR(v, p, mr)
}

// IndirectConstructorLeak: two constructor layers still carry the
// obligation here.
func IndirectConstructorLeak(v *Verbs, p *Proc, pd *PD) {
	mr, err := newMRIndirect(v, p, pd) // want "memory region from newMRIndirect is not deregistered on every path"
	if err != nil {
		return
	}
	_ = peek(mr)
}

// ConstructorDiscard: dropping a constructor's result can never be
// deregistered.
func ConstructorDiscard(v *Verbs, p *Proc, pd *PD) {
	_, _ = newMR(v, p, pd) // want "result of newMR discarded"
}

// DeferredHelperCleanupOK: deferred release through a helper counts on
// every exit path.
func DeferredHelperCleanupOK(v *Verbs, p *Proc, pd *PD, early bool) {
	mr, err := newMR(v, p, pd)
	if err != nil {
		return
	}
	defer closeMR(v, p, mr)
	if early {
		return
	}
	_ = peek(mr)
}

// PassThroughOK: the wrapper hands the same region back; releasing the
// copy releases the original binding's site.
func PassThroughOK(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x4000, 64)
	if err != nil {
		return
	}
	mr2 := pass(mr)
	closeMR(v, p, mr2)
}

// PassThroughReturnOK: returning the wrapper's pass-through hands the
// region to the caller with the result — ownership leaves, no leak,
// exactly as quiet as `return mr` would be.
func PassThroughReturnOK(v *Verbs, p *Proc, pd *PD) *MR {
	mr, err := v.RegMR(p, pd, 0x8000, 64)
	if err != nil {
		return nil
	}
	return pass(mr)
}

// swapMR releases the old region and hands back a fresh one: summary
// (borrow,borrow,borrow,release) -> (acquire,-).
func swapMR(v *Verbs, p *Proc, pd *PD, old *MR) (*MR, error) {
	_ = v.DeregMR(p, old)
	return v.RegMR(p, pd, 0x8100, 64)
}

// SwapDoubleRelease: handing an already-released region to the
// releasing swap helper in assignment position is exactly one
// double-release finding — not also a use-after-release.
func SwapDoubleRelease(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x8200, 64)
	if err != nil {
		return
	}
	_ = v.DeregMR(p, mr)
	mr2, err := swapMR(v, p, pd, mr) // want "memory region may already be deregistered"
	if err != nil {
		return
	}
	_ = v.DeregMR(p, mr2)
}

// DoubleHelperRelease: the helper's release is visible, so releasing
// before it is a double dereg.
func DoubleHelperRelease(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x5000, 64)
	if err != nil {
		return
	}
	_ = v.DeregMR(p, mr)
	closeMR(v, p, mr) // want "memory region may already be deregistered"
}

// ConditionalHelperQuiet: condClose summarizes as escape, so neither
// a leak nor a double release is reported around it.
func ConditionalHelperQuiet(v *Verbs, p *Proc, pd *PD, really bool) {
	mr, err := v.RegMR(p, pd, 0x6000, 64)
	if err != nil {
		return
	}
	condClose(v, p, mr, really)
}

// RecursiveHelperQuiet: recursion stays conservative.
func RecursiveHelperQuiet(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x7000, 64)
	if err != nil {
		return
	}
	closeRec(v, p, mr, 3)
}

// ---- mrpin through helpers ----

// HelperUnpinOK balances the pin through unpin.
func HelperUnpinOK(c *MRCache, v *Verbs, p *Proc) {
	mr, err := c.Get(0x1000)
	if err != nil {
		return
	}
	_ = peek(mr)
	unpin(c, mr)
}

// HelperUnpinMissing leaks the pin even though a helper exists.
func HelperUnpinMissing(c *MRCache, p *Proc) {
	mr, err := c.Get(0x2000) // want "pinned MR from MRCache.Get is not released on every path"
	if err != nil {
		return
	}
	_ = peek(mr)
}

// DoubleHelperUnpin: the second, helper-mediated release would panic.
func DoubleHelperUnpin(c *MRCache, p *Proc) {
	mr, err := c.Get(0x3000)
	if err != nil {
		return
	}
	c.Release(mr)
	unpin(c, mr) // want "pinned MR may already be released"
}

// ---- offload through helpers ----

// HelperSyncAndDropOK: sync and dereg both live behind helpers.
func HelperSyncAndDropOK(v *Verbs, p *Proc, q *QP) {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return
	}
	if err := syncIt(v, p, omr); err != nil {
		dropOff(v, p, omr)
		return
	}
	_ = q.PostSend(p, 0x100, omr.HostMR.LKey)
	dropOff(v, p, omr)
}

// HelperDropMissing leaks the offload MR: syncIt only advances.
func HelperDropMissing(v *Verbs, p *Proc, q *QP) {
	omr, err := v.RegOffloadMR(p, 4096) // want "offload MR from RegOffloadMR is not deregistered on every path"
	if err != nil {
		return
	}
	_ = syncIt(v, p, omr)
	_ = q.PostSend(p, 0x100, omr.HostMR.LKey)
}

// ---- reqwait through helpers ----

// HelperWaitOK completes the request through finish.
func HelperWaitOK(r *Rank, p *Proc, b []byte) {
	q, err := r.Isend(p, 1, 1, b)
	if err != nil {
		return
	}
	finish(r, p, q)
}

// HelperWaitMissing: borrowing helpers do not complete the request.
func HelperWaitMissing(r *Rank, p *Proc, b []byte) {
	q, err := r.Irecv(p, 1, 1, b) // want "request from Irecv is not completed on every path"
	if err != nil {
		return
	}
	_ = q
}

// RequestConstructorLeak: the constructor's obligation lands on the
// caller.
func RequestConstructorLeak(r *Rank, p *Proc, b []byte) {
	q, err := sendAsync(r, p, b) // want "request from sendAsync is not completed on every path"
	if err != nil {
		return
	}
	_ = q
}

// RequestConstructorOK: constructor plus helper completion balance.
func RequestConstructorOK(r *Rank, p *Proc, b []byte) {
	q, err := sendAsync(r, p, b)
	if err != nil {
		return
	}
	finish(r, p, q)
}

// RequestConstructorDiscard can never be completed.
func RequestConstructorDiscard(r *Rank, p *Proc, b []byte) {
	_, _ = sendAsync(r, p, b) // want "request from sendAsync discarded"
}

// ---- method values ----

// AliasedIsendLeak binds the method value first: the call through the
// local still classifies as an Isend, so the missing Wait is visible.
func AliasedIsendLeak(r *Rank, p *Proc, b []byte) {
	send := r.Isend
	q, err := send(p, 1, 1, b) // want "request from send is not completed on every path"
	if err != nil {
		return
	}
	_ = q
}

// AliasedWaitOK completes the request through a method-valued local.
func AliasedWaitOK(r *Rank, p *Proc, b []byte) {
	q, err := r.Isend(p, 1, 1, b)
	if err != nil {
		return
	}
	wait := r.Wait
	_ = wait(p, q)
}

// AliasedRebindQuiet rebinds the local between two method values: it
// resolves to nothing, the call stays conservative, and no leak may be
// claimed.
func AliasedRebindQuiet(r *Rank, p *Proc, b []byte) {
	post := r.Isend
	post = r.Irecv
	q, err := post(p, 1, 1, b)
	if err != nil {
		return
	}
	_ = q
}
