// Package offload seeds violations of the paper's offloading
// send-buffer protocol on local stand-ins for the dcfa offload verbs:
// the required order is RegOffloadMR → SyncOffloadMR → RDMA post →
// DeregOffloadMR. Posting before the sync sends stale bytes; touching
// the region after dereg touches freed card memory.
package offload

type Proc struct{}

type MR struct{ LKey uint32 }

type OffloadMR struct {
	HostBuf []byte
	HostMR  *MR
	Size    int
}

type Verbs struct{}

func (v *Verbs) RegOffloadMR(p *Proc, size int) (*OffloadMR, error)      { return &OffloadMR{}, nil }
func (v *Verbs) SyncOffloadMR(p *Proc, omr *OffloadMR, off, n int) error { return nil }
func (v *Verbs) DeregOffloadMR(p *Proc, omr *OffloadMR) error            { return nil }

type QP struct{}

func (q *QP) PostSend(p *Proc, buf []byte, lkey uint32) error { return nil }

type arena struct{ omr *OffloadMR }

func cond() bool { return false }

// PostBeforeSync posts from the region before its host mirror is
// synced: the wire sees stale data.
func PostBeforeSync(v *Verbs, q *QP, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	err = q.PostSend(p, omr.HostBuf, omr.HostMR.LKey) // want "before SyncOffloadMR"
	if err != nil {
		_ = v.DeregOffloadMR(p, omr)
		return err
	}
	return v.DeregOffloadMR(p, omr)
}

// ReadBeforeSync touches the host mirror before it is populated.
func ReadBeforeSync(v *Verbs, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	first := omr.HostBuf[0] // want "before SyncOffloadMR"
	_ = first
	return v.DeregOffloadMR(p, omr)
}

// Leak registers and never deregisters on any path.
func Leak(v *Verbs, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096) // want "offload MR from RegOffloadMR is not deregistered on every path"
	if err != nil {
		return err
	}
	return v.SyncOffloadMR(p, omr, 0, 4096)
}

// UseAfterDereg reads the region after deregistration.
func UseAfterDereg(v *Verbs, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	if err := v.SyncOffloadMR(p, omr, 0, 4096); err != nil {
		_ = v.DeregOffloadMR(p, omr)
		return err
	}
	if err := v.DeregOffloadMR(p, omr); err != nil {
		return err
	}
	_ = omr.Size // want "use of offload MR after DeregOffloadMR"
	return nil
}

// DoubleDereg deregisters twice.
func DoubleDereg(v *Verbs, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	if err := v.SyncOffloadMR(p, omr, 0, 4096); err != nil {
		_ = v.DeregOffloadMR(p, omr)
		return err
	}
	if err := v.DeregOffloadMR(p, omr); err != nil {
		return err
	}
	return v.DeregOffloadMR(p, omr) // want "offload MR may already be deregistered"
}

// Suppressed carries an ignore directive: no finding.
func Suppressed(v *Verbs, p *Proc) error {
	//simlint:ignore offload arena-owned region deregistered by the arena on teardown
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	return v.SyncOffloadMR(p, omr, 0, 4096)
}

// PaperOrder follows the full protocol, draining on every error path:
// not flagged.
func PaperOrder(v *Verbs, q *QP, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	if err := v.SyncOffloadMR(p, omr, 0, 4096); err != nil {
		_ = v.DeregOffloadMR(p, omr)
		return err
	}
	if err := q.PostSend(p, omr.HostBuf, omr.HostMR.LKey); err != nil {
		_ = v.DeregOffloadMR(p, omr)
		return err
	}
	return v.DeregOffloadMR(p, omr)
}

// LoopSyncPost re-syncs before each post inside a loop: not flagged.
func LoopSyncPost(v *Verbs, q *QP, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if err := v.SyncOffloadMR(p, omr, 0, 4096); err != nil {
			_ = v.DeregOffloadMR(p, omr)
			return err
		}
		if err := q.PostSend(p, omr.HostBuf, omr.HostMR.LKey); err != nil {
			_ = v.DeregOffloadMR(p, omr)
			return err
		}
	}
	return v.DeregOffloadMR(p, omr)
}

// EarlyReturnAfterDereg deregisters before the early return and again
// on the fall-through path: disjoint paths, no finding.
func EarlyReturnAfterDereg(v *Verbs, p *Proc) error {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return err
	}
	if err := v.SyncOffloadMR(p, omr, 0, 4096); err != nil {
		_ = v.DeregOffloadMR(p, omr)
		return err
	}
	if cond() {
		return v.DeregOffloadMR(p, omr)
	}
	return v.DeregOffloadMR(p, omr)
}

// EscapesToArena transfers ownership to a longer-lived arena that
// deregisters on teardown: not flagged here.
func EscapesToArena(v *Verbs, p *Proc) (*arena, error) {
	omr, err := v.RegOffloadMR(p, 4096)
	if err != nil {
		return nil, err
	}
	return &arena{omr: omr}, nil
}
