// Package fsmcheck seeds the protocol-FSM rule: switches over
// typed-constant enums must be exhaustive or justify their default, a
// //simlint:fsm table gates the transitions written back into the
// switched variable, and states no declared edge reaches are dead.
package fsmcheck

// State is the request protocol machine; its table is declared below.
type State int

const (
	stIdle State = iota // zero value: the implicit start
	stPost
	stWait
	stDone
)

// stStale is kept for trace decoding but no edge targets it.
const stStale State = 99 // want "state stStale of State is unreachable"

//simlint:fsm stIdle -> stPost the send is posted
//simlint:fsm stPost -> stWait
//simlint:fsm stWait -> stDone completion observed

// Step follows the declared table exactly: no findings.
func Step(s State) State {
	switch s {
	case stIdle:
		s = stPost
	case stPost:
		s = stWait
	case stWait:
		s = stDone
	case stDone:
	case stStale:
	}
	return s
}

// Skip writes a transition the table does not declare.
func Skip(s State) State {
	switch s {
	case stIdle:
		s = stDone // want "transition stIdle -> stDone is not declared in the //simlint:fsm table for State"
	case stPost:
		s = stWait
	case stWait, stDone, stStale:
	}
	return s
}

// conn drives the same machine through a struct field: selector
// matching must see c.st on both sides.
type conn struct{ st State }

func (c *conn) poke() {
	switch c.st {
	case stIdle:
		c.st = stPost
	case stPost:
		c.st = stIdle // want "transition stPost -> stIdle is not declared in the //simlint:fsm table for State"
	case stWait, stDone, stStale:
	}
}

// Opcode has no transition table: only exhaustiveness applies.
type Opcode int

const (
	OpSend Opcode = iota
	OpRecv
	OpRead
	OpWrite
)

// OpFetch aliases OpRead's value; covering either name covers both.
const OpFetch = OpRead

// name drops OpWrite with no default: every opcode the switch does not
// expect is silently misdecoded.
func name(op Opcode) string {
	switch op { // want "switch over Opcode is not exhaustive: missing OpWrite"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpRead:
		return "read"
	}
	return "?"
}

// route hides three missing opcodes behind a bare default.
func route(op Opcode) int {
	switch op { // want "empty default hides a non-exhaustive switch over Opcode: missing OpRecv, OpRead, OpWrite"
	case OpSend:
		return 1
	default:
	}
	return 0
}

// class justifies its empty default with a comment: no finding.
func class(op Opcode) int {
	switch op {
	case OpSend, OpWrite:
		return 1
	default:
		// reads never reach the send queue, so dropping them is correct
	}
	return 0
}

// must handles the unexpected opcodes loudly: a non-empty default is
// always a valid completion.
func must(op Opcode) int {
	switch op {
	case OpSend:
		return 1
	default:
		panic("unexpected opcode")
	}
}

// aliased covers OpRead through its alias OpFetch: exhaustive.
func aliased(op Opcode) int {
	switch op {
	case OpSend, OpRecv, OpFetch, OpWrite:
		return 1
	}
	return 0
}

// dynamic has a non-constant label: exhaustiveness cannot be judged,
// so the switch is out of scope.
func dynamic(op, other Opcode) int {
	switch op {
	case other:
		return 1
	}
	return 0
}

// Phase starts at a declared non-zero initial state: the directive is
// what keeps phBoot from being reported unreachable.
type Phase int

const (
	phBoot Phase = iota + 1
	phRun
	phHalt
)

//simlint:fsm -> phBoot
//simlint:fsm phBoot -> phRun
//simlint:fsm phRun -> phHalt

// advance follows the Phase table: no findings.
func advance(ph Phase) Phase {
	switch ph {
	case phBoot:
		ph = phRun
	case phRun:
		ph = phHalt
	case phHalt:
	}
	return ph
}

// Directive findings: malformed, unknown state, cross-machine edge.
//simlint:fsm onlyonestate // want "malformed //simlint:fsm directive"
//simlint:fsm stNope -> stIdle // want "unknown or ambiguous state stNope"
//simlint:fsm phBoot -> stPost // want "mixes states of Phase and State"
