// Package memdomain seeds host/mic memory-domain mixes on local
// stand-ins for the machine and ib types: registrations whose domain
// and address disagree, scatter-gather entries pairing an address with
// a foreign memory key, work requests spanning both domains, and the
// remote and helper-mediated shapes that must stay quiet or be seen
// through summaries.
package memdomain

type DomainKind int

const (
	HostMem DomainKind = iota
	MicMem
)

type Domain struct{ Kind DomainKind }

type Buffer struct {
	Dom  *Domain
	Addr uint64
	Data []byte
}

func (d *Domain) Alloc(n int) *Buffer { return &Buffer{Dom: d} }

type Node struct {
	Host *Domain
	Mic  *Domain
}

func (n *Node) Domain(k DomainKind) *Domain {
	if k == HostMem {
		return n.Host
	}
	return n.Mic
}

type Proc struct{}
type PD struct{}

type MR struct {
	LKey uint32
	RKey uint32
	Addr uint64
}

type Context struct{}

func (c *Context) RegMR(p *Proc, pd *PD, dom *Domain, addr uint64, n int) (*MR, error) {
	return &MR{}, nil
}
func (c *Context) RegMRBuffer(p *Proc, pd *PD, b *Buffer) (*MR, error) { return &MR{}, nil }
func (c *Context) DeregMR(p *Proc, mr *MR) error                       { return nil }

type SGE struct {
	Addr uint64
	Len  int
	LKey uint32
}

type RemoteAddr struct {
	Addr uint64
	RKey uint32
}

type SendWR struct {
	SGL    []SGE
	Remote RemoteAddr
}

type QP struct{}

func (q *QP) PostSend(p *Proc, wr *SendWR) error { return nil }

// MixedRegMR registers with a host-domain descriptor over a mic-domain
// address.
func MixedRegMR(c *Context, p *Proc, pd *PD, n *Node) {
	hostBuf := n.Host.Alloc(64)
	micBuf := n.Mic.Alloc(64)
	mr, _ := c.RegMR(p, pd, hostBuf.Dom, micBuf.Addr, 64) // want "memory region registered with host-domain descriptor but mic-domain address"
	_ = c.DeregMR(p, mr)
}

// MatchedRegMR keeps descriptor and address in one domain: quiet.
func MatchedRegMR(c *Context, p *Proc, pd *PD, n *Node) {
	micBuf := n.Mic.Alloc(64)
	mr, _ := c.RegMR(p, pd, micBuf.Dom, micBuf.Addr, 64)
	_ = c.DeregMR(p, mr)
}

// MixedSGE pairs a host buffer's address with a key registered over
// mic memory.
func MixedSGE(c *Context, p *Proc, pd *PD, q *QP, n *Node) {
	hostBuf := n.Host.Alloc(64)
	micBuf := n.Mic.Alloc(64)
	micMR, _ := c.RegMRBuffer(p, pd, micBuf)
	_ = q.PostSend(p, &SendWR{
		SGL: []SGE{{Addr: hostBuf.Addr, Len: 64, LKey: micMR.LKey}}, // want "scatter-gather entry pairs a host-domain address with a mic-domain memory key"
	})
}

// DirectMicPost posts straight from mic memory with a mic key — the
// paper's direct path, and exactly what must stay quiet.
func DirectMicPost(c *Context, p *Proc, pd *PD, q *QP, n *Node) {
	micBuf := n.Mic.Alloc(64)
	micMR, _ := c.RegMRBuffer(p, pd, micBuf)
	_ = q.PostSend(p, &SendWR{
		SGL: []SGE{{Addr: micBuf.Addr, Len: 64, LKey: micMR.LKey}},
	})
}

// RemoteIsExempt pairs a local host buffer with a remote mic region:
// cross-node pairs are the point of RDMA, not a mix.
func RemoteIsExempt(c *Context, p *Proc, pd *PD, q *QP, n *Node, remoteMicMR *MR) {
	hostBuf := n.Host.Alloc(64)
	hostMR, _ := c.RegMRBuffer(p, pd, hostBuf)
	micMR, _ := c.RegMRBuffer(p, pd, n.Mic.Alloc(64))
	_ = q.PostSend(p, &SendWR{
		SGL:    []SGE{{Addr: hostBuf.Addr, Len: 64, LKey: hostMR.LKey}},
		Remote: RemoteAddr{Addr: micMR.Addr, RKey: micMR.RKey},
	})
}

// CrossEntryWR keeps each entry internally consistent but spans both
// domains within one work request.
func CrossEntryWR(c *Context, p *Proc, pd *PD, q *QP, n *Node) {
	hostBuf := n.Host.Alloc(64)
	micBuf := n.Mic.Alloc(64)
	hostMR, _ := c.RegMRBuffer(p, pd, hostBuf)
	micMR, _ := c.RegMRBuffer(p, pd, micBuf)
	_ = q.PostSend(p, &SendWR{ // want "work request mixes host-domain and mic-domain scatter-gather entries"
		SGL: []SGE{
			{Addr: hostBuf.Addr, Len: 64, LKey: hostMR.LKey},
			{Addr: micBuf.Addr, Len: 64, LKey: micMR.LKey},
		},
	})
}

// stageHost is a helper constructor: its taint summary records that
// the result is host memory.
func stageHost(n *Node) *Buffer {
	return n.Host.Alloc(4096)
}

// passBuf propagates its parameter's domain to its result.
func passBuf(b *Buffer) *Buffer { return b }

// HelperMixedSGE mixes through two helper layers: the address comes
// from a host-staging helper (via a pass-through), the key from mic
// memory.
func HelperMixedSGE(c *Context, p *Proc, pd *PD, q *QP, n *Node) {
	staged := passBuf(stageHost(n))
	micMR, _ := c.RegMRBuffer(p, pd, n.Mic.Alloc(64))
	_ = q.PostSend(p, &SendWR{
		SGL: []SGE{{Addr: staged.Addr, Len: 64, LKey: micMR.LKey}}, // want "scatter-gather entry pairs a host-domain address with a mic-domain memory key"
	})
}

// UnknownStaysQuiet: a parameter of unknown domain never fires, even
// against a known one — only provable mixes report.
func UnknownStaysQuiet(c *Context, p *Proc, pd *PD, q *QP, b *Buffer, n *Node) {
	micMR, _ := c.RegMRBuffer(p, pd, n.Mic.Alloc(64))
	_ = q.PostSend(p, &SendWR{
		SGL: []SGE{{Addr: b.Addr, Len: 64, LKey: micMR.LKey}},
	})
}

// Pool is unrelated to the memory hierarchy: its Alloc and Open only
// share names with the taint sources and must not act as ones.
type Pool struct{ Base uint64 }

func (pl *Pool) Alloc(n int) uint64    { return pl.Base }
func (pl *Pool) Open(d *Domain) uint64 { return pl.Base }

// UnrelatedNamesQuiet: addresses produced by Pool's same-named methods
// carry no domain — opening the pool against a host domain must not
// taint them — so pairing them with a known mic key stays quiet.
func UnrelatedNamesQuiet(c *Context, p *Proc, pd *PD, q *QP, n *Node, pool *Pool) {
	a1 := pool.Open(n.Host)
	a2 := pool.Alloc(64)
	micMR, _ := c.RegMRBuffer(p, pd, n.Mic.Alloc(64))
	_ = q.PostSend(p, &SendWR{
		SGL: []SGE{
			{Addr: a1, Len: 64, LKey: micMR.LKey},
			{Addr: a2, Len: 64, LKey: micMR.LKey},
		},
	})
}

// SuppressedMix documents a deliberate mix with an ignore directive.
func SuppressedMix(c *Context, p *Proc, pd *PD, n *Node) {
	hostBuf := n.Host.Alloc(64)
	micBuf := n.Mic.Alloc(64)
	//simlint:ignore memdomain exercising the PCIe fallback path on purpose
	mr, _ := c.RegMR(p, pd, hostBuf.Dom, micBuf.Addr, 64)
	_ = c.DeregMR(p, mr)
}
