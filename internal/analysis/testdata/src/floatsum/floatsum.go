// Package floatsum seeds floating-point reductions folded in
// map-iteration and goroutine order, where non-associativity makes the
// result order-dependent.
package floatsum

func MapSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "float accumulation into sum in map-iteration order"
	}
	return sum
}

func MapSumExplicit(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation into total in map-iteration order"
	}
	return total
}

// IntSumOK is commutative and exact: not flagged.
func IntSumOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func GoroutineSum(parts []float64) float64 {
	var sum float64
	done := make(chan struct{})
	go func() {
		for _, v := range parts {
			sum += v // want "float accumulation into sum in goroutine order"
		}
		close(done)
	}()
	<-done
	return sum
}

// SortedFoldOK accumulates over a slice in index order: not flagged.
func SortedFoldOK(parts []float64) float64 {
	s := 0.0
	for _, v := range parts {
		s += v
	}
	return s
}

// Suppressed shows the escape hatch.
func Suppressed(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v //simlint:ignore floatsum compared with tolerance downstream
	}
	return s
}
