// Package blockcycle seeds symmetric blocking-deadlock patterns on
// local stand-ins for core.Rank: an unguarded Send-before-Recv against
// the same peer deadlocks once the payload crosses the eager limit
// (every rank blocks in the rendezvous send), and an unguarded
// Recv-before-Send deadlocks at any size.
package blockcycle

import "errors"

type Proc struct{}

type Status struct{ Len int }

type Buffer struct{ Data []byte }

type Slice struct {
	Buf    *Buffer
	Off, N int
}

func Whole(b *Buffer) Slice { return Slice{Buf: b, N: len(b.Data)} }

type Request struct{ tag int }

type Rank struct{ id int }

func (r *Rank) ID() int   { return r.id }
func (r *Rank) Size() int { return 8 }

func (r *Rank) Mem(n int) *Buffer { return &Buffer{Data: make([]byte, n)} }

func (r *Rank) Send(p *Proc, dst, tag int, s Slice) error           { return nil }
func (r *Rank) Recv(p *Proc, src, tag int, s Slice) (Status, error) { return Status{}, nil }
func (r *Rank) Sendrecv(p *Proc, dst, stag int, sbuf Slice, src, rtag int, rbuf Slice) (Status, error) {
	return Status{}, nil
}
func (r *Rank) Isend(p *Proc, dst, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Wait(p *Proc, q *Request) (Status, error)               { return Status{}, nil }
func (r *Rank) WaitAll(p *Proc, qs ...*Request) error                  { return nil }

// SymmetricExchange sends a rendezvous-sized payload to the pairwise
// partner before receiving from it, on every rank.
func SymmetricExchange(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	sb := r.Mem(65536)
	rb := r.Mem(65536)
	if err := r.Send(p, peer, 0, Whole(sb)); err != nil { // want "every rank blocks in Send"
		return err
	}
	_, err := r.Recv(p, peer, 0, Whole(rb))
	return err
}

// UnknownSizeExchange forwards a caller-provided payload: the size is
// not provably under the eager limit, so the same hazard is reported.
func UnknownSizeExchange(r *Rank, p *Proc, s Slice) error {
	peer := r.ID() ^ 1
	rb := r.Mem(256)
	if err := r.Send(p, peer, 0, s); err != nil { // want "every rank blocks in Send"
		return err
	}
	_, err := r.Recv(p, peer, 0, Whole(rb))
	return err
}

// RecvBeforeSend waits for the partner's message before sending its
// own: every rank blocks in Recv and no message is ever sent.
func RecvBeforeSend(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	b := r.Mem(256)
	if _, err := r.Recv(p, peer, 0, Whole(b)); err != nil { // want "every rank blocks in Recv"
		return err
	}
	return r.Send(p, peer, 0, Whole(b))
}

// EagerExchange is the same shape as SymmetricExchange with a payload
// provably at the eager limit: the send completes without the peer, so
// no finding.
func EagerExchange(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	sb := r.Mem(8192)
	rb := r.Mem(8192)
	if err := r.Send(p, peer, 0, Whole(sb)); err != nil {
		return err
	}
	_, err := r.Recv(p, peer, 0, Whole(rb))
	return err
}

// chunk feeds the buffer size through a constant-returning helper: the
// summary makes the eager proof go through, so no finding.
func chunk() int { return 4096 }

func HelperSizedEager(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	sb := r.Mem(chunk())
	rb := r.Mem(chunk())
	if err := r.Send(p, peer, 0, Whole(sb)); err != nil {
		return err
	}
	_, err := r.Recv(p, peer, 0, Whole(rb))
	return err
}

// RankOrdered breaks the symmetry with a rank-dependent guard — the
// canonical fix — so neither ordering is reported.
func RankOrdered(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	sb := r.Mem(65536)
	rb := r.Mem(65536)
	if r.ID() < peer {
		if err := r.Send(p, peer, 0, Whole(sb)); err != nil {
			return err
		}
		_, err := r.Recv(p, peer, 0, Whole(rb))
		return err
	}
	if _, err := r.Recv(p, peer, 0, Whole(rb)); err != nil {
		return err
	}
	return r.Send(p, peer, 0, Whole(sb))
}

// SendrecvExchange uses the combined call, which posts both sides
// nonblockingly: no finding.
func SendrecvExchange(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	sb := r.Mem(65536)
	rb := r.Mem(65536)
	_, err := r.Sendrecv(p, peer, 0, Whole(sb), peer, 0, Whole(rb))
	return err
}

// PostedAhead puts its message in flight with Isend before blocking in
// Recv: the earlier send-type call against the peer means the partner
// is not starved, so the recv-first pattern is not reported.
func PostedAhead(r *Rank, p *Proc) error {
	peer := r.ID() ^ 1
	sb := r.Mem(256)
	rb := r.Mem(256)
	xb := r.Mem(256)
	q, err := r.Isend(p, peer, 0, Whole(sb))
	if err != nil {
		return err
	}
	if _, err := r.Recv(p, peer, 1, Whole(rb)); err != nil {
		return errors.Join(err, r.WaitAll(p, q))
	}
	if err := r.Send(p, peer, 2, Whole(xb)); err != nil {
		return errors.Join(err, r.WaitAll(p, q))
	}
	return r.WaitAll(p, q)
}

// DifferentPeers sends to one neighbor and receives from the other:
// peer equality is not provable, so the matcher stays silent (the ring
// pattern is a documented false-negative boundary).
func DifferentPeers(r *Rank, p *Proc) error {
	right := (r.ID() + 1) % r.Size()
	left := (r.ID() - 1 + r.Size()) % r.Size()
	sb := r.Mem(65536)
	rb := r.Mem(65536)
	if err := r.Send(p, right, 0, Whole(sb)); err != nil {
		return err
	}
	_, err := r.Recv(p, left, 0, Whole(rb))
	return err
}
