// Package hotalloc is the golden corpus for the hot-path allocation
// rule: hot roots come from //simlint:hot markers and Engine.At/After
// callbacks, hotness propagates over calls, and only hot code reports.
package hotalloc

// Engine mimics the simulator's event engine: function literals handed
// to At or After are event-dispatch roots.
type Engine struct{ pending []func() }

func (e *Engine) At(t int64, fn func())    { e.pending = append(e.pending, fn) }
func (e *Engine) After(d int64, fn func()) { e.At(d, fn) }

type packet struct {
	data []byte
	next *packet
}

type state struct {
	queue []*packet
	buf   []byte
	sink  *packet
}

// cold is unreachable from any hot root: it may allocate freely.
func cold() []byte {
	b := make([]byte, 64)
	return append(b, 1)
}

// arm registers an event callback; the literal's body is a hot root
// even though arm itself is cold.
func arm(e *Engine, s *state) {
	e.At(10, func() {
		s.buf = make([]byte, 256) // want "make"
	})
}

//simlint:hot
func progress(s *state) {
	hdr := make([]byte, 8) // want "make"
	decode(hdr)
	drain(s)
	recover1(s)
}

// recover1 is called from hot progress but marked cold: a fault path
// that allocates freely, and hotness does not leak through it into
// rebuild.
//
//simlint:cold
func recover1(s *state) {
	s.buf = make([]byte, 512)
	rebuild(s)
}

// rebuild is reachable only through cold recover1: not hot.
func rebuild(s *state) {
	s.sink = &packet{}
}

// drain is hot by propagation from progress; the packet escapes into
// the long-lived state.
func drain(s *state) {
	p := &packet{} // want "hot path: progress → drain"
	s.sink = p
}

// decode is hot but clean: its only allocation sits on the panic path,
// which is cold by definition.
func decode(b []byte) {
	if len(b) == 0 {
		panic(render(make([]byte, 4)))
	}
}

// render is hot via decode; conversions are not modeled, no findings.
func render(b []byte) string { return string(b) }

//simlint:hot
func enqueue(s *state, pkt *packet) {
	s.queue = append(s.queue, pkt) // self-append: amortized, no finding
	tmp := append(s.queue, pkt)    // want "fresh slice growth"
	use(tmp)
}

// dequeue removes element i with the truncation idiom: the append
// result reuses the base slice's capacity, so nothing reports.
//
//simlint:hot
func dequeue(s *state, i int) {
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
}

func use(q []*packet) {}

//simlint:hot
func stage(s *state, b byte) {
	ship(append(s.buf, b)) // want "append result used directly"
}

func ship(b []byte) {}

//simlint:hot
func alloc(s *state) {
	n := new(packet) // want "new(packet) escapes"
	s.sink = n
	m := new(packet) // stays local: no finding
	m.next = nil
}

//simlint:hot
func table(s *state) {
	s.buf = []byte{1, 2, 3} // want "literal escapes"
}

//simlint:hot
func scan(s *state) {
	probes := []int{1, 2, 4} // stays local: no finding
	for _, p := range probes {
		if p > len(s.buf) {
			return
		}
	}
}

func note(v any) {}

//simlint:hot
func report(s *state, n int) {
	note(n)      // want "boxed into an interface argument"
	note(s.sink) // pointer-shaped: no finding
	note(nil)    // no finding
}

//simlint:hot
func rearm(e *Engine, s *state) {
	e.After(5, func() { // want "closure escapes"
		s.buf = s.buf[:0]
	})
}

//simlint:hot
func flush(s *state) {
	for i := 0; i < len(s.queue); i++ {
		defer release(s.queue[i]) // want "defer inside a loop"
	}
}

func release(p *packet) {}

type buffers struct {
	HostRx []byte
	HostTx []byte
	MicRx  []byte
}

//simlint:hot
func copyPayload(b *buffers) {
	copy(b.HostTx, b.HostRx) // want "redundant same-domain copy"
	copy(b.HostTx, b.MicRx)  // cross-domain staging: no finding
}
