// Package mrleak seeds memory-region lifecycle violations on a local
// stand-in for the dcfa verbs: registrations that never reach DeregMR,
// double deregistration, and use after dereg, plus the loop and
// early-return shapes the rule must not flag.
package mrleak

type Proc struct{}

type MR struct {
	LKey uint32
	Addr uint64
}

type PD struct{}

type Verbs struct{}

func (v *Verbs) RegMR(p *Proc, pd *PD, addr uint64, n int) (*MR, error) { return &MR{}, nil }
func (v *Verbs) RegMRBuffer(p *Proc, pd *PD, b []byte) (*MR, error)     { return &MR{}, nil }
func (v *Verbs) DeregMR(p *Proc, mr *MR) error                          { return nil }

type holder struct{ mr *MR }

func cond() bool    { return false }
func sink(k uint32) {}

// handoff really takes ownership: the region is stored where another
// owner will deregister it, so its summary is an escape, not a borrow.
var handoffSink holder

func handoff(mr *MR) { handoffSink.mr = mr }

// LeakPlain registers and falls off the end without deregistering.
// Reading mr.LKey is a field projection, not an ownership transfer.
func LeakPlain(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x1000, 64) // want "memory region from RegMR is not deregistered on every path"
	if err != nil {
		return
	}
	sink(mr.LKey)
}

// LeakOnEarlyReturn deregisters on the main path but leaks on the
// early return.
func LeakOnEarlyReturn(v *Verbs, p *Proc, pd *PD) error {
	mr, err := v.RegMRBuffer(p, pd, make([]byte, 64)) // want "memory region from RegMRBuffer is not deregistered on every path"
	if err != nil {
		return err
	}
	if cond() {
		return nil // leaks mr
	}
	return v.DeregMR(p, mr)
}

// DoubleFree deregisters the same region twice.
func DoubleFree(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x2000, 64)
	if err != nil {
		return
	}
	if err := v.DeregMR(p, mr); err != nil {
		return
	}
	_ = v.DeregMR(p, mr) // want "memory region may already be deregistered"
}

// UseAfterDereg reads the region after deregistering it.
func UseAfterDereg(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0x3000, 64)
	if err != nil {
		return
	}
	if err := v.DeregMR(p, mr); err != nil {
		return
	}
	sink(mr.LKey) // want "use of memory region after DeregMR"
}

// Discarded throws the registration away: it can never be freed.
func Discarded(v *Verbs, p *Proc, pd *PD) {
	_, err := v.RegMR(p, pd, 0x4000, 64) // want "result of RegMR discarded"
	_ = err
}

// Suppressed carries an ignore directive: no finding.
func Suppressed(v *Verbs, p *Proc, pd *PD) {
	//simlint:ignore mrleak region intentionally pinned for the process lifetime
	mr, err := v.RegMR(p, pd, 0x5000, 64)
	if err != nil {
		return
	}
	sink(mr.LKey)
}

// Balanced deregisters on every path: not flagged.
func Balanced(v *Verbs, p *Proc, pd *PD) error {
	mr, err := v.RegMR(p, pd, 0x6000, 64)
	if err != nil {
		return err
	}
	sink(mr.LKey)
	return v.DeregMR(p, mr)
}

// DeferredDereg releases via defer: not flagged.
func DeferredDereg(v *Verbs, p *Proc, pd *PD) error {
	mr, err := v.RegMR(p, pd, 0x7000, 64)
	if err != nil {
		return err
	}
	defer v.DeregMR(p, mr)
	sink(mr.LKey)
	if cond() {
		return nil
	}
	sink(uint32(mr.Addr))
	return nil
}

// LoopReregistration registers and deregisters fresh each iteration:
// the back edge must not smear last iteration's release into this
// iteration's registration.
func LoopReregistration(v *Verbs, p *Proc, pd *PD) error {
	for i := 0; i < 8; i++ {
		mr, err := v.RegMR(p, pd, uint64(i)*0x1000, 64)
		if err != nil {
			return err
		}
		sink(mr.LKey)
		if err := v.DeregMR(p, mr); err != nil {
			return err
		}
	}
	return nil
}

// EarlyReturnAfterRelease releases before the early return and again
// on the fall-through: the paths are disjoint, so neither is a double
// free and neither leaks.
func EarlyReturnAfterRelease(v *Verbs, p *Proc, pd *PD) error {
	mr, err := v.RegMR(p, pd, 0x8000, 64)
	if err != nil {
		return err
	}
	if cond() {
		return v.DeregMR(p, mr)
	}
	sink(mr.LKey)
	return v.DeregMR(p, mr)
}

// EscapesToStruct transfers ownership into a longer-lived holder: the
// function no longer owes the dereg.
func EscapesToStruct(v *Verbs, p *Proc, pd *PD) (*holder, error) {
	mr, err := v.RegMR(p, pd, 0x9000, 64)
	if err != nil {
		return nil, err
	}
	return &holder{mr: mr}, nil
}

// EscapesByReturn hands the region to the caller.
func EscapesByReturn(v *Verbs, p *Proc, pd *PD) (*MR, error) {
	mr, err := v.RegMR(p, pd, 0xa000, 64)
	if err != nil {
		return nil, err
	}
	return mr, nil
}

// EscapesByCall passes the handle itself to another owner.
func EscapesByCall(v *Verbs, p *Proc, pd *PD) {
	mr, err := v.RegMR(p, pd, 0xb000, 64)
	if err != nil {
		return
	}
	handoff(mr)
}
