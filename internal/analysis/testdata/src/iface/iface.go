// Package iface seeds the interface-aware layers: acquiring and
// releasing calls that cross an interface boundary (resolved by
// devirtualizing to the package's implementing types and taking the
// meet of their summaries), //simlint:contract directives declared on
// interface methods with no implementation in sight, and a buffer
// hazard whose posting call is an interface dispatch. Every finding
// and every silence here depends on interface resolution — a
// static-call-only engine sees none of it.
package iface

type Proc struct{}

type PD struct{}

type MR struct {
	LKey uint32
	Addr uint64
}

type Verbs struct{}

func (v *Verbs) RegMR(p *Proc, pd *PD, addr uint64, n int) (*MR, error) { return &MR{}, nil }
func (v *Verbs) DeregMR(p *Proc, mr *MR) error                          { return nil }

type Status struct{ Len int }

type Buffer struct{ Data []byte }

type Slice struct {
	Buf    *Buffer
	Off, N int
}

func Whole(b *Buffer) Slice { return Slice{Buf: b, N: len(b.Data)} }

func (s Slice) Bytes() []byte { return s.Buf.Data[s.Off : s.Off+s.N] }

func PutF64s(b []byte, vs []float64) {}

type Request struct{ tag int }

type Rank struct{ id int }

func (r *Rank) Isend(p *Proc, dst, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Irecv(p *Proc, src, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Wait(p *Proc, q *Request) (Status, error)               { return Status{}, nil }

// ---- devirtualized MR lifecycle: one implementing type ----

// Transport hides registration behind an interface. Neither method
// name is a builtin verb, so only devirtualization to ibTransport's
// summaries makes calls through it checkable.
type Transport interface {
	Open(p *Proc) (*MR, error)
	Close(p *Proc, mr *MR)
}

type ibTransport struct {
	v  *Verbs
	pd *PD
}

func (t *ibTransport) Open(p *Proc) (*MR, error) { return t.v.RegMR(p, t.pd, 0x1000, 64) }
func (t *ibTransport) Close(p *Proc, mr *MR)     { _ = t.v.DeregMR(p, mr) }

// OpenLeak: the acquiring call is an interface dispatch; the MR leak
// is visible only through the devirtualized Open summary.
func OpenLeak(t Transport, p *Proc) {
	mr, err := t.Open(p) // want "memory region from Open is not deregistered on every path"
	if err != nil {
		return
	}
	_ = mr.LKey
}

// OpenCloseOK: the releasing call crosses the same boundary — every
// Close target releases, so the meet releases and nothing is reported.
func OpenCloseOK(t Transport, p *Proc) {
	mr, err := t.Open(p)
	if err != nil {
		return
	}
	t.Close(p, mr)
}

// ---- meet of obligations: disagreeing implementations ----

// Closer has two implementations: one releases, one only reads. The
// meet of release and borrow is escape — a call through Closer can
// neither be counted on to release nor be safely released after.
type Closer interface {
	Shut(p *Proc, mr *MR)
}

type realCloser struct{ v *Verbs }

func (c *realCloser) Shut(p *Proc, mr *MR) { _ = c.v.DeregMR(p, mr) }

type nullCloser struct{}

func (c *nullCloser) Shut(p *Proc, mr *MR) {}

// MixedCloseQuiet: with targets disagreeing, Shut must be treated as
// an escape — no leak and no double-release may be claimed here.
func MixedCloseQuiet(v *Verbs, p *Proc, pd *PD, c Closer) {
	mr, err := v.RegMR(p, pd, 0x2000, 64)
	if err != nil {
		return
	}
	c.Shut(p, mr)
}

// Source has two implementations of which only one registers: the
// meet acquires nothing, so callers owe nothing.
type Source interface {
	Fetch(p *Proc) (*MR, error)
}

type regSource struct {
	v  *Verbs
	pd *PD
}

func (s *regSource) Fetch(p *Proc) (*MR, error) { return s.v.RegMR(p, s.pd, 0x3000, 64) }

type cacheSource struct{ mr *MR }

func (s *cacheSource) Fetch(p *Proc) (*MR, error) { return s.mr, nil }

// MixedFetchQuiet: only some Fetch targets hand out a fresh
// obligation, so binding the result must not start one.
func MixedFetchQuiet(s Source, p *Proc) {
	mr, err := s.Fetch(p)
	if err != nil {
		return
	}
	_ = mr.LKey
}

// ---- contract directives on interface methods ----

// Registrar has no implementation anywhere in this package: the
// declared contracts alone make calls through it checkable.
type Registrar interface {
	//simlint:contract mrleak acquire fresh registration the caller must free
	Acquire(p *Proc, n int) (*MR, error)
	//simlint:contract mrleak release
	Free(p *Proc, mr *MR)
	//simlint:contract mrleak borrow
	Inspect(p *Proc, mr *MR) uint32
	//simlint:contract mrleak pass
	Identity(mr *MR) *MR
}

// RegistrarLeak: the declared borrow keeps Inspect from escaping the
// region, so the missing Free is still reportable.
func RegistrarLeak(rg Registrar, p *Proc) {
	mr, err := rg.Acquire(p, 64) // want "memory region from Acquire is not deregistered on every path"
	if err != nil {
		return
	}
	_ = rg.Inspect(p, mr)
}

// RegistrarBalancedOK: declared acquire and release cancel out.
func RegistrarBalancedOK(rg Registrar, p *Proc) {
	mr, err := rg.Acquire(p, 64)
	if err != nil {
		return
	}
	rg.Free(p, mr)
}

// RegistrarPassOK: the declared pass hands the same region through, so
// releasing the wrapper's result releases the original binding.
func RegistrarPassOK(rg Registrar, p *Proc) {
	mr, err := rg.Acquire(p, 64)
	if err != nil {
		return
	}
	mr2 := rg.Identity(mr)
	rg.Free(p, mr2)
}

// RegistrarDoubleFree: the declared release makes the second Free a
// double discharge.
func RegistrarDoubleFree(rg Registrar, p *Proc) {
	mr, err := rg.Acquire(p, 64)
	if err != nil {
		return
	}
	rg.Free(p, mr)
	rg.Free(p, mr) // want "memory region may already be deregistered"
}

// ---- devirtualized request lifecycle and buffer hazards ----

// Poster posts and completes nonblocking sends behind an interface;
// rankPoster is its only implementation.
type Poster interface {
	Post(p *Proc, s Slice) (*Request, error)
	Finish(p *Proc, q *Request)
}

type rankPoster struct{ r *Rank }

func (x *rankPoster) Post(p *Proc, s Slice) (*Request, error) { return x.r.Isend(p, 1, 0, s) }
func (x *rankPoster) Finish(p *Proc, q *Request)              { _, _ = x.r.Wait(p, q) }

// PostLeak: the request acquired through the interface dispatch is
// never completed.
func PostLeak(x Poster, p *Proc, b *Buffer) {
	q, err := x.Post(p, Whole(b)) // want "request from Post is not completed on every path"
	if err != nil {
		return
	}
	_ = q
}

// PostFinishOK: completion also crosses the boundary.
func PostFinishOK(x Poster, p *Proc, b *Buffer) {
	q, err := x.Post(p, Whole(b))
	if err != nil {
		return
	}
	x.Finish(p, q)
}

// PostWriteHazard: the posting call is an interface dispatch, so the
// captured buffer is known only through the devirtualized summary —
// writing it before Finish is the paper's in-flight reuse hazard.
func PostWriteHazard(x Poster, p *Proc) {
	b := &Buffer{Data: make([]byte, 64)}
	q, err := x.Post(p, Whole(b))
	if err != nil {
		return
	}
	PutF64s(b.Data, []float64{1}) // want "buffer is written while an in-flight Post holds it"
	x.Finish(p, q)
}

// PostWriteAfterFinishOK: once Finish completes the request, the
// buffer is free to reuse.
func PostWriteAfterFinishOK(x Poster, p *Proc) {
	b := &Buffer{Data: make([]byte, 64)}
	q, err := x.Post(p, Whole(b))
	if err != nil {
		return
	}
	x.Finish(p, q)
	PutF64s(b.Data, []float64{2})
}

// ---- builtin verbs through an interface receiver ----

// Comm carries the builtin verb names themselves: classification is by
// name and receiver type, and an interface receiver's type name counts
// — no implementation or devirtualization needed.
type Comm interface {
	Isend(p *Proc, dst, tag int, s Slice) (*Request, error)
	Wait(p *Proc, q *Request) (Status, error)
}

// CommIfaceLeak: Isend through the interface still opens a request
// obligation.
func CommIfaceLeak(c Comm, p *Proc, b *Buffer) {
	q, err := c.Isend(p, 1, 0, Whole(b)) // want "request from Isend is not completed on every path"
	if err != nil {
		return
	}
	_ = q
}

// CommIfaceHazard: the write-in-flight hazard through an interface
// receiver.
func CommIfaceHazard(c Comm, p *Proc, b *Buffer) error {
	q, err := c.Isend(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	PutF64s(b.Data, []float64{3}) // want "buffer is written while an in-flight Isend holds it"
	_, err = c.Wait(p, q)
	return err
}
