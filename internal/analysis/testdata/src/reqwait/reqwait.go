// Package reqwait seeds nonblocking-request completion violations on a
// local stand-in for core.Rank: every Isend/Irecv request must reach
// Wait, WaitAll, or Test on every path, or be handed to a caller that
// will complete it.
package reqwait

type Proc struct{}

type Status struct{ Len int }

type Slice struct{}

type Request struct{ tag int }

type Rank struct{}

func (r *Rank) Isend(p *Proc, dst, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Irecv(p *Proc, src, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Wait(p *Proc, q *Request) (Status, error)               { return Status{}, nil }
func (r *Rank) WaitAll(p *Proc, qs ...*Request) error                  { return nil }
func (r *Rank) Test(p *Proc, q *Request) bool                          { return true }

type tracker struct{ pending []*Request }

func cond() bool { return false }

// LeakPlain posts a send and returns without completing it.
func LeakPlain(r *Rank, p *Proc) error {
	q, err := r.Isend(p, 1, 0, Slice{}) // want "request from Isend is not completed on every path"
	if err != nil {
		return err
	}
	_ = q
	return nil
}

// LeakOnErrorPath mirrors the Sendrecv bug shape: when the Irecv
// fails, the already-posted send request leaks.
func LeakOnErrorPath(r *Rank, p *Proc) error {
	sq, err := r.Isend(p, 1, 0, Slice{}) // want "request from Isend is not completed on every path"
	if err != nil {
		return err
	}
	rq, err := r.Irecv(p, 1, 0, Slice{})
	if err != nil {
		return err // sq leaks here
	}
	return r.WaitAll(p, sq, rq)
}

// DoubleWait completes the same request twice.
func DoubleWait(r *Rank, p *Proc) error {
	q, err := r.Irecv(p, 1, 0, Slice{})
	if err != nil {
		return err
	}
	if _, err := r.Wait(p, q); err != nil {
		return err
	}
	_, err = r.Wait(p, q) // want "request may already be completed"
	return err
}

// Discard throws the request away: it can never be completed.
func Discard(r *Rank, p *Proc) {
	_, err := r.Isend(p, 1, 0, Slice{}) // want "request from Isend discarded"
	_ = err
}

// Suppressed carries an ignore directive: no finding.
func Suppressed(r *Rank, p *Proc) error {
	//simlint:ignore reqwait fire-and-forget probe completed by the progress engine
	q, err := r.Isend(p, 1, 0, Slice{})
	if err != nil {
		return err
	}
	_ = q
	return nil
}

// WaitedBothPaths completes on the early return and the fall-through:
// not flagged.
func WaitedBothPaths(r *Rank, p *Proc) error {
	q, err := r.Irecv(p, 1, 0, Slice{})
	if err != nil {
		return err
	}
	if cond() {
		_, err := r.Wait(p, q)
		return err
	}
	return r.WaitAll(p, q)
}

// TestDrains spins on Test until completion: Test counts as reaching
// completion, so no finding.
func TestDrains(r *Rank, p *Proc) error {
	q, err := r.Isend(p, 1, 0, Slice{})
	if err != nil {
		return err
	}
	for !r.Test(p, q) {
	}
	return nil
}

// GatherThenWaitAll accumulates requests in a slice across a loop and
// completes them together, draining on the mid-loop error path: the
// append transfers the obligation to the slice, so no finding.
func GatherThenWaitAll(r *Rank, p *Proc) error {
	var reqs []*Request
	for i := 0; i < 4; i++ {
		q, err := r.Isend(p, i, 0, Slice{})
		if err != nil {
			if werr := r.WaitAll(p, reqs...); werr != nil {
				return werr
			}
			return err
		}
		reqs = append(reqs, q)
	}
	return r.WaitAll(p, reqs...)
}

// StartSend hands the request to the caller, who owes the Wait.
func StartSend(r *Rank, p *Proc) (*Request, error) {
	return r.Isend(p, 1, 0, Slice{})
}

// TracksForLater stores the request in a longer-lived tracker that
// completes it elsewhere: not flagged here.
func (t *tracker) TracksForLater(r *Rank, p *Proc) error {
	q, err := r.Irecv(p, 1, 0, Slice{})
	if err != nil {
		return err
	}
	t.pending = append(t.pending, q)
	return nil
}
