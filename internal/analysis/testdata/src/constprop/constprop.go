// Package constprop seeds the constant-propagation lattice unit test:
// plain assignments, binary operators, helper-call summaries, and the
// reassignment and loop shapes that must poison to Varying.
package constprop

func base() int { return 4096 }

func double() int { return base() * 2 }

func pick(f bool) int {
	if f {
		return 1
	}
	return 2
}

func ident(n int) int { return n }

func Locals(n int) {
	a := 8
	b := a * 4
	c := b + base()
	shifted := 1 << 10
	masked := (c + shifted) & 0xff
	d := a
	d = 9
	loop := 0
	for i := 0; i < n; i++ {
		loop += a
	}
	viaHelper := double()
	viaVarying := pick(n == 0)
	viaParam := ident(n)
	_ = masked
	_ = d
	_ = loop
	_ = viaHelper
	_ = viaVarying
	_ = viaParam
}
