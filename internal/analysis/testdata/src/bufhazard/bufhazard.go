// Package bufhazard seeds nonblocking buffer-reuse hazards on local
// stand-ins for core.Rank and core.Slice: no byte of a buffer captured
// by a pending Isend/Irecv may be written (or, for Irecv, read) before
// the completing Wait/Test, and two simultaneously in-flight requests
// must not provably overlap when either receives.
package bufhazard

import "errors"

type Proc struct{}

type Status struct{ Len int }

type Buffer struct{ Data []byte }

type Slice struct {
	Buf    *Buffer
	Off, N int
}

func Whole(b *Buffer) Slice { return Slice{Buf: b, N: len(b.Data)} }

func (s Slice) Sub(off, n int) Slice { return Slice{Buf: s.Buf, Off: s.Off + off, N: n} }

func (s Slice) Bytes() []byte { return s.Buf.Data[s.Off : s.Off+s.N] }

func PutF64s(b []byte, vs []float64) {}

func GetF64s(b []byte, n int) []float64 { return nil }

type Request struct{ tag int }

type Rank struct{ id int }

func (r *Rank) Mem(n int) *Buffer { return &Buffer{Data: make([]byte, n)} }

func (r *Rank) Isend(p *Proc, dst, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Irecv(p *Proc, src, tag int, s Slice) (*Request, error) { return &Request{}, nil }
func (r *Rank) Recv(p *Proc, src, tag int, s Slice) (Status, error)    { return Status{}, nil }
func (r *Rank) Wait(p *Proc, q *Request) (Status, error)               { return Status{}, nil }
func (r *Rank) WaitAll(p *Proc, qs ...*Request) error                  { return nil }
func (r *Rank) Test(p *Proc, q *Request) bool                          { return true }

// WriteInFlight rewrites the send buffer before the Wait: the transfer
// may carry either version.
func WriteInFlight(r *Rank, p *Proc) error {
	b := r.Mem(64)
	q, err := r.Isend(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	PutF64s(b.Data, []float64{1}) // want "buffer is written while an in-flight Isend holds it"
	_, err = r.Wait(p, q)
	return err
}

// ReadInFlight reads the receive buffer before the Wait: the bytes may
// still change under the reader.
func ReadInFlight(r *Rank, p *Proc) ([]float64, error) {
	b := r.Mem(64)
	q, err := r.Irecv(p, 1, 0, Whole(b))
	if err != nil {
		return nil, err
	}
	vals := GetF64s(b.Data, 8) // want "buffer is read while an in-flight Irecv may still overwrite it"
	if _, err := r.Wait(p, q); err != nil {
		return nil, err
	}
	return vals, nil
}

// OverlappingRequests posts a receive over bytes a pending send still
// owns: the halves provably intersect.
func OverlappingRequests(r *Rank, p *Proc) error {
	b := r.Mem(128)
	s := Whole(b)
	sq, err := r.Isend(p, 1, 0, s.Sub(0, 64))
	if err != nil {
		return err
	}
	rq, err := r.Irecv(p, 1, 1, s.Sub(32, 64)) // want "buffer overlaps one captured by an in-flight Isend"
	if err != nil {
		return errors.Join(err, r.WaitAll(p, sq))
	}
	return r.WaitAll(p, sq, rq)
}

// RecvIntoSendBuffer blocks a receive into bytes a pending send still
// reads.
func RecvIntoSendBuffer(r *Rank, p *Proc) error {
	b := r.Mem(64)
	q, err := r.Isend(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	if _, err := r.Recv(p, 2, 0, Whole(b)); err != nil { // want "buffer is written while an in-flight Isend holds it"
		return errors.Join(err, r.WaitAll(p, q))
	}
	return r.WaitAll(p, q)
}

// CopyIntoRecvBuffer overwrites a pending receive's bytes through the
// builtin copy.
func CopyIntoRecvBuffer(r *Rank, p *Proc, src Slice) error {
	b := r.Mem(64)
	q, err := r.Irecv(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	copy(Whole(b).Bytes(), src.Bytes()) // want "buffer is written while an in-flight Irecv holds it"
	_, err = r.Wait(p, q)
	return err
}

// start posts a send through a helper; its reqwait summary says the
// result carries a fresh request over the Slice argument.
func start(r *Rank, p *Proc, s Slice) (*Request, error) {
	return r.Isend(p, 1, 0, s)
}

// HelperInFlight reuses the buffer a summarized helper captured.
func HelperInFlight(r *Rank, p *Proc) error {
	b := r.Mem(64)
	q, err := start(r, p, Whole(b))
	if err != nil {
		return err
	}
	PutF64s(b.Data, []float64{2}) // want "buffer is written while an in-flight start holds it"
	_, err = r.Wait(p, q)
	return err
}

// DisjointHalves sends one half while receiving the other: the ranges
// provably do not intersect, so no finding.
func DisjointHalves(r *Rank, p *Proc) error {
	b := r.Mem(128)
	s := Whole(b)
	sq, err := r.Isend(p, 1, 0, s.Sub(0, 64))
	if err != nil {
		return err
	}
	rq, err := r.Irecv(p, 1, 1, s.Sub(64, 64))
	if err != nil {
		return errors.Join(err, r.WaitAll(p, sq))
	}
	return r.WaitAll(p, sq, rq)
}

// WriteAfterWait touches the buffer only once the request completed:
// no finding.
func WriteAfterWait(r *Rank, p *Proc) error {
	b := r.Mem(64)
	q, err := r.Irecv(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	if _, err := r.Wait(p, q); err != nil {
		return err
	}
	PutF64s(b.Data, []float64{3})
	return nil
}

// TwoSendsShare posts two sends from the same bytes: both only read,
// so sharing is safe and there is no finding.
func TwoSendsShare(r *Rank, p *Proc) error {
	b := r.Mem(64)
	q1, err := r.Isend(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	q2, err := r.Isend(p, 2, 0, Whole(b))
	if err != nil {
		return errors.Join(err, r.WaitAll(p, q1))
	}
	return r.WaitAll(p, q1, q2)
}

// LoopReuse reposts into the same buffer each iteration, waiting
// inside the loop: the wait serializes the reuse, so no finding.
func LoopReuse(r *Rank, p *Proc) error {
	b := r.Mem(64)
	for i := 0; i < 4; i++ {
		q, err := r.Irecv(p, 1, 0, Whole(b))
		if err != nil {
			return err
		}
		if _, err := r.Wait(p, q); err != nil {
			return err
		}
	}
	return nil
}

// SuppressedReuse carries an ignore directive: no finding.
func SuppressedReuse(r *Rank, p *Proc) error {
	b := r.Mem(64)
	q, err := r.Isend(p, 1, 0, Whole(b))
	if err != nil {
		return err
	}
	//simlint:ignore bufhazard the payload bytes are immutable sentinels; rewriting them is the point of this probe
	PutF64s(b.Data, []float64{4})
	_, err = r.Wait(p, q)
	return err
}
