package analysis

import (
	"go/ast"
	"go/types"
)

// mpiOps are the MPI-shaped operations whose error results must not be
// dropped: an ignored error from a Send/Recv/Wait hides failed matches
// and truncated transfers, which then surface as wrong numbers in
// benches and examples rather than as failures.
var mpiOps = map[string]bool{
	"Send": true, "Recv": true, "Sendrecv": true,
	"Isend": true, "Irecv": true,
	"Wait": true, "WaitAll": true, "Test": true,
	"Barrier": true, "Bcast": true, "Reduce": true,
	"Allreduce": true, "Allgather": true, "Alltoall": true,
	"Scatter": true, "Gather": true,
	"Run": true, "Start": true, "StartAll": true, "Split": true,
}

// ErrCheck flags MPI operation calls whose error result is discarded —
// either as a bare statement or by assigning the error position to the
// blank identifier.
var ErrCheck = &Analyzer{
	Name:  "errcheck",
	Scope: ScopeIntra,
	Doc:   "forbid dropped error returns from MPI operations (Send/Recv/Wait/collectives/Run)",
	Run:   runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, bad := p.dropsMPIError(call); bad {
						p.Reportf(call.Pos(), "error result of %s dropped: a failed MPI operation must not be ignored", name)
					}
				}
			case *ast.DeferStmt:
				if name, bad := p.dropsMPIError(n.Call); bad {
					p.Reportf(n.Call.Pos(), "error result of deferred %s dropped: a failed MPI operation must not be ignored", name)
				}
			case *ast.AssignStmt:
				p.checkBlankError(n)
			}
			return true
		})
	}
}

// dropsMPIError reports whether call is an MPI operation whose last
// result is an error (name is the reported callee).
func (p *Pass) dropsMPIError(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		// Plain idents are local helpers — unless the ident is a local
		// singly bound to a method value (`f := rank.Isend; f(...)`),
		// which is the MPI operation under an alias.
		if _, direct := p.Info.Uses[fun].(*types.Func); direct {
			return "", false
		}
		fn := p.methodValue(fun)
		if fn == nil {
			return "", false
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return "", false
		}
		name = fn.Name()
	default:
		return "", false
	}
	if !mpiOps[name] {
		return "", false
	}
	sig := p.calleeSignature(call)
	if sig == nil || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	return name, true
}

// checkBlankError flags assignments that keep an MPI call's values but
// send the error result to the blank identifier.
func (p *Pass) checkBlankError(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, bad := p.dropsMPIError(call)
	if !bad || len(as.Lhs) == 0 {
		return
	}
	// The error occupies the last result, so the last LHS receives it.
	if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
		p.Reportf(as.Pos(), "error result of %s assigned to _: a failed MPI operation must not be ignored", name)
	}
}

// calleeSignature returns the called function's signature, or nil.
func (p *Pass) calleeSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
