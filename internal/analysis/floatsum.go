package analysis

import (
	"go/ast"
	"go/token"
)

// FloatSum flags floating-point accumulation whose summation order is
// not fixed: reductions folded in map-iteration order or from inside
// raw goroutines. Floating-point addition is not associative, so the
// same multiset of addends in a different order yields a different
// bit pattern — which breaks the repository's exact-checksum
// verification (the stencil compares distributed sums against a serial
// reference with ==). Deterministic reductions iterate sorted keys or
// fold rank-ordered partials, the way core's Allreduce does.
var FloatSum = &Analyzer{
	Name:  "floatsum",
	Scope: ScopeIntra,
	Doc:   "forbid float accumulation in map-iteration or goroutine order",
	Run:   runFloatSum,
}

func runFloatSum(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapType(n.X) {
					p.checkFloatAccum(n.Body, n, "map-iteration")
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					p.checkFloatAccum(lit.Body, lit, "goroutine")
				}
			}
			return true
		})
	}
}

// checkFloatAccum reports float accumulations inside body that target
// variables declared outside container (the loop or goroutine body).
func (p *Pass) checkFloatAccum(body *ast.BlockStmt, container ast.Node, order string) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || !p.isFloat(id) || !p.declaredOutside(id, container) {
			return true
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			accum = selfReferential(p, id, as.Rhs[0])
		}
		if accum {
			p.Reportf(as.Pos(), "float accumulation into %s in %s order: FP addition is not associative, so the digest depends on %s order; fold in a fixed order instead", id.Name, order, order)
		}
		return true
	})
}
