package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// FSMCheck treats the package's typed-constant enums — protocol
// states, WR opcodes, packet kinds, fault-recovery phases — as finite
// state machines and checks every switch over them:
//
//   - A switch over an enum type must either cover every constant or
//     carry a default. An *empty* default with no comment is treated
//     as hiding the missing cases, not handling them: protocol code
//     that silently ignores an unexpected opcode is exactly how the
//     DCFA/IB stack loses messages.
//
//   - A transition table can be declared anywhere in the package:
//
//     //simlint:fsm StateA -> StateB
//     //simlint:fsm -> StateA        (declared initial state)
//
//     Assignments back into the switched variable inside a case arm
//     are then checked against the table (writing stDone from a
//     stNew case needs the edge stNew -> stDone), and enum states no
//     table edge can ever reach — not a target, not the initial, not
//     the zero value — are reported as unreachable.
//
// Scope and false-negative boundaries: an enum is a package-scope
// named type with an integer underlying type and at least two
// package-level constants. Switches over enums imported from another
// package, switches with any non-constant case label, and transitions
// written through helpers or non-constant expressions are not checked
// (DESIGN.md §7f).
var FSMCheck = &Analyzer{
	Name:  "fsmcheck",
	Scope: ScopeWholePackage,
	Doc:   "switches over state/event enums must be exhaustive or justify their default; //simlint:fsm tables gate transitions and expose unreachable states",
	Run:   runFSMCheck,
}

// fsmEnum is one package-scope typed-constant enum.
type fsmEnum struct {
	named  *types.Named
	consts []*types.Const // declaration order
	byVal  map[int64]*types.Const
	byName map[string]*types.Const
}

func (e *fsmEnum) name() string { return e.named.Obj().Name() }

// fsmTable is one enum's declared transition table.
type fsmTable struct {
	enum    *fsmEnum
	initial map[string]bool
	edges   map[string]map[string]bool
	targets map[string]bool
}

func runFSMCheck(p *Pass) {
	enums, ordered := collectEnums(p)
	if len(ordered) == 0 {
		return
	}
	tables := collectFSMTables(p, ordered)
	for _, f := range p.Files {
		checkEnumSwitches(p, f, enums, tables)
	}
	checkUnreachable(p, tables)
}

// collectEnums finds every package-scope named integer type with at
// least two package-level constants. The slice holds the kept enums in
// declaration order, for deterministic directive resolution.
func collectEnums(p *Pass) (map[*types.Named]*fsmEnum, []*fsmEnum) {
	scope := p.Types.Scope()
	out := map[*types.Named]*fsmEnum{}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		b, ok := named.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		out[named] = &fsmEnum{named: named, byVal: map[int64]*types.Const{}, byName: map[string]*types.Const{}}
	}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		e, tracked := out[named]
		if !tracked {
			continue
		}
		e.consts = append(e.consts, c)
		e.byName[c.Name()] = c
	}
	ordered := make([]*fsmEnum, 0, len(out))
	for _, e := range out {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].named.Obj().Pos() < ordered[j].named.Obj().Pos() })
	kept := ordered[:0]
	for _, e := range ordered {
		if len(e.consts) < 2 {
			delete(out, e.named)
			continue
		}
		kept = append(kept, e)
		sort.Slice(e.consts, func(i, j int) bool { return e.consts[i].Pos() < e.consts[j].Pos() })
		for _, c := range e.consts {
			if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
				if _, seen := e.byVal[v]; !seen {
					e.byVal[v] = c // first declaration wins for aliased values
				}
			}
		}
	}
	return out, kept
}

const fsmPrefix = "//simlint:fsm"

// collectFSMTables parses every //simlint:fsm directive in the pass.
// States are resolved by constant name across all enums; a name that
// matches no enum constant is itself a finding.
func collectFSMTables(p *Pass, enums []*fsmEnum) map[*fsmEnum]*fsmTable {
	tables := map[*fsmEnum]*fsmTable{}
	lookup := func(name string) (*fsmEnum, bool) {
		var found *fsmEnum
		for _, e := range enums {
			if _, ok := e.byName[name]; ok {
				if found != nil {
					return nil, false // ambiguous across enums
				}
				found = e
			}
		}
		return found, found != nil
	}
	tableFor := func(e *fsmEnum) *fsmTable {
		t := tables[e]
		if t == nil {
			t = &fsmTable{enum: e, initial: map[string]bool{}, edges: map[string]map[string]bool{}, targets: map[string]bool{}}
			tables[e] = t
		}
		return t
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, fsmPrefix) {
					continue
				}
				spec := strings.ReplaceAll(strings.TrimPrefix(c.Text, fsmPrefix), "→", "->")
				from, to, ok := strings.Cut(spec, "->")
				if !ok || strings.TrimSpace(to) == "" {
					p.Reportf(c.Pos(), "malformed //simlint:fsm directive: want \"From -> To\" or \"-> Initial\"")
					continue
				}
				from = strings.TrimSpace(from)
				// Everything after the target state is free prose
				// ("//simlint:fsm stNew -> stPost the retransmit path").
				to = strings.Fields(to)[0]
				toEnum, toOK := lookup(to)
				if !toOK {
					p.Reportf(c.Pos(), "//simlint:fsm names unknown or ambiguous state %s: no unique package constant has that name", to)
					continue
				}
				if from == "" {
					tableFor(toEnum).initial[to] = true
					continue
				}
				fromEnum, fromOK := lookup(from)
				if !fromOK {
					p.Reportf(c.Pos(), "//simlint:fsm names unknown or ambiguous state %s: no unique package constant has that name", from)
					continue
				}
				if fromEnum != toEnum {
					p.Reportf(c.Pos(), "//simlint:fsm transition %s -> %s mixes states of %s and %s", from, to, fromEnum.name(), toEnum.name())
					continue
				}
				t := tableFor(toEnum)
				if t.edges[from] == nil {
					t.edges[from] = map[string]bool{}
				}
				t.edges[from][to] = true
				t.targets[to] = true
			}
		}
	}
	return tables
}

// checkEnumSwitches checks every switch in one file whose tag is an
// enum-typed expression.
func checkEnumSwitches(p *Pass, f *ast.File, enums map[*types.Named]*fsmEnum, tables map[*fsmEnum]*fsmTable) {
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := p.Info.Types[unparen(sw.Tag)]
		if !ok || tv.Type == nil {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		e, tracked := enums[named]
		if !tracked {
			return true
		}
		covered := map[int64]bool{}
		var caseNames [][]string // per clause, the matched constant names
		var defaultClause *ast.CaseClause
		allConst := true
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				defaultClause = cc
				caseNames = append(caseNames, nil)
				continue
			}
			var names []string
			for _, le := range cc.List {
				ltv, ok := p.Info.Types[le]
				if !ok || ltv.Value == nil {
					allConst = false
					break
				}
				v, exact := constant.Int64Val(constant.ToInt(ltv.Value))
				if !exact {
					allConst = false
					break
				}
				covered[v] = true
				if c, ok := e.byVal[v]; ok {
					names = append(names, c.Name())
				}
			}
			caseNames = append(caseNames, names)
			if !allConst {
				break
			}
		}
		if !allConst {
			// A non-constant label means the match set is not statically
			// known: exhaustiveness cannot be judged.
			return true
		}
		var missing []string
		for _, c := range e.consts {
			v, exact := constant.Int64Val(constant.ToInt(c.Val()))
			if !exact || covered[v] {
				continue
			}
			if e.byVal[v] != c {
				continue // alias of a value already listed
			}
			missing = append(missing, c.Name())
			covered[v] = true // list each missing value once
		}
		if len(missing) > 0 {
			switch {
			case defaultClause == nil:
				p.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (add the cases or a default explaining why they cannot occur)",
					e.name(), strings.Join(missing, ", "))
			case len(defaultClause.Body) == 0 && !commentInClause(p, f, sw, defaultClause):
				p.Reportf(sw.Pos(), "empty default hides a non-exhaustive switch over %s: missing %s (handle them or comment why the default is safe)",
					e.name(), strings.Join(missing, ", "))
			}
		}
		if t := tables[e]; t != nil {
			checkTransitions(p, sw, e, t, caseNames)
		}
		return true
	})
}

// commentInClause reports whether any comment sits inside the clause —
// between its colon and the next clause (or the switch's closing
// brace). A commented default counts as a justified one.
func commentInClause(p *Pass, f *ast.File, sw *ast.SwitchStmt, cc *ast.CaseClause) bool {
	limit := sw.Body.Rbrace
	for _, stmt := range sw.Body.List {
		if stmt.Pos() > cc.Colon && stmt.Pos() < limit {
			if _, isClause := stmt.(*ast.CaseClause); isClause {
				limit = stmt.Pos()
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Pos() > cc.Colon && c.Pos() < limit {
				return true
			}
		}
	}
	return false
}

// checkTransitions verifies that every constant assignment back into
// the switched expression inside a case arm follows the enum's
// declared //simlint:fsm table.
func checkTransitions(p *Pass, sw *ast.SwitchStmt, e *fsmEnum, t *fsmTable, caseNames [][]string) {
	ci := 0
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		froms := caseNames[ci]
		ci++
		if len(froms) == 0 {
			continue // default arm, or labels that alias no named state
		}
		for _, body := range cc.Body {
			ast.Inspect(body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i := range as.Lhs {
					if !sameStateExpr(p, as.Lhs[i], sw.Tag) {
						continue
					}
					to := constStateName(p, e, as.Rhs[i])
					if to == "" {
						continue // non-constant write: out of scope
					}
					for _, from := range froms {
						if !t.edges[from][to] {
							p.Reportf(as.Pos(), "transition %s -> %s is not declared in the //simlint:fsm table for %s",
								from, to, e.name())
						}
					}
				}
				return true
			})
		}
	}
}

// constStateName resolves an expression to the name of an enum
// constant, or "".
func constStateName(p *Pass, e *fsmEnum, expr ast.Expr) string {
	expr = unparen(expr)
	switch x := expr.(type) {
	case *ast.Ident:
		if c, ok := p.Info.Uses[x].(*types.Const); ok {
			if _, mine := e.byName[c.Name()]; mine {
				return c.Name()
			}
		}
	case *ast.SelectorExpr:
		if c, ok := p.Info.Uses[x.Sel].(*types.Const); ok {
			if _, mine := e.byName[c.Name()]; mine {
				return c.Name()
			}
		}
	}
	if tv, ok := p.Info.Types[expr]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			if c, ok := e.byVal[v]; ok {
				return c.Name()
			}
		}
	}
	return ""
}

// sameStateExpr reports whether two expressions statically denote the
// same storage: matching identifiers, or matching selector chains over
// the same base.
func sameStateExpr(p *Pass, a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao, bo := p.objOf(av), p.objOf(bv)
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameStateExpr(p, av.X, bv.X)
	}
	return false
}

// checkUnreachable reports enum states no declared transition can ever
// reach: not a target of any edge, not a declared initial state, and
// not the type's zero value (the implicit start of any zero-initialized
// machine).
func checkUnreachable(p *Pass, tables map[*fsmEnum]*fsmTable) {
	var ordered []*fsmTable
	for _, t := range tables {
		if len(t.edges) > 0 {
			ordered = append(ordered, t)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].enum.named.Obj().Pos() < ordered[j].enum.named.Obj().Pos() })
	for _, t := range ordered {
		for _, c := range t.enum.consts {
			v, exact := constant.Int64Val(constant.ToInt(c.Val()))
			if !exact || v == 0 {
				continue
			}
			if t.enum.byVal[v] != c {
				continue // alias: judged under its first name
			}
			if t.initial[c.Name()] || t.targets[c.Name()] {
				continue
			}
			p.Reportf(c.Pos(), "state %s of %s is unreachable: no //simlint:fsm transition targets it and it is not a declared initial state", c.Name(), t.enum.name())
		}
	}
}
