package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc flags per-event performance hazards on the simulator's
// event-dispatch hot path. The hot set is seeded from event-dispatch
// entry points — function literals handed to sim.Engine.At/After (the
// hardware completion path) — and from functions carrying a
// //simlint:hot marker (the protocol progress functions), then
// propagated over the package call graph. A //simlint:cold marker is
// the inverse escape hatch: the marked function is excluded from the
// hot set even when hot code calls it, and hotness does not propagate
// through it — for fault-recovery and retransmission paths that only
// run when something already went wrong. Inside hot code the rule
// reports:
//
//   - make calls and escaping allocations (&T{}, new, slice/map
//     literals) — a heap allocation per dispatched event;
//   - append whose result binds to a different variable than its base
//     (fresh growth per event; x = append(x, ...) is amortized and
//     exempt);
//   - implicit interface boxing of non-pointer values at call sites;
//   - escaping closures and defer inside loops;
//   - copy calls whose source and destination provably live in the
//     same memory domain (riding the memdomain taint) — the copy could
//     be aliased away.
//
// Escape decisions come from a two-point lattice (local/escaped)
// solved to a fixpoint over each function's object flow, consulting
// bottom-up per-parameter escape summaries at same-package call sites;
// unknown callees escape their arguments. Code inside panic(...)
// arguments is exempt (the panic path is cold by definition). Every
// finding names the call chain from its hot root, never a line number,
// so baseline entries survive unrelated edits.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "per-event allocations, interface boxing, and redundant same-domain copies on the event-dispatch hot path",
	Scope:     ScopeInter,
	AppliesTo: notTestPackage,
	Run:       runHotAlloc,
}

// hotMarker is the directive that seeds a hot root explicitly;
// coldMarker excludes a function from the hot set even when it is
// reachable from one — the escape hatch for fault-recovery and
// retransmission paths that hot dispatch code calls but that only run
// when something already went wrong. Cold wins over hot, and hotness
// does not propagate through a cold function to its callees.
const (
	hotMarker  = "//simlint:hot"
	coldMarker = "//simlint:cold"
)

// hotRegion is one body to scan: a hot function declaration or a root
// function literal, with the call chain that made it hot.
type hotRegion struct {
	body  *ast.BlockStmt
	decl  *ast.FuncDecl // enclosing declaration, for escape analysis
	chain string
}

func runHotAlloc(p *Pass) {
	g := p.CallGraph()

	// Marker roots: declarations annotated //simlint:hot. Cold-marked
	// declarations are barriers: never hot, never propagated through.
	marked := markedFuncs(p, g, hotMarker)
	cold := markedFuncs(p, g, coldMarker)

	// Callback roots: function literals passed to Engine.At/After, plus
	// the same-package functions they call (the literal's calls are
	// attributed to its enclosing declaration in the call graph, which
	// may itself be cold, so the literal body is walked directly).
	type litRoot struct {
		lit   *ast.FuncLit
		decl  *ast.FuncDecl
		label string
	}
	var litRoots []litRoot
	seeds := map[*types.Func]string{} // fn -> chain label of its root
	var seedOrder []*types.Func
	for _, fn := range funcsInOrder(g) {
		fd := g.Funcs[fn]
		if marked[fn] && !cold[fn] {
			if _, ok := seeds[fn]; !ok {
				seeds[fn] = fn.Name()
				seedOrder = append(seedOrder, fn)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isEngineCallback(p, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				label := "Engine callback in " + fn.Name()
				litRoots = append(litRoots, litRoot{lit: lit, decl: fd, label: label})
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					c, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := p.calledFunc(c)
					if callee == nil {
						return true
					}
					if _, declared := g.Funcs[callee]; !declared {
						return true
					}
					if cold[callee] {
						return true
					}
					if _, ok := seeds[callee]; !ok {
						seeds[callee] = label + " → " + callee.Name()
						seedOrder = append(seedOrder, callee)
					}
					return true
				})
			}
			return true
		})
	}
	if len(seedOrder) == 0 && len(litRoots) == 0 {
		return
	}

	// Propagate hotness breadth-first over the call graph, recording
	// the (first, shortest) chain that reaches each function.
	chains := map[*types.Func]string{}
	queue := append([]*types.Func(nil), seedOrder...)
	for _, fn := range seedOrder {
		chains[fn] = seeds[fn]
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.Calls[fn] {
			if _, seen := chains[callee]; seen {
				continue
			}
			if cold[callee] {
				continue
			}
			chains[callee] = chains[fn] + " → " + callee.Name()
			queue = append(queue, callee)
		}
	}

	// Collect the regions to scan, in source order.
	var regions []hotRegion
	for _, fn := range funcsInOrder(g) {
		if chain, hot := chains[fn]; hot {
			regions = append(regions, hotRegion{body: g.Funcs[fn].Body, decl: g.Funcs[fn], chain: chain})
		}
	}
	for _, lr := range litRoots {
		regions = append(regions, hotRegion{body: lr.lit.Body, decl: lr.decl, chain: lr.label})
	}
	sort.SliceStable(regions, func(i, j int) bool { return regions[i].body.Pos() < regions[j].body.Pos() })

	sums := escapeSummaries(p)
	hf := &hotallocFlow{p: p, sums: sums, reported: map[token.Pos]bool{}, escCache: map[*ast.FuncDecl]*escFlow{}}
	for _, r := range regions {
		hf.scan(r)
	}
}

// markedFuncs returns the declarations carrying the given directive,
// either inside the doc comment group or on the line directly above
// the declaration.
func markedFuncs(p *Pass, g *CallGraph, marker string) map[*types.Func]bool {
	markerLines := map[string]map[int]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, marker) {
					pos := p.Fset.Position(c.Pos())
					if markerLines[pos.Filename] == nil {
						markerLines[pos.Filename] = map[int]bool{}
					}
					markerLines[pos.Filename][pos.Line] = true
				}
			}
		}
	}
	out := map[*types.Func]bool{}
	for fn, fd := range g.Funcs {
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, marker) {
					out[fn] = true
				}
			}
		}
		pos := p.Fset.Position(fd.Pos())
		if markerLines[pos.Filename][pos.Line-1] {
			out[fn] = true
		}
	}
	return out
}

// isEngineCallback reports whether the call schedules a hardware
// completion: a method named At or After on a value of named type
// Engine.
func isEngineCallback(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "At" && sel.Sel.Name != "After" {
		return false
	}
	return recvTypeName(p, call) == "Engine"
}

// hotallocFlow scans hot regions and reports the per-event hazards.
type hotallocFlow struct {
	p        *Pass
	sums     map[*types.Func][]bool
	reported map[token.Pos]bool
	escCache map[*ast.FuncDecl]*escFlow
	// domSums holds the memdomain taint summaries, built only when a
	// hot region contains a copy call.
	domSums map[*types.Func]*domSummary
}

// reportOnce emits one finding per position: a region reachable from
// two roots (or nested inside another hot region) reports only under
// its first chain.
func (hf *hotallocFlow) reportOnce(pos token.Pos, format string, args ...any) {
	if hf.reported[pos] {
		return
	}
	hf.reported[pos] = true
	hf.p.Reportf(pos, format, args...)
}

// escapesFor returns the escape solution for the enclosing
// declaration, computing it on first use.
func (hf *hotallocFlow) escapesFor(decl *ast.FuncDecl) *escFlow {
	if ef, ok := hf.escCache[decl]; ok {
		return ef
	}
	ef := newEscFlow(hf.p, hf.sums)
	ef.solve(decl.Body, nil)
	hf.escCache[decl] = ef
	return ef
}

// scan walks one hot region and reports its hazards.
func (hf *hotallocFlow) scan(r hotRegion) {
	ef := hf.escapesFor(r.decl)
	// Appends consumed by an assignment are judged there (self-append
	// exemption); the rest are per-event growth wherever they appear.
	assignedAppends := map[*ast.CallExpr]bool{}
	ast.Inspect(r.body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i := range a.Rhs {
			if call, ok := unparen(a.Rhs[i]).(*ast.CallExpr); ok && isBuiltinCall(hf.p, call, "append") {
				assignedAppends[call] = true
				if len(call.Args) == 0 {
					continue
				}
				if appendReusesBase(unparen(a.Lhs[i]), unparen(call.Args[0])) {
					continue // x = append(x, ...) and x = append(x[:i], ...): capacity reuse
				}
				hf.reportOnce(call.Pos(),
					"append result binds to %s, not its base %s: fresh slice growth per event (hot path: %s)",
					types.ExprString(unparen(a.Lhs[i])), types.ExprString(unparen(call.Args[0])), r.chain)
			}
		}
		return true
	})

	var coldEnd token.Pos // end of the innermost panic(...) argument list
	ast.Inspect(r.body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		cold := coldEnd.IsValid() && n.Pos() < coldEnd
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(hf.p, n, "panic") {
				// The panic path is cold: nothing inside its argument is
				// a per-event cost.
				if n.End() > coldEnd {
					coldEnd = n.End()
				}
				return true
			}
			if cold {
				return true
			}
			switch {
			case isBuiltinCall(hf.p, n, "make"):
				hf.reportOnce(n.Pos(), "make(%s) allocates per event (hot path: %s)",
					types.ExprString(n.Args[0]), r.chain)
			case isBuiltinCall(hf.p, n, "append") && !assignedAppends[n]:
				base := "?"
				if len(n.Args) > 0 {
					base = types.ExprString(unparen(n.Args[0]))
				}
				hf.reportOnce(n.Pos(),
					"append result used directly, not rebound to its base %s: fresh slice growth per event (hot path: %s)",
					base, r.chain)
			case isBuiltinCall(hf.p, n, "copy"):
				hf.checkSameDomainCopy(n, r)
			default:
				hf.checkBoxing(n, r)
			}
		case *ast.UnaryExpr:
			if cold {
				return true
			}
			if n.Op == token.AND {
				if lit, ok := unparen(n.X).(*ast.CompositeLit); ok && ef.escaped[n] {
					hf.reportOnce(n.Pos(), "&%s{} escapes: heap allocation per event (hot path: %s)",
						litTypeString(hf.p, lit), r.chain)
				}
			}
		case *ast.CompositeLit:
			if cold {
				return true
			}
			if isSliceOrMapLit(hf.p, n) && ef.escaped[n] {
				hf.reportOnce(n.Pos(), "%s literal escapes: heap allocation per event (hot path: %s)",
					litTypeString(hf.p, n), r.chain)
			}
		case *ast.FuncLit:
			if cold {
				return true
			}
			if ef.escaped[n] {
				hf.reportOnce(n.Pos(), "closure escapes: allocation per event for the function value and its captures (hot path: %s)", r.chain)
			}
		case *ast.ForStmt:
			hf.checkDeferInLoop(n.Body, r)
		case *ast.RangeStmt:
			hf.checkDeferInLoop(n.Body, r)
		}
		return true
	})

	// new(T) is a call of the builtin; caught here so the escape gate
	// applies like &T{}.
	ast.Inspect(r.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinCall(hf.p, call, "new") {
			return true
		}
		if ef.escaped[call] {
			hf.reportOnce(call.Pos(), "new(%s) escapes: heap allocation per event (hot path: %s)",
				types.ExprString(call.Args[0]), r.chain)
		}
		return true
	})
}

// checkDeferInLoop reports defer statements lexically inside a loop
// body (closures run their own scan).
func (hf *hotallocFlow) checkDeferInLoop(body *ast.BlockStmt, r hotRegion) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			hf.reportOnce(d.Pos(), "defer inside a loop accumulates until function exit: per-iteration cost on the hot path (hot path: %s)", r.chain)
		}
		return true
	})
}

// checkBoxing reports non-pointer values implicitly converted to
// interface parameters — each conversion heap-allocates the boxed
// copy. Pointer-shaped values (pointers, channels, maps, funcs) store
// directly in the interface word and are exempt.
func (hf *hotallocFlow) checkBoxing(call *ast.CallExpr, r hotRegion) {
	sig := hf.p.calleeSignature(call)
	if sig == nil {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && call.Ellipsis.IsValid() && i >= n-1:
			continue // the slice is passed through whole
		case sig.Variadic() && i >= n-1:
			pt = sig.Params().At(n - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := hf.p.Info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
			continue
		}
		hf.reportOnce(arg.Pos(), "%s boxed into an interface argument: heap allocation per event (hot path: %s)",
			types.TypeString(tv.Type, types.RelativeTo(hf.p.Types)), r.chain)
	}
}

// checkSameDomainCopy reports copy(dst, src) whose operands provably
// carry the same single memory-domain taint: within one domain the
// bytes could be aliased instead of copied (the cross-domain staging
// copy is the one the DCFA design actually needs).
func (hf *hotallocFlow) checkSameDomainCopy(call *ast.CallExpr, r hotRegion) {
	if len(call.Args) < 2 {
		return
	}
	if hf.domSums == nil {
		g := hf.p.CallGraph()
		hf.domSums = map[*types.Func]*domSummary{}
		for _, scc := range g.SCCs {
			for _, fn := range scc {
				hf.domSums[fn] = summarizeDomains(hf.p, hf.domSums, fn, g.Funcs[fn])
			}
		}
	}
	mf := &memdomainFlow{p: hf.p, sums: hf.domSums, objDom: map[types.Object]domVal{}}
	mf.solveObjects(r.decl.Body)
	dst := mf.domainOf(call.Args[0]).bits
	src := mf.domainOf(call.Args[1]).bits
	if dst != 0 && dst == src && (dst == domHost || dst == domMic) {
		hf.reportOnce(call.Pos(),
			"copy between two %s-domain buffers: redundant same-domain copy on the hot path, alias the payload instead (hot path: %s)",
			domName(dst), r.chain)
	}
}

// litTypeString renders a composite literal's type for messages.
func litTypeString(p *Pass, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type)
	}
	if tv, ok := p.Info.Types[lit]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, types.RelativeTo(p.Types))
	}
	return "composite"
}

// isSliceOrMapLit reports whether the literal's type is a slice or map
// — the composite-literal forms that always heap-allocate their
// backing store when they escape. Struct values stay on the stack.
func isSliceOrMapLit(p *Pass, lit *ast.CompositeLit) bool {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// pointerShaped reports whether a value of type t fits the interface
// data word directly, so converting it to an interface allocates
// nothing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// appendReusesBase reports whether rebinding an append result to lhs
// reuses the base slice's capacity: the classic x = append(x, ...)
// growth, and the delete/truncate idiom x = append(x[:i], x[j:]...),
// where the first argument slices the very expression being assigned.
func appendReusesBase(lhs, base ast.Expr) bool {
	want := types.ExprString(lhs)
	for {
		if types.ExprString(base) == want {
			return true
		}
		sl, ok := unparen(base).(*ast.SliceExpr)
		if !ok || sl.Slice3 {
			return false
		}
		base = unparen(sl.X)
	}
}
