package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the two-point escape lattice (local / escaped)
// the hotalloc rule uses to decide which allocation sites on the hot
// path actually reach the heap. The model is deliberately simple and
// errs toward "escaped":
//
//   - Allocation sites are &T{} operands, new(T) calls, slice/map
//     composite literals, and function literals.
//   - Each local variable holds a set of sites; assignments, value
//     specs, and range clauses propagate the sets to a fixpoint.
//   - A site escapes when a value holding it is stored through a
//     pointer/field/index, assigned to a package-level variable,
//     returned, sent on a channel, deferred, handed to go, captured by
//     an escaping closure, or passed to a call whose summary (or lack
//     of one) escapes that argument.
//
// Per-parameter escape summaries are computed bottom-up over the call
// graph so that passing a buffer to a same-package helper that only
// reads it does not count as an escape. Recursive components and
// external callees escape every argument.

// escFlow solves the escape lattice for one function body.
type escFlow struct {
	p *Pass
	// sums holds the per-parameter escape summaries of same-package
	// functions (true = that argument escapes through the callee).
	sums map[*types.Func][]bool
	// holds maps a variable to the allocation sites its value may hold.
	holds map[types.Object]map[ast.Node]bool
	// escaped is the solution: the sites that reach the heap.
	escaped map[ast.Node]bool
	// funcLits remembers every literal seen, for the capture phase.
	funcLits []*ast.FuncLit
}

func newEscFlow(p *Pass, sums map[*types.Func][]bool) *escFlow {
	return &escFlow{
		p:       p,
		sums:    sums,
		holds:   map[types.Object]map[ast.Node]bool{},
		escaped: map[ast.Node]bool{},
	}
}

// isEscSite reports whether n is an allocation site tracked by the
// lattice.
func (ef *escFlow) isEscSite(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op != token.AND {
			return false
		}
		_, ok := unparen(n.X).(*ast.CompositeLit)
		return ok
	case *ast.CompositeLit:
		tv, ok := ef.p.Info.Types[n]
		if !ok || tv.Type == nil {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	case *ast.CallExpr:
		return isBuiltinCall(ef.p, n, "new")
	case *ast.FuncLit:
		return true
	}
	return false
}

// holdsOf returns the set of sites the expression's value may hold.
// The returned map must not be mutated by callers.
func (ef *escFlow) holdsOf(e ast.Expr) map[ast.Node]bool {
	e = unparen(e)
	if ef.isEscSite(e) {
		out := map[ast.Node]bool{e: true}
		// A composite literal also holds whatever its elements hold
		// (e.g. []*T{&T{...}}); the inner site escapes with the outer.
		if lit, ok := e.(*ast.CompositeLit); ok {
			ef.addElemHolds(lit, out)
		}
		if u, ok := e.(*ast.UnaryExpr); ok {
			if lit, ok := unparen(u.X).(*ast.CompositeLit); ok {
				ef.addElemHolds(lit, out)
			}
		}
		return out
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := ef.p.objOf(e); obj != nil {
			return ef.holds[obj]
		}
	case *ast.UnaryExpr:
		return ef.holdsOf(e.X)
	case *ast.StarExpr:
		return ef.holdsOf(e.X)
	case *ast.IndexExpr:
		return ef.holdsOf(e.X)
	case *ast.SliceExpr:
		return ef.holdsOf(e.X)
	case *ast.SelectorExpr:
		return ef.holdsOf(e.X)
	case *ast.CompositeLit:
		out := map[ast.Node]bool{}
		ef.addElemHolds(e, out)
		return out
	case *ast.TypeAssertExpr:
		return ef.holdsOf(e.X)
	case *ast.CallExpr:
		if isBuiltinCall(ef.p, e, "append") {
			out := map[ast.Node]bool{}
			for _, a := range e.Args {
				for s := range ef.holdsOf(a) {
					out[s] = true
				}
			}
			return out
		}
		// Other calls: results are not tracked back to argument sites —
		// a helper that stashes and returns its argument is a false
		// negative here, accepted for simplicity (its own summary still
		// escapes the argument if it stores it anywhere lasting).
	}
	return nil
}

// addElemHolds unions the holds of a composite literal's elements into
// dst.
func (ef *escFlow) addElemHolds(lit *ast.CompositeLit, dst map[ast.Node]bool) {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		for s := range ef.holdsOf(el) {
			dst[s] = true
		}
	}
}

// escapeSet marks every site in set escaped; reports change.
func (ef *escFlow) escapeSet(set map[ast.Node]bool) bool {
	changed := false
	for s := range set {
		if !ef.escaped[s] {
			ef.escaped[s] = true
			changed = true
		}
	}
	return changed
}

// bind unions set into the variable's holds; reports change.
func (ef *escFlow) bind(obj types.Object, set map[ast.Node]bool) bool {
	if len(set) == 0 {
		return false
	}
	h := ef.holds[obj]
	if h == nil {
		h = map[ast.Node]bool{}
		ef.holds[obj] = h
	}
	changed := false
	for s := range set {
		if !h[s] {
			h[s] = true
			changed = true
		}
	}
	return changed
}

// localVar returns the object behind an identifier LHS if it is a
// local (function-scoped) variable, nil otherwise.
func (ef *escFlow) localVar(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := ef.p.objOf(id)
	if obj == nil {
		return nil
	}
	if v, ok := obj.(*types.Var); ok && obj.Parent() != ef.p.Types.Scope() && !v.IsField() {
		return obj
	}
	return nil
}

// solve runs the flow + sink walks over body to a fixpoint.
// paramSeeds optionally pre-binds parameter objects to synthetic site
// nodes (used when computing per-parameter escape summaries).
func (ef *escFlow) solve(body *ast.BlockStmt, paramSeeds map[types.Object]ast.Node) {
	for obj, site := range paramSeeds {
		ef.bind(obj, map[ast.Node]bool{site: true})
	}
	// The escape and holds sets only grow, so iteration terminates; the
	// bound is a safety net for pathological bodies.
	for iter := 0; iter < 10; iter++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = ef.assign(n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				if len(n.Values) > 0 {
					lhs := make([]ast.Expr, len(n.Names))
					for i, id := range n.Names {
						lhs[i] = id
					}
					changed = ef.assign(lhs, n.Values) || changed
				}
			case *ast.RangeStmt:
				// Ranging over a slice of sites aliases its elements.
				set := ef.holdsOf(n.X)
				if n.Value != nil {
					if obj := ef.localVar(n.Value); obj != nil {
						changed = ef.bind(obj, set) || changed
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					changed = ef.escapeSet(ef.holdsOf(r)) || changed
				}
			case *ast.SendStmt:
				changed = ef.escapeSet(ef.holdsOf(n.Value)) || changed
			case *ast.GoStmt:
				changed = ef.escapeCall(n.Call, true) || changed
			case *ast.DeferStmt:
				changed = ef.escapeCall(n.Call, true) || changed
			case *ast.CallExpr:
				changed = ef.sinkCall(n) || changed
			case *ast.FuncLit:
				ef.noteFuncLit(n)
			}
			return true
		})
		// Capture phase: an escaped closure carries its captured
		// variables' sites to the heap with it.
		for _, lit := range ef.funcLits {
			if !ef.escaped[lit] {
				continue
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := ef.p.objOf(id)
				if obj == nil || !ef.p.declaredOutside(id, lit) {
					return true
				}
				changed = ef.escapeSet(ef.holds[obj]) || changed
				return true
			})
		}
		if !changed {
			return
		}
	}
}

// noteFuncLit remembers a literal for the capture phase (each literal
// once).
func (ef *escFlow) noteFuncLit(lit *ast.FuncLit) {
	for _, l := range ef.funcLits {
		if l == lit {
			return
		}
	}
	ef.funcLits = append(ef.funcLits, lit)
}

// assign propagates one (possibly parallel) assignment; reports
// change.
func (ef *escFlow) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	if len(lhs) != len(rhs) {
		// Multi-value call or comma-ok: results are untracked, but the
		// call's arguments still sink below via the CallExpr case.
		return false
	}
	for i := range lhs {
		set := ef.holdsOf(rhs[i])
		if len(set) == 0 {
			continue
		}
		if id, ok := unparen(lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue // discarded, not stored
		}
		if obj := ef.localVar(lhs[i]); obj != nil {
			changed = ef.bind(obj, set) || changed
			continue
		}
		// Stores through fields, indexes, dereferences, and writes to
		// package-level variables all leave the frame.
		changed = ef.escapeSet(set) || changed
	}
	return changed
}

// escapeCall escapes the function expression and every argument of a
// call (go/defer, or a callee with no usable summary).
func (ef *escFlow) escapeCall(call *ast.CallExpr, withFun bool) bool {
	changed := false
	if withFun {
		changed = ef.escapeSet(ef.holdsOf(call.Fun)) || changed
	}
	for _, a := range call.Args {
		changed = ef.escapeSet(ef.holdsOf(a)) || changed
	}
	return changed
}

// escBorrowBuiltins neither retain nor leak their arguments.
var escBorrowBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"print": true, "println": true, "clear": true, "min": true, "max": true,
}

// sinkCall applies a call's effect on its arguments; reports change.
func (ef *escFlow) sinkCall(call *ast.CallExpr) bool {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := ef.p.Info.Uses[id].(*types.Builtin); isB {
			switch {
			case escBorrowBuiltins[b.Name()]:
				return false
			case b.Name() == "append":
				return false // flows via holdsOf, not a sink by itself
			case b.Name() == "panic":
				return ef.escapeCall(call, false)
			default:
				return false
			}
		}
	}
	callee := ef.p.calledFunc(call)
	if callee == nil {
		// Function values, interface methods, conversions: escape
		// everything handed over.
		changed := ef.escapeCall(call, false)
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			changed = ef.escapeSet(ef.holdsOf(sel.X)) || changed
		}
		return changed
	}
	bits, known := ef.sums[callee]
	if !known {
		// An interface method devirtualizes to its in-package targets:
		// an argument escapes iff it escapes in at least one target
		// (may-escape OR-join), and the receiver only borrows — every
		// target's receiver is the frame-local interface value itself.
		if targets := ef.p.ifaceTargetsOf(callee); targets != nil {
			bits, known = orEscapeBits(ef.sums, targets)
		}
	}
	if !known {
		// Other-package callee: no summary, assume the worst. The
		// receiver of a method call may retain too.
		changed := ef.escapeCall(call, false)
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			changed = ef.escapeSet(ef.holdsOf(sel.X)) || changed
		}
		return changed
	}
	// Same-package summarized callee: receivers borrow, parameters
	// follow their summary bit; variadic extras follow the last bit.
	sig := callee.Type().(*types.Signature)
	np := sig.Params().Len()
	changed := false
	for i, a := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi < len(bits) && !bits[pi] {
			continue
		}
		changed = ef.escapeSet(ef.holdsOf(a)) || changed
	}
	return changed
}

// orEscapeBits joins the escape summaries of an interface call's
// devirtualized targets: a parameter may escape if any target lets it
// escape. ok is false when any target lacks a summary or the shapes
// disagree — the call then stays conservative.
func orEscapeBits(sums map[*types.Func][]bool, targets []*types.Func) (out []bool, ok bool) {
	for _, t := range targets {
		bits, known := sums[t]
		if !known {
			return nil, false
		}
		if out == nil {
			out = append([]bool(nil), bits...)
			continue
		}
		if len(out) != len(bits) {
			return nil, false
		}
		for i := range out {
			out[i] = out[i] || bits[i]
		}
	}
	return out, out != nil
}

// escapeSummaries computes the per-parameter escape summaries for
// every function in the pass, bottom-up over the call graph. The
// result is cached on first use by hotalloc's flow.
func escapeSummaries(p *Pass) map[*types.Func][]bool {
	g := p.CallGraph()
	sums := map[*types.Func][]bool{}
	for _, scc := range g.SCCs {
		if len(scc) > 1 || g.selfRecursive(scc[0]) {
			// Recursion: stay conservative rather than fixpointing —
			// every parameter escapes.
			for _, fn := range scc {
				sig := fn.Type().(*types.Signature)
				bits := make([]bool, sig.Params().Len())
				for i := range bits {
					bits[i] = true
				}
				sums[fn] = bits
			}
			continue
		}
		fn := scc[0]
		sums[fn] = summarizeEscape(p, sums, fn, g.Funcs[fn])
	}
	return sums
}

// summarizeEscape computes one non-recursive function's summary: seed
// each parameter with a synthetic site (its defining identifier) and
// read which sites the solved body lets out of the frame.
func summarizeEscape(p *Pass, sums map[*types.Func][]bool, fn *types.Func, fd *ast.FuncDecl) []bool {
	sig := fn.Type().(*types.Signature)
	np := sig.Params().Len()
	bits := make([]bool, np)
	if np == 0 {
		return bits
	}
	ef := newEscFlow(p, sums)
	seeds := map[types.Object]ast.Node{}
	siteByIndex := make([]ast.Node, np)
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil && name.Name != "_" {
				seeds[obj] = name
				if idx < np {
					siteByIndex[idx] = name
				}
			}
			idx++
		}
	}
	ef.solve(fd.Body, seeds)
	for i, site := range siteByIndex {
		if site != nil && ef.escaped[site] {
			bits[i] = true
		}
	}
	return bits
}

// EscapeSummaryDump renders the pass's parameter-escape summaries as
// deterministic text (sorted by qualified function name), one line per
// function with parameters, e.g.:
//
//	repro/x.Send: p0=escape p1=borrow
//
// Exposed for the summary-determinism tests.
func EscapeSummaryDump(p *Pass) string {
	sums := escapeSummaries(p)
	var fns []*types.Func
	for fn := range sums {
		if len(sums[fn]) > 0 {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	var b strings.Builder
	for _, fn := range fns {
		fmt.Fprintf(&b, "%s:", fn.FullName())
		for i, esc := range sums[fn] {
			verdict := "borrow"
			if esc {
				verdict = "escape"
			}
			fmt.Fprintf(&b, " p%d=%s", i, verdict)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
