package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GlobalMut certifies instance isolation: two sim.Engine instances in
// one process must share no mutable package-level state, or concurrent
// (and even sequential) simulations contaminate each other and the
// determinism fingerprint stops meaning anything. The rule computes
// per-function write-effect summaries — which package-level variables
// each function writes, directly or through its same-package callees —
// bottom-up over the call graph, then reports:
//
//   - every write to a package-level variable outside func init and
//     package-level initializers (assignment, ++/--, delete on a global
//     map, taking a global's address, calling a pointer-receiver method
//     such as Lock on a global);
//   - reads of exported mutable package-level variables from library
//     code (configuration knobs that a second engine instance would
//     observe mid-flight); error-typed sentinels are exempt.
//
// Test packages are in scope for writes: a test that pokes a global
// poisons every other test sharing the process. Findings name the
// variable and, for summarized flows, the function chain — never line
// numbers — so baseline entries survive unrelated edits.
var GlobalMut = &Analyzer{
	Name:      "globalmut",
	Doc:       "package-level mutable state shared across simulator instances",
	Scope:     ScopeWholePackage,
	AppliesTo: globalmutScope,
	Run:       runGlobalMut,
}

// globalmutScope: the module's library subtrees plus test packages.
// cmd/* binaries own their process and may keep flag-driven globals;
// internal/analysis is host tooling that never runs inside a
// simulation.
func globalmutScope(p *Pass) bool {
	if p.external() {
		return true
	}
	path := p.basePath()
	if path == p.ModulePath {
		return true
	}
	if p.inModule("cmd") || p.inModule("internal/analysis") {
		return false
	}
	return p.inModule("internal") || p.inModule("dcfampi")
}

// globalVarName renders a package-level variable for reports and
// summaries.
func globalVarName(v *types.Var) string {
	if v.Pkg() == nil {
		return v.Name()
	}
	return v.Pkg().Path() + "." + v.Name()
}

// isTestPass reports whether the pass covers a _test package.
func isTestPass(p *Pass) bool {
	return strings.HasSuffix(p.Path, TestSuffix) || strings.HasSuffix(p.Path, ExtTestSuffix)
}

func runGlobalMut(p *Pass) {
	we := writeEffects(p)
	test := isTestPass(p)
	g := p.CallGraph()

	// Direct writes: report each site, in every function (init exempt —
	// set-once wiring at package load is how sentinel state is built).
	for _, fn := range funcsInOrder(g) {
		fd := g.Funcs[fn]
		if isInitFunc(fd) {
			continue
		}
		gw := &globalWalk{p: p, test: test, inFunc: fn.Name()}
		gw.walk(fd.Body)
	}

	// Reads of exported mutable globals from library (non-test) code:
	// a second engine instance observes every value someone else left
	// there.
	if !test {
		// A variable counts as mutable when any function in this pass
		// writes it outside init.
		mutated := map[*types.Var]bool{}
		for _, fn := range funcsInOrder(g) {
			if isInitFunc(g.Funcs[fn]) {
				continue
			}
			for _, v := range we.directVars[fn] {
				mutated[v] = true
			}
		}
		for _, fn := range funcsInOrder(g) {
			fd := g.Funcs[fn]
			if isInitFunc(fd) {
				continue
			}
			reportMutableReads(p, fd, mutated)
		}
	}
}

// isInitFunc reports whether fd is a func init() declaration.
func isInitFunc(fd *ast.FuncDecl) bool {
	return fd.Recv == nil && fd.Name.Name == "init"
}

// globalWalk reports write sites to package-level variables in one
// function body.
type globalWalk struct {
	p      *Pass
	test   bool
	inFunc string
}

func (gw *globalWalk) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := gw.globalBase(lhs); v != nil {
					gw.report(lhs.Pos(), v, "write to")
				}
			}
		case *ast.IncDecStmt:
			if v := gw.globalBase(n.X); v != nil {
				gw.report(n.Pos(), v, "write to")
			}
		case *ast.CallExpr:
			if isBuiltinCall(gw.p, n, "delete") && len(n.Args) > 0 {
				if v := gw.globalBase(n.Args[0]); v != nil {
					gw.report(n.Pos(), v, "delete from")
				}
			}
			gw.checkMutatingMethod(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := gw.globalBase(n.X); v != nil {
					gw.report(n.Pos(), v, "address of")
				}
			}
		}
		return true
	})
}

// report emits the write finding, phrased for library or test code.
func (gw *globalWalk) report(pos token.Pos, v *types.Var, verb string) {
	name := globalVarName(v)
	if gw.test {
		gw.p.Reportf(pos, "test %s package-level %s in %s: parallel tests and engine instances observe it", verb, name, gw.inFunc)
		return
	}
	gw.p.Reportf(pos, "%s package-level %s in %s: state shared across engine instances; thread it through an instance struct instead",
		verb, name, gw.inFunc)
}

// globalBase unwraps selector/index/star chains and returns the
// package-level variable at the base, or nil. Both same-package
// globals and qualified module-local ones (pkg.Var = ...) resolve.
func (gw *globalWalk) globalBase(e ast.Expr) *types.Var {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			// pkg.Var or global.Field — if Sel itself is a package-level
			// var of a module-local package, that is the base.
			if v := gw.packageLevelVar(x.Sel); v != nil {
				return v
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return gw.packageLevelVar(x)
		default:
			return nil
		}
	}
}

// packageLevelVar resolves an identifier to a package-level variable
// in scope for this rule: same-package globals always, cross-package
// ones only when module-local (the standard library's globals are not
// ours to police).
func (gw *globalWalk) packageLevelVar(id *ast.Ident) *types.Var {
	obj := gw.p.objOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	pkg := v.Pkg()
	if pkg == nil {
		return nil
	}
	if pkg.Scope().Lookup(v.Name()) != v {
		return nil // not package-level
	}
	if pkg == gw.p.Types {
		return v
	}
	// Cross-package: only module-local packages (or anything when the
	// pass itself is external, i.e. the golden corpus).
	if gw.p.external() {
		return v
	}
	if gw.p.ModulePath != "" && (pkg.Path() == gw.p.ModulePath || strings.HasPrefix(pkg.Path(), gw.p.ModulePath+"/")) {
		return v
	}
	return nil
}

// checkMutatingMethod flags pointer-receiver method calls on a global
// (Lock on a package-level mutex, Inc on a shared counter): the
// receiver is written even though no assignment appears.
func (gw *globalWalk) checkMutatingMethod(call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := gw.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return
	}
	if v := gw.globalBase(sel.X); v != nil {
		name := globalVarName(v)
		if gw.test {
			gw.p.Reportf(call.Pos(), "test calls pointer-receiver %s on package-level %s in %s: parallel tests and engine instances observe it",
				sel.Sel.Name, name, gw.inFunc)
			return
		}
		gw.p.Reportf(call.Pos(), "pointer-receiver %s called on package-level %s in %s: state shared across engine instances; thread it through an instance struct instead",
			sel.Sel.Name, name, gw.inFunc)
	}
}

// reportMutableReads flags library reads of exported mutable globals.
func reportMutableReads(p *Pass, fd *ast.FuncDecl, mutated map[*types.Var]bool) {
	gw := &globalWalk{p: p, inFunc: fd.Name.Name}
	// Collect write bases first so a compound write (g.f = x) does not
	// double-report as a read.
	writePos := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markBaseIdents(lhs, writePos)
			}
		case *ast.IncDecStmt:
			markBaseIdents(n.X, writePos)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markBaseIdents(n.X, writePos)
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writePos[id.Pos()] {
			return true
		}
		v := gw.packageLevelVar(id)
		if v == nil || !v.Exported() || !mutated[v] {
			return true
		}
		if isErrorType(v.Type()) {
			return true // error sentinels are write-once by convention
		}
		p.Reportf(id.Pos(), "read of mutable package-level %s in %s: a second engine instance observes whatever the last caller left there",
			globalVarName(v), fd.Name.Name)
		return true
	})
}

// markBaseIdents records the identifier positions along an lvalue's
// base chain.
func markBaseIdents(e ast.Expr, set map[token.Pos]bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			set[x.Sel.Pos()] = true
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			set[x.Pos()] = true
			return
		default:
			return
		}
	}
}

// writeEffectsData carries both name-level and var-level direct write
// sets plus the transitive closure.
type writeEffectsData struct {
	direct     map[*types.Func][]string
	directVars map[*types.Func][]*types.Var
	trans      map[*types.Func][]string
}

// writeEffects computes each function's direct and transitive global
// write sets, bottom-up over the call graph. Recursive components
// union their members' effects (one round suffices: effects are sets
// of names, unioned, not flowed).
func writeEffects(p *Pass) *writeEffectsData {
	g := p.CallGraph()
	we := &writeEffectsData{
		direct:     map[*types.Func][]string{},
		directVars: map[*types.Func][]*types.Var{},
		trans:      map[*types.Func][]string{},
	}
	for _, fn := range funcsInOrder(g) {
		fd := g.Funcs[fn]
		seen := map[*types.Var]bool{}
		gw := &globalWalk{p: p}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var v *types.Var
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if b := gw.globalBase(lhs); b != nil && !seen[b] {
						seen[b] = true
						we.directVars[fn] = append(we.directVars[fn], b)
					}
				}
				return true
			case *ast.IncDecStmt:
				v = gw.globalBase(n.X)
			case *ast.CallExpr:
				if isBuiltinCall(p, n, "delete") && len(n.Args) > 0 {
					v = gw.globalBase(n.Args[0])
				}
			}
			if v != nil && !seen[v] {
				seen[v] = true
				we.directVars[fn] = append(we.directVars[fn], v)
			}
			return true
		})
		names := make([]string, 0, len(we.directVars[fn]))
		for _, v := range we.directVars[fn] {
			names = append(names, globalVarName(v))
		}
		sort.Strings(names)
		we.direct[fn] = names
	}
	// Transitive closure bottom-up: each SCC unions its members' direct
	// sets with all callee transitive sets, then every member shares
	// the component set.
	for _, scc := range g.SCCs {
		set := map[string]bool{}
		for _, fn := range scc {
			for _, n := range we.direct[fn] {
				set[n] = true
			}
			for _, callee := range g.Calls[fn] {
				for _, n := range we.trans[callee] {
					set[n] = true
				}
			}
		}
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, fn := range scc {
			we.trans[fn] = names
		}
	}
	return we
}

// WriteEffectDump renders the transitive write-effect summaries as
// deterministic text (sorted by qualified function name), one line per
// function with a non-empty effect set, e.g.:
//
//	repro/x.Reset: writes repro/x.cache, repro/x.hits
//
// Exposed for the summary-determinism tests.
func WriteEffectDump(p *Pass) string {
	we := writeEffects(p)
	var fns []*types.Func
	for fn, names := range we.trans {
		if len(names) > 0 {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	var b strings.Builder
	for _, fn := range fns {
		fmt.Fprintf(&b, "%s: writes %s\n", fn.FullName(), strings.Join(we.trans[fn], ", "))
	}
	return b.String()
}
