package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Memdomain checks that values from the two physical memory domains —
// Xeon host DRAM and Xeon Phi on-card GDDR5 (machine.HostMem /
// machine.MicMem) — are not mixed within one local RDMA descriptor.
// The paper's direct design makes posting from either domain
// legitimate, and remote (cross-node) addresses pair with any local
// domain; what is never right is one descriptor whose pieces name
// different local memories: a registration whose domain argument
// disagrees with its address, a scatter-gather entry whose address and
// memory key come from different domains, or a work request whose
// entries span both.
//
// The analysis is taint-style: allocations and fields tagged Host*/
// Mic* seed domain bits, assignments and helper calls (through
// per-function taint summaries computed bottom-up over the package
// call graph) propagate them, and a finding fires only when both sides
// of a pair are known and disjoint — unknown stays silent.
var Memdomain = &Analyzer{
	Name:      "memdomain",
	Scope:     ScopeInter,
	Doc:       "host and mic memory domains must not mix within one registration, SGE, or work request",
	AppliesTo: notTestPackage,
	Run:       runMemdomain,
}

// Domain taint bits.
const (
	domHost uint8 = 1 << iota
	domMic
)

func domName(bits uint8) string {
	switch bits {
	case domHost:
		return "host"
	case domMic:
		return "mic"
	}
	return "mixed"
}

// exclusive reports whether the two taints name provably different
// domains: both known, no overlap.
func domMix(a, b uint8) bool {
	return a != 0 && b != 0 && a&b == 0
}

// domVal is the abstract domain of one value: constant taint bits plus
// the parameter indices whose domain flows into it (used only while
// summarizing).
type domVal struct {
	bits   uint8
	params []int
}

func (v domVal) join(o domVal) domVal {
	out := domVal{bits: v.bits | o.bits, params: v.params}
	for _, p := range o.params {
		out.params = addParam(out.params, p)
	}
	return out
}

func addParam(list []int, p int) []int {
	for _, x := range list {
		if x == p {
			return list
		}
	}
	list = append(list, p)
	sort.Ints(list)
	return list
}

// domResult is one result position of a taint summary.
type domResult struct {
	bits       uint8
	fromParams []int
}

// domSummary is a function's taint summary: the domain each result
// carries, as constant bits plus propagated parameter domains.
type domSummary struct {
	results []domResult
}

func (s *domSummary) interesting() bool {
	for _, r := range s.results {
		if r.bits != 0 || len(r.fromParams) > 0 {
			return true
		}
	}
	return false
}

// nameDomain classifies an identifier-ish name by the repo's Host*/Mic*
// naming convention: Host, HostBuf, HostMR, HostMem are host; Mic,
// MicBuf, MicMem are mic. The prefix must end the name or be followed
// by an upper-case letter so unrelated words do not match.
func nameDomain(name string) uint8 {
	if prefixWord(name, "Host") {
		return domHost
	}
	if prefixWord(name, "Mic") {
		return domMic
	}
	return 0
}

func prefixWord(name, prefix string) bool {
	if !strings.HasPrefix(name, prefix) {
		return false
	}
	rest := name[len(prefix):]
	return rest == "" || (rest[0] >= 'A' && rest[0] <= 'Z')
}

// memdomainFlow analyzes one function: objDom holds the converged
// object taints, params maps tracked parameter objects to their index
// while summarizing.
type memdomainFlow struct {
	p      *Pass
	sums   map[*types.Func]*domSummary
	objDom map[types.Object]domVal
	params map[types.Object]int
}

func runMemdomain(p *Pass) {
	g := p.CallGraph()
	sums := map[*types.Func]*domSummary{}
	// Bottom-up taint summaries. Recursive components keep the empty
	// summary computed on first visit — taint through recursion is rare
	// and staying silent is the safe direction for this rule.
	for _, scc := range g.SCCs {
		for _, fn := range scc {
			sums[fn] = summarizeDomains(p, sums, fn, g.Funcs[fn])
		}
	}
	for _, fn := range funcsInOrder(g) {
		mf := &memdomainFlow{p: p, sums: sums, objDom: map[types.Object]domVal{}}
		mf.solveObjects(g.Funcs[fn].Body)
		mf.check(g.Funcs[fn].Body)
	}
}

// funcsInOrder returns the call graph's functions in declaration
// order, for deterministic report order within a file set.
func funcsInOrder(g *CallGraph) []*types.Func {
	fns := make([]*types.Func, 0, len(g.Funcs))
	for fn := range g.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// summarizeDomains computes one function's taint summary: solve the
// body's object taints (parameters seeded with their own index), then
// read each return statement's result expressions.
func summarizeDomains(p *Pass, sums map[*types.Func]*domSummary, fn *types.Func, fd *ast.FuncDecl) *domSummary {
	sig := fn.Type().(*types.Signature)
	s := &domSummary{results: make([]domResult, sig.Results().Len())}
	if len(s.results) == 0 {
		return s
	}
	mf := &memdomainFlow{p: p, sums: sums, objDom: map[types.Object]domVal{}, params: map[types.Object]int{}}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil && name.Name != "_" {
				mf.params[obj] = idx
				mf.objDom[obj] = domVal{params: []int{idx}}
			}
			idx++
		}
	}
	mf.solveObjects(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are not this function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == len(s.results) {
			for i, e := range ret.Results {
				v := mf.domainOf(e)
				s.results[i].bits |= v.bits
				for _, pi := range v.params {
					s.results[i].fromParams = addParam(s.results[i].fromParams, pi)
				}
			}
		} else if len(ret.Results) == 1 {
			// `return f()` spreading a multi-result callee.
			if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if cs := mf.calleeSummary(call); cs != nil {
					for i := range s.results {
						if i < len(cs.results) {
							v := mf.applyResult(call, cs.results[i])
							s.results[i].bits |= v.bits
							for _, pi := range v.params {
								s.results[i].fromParams = addParam(s.results[i].fromParams, pi)
							}
						}
					}
				}
			}
		}
		return true
	})
	return s
}

// solveObjects iterates the body's assignments until the object taint
// map stops growing (bits and param sets only grow, so this
// terminates; the bound is a safety net).
func (mf *memdomainFlow) solveObjects(body *ast.BlockStmt) {
	for iter := 0; iter < 8; iter++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = mf.assign(n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				if len(n.Values) > 0 {
					lhs := make([]ast.Expr, len(n.Names))
					for i, id := range n.Names {
						lhs[i] = id
					}
					changed = mf.assign(lhs, n.Values) || changed
				}
			case *ast.RangeStmt:
				// Ranging over a tagged slice tags the value variable.
				if n.Value != nil {
					if v := mf.domainOf(n.X); v.bits != 0 || len(v.params) > 0 {
						changed = mf.tag(n.Value, v) || changed
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (mf *memdomainFlow) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			changed = mf.tag(lhs[i], mf.domainOf(rhs[i])) || changed
		}
	case len(rhs) == 1:
		// Multi-value call: the first result goes through the source/
		// propagator special cases, the rest through the summary.
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			changed = mf.tag(lhs[0], mf.domainOfCall(call)) || changed
			if cs := mf.calleeSummary(call); cs != nil {
				for i := 1; i < len(lhs) && i < len(cs.results); i++ {
					changed = mf.tag(lhs[i], mf.applyResult(call, cs.results[i])) || changed
				}
			}
		}
	}
	return changed
}

// tag joins a taint into the object a plain identifier target names.
func (mf *memdomainFlow) tag(target ast.Expr, v domVal) bool {
	if v.bits == 0 && len(v.params) == 0 {
		return false
	}
	id, ok := unparen(target).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := mf.p.objOf(id)
	if obj == nil {
		return false
	}
	old := mf.objDom[obj]
	merged := old.join(v)
	if merged.bits == old.bits && len(merged.params) == len(old.params) {
		return false
	}
	mf.objDom[obj] = merged
	return true
}

// domainOf computes an expression's taint.
func (mf *memdomainFlow) domainOf(e ast.Expr) domVal {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return mf.objDom[mf.p.objOf(e)]
	case *ast.SelectorExpr:
		// A Host*/Mic* field or method names its domain outright
		// (n.Host, omr.HostBuf, machine.MicMem); any other selector
		// inherits its base's taint (buf.Addr, mr.LKey).
		if bits := nameDomain(e.Sel.Name); bits != 0 {
			return domVal{bits: bits}
		}
		return mf.domainOf(e.X)
	case *ast.CallExpr:
		return mf.domainOfCall(e)
	case *ast.UnaryExpr:
		return mf.domainOf(e.X)
	case *ast.StarExpr:
		return mf.domainOf(e.X)
	case *ast.IndexExpr:
		return mf.domainOf(e.X)
	case *ast.SliceExpr:
		return mf.domainOf(e.X)
	case *ast.CompositeLit:
		var v domVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.join(mf.domainOf(kv.Value))
			} else {
				v = v.join(mf.domainOf(el))
			}
		}
		return v
	}
	return domVal{}
}

// domainOfCall handles the known taint sources and propagators:
// Domain.Alloc and HCA.Open carry their receiver's or argument's
// domain, RegMR/RegMRBuffer tag the MR from the registered memory, and
// same-package callees answer through their summaries. Each source is
// gated on its receiver's named type (or, for the registration verbs
// whose receivers vary across verb implementations, on the MR result
// type) so an unrelated method sharing the name cannot taint — the
// same discipline classify() applies through createRecv/resultType. A
// call that fails its gate falls through to the summary lookup.
func (mf *memdomainFlow) domainOfCall(call *ast.CallExpr) domVal {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Alloc":
			if recvTypeName(mf.p, call) == "Domain" {
				return mf.domainOf(sel.X)
			}
		case "Open":
			if recvTypeName(mf.p, call) == "HCA" && len(call.Args) >= 1 {
				return mf.domainOf(call.Args[len(call.Args)-1])
			}
		case "Domain":
			if recvTypeName(mf.p, call) == "Node" && len(call.Args) >= 1 {
				return mf.domainOf(call.Args[len(call.Args)-1])
			}
		case "RegMRBuffer":
			if callResultTypeName(mf.p, call, 0) == "MR" && len(call.Args) >= 3 {
				return mf.domainOf(call.Args[2])
			}
		case "RegMR":
			if callResultTypeName(mf.p, call, 0) == "MR" && len(call.Args) >= 4 {
				return mf.domainOf(call.Args[2]).join(mf.domainOf(call.Args[3]))
			}
		}
	}
	if cs := mf.calleeSummary(call); cs != nil && len(cs.results) > 0 {
		return mf.applyResult(call, cs.results[0])
	}
	return domVal{}
}

func (mf *memdomainFlow) calleeSummary(call *ast.CallExpr) *domSummary {
	fn := mf.p.calledFunc(call)
	if fn == nil {
		return nil
	}
	return mf.sums[fn]
}

// applyResult instantiates one summary result at a call site: constant
// bits pass through, parameter-propagated domains are read from the
// actual arguments.
func (mf *memdomainFlow) applyResult(call *ast.CallExpr, r domResult) domVal {
	v := domVal{bits: r.bits}
	for _, j := range r.fromParams {
		if j < len(call.Args) {
			v = v.join(mf.domainOf(call.Args[j]))
		}
	}
	return v
}

// check walks the solved body and reports domain mixes inside
// registration calls, scatter-gather entries, and work requests.
func (mf *memdomainFlow) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			mf.checkRegMR(n)
		case *ast.CompositeLit:
			switch mf.litTypeName(n) {
			case "SGE":
				mf.checkSGE(n)
			case "SendWR", "RecvWR":
				mf.checkWR(n)
			}
		}
		return true
	})
}

func (mf *memdomainFlow) litTypeName(lit *ast.CompositeLit) string {
	tv, ok := mf.p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return ""
	}
	return namedTypeName(tv.Type)
}

// checkRegMR flags RegMR(p, pd, dom, addr, n) whose domain argument
// provably disagrees with its address argument.
func (mf *memdomainFlow) checkRegMR(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "RegMR" || len(call.Args) < 4 {
		return
	}
	dom := mf.domainOf(call.Args[2]).bits
	addr := mf.domainOf(call.Args[3]).bits
	if domMix(dom, addr) {
		mf.p.Reportf(call.Pos(),
			"memory region registered with %s-domain descriptor but %s-domain address: one RegMR must stay within one memory domain",
			domName(dom), domName(addr))
	}
}

// checkSGE flags a scatter-gather entry whose address and memory key
// come from different domains — the LKey would not cover the address
// it is paired with.
func (mf *memdomainFlow) checkSGE(lit *ast.CompositeLit) {
	var addr, key uint8
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		k, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch k.Name {
		case "Addr":
			addr = mf.domainOf(kv.Value).bits
		case "LKey":
			key = mf.domainOf(kv.Value).bits
		}
	}
	if domMix(addr, key) {
		mf.p.Reportf(lit.Pos(),
			"scatter-gather entry pairs a %s-domain address with a %s-domain memory key: register and post within one domain",
			domName(addr), domName(key))
	}
}

// checkWR flags a work request whose scatter-gather entries span both
// local domains. The Remote side is exempt: pairing a local buffer
// with a remote node's address is the whole point of RDMA.
func (mf *memdomainFlow) checkWR(lit *ast.CompositeLit) {
	var seen uint8
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		k, ok := kv.Key.(*ast.Ident)
		if !ok || k.Name != "SGL" {
			continue
		}
		sgl, ok := unparen(kv.Value).(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, entry := range sgl.Elts {
			v := mf.domainOf(entry)
			if v.bits == domHost || v.bits == domMic {
				seen |= v.bits
			}
		}
	}
	if seen == domHost|domMic {
		mf.p.Reportf(lit.Pos(),
			"work request mixes host-domain and mic-domain scatter-gather entries: split it per domain")
	}
}
