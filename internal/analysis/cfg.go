package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file builds intraprocedural control-flow graphs over go/ast
// function bodies, the substrate of the flow-sensitive lifecycle rules
// (mrleak, mrpin, offload, reqwait). The builder is purely syntactic —
// no type information is needed — so it is reusable for any future
// dataflow analysis (escape, taint) over the same ASTs.
//
// Granularity: a Block holds a straight-line run of ast.Nodes
// (statements and, for condition blocks, one leaf condition
// expression). Short-circuit conditions are desugared: `a && b` becomes
// two condition blocks, so a dataflow fact can be refined differently
// along the a-false edge and the b-false edge. Compound statements
// (if/for/switch/...) never appear as Block nodes — they are decomposed
// into their pieces — with one exception: *ast.RangeStmt appears as the
// loop-head node (analyses must not traverse its Body, which lives in
// other blocks).

// A Block is one straight-line run of CFG nodes.
type Block struct {
	// Index is the block's position in CFG.Blocks, stable across runs.
	Index int
	// Nodes holds the statements (and leaf condition expressions)
	// executed in order when control enters the block.
	Nodes []ast.Node
	// Succs are the possible successors. A block with Cond != nil has
	// exactly two: Succs[0] when Cond evaluates true, Succs[1] when
	// false. Multi-way blocks (range heads, switch tests, select heads)
	// have Cond == nil and any number of successors.
	Succs []*Block
	// Cond is the leaf condition expression terminating a two-way
	// conditional block, or nil.
	Cond ast.Expr
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit block; every return statement
	// and the implicit fall-off-the-end edge lead here. Terminating
	// calls (panic, os.Exit, log.Fatal) end their block with no
	// successors, so obligations on panic paths never reach Exit.
	Exit *Block
	// Blocks lists every block in creation order; Blocks[i].Index == i.
	Blocks []*Block
}

// ImplicitReturn marks the fall-off-the-end exit of a function body. It
// is appended as the final node on the path that reaches the end of the
// body without an explicit return, so exit-obligation checks (leaks,
// unwaited requests) have a node to anchor to.
type ImplicitReturn struct {
	// Body is the function body falling off the end; Pos/End delegate
	// to it so reports point at the closing brace.
	Body *ast.BlockStmt
}

// Pos returns the position of the body's closing brace.
func (r *ImplicitReturn) Pos() token.Pos { return r.Body.Rbrace }

// End returns the position just past the closing brace.
func (r *ImplicitReturn) End() token.Pos { return r.Body.Rbrace + 1 }

// DeferRun marks the execution of one deferred call at function exit.
// The builder appends DeferRun nodes — most recently registered defer
// first, matching Go's LIFO order — to the exit block and after every
// terminating call (deferred functions run during a panic unwind too).
// Whether a given defer was actually registered on the path reaching
// the exit is a dataflow fact, not a CFG fact: analyses gate the node's
// effect on state armed at the corresponding *ast.DeferStmt.
type DeferRun struct {
	// Defer is the registering statement; Pos/End delegate to it so
	// reports point at the defer site.
	Defer *ast.DeferStmt
}

// Pos returns the position of the registering defer statement.
func (d *DeferRun) Pos() token.Pos { return d.Defer.Pos() }

// End returns the end of the registering defer statement.
func (d *DeferRun) End() token.Pos { return d.Defer.End() }

// ExitCheck anchors end-of-function obligation checks. It is the last
// node of the exit block, after every DeferRun, so leak checks observe
// the state left behind by deferred cleanups.
type ExitCheck struct {
	// Body is the function body; Pos/End point at its closing brace.
	Body *ast.BlockStmt
}

// Pos returns the position of the body's closing brace.
func (c *ExitCheck) Pos() token.Pos { return c.Body.Rbrace }

// End returns the position just past the closing brace.
func (c *ExitCheck) End() token.Pos { return c.Body.Rbrace + 1 }

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cfg.Entry = b.block()
	b.cfg.Exit = b.block()
	b.cur = b.cfg.Entry
	b.stmt(body)
	if b.cur != nil {
		b.add(&ImplicitReturn{Body: body})
	}
	b.edge(b.cfg.Exit)
	// The exit epilogue: deferred calls run on every exiting path (LIFO),
	// then the obligation check anchors after them.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, &DeferRun{Defer: b.defers[i]})
	}
	b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, &ExitCheck{Body: body})
	return b.cfg
}

// target is one enclosing break/continue destination.
type target struct {
	label string
	block *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return/branch/panic) until the next statement starts a fresh —
	// possibly unreachable — block.
	cur *Block

	breaks       []target
	continues    []target
	fallthroughs []*Block // innermost switch's next-case body (or nil)
	labels       map[string]*Block
	// defers lists the function's defer statements in registration
	// order; NewCFG replays them in reverse on the exit block and after
	// terminating calls.
	defers []*ast.DeferStmt
}

// block allocates a new empty block.
func (b *cfgBuilder) block() *Block {
	nb := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, nb)
	return nb
}

// add appends a node to the current block, starting a fresh
// (unreachable) block if the previous one was terminated.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.block()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edge links the current block to next (no-op when control cannot fall
// through).
func (b *cfgBuilder) edge(next *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, next)
	}
}

// jump links the current block to next and marks fallthrough dead.
func (b *cfgBuilder) jump(next *Block) {
	b.edge(next)
	b.cur = nil
}

// label returns (creating on first use) the block a label names, so
// forward gotos resolve without a patch pass.
func (b *cfgBuilder) label(name string) *Block {
	lb, ok := b.labels[name]
	if !ok {
		lb = b.block()
		b.labels[name] = lb
	}
	return lb
}

// findTarget resolves a break/continue to the innermost matching
// enclosing target.
func findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}
	case *ast.LabeledStmt:
		lb := b.label(s.Label.Name)
		b.edge(lb)
		b.cur = lb
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.forStmt(inner, s.Label.Name)
		case *ast.RangeStmt:
			b.rangeStmt(inner, s.Label.Name)
		case *ast.SwitchStmt:
			b.switchStmt(inner, s.Label.Name)
		case *ast.TypeSwitchStmt:
			b.typeSwitchStmt(inner, s.Label.Name)
		case *ast.SelectStmt:
			b.selectStmt(inner, s.Label.Name)
		default:
			b.stmt(s.Stmt)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, labelName(s)); t != nil {
				b.jump(t)
			} else {
				b.cur = nil // malformed; type check would reject
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, labelName(s)); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.label(s.Label.Name))
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
				b.jump(b.fallthroughs[n-1])
			} else {
				b.cur = nil
			}
		}
	case *ast.ExprStmt:
		b.add(s)
		if terminatingCall(s.X) {
			// Deferred calls run during the panic unwind: replay the
			// defers registered so far (LIFO) before pruning the path.
			for i := len(b.defers) - 1; i >= 0; i-- {
				b.add(&DeferRun{Defer: b.defers[i]})
			}
			b.cur = nil
		}
	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, IncDec, Send, Go: straight-line.
		b.add(s)
	}
}

// labelName returns a branch statement's label, or "".
func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

// cond emits the short-circuit evaluation of e starting in the current
// block, branching to t when e is true and to f when false.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.block()
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.block()
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	}
	// Leaf condition: terminate the current block two-way.
	b.add(e)
	b.cur.Cond = e
	b.cur.Succs = append(b.cur.Succs, t, f)
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	then := b.block()
	after := b.block()
	elseTo := after
	if s.Else != nil {
		elseTo = b.block()
	}
	b.cond(s.Cond, then, elseTo)
	b.cur = then
	b.stmt(s.Body)
	b.edge(after)
	if s.Else != nil {
		b.cur = elseTo
		b.stmt(s.Else)
		b.edge(after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.block()
	body := b.block()
	after := b.block()
	post := head
	if s.Post != nil {
		post = b.block()
	}
	b.edge(head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		b.jump(body)
	}
	b.cur = body
	b.breaks = append(b.breaks, target{label, after})
	b.continues = append(b.continues, target{label, post})
	b.stmt(s.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.edge(post)
	if s.Post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.block()
	body := b.block()
	after := b.block()
	b.edge(head)
	b.cur = head
	// The RangeStmt itself is the head node (key/value binding and the
	// ranged expression); analyses must not traverse s.Body from it.
	b.add(s)
	b.edge(body)
	b.edge(after)
	b.cur = body
	b.breaks = append(b.breaks, target{label, after})
	b.continues = append(b.continues, target{label, head})
	b.stmt(s.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.edge(head)
	b.cur = after
}

// caseBodies builds the shared clause machinery of switch-like
// statements: a test chain in declaration order, then each clause body
// wired to after, with optional fallthrough to the next body.
func (b *cfgBuilder) caseBodies(clauses []ast.Stmt, after *Block, label string, allowFallthrough bool) {
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.block()
	}
	defIdx := -1
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			defIdx = i
			continue
		}
		test := b.block()
		b.edge(test)
		b.cur = test
		for _, e := range cc.List {
			b.add(e)
		}
		b.edge(bodies[i])
		// cur stays on the test block: the no-match edge chains on.
	}
	if defIdx >= 0 {
		b.edge(bodies[defIdx])
	} else {
		b.edge(after)
	}
	b.cur = nil
	b.breaks = append(b.breaks, target{label, after})
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		var ft *Block
		if allowFallthrough && i+1 < len(clauses) {
			ft = bodies[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, ft)
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		b.edge(after)
		b.cur = nil
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	after := b.block()
	b.caseBodies(s.Body.List, after, label, true)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	after := b.block()
	b.caseBodies(s.Body.List, after, label, false)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	after := b.block()
	head := b.cur
	if head == nil {
		head = b.block()
		b.cur = head
	}
	b.breaks = append(b.breaks, target{label, after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.block()
		head.Succs = append(head.Succs, body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.edge(after)
		b.cur = nil
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if len(s.Body.List) == 0 {
		head.Succs = append(head.Succs, after)
	}
	b.cur = after
}

// terminatingFuncs are selector names that never return: the process
// (or goroutine) is gone, so resource obligations on these paths are
// moot. Receiver-agnostic so testing.T Fatal variants match too.
var terminatingFuncs = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"FailNow": true, "SkipNow": true, "Skipf": true, "Goexit": true,
	"Exit": true,
}

// terminatingCall reports whether the expression statement is a call
// that never returns: panic, os.Exit, log.Fatal*, runtime.Goexit, or a
// testing Fatal/Skip method. Purely syntactic — a local function that
// happens to be named Exit would match, which is acceptable for a
// may-analysis (it only suppresses reports on that path).
func terminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		return terminatingFuncs[fn.Sel.Name]
	}
	return false
}

// String renders the CFG compactly for tests and debugging:
// "b0[3n] -> b2 b4" per line, with E marking the exit block and ?
// marking condition blocks.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		mark := ""
		if b == c.Exit {
			mark = "E"
		}
		if b.Cond != nil {
			mark += "?"
		}
		succs := make([]int, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = s.Index
		}
		fmt.Fprintf(&sb, "b%d%s[%dn]", b.Index, mark, len(b.Nodes))
		if len(succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range succs {
				fmt.Fprintf(&sb, " b%d", s)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Reachable returns the blocks reachable from Entry in index order.
func (c *CFG) Reachable() []*Block {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	var out []*Block
	for _, b := range c.Blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
