package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// This file implements the generic forward dataflow solver the
// lifecycle rules run on. The analysis is a "may" analysis over
// bitmask states: at a merge point a resource's state is the union of
// its states along all incoming paths, so a set Live bit at an exit
// means there EXISTS a path on which the resource is still live — the
// flow-sensitive reading of "must reach a release on all paths".
//
// Facts form a finite join-semilattice (finite creation sites × finite
// bitmasks, finite variables × finite site sets), in-facts only grow,
// and transfer functions are monotone bit operations, so the worklist
// iteration reaches a fixpoint.

// State is a bitmask of abstract conditions a tracked value may be in.
// The concrete bits are owned by the analysis built on the solver.
type State uint32

// Facts is the dataflow fact map at one program point.
type Facts struct {
	// Res maps each tracked creation site (the creating *ast.CallExpr)
	// to the union of states the resource may be in.
	Res map[ast.Node]State
	// Bind maps a variable to the creation sites it may hold.
	Bind map[types.Object][]ast.Node
	// Pair maps a creation site to the error variable assigned in the
	// same statement, enabling nil refinement: on an `err != nil` edge
	// the paired resource is known nil and its obligation dropped. A
	// nil value is the tombstone meaning the pairing was invalidated
	// (the error variable was reassigned, or paths disagree).
	Pair map[ast.Node]types.Object
}

// NewFacts returns an empty fact map.
func NewFacts() *Facts {
	return &Facts{
		Res:  map[ast.Node]State{},
		Bind: map[types.Object][]ast.Node{},
		Pair: map[ast.Node]types.Object{},
	}
}

// Clone deep-copies the facts.
func (f *Facts) Clone() *Facts {
	g := NewFacts()
	for k, v := range f.Res {
		g.Res[k] = v
	}
	for k, v := range f.Bind {
		g.Bind[k] = append([]ast.Node(nil), v...)
	}
	for k, v := range f.Pair {
		g.Pair[k] = v
	}
	return g
}

// Join merges other into f (union of sites and states, pairing
// tombstoned on disagreement) and reports whether f changed.
func (f *Facts) Join(other *Facts) bool {
	changed := false
	for k, v := range other.Res {
		if old, ok := f.Res[k]; !ok || old|v != old {
			f.Res[k] = old | v
			changed = true
		}
	}
	for k, v := range other.Bind {
		merged, grew := unionSites(f.Bind[k], v)
		if grew {
			f.Bind[k] = merged
			changed = true
		}
	}
	for k, v := range other.Pair {
		old, ok := f.Pair[k]
		switch {
		case !ok:
			f.Pair[k] = v
			changed = true
		case old != v && old != nil:
			f.Pair[k] = nil // disagreement: tombstone the refinement
			changed = true
		}
	}
	return changed
}

// unionSites merges two site lists, keeping them sorted by position so
// iteration order is deterministic.
func unionSites(a, b []ast.Node) ([]ast.Node, bool) {
	grew := false
	for _, n := range b {
		if !containsSite(a, n) {
			a = append(a, n)
			grew = true
		}
	}
	if grew {
		sort.Slice(a, func(i, j int) bool { return a[i].Pos() < a[j].Pos() })
	}
	return a, grew
}

func containsSite(list []ast.Node, n ast.Node) bool {
	for _, m := range list {
		if m == n {
			return true
		}
	}
	return false
}

// SortedSites returns the tracked creation sites in position order, for
// deterministic reporting.
func (f *Facts) SortedSites() []ast.Node {
	sites := make([]ast.Node, 0, len(f.Res))
	for s := range f.Res {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos() < sites[j].Pos() })
	return sites
}

// A FlowProblem supplies the transfer functions of one forward dataflow
// analysis over a CFG.
type FlowProblem interface {
	// Transfer applies node n's effect to f in place. During fixpoint
	// iteration report is false; after convergence the solver replays
	// every reachable block once with report true, and the problem
	// emits its findings then.
	Transfer(n ast.Node, f *Facts, report bool)
	// Refine narrows f along the branch edge of a two-way condition
	// block: cond evaluated to true when branch is true.
	Refine(cond ast.Expr, branch bool, f *Facts)
}

// Solve runs the forward worklist iteration to fixpoint starting from
// empty entry facts and then replays each reachable block once in
// report mode. It returns the converged in-facts per block (indexed
// like c.Blocks, nil for unreachable blocks) so tests can inspect
// convergence directly.
func Solve(c *CFG, p FlowProblem) []*Facts {
	return SolveInit(c, p, NewFacts())
}

// SolveInit is Solve with caller-provided entry facts — the hook
// interprocedural summary computation uses to seed parameters as
// pre-tracked resources.
func SolveInit(c *CFG, p FlowProblem, entry *Facts) []*Facts {
	in := make([]*Facts, len(c.Blocks))
	in[c.Entry.Index] = entry

	// FIFO worklist with membership dedup: deterministic because block
	// successor order is deterministic.
	queue := []*Block{c.Entry}
	queued := make([]bool, len(c.Blocks))
	queued[c.Entry.Index] = true

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false

		out := in[b.Index].Clone()
		for _, n := range b.Nodes {
			p.Transfer(n, out, false)
		}
		for i, s := range b.Succs {
			g := out
			if b.Cond != nil && len(b.Succs) == 2 {
				g = out.Clone()
				p.Refine(b.Cond, i == 0, g)
			}
			if in[s.Index] == nil {
				in[s.Index] = g.Clone()
			} else if !in[s.Index].Join(g) {
				continue
			}
			if !queued[s.Index] {
				queued[s.Index] = true
				queue = append(queue, s)
			}
		}
	}

	// Reporting replay over the converged facts, in block order.
	for _, b := range c.Blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		f := in[b.Index].Clone()
		for _, n := range b.Nodes {
			p.Transfer(n, f, true)
		}
	}
	return in
}

// ---- Constant-propagation lattice ----
//
// The communication-safety rules (blockcycle, bufhazard) reason about
// peer, tag, offset, and size arguments of Send/Recv-family calls.
// ConstVal is the three-level lattice those arguments evaluate into:
// Unknown (bottom — no evidence yet), one known integer constant, or
// Varying (top — conflicting assignments, or a value the evaluator
// cannot see through). Values only climb the lattice under Join, so
// the flow-insensitive environment fixpoint in commsafety.go
// terminates.

// ConstVal is one value of the constant-propagation lattice.
type ConstVal struct {
	kind uint8
	v    int64
}

const (
	cvUnknown uint8 = iota
	cvConst
	cvVarying
)

// UnknownConst is the lattice bottom: no assignment observed yet.
func UnknownConst() ConstVal { return ConstVal{} }

// KnownConst is a single known integer constant.
func KnownConst(v int64) ConstVal { return ConstVal{kind: cvConst, v: v} }

// VaryingConst is the lattice top: the value is not one constant.
func VaryingConst() ConstVal { return ConstVal{kind: cvVarying} }

// Known returns the constant and whether the value is a single known
// integer. Both Unknown and Varying answer false: a rule may only act
// on evidence, never on its absence.
func (c ConstVal) Known() (int64, bool) { return c.v, c.kind == cvConst }

// Join is the lattice join: Unknown is the identity and two different
// constants go to Varying.
func (c ConstVal) Join(o ConstVal) ConstVal {
	switch {
	case c.kind == cvUnknown:
		return o
	case o.kind == cvUnknown:
		return c
	case c.kind == cvConst && o.kind == cvConst && c.v == o.v:
		return c
	}
	return VaryingConst()
}

func (c ConstVal) String() string {
	switch c.kind {
	case cvUnknown:
		return "unknown"
	case cvConst:
		return strconv.FormatInt(c.v, 10)
	}
	return "varying"
}

// constBinop folds a binary operator over two lattice values. Unknown
// operands stay Unknown (the fixpoint has not reached them yet); any
// operation the evaluator cannot perform exactly goes to Varying, so
// the result is total and monotone.
func constBinop(op token.Token, a, b ConstVal) ConstVal {
	if a.kind == cvUnknown || b.kind == cvUnknown {
		return UnknownConst()
	}
	av, aok := a.Known()
	bv, bok := b.Known()
	if !aok || !bok {
		return VaryingConst()
	}
	switch op {
	case token.ADD:
		return KnownConst(av + bv)
	case token.SUB:
		return KnownConst(av - bv)
	case token.MUL:
		return KnownConst(av * bv)
	case token.QUO:
		if bv != 0 {
			return KnownConst(av / bv)
		}
	case token.REM:
		if bv != 0 {
			return KnownConst(av % bv)
		}
	case token.SHL:
		if bv >= 0 && bv < 63 {
			return KnownConst(av << uint(bv))
		}
	case token.SHR:
		if bv >= 0 && bv < 63 {
			return KnownConst(av >> uint(bv))
		}
	case token.AND:
		return KnownConst(av & bv)
	case token.OR:
		return KnownConst(av | bv)
	case token.XOR:
		return KnownConst(av ^ bv)
	case token.AND_NOT:
		return KnownConst(av &^ bv)
	}
	return VaryingConst()
}

// constUnary folds a unary operator over a lattice value.
func constUnary(op token.Token, x ConstVal) ConstVal {
	if x.kind != cvConst {
		return x
	}
	switch op {
	case token.ADD:
		return x
	case token.SUB:
		return KnownConst(-x.v)
	case token.XOR:
		return KnownConst(^x.v)
	}
	return VaryingConst()
}

// nilExpr reports whether e is the predeclared nil (via type info when
// available, syntactically otherwise).
func nilExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok {
		return tv.IsNil()
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilComparison decomposes a leaf condition of the form `x == nil` or
// `x != nil` (either operand order), returning the compared identifier
// and the token (EQL or NEQ).
func nilComparison(info *types.Info, cond ast.Expr) (*ast.Ident, token.Token, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, 0, false
	}
	var idSide ast.Expr
	switch {
	case nilExpr(info, unparen(be.Y)):
		idSide = be.X
	case nilExpr(info, unparen(be.X)):
		idSide = be.Y
	default:
		return nil, 0, false
	}
	id, ok := unparen(idSide).(*ast.Ident)
	if !ok {
		return nil, 0, false
	}
	return id, be.Op, true
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
