package analysis

// MRPin enforces the MR-cache pin protocol: every MR handed out by
// MRCache.Get must reach a matching MRCache.Release on every path.
// Get pins the cache entry against eviction; an unbalanced pin
// permanently shrinks the evictable portion of the cache, and an
// unbalanced Release panics at runtime.
// The verb tables (MRCache.Get acquire, MRCache.Release release) are
// populated from builtinContracts at init — see contracts.go.
var mrpinSpec = &lifecycleSpec{
	rule:       "mrpin",
	what:       "pinned MR",
	resultType: "MR",
	leakMsg:    "pinned MR from MRCache.%s is not released on every path: unbalanced pins permanently shrink the cache",
	discardMsg: "result of MRCache.%s discarded: the pinned MR can never be released",
	doubleMsg:  "pinned MR may already be released: an unbalanced MRCache.Release panics",
}

var MRPin = &Analyzer{
	Name:      "mrpin",
	Scope:     ScopeInter,
	Doc:       "every MRCache.Get must be matched by MRCache.Release on all paths",
	AppliesTo: notTestPackage,
	Run:       func(p *Pass) { runLifecycle(p, mrpinSpec) },
}
