package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A BaselineEntry identifies one accepted finding. Line numbers are
// deliberately absent: a baseline must survive unrelated edits that
// shift code up or down, so findings match on the (file, rule,
// message) triple alone. Files are stored slash-separated and relative
// to the module root so the baseline is portable across checkouts.
type BaselineEntry struct {
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// A Baseline is a multiset of accepted findings: two identical entries
// absorb at most two occurrences, so fixing one of two equal findings
// in a file still surfaces nothing, but introducing a third does.
type Baseline struct {
	counts map[BaselineEntry]int
}

// LoadBaseline reads a baseline file (a JSON array of entries).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &Baseline{counts: map[BaselineEntry]int{}}
	for _, e := range entries {
		b.counts[e]++
	}
	return b, nil
}

// baselineEntry projects a finding onto its baseline key, relativizing
// the filename against the module root when it lies underneath it.
func baselineEntry(root string, f Finding) BaselineEntry {
	file := f.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return BaselineEntry{File: file, Rule: f.Rule, Message: f.Message}
}

// Filter returns the findings the baseline does not absorb, preserving
// their order. Each baseline entry absorbs as many occurrences as it
// appears in the file.
func (b *Baseline) Filter(root string, findings []Finding) []Finding {
	remaining := make(map[BaselineEntry]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	out := findings[:0:0]
	for _, f := range findings {
		k := baselineEntry(root, f)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaseline writes the findings as a baseline file, sorted so the
// output is deterministic and diffs stay minimal. The write goes
// through a temp file and rename, so an interrupted or failed update
// never leaves a truncated baseline behind.
func WriteBaseline(path, root string, findings []Finding) error {
	entries := make([]BaselineEntry, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, baselineEntry(root, f))
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
