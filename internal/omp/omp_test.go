package omp

import (
	"sync/atomic" //simlint:ignore rawgo exercises Execute's real worker threads from test code
	"testing"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func TestRegionCostSingleThread(t *testing.T) {
	plat := perfmodel.Default()
	team := NewTeam(plat, 1, machine.MicMem)
	// 30e6 items at 30e6 items/s on one Phi thread = 1 s; no fork cost.
	if got := team.RegionCost(int(plat.PhiCoreRate)); got != sim.Second {
		t.Fatalf("cost %v, want 1s", got)
	}
}

func TestRegionCostScalesWithThreads(t *testing.T) {
	plat := perfmodel.Default()
	t1 := NewTeam(plat, 1, machine.MicMem).RegionCost(1 << 20)
	t56 := NewTeam(plat, 56, machine.MicMem).RegionCost(1 << 20)
	ratio := float64(t1) / float64(t56)
	s := plat.PhiScaling(56)
	if ratio < s*0.9 || ratio > s*1.1 {
		t.Fatalf("56-thread speedup %.1f, expected ≈S(56)=%.1f", ratio, s)
	}
}

func TestHostTeamFasterPerThread(t *testing.T) {
	plat := perfmodel.Default()
	phi := NewTeam(plat, 1, machine.MicMem).RegionCost(1 << 20)
	host := NewTeam(plat, 1, machine.HostMem).RegionCost(1 << 20)
	if host >= phi {
		t.Fatal("host core must outrun a Phi core")
	}
}

func TestHostScalingClampedToCores(t *testing.T) {
	plat := perfmodel.Default()
	team := NewTeam(plat, 100, machine.HostMem)
	if team.Scaling() != float64(plat.HostCores) {
		t.Fatalf("host scaling %v, want clamp at %d cores", team.Scaling(), plat.HostCores)
	}
}

func TestParallelForExecutesAllItems(t *testing.T) {
	plat := perfmodel.Default()
	eng := sim.NewEngine()
	team := NewTeam(plat, 8, machine.MicMem)
	var sum int64
	eng.Spawn("compute", func(p *sim.Proc) {
		team.ParallelFor(p, 1000, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			atomic.AddInt64(&sum, local)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 999*1000/2 {
		t.Fatalf("sum %d, want %d (items missed or duplicated)", sum, 999*1000/2)
	}
	if team.Regions != 1 || team.WorkItems != 1000 {
		t.Fatalf("stats regions=%d items=%d", team.Regions, team.WorkItems)
	}
}

func TestParallelForNilBodyChargesOnly(t *testing.T) {
	plat := perfmodel.Default()
	eng := sim.NewEngine()
	team := NewTeam(plat, 4, machine.MicMem)
	var elapsed sim.Duration
	eng.Spawn("compute", func(p *sim.Proc) {
		start := p.Now()
		team.ParallelFor(p, 1<<20, nil)
		elapsed = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != team.RegionCost(1<<20) {
		t.Fatalf("charged %v, want %v", elapsed, team.RegionCost(1<<20))
	}
}

func TestZeroAndNegativeItems(t *testing.T) {
	plat := perfmodel.Default()
	team := NewTeam(plat, 4, machine.MicMem)
	if team.RegionCost(0) != plat.OMPForkCost(4) {
		t.Fatal("zero items should cost only fork/join")
	}
	if team.RegionCost(-5) != plat.OMPForkCost(4) {
		t.Fatal("negative items should clamp to zero work")
	}
}

func TestThreadsClampedToOne(t *testing.T) {
	team := NewTeam(perfmodel.Default(), 0, machine.MicMem)
	if team.Threads != 1 {
		t.Fatalf("threads %d, want 1", team.Threads)
	}
}
