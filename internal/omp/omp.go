// Package omp simulates an OpenMP runtime on the modeled devices: a
// persistent thread team whose parallel-for regions charge virtual time
// according to the platform's thread-scaling curve while (optionally)
// executing the loop body for real, in parallel, on the simulation
// host. The paper's stencil uses MPI across nodes and OpenMP within
// each co-processor (§V, experiment 3).
package omp

import (
	"runtime"
	"sync" //simlint:ignore rawgo Execute fans pure compute out on real threads, outside sim state

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// Team is a persistent OpenMP thread team bound to one device.
type Team struct {
	Plat    *perfmodel.Platform
	Threads int
	Loc     machine.DomainKind

	// Regions counts parallel regions entered (fork/join charges).
	Regions int64
	// WorkItems accumulates loop iterations executed/charged.
	WorkItems int64
}

// NewTeam builds a team of n threads on a device of kind loc.
func NewTeam(plat *perfmodel.Platform, threads int, loc machine.DomainKind) *Team {
	if threads < 1 {
		threads = 1
	}
	return &Team{Plat: plat, Threads: threads, Loc: loc}
}

// rate returns the single-thread work rate (items/second) on the
// device.
func (t *Team) rate() float64 {
	if t.Loc == machine.MicMem {
		return t.Plat.PhiCoreRate
	}
	return t.Plat.HostCoreRate
}

// Scaling returns the effective speedup of the team over one thread.
func (t *Team) Scaling() float64 {
	if t.Loc == machine.MicMem {
		return t.Plat.PhiScaling(t.Threads)
	}
	// Host cores scale near-linearly up to the socket for this kernel.
	s := float64(t.Threads)
	if max := float64(t.Plat.HostCores); s > max {
		s = max
	}
	return s
}

// RegionCost returns the virtual time to process n work items in one
// parallel region, including fork/join overhead.
func (t *Team) RegionCost(n int) sim.Duration {
	if n < 0 {
		n = 0
	}
	work := sim.Duration(float64(n) / (t.rate() * t.Scaling()) * float64(sim.Second))
	return t.Plat.OMPForkCost(t.Threads) + work
}

// ParallelFor charges one parallel region over n items to p and, when
// body is non-nil, executes body(lo, hi) for disjoint chunks covering
// [0, n) using real goroutines. The body must be pure computation: it
// runs outside the simulation scheduler and must not touch sim state.
func (t *Team) ParallelFor(p *sim.Proc, n int, body func(lo, hi int)) {
	t.Regions++
	t.WorkItems += int64(n)
	if body != nil {
		t.Execute(n, body)
	}
	p.Sleep(t.RegionCost(n))
}

// Execute fans body out over [0, n) on real goroutines without charging
// virtual time. Callers that charge a different item count than they
// chunk by (e.g. charging per point while chunking per row) combine it
// with ParallelFor(p, items, nil).
func (t *Team) Execute(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := t.Threads
	if w := runtime.GOMAXPROCS(0); workers > w {
		workers = w
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		//simlint:ignore rawgo workers run the pure loop body on disjoint chunks and join before returning
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
