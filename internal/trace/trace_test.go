package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLogAndDump(t *testing.T) {
	r := New(0)
	r.Log(5*sim.Microsecond, "rank0", "eager-send", "to=%d", 1)
	r.Log(9*sim.Microsecond, "rank1", "eager-recv", "from=%d", 0)
	if r.Len() != 2 || len(r.Events()) != 2 {
		t.Fatalf("events %d", r.Len())
	}
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"rank0", "eager-send", "to=1", "5µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestCapDropsOldest(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Log(sim.Time(i), "a", "k", "%d", i)
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d", len(ev))
	}
	if ev[0].Msg != "7" || ev[1].Msg != "8" || ev[2].Msg != "9" {
		t.Fatalf("wrong retained window: %v", ev)
	}
	if r.Dropped != 7 {
		t.Fatalf("dropped %d", r.Dropped)
	}
	var buf bytes.Buffer
	r.Dump(&buf)
	if !strings.Contains(buf.String(), "(7 earlier events dropped)") {
		t.Fatalf("dump missing drop note:\n%s", buf.String())
	}
}

func TestCapOverflowKindAccounting(t *testing.T) {
	r := New(4)
	kinds := []string{"a", "b", "a", "c", "a", "b"} // retained: c a b + one a
	for i, k := range kinds {
		r.Log(sim.Time(i), "x", k, "%d", i)
	}
	// Retained window is events 2..5: a c a b.
	if got := r.Count("a"); got != 2 {
		t.Fatalf("Count(a)=%d", got)
	}
	if got := r.Count("b"); got != 1 {
		t.Fatalf("Count(b)=%d", got)
	}
	if got := r.Count("c"); got != 1 {
		t.Fatalf("Count(c)=%d", got)
	}
	if e, ok := r.Find("a"); !ok || e.Msg != "2" {
		t.Fatalf("Find(a)=%v %v, want first retained", e, ok)
	}
	if r.Dropped != 2 {
		t.Fatalf("dropped %d", r.Dropped)
	}
}

func TestCapChangedMidRun(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ { // ring wraps
		r.Log(sim.Time(i), "a", "k", "%d", i)
	}
	r.Cap = 6 // raise: ring must linearize, then keep growing
	r.Log(10, "a", "k", "10")
	r.Log(11, "a", "k", "11")
	ev := r.Events()
	if len(ev) != 6 || ev[0].Msg != "6" || ev[5].Msg != "11" {
		t.Fatalf("after raise: %v", ev)
	}
	r.Cap = 2 // lower: oldest must be trimmed on next append
	r.Log(12, "a", "k", "12")
	ev = r.Events()
	if len(ev) != 2 || ev[0].Msg != "11" || ev[1].Msg != "12" {
		t.Fatalf("after lower: %v", ev)
	}
	if r.Count("k") != 2 {
		t.Fatalf("Count after trims: %d", r.Count("k"))
	}
	if r.Dropped != 6+5 {
		t.Fatalf("dropped %d", r.Dropped)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Log(0, "a", "k", "x")
	if r.Count("k") != 0 {
		t.Fatal("nil recorder counted")
	}
	if _, ok := r.Find("k"); ok {
		t.Fatal("nil recorder found")
	}
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained")
	}
	r.Dump(&bytes.Buffer{})
	if r.Summary() != "" {
		t.Fatal("nil recorder summarized")
	}
}

func TestCountFindSummary(t *testing.T) {
	r := New(0)
	r.Log(1, "a", "x", "first")
	r.Log(2, "a", "y", "mid")
	r.Log(3, "a", "x", "second")
	if r.Count("x") != 2 || r.Count("y") != 1 || r.Count("z") != 0 {
		t.Fatal("counts wrong")
	}
	e, ok := r.Find("x")
	if !ok || e.Msg != "first" {
		t.Fatalf("find %v %v", e, ok)
	}
	s := r.Summary()
	if !strings.Contains(s, "x=2") || !strings.Contains(s, "y=1") {
		t.Fatalf("summary %q", s)
	}
}

// BenchmarkLogBounded demonstrates that appends into a full bounded
// recorder are O(1): the per-op cost must not scale with Cap (the old
// implementation shifted the whole retained window on every append).
func BenchmarkLogBounded(b *testing.B) {
	for _, cap := range []int{64, 4096, 65536} {
		b.Run(sizeName(cap), func(b *testing.B) {
			r := New(cap)
			for i := 0; i < cap; i++ { // pre-fill to steady state
				r.Log(sim.Time(i), "a", "k", "warm")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Log(sim.Time(i), "a", "k", "hot")
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<10 && n%(1<<10) == 0:
		return sizeName(n/(1<<10)) + "Ki"
	default:
		var b []byte
		for n > 0 {
			b = append([]byte{byte('0' + n%10)}, b...)
			n /= 10
		}
		return string(b)
	}
}
