package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLogAndDump(t *testing.T) {
	r := New(0)
	r.Log(5*sim.Microsecond, "rank0", "eager-send", "to=%d", 1)
	r.Log(9*sim.Microsecond, "rank1", "eager-recv", "from=%d", 0)
	if len(r.Events) != 2 {
		t.Fatalf("events %d", len(r.Events))
	}
	var buf bytes.Buffer
	r.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"rank0", "eager-send", "to=1", "5µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestCapDropsOldest(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Log(sim.Time(i), "a", "k", "%d", i)
	}
	if len(r.Events) != 3 {
		t.Fatalf("retained %d", len(r.Events))
	}
	if r.Events[0].Msg != "7" || r.Events[2].Msg != "9" {
		t.Fatalf("wrong retained window: %v", r.Events)
	}
	if r.Dropped != 7 {
		t.Fatalf("dropped %d", r.Dropped)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Log(0, "a", "k", "x")
	if r.Count("k") != 0 {
		t.Fatal("nil recorder counted")
	}
	if _, ok := r.Find("k"); ok {
		t.Fatal("nil recorder found")
	}
	r.Dump(&bytes.Buffer{})
	if r.Summary() != "" {
		t.Fatal("nil recorder summarized")
	}
}

func TestCountFindSummary(t *testing.T) {
	r := New(0)
	r.Log(1, "a", "x", "first")
	r.Log(2, "a", "y", "mid")
	r.Log(3, "a", "x", "second")
	if r.Count("x") != 2 || r.Count("y") != 1 || r.Count("z") != 0 {
		t.Fatal("counts wrong")
	}
	e, ok := r.Find("x")
	if !ok || e.Msg != "first" {
		t.Fatalf("find %v %v", e, ok)
	}
	s := r.Summary()
	if !strings.Contains(s, "x=2") || !strings.Contains(s, "y=1") {
		t.Fatalf("summary %q", s)
	}
}
