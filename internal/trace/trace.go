// Package trace records protocol events on the virtual timeline for
// debugging and for inspecting protocol behavior in tests (which
// protocol a message took, when an RTS crossed an RTR, how credits
// flowed). Recording is off unless a Recorder is installed, and the
// hot path pays only a nil check.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Event is one timeline entry.
type Event struct {
	T     sim.Time
	Actor string
	Kind  string
	Msg   string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v  %-12s %-14s %s", e.T, e.Actor, e.Kind, e.Msg)
}

// Recorder accumulates events in order. The zero value records
// unboundedly; set Cap to bound memory. Bounded mode is a ring buffer:
// once full, each append overwrites the oldest entry in place, so Log
// is O(1) regardless of Cap.
type Recorder struct {
	// Cap bounds retained events (0 = unbounded); older entries are
	// dropped.
	Cap     int
	Dropped int64

	buf   []Event        // ring storage; oldest entry at start
	start int            // index of the oldest retained event
	n     int            // retained events
	kinds map[string]int // retained events per kind, for O(1) Count
}

// New returns a recorder bounded to cap events.
func New(cap int) *Recorder { return &Recorder{Cap: cap} }

// Log appends an event. Safe to call on a nil recorder.
func (r *Recorder) Log(t sim.Time, actor, kind, format string, args ...any) {
	if r == nil {
		return
	}
	if r.kinds == nil {
		r.kinds = make(map[string]int)
	}
	e := Event{T: t, Actor: actor, Kind: kind, Msg: fmt.Sprintf(format, args...)}
	if r.Cap > 0 && r.n == r.Cap && len(r.buf) == r.Cap {
		// Steady state: the ring is full, overwrite the oldest slot.
		r.forget(r.buf[r.start].Kind)
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.Dropped++
	} else {
		// Still filling, or Cap changed since the last append:
		// restore the linear layout, trim to the new bound, append.
		r.linearize()
		if r.Cap > 0 && r.n >= r.Cap {
			drop := r.n - (r.Cap - 1)
			for i := 0; i < drop; i++ {
				r.forget(r.buf[i].Kind)
			}
			copy(r.buf, r.buf[drop:r.n])
			r.buf = r.buf[:r.n-drop]
			r.n -= drop
			r.Dropped += int64(drop)
		}
		r.buf = append(r.buf, e)
		r.n++
	}
	r.kinds[kind]++
}

// forget decrements the retained count for kind.
func (r *Recorder) forget(kind string) {
	r.kinds[kind]--
	if r.kinds[kind] == 0 {
		delete(r.kinds, kind)
	}
}

// linearize rotates the ring so the oldest event sits at index 0 and
// buf[:n] is the retained window in order.
func (r *Recorder) linearize() {
	if r.start == 0 {
		r.buf = r.buf[:r.n]
		return
	}
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	r.buf, r.start = out, 0
}

// Len returns how many events are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the retained events oldest-first, as a copy.
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	for i := range out {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// each calls f on every retained event, oldest first.
func (r *Recorder) each(f func(Event) bool) {
	for i := 0; i < r.n; i++ {
		if !f(r.buf[(r.start+i)%len(r.buf)]) {
			return
		}
	}
}

// Count returns how many events of the given kind were retained. O(1).
func (r *Recorder) Count(kind string) int {
	if r == nil {
		return 0
	}
	return r.kinds[kind]
}

// Find returns the first retained event of the kind, if any.
func (r *Recorder) Find(kind string) (Event, bool) {
	var found Event
	ok := false
	if r != nil && r.kinds[kind] > 0 {
		r.each(func(e Event) bool {
			if e.Kind == kind {
				found, ok = e, true
				return false
			}
			return true
		})
	}
	return found, ok
}

// Dump writes the timeline.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		return
	}
	r.each(func(e Event) bool {
		fmt.Fprintln(w, e)
		return true
	})
	if r.Dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", r.Dropped)
	}
}

// Summary aggregates counts per kind, in order of first appearance
// among retained events.
func (r *Recorder) Summary() string {
	if r == nil {
		return ""
	}
	seen := map[string]bool{}
	var order []string
	r.each(func(e Event) bool {
		if !seen[e.Kind] {
			seen[e.Kind] = true
			order = append(order, e.Kind)
		}
		return true
	})
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r.kinds[k]))
	}
	return strings.Join(parts, " ")
}
