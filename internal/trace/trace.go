// Package trace records protocol events on the virtual timeline for
// debugging and for inspecting protocol behavior in tests (which
// protocol a message took, when an RTS crossed an RTR, how credits
// flowed). Recording is off unless a Recorder is installed, and the
// hot path pays only a nil check.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Event is one timeline entry.
type Event struct {
	T     sim.Time
	Actor string
	Kind  string
	Msg   string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v  %-12s %-14s %s", e.T, e.Actor, e.Kind, e.Msg)
}

// Recorder accumulates events in order. The zero value records
// unboundedly; set Cap to bound memory.
type Recorder struct {
	Events []Event
	// Cap bounds retained events (0 = unbounded); older entries are
	// dropped.
	Cap     int
	Dropped int64
}

// New returns a recorder bounded to cap events.
func New(cap int) *Recorder { return &Recorder{Cap: cap} }

// Log appends an event. Safe to call on a nil recorder.
func (r *Recorder) Log(t sim.Time, actor, kind, format string, args ...any) {
	if r == nil {
		return
	}
	if r.Cap > 0 && len(r.Events) >= r.Cap {
		copy(r.Events, r.Events[1:])
		r.Events = r.Events[:len(r.Events)-1]
		r.Dropped++
	}
	r.Events = append(r.Events, Event{T: t, Actor: actor, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Count returns how many events of the given kind were retained.
func (r *Recorder) Count(kind string) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, e := range r.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Find returns the first retained event of the kind, if any.
func (r *Recorder) Find(kind string) (Event, bool) {
	if r != nil {
		for _, e := range r.Events {
			if e.Kind == kind {
				return e, true
			}
		}
	}
	return Event{}, false
}

// Dump writes the timeline.
func (r *Recorder) Dump(w io.Writer) {
	if r == nil {
		return
	}
	for _, e := range r.Events {
		fmt.Fprintln(w, e)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", r.Dropped)
	}
}

// Summary aggregates counts per kind.
func (r *Recorder) Summary() string {
	if r == nil {
		return ""
	}
	counts := map[string]int{}
	var order []string
	for _, e := range r.Events {
		if counts[e.Kind] == 0 {
			order = append(order, e.Kind)
		}
		counts[e.Kind]++
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}
