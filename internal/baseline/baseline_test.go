package baseline_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// phiPingPong measures one blocking round trip of n bytes on a world.
func pingPongRTT(t *testing.T, w *core.World, n int) sim.Duration {
	t.Helper()
	var rtt sim.Duration
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(n)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			start := p.Now()
			if err := r.Send(p, 1, 0, core.Whole(buf)); err != nil {
				return err
			}
			if _, err := r.Recv(p, 1, 0, core.Whole(buf)); err != nil {
				return err
			}
			rtt = p.Now() - start
			return nil
		}
		if _, err := r.Recv(p, 0, 0, core.Whole(buf)); err != nil {
			return err
		}
		return r.Send(p, 0, 0, core.Whole(buf))
	})
	if err != nil {
		t.Fatal(err)
	}
	return rtt
}

func TestPhiMPIFourByteRTTNear28us(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 2)
	rtt := pingPongRTT(t, baseline.PhiMPIWorld(c, 2), 4)
	// The paper: 28 µs for the proxied mode vs 15 µs for DCFA-MPI.
	if rtt < 24*sim.Microsecond || rtt > 33*sim.Microsecond {
		t.Fatalf("proxied 4-byte RTT %v, want ≈28µs", rtt)
	}
}

func TestPhiMPIBandwidthCappedBelow1GBs(t *testing.T) {
	const n = 4 << 20
	c := cluster.New(perfmodel.Default(), 2)
	rtt := pingPongRTT(t, baseline.PhiMPIWorld(c, 2), n)
	bw := float64(n) / (float64(rtt) / 2 / 1e9) // bytes per second, one way
	if bw >= 1e9 {
		t.Fatalf("proxied bandwidth %.2f GB/s, paper says it cannot exceed 1 GB/s", bw/1e9)
	}
	if bw < 0.6e9 {
		t.Fatalf("proxied bandwidth %.2f GB/s implausibly low", bw/1e9)
	}
}

func TestDCFABeatsPhiMPIBy3xAtLargeSizes(t *testing.T) {
	const n = 4 << 20
	cp := cluster.New(perfmodel.Default(), 2)
	proxied := pingPongRTT(t, baseline.PhiMPIWorld(cp, 2), n)
	cd := cluster.New(perfmodel.Default(), 2)
	dcfaRTT := pingPongRTT(t, cd.DCFAWorld(2, true), n)
	ratio := float64(proxied) / float64(dcfaRTT)
	// Figure 9: "delivers a 3 times speed-up after the 1Mbytes message
	// size".
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("DCFA-MPI speedup over Intel-on-Phi %.2f×, want ≈3×", ratio)
	}
}

func TestPhiMPIPayloadIntegrity(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 2)
	w := baseline.PhiMPIWorld(c, 2)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		const n = 128 << 10
		buf := r.Mem(n)
		if r.ID() == 0 {
			for i := range buf.Data {
				buf.Data[i] = byte(i * 13)
			}
			return r.Send(p, 1, 0, core.Whole(buf))
		}
		if _, err := r.Recv(p, 0, 0, core.Whole(buf)); err != nil {
			return err
		}
		want := make([]byte, n)
		for i := range want {
			want[i] = byte(i * 13)
		}
		if !bytes.Equal(buf.Data, want) {
			return errors.New("proxied payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhiMPIHasNoOffloadVerbs(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 2)
	v := baseline.ProxyVerbs{}
	_ = c
	if v.SupportsOffload() {
		t.Fatal("proxied mode must not support the offload send buffer")
	}
}

func TestOffloadDeviceTransferAndLaunchCosts(t *testing.T) {
	plat := perfmodel.Default()
	c := cluster.New(plat, 1)
	dev := baseline.NewOffloadDevice(c.Buses[0])
	host := c.Nodes[0].Host.Alloc(4096)
	mic := c.Nodes[0].Mic.Alloc(4096)
	for i := range host.Data {
		host.Data[i] = byte(i)
	}
	var initT, xferT, launchT sim.Duration
	c.Eng.Spawn("host-rank", func(p *sim.Proc) {
		s := p.Now()
		dev.Init(p)
		dev.Init(p) // second init must be free
		initT = p.Now() - s
		s = p.Now()
		dev.TransferIn(p, mic.Data, host.Data)
		xferT = p.Now() - s
		s = p.Now()
		dev.Launch(p, 56)
		launchT = p.Now() - s
		dev.TransferOut(p, host.Data, mic.Data)
	})
	if err := c.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if initT != plat.OffloadInitCost {
		t.Fatalf("init %v, want %v (double init must be free)", initT, plat.OffloadInitCost)
	}
	if xferT < plat.OffloadTransferOverhead {
		t.Fatalf("transfer %v below fixed overhead", xferT)
	}
	if launchT != plat.OffloadLaunchCost(56) {
		t.Fatalf("launch %v, want %v", launchT, plat.OffloadLaunchCost(56))
	}
	if !bytes.Equal(mic.Data, host.Data) {
		t.Fatal("transfer did not move bytes")
	}
	if dev.Transfers != 2 || dev.Launches != 1 {
		t.Fatalf("stats transfers=%d launches=%d", dev.Transfers, dev.Launches)
	}
}

func TestHostOffloadWorldRuns(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 2)
	w, devs := baseline.HostOffloadWorld(c, 2)
	if len(devs) != 2 {
		t.Fatalf("devices %d", len(devs))
	}
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		dev := devs[r.ID()]
		dev.Init(p)
		// Host rank stages data to the card, "computes", pulls it back,
		// and exchanges over host MPI.
		hostBuf := r.Mem(8192)
		micBuf := dev.Node.Mic.Alloc(8192)
		for i := range hostBuf.Data {
			hostBuf.Data[i] = byte(r.ID() + 1)
		}
		dev.TransferIn(p, micBuf.Data, hostBuf.Data)
		dev.Launch(p, 4)
		dev.TransferOut(p, hostBuf.Data, micBuf.Data)
		other := 1 - r.ID()
		rb := r.Mem(8192)
		if _, err := r.Sendrecv(p, other, 0, core.Whole(hostBuf), other, 0, core.Whole(rb)); err != nil {
			return err
		}
		if rb.Data[0] != byte(other+1) {
			return errors.New("host offload exchange corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricModeMixedRanks(t *testing.T) {
	// 4 ranks on 2 nodes: host ranks 0,2 and co-processor ranks 1,3.
	c := cluster.New(perfmodel.Default(), 2)
	w := baseline.SymmetricWorld(c, 4)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		// Every pairing (host↔host, host↔phi, phi↔phi) exchanges.
		buf := r.Mem(4096)
		for i := range buf.Data {
			buf.Data[i] = byte(r.ID())
		}
		all := r.Mem(4 * 4096)
		if err := r.Allgather(p, core.Whole(buf), core.Whole(all)); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if all.Data[i*4096] != byte(i) {
				return errors.New("symmetric allgather corrupted")
			}
		}
		return r.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricModeDomainPlacement(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 2)
	w := baseline.SymmetricWorld(c, 4)
	err := w.Run(func(r *core.Rank) error {
		isHost := r.ID()%2 == 0
		gotHost := r.Domain().Kind.String() == "host"
		if isHost != gotHost {
			return errors.New("rank placed in wrong domain")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricHostPairFasterThanPhiPair(t *testing.T) {
	// Within symmetric mode, host↔host messaging must outrun phi↔phi.
	c := cluster.New(perfmodel.Default(), 2)
	w := baseline.SymmetricWorld(c, 4)
	var hostT, phiT sim.Duration
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(4)
		if err := r.Barrier(p); err != nil {
			return err
		}
		// Host pair: 0↔2. Phi pair: 1↔3.
		var peer int
		switch r.ID() {
		case 0:
			peer = 2
		case 2:
			peer = 0
		case 1:
			peer = 3
		case 3:
			peer = 1
		}
		start := p.Now()
		if r.ID() < peer {
			if err := r.Send(p, peer, 0, core.Whole(buf)); err != nil {
				return err
			}
			if _, err := r.Recv(p, peer, 0, core.Whole(buf)); err != nil {
				return err
			}
			if r.ID() == 0 {
				hostT = p.Now() - start
			} else {
				phiT = p.Now() - start
			}
		} else {
			if _, err := r.Recv(p, peer, 0, core.Whole(buf)); err != nil {
				return err
			}
			if err := r.Send(p, peer, 0, core.Whole(buf)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hostT >= phiT {
		t.Fatalf("host pair RTT %v not below phi pair RTT %v", hostT, phiT)
	}
}

func TestDoubleBufferOverlap(t *testing.T) {
	// Two async transfers through the COI path overlap with host work:
	// the paper's fourth optimization policy.
	plat := perfmodel.Default()
	c := cluster.New(plat, 1)
	dev := baseline.NewOffloadDevice(c.Buses[0])
	host := c.Nodes[0].Host.Alloc(1 << 20)
	mic := c.Nodes[0].Mic.Alloc(1 << 20)
	var elapsed sim.Duration
	c.Eng.Spawn("host-rank", func(p *sim.Proc) {
		start := p.Now()
		ev := dev.StartTransfer(mic.Data, host.Data)
		p.Sleep(100 * sim.Microsecond) // overlapped host work
		ev.Wait(p)
		elapsed = p.Now() - start
	})
	if err := c.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	serial := plat.OffloadTransferOverhead +
		sim.Duration(float64(1<<20)/plat.OffloadBandwidth*float64(sim.Second)) +
		100*sim.Microsecond
	if elapsed >= serial {
		t.Fatalf("no overlap: elapsed %v, serial would be %v", elapsed, serial)
	}
}
