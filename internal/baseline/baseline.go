// Package baseline reimplements the cost structure of the two Intel MPI
// configurations the paper compares DCFA-MPI against (§III-B, §V):
//
//   - 'Intel MPI on Xeon Phi co-processors' mode: MPI ranks run on the
//     co-processors, but InfiniBand operations are relayed through the
//     host IB proxy daemon over SCIF. Each operation pays the proxy
//     round trip and large transfers are staged through the host at
//     proxy throughput (the paper observes it "cannot get bandwidth
//     greater than 1 Gbytes/s"). No offloading send-buffer design.
//
//   - 'Intel MPI on Xeon where it offloads computation to Xeon Phi
//     co-processors' mode: MPI ranks run on the hosts at full host MPI
//     speed, but application data lives on the co-processor, so every
//     compute step pays #pragma-offload kernel launches and COI data
//     transfers (modeled by internal/pcie), optimized with the paper's
//     four policies (persistent buffers, no per-iteration offload init,
//     4 KiB alignment, double buffering).
package baseline

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dcfa"
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// ProxyVerbs is the 'Intel MPI on Xeon Phi' provider: co-processor
// resident MPI whose verbs are relayed through the host proxy daemon.
type ProxyVerbs struct {
	V *dcfa.MicVerbs
	// ProxiedOps counts operations that paid the relay.
	ProxiedOps *int64
}

// Loc implements core.Verbs.
func (x ProxyVerbs) Loc() machine.DomainKind             { return machine.MicMem }
func (x ProxyVerbs) Domain() *machine.Domain             { return x.V.Node.Mic }
func (x ProxyVerbs) HCA() *ib.HCA                        { return x.V.HCA }
func (x ProxyVerbs) AllocPD(p *sim.Proc) (*ib.PD, error) { return x.V.AllocPD(p) }
func (x ProxyVerbs) CreateCQ(p *sim.Proc, depth int) (*ib.CQ, error) {
	return x.V.CreateCQ(p, depth)
}

// CreateQP creates the QP and caps its throughput at the proxy staging
// rate.
func (x ProxyVerbs) CreateQP(p *sim.Proc, pd *ib.PD, scq, rcq *ib.CQ) (*ib.QP, error) {
	qp, err := x.V.CreateQP(p, pd, scq, rcq)
	if err != nil {
		return nil, err
	}
	qp.RateCap = x.V.Plat.ProxyBandwidth
	return qp, nil
}

func (x ProxyVerbs) RegMR(p *sim.Proc, pd *ib.PD, dom *machine.Domain, addr uint64, n int) (*ib.MR, error) {
	return x.V.RegMR(p, pd, dom, addr, n)
}
func (x ProxyVerbs) DeregMR(p *sim.Proc, mr *ib.MR) error { return x.V.DeregMR(p, mr) }

// PostSend relays the work request through the host proxy daemon: one
// extra per-operation cost before the HCA sees it.
func (x ProxyVerbs) PostSend(p *sim.Proc, qp *ib.QP, wr *ib.SendWR) error {
	p.Sleep(x.V.Plat.ProxySendCost)
	if x.ProxiedOps != nil {
		*x.ProxiedOps++
	}
	return qp.PostSend(p, wr)
}

func (x ProxyVerbs) PostRecv(p *sim.Proc, qp *ib.QP, wr *ib.RecvWR) error {
	return qp.PostRecv(p, wr)
}

// RecvOverhead is the daemon's inbound relay: completion notification
// plus copying the staged payload back to card memory.
func (x ProxyVerbs) RecvOverhead(n int) sim.Duration {
	return x.V.Plat.ProxyRecvCost(n)
}

// The Intel stack has no offloading send-buffer verbs.
func (x ProxyVerbs) SupportsOffload() bool { return false }
func (x ProxyVerbs) RegOffloadMR(p *sim.Proc, size int) (*dcfa.OffloadMR, error) {
	return nil, core.ErrNoOffload
}
func (x ProxyVerbs) SyncOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR, off int, src []byte) error {
	return core.ErrNoOffload
}
func (x ProxyVerbs) DeregOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR) error {
	return core.ErrNoOffload
}

// PhiMPIWorld builds an 'Intel MPI on Xeon Phi' world on c. It uses
// Intel MPI's much larger eager threshold (256 KiB default) with a
// shallower ring, and no offloading send-buffer design.
func PhiMPIWorld(c *cluster.Cluster, ranks int) *core.World {
	cfg := core.ConfigFromPlatform(c.Plat)
	cfg.Offload = false
	cfg.EagerMax = c.Plat.ProxyEagerMax
	cfg.EagerSlots = 4
	cfg.Metrics = c.Metrics
	envs := make([]core.Env, ranks)
	for i := 0; i < ranks; i++ {
		ni := c.NodeFor(i)
		mic, _ := dcfa.New(c.Eng, c.Plat, c.Nodes[ni], c.HCAs[ni], c.Buses[ni])
		mic.SetMetrics(c.Metrics)
		envs[i] = core.Env{V: ProxyVerbs{V: mic}, Node: c.Nodes[ni]}
	}
	return core.NewWorld(c.Eng, c.Plat, cfg, envs)
}

// SymmetricWorld builds the third §III-B configuration: 'Symmetric'
// mode, with MPI ranks on both host processors and co-processors
// ("messages can be transferred to/from any core"). Even ranks run on
// the hosts at host speed; odd ranks run on the co-processors through
// the proxy path. The paper lists but does not evaluate this mode; it
// is provided for completeness.
func SymmetricWorld(c *cluster.Cluster, ranks int) *core.World {
	cfg := core.ConfigFromPlatform(c.Plat)
	cfg.Offload = false
	cfg.EagerMax = c.Plat.ProxyEagerMax
	cfg.EagerSlots = 4
	cfg.Metrics = c.Metrics
	envs := make([]core.Env, ranks)
	for i := 0; i < ranks; i++ {
		ni := c.NodeFor(i / 2)
		if i%2 == 0 {
			envs[i] = core.Env{
				V:    core.HostVerbs{Ctx: c.HCAs[ni].Open(machine.HostMem), Node: c.Nodes[ni]},
				Node: c.Nodes[ni],
			}
		} else {
			mic, _ := dcfa.New(c.Eng, c.Plat, c.Nodes[ni], c.HCAs[ni], c.Buses[ni])
			mic.SetMetrics(c.Metrics)
			envs[i] = core.Env{V: ProxyVerbs{V: mic}, Node: c.Nodes[ni]}
		}
	}
	return core.NewWorld(c.Eng, c.Plat, cfg, envs)
}

// OffloadDevice is the per-rank co-processor handle in the 'Intel MPI on
// Xeon + offload' mode.
type OffloadDevice struct {
	Bus  *pcie.Bus
	Node *machine.Node

	initialized bool
	// Transfers and TransferBytes count COI traffic.
	Transfers     int64
	TransferBytes int64
	Launches      int64
}

// NewOffloadDevice wraps the node's PCIe complex.
func NewOffloadDevice(bus *pcie.Bus) *OffloadDevice {
	return &OffloadDevice{Bus: bus, Node: bus.Node}
}

// Init pays the one-time COI engine initialization (kept out of the
// timed loops, per the paper's first optimization policy).
func (d *OffloadDevice) Init(p *sim.Proc) {
	if d.initialized {
		return
	}
	d.initialized = true
	d.Bus.OffloadInit(p)
}

// TransferIn copies host data into co-processor memory (offload in).
func (d *OffloadDevice) TransferIn(p *sim.Proc, micDst, hostSrc []byte) {
	d.Transfers++
	d.TransferBytes += int64(len(hostSrc))
	d.Bus.OffloadTransfer(p, micDst, hostSrc)
}

// TransferOut copies co-processor data back to host memory.
func (d *OffloadDevice) TransferOut(p *sim.Proc, hostDst, micSrc []byte) {
	d.Transfers++
	d.TransferBytes += int64(len(micSrc))
	d.Bus.OffloadTransfer(p, hostDst, micSrc)
}

// StartTransfer is the asynchronous form used for the double-buffer
// overlap policy; the returned event fires at completion.
func (d *OffloadDevice) StartTransfer(dst, src []byte) *sim.Event {
	d.Transfers++
	d.TransferBytes += int64(len(src))
	return d.Bus.StartOffloadTransfer(dst, src)
}

// Launch pays one offload-region invocation (kernel dispatch plus
// waking the region's OpenMP threads on the co-processor).
func (d *OffloadDevice) Launch(p *sim.Proc, threads int) {
	d.Launches++
	d.Bus.OffloadLaunch(p, threads)
}

// HostOffloadWorld builds the 'Intel MPI on Xeon + offload' world: host
// MPI ranks plus one offload device per rank.
func HostOffloadWorld(c *cluster.Cluster, ranks int) (*core.World, []*OffloadDevice) {
	w := c.HostWorld(ranks)
	devs := make([]*OffloadDevice, ranks)
	for i := 0; i < ranks; i++ {
		devs[i] = NewOffloadDevice(c.Buses[c.NodeFor(i)])
	}
	return w, devs
}
