// Package dcfa implements the paper's Direct Communication Facility for
// Accelerators as a user-space library on the co-processor:
//
//   - DCFA IB IF (MicVerbs): the same verbs the host has. Resource
//     functions (PD, CQ, QP creation, memory registration) delegate
//     their host-assisted work to the DCFA CMD server over the SCIF
//     channel; the data path (post send/recv, poll) writes the simulated
//     HCA directly with co-processor-side costs.
//   - DCFA CMD client/server: the delegation protocol. The server keeps
//     every object created for the co-processor in a hash table and
//     publishes a handle ("hash key") for later reuse, as §IV-B1
//     describes.
//   - The offloading send-buffer extension (§IV-B4): RegOffloadMR
//     allocates and registers a host-side bounce buffer, SyncOffloadMR
//     stages the latest co-processor data into it through the Phi's DMA
//     engine, and DeregOffloadMR releases both sides.
package dcfa

import (
	"fmt"
	"slices"

	"repro/internal/causal"
	"repro/internal/faults"
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/pcie"
	"repro/internal/perfmodel"
	"repro/internal/scif"
	"repro/internal/sim"
)

// Command kinds on the DCFA CMD channel.
const (
	CmdOpenDev = iota + 1
	CmdAllocPD
	CmdCreateCQ
	CmdCreateQP
	CmdRegMR
	CmdDeregMR
	CmdRegOffloadMR
	CmdDeregOffloadMR
)

// cmdName maps a command kind to its telemetry name.
func cmdName(kind int) string {
	switch kind {
	case CmdOpenDev:
		return "open-dev"
	case CmdAllocPD:
		return "alloc-pd"
	case CmdCreateCQ:
		return "create-cq"
	case CmdCreateQP:
		return "create-qp"
	case CmdRegMR:
		return "reg-mr"
	case CmdDeregMR:
		return "dereg-mr"
	case CmdRegOffloadMR:
		return "reg-offload-mr"
	case CmdDeregOffloadMR:
		return "dereg-offload-mr"
	default:
		return "unknown"
	}
}

// cmdFail is the reply payload for a transiently rejected command: the
// simulation analogue of a dropped or NAKed SCIF exchange. The client
// retries with backoff until its deadline.
type cmdFail struct{}

// CmdTimeoutError reports that a delegated CMD-channel command did not
// succeed within the fault plan's virtual-time deadline, including
// retries. It is distinct from sim.DeadlockError: the rank exits with
// a typed failure instead of hanging the engine.
type CmdTimeoutError struct {
	Cmd     string       // command name, e.g. "reg-mr"
	Tries   int          // attempts made (initial call + retries)
	Elapsed sim.Duration // virtual time spent, first attempt to give-up
}

func (e *CmdTimeoutError) Error() string {
	return fmt.Sprintf("dcfa: cmd %s timed out after %d tries (%v)", e.Cmd, e.Tries, e.Elapsed)
}

type regMRReq struct {
	dom  *machine.Domain
	addr uint64
	n    int
	pd   *ib.PD
}

type regMRResp struct {
	mr     *ib.MR
	handle uint64
	err    error
}

type regOffloadReq struct{ size int }

type regOffloadResp struct {
	omr *OffloadMR
	err error
}

// OffloadMR is an offloading memory region: a host bounce buffer plus
// its InfiniBand registration, fronting a co-processor send buffer.
type OffloadMR struct {
	Handle  uint64
	Size    int
	HostBuf *machine.Buffer
	HostMR  *ib.MR
	// Syncs and SyncedBytes count staging operations for reports.
	Syncs       int64
	SyncedBytes int64
	released    bool
}

// HostDaemon is the DCFA CMD server: the host delegation process
// extension that executes host InfiniBand functions on behalf of the
// co-processor.
type HostDaemon struct {
	Eng  *sim.Engine
	Plat *perfmodel.Platform
	Node *machine.Node
	HCA  *ib.HCA
	Bus  *pcie.Bus

	ep      *scif.Endpoint
	hostCtx *ib.Context
	hostPD  *ib.PD

	// objects is the hash table of everything created for the
	// co-processor, keyed by published handle.
	objects    map[uint64]any
	nextHandle uint64

	// Requests counts delegated commands served.
	Requests int64
	// Rejected counts commands transiently rejected by the fault plan.
	Rejected int64

	// Telemetry (nil / "" when metrics are disabled).
	metrics *metrics.Registry
	actor   string

	// faults injects transient CMD-channel rejections (nil = sunny day).
	faults *faults.Injector
}

// serve is the daemon main loop.
func (d *HostDaemon) serve(p *sim.Proc) {
	p.MarkDaemon()
	for {
		msg := d.ep.Recv(p)
		d.Requests++
		if d.faults.CmdFault() {
			// Transient failure: reject before doing any host work. The
			// client's retry makes this invisible to callers (modulo
			// time) unless the deadline runs out first.
			d.Rejected++
			if d.metrics != nil {
				d.metrics.Counter(d.actor, "rejected."+cmdName(msg.Kind)).Inc()
			}
			d.ep.Send(msg.Kind, cmdFail{})
			continue
		}
		if d.metrics != nil {
			d.metrics.Counter(d.actor, "served."+cmdName(msg.Kind)).Inc()
		}
		switch msg.Kind {
		case CmdOpenDev, CmdAllocPD, CmdCreateCQ, CmdCreateQP:
			// Host-side resource creation work; the objects themselves
			// live in co-processor context so the data path keeps
			// co-processor costs.
			p.Sleep(d.Plat.HostVerbsCallCost)
			d.nextHandle++
			d.ep.Send(msg.Kind, d.nextHandle)

		case CmdRegMR:
			req := msg.Payload.(regMRReq)
			// The modified host IB core maps and pins co-processor
			// pages: host registration cost plus the mapping extra.
			mr, err := d.hostCtx.RegMR(p, req.pd, req.dom, req.addr, req.n)
			if err != nil {
				d.ep.Send(CmdRegMR, regMRResp{err: err})
				continue
			}
			p.Sleep(d.Plat.DelegationExtra)
			d.nextHandle++
			d.objects[d.nextHandle] = mr
			d.ep.Send(CmdRegMR, regMRResp{mr: mr, handle: d.nextHandle})

		case CmdDeregMR:
			handle := msg.Payload.(uint64)
			mr, ok := d.objects[handle].(*ib.MR)
			if !ok {
				d.ep.Send(CmdDeregMR, fmt.Errorf("dcfa: unknown MR handle %d", handle))
				continue
			}
			err := d.hostCtx.DeregMR(p, mr)
			delete(d.objects, handle)
			d.ep.Send(CmdDeregMR, err)

		case CmdRegOffloadMR:
			req := msg.Payload.(regOffloadReq)
			buf := d.Node.Host.Alloc(req.size)
			mr, err := d.hostCtx.RegMR(p, d.hostPD, d.Node.Host, buf.Addr, req.size)
			if err != nil {
				d.Node.Host.Free(buf)
				d.ep.Send(CmdRegOffloadMR, regOffloadResp{err: err})
				continue
			}
			d.nextHandle++
			omr := &OffloadMR{Handle: d.nextHandle, Size: req.size, HostBuf: buf, HostMR: mr}
			d.objects[d.nextHandle] = omr
			d.ep.Send(CmdRegOffloadMR, regOffloadResp{omr: omr})

		case CmdDeregOffloadMR:
			handle := msg.Payload.(uint64)
			omr, ok := d.objects[handle].(*OffloadMR)
			if !ok {
				d.ep.Send(CmdDeregOffloadMR, fmt.Errorf("dcfa: unknown offload MR handle %d", handle))
				continue
			}
			err := d.hostCtx.DeregMR(p, omr.HostMR)
			d.Node.Host.Free(omr.HostBuf)
			omr.released = true
			delete(d.objects, handle)
			d.ep.Send(CmdDeregOffloadMR, err)

		default:
			d.ep.Send(msg.Kind, fmt.Errorf("dcfa: unknown command %d", msg.Kind))
		}
	}
}

// LiveObjects reports how many delegated objects the hash table holds.
func (d *HostDaemon) LiveObjects() int { return len(d.objects) }

// MicVerbs is the DCFA IB IF: the InfiniBand verbs interface available
// to co-processor user space, uniform with the host's.
type MicVerbs struct {
	Eng  *sim.Engine
	Plat *perfmodel.Platform
	Node *machine.Node
	HCA  *ib.HCA
	Bus  *pcie.Bus

	ep  *scif.Endpoint
	ctx *ib.Context

	daemon *HostDaemon

	// DelegatedCalls counts operations that crossed to the host.
	DelegatedCalls int64
	// CmdRetries and CmdTimeouts count the client-side recovery work:
	// every transient rejection ends in exactly one of the two.
	CmdRetries  int64
	CmdTimeouts int64

	// Telemetry (nil / "" when metrics are disabled).
	metrics *metrics.Registry
	actor   string

	// faults supplies the CMD retry policy and drives the daemon's
	// rejections (nil = sunny day).
	faults *faults.Injector

	// causal, when non-nil, receives one EvCmdDone per completed
	// delegated command, attributed to causalRank's timeline (the CMD
	// round trip runs in the rank's process context).
	causal     *causal.Recorder
	causalRank int32
}

// SetMetrics installs (or removes, with nil) the telemetry registry on
// both the co-processor verbs interface and its host daemon. Each
// delegated command records a count, a round-trip latency histogram and
// a span on the "dcfa/node<N>" track; the daemon counts commands served
// on "dcfad/node<N>".
func (v *MicVerbs) SetMetrics(reg *metrics.Registry) {
	v.metrics = reg
	v.daemon.metrics = reg
	if reg != nil {
		v.actor = fmt.Sprintf("dcfa/node%d", v.Node.ID)
		v.daemon.actor = fmt.Sprintf("dcfad/node%d", v.Node.ID)
	}
}

// SetCausal installs (or removes, with nil) the causal-event recorder.
// rank is the MPI rank this verbs interface serves; completed CMD
// round trips land on that rank's causal timeline as EvCmdDone.
func (v *MicVerbs) SetCausal(rec *causal.Recorder, rank int) {
	v.causal = rec
	v.causalRank = int32(rank)
}

// SetFaults installs (or removes, with nil) the fault injector on both
// the co-processor verbs interface and its host daemon. Install it
// before issuing commands; the client side reads its retry policy from
// the same plan that drives the daemon's rejections.
func (v *MicVerbs) SetFaults(inj *faults.Injector) {
	v.faults = inj
	v.daemon.faults = inj
}

// New wires up DCFA on one node: it spawns the host delegation daemon
// and returns the co-processor-side verbs interface.
func New(eng *sim.Engine, plat *perfmodel.Platform, node *machine.Node, hca *ib.HCA, bus *pcie.Bus) (*MicVerbs, *HostDaemon) {
	pair := scif.NewPair(eng, plat)
	d := &HostDaemon{
		Eng: eng, Plat: plat, Node: node, HCA: hca, Bus: bus,
		ep: pair.Host, hostCtx: hca.Open(machine.HostMem),
		objects: make(map[uint64]any),
	}
	d.hostPD = d.hostCtx.AllocPD()
	eng.Spawn(fmt.Sprintf("dcfa-daemon/node%d", node.ID), d.serve)
	v := &MicVerbs{
		Eng: eng, Plat: plat, Node: node, HCA: hca, Bus: bus,
		ep: pair.Mic, ctx: hca.Open(machine.MicMem), daemon: d,
	}
	return v, d
}

// Context exposes the co-processor verbs context (post/poll costs are
// co-processor-side).
func (v *MicVerbs) Context() *ib.Context { return v.ctx }

// call performs one delegated command round trip, retrying transient
// rejections with capped exponential backoff until the fault plan's
// virtual-time deadline expires. The sunny-day path (no injector, no
// rejection) is a single Call with no extra timing.
func (v *MicVerbs) call(p *sim.Proc, kind int, payload any) (scif.Msg, error) {
	v.DelegatedCalls++
	name := cmdName(kind)
	start := p.Now()
	var sp *metrics.Span
	if v.metrics != nil {
		sp = v.metrics.Begin(start, v.actor, "cmd."+name)
	}
	backoff, capB := v.faults.CmdBackoffBase()
	deadline := start + v.faults.CmdDeadline()
	tries := 0
	for {
		resp := v.ep.Call(p, kind, payload)
		tries++
		if _, rejected := resp.Payload.(cmdFail); !rejected {
			now := p.Now()
			if v.metrics != nil {
				sp.End(now)
				v.metrics.Counter(v.actor, "cmd."+name).Inc()
				v.metrics.Histogram(v.actor, "cmd-rtt."+name, metrics.TimeBuckets).ObserveDuration(now - start)
			}
			v.causal.Emit(causal.Event{T: now, Kind: causal.EvCmdDone,
				Rank: v.causalRank, Peer: -1, Tag: int32(kind), Aux: uint64(now - start)})
			return resp, nil
		}
		// Transient rejection: back off and retry, unless the next
		// attempt could not even start before the deadline.
		if p.Now()+backoff >= deadline {
			v.CmdTimeouts++
			if v.metrics != nil {
				sp.End(p.Now())
				v.metrics.Counter(v.actor, "cmd.timeouts").Inc()
			}
			return scif.Msg{}, &CmdTimeoutError{Cmd: name, Tries: tries, Elapsed: p.Now() - start}
		}
		v.CmdRetries++
		if v.metrics != nil {
			v.metrics.Counter(v.actor, "cmd.retries").Inc()
		}
		p.Sleep(backoff)
		backoff *= 2
		if backoff > capB {
			backoff = capB
		}
	}
}

// OpenDevice performs the delegated device/context setup.
func (v *MicVerbs) OpenDevice(p *sim.Proc) error {
	_, err := v.call(p, CmdOpenDev, nil)
	return err
}

// AllocPD allocates a protection domain (host-assisted).
func (v *MicVerbs) AllocPD(p *sim.Proc) (*ib.PD, error) {
	if _, err := v.call(p, CmdAllocPD, nil); err != nil {
		return nil, err
	}
	return v.ctx.AllocPD(), nil
}

// CreateCQ creates a completion queue (host-assisted structures, polled
// directly from the co-processor).
func (v *MicVerbs) CreateCQ(p *sim.Proc, depth int) (*ib.CQ, error) {
	if _, err := v.call(p, CmdCreateCQ, nil); err != nil {
		return nil, err
	}
	return v.ctx.CreateCQ(depth), nil
}

// CreateQP creates an RC queue pair (host-assisted structures, doorbell
// rung directly from the co-processor).
func (v *MicVerbs) CreateQP(p *sim.Proc, pd *ib.PD, sendCQ, recvCQ *ib.CQ) (*ib.QP, error) {
	if _, err := v.call(p, CmdCreateQP, nil); err != nil {
		return nil, err
	}
	return v.ctx.CreateQP(pd, sendCQ, recvCQ), nil
}

// RegMR registers co-processor memory: the CMD client translates the
// buffer address and ships the request to the host, which maps and pins
// the pages. This is the expensive path the paper's MR cache exists for.
func (v *MicVerbs) RegMR(p *sim.Proc, pd *ib.PD, dom *machine.Domain, addr uint64, n int) (*ib.MR, error) {
	resp, err := v.call(p, CmdRegMR, regMRReq{dom: dom, addr: addr, n: n, pd: pd})
	if err != nil {
		return nil, err
	}
	r := resp.Payload.(regMRResp)
	return r.mr, r.err
}

// RegMRBuffer registers a whole buffer.
func (v *MicVerbs) RegMRBuffer(p *sim.Proc, pd *ib.PD, b *machine.Buffer) (*ib.MR, error) {
	return v.RegMR(p, pd, b.Dom, b.Addr, len(b.Data))
}

// DeregMR releases a delegated registration. The MR handle lookup is by
// the object itself; the daemon's hash table is scanned client-side via
// the MR's key, so we ship the published handle.
func (v *MicVerbs) DeregMR(p *sim.Proc, mr *ib.MR) error {
	// Find the daemon handle for this MR, scanning handles in sorted
	// order so the lookup is deterministic even if an object were ever
	// published twice.
	handles := make([]uint64, 0, len(v.daemon.objects))
	for h := range v.daemon.objects {
		handles = append(handles, h)
	}
	slices.Sort(handles)
	var handle uint64
	for _, h := range handles {
		if v.daemon.objects[h] == mr {
			handle = h
			break
		}
	}
	if handle == 0 {
		return fmt.Errorf("dcfa: MR not delegated")
	}
	resp, err := v.call(p, CmdDeregMR, handle)
	if err != nil {
		return err
	}
	if err, ok := resp.Payload.(error); ok && err != nil {
		return err
	}
	return nil
}

// RegOffloadMR allocates a host bounce buffer of the given size,
// registers it on the host, and returns the region usable for later
// sends (the paper's reg_offload_mr).
func (v *MicVerbs) RegOffloadMR(p *sim.Proc, size int) (*OffloadMR, error) {
	resp, err := v.call(p, CmdRegOffloadMR, regOffloadReq{size: size})
	if err != nil {
		return nil, err
	}
	r := resp.Payload.(regOffloadResp)
	return r.omr, r.err
}

// SyncOffloadMR stages src (co-processor data) into the host bounce
// buffer at offset off through the Phi DMA engine (sync_offload_mr).
// After it returns, a send from the host buffer carries the latest data.
func (v *MicVerbs) SyncOffloadMR(p *sim.Proc, omr *OffloadMR, off int, src []byte) error {
	if omr.released {
		return fmt.Errorf("dcfa: sync on released offload MR %d", omr.Handle)
	}
	if off < 0 || off+len(src) > omr.Size {
		return fmt.Errorf("dcfa: sync range [%d,+%d) outside offload MR of %d bytes", off, len(src), omr.Size)
	}
	if err := v.Bus.DMACopy(p, omr.HostBuf.Data[off:off+len(src)], src); err != nil {
		return fmt.Errorf("dcfa: sync offload MR %d: %w", omr.Handle, err)
	}
	omr.Syncs++
	omr.SyncedBytes += int64(len(src))
	return nil
}

// DeregOffloadMR destroys the offloading region on the co-processor
// side, deregisters the host memory region and frees the host buffer
// (dereg_offload_mr).
func (v *MicVerbs) DeregOffloadMR(p *sim.Proc, omr *OffloadMR) error {
	resp, err := v.call(p, CmdDeregOffloadMR, omr.Handle)
	if err != nil {
		return err
	}
	if err, ok := resp.Payload.(error); ok && err != nil {
		return err
	}
	return nil
}
