package dcfa

import (
	"bytes"
	"testing"

	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/pcie"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// rig is a two-node cluster with DCFA installed on both co-processors.
type rig struct {
	eng  *sim.Engine
	plat *perfmodel.Platform
	node [2]*machine.Node
	hca  [2]*ib.HCA
	bus  [2]*pcie.Bus
	mic  [2]*MicVerbs
	dm   [2]*HostDaemon
}

func newRig() *rig {
	r := &rig{eng: sim.NewEngine(), plat: perfmodel.Default()}
	fab := ib.NewFabric(r.eng, r.plat)
	for i := 0; i < 2; i++ {
		r.node[i] = machine.NewNode(i)
		r.hca[i] = fab.AttachHCA(r.node[i])
		r.bus[i] = pcie.Attach(r.eng, r.plat, r.node[i])
		r.mic[i], r.dm[i] = New(r.eng, r.plat, r.node[i], r.hca[i], r.bus[i])
	}
	return r
}

func TestDelegatedRegMRCostsAndWorks(t *testing.T) {
	r := newRig()
	buf := r.node[0].Mic.Alloc(64 << 10)
	var elapsed sim.Duration
	r.eng.Spawn("rank", func(p *sim.Proc) {
		pd, _ := r.mic[0].AllocPD(p)
		start := p.Now()
		mr, err := r.mic[0].RegMRBuffer(p, pd, buf)
		if err != nil {
			t.Error(err)
			return
		}
		elapsed = p.Now() - start
		if mr.LKey == 0 || mr.Dom != r.node[0].Mic {
			t.Errorf("MR %+v", mr)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	floor := 2*r.plat.SCIFMsgLatency + r.plat.MRRegCost(64<<10) + r.plat.DelegationExtra
	if elapsed < floor {
		t.Fatalf("delegated registration took %v, must be ≥ %v (round trip + host work)", elapsed, floor)
	}
	if r.dm[0].Requests < 2 {
		t.Fatalf("daemon served %d requests, want ≥2", r.dm[0].Requests)
	}
	if r.dm[0].LiveObjects() != 1 {
		t.Fatalf("hash table holds %d objects, want 1", r.dm[0].LiveObjects())
	}
}

func TestMicToMicRDMAWriteViaDCFA(t *testing.T) {
	r := newRig()
	src := r.node[0].Mic.Alloc(4096)
	dst := r.node[1].Mic.Alloc(4096)
	for i := range src.Data {
		src.Data[i] = byte(i * 3)
	}
	// Exchange MR info "out of band" through shared test state, like the
	// paper's bootstrap.
	type side struct {
		qp *ib.QP
		cq *ib.CQ
		mr *ib.MR
	}
	var s [2]side
	ready := sim.NewEvent(r.eng)
	r.eng.Spawn("rank1", func(p *sim.Proc) {
		v := r.mic[1]
		v.OpenDevice(p)
		pd, _ := v.AllocPD(p)
		s[1].cq, _ = v.CreateCQ(p, 256)
		s[1].qp, _ = v.CreateQP(p, pd, s[1].cq, s[1].cq)
		var err error
		s[1].mr, err = v.RegMRBuffer(p, pd, dst)
		if err != nil {
			t.Error(err)
			return
		}
		if s[0].qp == nil {
			ready.Wait(p)
		}
		if err := s[1].qp.Connect(r.hca[0].LID, s[0].qp.QPN); err != nil {
			t.Error(err)
		}
	})
	r.eng.Spawn("rank0", func(p *sim.Proc) {
		v := r.mic[0]
		v.OpenDevice(p)
		pd, _ := v.AllocPD(p)
		s[0].cq, _ = v.CreateCQ(p, 256)
		s[0].qp, _ = v.CreateQP(p, pd, s[0].cq, s[0].cq)
		var err error
		s[0].mr, err = v.RegMRBuffer(p, pd, src)
		if err != nil {
			t.Error(err)
			return
		}
		ready.Fire()
		// Wait for peer setup.
		for s[1].mr == nil || s[1].qp.State != ib.QPConnected {
			p.Sleep(10 * sim.Microsecond)
		}
		if err := s[0].qp.Connect(r.hca[1].LID, s[1].qp.QPN); err != nil {
			t.Error(err)
			return
		}
		err = s[0].qp.PostSend(p, &ib.SendWR{
			WRID: 1, Opcode: ib.OpRDMAWrite, Signaled: true,
			SGL:    []ib.SGE{{Addr: src.Addr, Len: 4096, LKey: s[0].mr.LKey}},
			Remote: ib.RemoteAddr{Addr: s[1].mr.Addr, RKey: s[1].mr.RKey},
		})
		if err != nil {
			t.Error(err)
			return
		}
		cqes := s[0].cq.WaitPoll(p, 1)
		if cqes[0].Status != ib.StatusSuccess {
			t.Errorf("completion %+v", cqes[0])
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Data, src.Data) {
		t.Fatal("mic→mic RDMA write via DCFA failed")
	}
}

func TestOffloadMRSyncStagesBytes(t *testing.T) {
	r := newRig()
	src := r.node[0].Mic.Alloc(8192)
	for i := range src.Data {
		src.Data[i] = byte(255 - i%251)
	}
	r.eng.Spawn("rank", func(p *sim.Proc) {
		v := r.mic[0]
		omr, err := v.RegOffloadMR(p, 8192)
		if err != nil {
			t.Error(err)
			return
		}
		if omr.HostBuf.Dom != r.node[0].Host {
			t.Error("bounce buffer not in host memory")
		}
		if err := v.SyncOffloadMR(p, omr, 0, src.Data); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(omr.HostBuf.Data, src.Data) {
			t.Error("sync did not stage bytes into host buffer")
		}
		if omr.Syncs != 1 || omr.SyncedBytes != 8192 {
			t.Errorf("stats %d/%d", omr.Syncs, omr.SyncedBytes)
		}
		if err := v.DeregOffloadMR(p, omr); err != nil {
			t.Error(err)
		}
		if err := v.SyncOffloadMR(p, omr, 0, src.Data[:16]); err == nil {
			t.Error("sync on released offload MR succeeded")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.dm[0].LiveObjects() != 0 {
		t.Fatalf("hash table holds %d objects after dereg, want 0", r.dm[0].LiveObjects())
	}
	if r.node[0].Host.BytesLive != 0 {
		t.Fatalf("host bounce memory leaked: %d bytes", r.node[0].Host.BytesLive)
	}
}

func TestSyncOffloadMRRangeChecked(t *testing.T) {
	r := newRig()
	src := r.node[0].Mic.Alloc(128)
	r.eng.Spawn("rank", func(p *sim.Proc) {
		v := r.mic[0]
		omr, err := v.RegOffloadMR(p, 64)
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.SyncOffloadMR(p, omr, 0, src.Data); err == nil {
			t.Error("out-of-range sync succeeded")
		}
		if err := v.SyncOffloadMR(p, omr, -1, src.Data[:4]); err == nil {
			t.Error("negative-offset sync succeeded")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadedSendBeatsDirectPhiSendForBulk(t *testing.T) {
	// The heart of §IV-B4: a 1 MiB transfer staged through the host
	// bounce buffer completes faster than one DMA-read from Phi memory.
	const n = 1 << 20
	r := newRig()
	src := r.node[0].Mic.Alloc(n)
	dst := r.node[1].Mic.Alloc(n)
	for i := range src.Data {
		src.Data[i] = byte(i)
	}
	var direct, offloaded sim.Duration
	r.eng.Spawn("rank", func(p *sim.Proc) {
		v0, v1 := r.mic[0], r.mic[1]
		pd0, _ := v0.AllocPD(p)
		pd1, _ := v1.AllocPD(p)
		cq0, _ := v0.CreateCQ(p, 64)
		cq1, _ := v1.CreateCQ(p, 64)
		qp0, _ := v0.CreateQP(p, pd0, cq0, cq0)
		qp1, _ := v1.CreateQP(p, pd1, cq1, cq1)
		if err := ib.ConnectPair(qp0, qp1); err != nil {
			t.Error(err)
			return
		}
		smr, err := v0.RegMRBuffer(p, pd0, src)
		if err != nil {
			t.Error(err)
			return
		}
		dmr, err := v1.RegMRBuffer(p, pd1, dst)
		if err != nil {
			t.Error(err)
			return
		}

		// Direct: RDMA write straight from Phi memory.
		start := p.Now()
		qp0.PostSend(p, &ib.SendWR{WRID: 1, Opcode: ib.OpRDMAWrite, Signaled: true,
			SGL:    []ib.SGE{{Addr: src.Addr, Len: n, LKey: smr.LKey}},
			Remote: ib.RemoteAddr{Addr: dmr.Addr, RKey: dmr.RKey}})
		cq0.WaitPoll(p, 1)
		direct = p.Now() - start

		// Offloaded: sync to host bounce, send from host memory.
		omr, err := v0.RegOffloadMR(p, n)
		if err != nil {
			t.Error(err)
			return
		}
		start = p.Now()
		if err := v0.SyncOffloadMR(p, omr, 0, src.Data); err != nil {
			t.Error(err)
			return
		}
		qp0.PostSend(p, &ib.SendWR{WRID: 2, Opcode: ib.OpRDMAWrite, Signaled: true,
			SGL:    []ib.SGE{{Addr: omr.HostBuf.Addr, Len: n, LKey: omr.HostMR.LKey}},
			Remote: ib.RemoteAddr{Addr: dmr.Addr, RKey: dmr.RKey}})
		cq0.WaitPoll(p, 1)
		offloaded = p.Now() - start
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Data, src.Data) {
		t.Fatal("payload mismatch")
	}
	if offloaded >= direct {
		t.Fatalf("offloaded %v not faster than direct %v", offloaded, direct)
	}
	// Paper: direct Phi-sourced IB is >4× slower than host-sourced;
	// offloading recovers most of it (sync+wire ≈ 2× the wire).
	if ratio := float64(direct) / float64(offloaded); ratio < 2 {
		t.Fatalf("offload speedup %.2f×, want ≥2×", ratio)
	}
}

func TestDeregMRRemovesDelegatedObject(t *testing.T) {
	r := newRig()
	buf := r.node[0].Mic.Alloc(4096)
	r.eng.Spawn("rank", func(p *sim.Proc) {
		v := r.mic[0]
		pd, _ := v.AllocPD(p)
		mr, err := v.RegMRBuffer(p, pd, buf)
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.DeregMR(p, mr); err != nil {
			t.Error(err)
		}
		if err := v.DeregMR(p, mr); err == nil {
			t.Error("double dereg succeeded")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.dm[0].LiveObjects() != 0 {
		t.Fatalf("hash table holds %d objects, want 0", r.dm[0].LiveObjects())
	}
}

func TestDelegatedRegMRFaultsOnBadRange(t *testing.T) {
	r := newRig()
	r.eng.Spawn("rank", func(p *sim.Proc) {
		v := r.mic[0]
		pd, _ := v.AllocPD(p)
		if _, err := v.RegMR(p, pd, r.node[0].Mic, 0xDEAD0000, 64); err == nil {
			t.Error("registration of unmapped range succeeded")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
