// Package topo models switched-fabric topologies for the InfiniBand
// layer. The flat (single-switch, all-pairs) wiring the repository grew
// up with corresponds to a nil topology: every HCA egress link feeds a
// non-blocking crossbar and only the per-port serialization modeled by
// ib.HCA's egress link matters. A non-nil topology adds the interior of
// the fabric — leaf and spine switches with per-link bandwidth, latency
// and deterministic FIFO contention queuing — between the source port's
// egress and the destination port's memory.
//
// Topologies are pure timing models: they never move bytes and never
// schedule events themselves. The ib layer asks "given that the last
// byte clears the source egress at time t, when does it arrive at the
// destination port?", and the topology answers by reserving occupancy
// windows on its interior links (sim.Link.ReserveRateAt), which is what
// makes two flows crossing the same uplink queue behind one another
// deterministically.
package topo

import (
	"fmt"

	"repro/internal/sim"
)

// Topology is the timing contract the ib layer consumes. Ports are
// fabric port indices (ib assigns LID-1: the order HCAs were attached).
type Topology interface {
	// Name identifies the topology in reports and test output.
	Name() string
	// Deliver reports when the last byte of an n-byte transfer that
	// clears the source port's egress at start arrives at the
	// destination port, after queuing on interior links. bps is the
	// end-to-end rate already negotiated by the endpoints (the slower
	// of DMA read and wire); interior links cap it further.
	Deliver(start sim.Time, srcPort, dstPort, n int, bps float64) sim.Time
	// CtrlDelay is the latency-only interior crossing for small control
	// messages (RDMA-read requests) that do not occupy data links.
	CtrlDelay(srcPort, dstPort int) sim.Duration
}

// FatTree is a two-level fat tree: ports attach to leaf switches of
// radix Radix, and every leaf owns one uplink pair (up toward the
// spine, down from it). Same-leaf traffic pays one switch traversal;
// cross-leaf traffic additionally reserves the source leaf's uplink and
// the destination leaf's downlink in sequence, so incast onto one leaf
// serializes on that leaf's downlink — the contention behavior flat
// wiring cannot express.
type FatTree struct {
	name string
	// Radix is the number of ports per leaf switch.
	Radix int
	// SwitchLatency is the store-and-forward delay per switch hop.
	SwitchLatency sim.Duration
	// UplinkBps caps the rate on each up/down link (bytes/second).
	UplinkBps float64

	up   []*sim.Link // per-leaf: leaf -> spine
	down []*sim.Link // per-leaf: spine -> leaf
}

// FatTreeConfig parameterizes NewFatTree. Zero fields take defaults
// matching the platform's FDR fabric (§V evaluation hardware).
type FatTreeConfig struct {
	Radix         int          // ports per leaf; default 16
	SwitchLatency sim.Duration // per-hop store-and-forward; default 100ns
	UplinkLatency sim.Duration // propagation per up/down link; default 200ns
	UplinkBps     float64      // up/down link rate; default 5.8e9 (FDR)
}

// NewFatTree builds a fat tree with enough leaves for ports fabric
// ports. The interior links live on eng so their occupancy windows
// share the simulation's virtual clock.
func NewFatTree(eng *sim.Engine, name string, ports int, cfg FatTreeConfig) *FatTree {
	if cfg.Radix <= 0 {
		cfg.Radix = 16
	}
	if cfg.SwitchLatency <= 0 {
		cfg.SwitchLatency = 100 * sim.Nanosecond
	}
	if cfg.UplinkLatency <= 0 {
		cfg.UplinkLatency = 200 * sim.Nanosecond
	}
	if cfg.UplinkBps <= 0 {
		cfg.UplinkBps = 5.8e9
	}
	leaves := (ports + cfg.Radix - 1) / cfg.Radix
	if leaves < 1 {
		leaves = 1
	}
	t := &FatTree{
		name:          name,
		Radix:         cfg.Radix,
		SwitchLatency: cfg.SwitchLatency,
		UplinkBps:     cfg.UplinkBps,
	}
	for i := 0; i < leaves; i++ {
		t.up = append(t.up, sim.NewLink(eng,
			fmt.Sprintf("%s/leaf%d-up", name, i), cfg.UplinkLatency, cfg.UplinkBps))
		t.down = append(t.down, sim.NewLink(eng,
			fmt.Sprintf("%s/leaf%d-down", name, i), cfg.UplinkLatency, cfg.UplinkBps))
	}
	return t
}

// Name implements Topology.
func (t *FatTree) Name() string { return t.name }

// Leaves reports the number of leaf switches.
func (t *FatTree) Leaves() int { return len(t.up) }

func (t *FatTree) leafOf(port int) int {
	l := port / t.Radix
	if l < 0 || l >= len(t.up) {
		panic(fmt.Sprintf("topo: port %d outside fabric %q (%d leaves of radix %d)",
			port, t.name, len(t.up), t.Radix))
	}
	return l
}

// Deliver implements Topology. Cross-leaf transfers reserve the source
// leaf's uplink starting when the packet clears the source egress plus
// one switch traversal, then the destination leaf's downlink starting
// when the last byte clears the spine — store-and-forward per hop, so
// each link's FIFO contention is accounted exactly once.
func (t *FatTree) Deliver(start sim.Time, srcPort, dstPort, n int, bps float64) sim.Time {
	sl, dl := t.leafOf(srcPort), t.leafOf(dstPort)
	if sl == dl {
		return start + t.SwitchLatency
	}
	rate := bps
	if t.UplinkBps < rate {
		rate = t.UplinkBps
	}
	at := t.up[sl].ReserveRateAt(start+t.SwitchLatency, n, rate)
	at = t.down[dl].ReserveRateAt(at+t.SwitchLatency, n, rate)
	return at + t.SwitchLatency
}

// CtrlDelay implements Topology: latency-only crossing, no occupancy.
func (t *FatTree) CtrlDelay(srcPort, dstPort int) sim.Duration {
	sl, dl := t.leafOf(srcPort), t.leafOf(dstPort)
	if sl == dl {
		return t.SwitchLatency
	}
	return 3*t.SwitchLatency + t.up[sl].Latency + t.down[dl].Latency
}

// InteriorBytes reports total bytes carried by interior links, for
// reports and tests that assert cross-leaf traffic actually used them.
func (t *FatTree) InteriorBytes() int64 {
	var b int64
	for _, l := range t.up {
		b += l.Bytes
	}
	for _, l := range t.down {
		b += l.Bytes
	}
	return b
}

// ByName constructs a named topology over ports fabric ports, the
// registry behind the scale harness's -topo flag and cluster
// construction. "flat" (or "") returns nil: the implicit single
// non-blocking switch the repository always modeled. "fattree" is the
// default two-level tree (radix 16); "fattree4" forces radix 4 so even
// 8-rank property runs cross leaves.
func ByName(eng *sim.Engine, name string, ports int) (Topology, error) {
	switch name {
	case "", "flat":
		return nil, nil
	case "fattree":
		return NewFatTree(eng, name, ports, FatTreeConfig{}), nil
	case "fattree4":
		return NewFatTree(eng, name, ports, FatTreeConfig{Radix: 4}), nil
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (want flat, fattree, fattree4)", name)
	}
}

// Names lists the registered topology names, for flag help and the
// property-test matrix.
func Names() []string { return []string{"flat", "fattree", "fattree4"} }
