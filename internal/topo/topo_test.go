package topo

import (
	"testing"

	"repro/internal/sim"
)

// tree4 builds a radix-4 tree over 16 ports (4 leaves) with round
// numbers: 100ns switch hops, 1 GB/s uplinks, 200ns uplink latency.
func tree4(t *testing.T) *FatTree {
	t.Helper()
	return NewFatTree(sim.NewEngine(), "t", 16, FatTreeConfig{
		Radix: 4, UplinkBps: 1e9,
	})
}

func TestFatTreeSameLeafIsOneHop(t *testing.T) {
	ft := tree4(t)
	// Ports 0 and 3 share leaf 0: one switch traversal, no uplink use.
	got := ft.Deliver(1000, 0, 3, 1<<20, 5.8e9)
	if want := sim.Time(1000) + ft.SwitchLatency; got != want {
		t.Errorf("same-leaf delivery at %v, want %v", got, want)
	}
	if ft.InteriorBytes() != 0 {
		t.Errorf("same-leaf transfer used interior links: %d bytes", ft.InteriorBytes())
	}
}

func TestFatTreeCrossLeafReservesUplinks(t *testing.T) {
	ft := tree4(t)
	const n = 1000 // 1000 B at 1 GB/s = 1µs serialization per link
	got := ft.Deliver(0, 0, 5, n, 5.8e9)
	// Store-and-forward: leaf hop + (uplink latency + serialization),
	// spine hop + (downlink latency + serialization), egress hop.
	want := sim.Time(3*ft.SwitchLatency) +
		sim.Time(2*(200*sim.Nanosecond+sim.Duration(1e3*float64(sim.Microsecond)/1e3)))
	if got != want {
		t.Errorf("cross-leaf delivery at %v, want %v", got, want)
	}
	if ft.InteriorBytes() != 2*n {
		t.Errorf("interior carried %d bytes, want %d (uplink + downlink)", ft.InteriorBytes(), 2*n)
	}
}

// TestFatTreeIncastSerializes: two flows landing on one leaf at the
// same instant must queue on that leaf's downlink — the second
// arrival is pushed out by the first flow's serialization time.
func TestFatTreeIncastSerializes(t *testing.T) {
	ft := tree4(t)
	const n = 1000
	first := ft.Deliver(0, 0, 4, n, 5.8e9)  // leaf 0 → leaf 1
	second := ft.Deliver(0, 8, 5, n, 5.8e9) // leaf 2 → leaf 1, same downlink
	if second <= first {
		t.Errorf("concurrent incast flows did not serialize: %v then %v", first, second)
	}
	// The gap must be at least one flow's downlink serialization.
	if gap := sim.Duration(second - first); gap < sim.Duration(float64(n)/1e9*float64(sim.Second)) {
		t.Errorf("incast gap %v smaller than one serialization time", gap)
	}
}

// TestFatTreeUplinkCapsRate: the interior must cap an endpoint rate
// faster than the uplink — the same transfer must take longer across
// leaves on a slow uplink than the endpoint rate alone would predict.
func TestFatTreeUplinkCapsRate(t *testing.T) {
	slow := NewFatTree(sim.NewEngine(), "slow", 16, FatTreeConfig{Radix: 4, UplinkBps: 1e9})
	fast := NewFatTree(sim.NewEngine(), "fast", 16, FatTreeConfig{Radix: 4, UplinkBps: 100e9})
	const n = 1 << 20
	if s, f := slow.Deliver(0, 0, 5, n, 5.8e9), fast.Deliver(0, 0, 5, n, 5.8e9); s <= f {
		t.Errorf("1 GB/s uplink (%v) not slower than 100 GB/s uplink (%v)", s, f)
	}
}

func TestFatTreeCtrlDelay(t *testing.T) {
	ft := tree4(t)
	if got, want := ft.CtrlDelay(0, 1), ft.SwitchLatency; got != want {
		t.Errorf("same-leaf ctrl delay %v, want %v", got, want)
	}
	cross := ft.CtrlDelay(0, 15)
	if want := 3*ft.SwitchLatency + 2*(200*sim.Nanosecond); cross != want {
		t.Errorf("cross-leaf ctrl delay %v, want %v", cross, want)
	}
	// Latency-only: control crossings never occupy data links.
	if ft.InteriorBytes() != 0 {
		t.Errorf("ctrl delay accounted %d interior bytes", ft.InteriorBytes())
	}
}

func TestByName(t *testing.T) {
	eng := sim.NewEngine()
	for _, name := range []string{"", "flat"} {
		tp, err := ByName(eng, name, 8)
		if err != nil || tp != nil {
			t.Errorf("ByName(%q) = %v, %v; want nil topology", name, tp, err)
		}
	}
	ft, err := ByName(eng, "fattree", 40)
	if err != nil {
		t.Fatal(err)
	}
	if l := ft.(*FatTree).Leaves(); l != 3 {
		t.Errorf("fattree over 40 ports has %d leaves, want 3 (radix 16)", l)
	}
	f4, err := ByName(eng, "fattree4", 8)
	if err != nil {
		t.Fatal(err)
	}
	if l := f4.(*FatTree).Leaves(); l != 2 {
		t.Errorf("fattree4 over 8 ports has %d leaves, want 2 (radix 4)", l)
	}
	if _, err := ByName(eng, "torus", 8); err == nil {
		t.Error("unknown topology name did not error")
	}
	// Every registered name must construct.
	for _, name := range Names() {
		if _, err := ByName(sim.NewEngine(), name, 8); err != nil {
			t.Errorf("registered name %q failed: %v", name, err)
		}
	}
}
