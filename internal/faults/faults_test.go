package faults

import (
	"testing"

	"repro/internal/sim"
)

func TestParseBlanketRate(t *testing.T) {
	p, err := Parse("seed=7,rate=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Errorf("seed = %d, want 7", p.Seed)
	}
	if p.IBError != 0.01 || p.Cmd != 0.01 || p.DMADelay != 0.01 {
		t.Errorf("blanket rate not applied: ib=%v cmd=%v dma=%v", p.IBError, p.Cmd, p.DMADelay)
	}
	if p.DMAAbort != 0 {
		t.Errorf("rate must not enable aborts, got %v", p.DMAAbort)
	}
	if p.MaxSendRetries != 8 || p.CmdDeadline != 10*sim.Millisecond {
		t.Errorf("defaults lost: retries=%d deadline=%v", p.MaxSendRetries, p.CmdDeadline)
	}
}

func TestParseLayerOverridesAndDurations(t *testing.T) {
	p, err := Parse("seed=0x2a,rate=0.1,ib=0.02,cmd=0.3,dma-abort=0.05,cmd-deadline=5ms,cmd-backoff=500ns,dma-delay-time=3us,max-retries=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("hex seed = %d, want 42", p.Seed)
	}
	if p.IBError != 0.02 || p.Cmd != 0.3 || p.DMADelay != 0.1 || p.DMAAbort != 0.05 {
		t.Errorf("overrides wrong: %+v", p)
	}
	if p.CmdDeadline != 5*sim.Millisecond || p.CmdBackoff != 500 || p.DMADelayTime != 3*sim.Microsecond {
		t.Errorf("durations wrong: deadline=%v backoff=%v delay=%v", p.CmdDeadline, p.CmdBackoff, p.DMADelayTime)
	}
	if p.MaxSendRetries != 2 {
		t.Errorf("max-retries = %d, want 2", p.MaxSendRetries)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"rate",
		"rate=1.5",
		"rate=-0.1",
		"bogus=1",
		"seed=x",
		"cmd-deadline=fast",
		"max-retries=-1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if i.Enabled() {
		t.Error("nil injector enabled")
	}
	if f, d := i.IBWriteFault(); f || d {
		t.Error("nil injector faulted a write")
	}
	if i.IBReadFault() || i.CmdFault() {
		t.Error("nil injector faulted a read/cmd")
	}
	if d, a := i.DMAFault(); d != 0 || a {
		t.Error("nil injector faulted a DMA")
	}
	if i.MaxRetries() != 0 || i.CmdDeadline() != 0 {
		t.Error("nil injector has nonzero recovery params")
	}
	if New(sim.NewEngine(), nil) != nil {
		t.Error("New(nil plan) must yield a nil injector")
	}
}

func TestZeroRatePlanNeverFaults(t *testing.T) {
	i := New(sim.NewEngine(), NewPlan(7))
	if i.Enabled() {
		t.Error("all-zero plan reports enabled")
	}
	for k := 0; k < 1000; k++ {
		if f, _ := i.IBWriteFault(); f {
			t.Fatal("zero-rate plan faulted a write")
		}
		if i.CmdFault() {
			t.Fatal("zero-rate plan faulted a cmd")
		}
		if d, a := i.DMAFault(); d != 0 || a {
			t.Fatal("zero-rate plan faulted a DMA")
		}
	}
	if i.IBFaults+i.CmdFaults+i.DMADelayed+i.DMAAborted != 0 {
		t.Error("zero-rate plan tallied injections")
	}
}

// drawAll records one decision of each kind as a bitmask.
func drawAll(i *Injector) uint8 {
	var bits uint8
	if f, d := i.IBWriteFault(); f {
		bits |= 1
		if d {
			bits |= 2
		}
	}
	if i.IBReadFault() {
		bits |= 4
	}
	if i.CmdFault() {
		bits |= 8
	}
	if d, a := i.DMAFault(); d != 0 {
		bits |= 16
	} else if a {
		bits |= 32
	}
	return bits
}

func activePlan(seed uint64) *Plan {
	p := NewPlan(seed)
	p.IBError = 0.3
	p.Cmd = 0.3
	p.DMADelay = 0.2
	p.DMAAbort = 0.1
	return p
}

func TestSameSeedSameDecisionStream(t *testing.T) {
	a := New(sim.NewEngine(), activePlan(7))
	b := New(sim.NewEngine(), activePlan(7))
	for k := 0; k < 2000; k++ {
		if da, db := drawAll(a), drawAll(b); da != db {
			t.Fatalf("decision %d diverged: %#x vs %#x", k, da, db)
		}
	}
	if a.IBFaults != b.IBFaults || a.CmdFaults != b.CmdFaults ||
		a.DMADelayed != b.DMADelayed || a.DMAAborted != b.DMAAborted {
		t.Error("tallies diverged for the same seed")
	}
	if a.IBFaults == 0 || a.CmdFaults == 0 || a.DMADelayed == 0 || a.DMAAborted == 0 {
		t.Errorf("expected injections at these rates: %+v", a)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(sim.NewEngine(), activePlan(7))
	b := New(sim.NewEngine(), activePlan(8))
	same := true
	for k := 0; k < 200; k++ {
		if drawAll(a) != drawAll(b) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical decision streams")
	}
}

// TestStreamsAreIndependent verifies that drawing from one layer's
// stream does not shift another's: the IB decision sequence must be the
// same whether or not CMD decisions are interleaved.
func TestStreamsAreIndependent(t *testing.T) {
	a := New(sim.NewEngine(), activePlan(7))
	b := New(sim.NewEngine(), activePlan(7))
	for k := 0; k < 500; k++ {
		fa, _ := a.IBWriteFault()
		b.CmdFault() // extra draw on an unrelated stream
		fb, _ := b.IBWriteFault()
		if fa != fb {
			t.Fatalf("IB decision %d shifted by interleaved CMD draws", k)
		}
	}
}

// TestRatesApproximatelyHonored checks the injected fraction lands near
// the configured probability (deterministic, so exact bounds are safe).
func TestRatesApproximatelyHonored(t *testing.T) {
	p := NewPlan(7)
	p.IBError = 0.25
	i := New(sim.NewEngine(), p)
	const draws = 10000
	for k := 0; k < draws; k++ {
		i.IBWriteFault()
	}
	frac := float64(i.IBFaults) / draws
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("injected fraction %v, want ≈0.25", frac)
	}
}
