// Package faults provides a deterministic, seed-driven fault plan for
// the simulation. An Injector makes per-event fault decisions by
// hashing (seed, layer stream, decision counter, virtual now) through a
// splitmix64-style mixer — no math/rand, no global state, no wall
// clock — so the same seed over the same schedule yields the same
// faults, and the decision stream for one layer is independent of the
// others.
//
// The injector is a pure decision oracle: it never sleeps, never
// schedules events, and never consults metrics state. All timing
// consequences of a fault (error CQE latency, DMA delay, retry
// backoff) are applied by the layer that asked, using the engine's
// virtual clock. A nil *Injector is fully inert: every decision method
// reports "no fault" and every accessor returns its zero/disabled
// value, so un-faulted builds pay a nil check and nothing else.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Plan is a parsed fault plan: per-layer rates plus the recovery
// parameters the transport and CMD layers use when a fault hits.
// Rates are probabilities in [0,1]; a zero rate disables that layer.
type Plan struct {
	Seed uint64

	// IBError is the probability that a posted RDMA write/read flips
	// its completion to an error status and forces the local QP into
	// the Error state. IBDelivered is the conditional probability that
	// an errored RDMA *write* still delivered its payload before the
	// QP failed (the ambiguity real RC endpoints face: a retry-
	// exhausted WR may or may not have landed remotely).
	IBError     float64
	IBDelivered float64

	// Cmd is the probability that one DCFA CMD-channel command fails
	// transiently and must be retried by the client.
	Cmd float64

	// DMADelay and DMAAbort govern the PCIe layer: a delayed DMA
	// completes late by DMADelayTime; an aborted one fails with a
	// typed error and copies nothing.
	DMADelay     float64
	DMAAbort     float64
	DMADelayTime sim.Duration

	// CMD-channel retry policy (client side).
	CmdBackoff    sim.Duration // initial backoff between retries
	CmdBackoffCap sim.Duration // exponential backoff ceiling
	CmdDeadline   sim.Duration // total budget before CmdTimeoutError

	// MaxSendRetries bounds transport-level replays of a single WR
	// before the owning request fails with a TransportError.
	MaxSendRetries int
}

// NewPlan returns a plan with the given seed, all rates zero, and the
// default recovery parameters filled in.
func NewPlan(seed uint64) *Plan {
	return &Plan{
		Seed:           seed,
		IBDelivered:    0.5,
		DMADelayTime:   20 * sim.Microsecond,
		CmdBackoff:     2 * sim.Microsecond,
		CmdBackoffCap:  64 * sim.Microsecond,
		CmdDeadline:    10 * sim.Millisecond,
		MaxSendRetries: 8,
	}
}

// Parse builds a Plan from a comma-separated spec like
//
//	seed=7,rate=0.01
//	seed=7,ib=0.02,cmd=0.05,dma=0.01,dma-abort=0.005
//
// "rate" is a blanket knob that sets ib, cmd, and dma-delay together;
// layer-specific keys override it. Recovery parameters accept Go
// duration syntax (cmd-deadline=5ms). An empty spec is an error; use a
// nil *Plan (or no -faults flag) for "no faults".
func Parse(spec string) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty spec")
	}
	p := NewPlan(1)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %v", val, err)
			}
			p.Seed = n
		case "rate":
			r, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			p.IBError, p.Cmd, p.DMADelay = r, r, r
		case "ib":
			r, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			p.IBError = r
		case "ib-delivered":
			r, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			p.IBDelivered = r
		case "cmd":
			r, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			p.Cmd = r
		case "dma":
			r, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			p.DMADelay = r
		case "dma-abort":
			r, err := parseRate(key, val)
			if err != nil {
				return nil, err
			}
			p.DMAAbort = r
		case "cmd-deadline":
			d, err := parseDur(key, val)
			if err != nil {
				return nil, err
			}
			p.CmdDeadline = d
		case "cmd-backoff":
			d, err := parseDur(key, val)
			if err != nil {
				return nil, err
			}
			p.CmdBackoff = d
		case "dma-delay-time":
			d, err := parseDur(key, val)
			if err != nil {
				return nil, err
			}
			p.DMADelayTime = d
		case "max-retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: max-retries %q", val)
			}
			p.MaxSendRetries = n
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return p, nil
}

func parseRate(key, val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r < 0 || r > 1 {
		return 0, fmt.Errorf("faults: %s=%q is not a rate in [0,1]", key, val)
	}
	return r, nil
}

func parseDur(key, val string) (sim.Duration, error) {
	// sim.Duration is virtual nanoseconds; accept Go duration syntax
	// via a tiny suffix table to avoid importing time semantics.
	mult := sim.Duration(1)
	num := val
	for _, s := range []struct {
		suffix string
		mult   sim.Duration
	}{
		{"ms", sim.Millisecond},
		{"us", sim.Microsecond},
		{"µs", sim.Microsecond},
		{"ns", 1},
		{"s", sim.Second},
	} {
		if strings.HasSuffix(val, s.suffix) {
			mult = s.mult
			num = strings.TrimSuffix(val, s.suffix)
			break
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("faults: %s=%q is not a duration", key, val)
	}
	return sim.Duration(f * float64(mult)), nil
}

// Per-layer stream salts. Each decision stream hashes with its own
// salt so adding decisions to one layer never shifts another layer's
// sequence.
const (
	streamIB  = 0x1b
	streamCmd = 0xcd
	streamDMA = 0xd3
	streamAux = 0xa0
)

// Injector makes fault decisions for one engine run. Decision methods
// are nil-receiver-safe (no fault); counters record what was injected
// so tests can cross-check recovery metrics against injections.
type Injector struct {
	eng  *sim.Engine
	plan *Plan

	// Per-stream decision counters (deterministic state, not telemetry).
	nIB, nCmd, nDMA uint64

	// Injection tallies, exported for test assertions. These count
	// decisions taken, so e.g. core's faults.retries counter must end
	// equal to the number of recovered IBFaults.
	IBFaults   int64 // RDMA WRs flipped to error
	IBDropped  int64 // errored writes whose payload was NOT delivered
	CmdFaults  int64 // CMD commands transiently rejected
	DMADelayed int64 // DMA transfers delayed
	DMAAborted int64 // DMA transfers aborted
}

// New builds an injector for the plan. A nil plan yields a nil
// injector (fully inert).
func New(eng *sim.Engine, plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	return &Injector{eng: eng, plan: plan}
}

// splitmix64 finalizer over a decision's identity.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll draws a uniform float in [0,1) for stream decision n at the
// current virtual time.
func (i *Injector) roll(stream, n uint64) float64 {
	z := mix(i.plan.Seed ^ mix(stream))
	z = mix(z + n*0x9E3779B97F4A7C15 + uint64(i.eng.Now())*0x2545F4914F6CDD1D)
	return float64(z>>11) / (1 << 53)
}

// Enabled reports whether any layer has a nonzero rate. Nil-safe.
func (i *Injector) Enabled() bool {
	if i == nil {
		return false
	}
	p := i.plan
	return p.IBError > 0 || p.Cmd > 0 || p.DMADelay > 0 || p.DMAAbort > 0
}

// IBWriteFault decides the fate of one posted RDMA write: fault=true
// flips its completion to an error and errors the QP; delivered
// reports whether the payload still landed before the failure.
func (i *Injector) IBWriteFault() (fault, delivered bool) {
	if i == nil || i.plan.IBError <= 0 {
		return false, false
	}
	n := i.nIB
	i.nIB++
	if i.roll(streamIB, n) >= i.plan.IBError {
		return false, false
	}
	i.IBFaults++
	delivered = i.roll(streamAux, n) < i.plan.IBDelivered
	if !delivered {
		i.IBDropped++
	}
	return true, delivered
}

// IBReadFault decides whether one posted RDMA read fails (no data is
// ever written on a failed read).
func (i *Injector) IBReadFault() bool {
	if i == nil || i.plan.IBError <= 0 {
		return false
	}
	n := i.nIB
	i.nIB++
	if i.roll(streamIB, n) >= i.plan.IBError {
		return false
	}
	i.IBFaults++
	i.IBDropped++
	return true
}

// CmdFault decides whether one CMD-channel command is transiently
// rejected by the host daemon.
func (i *Injector) CmdFault() bool {
	if i == nil || i.plan.Cmd <= 0 {
		return false
	}
	n := i.nCmd
	i.nCmd++
	if i.roll(streamCmd, n) >= i.plan.Cmd {
		return false
	}
	i.CmdFaults++
	return true
}

// DMAFault decides the fate of one DMA transfer: a nonzero delay adds
// to its completion time; abort=true fails it with no bytes copied.
func (i *Injector) DMAFault() (delay sim.Duration, abort bool) {
	if i == nil || (i.plan.DMADelay <= 0 && i.plan.DMAAbort <= 0) {
		return 0, false
	}
	n := i.nDMA
	i.nDMA++
	r := i.roll(streamDMA, n)
	if r < i.plan.DMAAbort {
		i.DMAAborted++
		return 0, true
	}
	if r < i.plan.DMAAbort+i.plan.DMADelay {
		i.DMADelayed++
		return i.plan.DMADelayTime, false
	}
	return 0, false
}

// MaxRetries is the transport replay budget per WR. Nil-safe.
func (i *Injector) MaxRetries() int {
	if i == nil {
		return 0
	}
	return i.plan.MaxSendRetries
}

// CmdBackoffBase returns the initial and ceiling backoff for CMD
// retries. Nil-safe.
func (i *Injector) CmdBackoffBase() (base, cap sim.Duration) {
	if i == nil {
		return 0, 0
	}
	return i.plan.CmdBackoff, i.plan.CmdBackoffCap
}

// CmdDeadline is the total virtual-time budget for one CMD call
// including retries. Nil-safe.
func (i *Injector) CmdDeadline() sim.Duration {
	if i == nil {
		return 0
	}
	return i.plan.CmdDeadline
}
