package metrics

// Schema validation for the Chrome trace-event export: every document
// the exporter produces must parse, use only known phase types, keep
// timestamps monotonic per span track, pair up B/E and s/f events, and
// declare every pid it references. The causal profiler's flow events
// ride on this exporter, so the validator covers them too.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// schemaEvent mirrors the full trace-event shape for validation.
type schemaEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   string            `json:"id"`
	BP   string            `json:"bp"`
	Args map[string]string `json:"args"`
}

// validateChromeTrace checks data against the trace-event schema rules
// the exporter promises.
func validateChromeTrace(t *testing.T, data []byte) []schemaEvent {
	t.Helper()
	var doc struct {
		TraceEvents     []schemaEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// Phase inventory and pid declarations.
	known := map[string]bool{"M": true, "X": true, "i": true, "s": true, "f": true, "B": true, "E": true}
	declared := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if !known[e.Ph] {
			t.Errorf("unknown phase %q on event %q", e.Ph, e.Name)
		}
		if e.Ph == "M" && e.Name == "process_name" {
			if e.Args["name"] == "" {
				t.Errorf("process_name metadata for pid %d has no name", e.Pid)
			}
			declared[e.Pid] = true
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" && !declared[e.Pid] {
			t.Errorf("event %q (ph=%s) references undeclared pid %d", e.Name, e.Ph, e.Pid)
		}
	}

	// Span events: non-negative durations, per-(pid,tid) monotone ts.
	type track struct{ pid, tid int }
	lastTS := map[track]float64{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "i", "B", "E":
			if e.Ph == "X" && e.Dur < 0 {
				t.Errorf("span %q has negative duration %v", e.Name, e.Dur)
			}
			tr := track{e.Pid, e.Tid}
			if prev, ok := lastTS[tr]; ok && e.Ts < prev {
				t.Errorf("track pid=%d tid=%d: ts went backwards (%v after %v) at %q",
					e.Pid, e.Tid, e.Ts, prev, e.Name)
			}
			lastTS[tr] = e.Ts
		}
	}

	// B/E events must pair up per track, never going negative.
	depth := map[track]int{}
	for _, e := range doc.TraceEvents {
		tr := track{e.Pid, e.Tid}
		switch e.Ph {
		case "B":
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				t.Errorf("track pid=%d tid=%d: E without matching B at %q", e.Pid, e.Tid, e.Name)
			}
		}
	}
	for tr, d := range depth {
		if d != 0 {
			t.Errorf("track pid=%d tid=%d: %d unclosed B events", tr.pid, tr.tid, d)
		}
	}

	// Flow binding: every "s" start has exactly one "f" finish with the
	// same id, bp="e", and a finish time no earlier than the start.
	starts := map[string]schemaEvent{}
	finishes := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			if e.ID == "" {
				t.Errorf("flow start %q has no id", e.Name)
			}
			if _, dup := starts[e.ID]; dup {
				t.Errorf("duplicate flow start id %s", e.ID)
			}
			starts[e.ID] = e
		case "f":
			if e.BP != "e" {
				t.Errorf("flow finish %q (id %s) lacks bp=\"e\" binding", e.Name, e.ID)
			}
			finishes[e.ID]++
		}
	}
	for id := range starts {
		if finishes[id] != 1 {
			t.Errorf("flow id %s: %d finishes, want exactly 1", id, finishes[id])
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "f" {
			continue
		}
		s, ok := starts[e.ID]
		if !ok {
			t.Errorf("flow finish id %s has no start", e.ID)
			continue
		}
		if e.Ts < s.Ts {
			t.Errorf("flow id %s finishes at %v before its start at %v", e.ID, e.Ts, s.Ts)
		}
	}
	return doc.TraceEvents
}

// schemaRegistry builds a registry with nested spans on two tracks plus
// one span left open (exported as an instant event).
func schemaRegistry() *Registry {
	reg := New()
	a := reg.Begin(100*sim.Microsecond, "rank0", "send").SetKind("eager")
	a.Child(120*sim.Microsecond, "rdma-write").End(180 * sim.Microsecond)
	a.End(200 * sim.Microsecond)
	b := reg.Begin(150*sim.Microsecond, "rank1", "recv").SetKind("eager")
	b.End(210 * sim.Microsecond)
	reg.Begin(220*sim.Microsecond, "rank1", "stuck") // never ended
	return reg
}

// TestChromeTraceSchema validates a plain span export.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := schemaRegistry().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := validateChromeTrace(t, buf.Bytes())
	x, inst := 0, 0
	for _, e := range evs {
		switch e.Ph {
		case "X":
			x++
		case "i":
			inst++
		}
	}
	if x != 3 || inst != 1 {
		t.Errorf("got %d complete + %d instant events, want 3 + 1", x, inst)
	}
}

// TestChromeTraceFlowEvents validates flow arrows: cross-track binding,
// track creation for span-less endpoint actors, and schema conformance.
func TestChromeTraceFlowEvents(t *testing.T) {
	reg := schemaRegistry()
	flows := []Flow{
		{ID: 1, Name: "msg seq=0", Cat: "message",
			FromActor: "rank0", FromTS: int64(110 * sim.Microsecond),
			ToActor: "rank1", ToTS: int64(205 * sim.Microsecond)},
		{ID: 2, Name: "critical:wait", Cat: "critical-path",
			FromActor: "rank1", FromTS: int64(150 * sim.Microsecond),
			ToActor: "hca9", ToTS: int64(160 * sim.Microsecond)},
	}
	var buf bytes.Buffer
	if err := reg.WriteChromeTraceWithFlows(&buf, flows); err != nil {
		t.Fatal(err)
	}
	evs := validateChromeTrace(t, buf.Bytes())

	pids := map[string]int{}
	for _, e := range evs {
		if e.Ph == "M" && e.Name == "process_name" {
			pids[e.Args["name"]] = e.Pid
		}
	}
	if pids["hca9"] == 0 {
		t.Error("flow endpoint hca9 has no track despite having no spans")
	}
	var s1, f1 *schemaEvent
	for i := range evs {
		e := &evs[i]
		if e.ID == "1" && e.Ph == "s" {
			s1 = e
		}
		if e.ID == "1" && e.Ph == "f" {
			f1 = e
		}
	}
	if s1 == nil || f1 == nil {
		t.Fatal("flow id 1 missing start or finish")
	}
	if s1.Pid != pids["rank0"] || f1.Pid != pids["rank1"] {
		t.Errorf("flow 1 binds pids %d→%d, want %d→%d", s1.Pid, f1.Pid, pids["rank0"], pids["rank1"])
	}

	// Export is byte-deterministic.
	var again bytes.Buffer
	if err := reg.WriteChromeTraceWithFlows(&again, flows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("flow export not byte-identical across writes")
	}
}
