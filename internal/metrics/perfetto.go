package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// The Chrome trace-event format (loadable by Perfetto and
// chrome://tracing): a JSON object with a traceEvents array. Complete
// spans become "ph":"X" duration events; spans never ended become
// "ph":"i" instant events so they stay visible. Each actor (rank,
// daemon, HCA, PCIe complex) is its own process track, named via
// "ph":"M" metadata events. Timestamps are virtual microseconds.
//
// Flow events ("ph":"s" start / "ph":"f" finish with bp:"e") draw
// arrows between tracks — the causal profiler uses them to render
// send→recv message edges and the critical path in the trace viewer.

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Flow is one arrow between two actor tracks: a "ph":"s" event at
// (FromActor, FromTS) bound to a "ph":"f" event at (ToActor, ToTS).
// IDs must be unique per flow within one trace.
type Flow struct {
	ID   uint64
	Name string
	Cat  string

	FromActor string
	FromTS    int64 // virtual nanoseconds
	ToActor   string
	ToTS      int64 // virtual nanoseconds
}

// WriteChromeTrace exports every span as Chrome trace-event JSON.
// Output is deterministic: actors are assigned pids in sorted order and
// events are emitted in span-begin order. (encoding/json writes map
// keys sorted, so the args objects are stable too.) A nil registry
// writes an empty trace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	return r.WriteChromeTraceWithFlows(w, nil)
}

// WriteChromeTraceWithFlows exports the span trace plus flow arrows.
// Flow endpoints referencing actors with no spans still get a track.
func (r *Registry) WriteChromeTraceWithFlows(w io.Writer, flows []Flow) error {
	tr := chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ns"}
	spans := r.Spans()

	// Assign one pid per actor, sorted for stability. Flow endpoints
	// count as actors so their tracks exist even without spans.
	actorSet := make(map[string]bool)
	for _, s := range spans {
		actorSet[s.Actor] = true
	}
	for _, f := range flows {
		actorSet[f.FromActor] = true
		actorSet[f.ToActor] = true
	}
	actors := make([]string, 0, len(actorSet))
	for a := range actorSet {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	pids := make(map[string]int, len(actors))
	for i, a := range actors {
		pid := i + 1
		pids[a] = pid
		tr.TraceEvents = append(tr.TraceEvents,
			traceEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]string{"name": a}},
			traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]string{"sort_index": strconv.Itoa(pid)}},
		)
	}

	usec := func(ns int64) float64 { return float64(ns) / 1000 }
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+2)
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		args["span_id"] = strconv.FormatUint(s.ID, 10)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatUint(s.Parent, 10)
		}
		ev := traceEvent{
			Name: s.Name,
			Cat:  s.Kind,
			Ts:   usec(int64(s.Start)),
			Pid:  pids[s.Actor],
			Tid:  1,
			Args: args,
		}
		if s.Ended {
			ev.Ph = "X"
			ev.Dur = usec(int64(s.Finish - s.Start))
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}

	for _, f := range flows {
		id := strconv.FormatUint(f.ID, 10)
		tr.TraceEvents = append(tr.TraceEvents,
			traceEvent{Name: f.Name, Cat: f.Cat, Ph: "s", Ts: usec(f.FromTS),
				Pid: pids[f.FromActor], Tid: 1, ID: id},
			traceEvent{Name: f.Name, Cat: f.Cat, Ph: "f", BP: "e", Ts: usec(f.ToTS),
				Pid: pids[f.ToActor], Tid: 1, ID: id},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
