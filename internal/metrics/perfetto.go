package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// The Chrome trace-event format (loadable by Perfetto and
// chrome://tracing): a JSON object with a traceEvents array. Complete
// spans become "ph":"X" duration events; spans never ended become
// "ph":"i" instant events so they stay visible. Each actor (rank,
// daemon, HCA, PCIe complex) is its own process track, named via
// "ph":"M" metadata events. Timestamps are virtual microseconds.

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every span as Chrome trace-event JSON.
// Output is deterministic: actors are assigned pids in sorted order and
// events are emitted in span-begin order. (encoding/json writes map
// keys sorted, so the args objects are stable too.) A nil registry
// writes an empty trace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ns"}
	spans := r.Spans()

	// Assign one pid per actor, sorted for stability.
	actorSet := make(map[string]bool)
	for _, s := range spans {
		actorSet[s.Actor] = true
	}
	actors := make([]string, 0, len(actorSet))
	for a := range actorSet {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	pids := make(map[string]int, len(actors))
	for i, a := range actors {
		pid := i + 1
		pids[a] = pid
		tr.TraceEvents = append(tr.TraceEvents,
			traceEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]string{"name": a}},
			traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]string{"sort_index": strconv.Itoa(pid)}},
		)
	}

	usec := func(ns int64) float64 { return float64(ns) / 1000 }
	for _, s := range spans {
		args := make(map[string]string, len(s.Attrs)+2)
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		args["span_id"] = strconv.FormatUint(s.ID, 10)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatUint(s.Parent, 10)
		}
		ev := traceEvent{
			Name: s.Name,
			Cat:  s.Kind,
			Ts:   usec(int64(s.Start)),
			Pid:  pids[s.Actor],
			Tid:  1,
			Args: args,
		}
		if s.Ended {
			ev.Ph = "X"
			ev.Dur = usec(int64(s.Finish - s.Start))
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
