package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("rank0", "proto.eager")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter %d", c.Value())
	}
	if r.Counter("rank0", "proto.eager") != c {
		t.Fatal("counter not memoized")
	}

	g := r.Gauge("rank0", "mrcache.pinned-bytes")
	g.Add(100)
	g.Add(200)
	g.Add(-250)
	if g.Value() != 50 || g.Max() != 300 {
		t.Fatalf("gauge %d max %d", g.Value(), g.Max())
	}
	g.Set(10)
	if g.Value() != 10 || g.Max() != 300 {
		t.Fatal("Set must not lower the high-water mark")
	}

	h := r.Histogram("rank0", "send.latency", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Min() != 5 || h.Max() != 5000 || h.Sum() != 5126 {
		t.Fatalf("hist stats: n=%d min=%d max=%d sum=%d", h.Count(), h.Min(), h.Max(), h.Sum())
	}
	_, counts := h.Buckets()
	want := []int64{2, 2, 0, 1} // <=10, <=100, <=1000, +Inf
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "n")
	c.Inc()
	c.Add(5)
	if c != nil || c.Value() != 0 {
		t.Fatal("nil counter")
	}
	g := r.Gauge("a", "n")
	g.Add(1)
	g.Set(2)
	if g != nil || g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge")
	}
	h := r.Histogram("a", "n", TimeBuckets)
	h.Observe(1)
	h.ObserveDuration(2)
	b, cs := h.Buckets()
	if h != nil || h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || b != nil || cs != nil {
		t.Fatal("nil histogram")
	}
	s := r.Begin(0, "a", "span")
	if s != nil {
		t.Fatal("nil span")
	}
	s.SetKind("k").SetKindOnce("k").Attr("a", "b").AttrInt("n", 1)
	c2 := s.Child(1, "child")
	if c2 != nil {
		t.Fatal("nil child")
	}
	s.End(2)
	if s.Duration() != 0 {
		t.Fatal("nil duration")
	}
	if r.Spans() != nil || r.OpenSpans() != 0 {
		t.Fatal("nil registry spans")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Spans != 0 {
		t.Fatal("nil snapshot")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r.WriteSummary(&buf)
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := New()
	root := r.Begin(10*sim.Microsecond, "rank0", "send")
	root.SetKindOnce("sender-rzv")
	root.SetKindOnce("eager") // must not overwrite
	child := root.Child(12*sim.Microsecond, "rdma-read")
	child.AttrInt("bytes", 65536)
	if child.Parent != root.ID || child.Actor != "rank0" {
		t.Fatalf("child linkage: parent=%d actor=%q", child.Parent, child.Actor)
	}
	if r.OpenSpans() != 2 {
		t.Fatalf("open %d", r.OpenSpans())
	}
	child.End(20 * sim.Microsecond)
	child.End(99 * sim.Microsecond) // idempotent
	if child.Duration() != 8*sim.Microsecond {
		t.Fatalf("duration %v", child.Duration())
	}
	root.End(25 * sim.Microsecond)
	if r.OpenSpans() != 0 {
		t.Fatalf("open %d", r.OpenSpans())
	}
	if root.Kind != "sender-rzv" {
		t.Fatalf("kind %q", root.Kind)
	}
	spans := r.Spans()
	if len(spans) != 2 || spans[0] != root || spans[1] != child {
		t.Fatal("span order")
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic")
		}
	}()
	New().Histogram("a", "bad", []int64{10, 10})
}

func TestSummaryAndJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		// Insert in non-sorted order; reports must come out sorted.
		r.Counter("rank1", "proto.eager").Add(4)
		r.Counter("rank0", "mrcache.misses").Add(1)
		r.Counter("rank0", "mrcache.hits").Add(3)
		r.Gauge("hca0", "qp.depth").Set(7)
		r.Histogram("rank0", "send.latency", TimeBuckets).ObserveDuration(3 * sim.Microsecond)
		s := r.Begin(0, "rank0", "op")
		s.End(1)
		r.Begin(2, "rank1", "open-op")
		return r
	}
	var a, b bytes.Buffer
	build().WriteSummary(&a)
	build().WriteSummary(&b)
	if a.String() != b.String() {
		t.Fatalf("summary not bit-identical:\n%s\n---\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"== metrics ==",
		"mrcache.hits",
		"mrcache.hit-rate",
		"75.0% (3/4)",
		"spans: 2 (1 open)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Sorted order: rank0 counters before rank1.
	if strings.Index(out, "mrcache.hits") > strings.Index(out, "proto.eager") {
		t.Fatalf("counters not sorted:\n%s", out)
	}

	var j1, j2 bytes.Buffer
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatal("JSON not bit-identical")
	}
	var snap Snapshot
	if err := json.Unmarshal(j1.Bytes(), &snap); err != nil {
		t.Fatalf("JSON invalid: %v", err)
	}
	if len(snap.Counters) != 3 || snap.Spans != 2 || snap.OpenSpans != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Counters[0].Actor != "rank0" || snap.Counters[2].Actor != "rank1" {
		t.Fatalf("snapshot order %+v", snap.Counters)
	}
}

func TestTimeBuckets(t *testing.T) {
	if len(TimeBuckets) != 20 {
		t.Fatalf("len %d", len(TimeBuckets))
	}
	if TimeBuckets[0] != int64(sim.Microsecond) {
		t.Fatalf("first %d", TimeBuckets[0])
	}
	for i := 1; i < len(TimeBuckets); i++ {
		if TimeBuckets[i] != 2*TimeBuckets[i-1] {
			t.Fatalf("not doubling at %d", i)
		}
	}
}

// The bench guard: un-instrumented hot paths hold nil handles, and
// recording through them must stay a branch — no allocation, no map
// work. A regression here means every send/recv in a metrics-disabled
// run pays real overhead.
func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilSpan(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.Begin(sim.Time(i), "a", "op")
		s.SetKindOnce("k")
		s.End(sim.Time(i + 1))
	}
}

func BenchmarkLiveCounterAdd(b *testing.B) {
	c := New().Counter("a", "n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
