package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Actor string `json:"actor"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Actor string `json:"actor"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistSnap is one histogram in a snapshot.
type HistSnap struct {
	Actor   string  `json:"actor"`
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Mean    int64   `json:"mean"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot is a sorted, export-ready copy of every instrument.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
	Spans      int           `json:"spans"`
	OpenSpans  int           `json:"openSpans"`
}

// Snapshot copies every instrument in sorted (actor, name) order. A nil
// registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, k := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnap{k.Actor, k.Name, r.counters[k].Value()})
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		s.Gauges = append(s.Gauges, GaugeSnap{k.Actor, k.Name, g.Value(), g.Max()})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		bounds, counts := h.Buckets()
		s.Histograms = append(s.Histograms, HistSnap{
			Actor: k.Actor, Name: k.Name,
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
			Bounds: bounds, Buckets: counts,
		})
	}
	s.Spans = len(r.spans)
	s.OpenSpans = r.OpenSpans()
	return s
}

// WriteJSON emits the snapshot as indented JSON (deterministic: sorted
// slices, no maps).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// isDuration reports whether a histogram's observations are virtual
// nanoseconds (by naming convention) and should be printed as times.
func isDuration(name string) bool {
	return strings.Contains(name, "latenc") || strings.Contains(name, "rtt")
}

// WriteSummary prints a human-readable report in sorted order, with
// derived MR-cache hit rates. Output is bit-identical across runs of
// the same workload. A nil registry prints a header only.
func (r *Registry) WriteSummary(w io.Writer) {
	s := r.Snapshot()
	fmt.Fprintln(w, "== metrics ==")
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "  %-14s %-36s %d\n", c.Actor, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "  %-14s %-36s %d (max %d)\n", g.Actor, g.Name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, h := range s.Histograms {
			if h.Count == 0 {
				fmt.Fprintf(w, "  %-14s %-36s empty\n", h.Actor, h.Name)
				continue
			}
			if isDuration(h.Name) {
				fmt.Fprintf(w, "  %-14s %-36s count=%d min=%v mean=%v max=%v\n",
					h.Actor, h.Name, h.Count, sim.Time(h.Min), sim.Time(h.Mean), sim.Time(h.Max))
			} else {
				fmt.Fprintf(w, "  %-14s %-36s count=%d min=%d mean=%d max=%d\n",
					h.Actor, h.Name, h.Count, h.Min, h.Mean, h.Max)
			}
		}
	}
	// Derived: MR-cache hit rate per actor that recorded hits or misses.
	derived := false
	for _, c := range s.Counters {
		if c.Name != "mrcache.hits" {
			continue
		}
		var misses int64
		for _, m := range s.Counters {
			if m.Actor == c.Actor && m.Name == "mrcache.misses" {
				misses = m.Value
				break
			}
		}
		if c.Value+misses == 0 {
			continue
		}
		if !derived {
			fmt.Fprintln(w, "derived:")
			derived = true
		}
		rate := float64(c.Value) / float64(c.Value+misses) * 100
		fmt.Fprintf(w, "  %-14s %-36s %.1f%% (%d/%d)\n",
			c.Actor, "mrcache.hit-rate", rate, c.Value, c.Value+misses)
	}
	fmt.Fprintf(w, "spans: %d (%d open)\n", s.Spans, s.OpenSpans)
}
