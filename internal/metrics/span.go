package metrics

import (
	"strconv"

	"repro/internal/sim"
)

// Attr is one span annotation, kept as an ordered list (never a map) so
// exports are reproducible.
type Attr struct {
	Key string
	Val string
}

// Span is one timed interval on an actor's track: a message lifecycle
// (send/recv from post to completion), a delegated command round trip,
// a wire transfer, a DMA copy. Child spans link to their parent by ID
// and share the parent's track, which is how the Perfetto export
// renders the RTS→RDMA→DONE nesting of one rendezvous.
type Span struct {
	ID     uint64
	Parent uint64 // 0 = root
	Actor  string
	Name   string
	// Kind classifies the resolved protocol (eager, sender-rzv,
	// receiver-rzv, simultaneous-rzv, self) and maps to the Perfetto
	// category.
	Kind   string
	Start  sim.Time
	Finish sim.Time
	Ended  bool
	Attrs  []Attr

	reg *Registry
}

// Begin opens a root span on actor's track at virtual time t. A nil
// registry returns a nil span, whose methods are all no-ops.
func (r *Registry) Begin(t sim.Time, actor, name string) *Span {
	if r == nil {
		return nil
	}
	r.nextSpan++
	s := &Span{ID: r.nextSpan, Actor: actor, Name: name, Start: t, reg: r}
	r.spans = append(r.spans, s)
	return s
}

// Child opens a sub-span on the same track, linked to s. Safe on nil.
func (s *Span) Child(t sim.Time, name string) *Span {
	if s == nil {
		return nil
	}
	c := s.reg.Begin(t, s.Actor, name)
	c.Parent = s.ID
	return c
}

// SetKind classifies the span, overwriting any earlier classification
// (protocol mis-predictions resolve to a different kind than first
// assumed). Safe on nil.
func (s *Span) SetKind(k string) *Span {
	if s != nil {
		s.Kind = k
	}
	return s
}

// SetKindOnce classifies the span only if it has no kind yet. Safe on
// nil.
func (s *Span) SetKindOnce(k string) *Span {
	if s != nil && s.Kind == "" {
		s.Kind = k
	}
	return s
}

// Attr appends one annotation. Safe on nil.
func (s *Span) Attr(key, val string) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{key, val})
	}
	return s
}

// AttrInt appends one integer annotation. Safe on nil.
func (s *Span) AttrInt(key string, v int64) *Span {
	return s.Attr(key, strconv.FormatInt(v, 10))
}

// End closes the span at virtual time t; later calls are no-ops. Safe
// on nil.
func (s *Span) End(t sim.Time) {
	if s == nil || s.Ended {
		return
	}
	s.Finish = t
	s.Ended = true
}

// Duration returns Finish-Start for an ended span (0 otherwise).
func (s *Span) Duration() sim.Duration {
	if s == nil || !s.Ended {
		return 0
	}
	return s.Finish - s.Start
}

// Spans returns every recorded span in begin order (deterministic: the
// engine dispatches events serially).
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// OpenSpans counts spans that were begun but never ended — after a
// clean run it must be zero.
func (r *Registry) OpenSpans() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, s := range r.spans {
		if !s.Ended {
			n++
		}
	}
	return n
}
