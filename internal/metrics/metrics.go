// Package metrics is the deterministic, virtual-time-only telemetry
// layer of the simulated DCFA-MPI stack: counters, gauges and
// fixed-bucket histograms keyed by (actor, name), plus message-lifecycle
// spans with parent links (span.go) and exporters (report.go,
// perfetto.go).
//
// Determinism rules, enforced by construction:
//
//   - every recorded value derives from virtual time (sim.Time) or from
//     protocol state — never from the wall clock;
//   - instrumentation is passive: recording never sleeps, never blocks
//     and never schedules engine events, so a metrics-enabled run
//     dispatches the exact same event sequence (same Engine.Fingerprint)
//     as a disabled one;
//   - all reporting iterates keys in sorted order, so two runs of the
//     same workload produce bit-identical reports;
//   - every handle and every method is nil-safe: a nil *Registry hands
//     out nil handles whose operations are no-ops, so un-instrumented
//     hot paths pay only a nil check.
package metrics

import (
	"sort"

	"repro/internal/sim"
)

// Key identifies one instrument: Actor is the emitting track (rank0,
// hca1, dcfa/node0, pcie/node0), Name the measurement.
type Key struct {
	Actor string
	Name  string
}

// Registry owns every instrument and span of one telemetry session. It
// may span multiple worlds/engines; values aggregate.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
	spans    []*Span
	nextSpan uint64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Counter returns (creating on first use) the counter (actor, name).
// A nil registry returns a nil handle, whose methods are no-ops.
func (r *Registry) Counter(actor, name string) *Counter {
	if r == nil {
		return nil
	}
	k := Key{actor, name}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge (actor, name).
func (r *Registry) Gauge(actor, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key{actor, name}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram (actor, name)
// with the given fixed bucket upper bounds (ascending; an implicit
// +Inf bucket is appended). Bounds are read only on creation.
func (r *Registry) Histogram(actor, name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	k := Key{actor, name}
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// Counter is a monotonically-adjusted int64 (protocol counts, bytes).
type Counter struct{ v int64 }

// Add adds n. Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level (pinned bytes, queue depth) that also
// tracks its high-water mark.
type Gauge struct{ v, max int64 }

// Add moves the level by d. Safe on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v += d
	if g.v > g.max {
		g.max = g.v
	}
}

// Set forces the level. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-bucket distribution. Bucket i counts
// observations v <= bounds[i] (and > bounds[i-1]); the last bucket
// counts overflows.
type Histogram struct {
	bounds []int64
	counts []int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := make([]int64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
}

// ObserveDuration records a virtual-time span.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(int64(d)) }

// Count returns how many values were observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation (0 when empty or nil).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the integer mean (0 when empty or nil).
func (h *Histogram) Mean() int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Buckets returns (bound, count) pairs including the +Inf overflow
// bucket, for exporters and tests.
func (h *Histogram) Buckets() ([]int64, []int64) {
	if h == nil {
		return nil, nil
	}
	return h.bounds, h.counts
}

// TimeBuckets are the default latency bounds: powers of two from 1 µs
// to ~0.5 s of virtual time, in nanoseconds.
var TimeBuckets = func() []int64 {
	b := make([]int64, 0, 20)
	for us := int64(1); us <= 1<<19; us <<= 1 {
		b = append(b, us*1000)
	}
	return b
}()

// sortedKeys returns the map's keys ordered by (Actor, Name).
func sortedKeys[V any](m map[Key]V) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Actor != keys[j].Actor {
			return keys[i].Actor < keys[j].Actor
		}
		return keys[i].Name < keys[j].Name
	})
	return keys
}
