package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// decoded mirrors traceEvent for re-parsing exporter output in tests.
type decoded struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

func parseTrace(t *testing.T, b []byte) []decoded {
	t.Helper()
	var tr struct {
		TraceEvents     []decoded `json:"traceEvents"`
		DisplayTimeUnit string    `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	return tr.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	r := New()
	send := r.Begin(10*sim.Microsecond, "rank0", "send")
	send.SetKind("sender-rzv")
	rdma := send.Child(12*sim.Microsecond, "rdma-read")
	rdma.AttrInt("bytes", 65536)
	rdma.End(30 * sim.Microsecond)
	send.End(32 * sim.Microsecond)
	recv := r.Begin(11*sim.Microsecond, "rank1", "recv")
	recv.SetKind("sender-rzv")
	recv.End(33 * sim.Microsecond)
	r.Begin(40*sim.Microsecond, "hca0", "stuck") // left open on purpose

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := parseTrace(t, buf.Bytes())

	// 3 actors * 2 metadata events + 3 X + 1 instant.
	names := map[string]int{} // process_name -> pid
	var xEvents, instants []decoded
	for _, e := range evs {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				names[e.Args["name"]] = e.Pid
			}
		case "X":
			xEvents = append(xEvents, e)
		case "i":
			instants = append(instants, e)
		}
	}
	if len(names) != 3 {
		t.Fatalf("process names %v", names)
	}
	// Actors get pids in sorted order: hca0 < rank0 < rank1.
	if !(names["hca0"] < names["rank0"] && names["rank0"] < names["rank1"]) {
		t.Fatalf("pid order %v", names)
	}
	if len(xEvents) != 3 {
		t.Fatalf("X events %d", len(xEvents))
	}
	if len(instants) != 1 || instants[0].Name != "stuck" {
		t.Fatalf("instants %v", instants)
	}

	var sendEv, childEv decoded
	for _, e := range xEvents {
		switch e.Name {
		case "send":
			sendEv = e
		case "rdma-read":
			childEv = e
		}
	}
	if sendEv.Ts != 10 || sendEv.Dur != 22 { // µs
		t.Fatalf("send ts/dur %v/%v", sendEv.Ts, sendEv.Dur)
	}
	if sendEv.Cat != "sender-rzv" {
		t.Fatalf("send cat %q", sendEv.Cat)
	}
	if sendEv.Pid != names["rank0"] {
		t.Fatal("send on wrong track")
	}
	if childEv.Args["parent"] != sendEv.Args["span_id"] {
		t.Fatalf("child parent=%q, span_id=%q", childEv.Args["parent"], sendEv.Args["span_id"])
	}
	if childEv.Args["bytes"] != "65536" {
		t.Fatalf("child args %v", childEv.Args)
	}

	// Determinism: same spans, same bytes.
	var buf2 bytes.Buffer
	if err := r.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace export not bit-identical")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if evs := parseTrace(t, buf.Bytes()); len(evs) != 0 {
		t.Fatalf("events %v", evs)
	}
}
