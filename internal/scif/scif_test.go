package scif

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func TestMessageCostsOneCrossing(t *testing.T) {
	eng := sim.NewEngine()
	plat := perfmodel.Default()
	pair := NewPair(eng, plat)
	var arrived sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		msg := pair.Host.Recv(p)
		arrived = p.Now()
		if msg.Kind != 3 || msg.Payload.(string) != "hello" {
			t.Errorf("message %+v", msg)
		}
	})
	eng.Spawn("mic", func(p *sim.Proc) {
		pair.Mic.Send(3, "hello")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != plat.SCIFMsgLatency {
		t.Fatalf("arrived at %v, want %v", arrived, plat.SCIFMsgLatency)
	}
}

func TestCallRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	plat := perfmodel.Default()
	pair := NewPair(eng, plat)
	work := 10 * sim.Microsecond
	eng.Spawn("daemon", func(p *sim.Proc) {
		req := pair.Host.Recv(p)
		p.Sleep(work)
		pair.Host.Send(req.Kind, "done")
	})
	var rtt sim.Duration
	eng.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		resp := pair.Mic.Call(p, 7, nil)
		rtt = p.Now() - start
		if resp.Payload.(string) != "done" {
			t.Errorf("response %+v", resp)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*plat.SCIFMsgLatency + work
	if rtt != want {
		t.Fatalf("round trip %v, want %v", rtt, want)
	}
}

func TestOrderingPreserved(t *testing.T) {
	eng := sim.NewEngine()
	pair := NewPair(eng, perfmodel.Default())
	var got []int
	eng.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, pair.Host.Recv(p).Payload.(int))
		}
	})
	eng.Spawn("mic", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			pair.Mic.Send(1, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestSeqNumbersMonotone(t *testing.T) {
	eng := sim.NewEngine()
	pair := NewPair(eng, perfmodel.Default())
	eng.Spawn("host", func(p *sim.Proc) {
		var last uint64
		for i := 0; i < 5; i++ {
			m := pair.Host.Recv(p)
			if m.Seq <= last {
				t.Errorf("seq %d after %d", m.Seq, last)
			}
			last = m.Seq
		}
	})
	eng.Spawn("mic", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			pair.Mic.Send(1, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvAndPending(t *testing.T) {
	eng := sim.NewEngine()
	pair := NewPair(eng, perfmodel.Default())
	eng.Spawn("mic", func(p *sim.Proc) {
		if _, ok := pair.Mic.TryRecv(); ok {
			t.Error("TryRecv on empty inbox succeeded")
		}
		pair.Mic.Send(1, "x")
	})
	eng.Spawn("host", func(p *sim.Proc) {
		p.Sleep(perfmodel.Default().SCIFMsgLatency * 2)
		if pair.Host.Pending() != 1 {
			t.Errorf("pending=%d, want 1", pair.Host.Pending())
		}
		if m, ok := pair.Host.TryRecv(); !ok || m.Payload.(string) != "x" {
			t.Errorf("TryRecv %+v %v", m, ok)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pair.Mic.Sent != 1 || pair.Host.Received != 1 {
		t.Fatalf("counters sent=%d received=%d", pair.Mic.Sent, pair.Host.Received)
	}
}

func TestBidirectionalSimultaneous(t *testing.T) {
	eng := sim.NewEngine()
	pair := NewPair(eng, perfmodel.Default())
	eng.Spawn("host", func(p *sim.Proc) {
		pair.Host.Send(1, "from-host")
		if got := pair.Host.Recv(p).Payload.(string); got != "from-mic" {
			t.Errorf("host got %q", got)
		}
	})
	eng.Spawn("mic", func(p *sim.Proc) {
		pair.Mic.Send(1, "from-mic")
		if got := pair.Mic.Recv(p).Payload.(string); got != "from-host" {
			t.Errorf("mic got %q", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
