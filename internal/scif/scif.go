// Package scif models the Symmetric Communication Interface: the
// message channel between a node's host processor and its Xeon Phi
// card that DCFA's command offloading (and Intel's IB proxy daemon)
// ride on. Each message crossing the PCIe boundary costs one calibrated
// latency; payloads are delivered in order.
package scif

import (
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// Msg is one command-channel message.
type Msg struct {
	Kind    int
	Seq     uint64
	Payload any
}

// Endpoint is one side of a connected SCIF channel.
type Endpoint struct {
	eng   *sim.Engine
	lat   sim.Duration
	inbox *sim.Queue[Msg]
	peer  *Endpoint
	// Sent and Received count messages for tests and reports.
	Sent     int64
	Received int64
	seq      uint64
}

// Pair is a connected host/mic endpoint pair on one node.
type Pair struct {
	Host *Endpoint
	Mic  *Endpoint
}

// NewPair creates a connected channel with the platform's crossing
// latency.
func NewPair(eng *sim.Engine, plat *perfmodel.Platform) *Pair {
	h := &Endpoint{eng: eng, lat: plat.SCIFMsgLatency, inbox: sim.NewQueue[Msg](eng)}
	m := &Endpoint{eng: eng, lat: plat.SCIFMsgLatency, inbox: sim.NewQueue[Msg](eng)}
	h.peer, m.peer = m, h
	return &Pair{Host: h, Mic: m}
}

// Send queues a message for the peer; it becomes receivable one
// crossing latency later. May be called from process or callback
// context.
func (e *Endpoint) Send(kind int, payload any) {
	e.seq++
	msg := Msg{Kind: kind, Seq: e.seq, Payload: payload}
	e.Sent++
	peer := e.peer
	e.eng.After(e.lat, func() {
		peer.inbox.Put(msg)
		peer.Received++
	})
}

// Recv blocks p until a message arrives and returns it.
func (e *Endpoint) Recv(p *sim.Proc) Msg {
	return e.inbox.Get(p)
}

// TryRecv returns a message if one is waiting.
func (e *Endpoint) TryRecv() (Msg, bool) {
	return e.inbox.TryGet()
}

// Call is the client-side request/response idiom: send a request and
// block until the next reply arrives on this endpoint. The DCFA CMD
// client uses this for every delegated verb.
func (e *Endpoint) Call(p *sim.Proc, kind int, payload any) Msg {
	e.Send(kind, payload)
	return e.Recv(p)
}

// Pending reports undelivered inbound messages.
func (e *Endpoint) Pending() int { return e.inbox.Len() }
