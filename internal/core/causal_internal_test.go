package core

// The causal package mirrors core's wire and work-request constants so
// the graph layer can classify edges without importing core (core
// imports causal). These assertions pin the numeric agreement.

import (
	"testing"

	"repro/internal/causal"
)

func TestCausalPacketKindsAgree(t *testing.T) {
	pairs := []struct {
		name   string
		core   byte
		causal uint8
	}{
		{"eager", pktEager, causal.PktEager},
		{"rts", pktRTS, causal.PktRTS},
		{"rtr", pktRTR, causal.PktRTR},
		{"done", pktDone, causal.PktDone},
		{"credit", pktCredit, causal.PktCredit},
		{"nack", pktNack, causal.PktNack},
		{"done-w", pktDoneW, causal.PktDoneW},
		{"nack-w", pktNackW, causal.PktNackW},
	}
	for _, p := range pairs {
		if uint8(p.core) != p.causal {
			t.Errorf("packet kind %s: core %d != causal %d", p.name, p.core, p.causal)
		}
	}
}

func TestCausalWRKindsAgree(t *testing.T) {
	// WR kinds are emitted shifted by one so zero stays "unset".
	pairs := []struct {
		name   string
		core   wrKind
		causal uint8
	}{
		{"eager", wrEager, causal.WREager},
		{"ctrl", wrCtrl, causal.WRCtrl},
		{"rndv-write", wrRndvWrite, causal.WRRndvWrite},
		{"rndv-read", wrRndvRead, causal.WRRndvRead},
	}
	for _, p := range pairs {
		if uint8(p.core)+1 != p.causal {
			t.Errorf("WR kind %s: core %d+1 != causal %d", p.name, p.core, p.causal)
		}
	}
}

func TestCausalProtoCodesAgree(t *testing.T) {
	pairs := []struct {
		kind string
		code uint8
	}{
		{KindEager, causal.ProtoEager},
		{KindSenderRzv, causal.ProtoSenderRzv},
		{KindRecvRzv, causal.ProtoRecvRzv},
		{KindSimulRzv, causal.ProtoSimulRzv},
		{KindSelf, causal.ProtoSelf},
	}
	for _, p := range pairs {
		if protoOf(p.kind) != p.code {
			t.Errorf("proto %s: core code %d != causal %d", p.kind, protoOf(p.kind), p.code)
		}
	}
}
