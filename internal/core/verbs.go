// Package core implements DCFA-MPI: the paper's MPI point-to-point and
// collective layer over the DCFA InfiniBand interface, including the
// four communication protocols of §IV-B3 (Eager, Sender-First
// Rendezvous, Receiver-First Rendezvous, Simultaneous Send/Receive
// Rendezvous), per-pair sequence ids with the MPI_ANY_SOURCE locking
// scheme, the memory-region cache pool, and the §IV-B4 offloading
// send-buffer design.
//
// As in the paper, request matching is ordered by per-pair sequence
// ids: the k-th send from a rank pairs with the k-th receive posted for
// that rank, tags are verified (MPI_ANY_TAG matches anything), and
// Eager/Rendezvous mis-predictions are resolved exactly as §IV-B3
// prescribes.
package core

import (
	"repro/internal/dcfa"
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Verbs abstracts the InfiniBand provider under one MPI rank, so the
// same protocol engine runs over DCFA on the co-processor, plain host
// verbs (the YAMPII-like host MPI reference), or a proxied path (the
// 'Intel MPI on Xeon Phi' baseline).
type Verbs interface {
	// Loc is where the MPI software executes (host or co-processor).
	Loc() machine.DomainKind
	// Domain is the memory the rank's buffers live in.
	Domain() *machine.Domain
	// HCA is the adapter used by this rank.
	HCA() *ib.HCA

	// Resource creation can fail on providers whose control path rides
	// a faultable channel (the DCFA CMD protocol under fault plans).
	AllocPD(p *sim.Proc) (*ib.PD, error)
	CreateCQ(p *sim.Proc, depth int) (*ib.CQ, error)
	CreateQP(p *sim.Proc, pd *ib.PD, sendCQ, recvCQ *ib.CQ) (*ib.QP, error)
	//simlint:contract mrleak acquire fresh registration the caller must deregister
	RegMR(p *sim.Proc, pd *ib.PD, dom *machine.Domain, addr uint64, n int) (*ib.MR, error)
	//simlint:contract mrleak release discharges the registration on every path
	DeregMR(p *sim.Proc, mr *ib.MR) error

	PostSend(p *sim.Proc, qp *ib.QP, wr *ib.SendWR) error
	PostRecv(p *sim.Proc, qp *ib.QP, wr *ib.RecvWR) error

	// RecvOverhead is the provider's extra cost to deliver one inbound
	// packet of n payload bytes to the MPI layer (zero for direct
	// providers; the proxied Intel path pays the daemon's relay copy).
	RecvOverhead(n int) sim.Duration

	// Offload send-buffer extension; SupportsOffload reports whether
	// the three reg/sync/dereg verbs are available.
	SupportsOffload() bool
	//simlint:contract offload acquire offload region the caller must deregister
	RegOffloadMR(p *sim.Proc, size int) (*dcfa.OffloadMR, error)
	//simlint:contract offload advance pushes dirty bytes before the next send
	SyncOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR, off int, src []byte) error
	//simlint:contract offload release discharges the offload region
	DeregOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR) error
}

// DCFAVerbs adapts dcfa.MicVerbs to the Verbs interface: the DCFA-MPI
// configuration, running on the co-processor with direct HCA access.
type DCFAVerbs struct {
	V *dcfa.MicVerbs
}

// Loc implements Verbs.
func (d DCFAVerbs) Loc() machine.DomainKind             { return machine.MicMem }
func (d DCFAVerbs) Domain() *machine.Domain             { return d.V.Node.Mic }
func (d DCFAVerbs) HCA() *ib.HCA                        { return d.V.HCA }
func (d DCFAVerbs) AllocPD(p *sim.Proc) (*ib.PD, error) { return d.V.AllocPD(p) }
func (d DCFAVerbs) CreateCQ(p *sim.Proc, depth int) (*ib.CQ, error) {
	return d.V.CreateCQ(p, depth)
}
func (d DCFAVerbs) CreateQP(p *sim.Proc, pd *ib.PD, scq, rcq *ib.CQ) (*ib.QP, error) {
	return d.V.CreateQP(p, pd, scq, rcq)
}
func (d DCFAVerbs) RegMR(p *sim.Proc, pd *ib.PD, dom *machine.Domain, addr uint64, n int) (*ib.MR, error) {
	return d.V.RegMR(p, pd, dom, addr, n)
}
func (d DCFAVerbs) DeregMR(p *sim.Proc, mr *ib.MR) error { return d.V.DeregMR(p, mr) }
func (d DCFAVerbs) PostSend(p *sim.Proc, qp *ib.QP, wr *ib.SendWR) error {
	return qp.PostSend(p, wr)
}
func (d DCFAVerbs) PostRecv(p *sim.Proc, qp *ib.QP, wr *ib.RecvWR) error {
	return qp.PostRecv(p, wr)
}
func (d DCFAVerbs) RecvOverhead(n int) sim.Duration { return 0 }
func (d DCFAVerbs) SupportsOffload() bool           { return true }
func (d DCFAVerbs) RegOffloadMR(p *sim.Proc, size int) (*dcfa.OffloadMR, error) {
	return d.V.RegOffloadMR(p, size)
}
func (d DCFAVerbs) SyncOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR, off int, src []byte) error {
	return d.V.SyncOffloadMR(p, omr, off, src)
}
func (d DCFAVerbs) DeregOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR) error {
	return d.V.DeregOffloadMR(p, omr)
}

// HostVerbs adapts a plain host ib.Context: the host MPI reference the
// paper compares against (YAMPII on the Xeon).
type HostVerbs struct {
	Ctx  *ib.Context
	Node *machine.Node
}

func (h HostVerbs) Loc() machine.DomainKind             { return machine.HostMem }
func (h HostVerbs) Domain() *machine.Domain             { return h.Node.Host }
func (h HostVerbs) HCA() *ib.HCA                        { return h.Ctx.HCA }
func (h HostVerbs) AllocPD(p *sim.Proc) (*ib.PD, error) { return h.Ctx.AllocPD(), nil }
func (h HostVerbs) CreateCQ(p *sim.Proc, depth int) (*ib.CQ, error) {
	return h.Ctx.CreateCQ(depth), nil
}
func (h HostVerbs) CreateQP(p *sim.Proc, pd *ib.PD, scq, rcq *ib.CQ) (*ib.QP, error) {
	return h.Ctx.CreateQP(pd, scq, rcq), nil
}
func (h HostVerbs) RegMR(p *sim.Proc, pd *ib.PD, dom *machine.Domain, addr uint64, n int) (*ib.MR, error) {
	return h.Ctx.RegMR(p, pd, dom, addr, n)
}
func (h HostVerbs) DeregMR(p *sim.Proc, mr *ib.MR) error { return h.Ctx.DeregMR(p, mr) }
func (h HostVerbs) PostSend(p *sim.Proc, qp *ib.QP, wr *ib.SendWR) error {
	return qp.PostSend(p, wr)
}
func (h HostVerbs) PostRecv(p *sim.Proc, qp *ib.QP, wr *ib.RecvWR) error {
	return qp.PostRecv(p, wr)
}
func (h HostVerbs) RecvOverhead(n int) sim.Duration { return 0 }
func (h HostVerbs) SupportsOffload() bool           { return false }
func (h HostVerbs) RegOffloadMR(p *sim.Proc, size int) (*dcfa.OffloadMR, error) {
	return nil, ErrNoOffload
}
func (h HostVerbs) SyncOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR, off int, src []byte) error {
	return ErrNoOffload
}
func (h HostVerbs) DeregOffloadMR(p *sim.Proc, omr *dcfa.OffloadMR) error {
	return ErrNoOffload
}
