package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// peerState is everything a rank holds per remote peer.
type peerState struct {
	qp *ib.QP
	// in is the local eager ring this peer writes into.
	in *ring
	// out describes the peer's ring we write into.
	out ringDesc
	// credits is how many free remote slots we may still write.
	credits int
	// nextSlot is the next remote slot index to write.
	nextSlot int
	// toReturn counts locally consumed slots not yet credited back.
	toReturn int
	// staging is the registered packet-assembly buffer (header +
	// payload + tail) for sends to this peer.
	staging   *machine.Buffer
	stagingMR *ib.MR
	// pendingSends are eager packets waiting for ring credit.
	pendingSends []*Request
	// pendingCtrl are control packets (RTS/RTR/DONE) waiting for ring
	// credit; drained before pendingSends.
	pendingCtrl []header

	// Transport sequence numbers for fault recovery: sendPSN numbers
	// packets written into the peer's ring (replays keep the original
	// number); recvPSN is the next number this side will accept —
	// anything below it is a replayed duplicate and is discarded.
	sendPSN uint64
	recvPSN uint64
	// rlid/rqpn identify the peer endpoint for QP reconnects after a
	// fault-induced error state (captured during bootstrap).
	rlid uint16
	rqpn uint32
	// postponed holds WR ids formed while the QP was errored; they are
	// reissued in order once the QP is reconnected.
	postponed []uint64
}

// Stats aggregates per-rank communication counters.
type Stats struct {
	MsgsSent       int64
	BytesSent      int64
	EagerSends     int64
	RndvSends      int64
	OffloadedSends int64
	CreditPackets  int64
	Unexpected     int64
	SelfMsgs       int64
	OffloadedPacks int64

	// Fault-recovery counters (nonzero only under an active plan).
	Retries        int64
	QPResets       int64
	ReplaysDeduped int64
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	proc *sim.Proc
	v    Verbs

	pd      *ib.PD
	cq      *ib.CQ
	peers   []*peerState
	mrCache *MRCache
	arena   *offArena

	// active lists peer indices with live endpoints, sorted ascending,
	// so the progress engine scans exactly the connected pairs instead
	// of a thousand-entry mostly-nil peer table. Under eager connect it
	// holds every peer; under lazy connect it grows as pairs first
	// communicate.
	active []int

	// cqeBuf is the persistent completion buffer progress drains into
	// (ibv-style PollInto), so the per-event CQ drain never allocates.
	cqeBuf [16]ib.CQE

	sendSeq []uint64
	recvSeq []uint64

	// expRecv[i][seq] is the posted receive expecting that packet.
	expRecv []map[uint64]*Request
	// unexpected[i][seq] holds inbound data packets (eager payloads and
	// RTS announcements) with no matching receive yet, keyed by the
	// i→me sequence space.
	unexpected []map[uint64]*arrival
	// earlyRTR[i][seq] holds RTRs that arrived before their Isend,
	// keyed by the me→i sequence space (receiver-first case). RTS and
	// RTR sequence ids live in opposite directed-pair spaces and must
	// never share a map.
	earlyRTR []map[uint64]header
	// sendsBySeq[i][seq] routes RTR/DONE packets to in-flight sends.
	sendsBySeq []map[uint64]*Request

	// ANY_SOURCE locking per §IV-B3.
	anyActive *Request
	deferred  []*Request

	// selfQueue holds loopback messages sent to self before the recv.
	selfUnexpected map[uint64]*arrival
	selfSendSeq    uint64
	selfRecvSeq    uint64

	// arrivalFree recycles arrival records after their match, so
	// steady-state unexpected traffic allocates no record per packet.
	arrivalFree []*arrival

	// wrFree recycles send work requests (and their cap-3 SGL backing)
	// once their completion has been routed, so the per-packet path
	// allocates no WR or SGE state in steady state. Recycling is
	// disabled under an active fault plan: replay needs the formed WR
	// to survive until its retry budget is spent.
	wrFree []*ib.SendWR
	// pktFree recycles the fault-mode packet snapshots sendPacket
	// retains for replay.
	pktFree [][]byte

	wrSeq uint64
	wrMap map[uint64]wrAction

	// splitSeq numbers Comm.Split calls for consistent communicator
	// ids (Split is collective, so every member sees the same count).
	splitSeq int

	// m holds telemetry handles; its zero value (metrics disabled)
	// makes every record a nil-check no-op.
	m rankMetrics

	// c holds the causal-profiling handle; its zero value (profiling
	// disabled) makes every emit a nil-check no-op.
	c rankCausal

	// fatal is set when transport recovery gives up on a WR that has
	// no owning request to fail (control packets): the rank cannot
	// guarantee protocol progress anymore, so Wait and finalize abort
	// with this error instead of spinning.
	fatal error

	Stats Stats
}

// ID returns this rank's number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Proc returns the simulated process running this rank.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// Mem allocates n bytes in this rank's memory domain (host memory for
// host ranks, co-processor memory for DCFA/Phi ranks).
func (r *Rank) Mem(n int) *machine.Buffer { return r.v.Domain().Alloc(n) }

// Domain returns the memory domain this rank's buffers live in.
func (r *Rank) Domain() *machine.Domain { return r.v.Domain() }

// Loc returns where the rank's MPI software executes.
func (r *Rank) Loc() machine.DomainKind { return r.v.Loc() }

// trace records a protocol event when tracing is enabled. The body
// runs only when a trace sink is configured, so it is off the
// per-event budget; the argument boxing its variadic signature forces
// at call sites is a real per-event cost and is tracked in the lint
// baseline.
//
//simlint:cold
func (r *Rank) trace(kind, format string, args ...any) {
	if tr := r.w.Cfg.Trace; tr != nil {
		tr.Log(r.proc.Now(), fmt.Sprintf("rank%d", r.id), kind, format, args...)
	}
}

// trace1/trace2/trace3 are the non-variadic fast paths of trace
// (DESIGN.md §7e): hot call sites pass up to three integers without
// boxing them into interface values; the boxing happens once inside
// the cold body, off the per-event budget.
//
//simlint:cold
func (r *Rank) trace1(kind, format string, a int64) {
	if tr := r.w.Cfg.Trace; tr != nil {
		tr.Log(r.proc.Now(), fmt.Sprintf("rank%d", r.id), kind, format, a)
	}
}

//simlint:cold
func (r *Rank) trace2(kind, format string, a, b int64) {
	if tr := r.w.Cfg.Trace; tr != nil {
		tr.Log(r.proc.Now(), fmt.Sprintf("rank%d", r.id), kind, format, a, b)
	}
}

//simlint:cold
func (r *Rank) trace3(kind, format string, a, b, c int64) {
	if tr := r.w.Cfg.Trace; tr != nil {
		tr.Log(r.proc.Now(), fmt.Sprintf("rank%d", r.id), kind, format, a, b, c)
	}
}

// wrFailErr builds the completion-failure error. Split out so the
// status value is boxed in a cold frame, not in handleCQE itself.
//
//simlint:cold
func wrFailErr(s ib.Status) error {
	return fmt.Errorf("core: work request failed: %v", s)
}

// MRCacheStats reports buffer-cache-pool hits and misses.
func (r *Rank) MRCacheStats() (hits, misses int64) {
	return r.mrCache.Hits, r.mrCache.Misses
}

// setup builds this rank's verbs resources (phase 1 of bootstrap).
func (r *Rank) setup(p *sim.Proc) error {
	cfg := r.w.Cfg
	var err error
	if r.pd, err = r.v.AllocPD(p); err != nil {
		return err
	}
	if r.cq, err = r.v.CreateCQ(p, 1<<16); err != nil {
		return err
	}
	r.mrCache = NewMRCache(r.v, r.pd, cfg.MRCacheCap)
	r.m = newRankMetrics(cfg.Metrics, r.id)
	r.c = newRankCausal(cfg.Causal, r.id)
	r.mrCache.instrument(cfg.Metrics, r.m.actor)
	n := r.w.Size()
	r.peers = make([]*peerState, n)
	r.sendSeq = make([]uint64, n)
	r.recvSeq = make([]uint64, n)
	r.expRecv = make([]map[uint64]*Request, n)
	r.unexpected = make([]map[uint64]*arrival, n)
	r.earlyRTR = make([]map[uint64]header, n)
	r.sendsBySeq = make([]map[uint64]*Request, n)
	r.selfUnexpected = make(map[uint64]*arrival)
	r.wrMap = make(map[uint64]wrAction)
	if r.w.lazyConnect() {
		// Lazy connect: endpoint pairs (and their per-pair maps) are
		// built by ensurePeer at the pair's first message. Only the
		// loopback map is needed up front.
		r.expRecv[r.id] = make(map[uint64]*Request)
	} else {
		for i := 0; i < n; i++ {
			r.expRecv[i] = make(map[uint64]*Request)
			r.unexpected[i] = make(map[uint64]*arrival)
			r.earlyRTR[i] = make(map[uint64]header)
			r.sendsBySeq[i] = make(map[uint64]*Request)
			if i == r.id {
				continue
			}
			if _, err := r.makePeerHalf(p, i); err != nil {
				return err
			}
		}
	}
	if cfg.Offload && r.v.SupportsOffload() {
		var err error
		r.arena, err = newOffArena(p, r.v, cfg.OffloadArena)
		if err != nil {
			return err
		}
	}
	return nil
}

// connect wires QPs and ring descriptors against every peer (phase 2;
// the out-of-band bootstrap a process manager would provide).
func (r *Rank) connect(p *sim.Proc) error {
	for i, ps := range r.peers {
		if ps == nil {
			continue
		}
		peer := r.w.ranks[i]
		if len(peer.peers) <= r.id || peer.peers[r.id] == nil || peer.peers[r.id].qp == nil {
			// The peer's setup failed (possible under CMD-channel
			// faults); surface a typed bootstrap error, not a panic.
			return fmt.Errorf("core: rank %d has no endpoint for rank %d (peer setup failed)", i, r.id)
		}
		other := peer.peers[r.id]
		// Remember the peer endpoint so fault recovery can reconnect
		// after a QP reset.
		ps.rlid = peer.v.HCA().LID
		ps.rqpn = other.qp.QPN
		if err := ps.qp.Connect(ps.rlid, ps.rqpn); err != nil {
			return err
		}
		ps.out = other.in.desc()
		ps.credits = ps.out.slots
	}
	return nil
}

// makePeerHalf builds this rank's endpoint toward peer i (QP, eager
// ring, staging buffer) plus the per-pair matching maps, and records i
// in the active-peer list. It does not wire the QP; setup/connect (the
// eager bootstrap) or ensurePeer (lazy) do that.
func (r *Rank) makePeerHalf(p *sim.Proc, i int) (*peerState, error) {
	if r.expRecv[i] == nil {
		r.expRecv[i] = make(map[uint64]*Request)
		r.unexpected[i] = make(map[uint64]*arrival)
		r.earlyRTR[i] = make(map[uint64]header)
		r.sendsBySeq[i] = make(map[uint64]*Request)
	}
	cfg := r.w.Cfg
	dom := r.v.Domain()
	ps := &peerState{}
	var err error
	if ps.qp, err = r.v.CreateQP(p, r.pd, r.cq, r.cq); err != nil {
		return nil, err
	}
	ps.in, err = newRing(p, r.v, r.pd, dom, cfg.EagerSlots, cfg.EagerMax)
	if err != nil {
		return nil, err
	}
	ps.staging = dom.Alloc(slotBytes(cfg.EagerMax))
	ps.stagingMR, err = r.v.RegMR(p, r.pd, dom, ps.staging.Addr, len(ps.staging.Data))
	if err != nil {
		return nil, err
	}
	r.peers[i] = ps
	r.insertActive(i)
	return ps, nil
}

// insertActive records a connected peer, keeping the list sorted so
// progress scans peers in rank order regardless of connection order —
// the property that keeps lazy-connect runs deterministic.
func (r *Rank) insertActive(i int) {
	at := sort.SearchInts(r.active, i)
	r.active = append(r.active, 0)
	copy(r.active[at+1:], r.active[at:])
	r.active[at] = i
}

// ensurePeer returns the endpoint toward peer i, building and wiring
// BOTH halves of the pair on first use under lazy connect. The peer's
// resources are created in the caller's process context — the
// simulation's stand-in for the out-of-band connection establishment a
// process manager performs — so lazy bootstrap stays deterministic.
func (r *Rank) ensurePeer(p *sim.Proc, i int) (*peerState, error) {
	key := [2]int{r.id, i}
	if i < r.id {
		key = [2]int{i, r.id}
	}
	for {
		if ps := r.peers[i]; ps != nil {
			return ps, nil
		}
		ev := r.w.connInFlight[key]
		if ev == nil {
			break
		}
		// The peer is mid-bootstrap toward us (mutual first contact —
		// e.g. a symmetric Sendrecv exchange): QP and ring creation
		// yield to the engine, so without this wait both sides would
		// build the pair and orphan each other's half.
		ev.Wait(p)
	}
	claim := sim.NewEvent(r.w.Eng)
	r.w.connInFlight[key] = claim
	defer func() {
		delete(r.w.connInFlight, key)
		claim.Fire()
	}()
	peer := r.w.ranks[i]
	mine, err := r.makePeerHalf(p, i)
	if err != nil {
		return nil, err
	}
	theirs, err := peer.makePeerHalf(p, r.id)
	if err != nil {
		return nil, err
	}
	mine.rlid, mine.rqpn = peer.v.HCA().LID, theirs.qp.QPN
	if err := mine.qp.Connect(mine.rlid, mine.rqpn); err != nil {
		return nil, err
	}
	mine.out = theirs.in.desc()
	mine.credits = mine.out.slots
	theirs.rlid, theirs.rqpn = r.v.HCA().LID, mine.qp.QPN
	if err := theirs.qp.Connect(theirs.rlid, theirs.rqpn); err != nil {
		return nil, err
	}
	theirs.out = mine.in.desc()
	theirs.credits = theirs.out.slots
	return mine, nil
}

// finalize drains queued outbound control packets and credit-starved
// sends before the rank exits (MPI_Finalize semantics): a DONE stuck
// behind ring flow control must still reach its peer or the peer hangs.
func (r *Rank) finalize(p *sim.Proc) {
	for {
		if r.fatal != nil {
			// Transport recovery gave up; queued packets can never be
			// delivered and waiting would deadlock the engine.
			return
		}
		pending := false
		for _, i := range r.active {
			ps := r.peers[i]
			if len(ps.pendingCtrl) > 0 || len(ps.pendingSends) > 0 || len(ps.postponed) > 0 {
				pending = true
				break
			}
		}
		if !pending {
			return
		}
		if !r.progress(p) {
			r.v.HCA().Doorbell.Wait(p)
		}
	}
}

// nextWR allocates a work-request id and registers its routing.
func (r *Rank) nextWR(a wrAction) uint64 {
	r.wrSeq++
	r.wrMap[r.wrSeq] = a
	return r.wrSeq
}

// faultsOn reports whether a fault plan with any nonzero rate is
// installed (the recovery paths are compiled out of the hot path
// behind this check).
func (r *Rank) faultsOn() bool { return r.w.Cfg.Faults.Enabled() }

// post issues wr on the QP toward peer dst. If the QP is not connected
// (errored by a fault, awaiting recovery), the fully-formed WR is
// postponed and reissued in order once recovery reconnects — without
// this, progress handling a ring packet between the error and the CQ
// poll could post into the errored QP and fail synchronously.
func (r *Rank) post(p *sim.Proc, dst int, wr *ib.SendWR) error {
	ps := r.peers[dst]
	if ps.qp.State != ib.QPConnected {
		ps.postponed = append(ps.postponed, wr.WRID)
		return nil
	}
	return r.v.PostSend(p, ps.qp, wr)
}

// reissue (re)posts the WR identified by act: packet WRs are restored
// from their retained byte snapshot into the staging buffer and
// rewritten to their original ring slot (same psn, no new credit);
// rendezvous WRs are reposted as formed, their buffers still pinned.
// Retransmission only runs after a fault: off the per-event budget.
//
//simlint:cold
func (r *Rank) reissue(p *sim.Proc, wrid uint64, act wrAction) error {
	ps := r.peers[act.peer]
	switch act.kind {
	case wrEager, wrCtrl:
		copy(ps.staging.Data[:len(act.pkt)], act.pkt)
		wr := &ib.SendWR{
			WRID:     wrid,
			Opcode:   ib.OpRDMAWrite,
			SGL:      []ib.SGE{{Addr: ps.staging.Addr, Len: len(act.pkt), LKey: ps.stagingMR.LKey}},
			Remote:   ib.RemoteAddr{Addr: ps.out.slotAddr(act.slot), RKey: ps.out.rkey},
			Signaled: true,
		}
		return r.v.PostSend(p, ps.qp, wr)
	default:
		return r.v.PostSend(p, ps.qp, act.wr)
	}
}

// recoverWR handles a retry-exhaustion completion: reset and reconnect
// the errored QP, then replay the WR until the plan's budget runs out,
// at which point the owning request (or the rank, for control packets)
// fails with a typed TransportError. Recovery only runs after retry
// exhaustion: off the per-event budget.
//
//simlint:cold
func (r *Rank) recoverWR(p *sim.Proc, wrid uint64, act wrAction) {
	ps := r.peers[act.peer]
	if ps.qp.State == ib.QPError {
		ps.qp.Reset()
		if err := ps.qp.Connect(ps.rlid, ps.rqpn); err != nil {
			r.failWR(p, act, fmt.Errorf("core: reconnect to rank %d: %w", act.peer, err))
			return
		}
		r.Stats.QPResets++
		r.m.qpResets.Inc()
		r.c.qpReset(p.Now(), act.peer)
		r.trace("qp-reset", "peer=%d reconnected", act.peer)
	}
	act.tries++
	if act.tries > r.w.Cfg.Faults.MaxRetries() {
		r.failWR(p, act, &TransportError{Peer: act.peer, Op: act.kind.String(), Tries: act.tries})
		return
	}
	r.wrMap[wrid] = act
	r.Stats.Retries++
	r.m.faultRetries.Inc()
	r.c.replay(p.Now(), act.peer, wrid)
	r.trace("wr-replay", "peer=%d kind=%s try=%d", act.peer, act.kind, act.tries)
	if err := r.reissue(p, wrid, act); err != nil {
		delete(r.wrMap, wrid)
		r.failWR(p, act, err)
	}
}

// failWR gives up on a work request: requests complete with the error;
// ownerless control packets poison the rank instead, because a lost
// RTS/RTR/DONE breaks the protocol for an unknowable set of requests.
func (r *Rank) failWR(p *sim.Proc, act wrAction, err error) {
	if act.req != nil {
		act.req.complete(p, err)
		return
	}
	if r.fatal == nil {
		r.fatal = err
	}
}

// newSendWR hands out a pooled send work request with SGL capacity for
// the three-element packet layout (header, payload, tail). handleCQE
// recycles completed WRs when no fault plan is active, so the
// per-packet path allocates no WR or SGE state in steady state.
func (r *Rank) newSendWR() *ib.SendWR {
	n := len(r.wrFree)
	if n == 0 {
		//simlint:ignore hotalloc pool refill: handleCQE recycles every completed WR, amortizing this over the run
		return &ib.SendWR{SGL: make([]ib.SGE, 0, 3)}
	}
	wr := r.wrFree[n-1]
	r.wrFree = r.wrFree[:n-1]
	return wr
}

// recycleWR returns a routed work request to the free list, keeping
// its SGL backing. Callers must only recycle WRs the transport cannot
// touch again (completion routed, no fault plan that could replay it).
func (r *Rank) recycleWR(wr *ib.SendWR) {
	if wr == nil {
		return
	}
	*wr = ib.SendWR{SGL: wr.SGL[:0]}
	r.wrFree = append(r.wrFree, wr)
}

// snapPkt snapshots staged packet bytes for fault-mode replay, reusing
// retired snapshot backing. Only called while a fault plan is active.
func (r *Rank) snapPkt(b []byte) []byte {
	n := len(r.pktFree)
	if n == 0 || cap(r.pktFree[n-1]) < len(b) {
		//simlint:ignore hotalloc pool refill: handleCQE recycles every snapshot, amortizing this over the run
		return append([]byte(nil), b...)
	}
	s := r.pktFree[n-1]
	r.pktFree = r.pktFree[:n-1]
	//simlint:ignore hotalloc append reuses pooled backing; capacity was checked above
	return append(s[:0], b...)
}

// recyclePkt returns a replay snapshot's backing to the pool.
func (r *Rank) recyclePkt(b []byte) {
	if b == nil {
		return
	}
	r.pktFree = append(r.pktFree, b)
}

// sendPacket assembles and RDMA-writes one packet into the peer's ring.
// The caller must hold a credit (credits > 0). Consumed local slots are
// piggybacked back as credits on every outgoing header.
func (r *Rank) sendPacket(p *sim.Proc, dst int, h header, payload []byte, act wrAction) error {
	ps := r.peers[dst]
	if ps.credits <= 0 {
		panic("core: sendPacket without credit")
	}
	ps.credits--
	h.src = uint16(r.id)
	h.payload = len(payload)
	h.credits = uint32(ps.toReturn)
	ps.toReturn = 0
	h.psn = ps.sendPSN
	ps.sendPSN++
	s := ps.staging.Data
	h.encode(s[:hdrSize])
	if len(payload) > 0 {
		// The eager copy into the preregistered global buffer.
		copy(s[hdrSize:hdrSize+len(payload)], payload)
		p.Sleep(r.w.Plat.CopyCost(r.v.Loc(), len(payload)))
	}
	binary.LittleEndian.PutUint64(s[hdrSize+len(payload):], tailMarker(h.seq))
	slot := ps.nextSlot
	ps.nextSlot = (ps.nextSlot + 1) % ps.out.slots
	act.peer = dst
	if r.faultsOn() {
		// Retain the packet bytes: staging is reused by later sends,
		// but a replay must rewrite exactly these bytes (same psn) to
		// the same slot.
		act.slot = slot
		act.pkt = r.snapPkt(s[:hdrSize+len(payload)+tailSize])
	}
	// Header SGE + data SGE + tail SGE, as the paper lays the packet out.
	wr := r.newSendWR()
	wr.Opcode = ib.OpRDMAWrite
	wr.Remote = ib.RemoteAddr{Addr: ps.out.slotAddr(slot), RKey: ps.out.rkey}
	wr.Signaled = true
	wr.SGL = append(wr.SGL, ib.SGE{Addr: ps.staging.Addr, Len: hdrSize, LKey: ps.stagingMR.LKey})
	if len(payload) > 0 {
		wr.SGL = append(wr.SGL, ib.SGE{Addr: ps.staging.Addr + hdrSize, Len: len(payload), LKey: ps.stagingMR.LKey})
	}
	wr.SGL = append(wr.SGL, ib.SGE{Addr: ps.staging.Addr + uint64(hdrSize+len(payload)), Len: tailSize, LKey: ps.stagingMR.LKey})
	act.wr = wr
	wrid := r.nextWR(act)
	wr.WRID = wrid
	r.c.pktSend(p.Now(), dst, h, len(payload))
	r.c.wrPost(p.Now(), dst, act.kind, wrid, len(payload))
	return r.post(p, dst, wr)
}

// ---- Point-to-point API ----

// Isend starts a nonblocking send of s to dst with tag.
func (r *Rank) Isend(p *sim.Proc, dst, tag int, s Slice) (*Request, error) {
	if dst < 0 || dst >= r.w.Size() {
		return nil, ErrBadRank
	}
	req := &Request{r: r, isSend: true, peer: dst, tag: tag, slice: s, startT: p.Now()}
	if r.m.reg != nil {
		req.span = r.m.span(req.startT, "send")
		req.span.AttrInt("peer", int64(dst)).AttrInt("bytes", int64(s.N))
	}
	if r.c.on() {
		req.cid = r.c.nextCID()
	}
	p.Sleep(r.w.Plat.MPIPerMsg(r.v.Loc()))
	r.Stats.MsgsSent++
	r.Stats.BytesSent += int64(s.N)
	if dst == r.id {
		r.m.resolve(req, KindSelf)
		r.c.sendPost(p.Now(), req)
		r.selfSend(p, req)
		return req, nil
	}
	if _, err := r.ensurePeer(p, dst); err != nil {
		return nil, err
	}
	req.seq = r.sendSeq[dst]
	r.sendSeq[dst]++
	req.hasSeq = true
	req.span.AttrInt("seq", int64(req.seq))
	r.c.sendPost(p.Now(), req)
	// Drain arrived packets first: an RTR for this very sequence id may
	// already be waiting (receiver-first), which changes the protocol.
	r.progress(p)
	if s.N <= r.w.Cfg.EagerMax {
		r.Stats.EagerSends++
		r.m.resolve(req, KindEager)
		r.trySendEager(p, req)
		return req, nil
	}
	return req, r.startRendezvousSend(p, req)
}

// trySendEager posts the eager packet now or queues it for credit.
func (r *Rank) trySendEager(p *sim.Proc, req *Request) {
	// Sender-eager / receiver-rendezvous mis-prediction where the RTR
	// arrived before this send was even posted: drop it — the sequence
	// id guarantees it belonged to this send only.
	if _, ok := r.earlyRTR[req.peer][req.seq]; ok {
		delete(r.earlyRTR[req.peer], req.seq)
		r.m.mispredicts.Inc()
		r.c.mispredict(p.Now(), req.peer, req.seq)
		r.trace("mispredict-rtr-drop", "from=%d seq=%d (pre-posted)", req.peer, req.seq)
	}
	ps := r.peers[req.peer]
	if ps.credits <= 1 {
		req.state = stEagerQueued
		ps.pendingSends = append(ps.pendingSends, req)
		return
	}
	h := header{kind: pktEager, tag: int32(req.tag), seq: req.seq}
	if err := r.sendPacket(p, req.peer, h, req.slice.Bytes(), wrAction{kind: wrEager, req: req}); err != nil {
		req.complete(p, err)
		return
	}
	req.state = stEagerSent
	r.trace("eager-send", "to=%d seq=%d n=%d", req.peer, req.seq, req.slice.N)
}

// startRendezvousSend stages (or registers) the send buffer, then either
// answers an already-arrived RTR (receiver-first) or sends an RTS
// (sender-first).
func (r *Rank) startRendezvousSend(p *sim.Proc, req *Request) error {
	r.Stats.RndvSends++
	s := req.slice
	useOffload := r.arena != nil && s.N >= r.w.Cfg.OffloadMinSize
	if useOffload {
		if reg := r.arena.alloc(s.N); reg != nil {
			// sync_offload_mr: stage the latest data into the host
			// bounce buffer through the DMA engine before any send.
			syncT := p.Now()
			ss := req.span.Child(syncT, "offload-sync")
			err := r.arena.sync(p, reg, s.Bytes())
			ss.AttrInt("bytes", int64(s.N))
			ss.End(p.Now())
			var abort *pcie.DMAAbortError
			switch {
			case err == nil:
				req.offReg = reg
				req.advAddr = reg.addr()
				req.advKey = reg.rkey()
				r.Stats.OffloadedSends++
				r.m.offStaged.Add(int64(s.N))
				r.c.dmaSync(p.Now(), p.Now()-syncT, s.N)
				r.trace("offload-sync", "to=%d seq=%d n=%d staged", req.peer, req.seq, s.N)
			case errors.As(err, &abort):
				// The DMA engine aborted the staging copy: release the
				// region and fall back to sending straight from
				// co-processor memory.
				r.arena.release(reg)
				useOffload = false
				r.m.offFallback.Inc()
				r.c.fallback(p.Now(), req.peer, s.N)
				r.trace("offload-abort", "to=%d seq=%d n=%d falling back", req.peer, req.seq, s.N)
			default:
				return err
			}
		} else {
			useOffload = false
			r.m.offFallback.Inc()
		}
	}
	if !useOffload {
		mr, err := r.mrCache.Get(p, s.Buf.Dom, s.Addr(), s.N)
		if err != nil {
			return err
		}
		req.advAddr = s.Addr()
		req.advKey = mr.RKey
		req.srcMR = mr
		req.heldMRs = append(req.heldMRs, mr)
	}
	r.sendsBySeq[req.peer][req.seq] = req

	// Receiver-first: an RTR for this sequence may already be here.
	if rtr, ok := r.earlyRTR[req.peer][req.seq]; ok {
		delete(r.earlyRTR[req.peer], req.seq)
		r.trace("recv-first", "to=%d seq=%d RTR was waiting", req.peer, req.seq)
		return r.rndvWrite(p, req, rtr)
	}
	h := header{kind: pktRTS, tag: int32(req.tag), seq: req.seq, raddr: req.advAddr, rkey: req.advKey, rsize: s.N}
	if err := r.ctrlSend(p, req.peer, h); err != nil {
		return err
	}
	req.state = stRTSSent
	r.trace("rts-send", "to=%d seq=%d n=%d", req.peer, req.seq, s.N)
	return nil
}

// rndvWrite performs the receiver-first protocol's RDMA write into the
// buffer advertised by the RTR, followed by a DONE packet on completion.
func (r *Rank) rndvWrite(p *sim.Proc, req *Request, rtr header) error {
	if req.slice.N > rtr.rsize {
		// Receiver-first truncation: abort both sides.
		delete(r.sendsBySeq[req.peer], req.seq)
		req.complete(p, ErrTruncate)
		return r.ctrlSend(p, req.peer, header{kind: pktNackW, seq: req.seq})
	}
	wr := r.newSendWR()
	wr.Opcode = ib.OpRDMAWrite
	wr.Remote = ib.RemoteAddr{Addr: rtr.raddr, RKey: rtr.rkey}
	wr.Signaled = true
	if req.offReg != nil {
		wr.SGL = append(wr.SGL, ib.SGE{Addr: req.advAddr, Len: req.slice.N, LKey: req.offReg.lkey()})
	} else {
		// Reuse the registration advertised with the RTS; it is pinned
		// until this request completes.
		wr.SGL = append(wr.SGL, ib.SGE{Addr: req.slice.Addr(), Len: req.slice.N, LKey: req.srcMR.LKey})
	}
	// The WR rides in the action for replay under faults and for
	// recycling on completion otherwise.
	wrid := r.nextWR(wrAction{kind: wrRndvWrite, req: req, peer: req.peer, wr: wr})
	wr.WRID = wrid
	req.state = stWriting
	r.m.resolve(req, KindRecvRzv)
	if r.m.reg != nil {
		req.xferSpan = req.span.Child(p.Now(), "rdma-write").AttrInt("bytes", int64(req.slice.N))
	}
	r.c.wrPost(p.Now(), req.peer, wrRndvWrite, wrid, req.slice.N)
	r.trace3("rdma-write", "to=%d seq=%d n=%d", int64(req.peer), int64(req.seq), int64(req.slice.N))
	return r.post(p, req.peer, wr)
}

// ctrlSend transmits a zero-payload control packet (control packets
// share the eager rings); with no credit available it is queued and
// drained by progress. Sequence-id matching makes the resulting
// reordering harmless.
func (r *Rank) ctrlSend(p *sim.Proc, dst int, h header) error {
	ps := r.peers[dst]
	if ps.credits <= 1 || len(ps.pendingCtrl) > 0 {
		ps.pendingCtrl = append(ps.pendingCtrl, h)
		return nil
	}
	return r.sendPacket(p, dst, h, nil, wrAction{kind: wrCtrl, peer: dst})
}

// Irecv starts a nonblocking receive into s from src (or AnySource)
// with tag (or AnyTag).
func (r *Rank) Irecv(p *sim.Proc, src, tag int, s Slice) (*Request, error) {
	if src != AnySource && (src < 0 || src >= r.w.Size()) {
		return nil, ErrBadRank
	}
	req := &Request{r: r, peer: src, tag: tag, anyTag: tag == AnyTag, slice: s, startT: p.Now()}
	if r.m.reg != nil {
		req.span = r.m.span(req.startT, "recv")
		req.span.AttrInt("src", int64(src)).AttrInt("bytes", int64(s.N))
	}
	if r.c.on() {
		req.cid = r.c.nextCID()
		r.c.recvPost(p.Now(), req)
	}
	if src == r.id {
		r.m.resolve(req, KindSelf)
		r.selfRecv(p, req)
		return req, nil
	}
	if src != AnySource {
		if _, err := r.ensurePeer(p, src); err != nil {
			return nil, err
		}
	}
	// Drain arrived packets first: an RTS already in the ring turns a
	// would-be receiver-first handshake into a direct sender-first read.
	r.progress(p)
	if src == AnySource {
		// §IV-B3: an ANY_SOURCE receive locks sequence assignment for
		// all later receives until it finds its match.
		if r.anyActive == nil {
			r.anyActive = req
			r.m.anyLocks.Inc()
			r.c.anyLock(p.Now(), req.cid)
			r.matchAnyAgainstUnexpected(p)
		} else {
			r.deferred = append(r.deferred, req)
			r.c.anyDefer(p.Now(), req.cid)
		}
		return req, nil
	}
	if r.anyActive != nil {
		// Locked: later receives cannot get a sequence id yet.
		r.deferred = append(r.deferred, req)
		r.c.anyDefer(p.Now(), req.cid)
		return req, nil
	}
	r.bindRecv(p, req, src)
	return req, nil
}

// bindRecv assigns the next per-pair sequence id to a receive and
// matches it against unexpected arrivals, possibly sending an RTR.
func (r *Rank) bindRecv(p *sim.Proc, req *Request, src int) {
	req.peer = src
	req.seq = r.recvSeq[src]
	r.recvSeq[src]++
	req.hasSeq = true
	req.span.AttrInt("seq", int64(req.seq))
	r.c.recvBind(p.Now(), req)
	if a, ok := r.unexpected[src][req.seq]; ok {
		delete(r.unexpected[src], req.seq)
		r.matchArrival(p, req, a)
		return
	}
	r.expRecv[src][req.seq] = req
	req.state = stPosted
	if req.slice.N > r.w.Cfg.EagerMax {
		// Receiver-first rendezvous: advertise the receive buffer.
		mr, err := r.mrCache.Get(p, req.slice.Buf.Dom, req.slice.Addr(), req.slice.N)
		if err != nil {
			req.complete(p, err)
			delete(r.expRecv[src], req.seq)
			return
		}
		req.heldMRs = append(req.heldMRs, mr)
		h := header{kind: pktRTR, tag: int32(req.tag), seq: req.seq, raddr: req.slice.Addr(), rkey: mr.RKey, rsize: req.slice.N}
		if err := r.ctrlSend(p, src, h); err != nil {
			req.complete(p, err)
			delete(r.expRecv[src], req.seq)
			return
		}
		req.state = stRTRWait
		r.trace3("rtr-send", "to=%d seq=%d n=%d", int64(src), int64(req.seq), int64(req.slice.N))
	}
}

// tagsMatch applies MPI tag-matching rules between a receive request and
// a packet header.
func tagsMatch(req *Request, h header) bool {
	if req.anyTag || h.anyTag {
		return true
	}
	return int32(req.tag) == h.tag
}

// newArrival hands out a pooled arrival record. handlePacket builds one
// per inbound data packet, so an unpooled record would be a per-event
// heap allocation on the progress path.
func (r *Rank) newArrival(h header, data []byte) *arrival {
	n := len(r.arrivalFree)
	if n == 0 {
		//simlint:ignore hotalloc pool refill: matchArrival recycles every record, amortizing this over the run
		return &arrival{h: h, data: data}
	}
	a := r.arrivalFree[n-1]
	r.arrivalFree = r.arrivalFree[:n-1]
	a.h, a.data = h, data
	return a
}

// recycleArrival returns a consumed arrival to the free list. Callers
// must have copied the payload out first; dropping the data reference
// here lets the ring buffer (or copied-out slice) be reclaimed.
func (r *Rank) recycleArrival(a *arrival) {
	a.data = nil
	r.arrivalFree = append(r.arrivalFree, a)
}

// matchArrival pairs a posted receive with an unexpected arrival
// (eager payload or RTS). The arrival record is recycled on return:
// both arms copy what they need out of it before completing.
func (r *Rank) matchArrival(p *sim.Proc, req *Request, a *arrival) {
	defer r.recycleArrival(a)
	if !tagsMatch(req, a.h) {
		req.complete(p, ErrTagMismatch)
		return
	}
	r.m.matchLat.ObserveDuration(p.Now() - req.startT)
	switch a.h.kind {
	case pktEager:
		if a.h.payload > req.slice.N {
			req.complete(p, ErrTruncate)
			return
		}
		r.m.resolve(req, KindEager)
		copy(req.slice.Bytes(), a.data)
		p.Sleep(r.w.Plat.CopyCost(r.v.Loc(), a.h.payload))
		req.status = Status{Source: int(a.h.src), Tag: int(a.h.tag), Len: a.h.payload}
		req.complete(p, nil)
	case pktRTS:
		r.startRead(p, req, a.h)
	default:
		panic(fmt.Sprintf("core: arrival of kind %d cannot match a receive", a.h.kind))
	}
}

// startRead runs the sender-first protocol's receiver half: RDMA read
// from the advertised buffer, then DONE.
func (r *Rank) startRead(p *sim.Proc, req *Request, rts header) {
	// An RTR already sent for this receive means both sides started
	// the handshake at once: the simultaneous send/receive rendezvous.
	simul := req.state == stRTRWait
	if rts.rsize > req.slice.N {
		// Sender-rendezvous / receiver-eager mis-prediction: the send is
		// larger than the receive; the receiver issues an MPI error. A
		// NACK is still sent so the sender does not hang.
		req.complete(p, ErrTruncate)
		if err := r.ctrlSend(p, int(rts.src), header{kind: pktNack, seq: rts.seq}); err != nil {
			panic(err)
		}
		return
	}
	mr, err := r.mrCache.Get(p, req.slice.Buf.Dom, req.slice.Addr(), rts.rsize)
	if err != nil {
		req.complete(p, err)
		return
	}
	req.heldMRs = append(req.heldMRs, mr)
	req.peer = int(rts.src)
	req.status = Status{Source: int(rts.src), Tag: int(rts.tag), Len: rts.rsize}
	wr := r.newSendWR()
	wr.Opcode = ib.OpRDMARead
	wr.Remote = ib.RemoteAddr{Addr: rts.raddr, RKey: rts.rkey}
	wr.Signaled = true
	wr.SGL = append(wr.SGL, ib.SGE{Addr: req.slice.Addr(), Len: rts.rsize, LKey: mr.LKey})
	wrid := r.nextWR(wrAction{kind: wrRndvRead, req: req, peer: int(rts.src), wr: wr})
	wr.WRID = wrid
	req.state = stReading
	req.seq = rts.seq
	if simul {
		r.m.resolve(req, KindSimulRzv)
	} else {
		r.m.resolve(req, KindSenderRzv)
	}
	if r.m.reg != nil {
		req.xferSpan = req.span.Child(p.Now(), "rdma-read").AttrInt("bytes", int64(rts.rsize))
	}
	r.c.wrPost(p.Now(), int(rts.src), wrRndvRead, wrid, rts.rsize)
	r.trace3("rdma-read", "from=%d seq=%d n=%d", int64(rts.src), int64(rts.seq), int64(rts.rsize))
	if err := r.post(p, int(rts.src), wr); err != nil {
		req.complete(p, err)
	}
}

// matchAnyAgainstUnexpected tries to satisfy the active ANY_SOURCE
// receive from already-arrived packets: the first packet whose sequence
// id is the next expected for its pair and whose tag matches.
func (r *Rank) matchAnyAgainstUnexpected(p *sim.Proc) {
	req := r.anyActive
	if req == nil {
		return
	}
	for src := 0; src < r.w.Size(); src++ {
		if src == r.id {
			continue
		}
		next := r.recvSeq[src]
		a, ok := r.unexpected[src][next]
		if !ok || !tagsMatch(req, a.h) {
			continue
		}
		delete(r.unexpected[src], next)
		r.recvSeq[src]++
		req.hasSeq = true
		req.seq = next
		r.anyActive = nil
		r.c.recvBindTo(p.Now(), req, src)
		r.matchArrival(p, req, a)
		r.drainDeferred(p)
		return
	}
}

// drainDeferred assigns sequence ids to receives that were blocked by
// the ANY_SOURCE lock, in posting order, stopping if another ANY_SOURCE
// receive re-locks.
func (r *Rank) drainDeferred(p *sim.Proc) {
	for len(r.deferred) > 0 && r.anyActive == nil {
		req := r.deferred[0]
		r.deferred = r.deferred[1:]
		if req.peer == AnySource {
			r.anyActive = req
			r.m.anyLocks.Inc()
			r.c.anyLock(p.Now(), req.cid)
			r.matchAnyAgainstUnexpected(p)
			return
		}
		r.bindRecv(p, req, req.peer)
	}
}

// ---- Self (loopback) messaging ----

func (r *Rank) selfSend(p *sim.Proc, req *Request) {
	r.Stats.SelfMsgs++
	seq := r.selfSendSeq
	r.selfSendSeq++
	if rr, ok := r.expRecv[r.id][seq]; ok {
		delete(r.expRecv[r.id], seq)
		r.deliverSelf(p, req, rr)
		return
	}
	data := make([]byte, req.slice.N)
	copy(data, req.slice.Bytes())
	r.selfUnexpected[seq] = &arrival{h: header{kind: pktEager, src: uint16(r.id), tag: int32(req.tag), seq: seq, payload: req.slice.N}, data: data}
	req.complete(p, nil)
}

func (r *Rank) selfRecv(p *sim.Proc, req *Request) {
	seq := r.selfRecvSeq
	r.selfRecvSeq++
	req.seq = seq
	if a, ok := r.selfUnexpected[seq]; ok {
		delete(r.selfUnexpected, seq)
		if !tagsMatch(req, a.h) {
			req.complete(p, ErrTagMismatch)
			return
		}
		if a.h.payload > req.slice.N {
			req.complete(p, ErrTruncate)
			return
		}
		copy(req.slice.Bytes(), a.data)
		p.Sleep(r.w.Plat.CopyCost(r.v.Loc(), a.h.payload))
		req.status = Status{Source: r.id, Tag: int(a.h.tag), Len: a.h.payload}
		req.complete(p, nil)
		return
	}
	r.expRecv[r.id][seq] = req
	req.state = stPosted
}

func (r *Rank) deliverSelf(p *sim.Proc, send, recv *Request) {
	if !tagsMatch(recv, header{tag: int32(send.tag)}) {
		send.complete(p, nil)
		recv.complete(p, ErrTagMismatch)
		return
	}
	if send.slice.N > recv.slice.N {
		send.complete(p, nil)
		recv.complete(p, ErrTruncate)
		return
	}
	copy(recv.slice.Bytes(), send.slice.Bytes())
	p.Sleep(r.w.Plat.CopyCost(r.v.Loc(), send.slice.N))
	recv.status = Status{Source: r.id, Tag: send.tag, Len: send.slice.N}
	send.complete(p, nil)
	recv.complete(p, nil)
}

// ---- Progress engine ----

// progress drives all protocol state: consumes ring packets, drains the
// CQ, returns credits and retries credit-starved sends. It reports
// whether any work was done.
//
//simlint:hot
func (r *Rank) progress(p *sim.Proc) bool {
	did := false
	// Ring packets, per peer, in order. Iterating the sorted active
	// list keeps the cost proportional to the rank's communication
	// degree rather than the world size — the property that makes
	// thousand-rank sparse workloads affordable.
	for _, i := range r.active {
		ps := r.peers[i]
		for {
			h, payload, ok := ps.in.peek()
			if !ok {
				break
			}
			if h.psn < ps.recvPSN {
				// A replayed write whose original copy was already
				// delivered (the fault hit after the data landed): drop
				// it without advancing the cursor, re-applying its
				// piggybacked credits, or returning the slot.
				ps.in.discard()
				r.Stats.ReplaysDeduped++
				r.m.replaysDeduped.Inc()
				r.c.replayDrop(p.Now(), i, h.psn)
				r.trace3("replay-drop", "from=%d psn=%d expect=%d", int64(i), int64(h.psn), int64(ps.recvPSN))
				did = true
				continue
			}
			if h.psn > ps.recvPSN {
				panic(fmt.Sprintf("core: rank %d: psn gap from %d: got %d want %d", r.id, i, h.psn, ps.recvPSN))
			}
			ps.recvPSN++
			p.Sleep(r.w.Plat.PollCost(r.v.Loc()) + r.v.RecvOverhead(h.payload))
			r.c.pktRecv(p.Now(), i, h)
			r.handlePacket(p, i, h, payload)
			ps.in.consume()
			ps.toReturn++
			did = true
		}
	}
	// Completions.
	for {
		n := r.cq.PollInto(p, r.cqeBuf[:])
		if n == 0 {
			break
		}
		for _, e := range r.cqeBuf[:n] {
			r.handleCQE(p, e)
		}
		did = true
	}
	// Reissue WRs that were formed while their QP sat in the error
	// state (between the fault and the CQE that triggers recovery);
	// recovery has reconnected the QP by the time the CQ drains.
	if r.faultsOn() {
		for _, i := range r.active {
			ps := r.peers[i]
			for len(ps.postponed) > 0 && ps.qp.State == ib.QPConnected {
				wrid := ps.postponed[0]
				ps.postponed = ps.postponed[1:]
				act := r.wrMap[wrid]
				if err := r.reissue(p, wrid, act); err != nil {
					delete(r.wrMap, wrid)
					r.failWR(p, act, err)
				}
				did = true
			}
		}
	}
	// Retry credit-starved control packets, then eager sends.
	for _, i := range r.active {
		ps := r.peers[i]
		for ps.credits > 1 && len(ps.pendingCtrl) > 0 {
			h := ps.pendingCtrl[0]
			ps.pendingCtrl = ps.pendingCtrl[1:]
			if err := r.sendPacket(p, i, h, nil, wrAction{kind: wrCtrl, peer: i}); err != nil {
				panic(err)
			}
			did = true
		}
		for ps.credits > 1 && len(ps.pendingSends) > 0 {
			req := ps.pendingSends[0]
			ps.pendingSends = ps.pendingSends[1:]
			h := header{kind: pktEager, tag: int32(req.tag), seq: req.seq}
			if err := r.sendPacket(p, i, h, req.slice.Bytes(), wrAction{kind: wrEager, req: req}); err != nil {
				req.complete(p, err)
				continue
			}
			req.state = stEagerSent
			did = true
		}
		// Explicit credit return only when the peer is about to starve:
		// normal bidirectional traffic returns credits by piggyback. One
		// ring slot per direction is reserved for these (data-class
		// packets stop at credits==1), so a starved pair always
		// unwedges: reaching credits==0 implies a credit packet is in
		// flight toward the peer.
		if ps.toReturn >= ps.out.slots-1 && ps.credits > 0 {
			h := header{kind: pktCredit, seq: 0}
			if err := r.sendPacket(p, i, h, nil, wrAction{kind: wrCtrl, peer: i}); err == nil {
				r.Stats.CreditPackets++
				r.trace1("credit", "to=%d returned", int64(i))
				did = true
			}
		}
	}
	return did
}

// handlePacket dispatches one ring packet.
//
//simlint:hot
func (r *Rank) handlePacket(p *sim.Proc, src int, h header, payload []byte) {
	ps := r.peers[src]
	ps.credits += int(h.credits)
	switch h.kind {
	case pktCredit:
		// Credits already applied.
	case pktEager, pktRTS:
		// Try the posted receive for this (pair, seq) first.
		if req, ok := r.expRecv[src][h.seq]; ok {
			delete(r.expRecv[src], h.seq)
			if h.kind == pktEager && req.state == stRTRWait {
				// Sender-eager / receiver-rendezvous mis-prediction: the
				// receiver recognizes it on the eager packet, copies the
				// data and completes; its earlier RTR will be dropped by
				// the sender thanks to the sequence id.
				r.m.mispredicts.Inc()
				r.c.mispredict(p.Now(), src, h.seq)
				r.matchArrival(p, req, r.newArrival(h, payload))
				return
			}
			r.matchArrival(p, req, r.newArrival(h, payload))
			return
		}
		// Then the ANY_SOURCE receive: it takes its sequence id from the
		// first matching packet.
		if r.anyActive != nil && h.seq == r.recvSeq[src] && tagsMatch(r.anyActive, h) {
			r.trace2("any-source-match", "from=%d seq=%d", int64(src), int64(h.seq))
			req := r.anyActive
			r.anyActive = nil
			r.recvSeq[src]++
			req.seq = h.seq
			req.hasSeq = true
			r.c.recvBindTo(p.Now(), req, src)
			r.matchArrival(p, req, r.newArrival(h, payload))
			r.drainDeferred(p)
			return
		}
		// Unexpected: copy eager payloads out of the ring so the slot
		// can be recycled.
		a := r.newArrival(h, nil)
		if h.kind == pktEager && h.payload > 0 {
			if cap(a.buf) < h.payload {
				//simlint:ignore hotalloc pool growth: the record keeps its backing across recycles, so steady-state unexpected traffic reuses it
				a.buf = make([]byte, h.payload)
			}
			a.data = a.buf[:h.payload]
			copy(a.data, payload)
			p.Sleep(r.w.Plat.CopyCost(r.v.Loc(), h.payload))
		}
		r.unexpected[src][h.seq] = a
		r.Stats.Unexpected++
	case pktRTR:
		if req, ok := r.sendsBySeq[src][h.seq]; ok {
			switch req.state {
			case stRTSSent:
				// Simultaneous send/receive rendezvous: the sender
				// disregards the RTR and waits for the receiver's read.
				req.simul = true
				r.m.resolve(req, KindSimulRzv)
				r.trace2("simultaneous-rtr-drop", "from=%d seq=%d", int64(src), int64(h.seq))
			case stEagerSent, stEagerQueued, stDone:
				// Sender-eager mis-prediction: drop the RTR; the
				// sequence id guarantees it belonged to this send only.
				r.m.mispredicts.Inc()
				r.c.mispredict(p.Now(), src, h.seq)
				r.trace2("mispredict-rtr-drop", "from=%d seq=%d", int64(src), int64(h.seq))
			default:
				if err := r.rndvWrite(p, req, h); err != nil {
					req.complete(p, err)
				}
			}
			return
		}
		// RTR before the local Isend (receiver-first): stash it in the
		// outbound sequence space.
		r.earlyRTR[src][h.seq] = h
	case pktDone:
		req, ok := r.sendsBySeq[src][h.seq]
		if !ok {
			panic(fmt.Sprintf("core: rank %d: DONE from %d seq %d matches no send", r.id, src, h.seq))
		}
		delete(r.sendsBySeq[src], h.seq)
		// The DONE closes the rendezvous round trip begun at the
		// RTS; a dropped RTR already classified it simultaneous.
		if !req.simul {
			r.m.resolve(req, KindSenderRzv)
		}
		r.m.rndvRTT.ObserveDuration(p.Now() - req.startT)
		req.complete(p, nil)
	case pktDoneW:
		// Receiver-first: the sender's write plus this DONE completed a
		// receive that was parked in stRTRWait.
		req, ok := r.expRecv[src][h.seq]
		if !ok {
			panic(fmt.Sprintf("core: rank %d: DONE-W from %d seq %d matches no receive", r.id, src, h.seq))
		}
		delete(r.expRecv[src], h.seq)
		r.m.resolve(req, KindRecvRzv)
		req.status = Status{Source: src, Tag: req.tag, Len: h.rsize}
		req.complete(p, nil)
	case pktNack:
		req, ok := r.sendsBySeq[src][h.seq]
		if !ok {
			panic(fmt.Sprintf("core: rank %d: NACK from %d seq %d matches no send", r.id, src, h.seq))
		}
		delete(r.sendsBySeq[src], h.seq)
		req.complete(p, ErrTruncate)
	case pktNackW:
		req, ok := r.expRecv[src][h.seq]
		if !ok {
			panic(fmt.Sprintf("core: rank %d: NACK-W from %d seq %d matches no receive", r.id, src, h.seq))
		}
		delete(r.expRecv[src], h.seq)
		req.complete(p, ErrTruncate)
	default:
		panic(fmt.Sprintf("core: rank %d: unknown packet kind %d", r.id, h.kind))
	}
}

// handleCQE routes one completion.
//
//simlint:hot
func (r *Rank) handleCQE(p *sim.Proc, e ib.CQE) {
	act, ok := r.wrMap[e.WRID]
	if !ok {
		panic(fmt.Sprintf("core: rank %d: completion for unknown WR %d", r.id, e.WRID))
	}
	delete(r.wrMap, e.WRID)
	r.c.cqe(p.Now(), act.peer, act.kind, e.WRID)
	if e.Status != ib.StatusSuccess {
		if e.Status == ib.StatusRetryExcErr && r.faultsOn() {
			r.recoverWR(p, e.WRID, act)
			return
		}
		if act.req != nil {
			act.req.complete(p, wrFailErr(e.Status))
		}
		return
	}
	// The hardware is done with the WR (and any fault-mode packet
	// snapshot): return them to the pools. Under an active fault plan
	// the WR stays retained — recovery may still replay it.
	if act.wr != nil && !r.faultsOn() {
		r.recycleWR(act.wr)
	}
	if act.pkt != nil {
		r.recyclePkt(act.pkt)
	}
	switch act.kind {
	case wrEager:
		act.req.complete(p, nil)
	case wrCtrl:
		// Control packet delivered; nothing to do.
	case wrRndvWrite:
		// Receiver-first write done: tell the receiver.
		req := act.req
		req.xferSpan.End(p.Now())
		delete(r.sendsBySeq[req.peer], req.seq)
		done := header{kind: pktDoneW, seq: req.seq, rsize: req.slice.N}
		if err := r.ctrlSend(p, req.peer, done); err != nil {
			req.complete(p, err)
			return
		}
		req.complete(p, nil)
	case wrRndvRead:
		// Sender-first read done: tell the sender.
		req := act.req
		req.xferSpan.End(p.Now())
		done := header{kind: pktDone, seq: req.seq, rsize: req.status.Len}
		if err := r.ctrlSend(p, act.peer, done); err != nil {
			req.complete(p, err)
			return
		}
		req.complete(p, nil)
	}
}

// Wait blocks until the request completes, driving progress.
func (r *Rank) Wait(p *sim.Proc, req *Request) (Status, error) {
	waiting := false
	if !req.completed && r.c.on() {
		r.c.waitStart(p.Now(), req.cid)
		waiting = true
	}
	for !req.completed {
		if r.fatal != nil {
			// Transport recovery gave up on a control packet: protocol
			// progress is no longer guaranteed, so abort instead of
			// spinning into a deadlock. Completing the request here
			// closes its spans and releases its pins — without it, every
			// request in flight at the fatal error leaks an open span.
			req.complete(p, r.fatal)
			break
		}
		if !r.progress(p) {
			r.v.HCA().Doorbell.Wait(p)
		}
	}
	if waiting {
		r.c.waitEnd(p.Now(), req.cid)
	}
	return req.status, req.err
}

// WaitAll waits for every request; the first error wins.
func (r *Rank) WaitAll(p *sim.Proc, reqs ...*Request) error {
	var first error
	for _, q := range reqs {
		if _, err := r.Wait(p, q); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Test drives progress once and reports whether the request completed.
func (r *Rank) Test(p *sim.Proc, req *Request) bool {
	if !req.completed {
		r.progress(p)
	}
	return req.completed
}

// Send is the blocking send.
func (r *Rank) Send(p *sim.Proc, dst, tag int, s Slice) error {
	req, err := r.Isend(p, dst, tag, s)
	if err != nil {
		return err
	}
	_, err = r.Wait(p, req)
	return err
}

// Recv is the blocking receive.
func (r *Rank) Recv(p *sim.Proc, src, tag int, s Slice) (Status, error) {
	req, err := r.Irecv(p, src, tag, s)
	if err != nil {
		return Status{}, err
	}
	return r.Wait(p, req)
}

// Sendrecv runs a simultaneous blocking exchange.
func (r *Rank) Sendrecv(p *sim.Proc, dst, stag int, sbuf Slice, src, rtag int, rbuf Slice) (Status, error) {
	sreq, err := r.Isend(p, dst, stag, sbuf)
	if err != nil {
		return Status{}, err
	}
	rreq, err := r.Irecv(p, src, rtag, rbuf)
	if err != nil {
		// Drain the already-posted send before bailing out.
		return Status{}, errors.Join(err, r.WaitAll(p, sreq))
	}
	if _, err := r.Wait(p, sreq); err != nil {
		// Drain the already-posted receive before bailing out.
		return Status{}, errors.Join(err, r.WaitAll(p, rreq))
	}
	return r.Wait(p, rreq)
}
