package core

// Property test of the buffer cache pool under delegated-command
// faults: every RegMR/DeregMR rides the DCFA CMD channel, which the
// plan makes transiently reject, so the client retries with backoff.
// Whatever the fault pattern, the cache must never double-register a
// range, never lose a pinned registration, and tear down to zero.

import (
	"testing"

	"repro/internal/dcfa"
	"repro/internal/faults"
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/pcie"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// cacheFuzzRNG is a self-contained splitmix64 for the workload shape
// (never math/rand: runs must be reproducible from the seed alone).
type cacheFuzzRNG struct{ s uint64 }

func (r *cacheFuzzRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *cacheFuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func TestMRCacheSurvivesCmdFaults(t *testing.T) {
	const seed = 11
	eng := sim.NewEngine()
	plat := perfmodel.Default()
	fab := ib.NewFabric(eng, plat)
	node := machine.NewNode(0)
	hca := fab.AttachHCA(node)
	bus := pcie.Attach(eng, plat, node)
	mic, daemon := dcfa.New(eng, plat, node, hca, bus)

	plan := faults.NewPlan(seed)
	plan.Cmd = 0.2
	inj := faults.New(eng, plan)
	fab.Faults = inj
	bus.Faults = inj
	mic.SetFaults(inj)

	reg := metrics.New()
	v := DCFAVerbs{V: mic}
	eng.Spawn("test", func(p *sim.Proc) {
		pd, err := v.AllocPD(p)
		if err != nil {
			t.Error(err)
			return
		}
		c := NewMRCache(v, pd, 4)
		c.instrument(reg, "test")

		const nbufs = 8
		bufs := make([]*machine.Buffer, nbufs)
		for i := range bufs {
			bufs[i] = node.Mic.Alloc(16 << 10)
		}
		rng := &cacheFuzzRNG{s: seed}
		var held []*ib.MR
		for it := 0; it < 300; it++ {
			if len(held) > 0 && rng.intn(2) == 0 {
				k := rng.intn(len(held))
				c.Release(p, held[k])
				held = append(held[:k], held[k+1:]...)
				continue
			}
			b := bufs[rng.intn(nbufs)]
			off := uint64(rng.intn(8 << 10))
			n := 1 + rng.intn(8<<10)
			mr, err := c.Get(p, b.Dom, b.Addr+off, n)
			if err != nil {
				t.Errorf("iter %d: Get: %v", it, err)
				return
			}
			if mr.Addr > b.Addr+off || mr.Addr+uint64(mr.Len) < b.Addr+off+uint64(n) {
				t.Errorf("iter %d: MR [%#x,+%d) does not cover [%#x,+%d)", it, mr.Addr, mr.Len, b.Addr+off, n)
				return
			}
			held = append(held, mr)
		}
		for _, mr := range held {
			c.Release(p, mr)
		}
		if c.Pinned() != 0 {
			t.Errorf("pinned=%d after releasing everything", c.Pinned())
		}
		if err := c.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		if c.Len() != 0 {
			t.Errorf("len=%d after flush", c.Len())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if g := reg.Gauge("test", "mrcache.pinned-bytes").Value(); g != 0 {
		t.Errorf("pinned-bytes gauge = %d at teardown", g)
	}
	// The daemon's hash table holds delegated MRs: every region the
	// cache registered must have been deregistered exactly once,
	// despite the faulted command channel (a lost dereg would leave
	// objects behind; a double register would also inflate the count).
	if live := daemon.LiveObjects(); live != 0 {
		t.Errorf("daemon holds %d delegated MRs at teardown, want 0", live)
	}
	if inj.CmdFaults == 0 {
		t.Fatal("plan injected no CMD faults; raise the rate or iterations")
	}
	if got := mic.CmdRetries + mic.CmdTimeouts; got != inj.CmdFaults {
		t.Errorf("recovery mismatch: retries+timeouts = %d, injected = %d", got, inj.CmdFaults)
	}
	if mic.CmdTimeouts != 0 {
		t.Errorf("%d commands timed out at a transient 0.2 rate", mic.CmdTimeouts)
	}
}
