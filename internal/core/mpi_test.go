package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// pair builds a 2-node DCFA world (offload on unless stated otherwise).
func pair(offload bool) (*cluster.Cluster, *core.World) {
	c := cluster.New(perfmodel.Default(), 2)
	return c, c.DCFAWorld(2, offload)
}

func fill(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(int(seed) + i*7)
	}
}

func TestEagerPingPong(t *testing.T) {
	_, w := pair(true)
	const n = 1024
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(n)
		if r.ID() == 0 {
			fill(buf.Data, 1)
			if err := r.Send(p, 1, 42, core.Whole(buf)); err != nil {
				return err
			}
			echo := r.Mem(n)
			if _, err := r.Recv(p, 1, 43, core.Whole(echo)); err != nil {
				return err
			}
			if !bytes.Equal(echo.Data, buf.Data) {
				return errors.New("echo mismatch")
			}
			return nil
		}
		st, err := r.Recv(p, 0, 42, core.Whole(buf))
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 42 || st.Len != n {
			return fmt.Errorf("status %+v", st)
		}
		return r.Send(p, 0, 43, core.Whole(buf))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFourByteRTTNear15us(t *testing.T) {
	_, w := pair(true)
	var rtt sim.Duration
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(4)
		if r.ID() == 0 {
			if err := r.Barrier(p); err != nil {
				return err
			}
			start := p.Now()
			const iters = 10
			for i := 0; i < iters; i++ {
				if err := r.Send(p, 1, 0, core.Whole(buf)); err != nil {
					return err
				}
				if _, err := r.Recv(p, 1, 0, core.Whole(buf)); err != nil {
					return err
				}
			}
			rtt = (p.Now() - start) / iters
			return nil
		}
		if err := r.Barrier(p); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if _, err := r.Recv(p, 0, 0, core.Whole(buf)); err != nil {
				return err
			}
			if err := r.Send(p, 0, 0, core.Whole(buf)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: DCFA-MPI spends ~15 µs for a 4-byte round trip.
	if rtt < 12*sim.Microsecond || rtt > 19*sim.Microsecond {
		t.Fatalf("4-byte RTT %v, want ≈15µs", rtt)
	}
}

// rendezvousRoundTrip exercises a single large transfer with the given
// relative timing of send and receive.
func rendezvousRoundTrip(t *testing.T, n int, senderDelay, receiverDelay sim.Duration, offload bool) {
	t.Helper()
	_, w := pair(offload)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(n)
		if r.ID() == 0 {
			fill(buf.Data, 9)
			if err := r.Barrier(p); err != nil {
				return err
			}
			p.Sleep(senderDelay)
			return r.Send(p, 1, 7, core.Whole(buf))
		}
		if err := r.Barrier(p); err != nil {
			return err
		}
		p.Sleep(receiverDelay)
		st, err := r.Recv(p, 0, 7, core.Whole(buf))
		if err != nil {
			return err
		}
		if st.Len != n {
			return fmt.Errorf("received %d bytes, want %d", st.Len, n)
		}
		want := make([]byte, n)
		fill(want, 9)
		if !bytes.Equal(buf.Data, want) {
			return errors.New("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSenderFirstRendezvous(t *testing.T) {
	// Sender way ahead: RTS waits at the receiver, which RDMA-reads.
	rendezvousRoundTrip(t, 256<<10, 0, 500*sim.Microsecond, false)
}

func TestReceiverFirstRendezvous(t *testing.T) {
	// Receiver way ahead: RTR waits at the sender, which RDMA-writes.
	rendezvousRoundTrip(t, 256<<10, 500*sim.Microsecond, 0, false)
}

func TestSimultaneousRendezvous(t *testing.T) {
	// Both sides post at once: RTS and RTR cross on the wire; the
	// sender must disregard the RTR and the receiver must read.
	rendezvousRoundTrip(t, 256<<10, 0, 0, false)
}

func TestRendezvousWithOffloadAllTimings(t *testing.T) {
	for _, d := range []struct {
		name   string
		sd, rd sim.Duration
	}{
		{"sender-first", 0, 300 * sim.Microsecond},
		{"receiver-first", 300 * sim.Microsecond, 0},
		{"simultaneous", 0, 0},
	} {
		t.Run(d.name, func(t *testing.T) {
			rendezvousRoundTrip(t, 1<<20, d.sd, d.rd, true)
		})
	}
}

func TestEagerToRendezvousReceiverMisprediction(t *testing.T) {
	// Receiver posts a big buffer (predicts rendezvous, sends RTR);
	// sender sends a small eager message. The receiver must complete
	// from the eager packet; the sender must drop the stale RTR.
	_, w := pair(true)
	const small = 512
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			buf := r.Mem(small)
			fill(buf.Data, 3)
			if err := r.Barrier(p); err != nil {
				return err
			}
			p.Sleep(200 * sim.Microsecond) // let the RTR arrive first
			if err := r.Send(p, 1, 5, core.Whole(buf)); err != nil {
				return err
			}
			// Drive progress long enough to consume the stale RTR.
			return r.Barrier(p)
		}
		big := r.Mem(64 << 10)
		if err := r.Barrier(p); err != nil {
			return err
		}
		st, err := r.Recv(p, 0, 5, core.Whole(big))
		if err != nil {
			return err
		}
		if st.Len != small {
			return fmt.Errorf("len %d, want %d", st.Len, small)
		}
		want := make([]byte, small)
		fill(want, 3)
		if !bytes.Equal(big.Data[:small], want) {
			return errors.New("payload corrupted")
		}
		return r.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousToEagerReceiverErrors(t *testing.T) {
	// Sender rendezvous (large), receiver eager (small buffer): the
	// paper says "the receiver will issue an MPI error".
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			big := r.Mem(64 << 10)
			if err := r.Barrier(p); err != nil {
				return err
			}
			err := r.Send(p, 1, 5, core.Whole(big))
			if !errors.Is(err, core.ErrTruncate) {
				return fmt.Errorf("sender got %v, want ErrTruncate", err)
			}
			return nil
		}
		small := r.Mem(512)
		if err := r.Barrier(p); err != nil {
			return err
		}
		_, err := r.Recv(p, 0, 5, core.Whole(small))
		if !errors.Is(err, core.ErrTruncate) {
			return fmt.Errorf("receiver got %v, want ErrTruncate", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerTruncationError(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			buf := r.Mem(1024)
			if err := r.Barrier(p); err != nil {
				return err
			}
			return r.Send(p, 1, 5, core.Whole(buf))
		}
		small := r.Mem(100)
		if err := r.Barrier(p); err != nil {
			return err
		}
		_, err := r.Recv(p, 0, 5, core.Whole(small))
		if !errors.Is(err, core.ErrTruncate) {
			return fmt.Errorf("got %v, want ErrTruncate", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameTagPair(t *testing.T) {
	// Sequence ids pair the k-th send with the k-th receive.
	_, w := pair(true)
	const count = 50
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			for i := 0; i < count; i++ {
				buf := r.Mem(8)
				buf.Data[0] = byte(i)
				if err := r.Send(p, 1, 1, core.Whole(buf)); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < count; i++ {
			buf := r.Mem(8)
			if _, err := r.Recv(p, 0, 1, core.Whole(buf)); err != nil {
				return err
			}
			if buf.Data[0] != byte(i) {
				return fmt.Errorf("message %d out of order: got %d", i, buf.Data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchAtSameSeqErrors(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(8)
		if r.ID() == 0 {
			if err := r.Barrier(p); err != nil {
				return err
			}
			return r.Send(p, 1, 1, core.Whole(buf))
		}
		if err := r.Barrier(p); err != nil {
			return err
		}
		_, err := r.Recv(p, 0, 2, core.Whole(buf)) // wrong tag, same seq
		if !errors.Is(err, core.ErrTagMismatch) {
			return fmt.Errorf("got %v, want ErrTagMismatch", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagMatches(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(8)
		if r.ID() == 0 {
			return r.Send(p, 1, 1234, core.Whole(buf))
		}
		st, err := r.Recv(p, 0, core.AnyTag, core.Whole(buf))
		if err != nil {
			return err
		}
		if st.Tag != 1234 {
			return fmt.Errorf("status tag %d", st.Tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceBasic(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 3)
	w := c.DCFAWorld(3, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := r.Mem(8)
				st, err := r.Recv(p, core.AnySource, 1, core.Whole(buf))
				if err != nil {
					return err
				}
				if int(buf.Data[0]) != st.Source {
					return fmt.Errorf("payload says %d, status says %d", buf.Data[0], st.Source)
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources seen: %v", seen)
			}
			return nil
		}
		buf := r.Mem(8)
		buf.Data[0] = byte(r.ID())
		return r.Send(p, 0, 1, core.Whole(buf))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceLockDefersLaterRecvs(t *testing.T) {
	// While an ANY_SOURCE receive is unmatched, later receives are
	// locked; once it matches, the deferred receives proceed correctly.
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			anyBuf := r.Mem(8)
			reqAny, err := r.Irecv(p, core.AnySource, 1, core.Whole(anyBuf))
			if err != nil {
				return err
			}
			specBuf := r.Mem(8)
			reqSpec, err := r.Irecv(p, 1, 2, core.Whole(specBuf))
			if err != nil {
				return err
			}
			if err := r.WaitAll(p, reqAny, reqSpec); err != nil {
				return err
			}
			if anyBuf.Data[0] != 0xA1 || specBuf.Data[0] != 0xA2 {
				return fmt.Errorf("payloads %#x %#x", anyBuf.Data[0], specBuf.Data[0])
			}
			return nil
		}
		p.Sleep(100 * sim.Microsecond)
		b1 := r.Mem(8)
		b1.Data[0] = 0xA1
		if err := r.Send(p, 0, 1, core.Whole(b1)); err != nil {
			return err
		}
		b2 := r.Mem(8)
		b2.Data[0] = 0xA2
		return r.Send(p, 0, 2, core.Whole(b2))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingBatchBothDirections(t *testing.T) {
	_, w := pair(true)
	const count = 20
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		var reqs []*core.Request
		recvBufs := make([][]byte, count)
		for i := 0; i < count; i++ {
			sb := r.Mem(64)
			fill(sb.Data, byte(r.ID()*100+i))
			sq, err := r.Isend(p, other, i, core.Whole(sb))
			if err != nil {
				return err
			}
			rb := r.Mem(64)
			recvBufs[i] = rb.Data
			rq, err := r.Irecv(p, other, i, core.Whole(rb))
			if err != nil {
				return err
			}
			reqs = append(reqs, sq, rq)
		}
		if err := r.WaitAll(p, reqs...); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			want := make([]byte, 64)
			fill(want, byte(other*100+i))
			if !bytes.Equal(recvBufs[i], want) {
				return fmt.Errorf("message %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreditFlowControlManyEagerSends(t *testing.T) {
	// Far more eager messages than ring slots, receiver starts late:
	// flow control must queue and drain without loss or deadlock.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	w := c.DCFAWorld(2, true)
	count := plat.EagerSlots*3 + 7
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			var reqs []*core.Request
			for i := 0; i < count; i++ {
				b := r.Mem(16)
				b.Data[0] = byte(i)
				b.Data[1] = byte(i >> 8)
				q, err := r.Isend(p, 1, 1, core.Whole(b))
				if err != nil {
					return err
				}
				reqs = append(reqs, q)
			}
			return r.WaitAll(p, reqs...)
		}
		p.Sleep(2 * sim.Millisecond) // arrive late
		for i := 0; i < count; i++ {
			b := r.Mem(16)
			if _, err := r.Recv(p, 0, 1, core.Whole(b)); err != nil {
				return err
			}
			if got := int(b.Data[0]) | int(b.Data[1])<<8; got != i {
				return fmt.Errorf("message %d out of order: %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendRecv(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		sb := r.Mem(100)
		fill(sb.Data, byte(r.ID()))
		if err := r.Send(p, r.ID(), 9, core.Whole(sb)); err != nil {
			return err
		}
		rb := r.Mem(100)
		st, err := r.Recv(p, r.ID(), 9, core.Whole(rb))
		if err != nil {
			return err
		}
		if st.Source != r.ID() || !bytes.Equal(rb.Data, sb.Data) {
			return errors.New("self message corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		sb := r.Mem(256)
		fill(sb.Data, byte(10+r.ID()))
		rb := r.Mem(256)
		if _, err := r.Sendrecv(p, other, 3, core.Whole(sb), other, 3, core.Whole(rb)); err != nil {
			return err
		}
		want := make([]byte, 256)
		fill(want, byte(10+other))
		if !bytes.Equal(rb.Data, want) {
			return errors.New("sendrecv payload mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteMessages(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			return r.Send(p, 1, 0, core.Slice{})
		}
		st, err := r.Recv(p, 0, 0, core.Slice{})
		if err != nil {
			return err
		}
		if st.Len != 0 {
			return fmt.Errorf("len %d", st.Len)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadRankRejected(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if _, err := r.Isend(p, 99, 0, core.Slice{}); !errors.Is(err, core.ErrBadRank) {
			return fmt.Errorf("Isend to rank 99: %v", err)
		}
		if _, err := r.Irecv(p, -7, 0, core.Slice{}); !errors.Is(err, core.ErrBadRank) {
			return fmt.Errorf("Irecv from rank -7: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMRCacheHitsOnReusedBuffers(t *testing.T) {
	_, w := pair(false) // no offload so rendezvous registers user buffers
	const n = 64 << 10
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(n)
		other := 1 - r.ID()
		for i := 0; i < 5; i++ {
			if r.ID() == 0 {
				if err := r.Send(p, other, 1, core.Whole(buf)); err != nil {
					return err
				}
			} else {
				if _, err := r.Recv(p, other, 1, core.Whole(buf)); err != nil {
					return err
				}
			}
		}
		hits, misses := r.MRCacheStats()
		if hits == 0 {
			return fmt.Errorf("no MR cache hits after buffer reuse (hits=%d misses=%d)", hits, misses)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffloadEngagesAboveThreshold(t *testing.T) {
	c, w := pair(true)
	_ = c
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			big := r.Mem(64 << 10)
			if err := r.Send(p, 1, 1, core.Whole(big)); err != nil {
				return err
			}
			small := r.Mem(128)
			if err := r.Send(p, 1, 2, core.Whole(small)); err != nil {
				return err
			}
			if r.Stats.OffloadedSends != 1 {
				return fmt.Errorf("offloaded sends %d, want 1", r.Stats.OffloadedSends)
			}
			if r.Stats.EagerSends != 1 {
				return fmt.Errorf("eager sends %d, want 1", r.Stats.EagerSends)
			}
			return nil
		}
		b1 := r.Mem(64 << 10)
		if _, err := r.Recv(p, 0, 1, core.Whole(b1)); err != nil {
			return err
		}
		b2 := r.Mem(128)
		_, err := r.Recv(p, 0, 2, core.Whole(b2))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffloadImprovesLargeMessageTime(t *testing.T) {
	measure := func(offload bool) sim.Duration {
		_, w := pair(offload)
		var elapsed sim.Duration
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			const n = 1 << 20
			buf := r.Mem(n)
			if r.ID() == 0 {
				if err := r.Barrier(p); err != nil {
					return err
				}
				start := p.Now()
				if err := r.Send(p, 1, 1, core.Whole(buf)); err != nil {
					return err
				}
				if _, err := r.Recv(p, 1, 2, core.Whole(buf)); err != nil {
					return err
				}
				elapsed = p.Now() - start
				return nil
			}
			if err := r.Barrier(p); err != nil {
				return err
			}
			if _, err := r.Recv(p, 0, 1, core.Whole(buf)); err != nil {
				return err
			}
			return r.Send(p, 0, 2, core.Whole(buf))
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	direct := measure(false)
	offloaded := measure(true)
	if offloaded >= direct {
		t.Fatalf("offload (%v) not faster than direct (%v) for 1 MiB", offloaded, direct)
	}
	if ratio := float64(direct) / float64(offloaded); ratio < 1.8 {
		t.Fatalf("offload speedup %.2f×, want ≥1.8×", ratio)
	}
}

func TestHostWorldFasterSmallRTT(t *testing.T) {
	measure := func(host bool) sim.Duration {
		c := cluster.New(perfmodel.Default(), 2)
		var w *core.World
		if host {
			w = c.HostWorld(2)
		} else {
			w = c.DCFAWorld(2, true)
		}
		var rtt sim.Duration
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			buf := r.Mem(4)
			if err := r.Barrier(p); err != nil {
				return err
			}
			if r.ID() == 0 {
				start := p.Now()
				if err := r.Send(p, 1, 0, core.Whole(buf)); err != nil {
					return err
				}
				if _, err := r.Recv(p, 1, 0, core.Whole(buf)); err != nil {
					return err
				}
				rtt = p.Now() - start
				return nil
			}
			if _, err := r.Recv(p, 0, 0, core.Whole(buf)); err != nil {
				return err
			}
			return r.Send(p, 0, 0, core.Whole(buf))
		})
		if err != nil {
			t.Fatal(err)
		}
		return rtt
	}
	host := measure(true)
	phi := measure(false)
	if host >= phi {
		t.Fatalf("host RTT %v not below Phi RTT %v", host, phi)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		_, w := pair(true)
		var end sim.Time
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			buf := r.Mem(32 << 10)
			other := 1 - r.ID()
			for i := 0; i < 3; i++ {
				if r.ID() == 0 {
					if err := r.Send(p, other, 1, core.Whole(buf)); err != nil {
						return err
					}
					if _, err := r.Recv(p, other, 1, core.Whole(buf)); err != nil {
						return err
					}
				} else {
					if _, err := r.Recv(p, other, 1, core.Whole(buf)); err != nil {
						return err
					}
					if err := r.Send(p, other, 1, core.Whole(buf)); err != nil {
						return err
					}
				}
			}
			end = p.Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic: %v vs %v", got, first)
		}
	}
}

// Property: messages of arbitrary sizes and contents cross the eager /
// rendezvous / offload boundaries byte-exactly.
func TestQuickPayloadIntegrityAcrossProtocols(t *testing.T) {
	f := func(sizes []uint32, seed byte) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 6 {
			sizes = sizes[:6]
		}
		_, w := pair(true)
		ok := true
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			for i, s := range sizes {
				n := int(s%(256<<10)) + 1
				if r.ID() == 0 {
					b := r.Mem(n)
					fill(b.Data, seed+byte(i))
					if err := r.Send(p, 1, i, core.Whole(b)); err != nil {
						return err
					}
				} else {
					b := r.Mem(n)
					if _, err := r.Recv(p, 0, i, core.Whole(b)); err != nil {
						return err
					}
					want := make([]byte, n)
					fill(want, seed+byte(i))
					if !bytes.Equal(b.Data, want) {
						ok = false
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
