package core

import (
	"repro/internal/causal"
	"repro/internal/sim"
)

// rankCausal is the rank's handle on the causal-event recorder. Its
// zero value (profiling disabled) makes every emit a nil-check no-op,
// mirroring rankMetrics. All methods take values, never interfaces, so
// hot-path call sites allocate nothing.
type rankCausal struct {
	rec  *causal.Recorder
	rank int32

	// cid numbers requests rank-locally so lifecycle events of one
	// request can be correlated.
	cid uint64
	// collSeq numbers symmetric collective calls; SPMD programs call
	// them in the same order on every rank, which is what lets the
	// graph fan collective entries into exits without communicator
	// introspection.
	collSeq uint64
	// waitDepth > 0 marks events emitted while the rank is blocked in
	// Wait (the progress engine runs in the waiter's context).
	waitDepth int
}

func newRankCausal(rec *causal.Recorder, rank int) rankCausal {
	return rankCausal{rec: rec, rank: int32(rank)}
}

func (c *rankCausal) on() bool { return c.rec != nil }

func (c *rankCausal) emit(e causal.Event) {
	e.Rank = c.rank
	e.Wait = c.waitDepth > 0
	c.rec.Emit(e)
}

// nextCID allocates the next request id. Only called when profiling
// is on, so disabled runs carry cid 0 everywhere.
func (c *rankCausal) nextCID() uint64 {
	c.cid++
	return c.cid
}

func (c *rankCausal) sendPost(t sim.Time, req *Request) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvSendPost, Peer: int32(req.peer),
		Tag: int32(req.tag), Seq: req.seq, CID: req.cid, Bytes: int32(req.slice.N)})
}

func (c *rankCausal) recvPost(t sim.Time, req *Request) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvRecvPost, Peer: int32(req.peer),
		Tag: int32(req.tag), CID: req.cid, Bytes: int32(req.slice.N)})
}

func (c *rankCausal) recvBind(t sim.Time, req *Request) {
	c.recvBindTo(t, req, req.peer)
}

// recvBindTo emits the bind with an explicit source for wildcard
// receives, whose req.peer is updated later by the protocol.
func (c *rankCausal) recvBindTo(t sim.Time, req *Request, src int) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvRecvBind, Peer: int32(src),
		Tag: int32(req.tag), Seq: req.seq, CID: req.cid, Bytes: int32(req.slice.N)})
}

func (c *rankCausal) done(t sim.Time, req *Request, failed bool) {
	if c.rec == nil {
		return
	}
	kind := causal.EvRecvDone
	if req.isSend {
		kind = causal.EvSendDone
	}
	aux := uint64(0)
	if failed {
		aux = 1
	}
	c.emit(causal.Event{T: t, Kind: kind, Peer: int32(req.peer), Tag: int32(req.tag),
		Seq: req.seq, CID: req.cid, Proto: req.proto, Aux: aux, Bytes: int32(req.slice.N)})
}

func (c *rankCausal) pktSend(t sim.Time, dst int, h header, payload int) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvPktSend, Peer: int32(dst),
		Tag: h.tag, Pkt: h.kind, Seq: h.seq, PSN: h.psn, Bytes: int32(payload)})
}

func (c *rankCausal) pktRecv(t sim.Time, src int, h header) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvPktRecv, Peer: int32(src),
		Tag: h.tag, Pkt: h.kind, Seq: h.seq, PSN: h.psn, Bytes: int32(h.payload)})
}

func (c *rankCausal) wrPost(t sim.Time, peer int, kind wrKind, wrid uint64, bytes int) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvWRPost, Peer: int32(peer),
		Pkt: uint8(kind) + 1, Aux: wrid, Bytes: int32(bytes)})
}

func (c *rankCausal) cqe(t sim.Time, peer int, kind wrKind, wrid uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvCQE, Peer: int32(peer),
		Pkt: uint8(kind) + 1, Aux: wrid})
}

func (c *rankCausal) waitStart(t sim.Time, cid uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvWaitStart, Peer: -1, CID: cid})
	c.waitDepth++
}

func (c *rankCausal) waitEnd(t sim.Time, cid uint64) {
	if c.rec == nil {
		return
	}
	c.waitDepth--
	c.emit(causal.Event{T: t, Kind: causal.EvWaitEnd, Peer: -1, CID: cid})
}

// collEnter emits the entry event and returns the collective sequence
// id the matching collExit must carry. algo is the selected algorithm
// code (algoNone when the op has no algorithm choice), carried in Pkt
// so profiles can attribute straggling per algorithm.
func (c *rankCausal) collEnter(t sim.Time, op int32, algo uint8) uint64 {
	if c.rec == nil {
		return 0
	}
	c.collSeq++
	c.emit(causal.Event{T: t, Kind: causal.EvCollEnter, Peer: -1, Tag: op, Pkt: algo, Aux: c.collSeq})
	return c.collSeq
}

func (c *rankCausal) collExit(t sim.Time, op int32, algo uint8, seq uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvCollExit, Peer: -1, Tag: op, Pkt: algo, Aux: seq})
}

func (c *rankCausal) anyLock(t sim.Time, cid uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvAnyLock, Peer: -1, CID: cid})
}

func (c *rankCausal) anyDefer(t sim.Time, cid uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvDefer, Peer: -1, CID: cid})
}

func (c *rankCausal) mispredict(t sim.Time, peer int, seq uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvMispredict, Peer: int32(peer), Seq: seq})
}

func (c *rankCausal) qpReset(t sim.Time, peer int) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvQPReset, Peer: int32(peer)})
}

func (c *rankCausal) replay(t sim.Time, peer int, wrid uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvReplay, Peer: int32(peer), Aux: wrid})
}

func (c *rankCausal) replayDrop(t sim.Time, src int, psn uint64) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvReplayDrop, Peer: int32(src), PSN: psn})
}

func (c *rankCausal) fallback(t sim.Time, peer int, bytes int) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvFallback, Peer: int32(peer), Bytes: int32(bytes)})
}

func (c *rankCausal) dmaSync(t sim.Time, dur sim.Duration, bytes int) {
	if c.rec == nil {
		return
	}
	c.emit(causal.Event{T: t, Kind: causal.EvDMASync, Peer: -1, Aux: uint64(dur), Bytes: int32(bytes)})
}

// protoOf maps a span-kind string to the causal protocol code; called
// from rankMetrics.resolve so req.proto is set exactly where the
// metrics layer classifies the request.
func protoOf(kind string) uint8 {
	switch kind {
	case KindEager:
		return causal.ProtoEager
	case KindSenderRzv:
		return causal.ProtoSenderRzv
	case KindRecvRzv:
		return causal.ProtoRecvRzv
	case KindSimulRzv:
		return causal.ProtoSimulRzv
	case KindSelf:
		return causal.ProtoSelf
	default:
		return causal.ProtoUnknown
	}
}
