package core

import (
	"errors"
	"fmt"

	"repro/internal/causal"
	"repro/internal/sim"
)

// Internal tag space for collectives; user tags must be non-negative.
const (
	tagBarrier   = -100
	tagBcast     = -101
	tagReduce    = -102
	tagGather    = -103
	tagScatter   = -104
	tagAllgather = -105
	tagAlltoall  = -106
	tagScan      = -107
	tagRedScat   = -108
)

// Barrier blocks until every rank has entered it. The algorithm —
// dissemination for small worlds, binomial tree for large ones — comes
// from the selector unless Config.CollBarrier pins it.
func (r *Rank) Barrier(p *sim.Proc) error {
	algo, err := r.pickBarrier()
	if err != nil {
		return err
	}
	cs := r.c.collEnter(p.Now(), causal.CollBarrier, algo)
	sp := r.m.collBegin(p.Now(), "barrier", algoName(algo))
	if algo == algoTree {
		err = r.barrierTree(p)
	} else {
		err = r.barrierDissem(p)
	}
	sp.End(p.Now())
	r.c.collExit(p.Now(), causal.CollBarrier, algo, cs)
	return err
}

// barrierDissem is the dissemination barrier: ⌈log₂ P⌉ rounds of
// pairwise exchanges at doubling distances.
func (r *Rank) barrierDissem(p *sim.Proc) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	zero := Slice{}
	for dist := 1; dist < n; dist *= 2 {
		to := (r.id + dist) % n
		from := (r.id - dist + n) % n
		sreq, err := r.Isend(p, to, tagBarrier, zero)
		if err != nil {
			return err
		}
		rreq, err := r.Irecv(p, from, tagBarrier, zero)
		if err != nil {
			// Drain the already-posted send before bailing out.
			return errors.Join(err, r.WaitAll(p, sreq))
		}
		if err := r.WaitAll(p, sreq, rreq); err != nil {
			return err
		}
	}
	return nil
}

// vrank maps absolute ranks into the root-relative ring used by the
// binomial trees.
func vrank(id, root, n int) int { return (id - root + n) % n }
func arank(v, root, n int) int  { return (v + root) % n }

// Bcast broadcasts root's s to everyone. All ranks must pass a slice
// of the same length. The algorithm — binomial tree for latency-bound
// payloads, scatter-allgather for bandwidth-bound ones — comes from
// the selector unless Config.CollBcast pins it.
func (r *Rank) Bcast(p *sim.Proc, root int, s Slice) error {
	algo, err := r.pickBcast(s)
	if err != nil {
		return err
	}
	cs := r.c.collEnter(p.Now(), causal.CollBcast, algo)
	sp := r.m.collBegin(p.Now(), "bcast", algoName(algo))
	if algo == algoScatterAG {
		err = r.bcastScatterAG(p, root, s)
	} else {
		err = r.bcastBinomial(p, root, s)
	}
	sp.End(p.Now())
	r.c.collExit(p.Now(), causal.CollBcast, algo, cs)
	return err
}

// bcastBinomial is the binomial-tree broadcast: each rank receives from
// the parent at its lowest set (root-relative) bit and forwards down.
func (r *Rank) bcastBinomial(p *sim.Proc, root int, s Slice) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	v := vrank(r.id, root, n)
	// Climb until our lowest set bit: receive from the parent there.
	mask := 1
	for mask < n {
		if v&mask != 0 {
			parent := arank(v^mask, root, n)
			if _, err := r.Recv(p, parent, tagBcast, s); err != nil {
				return err
			}
			break
		}
		mask *= 2
	}
	// Fan out to children below that bit, highest first.
	for mask /= 2; mask >= 1; mask /= 2 {
		child := v | mask
		if child < n {
			if err := r.Send(p, arank(child, root, n), tagBcast, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines every rank's contribution in s with op and leaves the
// result in s on root (binomial tree; s is clobbered on non-roots).
func (r *Rank) Reduce(p *sim.Proc, root int, s Slice, op Op) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	v := vrank(r.id, root, n)
	tmp := r.Mem(s.N)
	defer r.v.Domain().Free(tmp)
	for mask := 1; mask < n; mask *= 2 {
		if v&mask != 0 {
			parent := arank(v^mask, root, n)
			return r.Send(p, parent, tagReduce, s)
		}
		child := v | mask
		if child < n {
			if _, err := r.Recv(p, arank(child, root, n), tagReduce, Whole(tmp)); err != nil {
				return err
			}
			op.applyChecked(s.Bytes(), tmp.Data)
		}
	}
	return nil
}

// Allreduce leaves the element-wise combination of every rank's s in s
// on every rank. The algorithm — recursive doubling when latency-bound,
// ring when bandwidth-bound — comes from the selector unless
// Config.CollAllreduce pins it.
func (r *Rank) Allreduce(p *sim.Proc, s Slice, op Op) error {
	algo, err := r.pickAllreduce(s, op)
	if err != nil {
		return err
	}
	cs := r.c.collEnter(p.Now(), causal.CollAllreduce, algo)
	sp := r.m.collBegin(p.Now(), "allreduce", algoName(algo))
	switch algo {
	case algoRing:
		err = r.allreduceRing(p, s, op)
	case algoRD:
		err = r.allreduceRD(p, s, op)
	default:
		err = r.allreduceNaive(p, s, op)
	}
	sp.End(p.Now())
	r.c.collExit(p.Now(), causal.CollAllreduce, algo, cs)
	return err
}

// Gather concatenates every rank's s (all the same length) into dst on
// root, ordered by rank. dst must be Size()*s.N bytes on root; ignored
// elsewhere.
func (r *Rank) Gather(p *sim.Proc, root int, s Slice, dst Slice) error {
	n := r.w.Size()
	if r.id == root {
		if dst.N < n*s.N {
			return fmt.Errorf("core: gather destination too small: %d < %d", dst.N, n*s.N)
		}
		copy(dst.Sub(root*s.N, s.N).Bytes(), s.Bytes())
		reqs := make([]*Request, 0, n-1)
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			q, err := r.Irecv(p, i, tagGather, dst.Sub(i*s.N, s.N))
			if err != nil {
				return err
			}
			reqs = append(reqs, q)
		}
		return r.WaitAll(p, reqs...)
	}
	return r.Send(p, root, tagGather, s)
}

// Scatter distributes root's src (Size()*recv.N bytes) so rank i gets
// block i in recv.
func (r *Rank) Scatter(p *sim.Proc, root int, src Slice, recv Slice) error {
	n := r.w.Size()
	if r.id == root {
		if src.N < n*recv.N {
			return fmt.Errorf("core: scatter source too small: %d < %d", src.N, n*recv.N)
		}
		copy(recv.Bytes(), src.Sub(root*recv.N, recv.N).Bytes())
		reqs := make([]*Request, 0, n-1)
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			q, err := r.Isend(p, i, tagScatter, src.Sub(i*recv.N, recv.N))
			if err != nil {
				return err
			}
			reqs = append(reqs, q)
		}
		return r.WaitAll(p, reqs...)
	}
	_, err := r.Recv(p, root, tagScatter, recv)
	return err
}

// Allgather concatenates every rank's s into dst (Size()*s.N bytes) on
// every rank, using the ring algorithm.
func (r *Rank) Allgather(p *sim.Proc, s Slice, dst Slice) error {
	cs := r.c.collEnter(p.Now(), causal.CollAllgather, algoRing)
	sp := r.m.collBegin(p.Now(), "allgather", algoName(algoRing))
	err := r.allgather(p, s, dst)
	sp.End(p.Now())
	r.c.collExit(p.Now(), causal.CollAllgather, algoRing, cs)
	return err
}

func (r *Rank) allgather(p *sim.Proc, s Slice, dst Slice) error {
	n := r.w.Size()
	if dst.N < n*s.N {
		return fmt.Errorf("core: allgather destination too small: %d < %d", dst.N, n*s.N)
	}
	copy(dst.Sub(r.id*s.N, s.N).Bytes(), s.Bytes())
	if n == 1 {
		return nil
	}
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendBlock := (r.id - step + n) % n
		recvBlock := (r.id - step - 1 + n) % n
		if _, err := r.Sendrecv(p,
			right, tagAllgather, dst.Sub(sendBlock*s.N, s.N),
			left, tagAllgather, dst.Sub(recvBlock*s.N, s.N)); err != nil {
			return err
		}
	}
	return nil
}

// Gatherv concatenates variable-length contributions on root: rank i
// contributes s (whose length must equal counts[i]); root receives them
// back to back in dst, ordered by rank.
func (r *Rank) Gatherv(p *sim.Proc, root int, s Slice, dst Slice, counts []int) error {
	n := r.w.Size()
	if len(counts) != n {
		return fmt.Errorf("core: gatherv needs %d counts, got %d", n, len(counts))
	}
	if s.N != counts[r.id] {
		return fmt.Errorf("core: gatherv rank %d contributes %d bytes, counts say %d", r.id, s.N, counts[r.id])
	}
	offs := make([]int, n)
	total := 0
	for i, c := range counts {
		if c < 0 {
			return fmt.Errorf("core: gatherv negative count")
		}
		offs[i] = total
		total += c
	}
	if r.id == root {
		if dst.N < total {
			return fmt.Errorf("core: gatherv destination too small: %d < %d", dst.N, total)
		}
		copy(dst.Sub(offs[root], counts[root]).Bytes(), s.Bytes())
		reqs := make([]*Request, 0, n-1)
		for i := 0; i < n; i++ {
			if i == root || counts[i] == 0 {
				continue
			}
			q, err := r.Irecv(p, i, tagGather, dst.Sub(offs[i], counts[i]))
			if err != nil {
				return err
			}
			reqs = append(reqs, q)
		}
		return r.WaitAll(p, reqs...)
	}
	if s.N == 0 {
		return nil
	}
	return r.Send(p, root, tagGather, s)
}

// Scatterv distributes variable-length blocks from root: rank i
// receives counts[i] bytes into recv (recv.N must equal counts[i]).
func (r *Rank) Scatterv(p *sim.Proc, root int, src Slice, recv Slice, counts []int) error {
	n := r.w.Size()
	if len(counts) != n {
		return fmt.Errorf("core: scatterv needs %d counts, got %d", n, len(counts))
	}
	if recv.N != counts[r.id] {
		return fmt.Errorf("core: scatterv rank %d receives %d bytes, counts say %d", r.id, recv.N, counts[r.id])
	}
	offs := make([]int, n)
	total := 0
	for i, c := range counts {
		if c < 0 {
			return fmt.Errorf("core: scatterv negative count")
		}
		offs[i] = total
		total += c
	}
	if r.id == root {
		if src.N < total {
			return fmt.Errorf("core: scatterv source too small: %d < %d", src.N, total)
		}
		copy(recv.Bytes(), src.Sub(offs[root], counts[root]).Bytes())
		reqs := make([]*Request, 0, n-1)
		for i := 0; i < n; i++ {
			if i == root || counts[i] == 0 {
				continue
			}
			q, err := r.Isend(p, i, tagScatter, src.Sub(offs[i], counts[i]))
			if err != nil {
				return err
			}
			reqs = append(reqs, q)
		}
		return r.WaitAll(p, reqs...)
	}
	if recv.N == 0 {
		return nil
	}
	_, err := r.Recv(p, root, tagScatter, recv)
	return err
}

// Scan leaves op(s₀ … s_rank) — the inclusive prefix reduction — in s
// on every rank (linear chain).
func (r *Rank) Scan(p *sim.Proc, s Slice, op Op) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	if r.id > 0 {
		tmp := r.Mem(s.N)
		defer r.v.Domain().Free(tmp)
		if _, err := r.Recv(p, r.id-1, tagScan, Whole(tmp)); err != nil {
			return err
		}
		// Prefix so far combined into our contribution: op(prev, mine).
		op.applyChecked(s.Bytes(), tmp.Data)
	}
	if r.id < n-1 {
		return r.Send(p, r.id+1, tagScan, s)
	}
	return nil
}

// ReduceScatter combines src element-wise across all ranks and leaves
// block i of the result on rank i in dst. src holds Size() blocks of
// dst.N bytes (reduce-to-root then scatter; simple and correct for the
// modest rank counts here).
func (r *Rank) ReduceScatter(p *sim.Proc, src Slice, dst Slice, op Op) error {
	n := r.w.Size()
	if src.N < n*dst.N {
		return fmt.Errorf("core: reduce_scatter source too small: %d < %d", src.N, n*dst.N)
	}
	if err := r.Reduce(p, 0, Slice{Buf: src.Buf, Off: src.Off, N: n * dst.N}, op); err != nil {
		return err
	}
	return r.Scatter(p, 0, Slice{Buf: src.Buf, Off: src.Off, N: n * dst.N}, dst)
}

// Alltoall sends block i of src to rank i and receives rank i's block
// into block i of dst; src and dst hold Size() blocks of blockN bytes.
// The pairwise exchange is the default; Config.CollAlltoall can pin
// the linear (post-everything) oracle instead.
func (r *Rank) Alltoall(p *sim.Proc, src, dst Slice, blockN int) error {
	algo, err := r.pickAlltoall()
	if err != nil {
		return err
	}
	cs := r.c.collEnter(p.Now(), causal.CollAlltoall, algo)
	sp := r.m.collBegin(p.Now(), "alltoall", algoName(algo))
	if algo == algoLinear {
		err = r.alltoallLinear(p, src, dst, blockN)
	} else {
		err = r.alltoallPairwise(p, src, dst, blockN)
	}
	sp.End(p.Now())
	r.c.collExit(p.Now(), causal.CollAlltoall, algo, cs)
	return err
}

func (r *Rank) alltoallPairwise(p *sim.Proc, src, dst Slice, blockN int) error {
	n := r.w.Size()
	if src.N < n*blockN || dst.N < n*blockN {
		return fmt.Errorf("core: alltoall buffers too small")
	}
	copy(dst.Sub(r.id*blockN, blockN).Bytes(), src.Sub(r.id*blockN, blockN).Bytes())
	// Pairwise exchange: at step k talk to id^k (power-of-two worlds) or
	// a rotated partner otherwise.
	for step := 1; step < n; step++ {
		var partner int
		if n&(n-1) == 0 {
			partner = r.id ^ step
		} else {
			partner = (r.id + step) % n
		}
		sendTo := partner
		recvFrom := partner
		if n&(n-1) != 0 {
			recvFrom = (r.id - step + n) % n
		}
		if _, err := r.Sendrecv(p,
			sendTo, tagAlltoall, src.Sub(sendTo*blockN, blockN),
			recvFrom, tagAlltoall, dst.Sub(recvFrom*blockN, blockN)); err != nil {
			return err
		}
	}
	return nil
}
