package core

import (
	"container/list"

	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// MRCache is the paper's buffer cache pool: memory-region registration
// on the co-processor is expensive (delegated to the host), so the most
// recently used regions are kept registered and reused when a user
// buffer falls inside a cached region. Eviction is LRU, but regions
// referenced by in-flight rendezvous operations are pinned: evicting
// (and deregistering) a region mid-transfer would fault the peer's
// RDMA. Callers pair every Get with a Release.
type MRCache struct {
	v   Verbs
	pd  *ib.PD
	cap int

	lru     *list.List // of *mrEntry, front = most recent
	entries map[*ib.MR]*list.Element

	// Hits and Misses expose cache effectiveness; the paper notes the
	// pool "can only benefit applications which always reuse a few
	// buffers".
	Hits   int64
	Misses int64
	// Evictions counts deregistrations forced by capacity.
	Evictions int64

	// Telemetry handles (nil when metrics are disabled; see instrument).
	hitsC      *metrics.Counter
	missesC    *metrics.Counter
	evictionsC *metrics.Counter
	pinnedB    *metrics.Gauge
}

type mrEntry struct {
	mr   *ib.MR
	refs int
}

// NewMRCache builds a cache over v with the given capacity.
func NewMRCache(v Verbs, pd *ib.PD, capacity int) *MRCache {
	if capacity < 1 {
		capacity = 1
	}
	return &MRCache{v: v, pd: pd, cap: capacity, lru: list.New(), entries: make(map[*ib.MR]*list.Element)}
}

// instrument attaches telemetry counters under the given actor. A nil
// registry hands out nil handles, so recording stays a nil-check no-op.
func (c *MRCache) instrument(reg *metrics.Registry, actor string) {
	c.hitsC = reg.Counter(actor, "mrcache.hits")
	c.missesC = reg.Counter(actor, "mrcache.misses")
	c.evictionsC = reg.Counter(actor, "mrcache.evictions")
	c.pinnedB = reg.Gauge(actor, "mrcache.pinned-bytes")
}

// Get returns a registered MR covering [addr, addr+n) in dom, reusing a
// cached registration when one covers the range ("the memory region hit
// will be reused, otherwise a new memory region will be registered").
// The entry is pinned until the matching Release.
func (c *MRCache) Get(p *sim.Proc, dom *machine.Domain, addr uint64, n int) (*ib.MR, error) {
	for e := c.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*mrEntry)
		mr := ent.mr
		if mr.Dom == dom && addr >= mr.Addr && addr+uint64(n) <= mr.Addr+uint64(mr.Len) {
			c.lru.MoveToFront(e)
			c.Hits++
			c.hitsC.Inc()
			if ent.refs == 0 {
				c.pinnedB.Add(int64(mr.Len))
			}
			ent.refs++
			return mr, nil
		}
	}
	c.Misses++
	c.missesC.Inc()
	mr, err := c.v.RegMR(p, c.pd, dom, addr, n)
	if err != nil {
		return nil, err
	}
	c.pinnedB.Add(int64(mr.Len))
	//simlint:ignore hotalloc entry allocation happens only on a cache miss, amortized across hits
	e := c.lru.PushFront(&mrEntry{mr: mr, refs: 1})
	c.entries[mr] = e
	if err := c.evictExcess(p); err != nil {
		return nil, err
	}
	return mr, nil
}

// Release unpins a region obtained from Get and evicts entries beyond
// capacity, charging the deregistration to p.
func (c *MRCache) Release(p *sim.Proc, mr *ib.MR) {
	e, ok := c.entries[mr]
	if !ok {
		panic("core: MR cache release of unknown region")
	}
	ent := e.Value.(*mrEntry)
	if ent.refs <= 0 {
		panic("core: MR cache release without matching Get")
	}
	ent.refs--
	if ent.refs == 0 {
		c.pinnedB.Add(-int64(mr.Len))
	}
	if err := c.evictExcess(p); err != nil {
		panic(err)
	}
}

// evictExcess deregisters the oldest unpinned entries beyond capacity.
// When everything over capacity is pinned, the cache temporarily grows.
func (c *MRCache) evictExcess(p *sim.Proc) error {
	for c.lru.Len() > c.cap {
		var victim *list.Element
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			if e.Value.(*mrEntry).refs == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return nil // all pinned; retry on the next Release
		}
		mr := victim.Value.(*mrEntry).mr
		c.lru.Remove(victim)
		delete(c.entries, mr)
		c.Evictions++
		c.evictionsC.Inc()
		if err := c.v.DeregMR(p, mr); err != nil {
			return err
		}
	}
	return nil
}

// Len reports cached registrations.
func (c *MRCache) Len() int { return c.lru.Len() }

// Pinned reports currently referenced entries.
func (c *MRCache) Pinned() int {
	n := 0
	for e := c.lru.Front(); e != nil; e = e.Next() {
		if e.Value.(*mrEntry).refs > 0 {
			n++
		}
	}
	return n
}

// Flush deregisters everything (teardown); all entries must be
// unpinned.
func (c *MRCache) Flush(p *sim.Proc) error {
	for e := c.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*mrEntry)
		if ent.refs > 0 {
			panic("core: MR cache flush with pinned regions")
		}
		if err := c.v.DeregMR(p, ent.mr); err != nil {
			return err
		}
	}
	c.lru.Init()
	c.entries = make(map[*ib.MR]*list.Element)
	return nil
}
