package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Packet kinds on the eager rings.
const (
	pktNone   byte = 0
	pktEager  byte = 1
	pktRTS    byte = 2 // sender-first rendezvous: ready-to-send
	pktRTR    byte = 3 // receiver-first rendezvous: ready-to-receive
	pktDone   byte = 4 // sender-first rendezvous read finished: closes the send
	pktCredit byte = 5 // explicit eager-ring credit return
	pktNack   byte = 6 // rendezvous aborted: closes the send (receiver issued MPI error)
	// The receiver-first protocol needs its own completion kinds: a rank
	// can simultaneously hold a send to and a receive from the same peer
	// under the same sequence id (the spaces are independent per
	// direction), so a bare DONE/NACK would be ambiguous about which one
	// it closes.
	pktDoneW byte = 7 // receiver-first rendezvous write finished: closes the receive
	pktNackW byte = 8 // receiver-first rendezvous aborted: closes the receive
)

// hdrSize is the fixed eager packet header; tailSize the completion
// marker written after the payload (the paper's tail SGE).
const (
	hdrSize  = 64
	tailSize = 8
)

// header is the decoded packet header.
type header struct {
	kind    byte
	src     uint16
	tag     int32
	anyTag  bool
	seq     uint64
	payload int
	// Rendezvous buffer advertisement (RTS/RTR).
	raddr uint64
	rkey  uint32
	rsize int
	// Piggybacked eager-ring credits being returned.
	credits uint32
	// psn is the per-directed-pair transport sequence number, counted
	// per packet written into the peer's ring (replays reuse the
	// original psn so the receiver can discard duplicates).
	psn uint64
}

// encode writes h into dst (hdrSize bytes).
func (h *header) encode(dst []byte) {
	_ = dst[hdrSize-1]
	dst[0] = h.kind
	if h.anyTag {
		dst[1] = 1
	} else {
		dst[1] = 0
	}
	binary.LittleEndian.PutUint16(dst[2:], h.src)
	binary.LittleEndian.PutUint32(dst[4:], uint32(h.tag))
	binary.LittleEndian.PutUint64(dst[8:], h.seq)
	binary.LittleEndian.PutUint64(dst[16:], uint64(h.payload))
	binary.LittleEndian.PutUint64(dst[24:], h.raddr)
	binary.LittleEndian.PutUint32(dst[32:], h.rkey)
	binary.LittleEndian.PutUint64(dst[36:], uint64(h.rsize))
	binary.LittleEndian.PutUint32(dst[44:], h.credits)
	binary.LittleEndian.PutUint64(dst[48:], h.psn)
}

// decodeHeader parses hdrSize bytes.
func decodeHeader(src []byte) header {
	_ = src[hdrSize-1]
	return header{
		kind:    src[0],
		anyTag:  src[1] == 1,
		src:     binary.LittleEndian.Uint16(src[2:]),
		tag:     int32(binary.LittleEndian.Uint32(src[4:])),
		seq:     binary.LittleEndian.Uint64(src[8:]),
		payload: int(binary.LittleEndian.Uint64(src[16:])),
		raddr:   binary.LittleEndian.Uint64(src[24:]),
		rkey:    binary.LittleEndian.Uint32(src[32:]),
		rsize:   int(binary.LittleEndian.Uint64(src[36:])),
		credits: binary.LittleEndian.Uint32(src[44:]),
		psn:     binary.LittleEndian.Uint64(src[48:]),
	}
}

// tailMarker is the nonzero value written to the tail SGE; the receiver
// verifies it to know the whole packet (header + payload + tail, in SGE
// order) has landed.
func tailMarker(seq uint64) uint64 { return seq + 1 }

// ring is one direction's eager buffer: slots of fixed size in the
// receiver's memory, RDMA-written by exactly one sender and consumed in
// order.
type ring struct {
	buf      *machine.Buffer
	mr       *ib.MR
	slots    int
	slotSize int
	// next is the local consume cursor.
	next int
}

// ringDesc is what the sender knows about the receiver's ring.
type ringDesc struct {
	addr     uint64
	rkey     uint32
	slots    int
	slotSize int
}

func slotBytes(eagerMax int) int { return hdrSize + eagerMax + tailSize }

// newRing allocates and registers a ring of n slots in dom.
func newRing(p *sim.Proc, v Verbs, pd *ib.PD, dom *machine.Domain, slots, eagerMax int) (*ring, error) {
	sz := slots * slotBytes(eagerMax)
	buf := dom.Alloc(sz)
	mr, err := v.RegMR(p, pd, dom, buf.Addr, sz)
	if err != nil {
		return nil, fmt.Errorf("core: ring registration: %w", err)
	}
	return &ring{buf: buf, mr: mr, slots: slots, slotSize: slotBytes(eagerMax)}, nil
}

// desc returns the advertisement the sender needs.
func (r *ring) desc() ringDesc {
	return ringDesc{addr: r.buf.Addr, rkey: r.mr.RKey, slots: r.slots, slotSize: r.slotSize}
}

// slot returns slot i's bytes.
func (r *ring) slot(i int) []byte {
	return r.buf.Data[i*r.slotSize : (i+1)*r.slotSize]
}

// peek decodes the next slot if a complete packet is present, verifying
// the tail marker.
func (r *ring) peek() (header, []byte, bool) {
	s := r.slot(r.next)
	if s[0] == pktNone {
		return header{}, nil, false
	}
	h := decodeHeader(s[:hdrSize])
	tailOff := hdrSize + h.payload
	tail := binary.LittleEndian.Uint64(s[tailOff : tailOff+tailSize])
	if tail != tailMarker(h.seq) {
		// Header present but tail not yet written: partial packet.
		// Cannot happen with the simulator's atomic delivery, but the
		// check mirrors the real protocol and guards the invariant.
		return header{}, nil, false
	}
	return h, s[hdrSize : hdrSize+h.payload], true
}

// discard clears the current slot WITHOUT advancing the cursor: used
// to drop a replayed duplicate (psn below the next expected) that a
// faulted-but-delivered write re-deposited. The cursor must stay put
// because the slot is still the landing zone for the next expected
// packet of this residue class; its credits were already applied on
// first delivery, so no credit is returned either.
func (r *ring) discard() {
	s := r.slot(r.next)
	for i := range s {
		s[i] = 0
	}
}

// consume clears the current slot and advances the cursor.
func (r *ring) consume() {
	s := r.slot(r.next)
	for i := range s {
		s[i] = 0
	}
	r.next = (r.next + 1) % r.slots
}

// slotAddr returns the remote address of slot i given a descriptor.
func (d ringDesc) slotAddr(i int) uint64 {
	return d.addr + uint64(i*d.slotSize)
}
