package core_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perfmodel"
)

// runReplayFlood floods 2 ranks with one-way eager traffic through
// deliberately tiny (4-slot) rings under a high delivered-fault rate.
// Every faulted write deposits its payload and then reports an error
// CQE, so the sender replays into a slot the receiver may have already
// consumed; once the consume cursor wraps back around, the stale
// duplicate must be recognized by its psn and discarded. The torture
// suite's deep default rings almost never wrap onto a replay, so this
// is the dedicated regression for ring.discard / Stats.ReplaysDeduped.
func runReplayFlood(t *testing.T, seed uint64) (fp uint64, deduped, ibFaults, retries int64) {
	t.Helper()
	plan := faults.NewPlan(seed)
	plan.IBError = 0.3
	plan.IBDelivered = 1.0
	c := cluster.New(perfmodel.Default(), 2)
	inj := c.SetFaults(plan)
	w := c.DCFAWorld(2, false)
	w.Cfg.EagerSlots = 4
	const msgs = 200
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				s := core.Whole(r.Mem(64))
				for j := range s.Bytes() {
					s.Bytes()[j] = byte(i + j)
				}
				if err := r.Send(p, 1, i, s); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			s := core.Whole(r.Mem(64))
			if _, err := r.Recv(p, 0, i, s); err != nil {
				return err
			}
			for j, b := range s.Bytes() {
				if b != byte(i+j) {
					return fmt.Errorf("msg %d corrupt at byte %d", i, j)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay flood (seed %d): %v", seed, err)
	}
	for i := 0; i < 2; i++ {
		deduped += w.Rank(i).Stats.ReplaysDeduped
		retries += w.Rank(i).Stats.Retries
	}
	return c.Eng.Fingerprint(), deduped, inj.IBFaults, retries
}

// TestReplayDedupeDiscardsStaleDuplicates drives the psn-based
// duplicate discard and checks it deterministic and loss-free.
func TestReplayDedupeDiscardsStaleDuplicates(t *testing.T) {
	fp1, deduped, ibFaults, retries := runReplayFlood(t, 7)
	if deduped == 0 {
		t.Error("flood never exercised the replay-dedupe path")
	}
	if ibFaults == 0 {
		t.Error("plan injected no IB faults")
	}
	if retries != ibFaults {
		t.Errorf("retries %d, want one per injected IB fault (%d)", retries, ibFaults)
	}
	if deduped > ibFaults {
		t.Errorf("deduped %d exceeds injected faults %d", deduped, ibFaults)
	}
	fp2, deduped2, _, _ := runReplayFlood(t, 7)
	if fp1 != fp2 || deduped != deduped2 {
		t.Errorf("same seed diverged: fp %#x/%#x deduped %d/%d", fp1, fp2, deduped, deduped2)
	}
}
