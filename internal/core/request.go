package core

import (
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Slice is a contiguous range of a rank-local buffer, the unit all MPI
// operations act on. Buffers must live in the rank's memory domain so
// that zero-copy rendezvous can register them.
type Slice struct {
	Buf *machine.Buffer
	Off int
	N   int
}

// Whole wraps an entire buffer.
func Whole(b *machine.Buffer) Slice { return Slice{Buf: b, N: len(b.Data)} }

// Bytes returns the addressed range.
func (s Slice) Bytes() []byte {
	if s.Buf == nil {
		return nil
	}
	return s.Buf.Data[s.Off : s.Off+s.N]
}

// Addr returns the device address of the range start.
func (s Slice) Addr() uint64 { return s.Buf.Addr + uint64(s.Off) }

// Sub returns the sub-range [off, off+n) relative to s.
func (s Slice) Sub(off, n int) Slice { return Slice{Buf: s.Buf, Off: s.Off + off, N: n} }

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// reqState tracks a request through its protocol. The declared machine
// below is checked by simlint's fsmcheck: every assignment made while
// dispatching on the state must follow a declared edge, and every state
// must be reachable.
//
//simlint:fsm -> stNew
//simlint:fsm stNew -> stEagerQueued eager send waiting for ring credit
//simlint:fsm stNew -> stEagerSent eager packet posted immediately
//simlint:fsm stEagerQueued -> stEagerSent credit arrived, packet posted
//simlint:fsm stNew -> stRTSSent payload over EagerMax, sender-first rendezvous
//simlint:fsm stNew -> stWriting early RTR was waiting, receiver-first rendezvous
//simlint:fsm stNew -> stPosted recv posted with nothing matched yet
//simlint:fsm stNew -> stReading recv matched an unexpected RTS at post time
//simlint:fsm stPosted -> stRTRWait large recv advertised its buffer
//simlint:fsm stPosted -> stReading RTS matched the posted recv
//simlint:fsm stRTRWait -> stReading simultaneous rendezvous, receiver reads anyway
//simlint:fsm stNew -> stDone completion (including errors) from any stage
//simlint:fsm stEagerQueued -> stDone
//simlint:fsm stEagerSent -> stDone
//simlint:fsm stRTSSent -> stDone
//simlint:fsm stWriting -> stDone
//simlint:fsm stPosted -> stDone
//simlint:fsm stRTRWait -> stDone
//simlint:fsm stReading -> stDone
type reqState int

const (
	stNew         reqState = iota
	stEagerQueued          // eager send waiting for ring credit
	stEagerSent            // eager packet posted, awaiting local CQE
	stRTSSent              // sender-first rendezvous: RTS out, waiting DONE
	stWriting              // receiver-first rendezvous: RDMA write in flight
	stPosted               // recv posted, nothing matched yet
	stReading              // recv: RDMA read in flight
	stRTRWait              // recv sent RTR, waiting for sender's write + DONE
	stDone
)

// Request is a nonblocking operation handle.
type Request struct {
	r      *Rank
	isSend bool
	peer   int // destination, or matched source for receives
	tag    int
	anyTag bool
	seq    uint64
	hasSeq bool
	slice  Slice

	state     reqState
	completed bool
	err       error
	status    Status

	// Send-side rendezvous resources.
	offReg  *offRegion
	advAddr uint64
	advKey  uint32
	// srcMR is the cached registration advertised by a non-offloaded
	// rendezvous send (reused by the receiver-first write).
	srcMR *ib.MR
	// heldMRs are cache pins released at completion.
	heldMRs []*ib.MR

	// Telemetry (all nil / zero when metrics are disabled).
	// span is the message-lifecycle span from post to completion;
	// xferSpan the in-flight RDMA read/write child.
	span     *metrics.Span
	xferSpan *metrics.Span
	// startT is when the operation was posted, for latency histograms.
	startT sim.Time
	// simul marks a send resolved as simultaneous rendezvous (the RTR
	// was dropped in state stRTSSent), so the later DONE does not
	// re-classify it as sender-first.
	simul bool

	// Causal profiling (zero when profiling is disabled): cid is the
	// rank-local request id correlating this request's lifecycle
	// events, proto the resolved protocol code (causal.Proto*).
	cid   uint64
	proto uint8
}

// Done reports completion (poll without progress; use Rank.Test to also
// drive the protocol).
func (q *Request) Done() bool { return q.completed }

// Err returns the request error after completion.
func (q *Request) Err() error { return q.err }

// Status returns receive metadata after completion.
func (q *Request) Status() Status { return q.status }

// complete finalizes a request, releasing its staging and cache pins.
func (q *Request) complete(p *sim.Proc, err error) {
	if q.completed {
		return
	}
	q.completed = true
	q.err = err
	q.state = stDone
	if q.offReg != nil {
		q.offReg.arena.release(q.offReg)
		q.offReg = nil
	}
	for _, mr := range q.heldMRs {
		q.r.mrCache.Release(p, mr)
	}
	q.heldMRs = nil
	if m := &q.r.m; m.reg != nil {
		now := p.Now()
		q.xferSpan.End(now)
		if err != nil {
			q.span.Attr("error", err.Error())
		}
		q.span.End(now)
		if q.isSend {
			m.sendLat.ObserveDuration(now - q.startT)
		} else {
			m.recvLat.ObserveDuration(now - q.startT)
		}
	}
	q.r.c.done(p.Now(), q, err != nil)
}

// arrival is a packet that reached the rank before its matching receive
// was posted (the unexpected queue), or an RTR that reached the sender
// before its Isend (receiver-first case).
type arrival struct {
	h    header
	data []byte // eager payload, copied out of the ring
	// buf is the retained copy backing for unexpected eager payloads:
	// the record pool keeps it across recycles so steady-state
	// unexpected traffic reuses the same allocation instead of a fresh
	// make([]byte) per packet.
	buf []byte
}

// wrAction routes a CQ entry back to protocol state.
type wrKind int

const (
	wrEager wrKind = iota
	wrCtrl
	wrRndvWrite
	wrRndvRead
)

func (k wrKind) String() string {
	switch k {
	case wrEager:
		return "eager"
	case wrCtrl:
		return "ctrl"
	case wrRndvWrite:
		return "rndv-write"
	case wrRndvRead:
		return "rndv-read"
	default:
		return "unknown"
	}
}

type wrAction struct {
	kind wrKind
	req  *Request
	peer int

	// Fault-recovery state, populated only when a fault plan is
	// active. Packet WRs (eager/ctrl) retain a byte snapshot because
	// the per-peer staging buffer is reused by later sends; rendezvous
	// WRs retain the formed WR itself, whose SGEs point at buffers
	// pinned until the request completes.
	pkt   []byte     // retained header+payload+tail bytes (wrEager/wrCtrl)
	slot  int        // remote ring slot the packet targets
	wr    *ib.SendWR // retained WR (wrRndvWrite/wrRndvRead)
	tries int        // replays performed for this WR
}
