package core_test

// Multiple ranks per node (co-resident co-processor processes sharing
// one HCA) and ANY_SOURCE stress under randomized timing.

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func TestFourRanksOnTwoNodes(t *testing.T) {
	// Ranks 0,2 share node 0's HCA; 1,3 share node 1's. Intra-node
	// pairs loop back through the local HCA.
	c := cluster.New(perfmodel.Default(), 2)
	w := c.DCFAWorld(4, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(4096)
		for i := range buf.Data {
			buf.Data[i] = byte(r.ID())
		}
		all := r.Mem(4 * 4096)
		if err := r.Allgather(p, core.Whole(buf), core.Whole(all)); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if all.Data[i*4096+100] != byte(i) {
				return fmt.Errorf("block %d corrupted", i)
			}
		}
		// Intra-node exchange (same HCA loopback): 0↔2, 1↔3.
		peer := (r.ID() + 2) % 4
		rb := r.Mem(64 << 10)
		sb := r.Mem(64 << 10)
		if _, err := r.Sendrecv(p, peer, 9, core.Whole(sb), peer, 9, core.Whole(rb)); err != nil {
			return err
		}
		return r.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceStressManySenders(t *testing.T) {
	const senders = 7
	c := cluster.New(perfmodel.Default(), senders+1)
	w := c.DCFAWorld(senders+1, true)
	const perSender = 5
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			seen := map[int]int{}
			for i := 0; i < senders*perSender; i++ {
				buf := r.Mem(16)
				st, err := r.Recv(p, core.AnySource, core.AnyTag, core.Whole(buf))
				if err != nil {
					return err
				}
				if int(buf.Data[0]) != st.Source {
					return fmt.Errorf("message %d claims source %d, status %d", i, buf.Data[0], st.Source)
				}
				// Per-sender messages arrive in their send order.
				if int(buf.Data[1]) != seen[st.Source] {
					return fmt.Errorf("sender %d: got msg %d, want %d", st.Source, buf.Data[1], seen[st.Source])
				}
				seen[st.Source]++
			}
			for s := 1; s <= senders; s++ {
				if seen[s] != perSender {
					return fmt.Errorf("sender %d delivered %d of %d", s, seen[s], perSender)
				}
			}
			return nil
		}
		// Staggered senders.
		p.Sleep(sim.Duration(r.ID()) * 37 * sim.Microsecond)
		for k := 0; k < perSender; k++ {
			buf := r.Mem(16)
			buf.Data[0] = byte(r.ID())
			buf.Data[1] = byte(k)
			if err := r.Send(p, 0, k, core.Whole(buf)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: mixing ANY_SOURCE and specific receives under random
// sender timing always delivers the right payloads.
func TestQuickAnySourceMixedWithSpecific(t *testing.T) {
	f := func(delays [3]uint8, anyFirst bool) bool {
		c := cluster.New(perfmodel.Default(), 3)
		w := c.DCFAWorld(3, true)
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			switch r.ID() {
			case 0:
				anyBuf := r.Mem(8)
				specBuf := r.Mem(8)
				var q1, q2 *core.Request
				var err error
				if anyFirst {
					q1, err = r.Irecv(p, core.AnySource, 1, core.Whole(anyBuf))
					if err != nil {
						return err
					}
					q2, err = r.Irecv(p, 2, 2, core.Whole(specBuf))
				} else {
					q2, err = r.Irecv(p, 2, 2, core.Whole(specBuf))
					if err != nil {
						return err
					}
					q1, err = r.Irecv(p, core.AnySource, 1, core.Whole(anyBuf))
				}
				if err != nil {
					return err
				}
				if err := r.WaitAll(p, q1, q2); err != nil {
					return err
				}
				if anyBuf.Data[0] != 0xA0 || specBuf.Data[0] != 0xB0 {
					return fmt.Errorf("payloads %#x %#x", anyBuf.Data[0], specBuf.Data[0])
				}
				return nil
			case 1:
				p.Sleep(sim.Duration(delays[1]) * sim.Microsecond)
				b := r.Mem(8)
				b.Data[0] = 0xA0
				return r.Send(p, 0, 1, core.Whole(b))
			default:
				p.Sleep(sim.Duration(delays[2]) * sim.Microsecond)
				// Rank 2 sends both: first the tag-1 ANY_SOURCE
				// candidate? No — rank 1 covers tag 1; rank 2 sends the
				// specific tag-2 message.
				b := r.Mem(8)
				b.Data[0] = 0xB0
				return r.Send(p, 0, 2, core.Whole(b))
			}
		})
		if !anyFirst {
			// Specific-first posting works only if the ANY_SOURCE lock
			// is not involved; both orders must still succeed.
			return err == nil
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
