package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestScanPrefixSums(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		w := worldN(n)
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			buf := r.Mem(16)
			// Integer-valued float64s keep sums exact under any
			// association.
			core.PutF64s(buf.Data, []float64{float64(r.ID() + 1), float64(2 * (r.ID() + 1))})
			if err := r.Scan(p, core.Whole(buf), core.OpSumF64); err != nil {
				return err
			}
			got := core.GetF64s(buf.Data, 2)
			want0, want1 := 0.0, 0.0
			for k := 0; k <= r.ID(); k++ {
				want0 += float64(k + 1)
				want1 += float64(2 * (k + 1))
			}
			if got[0] != want0 || got[1] != want1 {
				return fmt.Errorf("rank %d: scan %v, want [%v %v]", r.ID(), got, want0, want1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceScatterBlocks(t *testing.T) {
	const n = 4
	const blockElems = 8
	w := worldN(n)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		src := r.Mem(n * blockElems * 8)
		vals := make([]float64, n*blockElems)
		for i := range vals {
			vals[i] = float64(r.ID()*1000 + i)
		}
		core.PutF64s(src.Data, vals)
		dst := r.Mem(blockElems * 8)
		if err := r.ReduceScatter(p, core.Whole(src), core.Whole(dst), core.OpSumF64); err != nil {
			return err
		}
		got := core.GetF64s(dst.Data, blockElems)
		for j := 0; j < blockElems; j++ {
			idx := r.ID()*blockElems + j
			want := 0.0
			for k := 0; k < n; k++ {
				want += float64(k*1000 + idx)
			}
			if got[j] != want {
				return fmt.Errorf("rank %d elem %d: %v, want %v", r.ID(), j, got[j], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGathervVariableBlocks(t *testing.T) {
	const n = 4
	counts := []int{16, 0, 48, 32}
	w := worldN(n)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		mine := r.Mem(counts[r.ID()])
		fill(mine.Data, byte(r.ID()+60))
		total := 0
		for _, c := range counts {
			total += c
		}
		dst := r.Mem(total)
		if err := r.Gatherv(p, 2, core.Whole(mine), core.Whole(dst), counts); err != nil {
			return err
		}
		if r.ID() == 2 {
			off := 0
			for i, c := range counts {
				want := make([]byte, c)
				fill(want, byte(i+60))
				if !bytes.Equal(dst.Data[off:off+c], want) {
					return fmt.Errorf("block %d corrupted", i)
				}
				off += c
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScattervVariableBlocks(t *testing.T) {
	const n = 3
	counts := []int{24, 8, 0}
	w := worldN(n)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		total := 0
		for _, c := range counts {
			total += c
		}
		src := r.Mem(total)
		if r.ID() == 0 {
			off := 0
			for i, c := range counts {
				fill(src.Data[off:off+c], byte(i+90))
				off += c
			}
		}
		recv := r.Mem(counts[r.ID()])
		if err := r.Scatterv(p, 0, core.Whole(src), core.Whole(recv), counts); err != nil {
			return err
		}
		want := make([]byte, counts[r.ID()])
		fill(want, byte(r.ID()+90))
		if !bytes.Equal(recv.Data, want) {
			return fmt.Errorf("rank %d block corrupted", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGathervValidation(t *testing.T) {
	w := worldN(2)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(8)
		if err := r.Gatherv(p, 0, core.Whole(buf), core.Whole(buf), []int{8}); err == nil {
			return fmt.Errorf("wrong counts length accepted")
		}
		if err := r.Gatherv(p, 0, core.Whole(buf), core.Whole(buf), []int{4, 4}); err == nil {
			return fmt.Errorf("mismatched contribution accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterTooSmallErrors(t *testing.T) {
	w := worldN(2)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		src := r.Mem(8)
		dst := r.Mem(16)
		if err := r.ReduceScatter(p, core.Whole(src), core.Whole(dst), core.OpSumF64); err == nil {
			return fmt.Errorf("undersized reduce_scatter succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
