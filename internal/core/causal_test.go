package core_test

// Integration tests for the causal event stream and span hygiene: a
// clean run must produce a consistent happens-before graph, and fault
// recovery — retry exhaustion and DMA-abort fallback — must close
// every message-lifecycle span it touches.

import (
	"errors"
	"testing"

	"repro/internal/causal"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// causalWorld builds a 2-rank DCFA world with metrics, causal
// recording, and an optional fault plan attached.
func causalWorld(plan *faults.Plan) (*core.World, *metrics.Registry, *causal.Recorder) {
	c := cluster.New(perfmodel.Default(), 2)
	reg := metrics.New()
	rec := causal.New()
	c.SetMetrics(reg)
	c.SetCausal(rec)
	if plan != nil {
		c.SetFaults(plan)
	}
	return c.DCFAWorld(2, true), reg, rec
}

func TestCausalStreamConsistentOnCleanRun(t *testing.T) {
	// One eager and one rendezvous exchange: the recorded stream must
	// build into a graph with zero inconsistencies and matched messages
	// carrying the resolved protocols.
	w, reg, rec := causalWorld(nil)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		small := r.Mem(512)
		big := r.Mem(256 << 10)
		if r.ID() == 0 {
			if err := r.Send(p, other, 1, core.Whole(small)); err != nil {
				return err
			}
			return r.Send(p, other, 2, core.Whole(big))
		}
		if _, err := r.Recv(p, other, 1, core.Whole(small)); err != nil {
			return err
		}
		_, err := r.Recv(p, other, 2, core.Whole(big))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no causal events recorded")
	}
	g := causal.Build(rec.Events(), 0)
	if issues := g.Check(); len(issues) != 0 {
		t.Fatalf("clean run produced graph inconsistencies: %v", issues)
	}
	protos := map[uint8]int{}
	for _, m := range g.Messages {
		protos[m.Proto]++
	}
	if protos[causal.ProtoEager] == 0 {
		t.Error("no eager message in the graph")
	}
	if protos[causal.ProtoSenderRzv]+protos[causal.ProtoRecvRzv]+protos[causal.ProtoSimulRzv] == 0 {
		t.Error("no rendezvous message in the graph")
	}
	if open := reg.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open after a clean run", open)
	}
}

func TestRetryExhaustionClosesSpans(t *testing.T) {
	// Every WR errors and is never delivered, with a single replay
	// allowed: the rendezvous send must fail with a TransportError
	// rather than hang, and its lifecycle span must be closed. Rank 1
	// posts nothing, so no span is stranded on the peer either.
	plan := faults.NewPlan(3)
	plan.IBError = 1.0
	plan.IBDelivered = 0
	plan.MaxSendRetries = 1
	w, reg, rec := causalWorld(plan)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() != 0 {
			return nil
		}
		buf := r.Mem(256 << 10)
		return r.Send(p, 1, 1, core.Whole(buf))
	})
	if err == nil {
		t.Fatal("send succeeded despite every WR failing")
	}
	var te *core.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want a TransportError", err)
	}
	if open := reg.OpenSpans(); open != 0 {
		for _, s := range reg.Spans() {
			if !s.Ended {
				t.Errorf("span %s/%s left open", s.Actor, s.Name)
			}
		}
		t.Fatalf("%d spans left open after retry exhaustion", open)
	}
	// The recovery attempts must be visible in the causal stream.
	kinds := map[causal.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds[causal.EvQPReset] == 0 || kinds[causal.EvReplay] == 0 {
		t.Errorf("recovery not recorded: %d qp-resets, %d replays",
			kinds[causal.EvQPReset], kinds[causal.EvReplay])
	}
}

func TestDMAAbortFallbackClosesSpans(t *testing.T) {
	// Every offload staging DMA aborts: the send must fall back to the
	// direct path, deliver intact data, record the fallback, and leave
	// no span open.
	plan := faults.NewPlan(5)
	plan.DMAAbort = 1.0
	w, reg, rec := causalWorld(plan)
	const n = 1 << 20
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(n)
		if r.ID() == 0 {
			fill(buf.Data, 9)
			return r.Send(p, 1, 1, core.Whole(buf))
		}
		if _, err := r.Recv(p, 0, 1, core.Whole(buf)); err != nil {
			return err
		}
		want := make([]byte, n)
		fill(want, 9)
		for i := range want {
			if buf.Data[i] != want[i] {
				return errors.New("fallback path corrupted data")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if open := reg.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open after DMA-abort fallback", open)
	}
	sawFallback := false
	for _, e := range rec.Events() {
		if e.Kind == causal.EvFallback {
			sawFallback = true
			break
		}
	}
	if !sawFallback {
		t.Error("DMA-abort fallback not recorded in the causal stream")
	}
}
