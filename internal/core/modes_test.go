package core_test

// Mode equivalence: every execution mode must deliver identical bytes
// for the same communication pattern — only the virtual timing differs.

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// allWorlds builds one world of each mode with n ranks.
func allWorlds(n int) map[string]*core.World {
	plat := perfmodel.Default()
	return map[string]*core.World{
		"dcfa":           cluster.New(plat, n).DCFAWorld(n, true),
		"dcfa-nooffload": cluster.New(plat, n).DCFAWorld(n, false),
		"host":           cluster.New(plat, n).HostWorld(n),
		"intel-phi":      baseline.PhiMPIWorld(cluster.New(plat, n), n),
		"symmetric":      baseline.SymmetricWorld(cluster.New(plat, n), n),
	}
}

func TestAllModesDeliverIdenticalResults(t *testing.T) {
	const n = 4
	sizes := []int{64, 8192, 64 << 10}
	worlds := allWorlds(n)
	names := make([]string, 0, len(worlds))
	for name := range worlds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := worlds[name]
		t.Run(name, func(t *testing.T) {
			var elapsed sim.Duration
			err := w.Run(func(r *core.Rank) error {
				p := r.Proc()
				start := p.Now()
				// Ring pass: each rank sends to the right, receives
				// from the left, verifying content per hop.
				for _, sz := range sizes {
					sb := r.Mem(sz)
					fill(sb.Data, byte(r.ID()*3+sz%251))
					rb := r.Mem(sz)
					right := (r.ID() + 1) % n
					left := (r.ID() - 1 + n) % n
					if _, err := r.Sendrecv(p, right, sz, core.Whole(sb), left, sz, core.Whole(rb)); err != nil {
						return err
					}
					want := make([]byte, sz)
					fill(want, byte(left*3+sz%251))
					if !bytes.Equal(rb.Data, want) {
						return fmt.Errorf("size %d: hop corrupted", sz)
					}
				}
				// And a reduction for good measure.
				v := r.Mem(8)
				core.PutF64s(v.Data, []float64{float64(r.ID() + 1)})
				if err := r.Allreduce(p, core.Whole(v), core.OpSumF64); err != nil {
					return err
				}
				if got := core.GetF64s(v.Data, 1)[0]; got != 10 {
					return fmt.Errorf("allreduce %v", got)
				}
				if r.ID() == 0 {
					elapsed = p.Now() - start
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if elapsed <= 0 {
				t.Fatal("no virtual time elapsed")
			}
		})
	}
}

func TestFinalizeFlushesQueuedControlPackets(t *testing.T) {
	// One-slot rings + one-sided traffic starve the receiver's DONE
	// behind credit flow control; without finalize the sender hangs
	// after the receiver's body returns.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.EagerSlots = 1
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		const n = 64 << 10
		if r.ID() == 0 {
			// Several rendezvous sends back to back.
			for i := 0; i < 4; i++ {
				buf := r.Mem(n)
				if err := r.Send(p, 1, i, core.Whole(buf)); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 4; i++ {
			buf := r.Mem(n)
			if _, err := r.Recv(p, 0, i, core.Whole(buf)); err != nil {
				return err
			}
		}
		return nil // receiver exits immediately; finalize must flush
	})
	if err != nil {
		t.Fatal(err)
	}
}
