package core_test

// Telemetry must be a pure observer: enabling the metrics registry may
// not change the event schedule, the event count, or a single virtual
// timestamp. These tests run the same workload with metrics on and off
// and require bit-identical fingerprints.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// instrumentedWorkload runs the 4-rank mixed workload (eager and
// rendezvous ring passes, nonblocking pair, collectives) with the given
// registry installed — nil means telemetry disabled.
func instrumentedWorkload(t *testing.T, reg *metrics.Registry) (uint64, int64, sim.Time) {
	t.Helper()
	const n = 4
	c := cluster.New(perfmodel.Default(), n)
	c.SetMetrics(reg)
	w := c.DCFAWorld(n, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n

		for _, sz := range []int{512, 64 << 10} {
			sb, rb := r.Mem(sz), r.Mem(sz)
			if _, err := r.Sendrecv(p, other, sz, core.Whole(sb), left, sz, core.Whole(rb)); err != nil {
				return err
			}
		}

		buf := r.Mem(8 << 10)
		q, err := r.Isend(p, other, 9, core.Whole(buf))
		if err != nil {
			return err
		}
		in := r.Mem(8 << 10)
		q2, err := r.Irecv(p, left, 9, core.Whole(in))
		if err != nil {
			return err
		}
		p.Sleep(3 * sim.Microsecond)
		if err := r.WaitAll(p, q, q2); err != nil {
			return err
		}

		v := r.Mem(8)
		core.PutF64s(v.Data, []float64{float64(r.ID())})
		if err := r.Allreduce(p, core.Whole(v), core.OpSumF64); err != nil {
			return err
		}
		return r.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Eng.Fingerprint(), c.Eng.EventsRun(), c.Eng.Now()
}

// TestMetricsDoNotPerturbSchedule requires that a metrics-enabled run
// and a disabled run of the same workload dispatch the exact same event
// sequence and finish at the same virtual time.
func TestMetricsDoNotPerturbSchedule(t *testing.T) {
	offFP, offN, offT := instrumentedWorkload(t, nil)
	reg := metrics.New()
	onFP, onN, onT := instrumentedWorkload(t, reg)
	if offFP != onFP {
		t.Errorf("metrics changed the event order: fingerprint %#x (off) vs %#x (on)", offFP, onFP)
	}
	if offN != onN {
		t.Errorf("metrics changed the event count: %d (off) vs %d (on)", offN, onN)
	}
	if offT != onT {
		t.Errorf("metrics changed the final virtual time: %v (off) vs %v (on)", offT, onT)
	}
	if reg.OpenSpans() != 0 {
		t.Errorf("%d spans left open after a clean run", reg.OpenSpans())
	}
	// The instrumented run saw real traffic: every rank classified at
	// least one eager and one rendezvous message.
	for rank := 0; rank < 4; rank++ {
		actor := []string{"rank0", "rank1", "rank2", "rank3"}[rank]
		eager := reg.Counter(actor, "proto.eager").Value()
		rzv := reg.Counter(actor, "proto.sender-rzv").Value() +
			reg.Counter(actor, "proto.recv-rzv").Value() +
			reg.Counter(actor, "proto.simultaneous-rzv").Value()
		if eager == 0 || rzv == 0 {
			t.Errorf("%s: expected both eager and rendezvous traffic, got eager=%d rendezvous=%d",
				actor, eager, rzv)
		}
	}
}

// TestMetricsCountAnySourceLocks checks the ANY_SOURCE serialization
// counter against a workload with one wildcard receive.
func TestMetricsCountAnySourceLocks(t *testing.T) {
	reg := metrics.New()
	c := cluster.New(perfmodel.Default(), 2)
	c.SetMetrics(reg)
	w := c.DCFAWorld(2, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(8)
		if r.ID() == 0 {
			_, err := r.Recv(p, core.AnySource, 1, core.Whole(buf))
			return err
		}
		p.Sleep(50 * sim.Microsecond)
		return r.Send(p, 0, 1, core.Whole(buf))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("rank0", "any-source.locks").Value(); got != 1 {
		t.Errorf("any-source.locks = %d, want 1", got)
	}
	if got := reg.Counter("rank1", "any-source.locks").Value(); got != 0 {
		t.Errorf("rank1 any-source.locks = %d, want 0", got)
	}
}
