package core_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func TestProbeSeesPendingMessage(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			buf := r.Mem(256)
			return r.Send(p, 1, 7, core.Whole(buf))
		}
		st, err := r.Probe(p, 0, 7)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Len != 256 {
			return fmt.Errorf("probe status %+v", st)
		}
		// The message is still receivable after the probe.
		buf := r.Mem(256)
		_, err = r.Recv(p, 0, 7, core.Whole(buf))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeReportsRendezvousSize(t *testing.T) {
	_, w := pair(true)
	const n = 128 << 10
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			buf := r.Mem(n)
			return r.Send(p, 1, 1, core.Whole(buf))
		}
		st, err := r.Probe(p, 0, 1)
		if err != nil {
			return err
		}
		if st.Len != n {
			return fmt.Errorf("probe saw %d bytes, want %d (from the RTS)", st.Len, n)
		}
		buf := r.Mem(n)
		_, err = r.Recv(p, 0, 1, core.Whole(buf))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeNonblockingAndAnySource(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 3)
	w := c.DCFAWorld(3, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			if _, ok, err := r.Iprobe(p, 1, 0); err != nil || ok {
				return fmt.Errorf("early Iprobe ok=%v err=%v", ok, err)
			}
			if _, _, err := r.Iprobe(p, 99, 0); !errors.Is(err, core.ErrBadRank) {
				return fmt.Errorf("bad-rank Iprobe err=%v", err)
			}
			st, err := r.Probe(p, core.AnySource, 5)
			if err != nil {
				return err
			}
			if st.Source != 2 {
				return fmt.Errorf("any-source probe found rank %d", st.Source)
			}
			buf := r.Mem(16)
			_, err = r.Recv(p, st.Source, 5, core.Whole(buf))
			return err
		}
		if r.ID() == 2 {
			p.Sleep(100 * sim.Microsecond)
			buf := r.Mem(16)
			return r.Send(p, 0, 5, core.Whole(buf))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitany(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			p.Sleep(200 * sim.Microsecond)
			buf := r.Mem(8)
			return r.Send(p, 1, 2, core.Whole(buf)) // only tag 2 will arrive first
		}
		b1 := r.Mem(8)
		b2 := r.Mem(8)
		q1, err := r.Irecv(p, 0, 1, core.Whole(b1))
		if err != nil {
			return err
		}
		q2, err := r.Irecv(p, 0, 2, core.Whole(b2))
		_ = q2
		if err == nil {
			// Posting tag 1 first consumed seq 0, so the tag-2 message
			// mismatches: expect the first request to error.
			i, _, werr := r.Waitany(p, q1, q2)
			if i != 0 || !errors.Is(werr, core.ErrTagMismatch) {
				return fmt.Errorf("waitany idx=%d err=%v", i, werr)
			}
			return nil
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyEmptyErrors(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		if _, _, err := r.Waitany(r.Proc()); err == nil {
			return errors.New("empty Waitany succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestallAndSendRecvF64s(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			return r.SendF64s(p, 1, 0, []float64{1.5, -2.5, 3.25})
		}
		vals, st, err := r.RecvF64s(p, 0, 0, 3)
		if err != nil {
			return err
		}
		if st.Len != 24 || vals[0] != 1.5 || vals[1] != -2.5 || vals[2] != 3.25 {
			return fmt.Errorf("vals %v status %+v", vals, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentRequestsReuse(t *testing.T) {
	_, w := pair(true)
	const rounds = 5
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(64)
		var pq *core.Persistent
		if r.ID() == 0 {
			pq = r.SendInit(1, 3, core.Whole(buf))
		} else {
			pq = r.RecvInit(0, 3, core.Whole(buf))
		}
		if _, err := pq.Wait(p); err == nil {
			return errors.New("Wait before Start succeeded")
		}
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				buf.Data[0] = byte(i)
			}
			if err := pq.Start(p); err != nil {
				return err
			}
			if _, err := pq.Wait(p); err != nil {
				return err
			}
			if r.ID() == 1 && buf.Data[0] != byte(i) {
				return fmt.Errorf("round %d: got %d", i, buf.Data[0])
			}
		}
		if pq.Starts != rounds {
			return fmt.Errorf("starts %d", pq.Starts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedSendRecvVector(t *testing.T) {
	_, w := pair(true)
	// A 16x16 byte matrix column exchange.
	dt := core.Vector(16, 1, 16, 8) // 16 blocks of one float64, stride 16
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		mat := r.Mem(16 * 16 * 8)
		if r.ID() == 0 {
			vals := make([]float64, 16*16)
			for i := range vals {
				vals[i] = float64(i)
			}
			core.PutF64s(mat.Data, vals)
			// Send column 2.
			return r.SendTyped(p, 1, 0, core.Slice{Buf: mat, Off: 2 * 8, N: dt.Extent()}, dt)
		}
		if _, err := r.RecvTyped(p, 0, 0, core.Slice{Buf: mat, Off: 2 * 8, N: dt.Extent()}, dt); err != nil {
			return err
		}
		got := core.GetF64s(mat.Data, 16*16)
		for row := 0; row < 16; row++ {
			if got[row*16+2] != float64(row*16+2) {
				return fmt.Errorf("row %d col 2: %v", row, got[row*16+2])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedSendTooSmallSliceErrors(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() != 0 {
			return nil
		}
		buf := r.Mem(8)
		dt := core.Vector(4, 1, 4, 8)
		if err := r.SendTyped(p, 1, 0, core.Whole(buf), dt); err == nil {
			return errors.New("typed send with short slice succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffloadedDatatypePackFasterForLargeVectors(t *testing.T) {
	// The paper's future-work offload: delegating the pack loop to the
	// host beats the slow Phi core above the threshold.
	measure := func(offloadPack bool) sim.Duration {
		plat := perfmodel.Default()
		c := cluster.New(plat, 2)
		cfg := core.ConfigFromPlatform(plat)
		cfg.OffloadDatatypePack = offloadPack
		w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
		var elapsed sim.Duration
		dt := core.Vector(4096, 8, 16, 8) // 256 KiB packed
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			mat := r.Mem(dt.Extent())
			if r.ID() == 0 {
				if err := r.Barrier(p); err != nil {
					return err
				}
				start := p.Now()
				if err := r.SendTyped(p, 1, 0, core.Whole(mat), dt); err != nil {
					return err
				}
				elapsed = p.Now() - start
				if offloadPack && r.Stats.OffloadedPacks != 1 {
					return fmt.Errorf("offloaded packs %d", r.Stats.OffloadedPacks)
				}
				return nil
			}
			if err := r.Barrier(p); err != nil {
				return err
			}
			_, err := r.RecvTyped(p, 0, 0, core.Whole(mat), dt)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	local := measure(false)
	offloaded := measure(true)
	if offloaded >= local {
		t.Fatalf("host-offloaded pack (%v) not faster than local (%v)", offloaded, local)
	}
}

func TestSmallVectorsStayLocal(t *testing.T) {
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.OffloadDatatypePack = true
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	dt := core.Vector(8, 1, 2, 8) // 64 bytes packed: below threshold
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		mat := r.Mem(dt.Extent())
		if r.ID() == 0 {
			if err := r.SendTyped(p, 1, 0, core.Whole(mat), dt); err != nil {
				return err
			}
			if r.Stats.OffloadedPacks != 0 {
				return fmt.Errorf("small vector was offloaded")
			}
			return nil
		}
		_, err := r.RecvTyped(p, 0, 0, core.Whole(mat), dt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
