package core

// White-box tests of the buffer cache pool's refcounting, LRU and
// containment logic against a DCFA provider.

import (
	"testing"

	"repro/internal/dcfa"
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/pcie"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// cacheRig builds a single-node DCFA verbs provider and runs fn inside
// a simulated process.
func cacheRig(t *testing.T, capacity int, fn func(p *sim.Proc, c *MRCache, dom *machine.Domain)) {
	t.Helper()
	eng := sim.NewEngine()
	plat := perfmodel.Default()
	fab := ib.NewFabric(eng, plat)
	node := machine.NewNode(0)
	hca := fab.AttachHCA(node)
	bus := pcie.Attach(eng, plat, node)
	mic, _ := dcfa.New(eng, plat, node, hca, bus)
	v := DCFAVerbs{V: mic}
	eng.Spawn("test", func(p *sim.Proc) {
		pd, _ := v.AllocPD(p)
		c := NewMRCache(v, pd, capacity)
		fn(p, c, node.Mic)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMRCacheHitOnContainedRange(t *testing.T) {
	cacheRig(t, 4, func(p *sim.Proc, c *MRCache, dom *machine.Domain) {
		buf := dom.Alloc(64 << 10)
		mr1, err := c.Get(p, dom, buf.Addr, 64<<10)
		if err != nil {
			t.Error(err)
			return
		}
		// A sub-range of the registered region must hit.
		mr2, err := c.Get(p, dom, buf.Addr+4096, 1024)
		if err != nil {
			t.Error(err)
			return
		}
		if mr1 != mr2 {
			t.Error("contained range did not reuse the registration")
		}
		if c.Hits != 1 || c.Misses != 1 {
			t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
		}
		c.Release(p, mr1)
		c.Release(p, mr2)
	})
}

func TestMRCacheEvictsLRUOnlyUnpinned(t *testing.T) {
	cacheRig(t, 2, func(p *sim.Proc, c *MRCache, dom *machine.Domain) {
		bufs := []*machine.Buffer{dom.Alloc(4096), dom.Alloc(4096), dom.Alloc(4096)}
		mr0, _ := c.Get(p, dom, bufs[0].Addr, 4096)
		mr1, _ := c.Get(p, dom, bufs[1].Addr, 4096)
		// Both pinned; a third registration must not evict either.
		mr2, _ := c.Get(p, dom, bufs[2].Addr, 4096)
		if c.Len() != 3 {
			t.Errorf("len=%d, want 3 (all pinned)", c.Len())
		}
		if c.Pinned() != 3 {
			t.Errorf("pinned=%d", c.Pinned())
		}
		// Release the oldest: eviction back to capacity must occur.
		c.Release(p, mr0)
		if c.Len() != 2 {
			t.Errorf("len=%d after release, want 2", c.Len())
		}
		if c.Evictions != 1 {
			t.Errorf("evictions=%d", c.Evictions)
		}
		// The evicted region must be re-registered on next use.
		miss0 := c.Misses
		mrAgain, _ := c.Get(p, dom, bufs[0].Addr, 4096)
		if c.Misses != miss0+1 {
			t.Error("evicted region hit the cache")
		}
		c.Release(p, mr1)
		c.Release(p, mr2)
		c.Release(p, mrAgain)
	})
}

func TestMRCacheDoubleReleasePanics(t *testing.T) {
	cacheRig(t, 2, func(p *sim.Proc, c *MRCache, dom *machine.Domain) {
		buf := dom.Alloc(4096)
		mr, _ := c.Get(p, dom, buf.Addr, 4096)
		c.Release(p, mr)
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic")
			}
		}()
		c.Release(p, mr)
	})
}

func TestMRCacheFlushRequiresUnpinned(t *testing.T) {
	cacheRig(t, 2, func(p *sim.Proc, c *MRCache, dom *machine.Domain) {
		buf := dom.Alloc(4096)
		mr, _ := c.Get(p, dom, buf.Addr, 4096)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("flush with pinned region did not panic")
				}
			}()
			c.Flush(p)
		}()
		c.Release(p, mr)
		if err := c.Flush(p); err != nil {
			t.Error(err)
		}
		if c.Len() != 0 {
			t.Errorf("len=%d after flush", c.Len())
		}
	})
}

func TestMRCacheLRUOrder(t *testing.T) {
	cacheRig(t, 2, func(p *sim.Proc, c *MRCache, dom *machine.Domain) {
		a := dom.Alloc(4096)
		b := dom.Alloc(4096)
		cc := dom.Alloc(4096)
		mrA, _ := c.Get(p, dom, a.Addr, 4096)
		mrB, _ := c.Get(p, dom, b.Addr, 4096)
		c.Release(p, mrA)
		c.Release(p, mrB)
		// Touch A so B becomes LRU.
		mrA2, _ := c.Get(p, dom, a.Addr, 4096)
		c.Release(p, mrA2)
		// Insert C: B must be evicted, A retained.
		mrC, _ := c.Get(p, dom, cc.Addr, 4096)
		c.Release(p, mrC)
		hits := c.Hits
		mrA3, _ := c.Get(p, dom, a.Addr, 4096)
		if c.Hits != hits+1 {
			t.Error("A was evicted instead of B")
		}
		c.Release(p, mrA3)
	})
}
