package core

import "errors"

// Exported error conditions of the MPI layer.
var (
	// ErrTruncate reports a message longer than the posted receive
	// buffer (including the §IV-B3 sender-rendezvous/receiver-eager
	// mis-prediction, where "the receiver will issue an MPI error").
	ErrTruncate = errors.New("core: message truncated: send larger than receive buffer")
	// ErrTagMismatch reports a tag disagreement between the send and
	// the receive holding the same per-pair sequence id.
	ErrTagMismatch = errors.New("core: tag mismatch at matching sequence id")
	// ErrNoOffload reports use of the offload send-buffer verbs on a
	// provider without them (host MPI, proxied MPI).
	ErrNoOffload = errors.New("core: offload send buffer not supported by this provider")
	// ErrBadRank reports a source or destination outside the world.
	ErrBadRank = errors.New("core: rank out of range")
)

// Special rank and tag wildcards, mirroring MPI_ANY_SOURCE/MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)
