package core

import (
	"errors"
	"strconv"
)

// Exported error conditions of the MPI layer.
var (
	// ErrTruncate reports a message longer than the posted receive
	// buffer (including the §IV-B3 sender-rendezvous/receiver-eager
	// mis-prediction, where "the receiver will issue an MPI error").
	ErrTruncate = errors.New("core: message truncated: send larger than receive buffer")
	// ErrTagMismatch reports a tag disagreement between the send and
	// the receive holding the same per-pair sequence id.
	ErrTagMismatch = errors.New("core: tag mismatch at matching sequence id")
	// ErrNoOffload reports use of the offload send-buffer verbs on a
	// provider without them (host MPI, proxied MPI).
	ErrNoOffload = errors.New("core: offload send buffer not supported by this provider")
	// ErrBadRank reports a source or destination outside the world.
	ErrBadRank = errors.New("core: rank out of range")
)

// TransportError reports a work request that exhausted its replay
// budget under a fault plan: the QP was reset and reconnected, the WR
// reissued, and it kept failing. Unrecoverable by design — it surfaces
// as a typed rank error instead of a deadlock.
type TransportError struct {
	Peer  int    // remote rank the WR targeted
	Op    string // work-request kind ("eager", "ctrl", "rndv-write", "rndv-read")
	Tries int    // attempts made (original post + replays)
}

func (e *TransportError) Error() string {
	// Reachable from the progress loop through the error interface, so
	// avoid fmt's interface boxing.
	return "core: " + e.Op + " transfer to rank " + strconv.Itoa(e.Peer) +
		" failed after " + strconv.Itoa(e.Tries) + " attempts"
}

// Special rank and tag wildcards, mirroring MPI_ANY_SOURCE/MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)
