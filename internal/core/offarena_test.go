package core

import (
	"testing"
	"testing/quick"
)

// fakeArena builds an arena without verbs for allocator-only tests.
func fakeArena(size int) *offArena {
	return &offArena{free: []offRange{{0, size}}}
}

func TestArenaFirstFit(t *testing.T) {
	a := fakeArena(1000)
	r1 := a.alloc(100)
	r2 := a.alloc(200)
	if r1 == nil || r2 == nil {
		t.Fatal("allocation failed")
	}
	if r1.off != 0 || r2.off != 100 {
		t.Fatalf("offsets %d %d", r1.off, r2.off)
	}
	if a.alloc(701) != nil {
		t.Fatal("oversized allocation succeeded")
	}
	if a.Failures != 1 {
		t.Fatalf("failures %d", a.Failures)
	}
}

func TestArenaReleaseCoalesces(t *testing.T) {
	a := fakeArena(300)
	r1 := a.alloc(100)
	r2 := a.alloc(100)
	r3 := a.alloc(100)
	a.release(r1)
	a.release(r3)
	if len(a.free) != 2 {
		t.Fatalf("free list %v", a.free)
	}
	a.release(r2) // must merge all three back into one range
	if len(a.free) != 1 || a.free[0] != (offRange{0, 300}) {
		t.Fatalf("free list after full release %v", a.free)
	}
	if a.alloc(300) == nil {
		t.Fatal("full-arena allocation failed after coalesce")
	}
}

func TestArenaPeakTracking(t *testing.T) {
	a := fakeArena(1000)
	r1 := a.alloc(400)
	r2 := a.alloc(400)
	a.release(r1)
	a.release(r2)
	if a.PeakInUse != 800 {
		t.Fatalf("peak %d, want 800", a.PeakInUse)
	}
	if a.inUse != 0 {
		t.Fatalf("in use %d, want 0", a.inUse)
	}
}

func TestArenaWrongArenaPanics(t *testing.T) {
	a := fakeArena(100)
	b := fakeArena(100)
	r := a.alloc(10)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-arena release did not panic")
		}
	}()
	b.release(r)
}

// Property: any alloc/release interleaving keeps free ranges disjoint,
// sorted and within bounds, and the total free+allocated is constant.
func TestQuickArenaInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		const size = 4096
		a := fakeArena(size)
		var live []*offRegion
		liveBytes := 0
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int(op)%512 + 1
				if r := a.alloc(n); r != nil {
					live = append(live, r)
					liveBytes += n
				}
			} else {
				i := int(op) % len(live)
				r := live[i]
				live = append(live[:i], live[i+1:]...)
				a.release(r)
				liveBytes -= r.n
			}
			// Invariants.
			freeBytes := 0
			prevEnd := -1
			for _, fr := range a.free {
				if fr.off >= fr.end || fr.off < 0 || fr.end > size {
					return false
				}
				if fr.off <= prevEnd {
					return false // overlapping or unsorted or uncoalesced-adjacent is tolerated only if gap >0
				}
				prevEnd = fr.end
				freeBytes += fr.end - fr.off
			}
			if freeBytes+liveBytes != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
