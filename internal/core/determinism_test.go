package core_test

// Double-run determinism: the whole MPI stack — protocol selection,
// delegation, DMA and link completions — must dispatch the exact same
// event sequence on every run. The engine fingerprints each dispatched
// (time, seq, proc) tuple; two fresh runs of the same workload must
// produce identical digests.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// mixedWorkload exercises eager and rendezvous point-to-point,
// nonblocking requests, and the collectives on 4 DCFA ranks, then
// returns the engine's event-order digest.
func mixedWorkload(t *testing.T) (uint64, int64, sim.Time) {
	t.Helper()
	fp, events, now, err := runMixedWorkload()
	if err != nil {
		t.Fatal(err)
	}
	return fp, events, now
}

// runMixedWorkload is the workload body, callable off the test
// goroutine: errors return instead of failing a *testing.T.
func runMixedWorkload() (uint64, int64, sim.Time, error) {
	const n = 4
	c := cluster.New(perfmodel.Default(), n)
	w := c.DCFAWorld(n, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n

		// Eager and rendezvous ring passes.
		for _, sz := range []int{512, 64 << 10} {
			sb, rb := r.Mem(sz), r.Mem(sz)
			if _, err := r.Sendrecv(p, other, sz, core.Whole(sb), left, sz, core.Whole(rb)); err != nil {
				return err
			}
		}

		// Nonblocking pair with overlapping compute.
		buf := r.Mem(8 << 10)
		q, err := r.Isend(p, other, 9, core.Whole(buf))
		if err != nil {
			return err
		}
		in := r.Mem(8 << 10)
		q2, err := r.Irecv(p, left, 9, core.Whole(in))
		if err != nil {
			return err
		}
		p.Sleep(3 * sim.Microsecond)
		if err := r.WaitAll(p, q, q2); err != nil {
			return err
		}

		// Collectives.
		v := r.Mem(8)
		core.PutF64s(v.Data, []float64{float64(r.ID())})
		if err := r.Allreduce(p, core.Whole(v), core.OpSumF64); err != nil {
			return err
		}
		return r.Barrier(p)
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return c.Eng.Fingerprint(), c.Eng.EventsRun(), c.Eng.Now(), nil
}

// scaleDeterminismRanks picks the rank count for the thousand-rank
// determinism extensions: the full 1000 normally, a two-leaf fat tree
// under -short, skipped under -race (see race_on_test.go).
func scaleDeterminismRanks(t *testing.T) int {
	t.Helper()
	if raceEnabled {
		t.Skip("thousand-rank runs exceed the race step's budget; the 4-rank mixed workload covers these paths under -race")
	}
	if testing.Short() {
		return 96
	}
	return 1000
}

// runScaleWorkload is the thousand-rank extension body: a ring
// allreduce over the fat-tree fabric with lazy connect, rank 0
// verifying the reduced vector against the host-computed sum.
func runScaleWorkload(ranks int) (uint64, int64, sim.Time, error) {
	res, err := bench.ScaleAllreduce(perfmodel.Default(), bench.ScaleConfig{
		Ranks: ranks, Elems: 1000, Seed: 7, Topo: "fattree", Algo: "ring", Verify: true,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Fingerprint, res.Events, res.SimTime, nil
}

// TestDeterminismDoubleRun runs the workload twice on fresh clusters
// and requires bit-identical schedules.
func TestDeterminismDoubleRun(t *testing.T) {
	fp1, n1, t1 := mixedWorkload(t)
	fp2, n2, t2 := mixedWorkload(t)
	if fp1 != fp2 {
		t.Errorf("event-order fingerprints differ across runs: %#x vs %#x", fp1, fp2)
	}
	if n1 != n2 {
		t.Errorf("events run differ across runs: %d vs %d", n1, n2)
	}
	if t1 != t2 {
		t.Errorf("final virtual times differ across runs: %v vs %v", t1, t2)
	}
}

// TestDeterminismDoubleRunScale is the double-run gate at three orders
// of magnitude more ranks: two fresh 1000-rank ring-allreduce runs
// (lazy connect, fat-tree fabric, ~20M events each) must produce
// identical fingerprints, event counts and virtual end times. -short
// shrinks the fabric to 96 ranks to stay CI-safe.
func TestDeterminismDoubleRunScale(t *testing.T) {
	ranks := scaleDeterminismRanks(t)
	fp1, n1, t1, err := runScaleWorkload(ranks)
	if err != nil {
		t.Fatal(err)
	}
	fp2, n2, t2, err := runScaleWorkload(ranks)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d ranks: fp %#x, %d events, end %v", ranks, fp1, n1, t1)
	if fp1 != fp2 {
		t.Errorf("event-order fingerprints differ across runs: %#x vs %#x", fp1, fp2)
	}
	if n1 != n2 {
		t.Errorf("events run differ across runs: %d vs %d", n1, n2)
	}
	if t1 != t2 {
		t.Errorf("final virtual times differ across runs: %v vs %v", t1, t2)
	}
}
