package core

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := header{
		kind: pktRTS, src: 7, tag: -1234, anyTag: true, seq: 987654321,
		payload: 4096, raddr: 0xDEADBEEF00, rkey: 0x1234, rsize: 1 << 20, credits: 17,
	}
	buf := make([]byte, hdrSize)
	h.encode(buf)
	got := decodeHeader(buf)
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(kind byte, src uint16, tag int32, anyTag bool, seq uint64, payload uint16, raddr uint64, rkey uint32, rsize uint32, credits uint32) bool {
		h := header{
			kind: kind, src: src, tag: tag, anyTag: anyTag, seq: seq,
			payload: int(payload), raddr: raddr, rkey: rkey, rsize: int(rsize), credits: credits,
		}
		buf := make([]byte, hdrSize)
		h.encode(buf)
		return decodeHeader(buf) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTailMarkerNonzero(t *testing.T) {
	// The receiver polls the tail for a nonzero value; the marker must
	// never be zero, including for sequence id 0.
	for _, seq := range []uint64{0, 1, 42, 1 << 40} {
		if tailMarker(seq) == 0 {
			t.Fatalf("tail marker for seq %d is zero", seq)
		}
	}
}

func TestSlotBytesLayout(t *testing.T) {
	if slotBytes(8192) != hdrSize+8192+tailSize {
		t.Fatalf("slot size %d", slotBytes(8192))
	}
}

func TestRingDescSlotAddr(t *testing.T) {
	d := ringDesc{addr: 0x1000, rkey: 5, slots: 4, slotSize: 100}
	if d.slotAddr(0) != 0x1000 || d.slotAddr(3) != 0x1000+300 {
		t.Fatalf("slot addresses %#x %#x", d.slotAddr(0), d.slotAddr(3))
	}
}
