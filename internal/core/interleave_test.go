package core_test

// Property: for any interleaving of sender/receiver timing, message
// size and direction, every payload is delivered byte-exactly and every
// protocol (eager, sender-first, receiver-first, simultaneous) resolves
// correctly.

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

type xfer struct {
	size        int
	sendDelay   sim.Duration
	recvDelay   sim.Duration
	leftToRight bool
}

func runInterleaving(t testing.TB, xs []xfer) *trace.Recorder {
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	tr := trace.New(0)
	cfg.Trace = tr
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		for i, x := range xs {
			sender := 0
			if !x.leftToRight {
				sender = 1
			}
			if err := r.Barrier(p); err != nil {
				return err
			}
			buf := r.Mem(x.size)
			if r.ID() == sender {
				p.Sleep(x.sendDelay)
				for j := range buf.Data {
					buf.Data[j] = byte(j + i)
				}
				if err := r.Send(p, 1-sender, i, core.Whole(buf)); err != nil {
					return err
				}
				continue
			}
			p.Sleep(x.recvDelay)
			st, err := r.Recv(p, sender, i, core.Whole(buf))
			if err != nil {
				return err
			}
			if st.Len != x.size {
				t.Errorf("transfer %d: len %d, want %d", i, st.Len, x.size)
			}
			want := make([]byte, x.size)
			for j := range want {
				want[j] = byte(j + i)
			}
			if !bytes.Equal(buf.Data, want) {
				t.Errorf("transfer %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestQuickProtocolInterleavings(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		xs := make([]xfer, len(raw))
		for i, v := range raw {
			xs[i] = xfer{
				// Sizes straddle the eager (8 KiB) and offload
				// thresholds up to 128 KiB.
				size:        int(v%(128<<10)) + 1,
				sendDelay:   sim.Duration(v%7) * 40 * sim.Microsecond,
				recvDelay:   sim.Duration((v>>3)%7) * 40 * sim.Microsecond,
				leftToRight: v%2 == 0,
			}
		}
		runInterleaving(t, xs)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllFourProtocolsObservedAcrossTimings(t *testing.T) {
	// A fixed schedule engineered to hit all four §IV-B3 protocols.
	tr := runInterleaving(t, []xfer{
		{size: 256, leftToRight: true},                                         // eager
		{size: 64 << 10, recvDelay: 400 * sim.Microsecond, leftToRight: true},  // sender-first
		{size: 64 << 10, sendDelay: 400 * sim.Microsecond, leftToRight: false}, // receiver-first
		{size: 64 << 10, leftToRight: true},                                    // simultaneous-ish
	})
	if tr.Count("eager-send") == 0 {
		t.Errorf("eager never ran: %s", tr.Summary())
	}
	if tr.Count("rdma-read") == 0 {
		t.Errorf("sender-first read never ran: %s", tr.Summary())
	}
	if tr.Count("rdma-write") == 0 {
		t.Errorf("receiver-first write never ran: %s", tr.Summary())
	}
}
