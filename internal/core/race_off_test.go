//go:build !race

package core_test

// raceEnabled mirrors the -race build tag (see race_on_test.go).
const raceEnabled = false
