package core_test

// Failure injection: the MPI layer must surface hardware faults and
// application protocol errors rather than hang or corrupt data.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func TestMissingReceiveIsDetectedAsDeadlock(t *testing.T) {
	// Rank 0 sends a rendezvous message nobody receives and waits for
	// the DONE that never comes: the engine must name the stuck ranks
	// instead of hanging.
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			buf := r.Mem(64 << 10)
			return r.Send(p, 1, 1, core.Whole(buf))
		}
		// Rank 1 never posts the receive but stays blocked forever on
		// a message from nowhere.
		buf := r.Mem(8)
		_, err := r.Recv(p, 0, 999, core.Whole(buf))
		return err
	})
	var de *sim.DeadlockError
	if errors.As(err, &de) {
		if len(de.Stuck) == 0 {
			t.Fatalf("deadlock with no stuck ranks: %v", de)
		}
		return
	}
	// A tag-mismatch error is also an acceptable detection: the recv
	// consumed the sequence id with the wrong tag.
	if err == nil {
		t.Fatal("lost rendezvous neither deadlocked nor errored")
	}
}

func TestSendToSelfWrongTagSurfaces(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() != 0 {
			return nil
		}
		b := r.Mem(8)
		if err := r.Send(p, 0, 1, core.Whole(b)); err != nil {
			return err
		}
		_, err := r.Recv(p, 0, 2, core.Whole(b))
		if !errors.Is(err, core.ErrTagMismatch) {
			return fmt.Errorf("got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfTruncationSurfaces(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() != 0 {
			return nil
		}
		big := r.Mem(128)
		if err := r.Send(p, 0, 1, core.Whole(big)); err != nil {
			return err
		}
		small := r.Mem(16)
		_, err := r.Recv(p, 0, 1, core.Whole(small))
		if !errors.Is(err, core.ErrTruncate) {
			return fmt.Errorf("got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankBodyErrorPropagatesWithRankID(t *testing.T) {
	_, w := pair(true)
	sentinel := errors.New("application blew up")
	err := w.Run(func(r *core.Rank) error {
		if r.ID() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error %q does not name the failing rank", err)
	}
}

func TestPanicInRankBodySurfacesAsEngineError(t *testing.T) {
	_, w := pair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 1 {
			p.Sleep(sim.Microsecond)
			panic("rank exploded")
		}
		// Rank 0 blocks forever; the engine must still terminate.
		buf := r.Mem(8)
		_, err := r.Recv(p, 1, 0, core.Whole(buf))
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "rank exploded") {
		t.Fatalf("got %v", err)
	}
}

func TestOffloadArenaExhaustionFallsBackToDirect(t *testing.T) {
	// Arena smaller than one message: the send must still complete via
	// the direct (registered user buffer) path.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.OffloadArena = 4 << 10 // 4 KiB arena, 64 KiB message
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(64 << 10)
		if r.ID() == 0 {
			fill(buf.Data, 5)
			if err := r.Send(p, 1, 1, core.Whole(buf)); err != nil {
				return err
			}
			if r.Stats.OffloadedSends != 0 {
				return fmt.Errorf("send claimed to be offloaded despite tiny arena")
			}
			return nil
		}
		if _, err := r.Recv(p, 0, 1, core.Whole(buf)); err != nil {
			return err
		}
		want := make([]byte, 64<<10)
		fill(want, 5)
		for i := range want {
			if buf.Data[i] != want[i] {
				return errors.New("fallback path corrupted data")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyInFlightRendezvousSharesArena(t *testing.T) {
	// More concurrent large sends than the arena can hold at once:
	// later ones fall back, everything completes, no leak.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.OffloadArena = 256 << 10
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	const n = 64 << 10
	const count = 8
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			var reqs []*core.Request
			for i := 0; i < count; i++ {
				b := r.Mem(n)
				fill(b.Data, byte(i))
				q, err := r.Isend(p, 1, i, core.Whole(b))
				if err != nil {
					return err
				}
				reqs = append(reqs, q)
			}
			return r.WaitAll(p, reqs...)
		}
		for i := 0; i < count; i++ {
			b := r.Mem(n)
			if _, err := r.Recv(p, 0, i, core.Whole(b)); err != nil {
				return err
			}
			want := make([]byte, n)
			fill(want, byte(i))
			for j := range want {
				if b.Data[j] != want[j] {
					return fmt.Errorf("message %d corrupted", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTinyMRCacheStillCorrect(t *testing.T) {
	// Capacity 1 with concurrent large send+recv: in-flight regions are
	// pinned, so nothing faults, and the payloads stay intact.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.Offload = false
	cfg.MRCacheCap = 1
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	const n = 64 << 10
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		for i := 0; i < 4; i++ {
			sb := r.Mem(n)
			rb := r.Mem(n)
			fill(sb.Data, byte(r.ID()*10+i))
			if _, err := r.Sendrecv(p, other, i, core.Whole(sb), other, i, core.Whole(rb)); err != nil {
				return err
			}
			want := make([]byte, n)
			fill(want, byte(other*10+i))
			for j := range want {
				if rb.Data[j] != want[j] {
					return fmt.Errorf("iteration %d corrupted", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
