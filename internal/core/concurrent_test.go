package core_test

// Concurrent-engine isolation: the dynamic witness for what the
// simlint globalmut rule proves statically. Two simulations with the
// same seed share a process but no package-level mutable state, so
// running them on real goroutines at the same time — under -race in
// CI — must yield exactly the schedule a solo run yields. A
// fingerprint mismatch here means instance state leaked to package
// level (or worse, a data race the race detector will also flag).

import (
	"testing"
)

func TestConcurrentEnginesDeterminism(t *testing.T) {
	type result struct {
		fp     uint64
		events int64
		err    error
	}

	// The raw concurrency below is the point of the test: two engines
	// must be independent under the host scheduler, so sim.Queue (which
	// serializes onto one calendar) cannot be used.

	//simlint:ignore rawgo collecting results from deliberately-parallel engines; both join before any assertion
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		//simlint:ignore rawgo the test runs two whole simulations on real goroutines on purpose: -race plus fingerprint equality is the isolation witness
		go func() {
			fp, events, _, err := runMixedWorkload()
			results <- result{fp: fp, events: events, err: err}
		}()
	}
	a, b := <-results, <-results
	for _, r := range []result{a, b} {
		if r.err != nil {
			t.Fatal(r.err)
		}
	}
	if a.fp != b.fp {
		t.Errorf("concurrent engines diverged: fingerprints %#x vs %#x", a.fp, b.fp)
	}
	if a.events != b.events {
		t.Errorf("concurrent engines diverged: %d vs %d events", a.events, b.events)
	}

	// And both must match a run with the process to itself.
	fp, events, _, err := runMixedWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if a.fp != fp {
		t.Errorf("concurrent run fingerprint %#x differs from solo run %#x", a.fp, fp)
	}
	if a.events != events {
		t.Errorf("concurrent run dispatched %d events, solo run %d", a.events, events)
	}
}

// TestConcurrentEnginesScaleDeterminism re-runs the isolation witness
// at 1000 ranks: two whole thousand-rank ring-allreduce simulations on
// real goroutines must not perturb each other's schedules. A mismatch
// here is instance state leaking to package level under a load the
// 4-rank witness can't generate (lazy connect, per-pair map growth,
// WR/packet pools). -short shrinks to 96 ranks; -race skips (see
// race_on_test.go).
func TestConcurrentEnginesScaleDeterminism(t *testing.T) {
	ranks := scaleDeterminismRanks(t)
	type result struct {
		fp     uint64
		events int64
		err    error
	}
	//simlint:ignore rawgo collecting results from deliberately-parallel engines; both join before any assertion
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		//simlint:ignore rawgo two whole scale simulations on real goroutines on purpose: cross-engine isolation at 1000 ranks is the point
		go func() {
			fp, events, _, err := runScaleWorkload(ranks)
			results <- result{fp: fp, events: events, err: err}
		}()
	}
	a, b := <-results, <-results
	for _, r := range []result{a, b} {
		if r.err != nil {
			t.Fatal(r.err)
		}
	}
	if a.fp != b.fp {
		t.Errorf("concurrent scale engines diverged: fingerprints %#x vs %#x", a.fp, b.fp)
	}
	if a.events != b.events {
		t.Errorf("concurrent scale engines diverged: %d vs %d events", a.events, b.events)
	}
}
