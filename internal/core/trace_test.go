package core_test

// Protocol observability: the trace recorder proves which §IV-B3
// protocol each exchange actually took.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tracedPair builds a 2-rank DCFA world with tracing enabled.
func tracedPair(offload bool) (*core.World, *trace.Recorder) {
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.Offload = offload
	tr := trace.New(0)
	cfg.Trace = tr
	return core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2)), tr
}

// oneTransfer runs a single n-byte send with the given relative delays.
func oneTransfer(t *testing.T, w *core.World, n int, sd, rd sim.Duration) {
	t.Helper()
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(n)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			p.Sleep(sd)
			return r.Send(p, 1, 9, core.Whole(buf))
		}
		p.Sleep(rd)
		_, err := r.Recv(p, 0, 9, core.Whole(buf))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceEagerProtocol(t *testing.T) {
	w, tr := tracedPair(true)
	oneTransfer(t, w, 512, 0, 0)
	if tr.Count("eager-send") == 0 {
		t.Fatalf("no eager-send traced; summary: %s", tr.Summary())
	}
	if tr.Count("rts-send") != 0 || tr.Count("rdma-read") != 0 {
		t.Fatalf("small message used rendezvous: %s", tr.Summary())
	}
}

func TestTraceSenderFirstUsesRDMARead(t *testing.T) {
	w, tr := tracedPair(false)
	oneTransfer(t, w, 64<<10, 0, 400*sim.Microsecond)
	if tr.Count("rts-send") == 0 {
		t.Fatalf("no RTS traced: %s", tr.Summary())
	}
	if tr.Count("rdma-read") == 0 {
		t.Fatalf("sender-first did not RDMA-read: %s", tr.Summary())
	}
	if tr.Count("rdma-write") != 0 {
		t.Fatalf("sender-first used a write: %s", tr.Summary())
	}
}

func TestTraceReceiverFirstUsesRDMAWrite(t *testing.T) {
	w, tr := tracedPair(false)
	oneTransfer(t, w, 64<<10, 400*sim.Microsecond, 0)
	if tr.Count("rtr-send") == 0 {
		t.Fatalf("no RTR traced: %s", tr.Summary())
	}
	if tr.Count("recv-first") == 0 || tr.Count("rdma-write") == 0 {
		t.Fatalf("receiver-first did not RDMA-write: %s", tr.Summary())
	}
	if tr.Count("rdma-read") != 0 {
		t.Fatalf("receiver-first used a read: %s", tr.Summary())
	}
}

func TestTraceSimultaneousDropsRTR(t *testing.T) {
	w, tr := tracedPair(false)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		const n = 64 << 10
		sb := r.Mem(n)
		rb := r.Mem(n)
		other := 1 - r.ID()
		if err := r.Barrier(p); err != nil {
			return err
		}
		_, err := r.Sendrecv(p, other, 1, core.Whole(sb), other, 1, core.Whole(rb))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both directions were simultaneous: RTS and RTR crossed, the
	// senders disregarded the RTRs and the receivers read.
	if tr.Count("simultaneous-rtr-drop") == 0 {
		t.Fatalf("no simultaneous drop traced: %s", tr.Summary())
	}
	if tr.Count("rdma-read") == 0 {
		t.Fatalf("simultaneous case did not read: %s", tr.Summary())
	}
}

func TestTraceOffloadSyncOnLargeSends(t *testing.T) {
	w, tr := tracedPair(true)
	oneTransfer(t, w, 1<<20, 0, 0)
	if tr.Count("offload-sync") == 0 {
		t.Fatalf("large send did not stage through the bounce buffer: %s", tr.Summary())
	}
}

func TestTraceMispredictDropsStaleRTR(t *testing.T) {
	w, tr := tracedPair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			small := r.Mem(256)
			if err := r.Barrier(p); err != nil {
				return err
			}
			p.Sleep(300 * sim.Microsecond)
			if err := r.Send(p, 1, 1, core.Whole(small)); err != nil {
				return err
			}
			return r.Barrier(p)
		}
		big := r.Mem(64 << 10)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if _, err := r.Recv(p, 0, 1, core.Whole(big)); err != nil {
			return err
		}
		return r.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count("mispredict-rtr-drop") == 0 {
		t.Fatalf("stale RTR was not dropped: %s", tr.Summary())
	}
}

func TestTraceAnySourceMatch(t *testing.T) {
	w, tr := tracedPair(true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if r.ID() == 0 {
			buf := r.Mem(8)
			_, err := r.Recv(p, core.AnySource, 1, core.Whole(buf))
			return err
		}
		p.Sleep(50 * sim.Microsecond)
		buf := r.Mem(8)
		return r.Send(p, 0, 1, core.Whole(buf))
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count("any-source-match") == 0 {
		t.Fatalf("ANY_SOURCE match not traced: %s", tr.Summary())
	}
}
