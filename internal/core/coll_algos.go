package core

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Internal tag space for the algorithm-specific collective phases
// (continuing the -100.. block in collectives.go).
const (
	tagARScat    = -109 // ring allreduce, reduce-scatter phase
	tagARGath    = -110 // ring allreduce, allgather phase
	tagARFold    = -111 // recursive-doubling allreduce exchanges
	tagBcastScat = -112 // scatter-allgather bcast
)

// Collective algorithm codes, carried in causal events (Event.Pkt) and
// selected per call by size and world shape — or pinned through the
// Coll* config strings. New codes append at the end: recorded traces
// identify algorithms by value.
const (
	algoNone uint8 = iota
	algoNaive
	algoRing
	algoRD
	algoBinomial
	algoScatterAG
	algoDissem
	algoTree
	algoPairwise
	algoLinear
)

func algoName(a uint8) string {
	switch a {
	case algoNaive:
		return "naive"
	case algoRing:
		return "ring"
	case algoRD:
		return "rd"
	case algoBinomial:
		return "binomial"
	case algoScatterAG:
		return "scatter-allgather"
	case algoDissem:
		return "dissemination"
	case algoTree:
		return "tree"
	case algoPairwise:
		return "pairwise"
	case algoLinear:
		return "linear"
	default:
		return "none"
	}
}

// ---- Selection ----
//
// The selectors mirror the classic MPICH/OpenMPI decision structure:
// latency-bound regimes (small payloads, or fewer elements than ranks)
// take logarithmic-depth algorithms, bandwidth-bound regimes take the
// bandwidth-optimal ring/scatter family whose per-rank traffic is
// 2·(n-1)/n · N instead of 2·log₂(n) · N.

func (r *Rank) pickAllreduce(s Slice, op Op) (uint8, error) {
	switch r.w.Cfg.CollAllreduce {
	case "naive":
		return algoNaive, nil
	case "ring":
		return algoRing, nil
	case "rd":
		return algoRD, nil
	case "":
	default:
		return 0, fmt.Errorf("core: unknown allreduce algorithm %q", r.w.Cfg.CollAllreduce)
	}
	n := r.w.Size()
	if n == 1 {
		return algoNaive, nil
	}
	if s.N/op.ElemSize < n || s.N <= r.w.Cfg.EagerMax {
		return algoRD, nil
	}
	return algoRing, nil
}

func (r *Rank) pickBcast(s Slice) (uint8, error) {
	switch r.w.Cfg.CollBcast {
	case "binomial":
		return algoBinomial, nil
	case "scatter-allgather":
		return algoScatterAG, nil
	case "":
	default:
		return 0, fmt.Errorf("core: unknown bcast algorithm %q", r.w.Cfg.CollBcast)
	}
	n := r.w.Size()
	if s.N > r.w.Cfg.EagerMax && n >= 8 {
		return algoScatterAG, nil
	}
	return algoBinomial, nil
}

func (r *Rank) pickBarrier() (uint8, error) {
	switch r.w.Cfg.CollBarrier {
	case "dissemination":
		return algoDissem, nil
	case "tree":
		return algoTree, nil
	case "":
	default:
		return 0, fmt.Errorf("core: unknown barrier algorithm %q", r.w.Cfg.CollBarrier)
	}
	if r.w.Size() > 32 {
		// Dissemination is O(n log n) messages across the job (every
		// rank talks to log n distinct peers, so lazy connect degrades
		// to n log n endpoint pairs); the tree keeps both logarithmic.
		return algoTree, nil
	}
	return algoDissem, nil
}

func (r *Rank) pickAlltoall() (uint8, error) {
	switch r.w.Cfg.CollAlltoall {
	case "pairwise":
		return algoPairwise, nil
	case "linear", "naive":
		return algoLinear, nil
	case "":
	default:
		return 0, fmt.Errorf("core: unknown alltoall algorithm %q", r.w.Cfg.CollAlltoall)
	}
	return algoPairwise, nil
}

// ---- Allreduce algorithms ----

// allreduceNaive is reduce-to-0 plus broadcast — the reference the
// property tests hold every other algorithm to. It calls the binomial
// bodies directly so the oracle never re-enters the selector.
func (r *Rank) allreduceNaive(p *sim.Proc, s Slice, op Op) error {
	if err := r.Reduce(p, 0, s, op); err != nil {
		return err
	}
	return r.bcastBinomial(p, 0, s)
}

// allreduceRing is the bandwidth-optimal ring: a reduce-scatter pass
// leaves chunk i fully combined on rank i, then an allgather pass
// circulates the combined chunks. Each rank moves 2·(n-1)/n · N bytes
// regardless of n, which is why it wins for large payloads.
func (r *Rank) allreduceRing(p *sim.Proc, s Slice, op Op) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	elems := s.N / op.ElemSize
	// Chunk c covers elements [c·elems/n, (c+1)·elems/n): contiguous,
	// element-aligned, and within one byte-per-element of balanced.
	off := func(c int) int { return c * elems / n * op.ElemSize }
	clen := func(c int) int { return off(c+1) - off(c) }
	maxChunk := 0
	for c := 0; c < n; c++ {
		if l := clen(c); l > maxChunk {
			maxChunk = l
		}
	}
	var tmp Slice
	if maxChunk > 0 {
		buf := r.Mem(maxChunk)
		defer r.v.Domain().Free(buf)
		tmp = Whole(buf)
	}
	right := (r.id + 1) % n
	left := (r.id - 1 + n) % n
	// Reduce-scatter: after step k we hold the combination of k+2
	// contributions for chunk (id-k-1) mod n.
	for step := 0; step < n-1; step++ {
		sc := (r.id - step + n) % n
		rc := (r.id - step - 1 + n) % n
		if _, err := r.Sendrecv(p,
			right, tagARScat, s.Sub(off(sc), clen(sc)),
			left, tagARScat, tmp.Sub(0, clen(rc))); err != nil {
			return err
		}
		op.applyChecked(s.Sub(off(rc), clen(rc)).Bytes(), tmp.Sub(0, clen(rc)).Bytes())
	}
	// Allgather: circulate the finished chunks around the same ring.
	for step := 0; step < n-1; step++ {
		sc := (r.id + 1 - step + n) % n
		rc := (r.id - step + n) % n
		if _, err := r.Sendrecv(p,
			right, tagARGath, s.Sub(off(sc), clen(sc)),
			left, tagARGath, s.Sub(off(rc), clen(rc))); err != nil {
			return err
		}
	}
	return nil
}

// allreduceRD is recursive doubling with the MPICH non-power-of-two
// fold: the first rem = n - 2^⌊log₂n⌋ even ranks fold into their odd
// neighbor, the surviving 2^⌊log₂n⌋ ranks exchange-and-combine across
// doubling distances, and the folded ranks get the result back. Depth
// log₂(n) with full-size exchanges — the latency-bound choice. Assumes
// a commutative op (every built-in Op is).
func (r *Rank) allreduceRD(p *sim.Proc, s Slice, op Op) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	buf := r.Mem(s.N)
	defer r.v.Domain().Free(buf)
	tmp := Whole(buf)
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	id := r.id
	newrank := -1
	switch {
	case id < 2*rem && id%2 == 0:
		if err := r.Send(p, id+1, tagARFold, s); err != nil {
			return err
		}
	case id < 2*rem:
		if _, err := r.Recv(p, id-1, tagARFold, tmp); err != nil {
			return err
		}
		op.applyChecked(s.Bytes(), tmp.Bytes())
		newrank = id / 2
	default:
		newrank = id - rem
	}
	if newrank != -1 {
		for mask := 1; mask < pof2; mask *= 2 {
			pn := newrank ^ mask
			partner := pn + rem
			if pn < rem {
				partner = pn*2 + 1
			}
			if _, err := r.Sendrecv(p,
				partner, tagARFold, s,
				partner, tagARFold, tmp); err != nil {
				return err
			}
			op.applyChecked(s.Bytes(), tmp.Bytes())
		}
	}
	if id < 2*rem {
		if id%2 != 0 {
			return r.Send(p, id-1, tagARFold, s)
		}
		_, err := r.Recv(p, id+1, tagARFold, s)
		return err
	}
	return nil
}

// ---- Bcast algorithms ----

// bcastScatterAG is the MPICH large-message broadcast: a binomial
// scatter leaves byte chunk v on the rank with root-relative rank v,
// then a ring allgather reassembles the full payload everywhere. Total
// per-rank traffic ~2·(n-1)/n · N versus the binomial tree's log₂(n)·N.
func (r *Rank) bcastScatterAG(p *sim.Proc, root int, s Slice) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	v := vrank(r.id, root, n)
	ss := (s.N + n - 1) / n
	// Binomial scatter in root-relative space: each rank receives the
	// trailing region it is responsible for from the parent at its
	// lowest set bit, then forwards the halves below that bit.
	curr := 0
	if v == 0 {
		curr = s.N
	}
	mask := 1
	for mask < n {
		if v&mask != 0 {
			if recvSize := s.N - v*ss; recvSize > 0 {
				st, err := r.Recv(p, arank(v-mask, root, n), tagBcastScat, s.Sub(v*ss, recvSize))
				if err != nil {
					return err
				}
				curr = st.Len
			}
			break
		}
		mask *= 2
	}
	for mask /= 2; mask > 0; mask /= 2 {
		if v+mask >= n {
			continue
		}
		if sendSize := curr - ss*mask; sendSize > 0 {
			if err := r.Send(p, arank(v+mask, root, n), tagBcastScat, s.Sub((v+mask)*ss, sendSize)); err != nil {
				return err
			}
			curr -= sendSize
		}
	}
	// Ring allgather over the scattered chunks (chunk c is bytes
	// [c·ss, min((c+1)·ss, N)); trailing chunks may be empty).
	off := func(c int) int {
		if o := c * ss; o < s.N {
			return o
		}
		return s.N
	}
	clen := func(c int) int { return off(c+1) - off(c) }
	right := arank((v+1)%n, root, n)
	left := arank((v-1+n)%n, root, n)
	for step := 0; step < n-1; step++ {
		sc := (v - step + n) % n
		rc := (v - step - 1 + n) % n
		if _, err := r.Sendrecv(p,
			right, tagBcastScat, s.Sub(off(sc), clen(sc)),
			left, tagBcastScat, s.Sub(off(rc), clen(rc))); err != nil {
			return err
		}
	}
	return nil
}

// ---- Barrier algorithms ----

// barrierTree is a binomial fan-in/fan-out barrier: ranks report up a
// binomial tree to rank 0 and the release walks back down. 2·log₂(n)
// zero-byte messages per rank worst case, and — unlike dissemination —
// each rank only ever talks to its tree neighbors, keeping the job's
// connection graph O(n) under lazy connect.
func (r *Rank) barrierTree(p *sim.Proc) error {
	n := r.w.Size()
	if n == 1 {
		return nil
	}
	zero := Slice{}
	mask := 1
	for mask < n {
		if r.id&mask != 0 {
			parent := r.id ^ mask
			if err := r.Send(p, parent, tagBarrier, zero); err != nil {
				return err
			}
			if _, err := r.Recv(p, parent, tagBarrier, zero); err != nil {
				return err
			}
			break
		}
		if child := r.id | mask; child < n {
			if _, err := r.Recv(p, child, tagBarrier, zero); err != nil {
				return err
			}
		}
		mask *= 2
	}
	for mask /= 2; mask >= 1; mask /= 2 {
		child := r.id | mask
		if child < n && r.id&mask == 0 {
			if err := r.Send(p, child, tagBarrier, zero); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- Alltoall algorithms ----

// alltoallLinear posts every receive, then every send, and waits — the
// oracle the pairwise exchange is tested against.
func (r *Rank) alltoallLinear(p *sim.Proc, src, dst Slice, blockN int) error {
	n := r.w.Size()
	if src.N < n*blockN || dst.N < n*blockN {
		return fmt.Errorf("core: alltoall buffers too small")
	}
	reqs := make([]*Request, 0, 2*n)
	for i := 0; i < n; i++ {
		q, err := r.Irecv(p, i, tagAlltoall, dst.Sub(i*blockN, blockN))
		if err != nil {
			return errors.Join(err, r.WaitAll(p, reqs...))
		}
		reqs = append(reqs, q)
	}
	for i := 0; i < n; i++ {
		q, err := r.Isend(p, i, tagAlltoall, src.Sub(i*blockN, blockN))
		if err != nil {
			return errors.Join(err, r.WaitAll(p, reqs...))
		}
		reqs = append(reqs, q)
	}
	return r.WaitAll(p, reqs...)
}
