package core_test

// Seeded protocol-torture suite: randomized Send/Isend/Recv/Irecv
// traffic (including ANY_SOURCE rounds) across message sizes straddling
// the eager/rendezvous threshold, run under an active fault plan. Every
// payload is verified byte-for-byte, every request must complete, and
// the whole run — faults, recoveries, retries — must be bit-identical
// across two runs with the same seed.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dcfa"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tortureRNG is a splitmix64 generator for workload construction (the
// repo bans math/rand to keep runs reproducible).
type tortureRNG struct{ s uint64 }

func (g *tortureRNG) next() uint64 {
	g.s += 0x9E3779B97F4A7C15
	z := g.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (g *tortureRNG) intn(n int) int { return int(g.next() % uint64(n)) }

// tortureSizes straddle the 8 KiB eager threshold: eager, boundary,
// boundary+1 (smallest rendezvous), and a large rendezvous that crosses
// the offload-send threshold.
var tortureSizes = []int{64, 1024, 8192, 8193, 32768}

const tortureMaxSize = 32768

// tmsg is one point-to-point message of the generated workload.
type tmsg struct {
	src, dst, size, tag int
}

// tround is one bulk-synchronous round; anySrc rounds post every
// receive as MPI_ANY_SOURCE with the round's shared tag.
type tround struct {
	msgs   []tmsg
	anySrc bool
}

// torturePlanFor generates the deterministic message schedule all ranks
// share. Tags are unique per round in directed rounds; ANY_SOURCE
// rounds share one tag so a wildcard can match any of the round's
// messages but never a collective's control packet (those use negative
// tags).
func torturePlanFor(seed uint64, ranks, rounds, msgs int) []tround {
	g := tortureRNG{s: seed}
	plan := make([]tround, rounds)
	for rd := range plan {
		plan[rd].anySrc = rd%2 == 1
		for m := 0; m < msgs; m++ {
			src := g.intn(ranks)
			dst := g.intn(ranks - 1)
			if dst >= src {
				dst++
			}
			tag := rd*1000 + m
			if plan[rd].anySrc {
				tag = rd * 1000
			}
			plan[rd].msgs = append(plan[rd].msgs, tmsg{
				src: src, dst: dst, size: tortureSizes[g.intn(len(tortureSizes))], tag: tag,
			})
		}
	}
	return plan
}

// pat is the deterministic payload byte for position i of a message.
func pat(seed uint64, rd, src, size int, i int) byte {
	return byte(uint64(i)*2654435761 + seed + uint64(rd*31+src*7+size))
}

func fillPat(buf []byte, seed uint64, rd, src, size int) {
	for i := range buf {
		buf[i] = pat(seed, rd, src, size, i)
	}
}

func checkPat(buf []byte, seed uint64, rd, src, size int) error {
	for i := range buf {
		if buf[i] != pat(seed, rd, src, size, i) {
			return fmt.Errorf("payload corrupt at byte %d of %d (round %d src %d)", i, len(buf), rd, src)
		}
	}
	return nil
}

// tortureResult captures everything two same-seed runs must agree on.
type tortureResult struct {
	fp     uint64
	events int64
	now    sim.Time
	stats  core.Stats
	inj    *faults.Injector
}

// runTorture executes the seeded workload on a 4-rank DCFA world under
// the given fault plan (nil = no injector) with optional telemetry.
func runTorture(t *testing.T, seed uint64, plan *faults.Plan, reg *metrics.Registry, tr *trace.Recorder) tortureResult {
	t.Helper()
	const ranks = 4
	sched := torturePlanFor(seed, ranks, 6, 10)
	c := cluster.New(perfmodel.Default(), ranks)
	c.SetMetrics(reg)
	inj := c.SetFaults(plan)
	w := c.DCFAWorld(ranks, true)
	w.Cfg.Trace = tr
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		me := r.ID()
		for rd, ro := range sched {
			var reqs []*core.Request
			type pendingRecv struct {
				req *core.Request
				buf core.Slice
				m   *tmsg // nil for ANY_SOURCE receives
			}
			var recvs []pendingRecv
			if ro.anySrc {
				for mi := range ro.msgs {
					if ro.msgs[mi].dst != me {
						continue
					}
					s := core.Whole(r.Mem(tortureMaxSize))
					q, err := r.Irecv(p, core.AnySource, ro.msgs[mi].tag, s)
					if err != nil {
						return err
					}
					recvs = append(recvs, pendingRecv{req: q, buf: s})
					reqs = append(reqs, q)
				}
			} else {
				for mi := range ro.msgs {
					m := &ro.msgs[mi]
					if m.dst != me {
						continue
					}
					s := core.Whole(r.Mem(m.size))
					q, err := r.Irecv(p, m.src, m.tag, s)
					if err != nil {
						return err
					}
					recvs = append(recvs, pendingRecv{req: q, buf: s, m: m})
					reqs = append(reqs, q)
				}
			}
			for mi := range ro.msgs {
				m := &ro.msgs[mi]
				if m.src != me {
					continue
				}
				s := core.Whole(r.Mem(m.size))
				fillPat(s.Bytes(), seed, rd, m.src, m.size)
				q, err := r.Isend(p, m.dst, m.tag, s)
				if err != nil {
					return err
				}
				reqs = append(reqs, q)
			}
			if err := r.WaitAll(p, reqs...); err != nil {
				return fmt.Errorf("round %d: %w", rd, err)
			}
			for _, q := range reqs {
				if !q.Done() {
					return fmt.Errorf("round %d: leaked request (WaitAll returned with it pending)", rd)
				}
			}
			// Verify every receive byte-for-byte. ANY_SOURCE receives
			// identify their message through the completion status.
			for _, pr := range recvs {
				st := pr.req.Status()
				m := pr.m
				if m == nil {
					for mi := range ro.msgs {
						cand := &ro.msgs[mi]
						if cand.dst == me && cand.src == st.Source && cand.size == st.Len {
							m = cand
							break
						}
					}
					if m == nil {
						return fmt.Errorf("round %d: ANY_SOURCE matched unknown message %+v", rd, st)
					}
				}
				if st.Source != m.src || st.Len != m.size {
					return fmt.Errorf("round %d: status %+v, want src %d len %d", rd, st, m.src, m.size)
				}
				if err := checkPat(pr.buf.Bytes()[:st.Len], seed, rd, m.src, m.size); err != nil {
					return fmt.Errorf("round %d: %w", rd, err)
				}
			}
			if err := r.Barrier(p); err != nil {
				return fmt.Errorf("round %d barrier: %w", rd, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("torture run (seed %d): %v", seed, err)
	}
	// Span hygiene: every message-lifecycle span opened during the run —
	// including ones that crossed a QP reset, WR replay or DMA-abort
	// fallback — must have been closed.
	if reg != nil {
		if open := reg.OpenSpans(); open != 0 {
			t.Fatalf("torture run (seed %d): %d spans left open", seed, open)
		}
	}
	res := tortureResult{fp: c.Eng.Fingerprint(), events: c.Eng.EventsRun(), now: c.Eng.Now(), inj: inj}
	for i := 0; i < ranks; i++ {
		s := w.Rank(i).Stats
		res.stats.MsgsSent += s.MsgsSent
		res.stats.EagerSends += s.EagerSends
		res.stats.RndvSends += s.RndvSends
		res.stats.Retries += s.Retries
		res.stats.QPResets += s.QPResets
		res.stats.ReplaysDeduped += s.ReplaysDeduped
	}
	return res
}

// tallies extracts an injector's injection counts for comparison.
func tallies(i *faults.Injector) [5]int64 {
	return [5]int64{i.IBFaults, i.IBDropped, i.CmdFaults, i.DMADelayed, i.DMAAborted}
}

// tortureFaults is the active plan the suite tortures under.
func tortureFaults(seed uint64) *faults.Plan {
	p := faults.NewPlan(seed)
	p.IBError = 0.05
	p.Cmd = 0.05
	p.DMADelay = 0.1
	p.DMAAbort = 0.1
	return p
}

// tortureARElems are the per-round element counts of the allreduce
// torture: payload sizes 64 B … 32.8 KB straddle the 8 KiB eager
// threshold in both directions, so ring chunks travel eager and
// rendezvous (and cross the offload-send threshold) under faults.
var tortureARElems = []int{8, 129, 1024, 4100}

// runTortureAllreduce executes seeded ring-allreduce rounds on a
// 4-rank DCFA world under the given fault plan. Every rank checks the
// reduced vector element-wise against the host-computed sum each round
// — a replayed or deduplicated chunk that corrupted a partial
// reduction shows up as a wrong element, not just a changed schedule.
func runTortureAllreduce(t *testing.T, seed uint64, plan *faults.Plan) tortureResult {
	t.Helper()
	const ranks = 4
	fill := func(g *tortureRNG, elems int) []float64 {
		vs := make([]float64, elems)
		for i := range vs {
			vs[i] = float64(g.intn(512))
		}
		return vs
	}
	c := cluster.New(perfmodel.Default(), ranks)
	inj := c.SetFaults(plan)
	w := c.DCFAWorld(ranks, true)
	w.Cfg.CollAllreduce = "ring"
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		me := r.ID()
		for rd, elems := range tortureARElems {
			buf := r.Mem(elems * 8)
			g := tortureRNG{s: seed + uint64(rd*31+me)}
			core.PutF64s(buf.Data, fill(&g, elems))
			if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
				return fmt.Errorf("round %d: %w", rd, err)
			}
			want := make([]float64, elems)
			for id := 0; id < ranks; id++ {
				gg := tortureRNG{s: seed + uint64(rd*31+id)}
				for i, v := range fill(&gg, elems) {
					want[i] += v
				}
			}
			for i := range want {
				got := math.Float64frombits(binary.LittleEndian.Uint64(buf.Data[i*8:]))
				if got != want[i] {
					return fmt.Errorf("round %d: element %d = %v, want %v", rd, i, got, want[i])
				}
			}
			if err := r.Barrier(p); err != nil {
				return fmt.Errorf("round %d barrier: %w", rd, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("allreduce torture (seed %d): %v", seed, err)
	}
	res := tortureResult{fp: c.Eng.Fingerprint(), events: c.Eng.EventsRun(), now: c.Eng.Now(), inj: inj}
	for i := 0; i < ranks; i++ {
		s := w.Rank(i).Stats
		res.stats.MsgsSent += s.MsgsSent
		res.stats.EagerSends += s.EagerSends
		res.stats.RndvSends += s.RndvSends
		res.stats.Retries += s.Retries
		res.stats.QPResets += s.QPResets
		res.stats.ReplaysDeduped += s.ReplaysDeduped
	}
	return res
}

// TestTortureRingAllreduceUnderFaults: the ring allreduce — chunked
// reduce-scatter plus allgather, the schedule the thousand-rank bench
// runs — must survive IB and CMD faults on 4 DCFA ranks with balanced
// recovery ledgers, bit-identically across same-seed runs.
func TestTortureRingAllreduceUnderFaults(t *testing.T) {
	plan := func(s uint64) *faults.Plan {
		p := faults.NewPlan(s)
		p.IBError = 0.05
		// The collective issues far fewer delegation commands than the
		// point-to-point torture, so CMD faults need a higher rate to
		// fire reliably.
		p.Cmd = 0.15
		return p
	}
	a := runTortureAllreduce(t, 11, plan(11))
	b := runTortureAllreduce(t, 11, plan(11))
	if a.fp != b.fp || a.events != b.events || a.now != b.now {
		t.Errorf("same seed diverged: fp %#x/%#x events %d/%d now %v/%v",
			a.fp, b.fp, a.events, b.events, a.now, b.now)
	}
	if tallies(a.inj) != tallies(b.inj) {
		t.Errorf("fault tallies diverged: %+v vs %+v", a.inj, b.inj)
	}
	if a.stats != b.stats {
		t.Errorf("recovery stats diverged: %+v vs %+v", a.stats, b.stats)
	}

	// The plan must actually have exercised both fault layers.
	if a.inj.IBFaults == 0 || a.inj.CmdFaults == 0 {
		t.Errorf("expected IB and CMD injections, got %+v", a.inj)
	}
	// Ledger balance: every recoverable transport fault is matched by
	// exactly one replay, and IB faults force QP resets.
	if a.stats.Retries != a.inj.IBFaults {
		t.Errorf("replays %d != injected IB faults %d", a.stats.Retries, a.inj.IBFaults)
	}
	if a.inj.IBFaults > 0 && a.stats.QPResets == 0 {
		t.Error("IB faults occurred but no QP was ever reset")
	}
	// The ring chunks crossed the eager threshold in both directions.
	if a.stats.EagerSends == 0 || a.stats.RndvSends == 0 {
		t.Errorf("workload not mixed: eager=%d rndv=%d", a.stats.EagerSends, a.stats.RndvSends)
	}

	c := runTortureAllreduce(t, 12, plan(12))
	if c.fp == a.fp && c.now == a.now {
		t.Error("different seeds produced an identical run")
	}
}

// TestTortureSameSeedIsBitIdentical runs the faulted workload twice
// with one seed and requires identical fingerprints, event counts,
// virtual end times, fault tallies and recovery counters — then checks
// a different seed actually changes the schedule.
func TestTortureSameSeedIsBitIdentical(t *testing.T) {
	a := runTorture(t, 7, tortureFaults(7), nil, nil)
	b := runTorture(t, 7, tortureFaults(7), nil, nil)
	if a.fp != b.fp || a.events != b.events || a.now != b.now {
		t.Errorf("same seed diverged: fp %#x/%#x events %d/%d now %v/%v",
			a.fp, b.fp, a.events, b.events, a.now, b.now)
	}
	if tallies(a.inj) != tallies(b.inj) {
		t.Errorf("fault tallies diverged: %+v vs %+v", a.inj, b.inj)
	}
	if a.stats != b.stats {
		t.Errorf("recovery stats diverged: %+v vs %+v", a.stats, b.stats)
	}

	// The plan must actually have fired in every layer.
	if a.inj.IBFaults == 0 || a.inj.CmdFaults == 0 || a.inj.DMADelayed+a.inj.DMAAborted == 0 {
		t.Errorf("expected injections in every layer, got %+v", a.inj)
	}
	// Every recoverable transport fault is matched by exactly one
	// replay (the workload never exhausts the retry budget).
	if a.stats.Retries != a.inj.IBFaults {
		t.Errorf("replays %d != injected IB faults %d", a.stats.Retries, a.inj.IBFaults)
	}
	if a.inj.IBFaults > 0 && a.stats.QPResets == 0 {
		t.Error("IB faults occurred but no QP was ever reset")
	}
	// The workload crossed the eager threshold in both directions.
	if a.stats.EagerSends == 0 || a.stats.RndvSends == 0 {
		t.Errorf("workload not mixed: eager=%d rndv=%d", a.stats.EagerSends, a.stats.RndvSends)
	}

	c := runTorture(t, 8, tortureFaults(8), nil, nil)
	if c.fp == a.fp && c.now == a.now {
		t.Error("different seeds produced an identical run")
	}
}

// TestZeroRatePlanDoesNotPerturbSchedule: installing a fault plan whose
// rates are all zero must leave the event schedule bit-identical to a
// run with no injector at all, and tally nothing.
func TestZeroRatePlanDoesNotPerturbSchedule(t *testing.T) {
	off := runTorture(t, 7, nil, nil, nil)
	zero := runTorture(t, 7, faults.NewPlan(7), nil, nil)
	if off.fp != zero.fp || off.events != zero.events || off.now != zero.now {
		t.Errorf("zero-rate plan perturbed the schedule: fp %#x/%#x events %d/%d now %v/%v",
			off.fp, zero.fp, off.events, zero.events, off.now, zero.now)
	}
	if zero.inj.IBFaults+zero.inj.CmdFaults+zero.inj.DMADelayed+zero.inj.DMAAborted != 0 {
		t.Errorf("zero-rate plan injected: %+v", zero.inj)
	}
	if zero.stats.Retries+zero.stats.QPResets+zero.stats.ReplaysDeduped != 0 {
		t.Errorf("zero-rate plan recovered something: %+v", zero.stats)
	}
}

// TestTelemetryDoesNotPerturbFaultSchedule extends the metrics
// passivity guarantee to fault-active runs: metrics on/off and trace
// on/off must all share one fingerprint, and the fault decisions (which
// hash virtual time) must be identical.
func TestTelemetryDoesNotPerturbFaultSchedule(t *testing.T) {
	base := runTorture(t, 7, tortureFaults(7), nil, nil)
	reg := metrics.New()
	withMetrics := runTorture(t, 7, tortureFaults(7), reg, nil)
	withTrace := runTorture(t, 7, tortureFaults(7), nil, trace.New(1<<16))
	both := runTorture(t, 7, tortureFaults(7), metrics.New(), trace.New(1<<16))
	for name, r := range map[string]tortureResult{
		"metrics": withMetrics, "trace": withTrace, "metrics+trace": both,
	} {
		if r.fp != base.fp || r.events != base.events || r.now != base.now {
			t.Errorf("%s perturbed the faulted schedule: fp %#x/%#x events %d/%d now %v/%v",
				name, base.fp, r.fp, base.events, r.events, base.now, r.now)
		}
		if tallies(r.inj) != tallies(base.inj) {
			t.Errorf("%s changed fault decisions: %+v vs %+v", name, base.inj, r.inj)
		}
	}
	// The metrics counters must agree with the recovery stats.
	var retries, resets, deduped int64
	for i := 0; i < 4; i++ {
		actor := fmt.Sprintf("rank%d", i)
		retries += reg.Counter(actor, "faults.retries").Value()
		resets += reg.Counter(actor, "faults.qp-resets").Value()
		deduped += reg.Counter(actor, "faults.replays-deduped").Value()
	}
	if retries != withMetrics.stats.Retries || resets != withMetrics.stats.QPResets || deduped != withMetrics.stats.ReplaysDeduped {
		t.Errorf("metrics (%d/%d/%d) disagree with stats %+v", retries, resets, deduped, withMetrics.stats)
	}
	if reg.OpenSpans() != 0 {
		t.Errorf("%d spans left open after a faulted run", reg.OpenSpans())
	}
}

// TestCmdTimeoutErrorIsNotADeadlock: a CMD channel that never recovers
// must surface as a typed *dcfa.CmdTimeoutError — matchable with
// errors.As and distinct from the engine's *sim.DeadlockError — while a
// genuine deadlock (missing receive) still reports as DeadlockError.
func TestCmdTimeoutErrorIsNotADeadlock(t *testing.T) {
	plan := faults.NewPlan(3)
	plan.Cmd = 1.0 // every command rejected, forever
	plan.CmdDeadline = 100 * sim.Microsecond
	c := cluster.New(perfmodel.Default(), 2)
	c.SetFaults(plan)
	w := c.DCFAWorld(2, true)
	err := w.Run(func(r *core.Rank) error { return nil })
	if err == nil {
		t.Fatal("run with a dead CMD channel succeeded")
	}
	var cte *dcfa.CmdTimeoutError
	if !errors.As(err, &cte) {
		t.Fatalf("error %v is not a CmdTimeoutError", err)
	}
	if cte.Tries < 2 || cte.Elapsed < plan.CmdDeadline/2 {
		t.Errorf("timeout gave up too early: %+v", cte)
	}
	var de *sim.DeadlockError
	if errors.As(err, &de) {
		t.Errorf("CMD timeout misreported as engine deadlock: %v", err)
	}

	// Control: an actual deadlock is still typed as one.
	c2 := cluster.New(perfmodel.Default(), 2)
	w2 := c2.DCFAWorld(2, true)
	err = w2.Run(func(r *core.Rank) error {
		if r.ID() == 0 {
			buf := r.Mem(64)
			_, err := r.Recv(r.Proc(), 1, 1, core.Whole(buf))
			return err
		}
		return nil // rank 1 never sends
	})
	if !errors.As(err, &de) {
		t.Fatalf("missing send reported %v, want DeadlockError", err)
	}
	if errors.As(err, &cte) {
		t.Errorf("deadlock misreported as CMD timeout: %v", err)
	}
}
