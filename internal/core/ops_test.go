package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestOpSumF64(t *testing.T) {
	a := make([]byte, 32)
	b := make([]byte, 32)
	PutF64s(a, []float64{1, 2, 3, 4})
	PutF64s(b, []float64{10, 20, 30, 40})
	OpSumF64.applyChecked(a, b)
	got := GetF64s(a, 4)
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum %v, want %v", got, want)
		}
	}
}

func TestOpMaxMinF64(t *testing.T) {
	a := make([]byte, 16)
	b := make([]byte, 16)
	PutF64s(a, []float64{1, 9})
	PutF64s(b, []float64{5, 2})
	OpMaxF64.applyChecked(a, b)
	if got := GetF64s(a, 2); got[0] != 5 || got[1] != 9 {
		t.Fatalf("max %v", got)
	}
	PutF64s(a, []float64{1, 9})
	OpMinF64.applyChecked(a, b)
	if got := GetF64s(a, 2); got[0] != 1 || got[1] != 2 {
		t.Fatalf("min %v", got)
	}
}

func TestOpSumMaxI64(t *testing.T) {
	a := make([]byte, 16)
	b := make([]byte, 16)
	putI64(a, 0, -5)
	putI64(a, 1, 100)
	putI64(b, 0, 7)
	putI64(b, 1, -100)
	OpSumI64.applyChecked(a, b)
	if i64(a, 0) != 2 || i64(a, 1) != 0 {
		t.Fatalf("sum %d %d", i64(a, 0), i64(a, 1))
	}
	putI64(a, 0, -5)
	putI64(a, 1, 100)
	OpMaxI64.applyChecked(a, b)
	if i64(a, 0) != 7 || i64(a, 1) != 100 {
		t.Fatalf("max %d %d", i64(a, 0), i64(a, 1))
	}
}

func TestOpBandU8(t *testing.T) {
	a := []byte{0xFF, 0x0F}
	b := []byte{0xF0, 0xFF}
	OpBandU8.applyChecked(a, b)
	if a[0] != 0xF0 || a[1] != 0x0F {
		t.Fatalf("band %v", a)
	}
}

func TestOpLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	OpSumF64.applyChecked(make([]byte, 8), make([]byte, 16))
}

func TestF64EncodingSpecials(t *testing.T) {
	b := make([]byte, 24)
	vals := []float64{math.Inf(1), math.Copysign(0, -1), 1e-300}
	PutF64s(b, vals)
	got := GetF64s(b, 3)
	if !math.IsInf(got[0], 1) || math.Signbit(got[1]) != true || got[2] != 1e-300 {
		t.Fatalf("specials %v", got)
	}
}

func TestDatatypeContiguous(t *testing.T) {
	d := Contiguous(10, 8)
	if d.Extent() != 80 || d.PackedSize() != 80 {
		t.Fatalf("extent %d packed %d", d.Extent(), d.PackedSize())
	}
	src := make([]byte, 80)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 80)
	d.Pack(dst, src)
	if !bytes.Equal(dst, src) {
		t.Fatal("contiguous pack not identity")
	}
}

func TestDatatypeVector(t *testing.T) {
	// A "column" of a 4x4 byte matrix: 4 blocks of 1, stride 4.
	d := Vector(4, 1, 4, 1)
	if d.PackedSize() != 4 || d.Extent() != 13 {
		t.Fatalf("packed %d extent %d", d.PackedSize(), d.Extent())
	}
	src := []byte{
		0, 1, 2, 3,
		10, 11, 12, 13,
		20, 21, 22, 23,
		30, 31, 32, 33,
	}
	packed := make([]byte, 4)
	d.Pack(packed, src[1:]) // column 1
	want := []byte{1, 11, 21, 31}
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed %v, want %v", packed, want)
	}
	out := make([]byte, 16)
	d.Unpack(out[1:], packed)
	for i, v := range want {
		if out[1+4*i] != v {
			t.Fatalf("unpack row %d got %d want %d", i, out[1+4*i], v)
		}
	}
}

// Property: Unpack(Pack(x)) restores the strided elements for random
// vector shapes.
func TestQuickVectorPackUnpack(t *testing.T) {
	f := func(count, blockLen, pad uint8, seed int64) bool {
		c := int(count%8) + 1
		bl := int(blockLen%8) + 1
		stride := bl + int(pad%8)
		d := Vector(c, bl, stride, 8)
		src := make([]byte, d.Extent())
		x := seed
		for i := range src {
			x = x*6364136223846793005 + 1442695040888963407
			src[i] = byte(x >> 56)
		}
		packed := make([]byte, d.PackedSize())
		d.Pack(packed, src)
		out := make([]byte, d.Extent())
		d.Unpack(out, packed)
		// Every in-block byte must round trip.
		for cIdx := 0; cIdx < c; cIdx++ {
			for j := 0; j < bl*8; j++ {
				off := cIdx*stride*8 + j
				if out[off] != src[off] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
