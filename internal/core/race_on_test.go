//go:build race

package core_test

// raceEnabled mirrors the -race build tag. The thousand-rank scale
// determinism tests bow out under the race detector: its ~10× slowdown
// would push the ~20M-event runs past the CI race step's budget, and
// the same code paths run race-checked at 4 ranks via the mixed
// workload.
const raceEnabled = true
