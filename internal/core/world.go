package core

import (
	"errors"
	"fmt"

	"repro/internal/causal"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config tunes the MPI library.
type Config struct {
	// EagerMax is the eager/rendezvous protocol switch in bytes.
	EagerMax int
	// EagerSlots is the per-peer eager ring depth.
	EagerSlots int
	// MRCacheCap is the buffer cache pool capacity.
	MRCacheCap int
	// Offload enables the offloading send-buffer design (only effective
	// on providers that support it).
	Offload bool
	// OffloadMinSize is the message size at which offloading starts
	// ("an offloading send buffer starting from 8Kbytes shows the best
	// performance").
	OffloadMinSize int
	// OffloadArena is the persistent offload MR size per rank.
	OffloadArena int
	// OffloadDatatypePack delegates noncontiguous datatype packing to
	// the host CPU through the DCFA-MPI CMD channel — the offload the
	// paper's future-work section proposes for "communication using
	// user defined data types".
	OffloadDatatypePack bool
	// OffloadPackMinSize is the packed-size threshold above which the
	// delegation pays off (below it the command round trip dominates).
	OffloadPackMinSize int
	// Trace, when non-nil, records protocol events on the virtual
	// timeline (protocol selection, handshakes, credits).
	Trace *trace.Recorder
	// Metrics, when non-nil, records per-rank counters, latency
	// histograms and message-lifecycle spans. Instrumentation is
	// passive and virtual-time-only: enabling it must not change the
	// engine's event sequence (see internal/metrics).
	Metrics *metrics.Registry
	// Faults, when non-nil with nonzero rates, is the deterministic
	// fault injector shared with the transport layers; the MPI layer
	// consults it only for recovery policy (retry budget), never for
	// injection decisions. A nil or zero-rate injector leaves every
	// code path and fingerprint unchanged.
	Faults *faults.Injector
	// Causal, when non-nil, records structured lifecycle events for
	// the cross-rank causal profiler (internal/causal). Recording is
	// passive — value appends only, no engine interaction — so enabling
	// it must not change the fingerprint.
	Causal *causal.Recorder

	// ConnectMode selects bootstrap wiring. "eager" builds every
	// peer-pair endpoint (QP, eager ring, staging MR) up front — the
	// historical all-pairs behavior, O(n²) resources across the job.
	// "lazy" creates a pair's endpoints on both ranks at the pair's
	// first Isend/Irecv, which is what makes thousand-rank jobs whose
	// communication graph is sparse (ring, tree) feasible. "" or
	// "auto" picks lazy at LazyConnectMin ranks and above.
	ConnectMode string

	// CollAllreduce, CollBcast, CollBarrier and CollAlltoall pin the
	// collective algorithm ("" = size/topology-driven auto selection).
	// Recognized names: allreduce "naive"|"ring"|"rd"; bcast
	// "binomial"|"scatter-allgather"; barrier "dissemination"|"tree";
	// alltoall "pairwise"|"linear".
	CollAllreduce string
	CollBcast     string
	CollBarrier   string
	CollAlltoall  string
}

// LazyConnectMin is the world size at which ConnectMode "auto"
// switches from eager all-pairs bootstrap to lazy pairwise connect.
const LazyConnectMin = 16

// lazyConnect resolves the effective connect mode.
func (w *World) lazyConnect() bool {
	switch w.Cfg.ConnectMode {
	case "lazy":
		return true
	case "eager":
		return false
	default:
		return w.Size() >= LazyConnectMin
	}
}

// ConfigFromPlatform derives the paper-tuned configuration.
func ConfigFromPlatform(plat *perfmodel.Platform) Config {
	return Config{
		EagerMax:       plat.EagerMax,
		EagerSlots:     plat.EagerSlots,
		MRCacheCap:     plat.MRCacheEntries,
		Offload:        true,
		OffloadMinSize: plat.OffloadMinSize,
		OffloadArena:   16 << 20,
	}
}

// Env is the per-rank environment: a verbs provider plus the node it
// runs on.
type Env struct {
	V    Verbs
	Node *machine.Node
}

// World is one MPI job.
type World struct {
	Eng   *sim.Engine
	Plat  *perfmodel.Platform
	Cfg   Config
	envs  []Env
	ranks []*Rank

	syncN  int
	syncEv *sim.Event
	errs   []error

	// connInFlight serializes lazy pair bootstrap: the first rank to
	// touch a pair claims it here and builds both halves; a rank
	// reaching ensurePeer for the same pair mid-build waits on the
	// event instead of double-creating QPs (keyed lo-rank, hi-rank).
	connInFlight map[[2]int]*sim.Event
}

// NewWorld builds a world of len(envs) ranks.
func NewWorld(eng *sim.Engine, plat *perfmodel.Platform, cfg Config, envs []Env) *World {
	if cfg.EagerMax <= 0 {
		cfg.EagerMax = plat.EagerMax
	}
	if cfg.EagerSlots <= 0 {
		cfg.EagerSlots = plat.EagerSlots
	}
	if cfg.EagerSlots < 2 {
		// One slot per direction is reserved for credit returns, so
		// rings need at least two slots to make progress.
		cfg.EagerSlots = 2
	}
	if cfg.MRCacheCap <= 0 {
		cfg.MRCacheCap = plat.MRCacheEntries
	}
	if cfg.OffloadMinSize <= 0 {
		cfg.OffloadMinSize = plat.OffloadMinSize
	}
	if cfg.OffloadArena <= 0 {
		cfg.OffloadArena = 16 << 20
	}
	if cfg.OffloadPackMinSize <= 0 {
		cfg.OffloadPackMinSize = plat.OffloadPackMinSize
	}
	w := &World{Eng: eng, Plat: plat, Cfg: cfg, envs: envs}
	w.syncEv = sim.NewEvent(eng)
	w.connInFlight = make(map[[2]int]*sim.Event)
	for i, e := range envs {
		w.ranks = append(w.ranks, &Rank{w: w, id: i, v: e.V})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i (available after Run started it; mainly for
// inspection in tests and reports).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// hostSync is the out-of-band bootstrap barrier (the process manager's
// job, not MPI traffic). Every rank must call it the same number of
// times.
func (w *World) hostSync(p *sim.Proc) {
	w.syncN++
	if w.syncN == len(w.ranks) {
		w.syncN = 0
		ev := w.syncEv
		w.syncEv = sim.NewEvent(w.Eng)
		ev.Fire()
		return
	}
	w.syncEv.Wait(p)
}

// Launch spawns all rank processes running body. The caller drives the
// engine (allowing multiple worlds or extra processes on one engine).
func (w *World) Launch(body func(r *Rank) error) {
	w.errs = make([]error, len(w.ranks))
	for i := range w.ranks {
		rank := w.ranks[i]
		w.Eng.Spawn(fmt.Sprintf("mpi-rank%d", rank.id), func(p *sim.Proc) {
			rank.proc = p
			if err := rank.setup(p); err != nil {
				w.errs[rank.id] = fmt.Errorf("rank %d setup: %w", rank.id, err)
				w.hostSync(p) // keep the barrier balanced
				w.hostSync(p)
				return
			}
			w.hostSync(p)
			if err := rank.connect(p); err != nil {
				w.errs[rank.id] = fmt.Errorf("rank %d connect: %w", rank.id, err)
				w.hostSync(p)
				return
			}
			w.hostSync(p)
			if err := body(rank); err != nil {
				w.errs[rank.id] = fmt.Errorf("rank %d: %w", rank.id, err)
				return
			}
			rank.finalize(p)
		})
	}
}

// Run launches the ranks, runs the engine to completion and returns the
// first error. A rank error and an engine error (e.g. the deadlock a
// failed rank leaves behind) are joined so callers can match either
// with errors.As.
func (w *World) Run(body func(r *Rank) error) error {
	w.Launch(body)
	engErr := w.Eng.Run()
	var rankErr error
	for _, err := range w.errs {
		if err != nil {
			rankErr = err
			break
		}
	}
	if engErr != nil && rankErr != nil {
		return errors.Join(rankErr, engErr)
	}
	if engErr != nil {
		return engErr
	}
	return rankErr
}

// Errs exposes the per-rank errors after Run.
func (w *World) Errs() []error { return w.errs }
