package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Resolved-protocol kinds, recorded per message endpoint as counters
// (proto.<kind>) and as span kinds in the Perfetto export. They mirror
// §IV-B3: eager, sender-first rendezvous, receiver-first rendezvous,
// simultaneous send/receive rendezvous, plus loopback.
const (
	KindEager     = "eager"
	KindSenderRzv = "sender-rzv"
	KindRecvRzv   = "recv-rzv"
	KindSimulRzv  = "simultaneous-rzv"
	KindSelf      = "self"
)

// rankMetrics holds one rank's telemetry handles. The zero value (no
// registry installed) is fully inert: every handle is nil and every
// record is a nil-check no-op, so un-instrumented runs pay nothing.
type rankMetrics struct {
	reg   *metrics.Registry
	actor string

	protoEager  *metrics.Counter
	protoSender *metrics.Counter
	protoRecv   *metrics.Counter
	protoSimul  *metrics.Counter
	protoSelf   *metrics.Counter
	mispredicts *metrics.Counter
	anyLocks    *metrics.Counter
	offStaged   *metrics.Counter
	offFallback *metrics.Counter

	// Fault-recovery observability: WR replays after a completion
	// error, QP reset+reconnect cycles, and replayed packets the
	// receiver discarded by transport sequence number.
	faultRetries   *metrics.Counter
	qpResets       *metrics.Counter
	replaysDeduped *metrics.Counter

	sendLat  *metrics.Histogram
	recvLat  *metrics.Histogram
	matchLat *metrics.Histogram
	rndvRTT  *metrics.Histogram
}

func newRankMetrics(reg *metrics.Registry, id int) rankMetrics {
	if reg == nil {
		return rankMetrics{}
	}
	actor := fmt.Sprintf("rank%d", id)
	return rankMetrics{
		reg:   reg,
		actor: actor,

		protoEager:  reg.Counter(actor, "proto.eager"),
		protoSender: reg.Counter(actor, "proto.sender-rzv"),
		protoRecv:   reg.Counter(actor, "proto.recv-rzv"),
		protoSimul:  reg.Counter(actor, "proto.simultaneous-rzv"),
		protoSelf:   reg.Counter(actor, "proto.self"),
		mispredicts: reg.Counter(actor, "proto.mispredicts"),
		anyLocks:    reg.Counter(actor, "any-source.locks"),
		offStaged:   reg.Counter(actor, "offload.staged-bytes"),
		offFallback: reg.Counter(actor, "offload.fallbacks"),

		faultRetries:   reg.Counter(actor, "faults.retries"),
		qpResets:       reg.Counter(actor, "faults.qp-resets"),
		replaysDeduped: reg.Counter(actor, "faults.replays-deduped"),

		sendLat:  reg.Histogram(actor, "send.latency", metrics.TimeBuckets),
		recvLat:  reg.Histogram(actor, "recv.latency", metrics.TimeBuckets),
		matchLat: reg.Histogram(actor, "match.latency", metrics.TimeBuckets),
		rndvRTT:  reg.Histogram(actor, "rndv.rtt", metrics.TimeBuckets),
	}
}

// span opens a message-lifecycle span on this rank's track (nil when
// telemetry is off).
func (m *rankMetrics) span(t sim.Time, name string) *metrics.Span {
	return m.reg.Begin(t, m.actor, name)
}

// collBegin counts one collective call under its selected algorithm and
// opens the call's span (nil when telemetry is off; Counter and Span
// are nil-safe). The counter name is coll.<op>.<algo> so reports can
// tell ring-allreduce traffic from naive-allreduce traffic.
func (m *rankMetrics) collBegin(t sim.Time, op, algo string) *metrics.Span {
	if m.reg == nil {
		return nil
	}
	m.reg.Counter(m.actor, "coll."+op+"."+algo).Inc()
	return m.reg.Begin(t, m.actor, "coll."+op).Attr("algo", algo)
}

// resolve classifies a request's protocol: it bumps the per-kind
// counter and stamps the lifecycle span. Each request resolves exactly
// once (the call sites are the protocol-decision points).
func (m *rankMetrics) resolve(req *Request, kind string) {
	req.proto = protoOf(kind)
	switch kind {
	case KindEager:
		m.protoEager.Inc()
	case KindSenderRzv:
		m.protoSender.Inc()
	case KindRecvRzv:
		m.protoRecv.Inc()
	case KindSimulRzv:
		m.protoSimul.Inc()
	case KindSelf:
		m.protoSelf.Inc()
	}
	req.span.SetKind(kind)
}
