package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// maxUserTag bounds user tags so communicator ids can be encoded above
// them.
const maxUserTag = 1 << 16

// Comm is a sub-communicator: an ordered group of world ranks with a
// private tag space.
//
// Matching still runs on per-world-pair sequence ids (§IV-B3), so two
// communicators that share a rank *pair* must not have messages in
// flight between that pair at the same time. Groups produced by Split
// have disjoint pair sets across colors, and row/column grids share no
// pairs, so the common patterns are safe.
type Comm struct {
	r       *Rank
	id      int
	members []int // world ranks, indexed by comm rank
	myRank  int
}

// CommWorld returns the world as a communicator.
func (r *Rank) CommWorld() *Comm {
	members := make([]int, r.w.Size())
	for i := range members {
		members[i] = i
	}
	return &Comm{r: r, id: 0, members: members, myRank: r.id}
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the group size.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(i int) int { return c.members[i] }

// tag maps a user tag into this communicator's tag space.
func (c *Comm) tag(t int) int {
	if t < 0 || t >= maxUserTag {
		panic(fmt.Sprintf("core: communicator tags must be in [0,%d): %d", maxUserTag, t))
	}
	return (c.id+1)*maxUserTag + t
}

// Split partitions the communicator by color, ordering each new group
// by (key, old rank) — MPI_Comm_split. It is collective: every member
// must call it. Ranks passing color < 0 receive nil (MPI_UNDEFINED).
func (c *Comm) Split(p *sim.Proc, color, key int) (*Comm, error) {
	r := c.r
	// Allgather (color, key) over the current communicator.
	mine := r.Mem(16)
	PutF64s(mine.Data, []float64{float64(color), float64(key)})
	all := r.Mem(16 * c.Size())
	if err := c.Allgather(p, Whole(mine), Whole(all)); err != nil {
		return nil, err
	}
	vals := GetF64s(all.Data, 2*c.Size())
	type entry struct{ color, key, world int }
	var group []entry
	for i := 0; i < c.Size(); i++ {
		col := int(vals[2*i])
		if col == color && color >= 0 {
			group = append(group, entry{col, int(vals[2*i+1]), c.members[i]})
		}
	}
	r.splitSeq++
	if color < 0 {
		return nil, nil
	}
	sort.Slice(group, func(a, b int) bool {
		if group[a].key != group[b].key {
			return group[a].key < group[b].key
		}
		return group[a].world < group[b].world
	})
	nc := &Comm{r: r, id: r.splitSeq, members: make([]int, len(group)), myRank: -1}
	for i, e := range group {
		nc.members[i] = e.world
		if e.world == r.id {
			nc.myRank = i
		}
	}
	return nc, nil
}

// ---- Point-to-point on the communicator ----

// Send is a blocking send to comm rank dst.
func (c *Comm) Send(p *sim.Proc, dst, tag int, s Slice) error {
	return c.r.Send(p, c.members[dst], c.tag(tag), s)
}

// Recv is a blocking receive from comm rank src (AnySource allowed).
func (c *Comm) Recv(p *sim.Proc, src, tag int, s Slice) (Status, error) {
	ws := src
	if src != AnySource {
		ws = c.members[src]
	}
	t := AnyTag
	if tag != AnyTag {
		t = c.tag(tag)
	}
	st, err := c.r.Recv(p, ws, t, s)
	if err != nil {
		return st, err
	}
	return c.localStatus(st), nil
}

// Isend / Irecv are the nonblocking forms.
func (c *Comm) Isend(p *sim.Proc, dst, tag int, s Slice) (*Request, error) {
	return c.r.Isend(p, c.members[dst], c.tag(tag), s)
}

func (c *Comm) Irecv(p *sim.Proc, src, tag int, s Slice) (*Request, error) {
	ws := src
	if src != AnySource {
		ws = c.members[src]
	}
	t := AnyTag
	if tag != AnyTag {
		t = c.tag(tag)
	}
	return c.r.Irecv(p, ws, t, s)
}

// localStatus translates a world status into comm coordinates.
func (c *Comm) localStatus(st Status) Status {
	for i, w := range c.members {
		if w == st.Source {
			st.Source = i
			break
		}
	}
	if st.Tag >= maxUserTag {
		st.Tag = st.Tag % maxUserTag
	}
	return st
}

// Sendrecv exchanges with two comm ranks.
func (c *Comm) Sendrecv(p *sim.Proc, dst, stag int, sbuf Slice, src, rtag int, rbuf Slice) (Status, error) {
	sq, err := c.Isend(p, dst, stag, sbuf)
	if err != nil {
		return Status{}, err
	}
	rq, err := c.Irecv(p, src, rtag, rbuf)
	if err != nil {
		// Drain the already-posted send before bailing out.
		return Status{}, errors.Join(err, c.r.WaitAll(p, sq))
	}
	if _, err := c.r.Wait(p, sq); err != nil {
		// Drain the already-posted receive before bailing out.
		return Status{}, errors.Join(err, c.r.WaitAll(p, rq))
	}
	st, err := c.r.Wait(p, rq)
	return c.localStatus(st), err
}

// ---- Collectives on the communicator (comm-rank algorithms mirror
// the world versions) ----

const (
	ctagBarrier   = maxUserTag - 1
	ctagBcast     = maxUserTag - 2
	ctagReduce    = maxUserTag - 3
	ctagAllgather = maxUserTag - 4
)

// Barrier blocks until every member has entered (dissemination).
func (c *Comm) Barrier(p *sim.Proc) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	zero := Slice{}
	for dist := 1; dist < n; dist *= 2 {
		to := (c.myRank + dist) % n
		from := (c.myRank - dist + n) % n
		sq, err := c.Isend(p, to, ctagBarrier, zero)
		if err != nil {
			return err
		}
		rq, err := c.Irecv(p, from, ctagBarrier, zero)
		if err != nil {
			// Drain the already-posted send before bailing out.
			return errors.Join(err, c.r.WaitAll(p, sq))
		}
		if err := c.r.WaitAll(p, sq, rq); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts root's s over the group (binomial tree).
func (c *Comm) Bcast(p *sim.Proc, root int, s Slice) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	v := vrank(c.myRank, root, n)
	mask := 1
	for mask < n {
		if v&mask != 0 {
			if _, err := c.Recv(p, arank(v^mask, root, n), ctagBcast, s); err != nil {
				return err
			}
			break
		}
		mask *= 2
	}
	for mask /= 2; mask >= 1; mask /= 2 {
		if child := v | mask; child < n {
			if err := c.Send(p, arank(child, root, n), ctagBcast, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce combines contributions to root (binomial tree; s is clobbered
// on non-roots).
func (c *Comm) Reduce(p *sim.Proc, root int, s Slice, op Op) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	v := vrank(c.myRank, root, n)
	tmp := c.r.Mem(s.N)
	defer c.r.v.Domain().Free(tmp)
	for mask := 1; mask < n; mask *= 2 {
		if v&mask != 0 {
			return c.Send(p, arank(v^mask, root, n), ctagReduce, s)
		}
		if child := v | mask; child < n {
			if _, err := c.Recv(p, arank(child, root, n), ctagReduce, Whole(tmp)); err != nil {
				return err
			}
			op.applyChecked(s.Bytes(), tmp.Data)
		}
	}
	return nil
}

// Allreduce leaves the combined result on every member.
func (c *Comm) Allreduce(p *sim.Proc, s Slice, op Op) error {
	if err := c.Reduce(p, 0, s, op); err != nil {
		return err
	}
	return c.Bcast(p, 0, s)
}

// Allgather concatenates each member's s into dst (Size()*s.N bytes)
// using the ring algorithm.
func (c *Comm) Allgather(p *sim.Proc, s Slice, dst Slice) error {
	n := c.Size()
	if dst.N < n*s.N {
		return fmt.Errorf("core: comm allgather destination too small")
	}
	copy(dst.Sub(c.myRank*s.N, s.N).Bytes(), s.Bytes())
	if n == 1 {
		return nil
	}
	right := (c.myRank + 1) % n
	left := (c.myRank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendBlock := (c.myRank - step + n) % n
		recvBlock := (c.myRank - step - 1 + n) % n
		if _, err := c.Sendrecv(p,
			right, ctagAllgather, dst.Sub(sendBlock*s.N, s.N),
			left, ctagAllgather, dst.Sub(recvBlock*s.N, s.N)); err != nil {
			return err
		}
	}
	return nil
}
