package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// worldN builds an n-rank DCFA world on n nodes.
func worldN(n int) *core.World {
	c := cluster.New(perfmodel.Default(), n)
	return c.DCFAWorld(n, true)
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			w := worldN(n)
			enter := make([]sim.Time, n)
			leave := make([]sim.Time, n)
			err := w.Run(func(r *core.Rank) error {
				p := r.Proc()
				// Stagger arrivals.
				p.Sleep(sim.Duration(r.ID()) * 100 * sim.Microsecond)
				enter[r.ID()] = p.Now()
				if err := r.Barrier(p); err != nil {
					return err
				}
				leave[r.ID()] = p.Now()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var lastEnter sim.Time
			for _, e := range enter {
				if e > lastEnter {
					lastEnter = e
				}
			}
			for i, l := range leave {
				if l < lastEnter {
					t.Fatalf("rank %d left barrier at %v before last enter %v", i, l, lastEnter)
				}
			}
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		w := worldN(n)
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			for root := 0; root < n; root++ {
				for _, sz := range []int{8, 4096, 64 << 10} {
					buf := r.Mem(sz)
					if r.ID() == root {
						fill(buf.Data, byte(root+sz))
					}
					if err := r.Bcast(p, root, core.Whole(buf)); err != nil {
						return err
					}
					want := make([]byte, sz)
					fill(want, byte(root+sz))
					if !bytes.Equal(buf.Data, want) {
						return fmt.Errorf("rank %d root %d size %d: bcast corrupted", r.ID(), root, sz)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceSum(t *testing.T) {
	const n = 8
	const elems = 100
	w := worldN(n)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(elems * 8)
		vals := make([]float64, elems)
		for i := range vals {
			vals[i] = float64(r.ID()*1000 + i)
		}
		core.PutF64s(buf.Data, vals)
		if err := r.Reduce(p, 0, core.Whole(buf), core.OpSumF64); err != nil {
			return err
		}
		if r.ID() == 0 {
			got := core.GetF64s(buf.Data, elems)
			for i := range got {
				want := 0.0
				for k := 0; k < n; k++ {
					want += float64(k*1000 + i)
				}
				if got[i] != want {
					return fmt.Errorf("elem %d: got %v want %v", i, got[i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxEveryRank(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		w := worldN(n)
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			buf := r.Mem(16)
			core.PutF64s(buf.Data, []float64{float64(r.ID()), float64(-r.ID())})
			if err := r.Allreduce(p, core.Whole(buf), core.OpMaxF64); err != nil {
				return err
			}
			got := core.GetF64s(buf.Data, 2)
			if got[0] != float64(n-1) || got[1] != 0 {
				return fmt.Errorf("rank %d: allreduce max %v", r.ID(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 4
	const block = 256
	w := worldN(n)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		// Scatter blocks from root 2, then gather them back to root 1.
		srcBuf := r.Mem(n * block)
		if r.ID() == 2 {
			for i := 0; i < n; i++ {
				fill(srcBuf.Data[i*block:(i+1)*block], byte(50+i))
			}
		}
		mine := r.Mem(block)
		if err := r.Scatter(p, 2, core.Whole(srcBuf), core.Whole(mine)); err != nil {
			return err
		}
		want := make([]byte, block)
		fill(want, byte(50+r.ID()))
		if !bytes.Equal(mine.Data, want) {
			return fmt.Errorf("rank %d scatter block corrupted", r.ID())
		}
		gathered := r.Mem(n * block)
		if err := r.Gather(p, 1, core.Whole(mine), core.Whole(gathered)); err != nil {
			return err
		}
		if r.ID() == 1 {
			for i := 0; i < n; i++ {
				fill(want, byte(50+i))
				if !bytes.Equal(gathered.Data[i*block:(i+1)*block], want) {
					return fmt.Errorf("gathered block %d corrupted", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		const block = 128
		w := worldN(n)
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			mine := r.Mem(block)
			fill(mine.Data, byte(7*r.ID()+1))
			all := r.Mem(n * block)
			if err := r.Allgather(p, core.Whole(mine), core.Whole(all)); err != nil {
				return err
			}
			want := make([]byte, block)
			for i := 0; i < n; i++ {
				fill(want, byte(7*i+1))
				if !bytes.Equal(all.Data[i*block:(i+1)*block], want) {
					return fmt.Errorf("rank %d: allgather block %d corrupted", r.ID(), i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAlltoallPairwise(t *testing.T) {
	for _, n := range []int{2, 4, 6} { // power-of-two and not
		const block = 64
		w := worldN(n)
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			src := r.Mem(n * block)
			for i := 0; i < n; i++ {
				fill(src.Data[i*block:(i+1)*block], byte(r.ID()*16+i))
			}
			dst := r.Mem(n * block)
			if err := r.Alltoall(p, core.Whole(src), core.Whole(dst), block); err != nil {
				return err
			}
			want := make([]byte, block)
			for i := 0; i < n; i++ {
				fill(want, byte(i*16+r.ID()))
				if !bytes.Equal(dst.Data[i*block:(i+1)*block], want) {
					return fmt.Errorf("rank %d: block from %d corrupted", r.ID(), i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCollectivesSingleRank(t *testing.T) {
	w := worldN(1)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		if err := r.Barrier(p); err != nil {
			return err
		}
		b := r.Mem(16)
		core.PutF64s(b.Data, []float64{3, 4})
		if err := r.Bcast(p, 0, core.Whole(b)); err != nil {
			return err
		}
		if err := r.Allreduce(p, core.Whole(b), core.OpSumF64); err != nil {
			return err
		}
		got := core.GetF64s(b.Data, 2)
		if got[0] != 3 || got[1] != 4 {
			return fmt.Errorf("single-rank allreduce changed data: %v", got)
		}
		all := r.Mem(16)
		return r.Allgather(p, core.Whole(b), core.Whole(all))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceWithLargePayloadUsesRendezvous(t *testing.T) {
	// A reduction over 64 KiB payloads exercises rendezvous inside
	// collectives.
	const n = 4
	const elems = 8192 // 64 KiB
	w := worldN(n)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(elems * 8)
		vals := make([]float64, elems)
		for i := range vals {
			vals[i] = 1
		}
		core.PutF64s(buf.Data, vals)
		if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
			return err
		}
		got := core.GetF64s(buf.Data, elems)
		for i := range got {
			if got[i] != n {
				return fmt.Errorf("elem %d = %v, want %d", i, got[i], n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
