package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// ---- Probe ----

// Iprobe checks, without receiving, whether the next message from src
// (its next sequence id) has arrived and matches tag. It drives
// progress once.
//
// Because DCFA-MPI matches by per-pair sequence ids, a probe refers to
// the message that the *next posted receive* from src would match.
func (r *Rank) Iprobe(p *sim.Proc, src, tag int) (Status, bool, error) {
	if src != AnySource && (src < 0 || src >= r.w.Size()) {
		return Status{}, false, ErrBadRank
	}
	r.progress(p)
	check := func(s int) (Status, bool) {
		next := r.recvSeq[s]
		a, ok := r.unexpected[s][next]
		if !ok {
			return Status{}, false
		}
		if tag != AnyTag && !a.h.anyTag && int32(tag) != a.h.tag {
			return Status{}, false
		}
		n := a.h.payload
		if a.h.kind == pktRTS {
			n = a.h.rsize
		}
		return Status{Source: s, Tag: int(a.h.tag), Len: n}, true
	}
	if src == AnySource {
		for s := 0; s < r.w.Size(); s++ {
			if s == r.id {
				continue
			}
			if st, ok := check(s); ok {
				return st, true, nil
			}
		}
		return Status{}, false, nil
	}
	st, ok := check(src)
	return st, ok, nil
}

// Probe blocks until Iprobe succeeds.
func (r *Rank) Probe(p *sim.Proc, src, tag int) (Status, error) {
	for {
		st, ok, err := r.Iprobe(p, src, tag)
		if err != nil || ok {
			return st, err
		}
		if !r.progress(p) {
			r.v.HCA().Doorbell.Wait(p)
		}
	}
}

// ---- Wait variants ----

// Waitany blocks until at least one of the requests completes and
// returns its index.
func (r *Rank) Waitany(p *sim.Proc, reqs ...*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, fmt.Errorf("core: Waitany with no requests")
	}
	for {
		for i, q := range reqs {
			if q.completed {
				return i, q.status, q.err
			}
		}
		if !r.progress(p) {
			r.v.HCA().Doorbell.Wait(p)
		}
	}
}

// Testall drives progress once and reports whether every request has
// completed.
func (r *Rank) Testall(p *sim.Proc, reqs ...*Request) bool {
	r.progress(p)
	for _, q := range reqs {
		if !q.completed {
			return false
		}
	}
	return true
}

// ---- Typed convenience ----

// SendF64s sends a float64 slice (blocking), staging it into rank
// memory.
func (r *Rank) SendF64s(p *sim.Proc, dst, tag int, vals []float64) error {
	buf := r.Mem(len(vals) * 8)
	defer r.v.Domain().Free(buf)
	PutF64s(buf.Data, vals)
	return r.Send(p, dst, tag, Whole(buf))
}

// RecvF64s receives n float64 values (blocking).
func (r *Rank) RecvF64s(p *sim.Proc, src, tag, n int) ([]float64, Status, error) {
	buf := r.Mem(n * 8)
	defer r.v.Domain().Free(buf)
	st, err := r.Recv(p, src, tag, Whole(buf))
	if err != nil {
		return nil, st, err
	}
	return GetF64s(buf.Data, st.Len/8), st, nil
}

// ---- Persistent requests (MPI_Send_init / MPI_Recv_init) ----

// Persistent is a reusable communication request: Start posts a fresh
// operation with the captured arguments each time.
type Persistent struct {
	r      *Rank
	isSend bool
	peer   int
	tag    int
	slice  Slice
	active *Request
	Starts int64
}

// SendInit captures a send for repeated Start.
func (r *Rank) SendInit(dst, tag int, s Slice) *Persistent {
	return &Persistent{r: r, isSend: true, peer: dst, tag: tag, slice: s}
}

// RecvInit captures a receive for repeated Start.
func (r *Rank) RecvInit(src, tag int, s Slice) *Persistent {
	return &Persistent{r: r, peer: src, tag: tag, slice: s}
}

// Start posts the operation. The previous incarnation must have
// completed.
func (q *Persistent) Start(p *sim.Proc) error {
	if q.active != nil && !q.active.completed {
		return fmt.Errorf("core: persistent request started while still active")
	}
	var err error
	if q.isSend {
		q.active, err = q.r.Isend(p, q.peer, q.tag, q.slice)
	} else {
		q.active, err = q.r.Irecv(p, q.peer, q.tag, q.slice)
	}
	if err == nil {
		q.Starts++
	}
	return err
}

// Wait blocks until the current incarnation completes.
func (q *Persistent) Wait(p *sim.Proc) (Status, error) {
	if q.active == nil {
		return Status{}, fmt.Errorf("core: persistent request never started")
	}
	return q.r.Wait(p, q.active)
}

// ---- Typed (datatype) point-to-point ----

// SendTyped packs the strided region described by dt starting at s and
// sends it as one contiguous message. Packing runs on the rank's own
// core unless the world enables host-offloaded packing (the paper's
// proposed DCFA-MPI CMD offload for user-defined datatypes) and the
// provider supports it.
func (r *Rank) SendTyped(p *sim.Proc, dst, tag int, s Slice, dt Datatype) error {
	if s.N < dt.Extent() {
		return fmt.Errorf("core: typed send: slice %d bytes < extent %d", s.N, dt.Extent())
	}
	packed := r.Mem(dt.PackedSize())
	defer r.v.Domain().Free(packed)
	r.packInto(p, packed.Data, s.Bytes(), dt)
	return r.Send(p, dst, tag, Whole(packed))
}

// RecvTyped receives a contiguous message and unpacks it into the
// strided region described by dt at s.
func (r *Rank) RecvTyped(p *sim.Proc, src, tag int, s Slice, dt Datatype) (Status, error) {
	if s.N < dt.Extent() {
		return Status{}, fmt.Errorf("core: typed recv: slice %d bytes < extent %d", s.N, dt.Extent())
	}
	packed := r.Mem(dt.PackedSize())
	defer r.v.Domain().Free(packed)
	st, err := r.Recv(p, src, tag, Whole(packed))
	if err != nil {
		return st, err
	}
	dt.Unpack(s.Bytes(), packed.Data)
	p.Sleep(r.packCost(dt))
	return st, nil
}

// Pack gathers the typed region at src into dst, charging the pack
// cost (and using the host-offloaded path when configured). dst must
// have dt.PackedSize() bytes.
func (r *Rank) Pack(p *sim.Proc, dst, src []byte, dt Datatype) {
	r.packInto(p, dst, src, dt)
}

// Unpack scatters contiguous src into the typed region at dst,
// charging the local scatter cost.
func (r *Rank) Unpack(p *sim.Proc, dst, src []byte, dt Datatype) {
	dt.Unpack(dst, src)
	p.Sleep(r.packCost(dt))
}

// packInto performs the pack, choosing the local or the host-offloaded
// path and charging the corresponding cost.
func (r *Rank) packInto(p *sim.Proc, dst, src []byte, dt Datatype) {
	if r.w.Cfg.OffloadDatatypePack && r.v.SupportsOffload() &&
		dt.PackedSize() >= r.w.Cfg.OffloadPackMinSize {
		// Delegate the gather loop to the host CPU (the DCFA-MPI CMD
		// offload path): one command round trip plus the host's pack
		// rate over the mapped co-processor pages.
		dt.Pack(dst, src)
		plat := r.w.Plat
		cost := 2*plat.SCIFMsgLatency +
			sim.Duration(float64(dt.PackedSize())/plat.HostPackRate*float64(sim.Second))
		p.Sleep(cost)
		r.Stats.OffloadedPacks++
		return
	}
	dt.Pack(dst, src)
	p.Sleep(r.packCost(dt))
}

// packCost is the local (slow in-order core) gather/scatter cost.
func (r *Rank) packCost(dt Datatype) sim.Duration {
	rate := r.w.Plat.HostPackRate
	if r.v.Loc() == machine.MicMem {
		rate = r.w.Plat.PhiPackRate
	}
	return sim.Duration(float64(dt.PackedSize()) / rate * float64(sim.Second))
}
