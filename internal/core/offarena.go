package core

import (
	"fmt"
	"sort"

	"repro/internal/dcfa"
	"repro/internal/sim"
)

// offArena manages one persistent offloading memory region as a pool of
// sub-ranges for in-flight large sends. Registering a fresh offload MR
// per message would pay the host round trip every time; DCFA-MPI
// registers one arena up front and carves staging ranges out of it.
type offArena struct {
	v   Verbs
	omr *dcfa.OffloadMR
	// free holds disjoint [off, end) ranges sorted by offset.
	free []offRange

	// Stats.
	Allocs    int64
	Failures  int64 // requests larger than any free range (caller falls back)
	PeakInUse int
	inUse     int
}

type offRange struct{ off, end int }

// offRegion is one allocated staging range.
type offRegion struct {
	arena *offArena
	off   int
	n     int
}

// newOffArena registers an arena of the given size via the offload MR
// verbs.
func newOffArena(p *sim.Proc, v Verbs, size int) (*offArena, error) {
	omr, err := v.RegOffloadMR(p, size)
	if err != nil {
		return nil, err
	}
	return &offArena{v: v, omr: omr, free: []offRange{{0, size}}}, nil
}

// alloc carves n bytes, first-fit. Returns nil when no range is large
// enough; the caller falls back to the direct (non-offloaded) path.
func (a *offArena) alloc(n int) *offRegion {
	for i, r := range a.free {
		if r.end-r.off >= n {
			reg := &offRegion{arena: a, off: r.off, n: n}
			if r.off+n == r.end {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i].off += n
			}
			a.Allocs++
			a.inUse += n
			if a.inUse > a.PeakInUse {
				a.PeakInUse = a.inUse
			}
			return reg
		}
	}
	a.Failures++
	return nil
}

// release returns the region to the free list, coalescing neighbors.
func (a *offArena) release(reg *offRegion) {
	if reg.arena != a {
		panic("core: offload region released to wrong arena")
	}
	a.inUse -= reg.n
	nr := offRange{reg.off, reg.off + reg.n}
	//simlint:ignore hotalloc sort.Search only calls its predicate, so the closure stays on the stack
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= nr.off })
	a.free = append(a.free, offRange{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = nr
	// Coalesce with right neighbor, then left.
	if i+1 < len(a.free) && a.free[i].end == a.free[i+1].off {
		a.free[i].end = a.free[i+1].end
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].end == a.free[i].off {
		a.free[i-1].end = a.free[i].end
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// sync stages src into the region through the Phi DMA engine.
func (a *offArena) sync(p *sim.Proc, reg *offRegion, src []byte) error {
	if len(src) > reg.n {
		return fmt.Errorf("core: offload sync of %d bytes into %d-byte region", len(src), reg.n)
	}
	return a.v.SyncOffloadMR(p, a.omr, reg.off, src)
}

// addr returns the host-side IB address of the region.
func (reg *offRegion) addr() uint64 { return reg.arena.omr.HostBuf.Addr + uint64(reg.off) }

// rkey returns the host MR rkey.
func (reg *offRegion) rkey() uint32 { return reg.arena.omr.HostMR.RKey }

// lkey returns the host MR lkey (for RDMA-writing out of the bounce).
func (reg *offRegion) lkey() uint32 { return reg.arena.omr.HostMR.LKey }

// destroy releases the whole arena (teardown).
func (a *offArena) destroy(p *sim.Proc) error {
	return a.v.DeregOffloadMR(p, a.omr)
}
