package core_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
)

func TestCommWorldMirror(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 4)
	w := c.DCFAWorld(4, true)
	err := w.Run(func(r *core.Rank) error {
		cw := r.CommWorld()
		if cw.Rank() != r.ID() || cw.Size() != 4 {
			return fmt.Errorf("comm world rank=%d size=%d", cw.Rank(), cw.Size())
		}
		if cw.WorldRank(2) != 2 {
			return fmt.Errorf("translation broken")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitEvenOdd(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 6)
	w := c.DCFAWorld(6, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		cw := r.CommWorld()
		sub, err := cw.Split(p, r.ID()%2, r.ID())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("split size %d, want 3", sub.Size())
		}
		if sub.WorldRank(sub.Rank()) != r.ID() {
			return fmt.Errorf("self translation broken")
		}
		// Members must be sorted by key (= world rank here).
		for i := 1; i < sub.Size(); i++ {
			if sub.WorldRank(i) <= sub.WorldRank(i-1) {
				return fmt.Errorf("members unsorted: %d then %d", sub.WorldRank(i-1), sub.WorldRank(i))
			}
		}
		// Allreduce within the group: sum of even or odd world ranks.
		buf := r.Mem(8)
		core.PutF64s(buf.Data, []float64{float64(r.ID())})
		if err := sub.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
			return err
		}
		want := 0.0
		for i := r.ID() % 2; i < 6; i += 2 {
			want += float64(i)
		}
		if got := core.GetF64s(buf.Data, 1)[0]; got != want {
			return fmt.Errorf("group sum %v, want %v", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 4)
	w := c.DCFAWorld(4, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		cw := r.CommWorld()
		color := 0
		if r.ID() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := cw.Split(p, color, 0)
		if err != nil {
			return err
		}
		if r.ID() == 3 {
			if sub != nil {
				return fmt.Errorf("undefined color produced a comm")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("size %d, want 3", sub.Size())
		}
		return sub.Barrier(p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 4)
	w := c.DCFAWorld(4, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		// Reverse order: key = -world rank.
		sub, err := r.CommWorld().Split(p, 0, -r.ID())
		if err != nil {
			return err
		}
		if got := sub.Rank(); got != 3-r.ID() {
			return fmt.Errorf("world %d got comm rank %d, want %d", r.ID(), got, 3-r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridRowColComms(t *testing.T) {
	// A 2x3 process grid with row and column communicators — the
	// standard pattern for 2D decompositions.
	const rows, cols = 2, 3
	c := cluster.New(perfmodel.Default(), rows*cols)
	w := c.DCFAWorld(rows*cols, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		myRow := r.ID() / cols
		myCol := r.ID() % cols
		cw := r.CommWorld()
		rowComm, err := cw.Split(p, myRow, myCol)
		if err != nil {
			return err
		}
		colComm, err := cw.Split(p, myCol, myRow)
		if err != nil {
			return err
		}
		if rowComm.Size() != cols || colComm.Size() != rows {
			return fmt.Errorf("sizes row=%d col=%d", rowComm.Size(), colComm.Size())
		}
		// Row-wise sum then column-wise max.
		buf := r.Mem(8)
		core.PutF64s(buf.Data, []float64{float64(r.ID())})
		if err := rowComm.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
			return err
		}
		rowSum := 0.0
		for cc := 0; cc < cols; cc++ {
			rowSum += float64(myRow*cols + cc)
		}
		if got := core.GetF64s(buf.Data, 1)[0]; got != rowSum {
			return fmt.Errorf("row sum %v, want %v", got, rowSum)
		}
		if err := colComm.Allreduce(p, core.Whole(buf), core.OpMaxF64); err != nil {
			return err
		}
		// Max of row sums in my column = bottom row's sum.
		maxSum := 0.0
		for cc := 0; cc < cols; cc++ {
			maxSum += float64((rows-1)*cols + cc)
		}
		if got := core.GetF64s(buf.Data, 1)[0]; got != maxSum {
			return fmt.Errorf("col max %v, want %v", got, maxSum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommPointToPointAndStatusTranslation(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 4)
	w := c.DCFAWorld(4, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		// Group = {3, 2} via keys, so comm rank 0 = world 3.
		color := -1
		if r.ID() >= 2 {
			color = 1
		}
		sub, err := r.CommWorld().Split(p, color, -r.ID())
		if err != nil {
			return err
		}
		if sub == nil {
			return nil
		}
		if r.ID() == 3 { // comm rank 0
			buf := r.Mem(8)
			buf.Data[0] = 0x3A
			return sub.Send(p, 1, 5, core.Whole(buf))
		}
		// world 2 = comm rank 1
		buf := r.Mem(8)
		st, err := sub.Recv(p, core.AnySource, core.AnyTag, core.Whole(buf))
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 5 || buf.Data[0] != 0x3A {
			return fmt.Errorf("status %+v data %#x", st, buf.Data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommBcastAllRoots(t *testing.T) {
	c := cluster.New(perfmodel.Default(), 5)
	w := c.DCFAWorld(5, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		sub, err := r.CommWorld().Split(p, 0, r.ID())
		if err != nil {
			return err
		}
		for root := 0; root < sub.Size(); root++ {
			buf := r.Mem(64)
			if sub.Rank() == root {
				fill(buf.Data, byte(root+40))
			}
			if err := sub.Bcast(p, root, core.Whole(buf)); err != nil {
				return err
			}
			want := make([]byte, 64)
			fill(want, byte(root+40))
			for i := range want {
				if buf.Data[i] != want[i] {
					return fmt.Errorf("root %d: bcast corrupted", root)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
