package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func TestConfigDefaultsFilledFromPlatform(t *testing.T) {
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	w := core.NewWorld(c.Eng, plat, core.Config{}, c.DCFAEnvs(2))
	if w.Cfg.EagerMax != plat.EagerMax {
		t.Fatalf("EagerMax %d", w.Cfg.EagerMax)
	}
	if w.Cfg.EagerSlots != plat.EagerSlots {
		t.Fatalf("EagerSlots %d", w.Cfg.EagerSlots)
	}
	if w.Cfg.MRCacheCap != plat.MRCacheEntries {
		t.Fatalf("MRCacheCap %d", w.Cfg.MRCacheCap)
	}
	if w.Cfg.OffloadMinSize != plat.OffloadMinSize {
		t.Fatalf("OffloadMinSize %d", w.Cfg.OffloadMinSize)
	}
	if w.Cfg.OffloadArena <= 0 || w.Cfg.OffloadPackMinSize <= 0 {
		t.Fatal("arena/pack defaults missing")
	}
}

func TestErrsCollectsPerRank(t *testing.T) {
	_, w := pair(true)
	boom := errors.New("boom")
	err := w.Run(func(r *core.Rank) error {
		if r.ID() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("run err %v", err)
	}
	errs := w.Errs()
	if errs[0] != nil || !errors.Is(errs[1], boom) {
		t.Fatalf("per-rank errors %v", errs)
	}
}

func TestTwoWorldsShareOneEngine(t *testing.T) {
	// Launch two independent 2-rank worlds on the same engine and
	// drive both to completion with a single Run.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	wa := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	wb := core.NewWorld(c.Eng, plat, cfg, c.HostEnvs(2))
	body := func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(128)
		other := 1 - r.ID()
		_, err := r.Sendrecv(p, other, 0, core.Whole(buf), other, 0, core.Whole(buf))
		return err
	}
	wa.Launch(body)
	wb.Launch(body)
	if err := c.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []*core.World{wa, wb} {
		for _, err := range w.Errs() {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestWorldRankAccessors(t *testing.T) {
	_, w := pair(true)
	if w.Size() != 2 {
		t.Fatalf("size %d", w.Size())
	}
	err := w.Run(func(r *core.Rank) error {
		if w.Rank(r.ID()) != r {
			return errors.New("Rank accessor mismatch")
		}
		if r.Size() != 2 || r.World() != w {
			return errors.New("rank metadata wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetupErrorKeepsBarrierBalanced(t *testing.T) {
	// A world whose provider fails setup must not hang the other ranks.
	plat := perfmodel.Default()
	c := cluster.New(plat, 2)
	cfg := core.ConfigFromPlatform(plat)
	cfg.OffloadArena = -1 // filled with default, so break differently:
	cfg.EagerSlots = 1
	w := core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
	// With one eager slot the world still works; this is a smoke check
	// that extreme configs run (flow control saturates but recovers).
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(32)
		other := 1 - r.ID()
		for i := 0; i < 10; i++ {
			if r.ID() == 0 {
				if err := r.Send(p, other, i, core.Whole(buf)); err != nil {
					return err
				}
			} else {
				if _, err := r.Recv(p, other, i, core.Whole(buf)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		var de *sim.DeadlockError
		if errors.As(err, &de) && strings.Contains(err.Error(), "mpi-rank") {
			t.Fatalf("single-slot ring deadlocked: %v", err)
		}
		t.Fatal(err)
	}
}
