package core

import (
	"encoding/binary"
	"math"
)

// Op is a reduction operator combining src into dst element-wise over
// raw little-endian buffers.
type Op struct {
	Name     string
	ElemSize int
	Apply    func(dst, src []byte)
}

// applyChecked validates lengths then combines.
func (o Op) applyChecked(dst, src []byte) {
	if len(dst) != len(src) || len(dst)%o.ElemSize != 0 {
		panic("core: reduction length mismatch")
	}
	o.Apply(dst, src)
}

func f64(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
}

func putF64(b []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
}

func i64(b []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(b[i*8:]))
}

func putI64(b []byte, i int, v int64) {
	binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
}

// Built-in reduction operators.
var (
	OpSumF64 = Op{Name: "sum<f64>", ElemSize: 8, Apply: func(dst, src []byte) {
		for i := 0; i < len(dst)/8; i++ {
			putF64(dst, i, f64(dst, i)+f64(src, i))
		}
	}}
	OpMaxF64 = Op{Name: "max<f64>", ElemSize: 8, Apply: func(dst, src []byte) {
		for i := 0; i < len(dst)/8; i++ {
			if v := f64(src, i); v > f64(dst, i) {
				putF64(dst, i, v)
			}
		}
	}}
	OpMinF64 = Op{Name: "min<f64>", ElemSize: 8, Apply: func(dst, src []byte) {
		for i := 0; i < len(dst)/8; i++ {
			if v := f64(src, i); v < f64(dst, i) {
				putF64(dst, i, v)
			}
		}
	}}
	OpSumI64 = Op{Name: "sum<i64>", ElemSize: 8, Apply: func(dst, src []byte) {
		for i := 0; i < len(dst)/8; i++ {
			putI64(dst, i, i64(dst, i)+i64(src, i))
		}
	}}
	OpMaxI64 = Op{Name: "max<i64>", ElemSize: 8, Apply: func(dst, src []byte) {
		for i := 0; i < len(dst)/8; i++ {
			if v := i64(src, i); v > i64(dst, i) {
				putI64(dst, i, v)
			}
		}
	}}
	OpBandU8 = Op{Name: "band<u8>", ElemSize: 1, Apply: func(dst, src []byte) {
		for i := range dst {
			dst[i] &= src[i]
		}
	}}
)

// PutF64s encodes vs into b (little endian).
func PutF64s(b []byte, vs []float64) {
	for i, v := range vs {
		putF64(b, i, v)
	}
}

// GetF64s decodes n float64s from b.
func GetF64s(b []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f64(b, i)
	}
	return out
}

// Datatype describes a (possibly strided) MPI-like layout: Count blocks
// of BlockLen elements of ElemSize bytes, successive blocks Stride
// elements apart — the classic MPI_Type_vector. A contiguous datatype
// has Count 1.
type Datatype struct {
	ElemSize int
	Count    int
	BlockLen int
	Stride   int // in elements
}

// Contiguous returns a datatype of n elements of size elemSize.
func Contiguous(n, elemSize int) Datatype {
	return Datatype{ElemSize: elemSize, Count: 1, BlockLen: n, Stride: n}
}

// Vector returns the strided vector datatype.
func Vector(count, blockLen, stride, elemSize int) Datatype {
	return Datatype{ElemSize: elemSize, Count: count, BlockLen: blockLen, Stride: stride}
}

// Extent is the span in bytes the datatype covers in its source buffer.
func (d Datatype) Extent() int {
	if d.Count == 0 {
		return 0
	}
	return ((d.Count-1)*d.Stride + d.BlockLen) * d.ElemSize
}

// PackedSize is the contiguous payload size in bytes.
func (d Datatype) PackedSize() int { return d.Count * d.BlockLen * d.ElemSize }

// Pack gathers the typed region starting at src into dst (contiguous).
// dst must have PackedSize bytes; src must cover Extent bytes.
func (d Datatype) Pack(dst, src []byte) {
	bl := d.BlockLen * d.ElemSize
	st := d.Stride * d.ElemSize
	for c := 0; c < d.Count; c++ {
		copy(dst[c*bl:(c+1)*bl], src[c*st:c*st+bl])
	}
}

// Unpack scatters contiguous src into the typed region at dst.
func (d Datatype) Unpack(dst, src []byte) {
	bl := d.BlockLen * d.ElemSize
	st := d.Stride * d.ElemSize
	for c := 0; c < d.Count; c++ {
		copy(dst[c*st:c*st+bl], src[c*bl:(c+1)*bl])
	}
}
