// Package cg implements a distributed Conjugate Gradient solver for
// the 2D Poisson problem (the same five-point operator as the paper's
// stencil, used matrix-free), as a second full application workload on
// the MPI library: every iteration performs one halo exchange (SpMV)
// and two Allreduce dot products, the canonical communication pattern
// of iterative solvers.
//
// All arithmetic is real and bit-reproducible: the distributed dot
// products combine rank partials in the library's binomial-tree order,
// and the serial reference mimics that association exactly, so a P-rank
// run is verified float-for-float against the reference.
package cg

import (
	"fmt"
	"math"
	"unsafe"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// Params configures a solve of A·x = b on an N×N interior grid, where A
// is the 2D discrete Laplacian (Dirichlet boundaries) and b ≡ 1.
type Params struct {
	N       int
	MaxIter int
	Tol     float64 // on ‖r‖₂
	Procs   int
	Threads int
}

// Validate checks the decomposition.
func (pr Params) Validate() error {
	if pr.N <= 0 || pr.MaxIter <= 0 || pr.Procs <= 0 || pr.Threads <= 0 || pr.Tol <= 0 {
		return fmt.Errorf("cg: non-positive parameter: %+v", pr)
	}
	if pr.N%pr.Procs != 0 {
		return fmt.Errorf("cg: procs %d does not divide N %d", pr.Procs, pr.N)
	}
	return nil
}

// Result reports one solve.
type Result struct {
	Iters    int
	Residual float64 // final ‖r‖₂
	Total    sim.Duration
	PerIter  sim.Duration
	// SolutionSum is the rank-blocked sum of x for verification.
	SolutionSum float64
}

// field is one distributed vector: owned interior rows plus ghost rows
// (only p needs ghosts; the others are allocated flat for uniformity).
type field struct {
	rows, w int
	buf     *machine.Buffer
}

func newField(dom *machine.Domain, rows, w int) *field {
	return &field{rows: rows, w: w, buf: dom.Alloc((rows + 2) * w * 8)}
}

func (f *field) data() []float64 { return f64view(f.buf.Data) }

// f64view reinterprets device memory as float64s (cf. stencil).
func f64view(b []byte) []float64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// applyA computes q = A·p over owned rows (p's ghosts must be current):
// (A p)[i] = 4p[i] − p[up] − p[down] − p[left] − p[right].
func applyA(q, p []float64, rows, w, lo, hi int) {
	for r := lo; r < hi; r++ {
		row := (r + 1) * w
		for c := 1; c < w-1; c++ {
			i := row + c
			q[i] = 4*p[i] - p[i-w] - p[i+w] - p[i-1] - p[i+1]
		}
	}
}

// localDot sums a[i]*b[i] over the owned interior in fixed order.
func localDot(a, b []float64, rows, w int) float64 {
	s := 0.0
	for r := 1; r <= rows; r++ {
		for c := 1; c < w-1; c++ {
			i := r*w + c
			s += a[i] * b[i]
		}
	}
	return s
}

// CombineBinomial reproduces the library's Reduce association over the
// rank partials: rank v accumulates child v|m (for each mask m above
// v's low bits) after that child has fully combined its own subtree.
func CombineBinomial(parts []float64) float64 {
	if len(parts) == 0 {
		return 0
	}
	var value func(v, n int) float64
	value = func(v, n int) float64 {
		acc := parts[v]
		for m := 1; m < n; m *= 2 {
			if v&m != 0 {
				break
			}
			if v|m < n {
				acc += value(v|m, n)
			}
		}
		return acc
	}
	return value(0, len(parts))
}

const (
	tagHaloUp   = 21
	tagHaloDown = 22
)

// exchangeGhosts refreshes p's ghost rows from the neighbors.
func exchangeGhosts(pp *sim.Proc, r *core.Rank, f *field, procs int) error {
	row := func(i int) core.Slice {
		return core.Slice{Buf: f.buf, Off: i * f.w * 8, N: f.w * 8}
	}
	var reqs []*core.Request
	add := func(q *core.Request, err error) error {
		if err != nil {
			return err
		}
		reqs = append(reqs, q)
		return nil
	}
	if up := r.ID() - 1; up >= 0 {
		if err := add(r.Isend(pp, up, tagHaloUp, row(1))); err != nil {
			return err
		}
		if err := add(r.Irecv(pp, up, tagHaloDown, row(0))); err != nil {
			return err
		}
	}
	if down := r.ID() + 1; down < procs {
		if err := add(r.Isend(pp, down, tagHaloDown, row(f.rows))); err != nil {
			return err
		}
		if err := add(r.Irecv(pp, down, tagHaloUp, row(f.rows+1))); err != nil {
			return err
		}
	}
	return r.WaitAll(pp, reqs...)
}

// dotAll computes the global dot product via Allreduce, preserving the
// binomial association.
func dotAll(p *sim.Proc, r *core.Rank, local float64) (float64, error) {
	buf := r.Mem(8)
	defer r.Domain().Free(buf)
	core.PutF64s(buf.Data, []float64{local})
	if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
		return 0, err
	}
	return core.GetF64s(buf.Data, 1)[0], nil
}

// Run solves the system under DCFA-MPI and returns the converged
// result.
func Run(plat *perfmodel.Platform, pr Params, offload bool) (Result, error) {
	if err := pr.Validate(); err != nil {
		return Result{}, err
	}
	c := cluster.New(plat, pr.Procs)
	return RunWorld(c.DCFAWorld(pr.Procs, offload), pr)
}

// RunWorld solves the system on an already-built world (any execution
// mode).
func RunWorld(w *core.World, pr Params) (Result, error) {
	if err := pr.Validate(); err != nil {
		return Result{}, err
	}
	plat := w.Plat
	var res Result
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		rows := pr.N / pr.Procs
		width := pr.N + 2
		team := omp.NewTeam(plat, pr.Threads, r.Loc())
		x := newField(r.Domain(), rows, width)
		rr := newField(r.Domain(), rows, width)
		pv := newField(r.Domain(), rows, width)
		q := newField(r.Domain(), rows, width)
		xd, rd, pd, qd := x.data(), rr.data(), pv.data(), q.data()
		// x = 0; r = b = 1 on the interior; p = r.
		for row := 1; row <= rows; row++ {
			for col := 1; col < width-1; col++ {
				i := row*width + col
				rd[i] = 1
				pd[i] = 1
			}
		}
		charge := func(mult int) {
			team.ParallelFor(p, mult*rows*(width-2), nil)
		}
		rs := localDot(rd, rd, rows, width)
		charge(1)
		rsGlobal, err := dotAll(p, r, rs)
		if err != nil {
			return err
		}
		if err := r.Barrier(p); err != nil {
			return err
		}
		start := p.Now()
		iters := 0
		tol2 := pr.Tol * pr.Tol
		for iters < pr.MaxIter && rsGlobal > tol2 {
			if pr.Procs > 1 {
				if err := exchangeGhosts(p, r, pv, pr.Procs); err != nil {
					return err
				}
			}
			team.Execute(rows, func(lo, hi int) { applyA(qd, pd, rows, width, lo, hi) })
			charge(2) // SpMV ≈ two vector ops of work
			pq, err := dotAll(p, r, localDot(pd, qd, rows, width))
			if err != nil {
				return err
			}
			charge(1)
			alpha := rsGlobal / pq
			for row := 1; row <= rows; row++ {
				for col := 1; col < width-1; col++ {
					i := row*width + col
					xd[i] += alpha * pd[i]
					rd[i] -= alpha * qd[i]
				}
			}
			charge(2)
			rsNew, err := dotAll(p, r, localDot(rd, rd, rows, width))
			if err != nil {
				return err
			}
			charge(1)
			beta := rsNew / rsGlobal
			for row := 1; row <= rows; row++ {
				for col := 1; col < width-1; col++ {
					i := row*width + col
					pd[i] = rd[i] + beta*pd[i]
				}
			}
			charge(1)
			rsGlobal = rsNew
			iters++
		}
		if err := r.Barrier(p); err != nil {
			return err
		}
		total := p.Now() - start
		sum, err := dotAll(p, r, localSum(xd, rows, width))
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			res = Result{
				Iters:       iters,
				Residual:    math.Sqrt(rsGlobal),
				Total:       total,
				PerIter:     total / sim.Duration(max(iters, 1)),
				SolutionSum: sum,
			}
		}
		return nil
	})
	return res, err
}

func localSum(a []float64, rows, w int) float64 {
	s := 0.0
	for r := 1; r <= rows; r++ {
		for c := 1; c < w-1; c++ {
			s += a[r*w+c]
		}
	}
	return s
}

// Reference runs the identical CG serially, reproducing the P-rank
// run's floating-point association (rank-blocked partial dots combined
// in binomial order), so results match the distributed run exactly.
func Reference(pr Params) Result {
	width := pr.N + 2
	size := (pr.N + 2) * width
	x := make([]float64, size)
	rvec := make([]float64, size)
	pvec := make([]float64, size)
	q := make([]float64, size)
	for row := 1; row <= pr.N; row++ {
		for col := 1; col < width-1; col++ {
			i := row*width + col
			rvec[i] = 1
			pvec[i] = 1
		}
	}
	rows := pr.N / pr.Procs
	blockDot := func(a, b []float64) float64 {
		parts := make([]float64, pr.Procs)
		for k := 0; k < pr.Procs; k++ {
			s := 0.0
			for row := 1 + k*rows; row <= (k+1)*rows; row++ {
				for col := 1; col < width-1; col++ {
					i := row*width + col
					s += a[i] * b[i]
				}
			}
			parts[k] = s
		}
		return CombineBinomial(parts)
	}
	rs := blockDot(rvec, rvec)
	iters := 0
	tol2 := pr.Tol * pr.Tol
	for iters < pr.MaxIter && rs > tol2 {
		applyA(q, pvec, pr.N, width, 0, pr.N)
		alpha := rs / blockDot(pvec, q)
		for row := 1; row <= pr.N; row++ {
			for col := 1; col < width-1; col++ {
				i := row*width + col
				x[i] += alpha * pvec[i]
				rvec[i] -= alpha * q[i]
			}
		}
		rsNew := blockDot(rvec, rvec)
		beta := rsNew / rs
		for row := 1; row <= pr.N; row++ {
			for col := 1; col < width-1; col++ {
				i := row*width + col
				pvec[i] = rvec[i] + beta*pvec[i]
			}
		}
		rs = rsNew
		iters++
	}
	sumParts := make([]float64, pr.Procs)
	for k := 0; k < pr.Procs; k++ {
		s := 0.0
		for row := 1 + k*rows; row <= (k+1)*rows; row++ {
			for col := 1; col < width-1; col++ {
				s += x[row*width+col]
			}
		}
		sumParts[k] = s
	}
	return Result{Iters: iters, Residual: math.Sqrt(rs), SolutionSum: CombineBinomial(sumParts)}
}
