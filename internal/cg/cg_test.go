package cg

import (
	"testing"

	"repro/internal/perfmodel"
)

func params(procs int) Params {
	return Params{N: 32, MaxIter: 200, Tol: 1e-8, Procs: procs, Threads: 2}
}

func TestReferenceConverges(t *testing.T) {
	res := Reference(params(1))
	if res.Residual > 1e-8 {
		t.Fatalf("reference did not converge: residual %g after %d iters", res.Residual, res.Iters)
	}
	if res.Iters == 0 || res.Iters >= 200 {
		t.Fatalf("suspicious iteration count %d", res.Iters)
	}
	// The Poisson solution for b=1 is positive everywhere.
	if res.SolutionSum <= 0 {
		t.Fatalf("solution sum %g", res.SolutionSum)
	}
}

func TestDistributedMatchesReferenceExactly(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		pr := params(procs)
		got, err := Run(perfmodel.Default(), pr, true)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		want := Reference(pr)
		if got.Iters != want.Iters {
			t.Fatalf("procs=%d: %d iterations, reference %d", procs, got.Iters, want.Iters)
		}
		if got.Residual != want.Residual {
			t.Fatalf("procs=%d: residual %g, reference %g", procs, got.Residual, want.Residual)
		}
		if got.SolutionSum != want.SolutionSum {
			t.Fatalf("procs=%d: solution sum %g, reference %g", procs, got.SolutionSum, want.SolutionSum)
		}
	}
}

func TestResidualDecreasesWithMoreIterations(t *testing.T) {
	loose := Reference(Params{N: 32, MaxIter: 5, Tol: 1e-30, Procs: 1, Threads: 1})
	tight := Reference(Params{N: 32, MaxIter: 40, Tol: 1e-30, Procs: 1, Threads: 1})
	if tight.Residual >= loose.Residual {
		t.Fatalf("residual did not decrease: %g after 5 iters, %g after 40", loose.Residual, tight.Residual)
	}
}

func TestCombineBinomialAssociation(t *testing.T) {
	// P=4: ((s0+s1)+(s2+s3)).
	got := CombineBinomial([]float64{1, 2, 4, 8})
	if got != (1+2)+(4+8) {
		t.Fatalf("P=4 combine %v", got)
	}
	// P=3: (s0+s1)+s2.
	if got := CombineBinomial([]float64{1, 2, 4}); got != (1+2)+4 {
		t.Fatalf("P=3 combine %v", got)
	}
	if CombineBinomial(nil) != 0 {
		t.Fatal("empty combine")
	}
	if CombineBinomial([]float64{7}) != 7 {
		t.Fatal("single combine")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{N: 10, MaxIter: 1, Tol: 1, Procs: 3, Threads: 1}).Validate(); err == nil {
		t.Fatal("bad decomposition accepted")
	}
	if err := (Params{}).Validate(); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestMoreProcsReduceSolveTime(t *testing.T) {
	plat := perfmodel.Default()
	// A larger grid so compute dominates and scaling shows.
	pr := Params{N: 256, MaxIter: 30, Tol: 1e-30, Procs: 1, Threads: 8}
	r1, err := Run(plat, pr, true)
	if err != nil {
		t.Fatal(err)
	}
	pr.Procs = 4
	r4, err := Run(plat, pr, true)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Total >= r1.Total {
		t.Fatalf("4 procs (%v) not faster than 1 (%v)", r4.Total, r1.Total)
	}
}
