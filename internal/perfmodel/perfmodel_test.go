package perfmodel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestDefaultReproducesFigure5Asymmetry(t *testing.T) {
	p := Default()
	// The paper: Phi-sourced IB transfers are >4× slower than
	// host-sourced ones; host→Phi equals host→host.
	if ratio := p.HCARead(machine.HostMem) / p.HCARead(machine.MicMem); ratio < 4 {
		t.Fatalf("DMA-read asymmetry %.1f×, want >4×", ratio)
	}
	if p.HCAWrite(machine.MicMem) < p.IBBandwidth {
		t.Fatal("DMA write into Phi must not throttle the wire (host→Phi == host→host)")
	}
}

func TestOffloadCompositeBandwidthNear2_8(t *testing.T) {
	p := Default()
	// Serialized sync+send: 1/(1/dma + 1/wire) should be ~2.8 GB/s (Fig 8).
	combined := 1 / (1/p.DMAEngineBandwidth + 1/p.IBBandwidth)
	if combined < 2.5e9 || combined > 3.1e9 {
		t.Fatalf("composite offload bandwidth %.2f GB/s, want ≈2.8", combined/1e9)
	}
}

func TestProxyCapBelow1GBs(t *testing.T) {
	p := Default()
	if p.ProxyBandwidth >= 1e9 {
		t.Fatalf("proxy bandwidth %.2f GB/s, paper says it cannot exceed 1 GB/s", p.ProxyBandwidth/1e9)
	}
}

func TestPhiScalingShape(t *testing.T) {
	p := Default()
	if s := p.PhiScaling(1); s != 1 {
		t.Fatalf("S(1)=%v, want 1", s)
	}
	if s := p.PhiScaling(0); s != 1 {
		t.Fatalf("S(0)=%v, want 1", s)
	}
	s56 := p.PhiScaling(56)
	if s56 < 17.4 || s56 > 18.4 {
		t.Fatalf("S(56)=%.2f, calibrated target 17.9", s56)
	}
	// Monotone nondecreasing and sublinear.
	prev := 0.0
	for T := 1; T <= 56; T++ {
		s := p.PhiScaling(T)
		if s < prev {
			t.Fatalf("S(%d)=%.3f < S(%d)=%.3f: not monotone", T, s, T-1, prev)
		}
		if s > float64(T) {
			t.Fatalf("S(%d)=%.3f superlinear", T, s)
		}
		prev = s
	}
}

func TestPerDomainCostSelectors(t *testing.T) {
	p := Default()
	if p.PostCost(machine.MicMem) <= p.PostCost(machine.HostMem) {
		t.Fatal("Phi post must be costlier than host post")
	}
	if p.PollCost(machine.MicMem) <= p.PollCost(machine.HostMem) {
		t.Fatal("Phi poll must be costlier than host poll")
	}
	if p.MPIPerMsg(machine.MicMem) <= p.MPIPerMsg(machine.HostMem) {
		t.Fatal("Phi MPI per-message must be costlier than host")
	}
}

func TestPhiCopyCostUnder1usPer4K(t *testing.T) {
	p := Default()
	// Paper: "the data copy operation on the Xeon Phi spends less than
	// 1 microsecond for 4Kbytes".
	if c := p.CopyCost(machine.MicMem, 4096); c >= sim.Microsecond {
		t.Fatalf("4 KiB Phi copy costs %v, want <1µs", c)
	}
	if c := p.CopyCost(machine.HostMem, 4096); c >= p.CopyCost(machine.MicMem, 4096) {
		t.Fatalf("host copy (%v) should be faster than Phi copy", c)
	}
}

func TestMRRegCostGrowsWithSize(t *testing.T) {
	p := Default()
	small := p.MRRegCost(4096)
	large := p.MRRegCost(1 << 20)
	if large <= small {
		t.Fatal("MR registration cost must grow with size")
	}
	if small < p.HostMRRegBase {
		t.Fatal("MR registration below base cost")
	}
}

func TestOffloadLaunchGrowsWithThreads(t *testing.T) {
	p := Default()
	if p.OffloadLaunchCost(56) <= p.OffloadLaunchCost(1) {
		t.Fatal("launch cost must grow with thread count")
	}
	if p.OffloadLaunchCost(0) != p.OffloadLaunchCost(1) {
		t.Fatal("launch cost with 0 threads should clamp to 1")
	}
}

func TestOMPForkCost(t *testing.T) {
	p := Default()
	if p.OMPForkCost(1) != 0 {
		t.Fatal("single-thread region must have no fork cost")
	}
	if p.OMPForkCost(56) <= p.OMPForkCost(2) {
		t.Fatal("fork cost must grow with threads")
	}
}

func TestEagerAndOffloadThresholds(t *testing.T) {
	p := Default()
	// Paper: offloading send buffer "starting from 8Kbytes shows the
	// best performance"; we align the eager/rendezvous switch with it.
	if p.OffloadMinSize != 8192 {
		t.Fatalf("offload threshold %d, want 8192", p.OffloadMinSize)
	}
	if p.EagerMax > p.OffloadMinSize {
		t.Fatal("eager range must not overlap the offloaded rendezvous range")
	}
}

func TestDCFAMPIFourByteRTTBudget(t *testing.T) {
	p := Default()
	// Analytical one-way cost of a 4-byte eager message on DCFA-MPI,
	// mirroring the protocol layer's cost composition; the paper
	// measures ~15 µs RTT vs Intel-on-Phi's 28 µs.
	oneWay := p.PhiMPIPerMsg + p.PhiPostCost + p.IBLatency + p.PhiPollCost
	rtt := 2 * oneWay
	if rtt < 13*sim.Microsecond || rtt > 18*sim.Microsecond {
		t.Fatalf("DCFA-MPI 4B RTT budget %v, want ≈15µs", rtt)
	}
	proxied := 2 * (oneWay + p.ProxySendCost + p.ProxyRecvCost(4))
	if proxied < 24*sim.Microsecond || proxied > 32*sim.Microsecond {
		t.Fatalf("Intel-on-Phi 4B RTT budget %v, want ≈28µs", proxied)
	}
}

func TestTableIComplete(t *testing.T) {
	rows := TableI()
	if len(rows) != 9 {
		t.Fatalf("Table I has %d rows, want 9 (as in the paper)", len(rows))
	}
	for _, r := range rows {
		if r.Component == "" || r.Paper == "" || r.Simulated == "" {
			t.Fatalf("incomplete row %+v", r)
		}
	}
}

func TestTopologyMatchesPaper(t *testing.T) {
	p := Default()
	if p.Nodes != 8 {
		t.Fatalf("nodes=%d, paper uses an 8-node cluster", p.Nodes)
	}
	if p.PhiMaxThreads != 56 {
		t.Fatalf("max threads=%d, paper sweeps to 56", p.PhiMaxThreads)
	}
	if p.HostCores != 16 {
		t.Fatalf("host cores=%d, Table I lists 16", p.HostCores)
	}
}
