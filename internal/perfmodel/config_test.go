package perfmodel

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	p := Default()
	p.IBBandwidth = 1.23e9
	data, err := p.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatal("round trip changed the platform")
	}
}

func TestLoadOverridesOnlyGivenFields(t *testing.T) {
	got, err := Load([]byte(`{"ProxyBandwidth": 5e8}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.ProxyBandwidth != 5e8 {
		t.Fatalf("override lost: %g", got.ProxyBandwidth)
	}
	def := Default()
	if got.IBBandwidth != def.IBBandwidth || got.EagerMax != def.EagerMax {
		t.Fatal("defaults clobbered")
	}
}

func TestLoadRejectsBadJSON(t *testing.T) {
	if _, err := Load([]byte(`{nope`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestValidateRejectsNonPositiveRates(t *testing.T) {
	if _, err := Load([]byte(`{"IBBandwidth": 0}`)); err == nil || !strings.Contains(err.Error(), "IBBandwidth") {
		t.Fatalf("zero bandwidth accepted: %v", err)
	}
	if _, err := Load([]byte(`{"EagerSlots": -1}`)); err == nil {
		t.Fatal("negative slots accepted")
	}
	if _, err := Load([]byte(`{"PhiScalingAlpha": -0.5}`)); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}
