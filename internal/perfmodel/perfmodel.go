// Package perfmodel centralizes every calibrated constant of the
// simulated platform. Each number is annotated with the paper
// observation it reproduces; changing them moves every figure, so they
// live in exactly one place.
//
// The modeled platform mirrors Table I of the paper: 8 nodes, each with
// an Intel Xeon E5-2670 (16 hardware threads), one pre-production Xeon
// Phi (Knights Corner, 57 cores) and a Mellanox ConnectX-3 FDR
// InfiniBand HCA.
package perfmodel

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// Platform is the full calibrated hardware/software cost model.
type Platform struct {
	// ---- InfiniBand fabric ----

	// IBBandwidth is the peak effective FDR wire bandwidth (bytes/s).
	// Host↔host large-message MPI reaches ~5.6-5.8 GB/s on ConnectX-3;
	// the paper's DCFA-MPI offload result (2.8 GB/s) is described as
	// "2 times slower than the host".
	IBBandwidth float64
	// IBLatency is the one-way wire+switch propagation delay.
	IBLatency sim.Duration

	// HCA DMA engine rates by buffer location (bytes/s). Figure 5's
	// finding: the HCA's DMA *read from Phi memory* is the bottleneck —
	// ">4 times" slower than host-sourced transfers — while DMA writes
	// into Phi memory run at full speed (host→Phi equals host→host).
	HCAReadHost  float64
	HCAReadPhi   float64
	HCAWriteHost float64
	HCAWritePhi  float64

	// ---- Per-operation software costs ----

	// Post/poll costs differ across the slow in-order Phi core with
	// uncached PCIe MMIO and the host core.
	HostPostCost sim.Duration
	PhiPostCost  sim.Duration
	HostPollCost sim.Duration
	PhiPollCost  sim.Duration

	// MPI per-message software overhead (matching, headers, progress).
	// Calibrated so DCFA-MPI's 4-byte blocking RTT is ~15 µs and the
	// host MPI's is a few µs (Figure 9 / Figure 7).
	HostMPIPerMsg sim.Duration
	PhiMPIPerMsg  sim.Duration

	// MemCopyRate is local memcpy bandwidth for eager copies. The paper:
	// "the data copy operation on the Xeon Phi spends less than 1
	// microsecond for 4Kbytes".
	HostCopyRate float64
	PhiCopyRate  float64

	// ---- Memory registration (Section IV-B3: "much more expensive on
	// the Xeon Phi because of the offloading implementation") ----

	HostMRRegBase    sim.Duration
	HostMRRegPerByte float64 // seconds per byte (page pinning)
	// DelegationExtra is added on top of the SCIF round trip for
	// Phi-side registration (host-side mapping of Phi pages).
	DelegationExtra sim.Duration
	// HostVerbsCallCost is the host daemon's work for one delegated
	// resource-creation verb (alloc PD, create CQ/QP).
	HostVerbsCallCost sim.Duration

	// ---- SCIF / command channel ----

	// SCIFMsgLatency is one host↔Phi crossing for a small command.
	SCIFMsgLatency sim.Duration

	// ---- Phi DMA engine (sync_offload_mr path) ----

	// DMAEngineBandwidth is the Phi's own DMA engine rate for bulk
	// Phi→host staging; unlike HCA reads it runs near PCIe speed.
	// Calibrated so offloaded large-message MPI bandwidth lands at
	// ~2.8 GB/s (Figure 8): sync(n/5.5G) + wire(n/5.8G) → n/2.8G.
	DMAEngineBandwidth float64
	DMAEngineLatency   sim.Duration

	// ---- Intel MPI on Xeon Phi mode (proxy path) ----

	// ProxySendCost is the extra cost of relaying one work request
	// through the host IB proxy daemon (outbound SCIF crossing plus
	// daemon work); ProxyRecvBase + n·ProxyRecvPerByte is the inbound
	// side, where the daemon copies staged payloads back to the card.
	// Together they yield the paper's 28 µs 4-byte RTT.
	ProxySendCost    sim.Duration
	ProxyRecvBase    sim.Duration
	ProxyRecvPerByte float64 // seconds per byte
	// ProxyBandwidth caps the proxied large-message path: "cannot get
	// bandwidth greater than 1 Gbytes/s" (Figure 9).
	ProxyBandwidth float64
	// ProxyEagerMax is the Intel MPI eager/rendezvous threshold
	// (I_MPI_EAGER_THRESHOLD defaults to 256 KiB).
	ProxyEagerMax int

	// ---- Intel offload (COI / #pragma offload) path ----

	// OffloadTransferOverhead is the fixed cost of one optimized
	// offload_transfer (signal+wait over PCIe), after the paper's four
	// tuning policies. Two of these per iteration give the ~12× gap at
	// ≤128 B in Figure 10.
	OffloadTransferOverhead sim.Duration
	// OffloadBandwidth is effective large pragma-offload throughput;
	// with the serial copy-out→send dependency it produces the 2× gap
	// at ≥512 KiB in Figure 10.
	OffloadBandwidth float64
	// Kernel launch cost per offload region: base plus per-OpenMP-thread
	// wakeup inside the region (thread re-wakeup on KNC is expensive).
	OffloadLaunchBase      sim.Duration
	OffloadLaunchPerThread sim.Duration
	// OffloadInitCost is the one-time COI engine initialization,
	// excluded from per-iteration averages like the paper's optimized
	// application ("eliminate offload initialization from the loop").
	OffloadInitCost sim.Duration

	// ---- Datatype pack/unpack (future-work offload, §VI) ----

	// PhiPackRate is the strided gather/scatter rate of the in-order
	// Phi core; HostPackRate is the host CPU packing co-processor
	// pages through the modified IB core mapping. OffloadPackMinSize is
	// where the delegation round trip amortizes.
	PhiPackRate        float64
	HostPackRate       float64
	OffloadPackMinSize int

	// ---- Computation ----

	// Stencil point-update rates (points/s) for one thread.
	PhiCoreRate  float64
	HostCoreRate float64
	// OMP native fork-join cost per parallel region.
	OMPForkBase      sim.Duration
	OMPForkPerThread sim.Duration
	// PhiScalingAlpha parameterizes Phi thread scaling for the
	// memory-bound stencil: S(T) = T / (1 + alpha·(T-1)); alpha is set
	// so S(56) ≈ 17.9, which reproduces Figure 12's 117× at 8 procs ×
	// 56 threads once communication is added.
	PhiScalingAlpha float64

	// ---- Topology / protocol tuning ----

	Nodes          int
	HostCores      int
	PhiCores       int
	PhiMaxThreads  int
	EagerMax       int // eager/rendezvous switch (bytes)
	OffloadMinSize int // offload-send-buffer threshold: "starting from 8Kbytes"
	EagerSlots     int // eager ring depth per peer
	MRCacheEntries int // buffer cache pool capacity
}

// Default returns the calibrated platform described in DESIGN.md §5.
func Default() *Platform {
	return &Platform{
		IBBandwidth: 5.8e9,
		IBLatency:   900 * sim.Nanosecond,

		HCAReadHost:  26e9,
		HCAReadPhi:   1.25e9, // Figure 5 bottleneck: >4× below host paths
		HCAWriteHost: 26e9,
		HCAWritePhi:  26e9, // host→Phi matches host→host (Figure 5)

		HostPostCost: 300 * sim.Nanosecond,
		PhiPostCost:  1200 * sim.Nanosecond,
		HostPollCost: 200 * sim.Nanosecond,
		PhiPollCost:  800 * sim.Nanosecond,

		HostMPIPerMsg: 1200 * sim.Nanosecond,
		PhiMPIPerMsg:  5000 * sim.Nanosecond,

		HostCopyRate: 12e9,
		PhiCopyRate:  5e9, // <1 µs per 4 KiB, as the paper measures

		HostMRRegBase:     30 * sim.Microsecond,
		HostMRRegPerByte:  1.0 / 10e9,
		DelegationExtra:   20 * sim.Microsecond,
		HostVerbsCallCost: 10 * sim.Microsecond,

		SCIFMsgLatency: 3 * sim.Microsecond,

		DMAEngineBandwidth: 5.5e9,
		DMAEngineLatency:   1500 * sim.Nanosecond,

		ProxySendCost:    3 * sim.Microsecond,
		ProxyRecvBase:    3 * sim.Microsecond,
		ProxyRecvPerByte: 1.0 / 0.8e9,
		ProxyBandwidth:   0.95e9,
		ProxyEagerMax:    256 << 10,

		OffloadTransferOverhead: 55 * sim.Microsecond,
		OffloadBandwidth:        3.7e9,
		OffloadLaunchBase:       40 * sim.Microsecond,
		OffloadLaunchPerThread:  2500 * sim.Nanosecond,
		OffloadInitCost:         150 * sim.Millisecond,

		PhiPackRate:        1.2e9,
		HostPackRate:       4.0e9,
		OffloadPackMinSize: 16 << 10,

		PhiCoreRate:      30e6,
		HostCoreRate:     180e6,
		OMPForkBase:      8 * sim.Microsecond,
		OMPForkPerThread: 300 * sim.Nanosecond,
		PhiScalingAlpha:  (56.0/17.9 - 1.0) / 55.0, // S(56)=17.9

		Nodes:          8,
		HostCores:      16,
		PhiCores:       57,
		PhiMaxThreads:  56,
		EagerMax:       8192,
		OffloadMinSize: 8192,
		EagerSlots:     64,
		MRCacheEntries: 64,
	}
}

// HCARead returns the HCA DMA read rate from a buffer in domain kind k.
func (p *Platform) HCARead(k machine.DomainKind) float64 {
	if k == machine.MicMem {
		return p.HCAReadPhi
	}
	return p.HCAReadHost
}

// HCAWrite returns the HCA DMA write rate into domain kind k.
func (p *Platform) HCAWrite(k machine.DomainKind) float64 {
	if k == machine.MicMem {
		return p.HCAWritePhi
	}
	return p.HCAWriteHost
}

// PostCost returns the work-request post cost for code running in k.
func (p *Platform) PostCost(k machine.DomainKind) sim.Duration {
	if k == machine.MicMem {
		return p.PhiPostCost
	}
	return p.HostPostCost
}

// PollCost returns the successful-poll cost for code running in k.
func (p *Platform) PollCost(k machine.DomainKind) sim.Duration {
	if k == machine.MicMem {
		return p.PhiPollCost
	}
	return p.HostPollCost
}

// MPIPerMsg returns the MPI software per-message overhead in k.
func (p *Platform) MPIPerMsg(k machine.DomainKind) sim.Duration {
	if k == machine.MicMem {
		return p.PhiMPIPerMsg
	}
	return p.HostMPIPerMsg
}

// CopyCost returns the local memcpy time for n bytes in domain kind k.
func (p *Platform) CopyCost(k machine.DomainKind, n int) sim.Duration {
	rate := p.HostCopyRate
	if k == machine.MicMem {
		rate = p.PhiCopyRate
	}
	return sim.Duration(float64(n) / rate * float64(sim.Second))
}

// MRRegCost is the host-side memory-registration (page pinning) time.
func (p *Platform) MRRegCost(n int) sim.Duration {
	return p.HostMRRegBase + sim.Duration(float64(n)*p.HostMRRegPerByte*float64(sim.Second))
}

// ProxyRecvCost is the proxy daemon's inbound delivery cost for an
// n-byte payload.
func (p *Platform) ProxyRecvCost(n int) sim.Duration {
	return p.ProxyRecvBase + sim.Duration(float64(n)*p.ProxyRecvPerByte*float64(sim.Second))
}

// PhiScaling returns the effective speedup S(T) of T OpenMP threads on
// the Phi for the memory-bound stencil.
func (p *Platform) PhiScaling(threads int) float64 {
	if threads <= 1 {
		return 1
	}
	t := float64(threads)
	return t / (1 + p.PhiScalingAlpha*(t-1))
}

// OMPForkCost is the per-parallel-region fork/join overhead for T
// threads in a persistent (native) OpenMP runtime.
func (p *Platform) OMPForkCost(threads int) sim.Duration {
	if threads <= 1 {
		return 0
	}
	return p.OMPForkBase + sim.Duration(threads)*p.OMPForkPerThread
}

// OffloadLaunchCost is the per-iteration offload-region invocation cost
// with T OpenMP threads awakened inside the region.
func (p *Platform) OffloadLaunchCost(threads int) sim.Duration {
	if threads < 1 {
		threads = 1
	}
	return p.OffloadLaunchBase + sim.Duration(threads)*p.OffloadLaunchPerThread
}

// TableI describes the simulated platform in the shape of the paper's
// Table I, each row mapping the original hardware/software to its
// simulated analog.
type TableIRow struct{ Component, Paper, Simulated string }

// TableI returns the platform inventory rows.
func TableI() []TableIRow {
	return []TableIRow{
		{"CPU", "Intel Xeon E5-2670 0 @ 2.60GHz x 16", "machine host domain, 16 cores @ 180e6 stencil pts/s/core"},
		{"InfiniBand HCA", "Mellanox MT27500 [ConnectX-3]", "internal/ib simulated verbs, 5.8 GB/s FDR, 0.9 µs wire"},
		{"Card", "Pre-production Intel Xeon Phi x 1", "machine mic domain, 57 cores @ 30e6 pts/s, DMA-read cap 1.25 GB/s"},
		{"Operating System", "Red Hat Enterprise Linux Server 6.2", "Go discrete-event runtime (internal/sim)"},
		{"Intel MPSS", "2.1.4982-15", "internal/scif command channel, 3 µs crossing"},
		{"Intel MPI Library", "4.1.0.027", "internal/baseline (proxy + offload modes)"},
		{"Intel C++ Compiler", "Composer XE 2013.0.079", "gc (Go compiler)"},
		{"IB driver for Intel MPI", "OFED-1.5.4.1", "internal/ib fabric (proxy profile)"},
		{"IB driver for DCFA-MPI", "MLNX OFED 1.5.3-3.1.0", "internal/ib fabric (direct profile)"},
	}
}
