package perfmodel

import (
	"encoding/json"
	"fmt"
)

// MarshalIndent serializes the platform as JSON for saving a custom
// calibration.
func (p *Platform) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Load parses a JSON calibration over the defaults: omitted fields keep
// their Default() values, so a file only needs the overrides.
func Load(data []byte) (*Platform, error) {
	p := Default()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("perfmodel: parse calibration: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate rejects calibrations the simulator cannot run. The checks
// run in declaration order so the same bad calibration always reports
// the same field first.
func (p *Platform) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"IBBandwidth", p.IBBandwidth},
		{"HCAReadHost", p.HCAReadHost},
		{"HCAReadPhi", p.HCAReadPhi},
		{"HCAWriteHost", p.HCAWriteHost},
		{"HCAWritePhi", p.HCAWritePhi},
		{"HostCopyRate", p.HostCopyRate},
		{"PhiCopyRate", p.PhiCopyRate},
		{"DMAEngineBandwidth", p.DMAEngineBandwidth},
		{"ProxyBandwidth", p.ProxyBandwidth},
		{"OffloadBandwidth", p.OffloadBandwidth},
		{"PhiCoreRate", p.PhiCoreRate},
		{"HostCoreRate", p.HostCoreRate},
		{"PhiPackRate", p.PhiPackRate},
		{"HostPackRate", p.HostPackRate},
	}
	for _, c := range pos {
		if c.v <= 0 {
			return fmt.Errorf("perfmodel: %s must be positive, got %g", c.name, c.v)
		}
	}
	if p.PhiScalingAlpha < 0 {
		return fmt.Errorf("perfmodel: PhiScalingAlpha must be non-negative")
	}
	ints := []struct {
		name string
		v    int
	}{
		{"Nodes", p.Nodes},
		{"HostCores", p.HostCores},
		{"PhiCores", p.PhiCores},
		{"PhiMaxThreads", p.PhiMaxThreads},
		{"EagerMax", p.EagerMax},
		{"OffloadMinSize", p.OffloadMinSize},
		{"EagerSlots", p.EagerSlots},
		{"MRCacheEntries", p.MRCacheEntries},
	}
	for _, c := range ints {
		if c.v <= 0 {
			return fmt.Errorf("perfmodel: %s must be positive, got %d", c.name, c.v)
		}
	}
	return nil
}
