// Package machine models the compute-node hardware of the paper's
// cluster: each node has a host (Xeon) memory domain and a co-processor
// (Xeon Phi) memory domain joined by PCI Express. Buffers are real Go
// byte slices tagged with fake device addresses so that the simulated
// InfiniBand layer can resolve (addr, key) pairs exactly the way a real
// HCA resolves DMA addresses.
package machine

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// DomainKind distinguishes the two physical memories on a node.
type DomainKind int

const (
	// HostMem is Xeon host DRAM.
	HostMem DomainKind = iota
	// MicMem is Xeon Phi on-card GDDR5.
	MicMem
)

func (k DomainKind) String() string {
	switch k {
	case HostMem:
		return "host"
	case MicMem:
		return "mic"
	default:
		return fmt.Sprintf("DomainKind(%d)", int(k))
	}
}

// pageSize is the allocation granularity; the paper's offload tuning
// advice ("align the buffer on a 4Kbytes page boundary") makes 4 KiB the
// natural unit.
const pageSize = 4096

// Domain is one physical memory: an address space plus its live
// allocations.
type Domain struct {
	Name string
	Kind DomainKind
	Node *Node

	nextAddr uint64
	// allocs is kept sorted by Addr for range resolution.
	allocs []*Buffer
	// BytesLive tracks currently allocated bytes.
	BytesLive int64
}

// Buffer is a device-addressable allocation inside a Domain.
type Buffer struct {
	Dom   *Domain
	Addr  uint64
	Data  []byte
	freed bool
}

// Node is one cluster node: host domain + co-processor domain.
// Interconnect models (PCIe DMA engine, HCA) attach themselves via the
// pcie and ib packages.
type Node struct {
	ID   int
	Host *Domain
	Mic  *Domain
}

// NewNode creates node id with empty host and mic domains.
func NewNode(id int) *Node {
	n := &Node{ID: id}
	n.Host = &Domain{Name: fmt.Sprintf("node%d/host", id), Kind: HostMem, Node: n, nextAddr: 0x10000}
	n.Mic = &Domain{Name: fmt.Sprintf("node%d/mic", id), Kind: MicMem, Node: n, nextAddr: 0x10000}
	return n
}

// Domain returns the node's domain of kind k.
func (n *Node) Domain(k DomainKind) *Domain {
	if k == HostMem {
		return n.Host
	}
	return n.Mic
}

// Alloc allocates n bytes (rounded up to a 4 KiB page multiple for
// addressing purposes; Data has exactly n bytes) and returns the buffer.
func (d *Domain) Alloc(n int) *Buffer {
	if n < 0 {
		panic("machine: negative allocation")
	}
	span := uint64((n + pageSize - 1) / pageSize * pageSize)
	if span == 0 {
		span = pageSize
	}
	b := &Buffer{Dom: d, Addr: d.nextAddr, Data: make([]byte, n)}
	d.nextAddr += span
	d.allocs = append(d.allocs, b)
	d.BytesLive += int64(n)
	return b
}

// Free releases the buffer. Resolving addresses inside it afterwards
// fails, as touching freed memory should.
func (d *Domain) Free(b *Buffer) {
	if b.Dom != d {
		panic("machine: freeing buffer in wrong domain")
	}
	if b.freed {
		panic("machine: double free")
	}
	b.freed = true
	d.BytesLive -= int64(len(b.Data))
	i := sort.Search(len(d.allocs), func(i int) bool { return d.allocs[i].Addr >= b.Addr })
	if i < len(d.allocs) && d.allocs[i] == b {
		d.allocs = append(d.allocs[:i], d.allocs[i+1:]...)
	}
}

// Resolve maps [addr, addr+n) to the backing bytes. It fails if the
// range is not fully inside one live allocation — the simulated
// equivalent of a DMA protection fault.
func (d *Domain) Resolve(addr uint64, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("machine: %s: negative length %d", d.Name, n)
	}
	i := sort.Search(len(d.allocs), func(i int) bool { return d.allocs[i].Addr > addr })
	if i == 0 {
		return nil, fmt.Errorf("machine: %s: address %#x not mapped", d.Name, addr)
	}
	b := d.allocs[i-1]
	off := addr - b.Addr
	if off > uint64(len(b.Data)) || off+uint64(n) > uint64(len(b.Data)) {
		return nil, fmt.Errorf("machine: %s: range [%#x,+%d) overruns allocation at %#x (len %d)",
			d.Name, addr, n, b.Addr, len(b.Data))
	}
	return b.Data[off : off+uint64(n)], nil
}

// MustResolve is Resolve that panics on fault; for internal engine paths
// whose callers have already validated keys and bounds.
func (d *Domain) MustResolve(addr uint64, n int) []byte {
	s, err := d.Resolve(addr, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Contains reports whether [addr, addr+n) lies within the buffer.
func (b *Buffer) Contains(addr uint64, n int) bool {
	return addr >= b.Addr && addr+uint64(n) <= b.Addr+uint64(len(b.Data))
}

// Slice returns the buffer's bytes at [off, off+n).
func (b *Buffer) Slice(off, n int) []byte { return b.Data[off : off+n] }

// Cluster is a fixed-size set of nodes.
type Cluster struct {
	Eng   *sim.Engine
	Nodes []*Node
}

// NewCluster builds n nodes on the given engine.
func NewCluster(eng *sim.Engine, n int) *Cluster {
	c := &Cluster{Eng: eng}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, NewNode(i))
	}
	return c
}
