package machine

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocResolveRoundTrip(t *testing.T) {
	n := NewNode(0)
	b := n.Host.Alloc(100)
	copy(b.Data, bytes.Repeat([]byte{0xAB}, 100))
	got, err := n.Host.Resolve(b.Addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b.Data) {
		t.Fatal("resolved bytes differ")
	}
}

func TestResolveSubRange(t *testing.T) {
	n := NewNode(0)
	b := n.Mic.Alloc(4096)
	for i := range b.Data {
		b.Data[i] = byte(i)
	}
	got, err := n.Mic.Resolve(b.Addr+100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[49] != 149 {
		t.Fatalf("sub-range wrong: %d %d", got[0], got[49])
	}
}

func TestResolveUnmappedFails(t *testing.T) {
	n := NewNode(0)
	if _, err := n.Host.Resolve(0x42, 4); err == nil {
		t.Fatal("resolve of unmapped address succeeded")
	}
}

func TestResolveOverrunFails(t *testing.T) {
	n := NewNode(0)
	b := n.Host.Alloc(64)
	if _, err := n.Host.Resolve(b.Addr+32, 64); err == nil {
		t.Fatal("overrunning resolve succeeded")
	}
	if _, err := n.Host.Resolve(b.Addr, -1); err == nil {
		t.Fatal("negative-length resolve succeeded")
	}
}

func TestResolveAfterFreeFails(t *testing.T) {
	n := NewNode(0)
	b := n.Host.Alloc(64)
	addr := b.Addr
	n.Host.Free(b)
	if _, err := n.Host.Resolve(addr, 4); err == nil {
		t.Fatal("resolve after free succeeded")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	n := NewNode(0)
	b := n.Host.Alloc(8)
	n.Host.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	n.Host.Free(b)
}

func TestAllocationsPageAligned(t *testing.T) {
	n := NewNode(0)
	for i := 0; i < 10; i++ {
		b := n.Host.Alloc(100 + i*333)
		if b.Addr%4096 != 0 {
			t.Fatalf("allocation %d at %#x not page aligned", i, b.Addr)
		}
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	n := NewNode(0)
	a := n.Host.Alloc(5000)
	b := n.Host.Alloc(5000)
	if a.Addr+uint64(len(a.Data)) > b.Addr && b.Addr+uint64(len(b.Data)) > a.Addr {
		t.Fatalf("allocations overlap: [%#x,+%d) [%#x,+%d)", a.Addr, len(a.Data), b.Addr, len(b.Data))
	}
}

func TestBytesLiveAccounting(t *testing.T) {
	n := NewNode(0)
	a := n.Mic.Alloc(1000)
	b := n.Mic.Alloc(500)
	if n.Mic.BytesLive != 1500 {
		t.Fatalf("live %d, want 1500", n.Mic.BytesLive)
	}
	n.Mic.Free(a)
	if n.Mic.BytesLive != 500 {
		t.Fatalf("live %d, want 500", n.Mic.BytesLive)
	}
	n.Mic.Free(b)
	if n.Mic.BytesLive != 0 {
		t.Fatalf("live %d, want 0", n.Mic.BytesLive)
	}
}

func TestBufferContains(t *testing.T) {
	n := NewNode(0)
	b := n.Host.Alloc(100)
	if !b.Contains(b.Addr, 100) {
		t.Fatal("full range not contained")
	}
	if !b.Contains(b.Addr+50, 50) {
		t.Fatal("tail range not contained")
	}
	if b.Contains(b.Addr+50, 51) {
		t.Fatal("overrun range reported contained")
	}
	if b.Contains(b.Addr-1, 1) {
		t.Fatal("preceding range reported contained")
	}
}

func TestDomainKinds(t *testing.T) {
	n := NewNode(3)
	if n.Host.Kind != HostMem || n.Mic.Kind != MicMem {
		t.Fatal("domain kinds wrong")
	}
	if n.Domain(HostMem) != n.Host || n.Domain(MicMem) != n.Mic {
		t.Fatal("Domain() selector wrong")
	}
	if HostMem.String() != "host" || MicMem.String() != "mic" {
		t.Fatal("kind strings wrong")
	}
	if DomainKind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestClusterConstruction(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 8)
	if len(c.Nodes) != 8 {
		t.Fatalf("nodes %d, want 8", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has id %d", i, n.ID)
		}
	}
}

// Property: after a random sequence of allocs, every live buffer
// resolves to its own bytes and no other's.
func TestQuickAllocIntegrity(t *testing.T) {
	f := func(sizes []uint16) bool {
		n := NewNode(0)
		var bufs []*Buffer
		for i, s := range sizes {
			if len(bufs) > 30 {
				break
			}
			b := n.Host.Alloc(int(s) + 1)
			b.Data[0] = byte(i)
			bufs = append(bufs, b)
		}
		for i, b := range bufs {
			got, err := n.Host.Resolve(b.Addr, 1)
			if err != nil || got[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustResolvePanicsOnFault(t *testing.T) {
	n := NewNode(0)
	defer func() {
		if recover() == nil {
			t.Fatal("MustResolve on unmapped address did not panic")
		}
	}()
	n.Host.MustResolve(0x1, 4)
}
