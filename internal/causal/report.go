package causal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Report is the full causal-analysis result for one run.
type Report struct {
	Workload string   `json:"workload,omitempty"`
	SimTime  sim.Time `json:"sim_time_ns"`
	Ranks    int      `json:"ranks"`
	Events   int      `json:"events"`
	Messages int      `json:"messages"`

	// Breakdown attributes every nanosecond of the run's critical path
	// to a category; values sum exactly to SimTime.
	Breakdown map[string]sim.Duration `json:"critical_path_breakdown_ns"`
	// Steps is the number of critical-path segments.
	Steps int `json:"critical_path_steps"`

	Patterns []Pattern  `json:"patterns"`
	Load     []RankLoad `json:"load"`
	Issues   []Issue    `json:"issues,omitempty"`

	steps []PathStep
	graph *Graph
}

// Analyze builds the graph, runs every detector, and assembles the
// report. end is the engine's final virtual time.
func Analyze(workload string, events []Event, end sim.Time) *Report {
	g := Build(events, end)
	steps := g.CriticalPath()
	pats, load := g.Analyze()
	return &Report{
		Workload:  workload,
		SimTime:   end,
		Ranks:     len(g.Ranks),
		Events:    len(events),
		Messages:  len(g.Messages),
		Breakdown: Breakdown(steps),
		Steps:     len(steps),
		Patterns:  pats,
		Load:      load,
		Issues:    g.Check(),
		steps:     steps,
		graph:     g,
	}
}

// Graph returns the underlying happens-before graph.
func (r *Report) Graph() *Graph { return r.graph }

// CriticalSteps returns the critical-path segments in forward order.
func (r *Report) CriticalSteps() []PathStep { return r.steps }

// Pattern returns the named pattern summary, or nil.
func (r *Report) Pattern(name string) *Pattern {
	for i := range r.Patterns {
		if r.Patterns[i].Name == name {
			return &r.Patterns[i]
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the ranked human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	name := r.Workload
	if name == "" {
		name = "run"
	}
	fmt.Fprintf(w, "== causal profile: %s ==\n", name)
	fmt.Fprintf(w, "sim time  %s   ranks %d   events %d   messages %d\n\n",
		fmtDur(sim.Duration(r.SimTime)), r.Ranks, r.Events, r.Messages)

	fmt.Fprintf(w, "critical path (%d steps), time attribution:\n", r.Steps)
	var total sim.Duration
	for _, cd := range SortedCategories(r.Breakdown) {
		share := 0.0
		if r.SimTime > 0 {
			share = 100 * float64(cd.Dur) / float64(r.SimTime)
		}
		total += cd.Dur
		fmt.Fprintf(w, "  %-15s %12s  %5.1f%%\n", cd.Cat, fmtDur(cd.Dur), share)
	}
	fmt.Fprintf(w, "  %-15s %12s  100.0%%\n\n", "total", fmtDur(total))

	fmt.Fprintf(w, "inefficiency patterns (ranked by cost):\n")
	any := false
	for _, p := range r.Patterns {
		if p.Count == 0 {
			continue
		}
		any = true
		fmt.Fprintf(w, "  %-28s x%-5d cost %s\n", p.Name, p.Count, fmtDur(p.Cost))
		for _, in := range p.Worst {
			fmt.Fprintf(w, "      %-32s at %-12s cost %s\n", in.Where, fmtDur(sim.Duration(in.At)), fmtDur(in.Cost))
		}
	}
	if !any {
		fmt.Fprintf(w, "  (none detected)\n")
	}

	fmt.Fprintf(w, "\nper-rank load (wait time = blocked in MPI):\n")
	maxWait := sim.Duration(0)
	for _, l := range r.Load {
		if l.WaitTime > maxWait {
			maxWait = l.WaitTime
		}
	}
	for _, l := range r.Load {
		bar := ""
		if maxWait > 0 {
			n := int(20 * l.WaitTime / maxWait)
			for i := 0; i < n; i++ {
				bar += "#"
			}
		}
		fmt.Fprintf(w, "  rank%-3d wait %12s  coll-wait %12s  %s\n",
			l.Rank, fmtDur(l.WaitTime), fmtDur(l.CollWait), bar)
	}
	if n := len(r.Load); n > 1 {
		var sum sim.Duration
		minWait := r.Load[0].WaitTime
		for _, l := range r.Load {
			sum += l.WaitTime
			if l.WaitTime < minWait {
				minWait = l.WaitTime
			}
		}
		fmt.Fprintf(w, "  imbalance: max-min %s, mean %s\n",
			fmtDur(maxWait-minWait), fmtDur(sum/sim.Duration(n)))
	}

	if len(r.Issues) > 0 {
		fmt.Fprintf(w, "\ngraph inconsistencies (%d):\n", len(r.Issues))
		sorted := append([]Issue(nil), r.Issues...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Kind < sorted[j].Kind })
		for _, is := range sorted {
			fmt.Fprintf(w, "  [%s] %s\n", is.Kind, is.Msg)
		}
	}
	return nil
}

// fmtDur renders a duration with fixed units so reports are stable.
func fmtDur(d sim.Duration) string {
	switch {
	case d >= 1_000_000_000:
		return fmt.Sprintf("%.3fs", float64(d)/1e9)
	case d >= 1_000_000:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	case d >= 1_000:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}
