package causal

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// Flows renders the happens-before graph as Perfetto flow arrows:
// one message flow per matched send→recv pair (send post to receive
// completion) and one flow per cross edge on the critical path. Flow
// ids are assigned deterministically in graph order.
func (r *Report) Flows() []metrics.Flow {
	g := r.graph
	if g == nil {
		return nil
	}
	var flows []metrics.Flow
	id := uint64(1)
	actor := func(rank int32) string { return fmt.Sprintf("rank%d", rank) }

	for i := range g.Messages {
		m := &g.Messages[i]
		if m.SendPost < 0 || m.RecvDone < 0 {
			continue
		}
		flows = append(flows, metrics.Flow{
			ID:        id,
			Name:      fmt.Sprintf("msg seq=%d tag=%d (%s)", m.Seq, m.Tag, ProtoName(m.Proto)),
			Cat:       "message",
			FromActor: actor(m.Src),
			FromTS:    int64(g.Events[m.SendPost].T),
			ToActor:   actor(m.Dst),
			ToTS:      int64(g.Events[m.RecvDone].T),
		})
		id++
	}

	for _, s := range r.steps {
		if !s.Cross || s.Event < 0 {
			continue
		}
		e := &g.Events[s.Event]
		from := s.Rank
		if p := g.CrossPred[s.Event]; p >= 0 {
			from = g.Events[p].Rank
		}
		flows = append(flows, metrics.Flow{
			ID:        id,
			Name:      fmt.Sprintf("critical:%s", s.Cat),
			Cat:       "critical-path",
			FromActor: actor(from),
			FromTS:    int64(s.Start),
			ToActor:   actor(e.Rank),
			ToTS:      int64(s.End),
		})
		id++
	}
	return flows
}

// WriteTrace writes the Chrome/Perfetto trace for reg overlaid with
// this report's flow arrows.
func (r *Report) WriteTrace(w io.Writer, reg *metrics.Registry) error {
	return reg.WriteChromeTraceWithFlows(w, r.Flows())
}
