// Package causal is the deterministic cross-rank causal profiler: it
// consumes structured lifecycle events emitted by core, dcfa, ib, and
// pcie, builds the cross-rank happens-before graph, detects the classic
// MPI inefficiency patterns (late sender, late receiver, wait at
// collective, rendezvous mispredict, ANY_SOURCE serialization),
// extracts the critical path of the run, and attributes every
// nanosecond on it to a category.
//
// The package is strictly passive: a Recorder only appends fixed-size
// value records and never touches the engine, so profiling on/off runs
// share the same Engine.Fingerprint().
package causal

import "repro/internal/sim"

// Kind identifies one lifecycle event class.
type Kind uint8

const (
	// Message lifecycle (rank timeline).
	EvSendPost Kind = iota + 1 // Isend posted (Seq valid for remote sends)
	EvRecvPost                 // Irecv posted (Peer == -1 for ANY_SOURCE)
	EvRecvBind                 // receive bound to a (peer, seq) pair
	EvSendDone                 // send request completed (Proto resolved)
	EvRecvDone                 // receive request completed (Proto resolved)

	// Transport (rank timeline).
	EvPktSend // packet written toward Peer (PSN, Pkt valid)
	EvPktRecv // packet consumed from Peer's ring (PSN, Pkt valid)
	EvWRPost  // rendezvous RDMA work request posted (Aux = wrid)
	EvCQE     // completion consumed (Aux = wrid, Pkt = wrKind)

	// Blocking regions and collectives (rank timeline).
	EvWaitStart // Rank.Wait entered with an incomplete request
	EvWaitEnd   // Rank.Wait satisfied
	EvCollEnter // symmetric collective entered (Aux = collective seq)
	EvCollExit  // symmetric collective left (Aux = collective seq)

	// ANY_SOURCE serialization (rank timeline).
	EvAnyLock // wildcard receive took the sequence-assignment lock
	EvDefer   // receive deferred behind an active wildcard

	// Protocol misprediction and fault recovery (rank timeline).
	EvMispredict // eager/rendezvous protocol misprediction observed
	EvQPReset    // errored QP reset + reconnected
	EvReplay     // WR replayed after retry exhaustion (Aux = wrid)
	EvReplayDrop // inbound replayed packet deduped by PSN
	EvFallback   // DMA-abort offload fallback to direct send
	EvDMASync    // offload staging DMA finished (Aux = duration ns)

	// Node-layer events (Rank == -1; tallied, not on rank timelines).
	EvCmdDone // DCFA command-channel call finished (Aux = duration ns)
	EvDMADone // PCIe DMA engine copy finished (Aux = duration ns)
	EvHWCQE   // hardware pushed a completion (Aux = wrid)
)

var kindNames = [...]string{
	EvSendPost:   "send-post",
	EvRecvPost:   "recv-post",
	EvRecvBind:   "recv-bind",
	EvSendDone:   "send-done",
	EvRecvDone:   "recv-done",
	EvPktSend:    "pkt-send",
	EvPktRecv:    "pkt-recv",
	EvWRPost:     "wr-post",
	EvCQE:        "cqe",
	EvWaitStart:  "wait-start",
	EvWaitEnd:    "wait-end",
	EvCollEnter:  "coll-enter",
	EvCollExit:   "coll-exit",
	EvAnyLock:    "any-lock",
	EvDefer:      "any-defer",
	EvMispredict: "mispredict",
	EvQPReset:    "qp-reset",
	EvReplay:     "wr-replay",
	EvReplayDrop: "replay-drop",
	EvFallback:   "offload-fallback",
	EvDMASync:    "dma-sync",
	EvCmdDone:    "cmd-done",
	EvDMADone:    "dma-done",
	EvHWCQE:      "hw-cqe",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Protocol classification carried on *Done events (mirrors the
// span-kind taxonomy in core/metrics.go).
const (
	ProtoUnknown uint8 = iota
	ProtoEager
	ProtoSenderRzv
	ProtoRecvRzv
	ProtoSimulRzv
	ProtoSelf
)

var protoNames = [...]string{
	ProtoUnknown:   "unknown",
	ProtoEager:     "eager",
	ProtoSenderRzv: "sender-rzv",
	ProtoRecvRzv:   "recv-rzv",
	ProtoSimulRzv:  "simultaneous-rzv",
	ProtoSelf:      "self",
}

// ProtoName returns the printable name of a protocol code.
func ProtoName(p uint8) string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return "unknown"
}

// Packet kinds mirrored from core's wire headers so the graph layer can
// classify cross-rank edges without importing core (core imports us).
// core asserts the numeric agreement in a test.
const (
	PktEager  uint8 = 1
	PktRTS    uint8 = 2
	PktRTR    uint8 = 3
	PktDone   uint8 = 4
	PktCredit uint8 = 5
	PktNack   uint8 = 6
	PktDoneW  uint8 = 7
	PktNackW  uint8 = 8
)

// Work-request kinds carried in Pkt on EvWRPost/EvCQE (core's wrKind
// shifted by one so zero stays "unset").
const (
	WREager     uint8 = 1
	WRCtrl      uint8 = 2
	WRRndvWrite uint8 = 3
	WRRndvRead  uint8 = 4
)

// Event is one structured lifecycle record. Events are fixed-size
// values: recording allocates nothing but the slice growth.
type Event struct {
	T    sim.Time
	Kind Kind

	// Rank is the emitting rank, or -1 for node-layer events.
	Rank int32
	// Peer is the remote rank (-1 when not applicable).
	Peer int32
	// Tag is the MPI tag for message events, or the collective op code
	// for EvCollEnter/EvCollExit.
	Tag int32

	// Pkt is the wire packet kind (EvPktSend/EvPktRecv) or WR kind
	// (EvWRPost/EvCQE).
	Pkt uint8
	// Proto is the resolved protocol on EvSendDone/EvRecvDone.
	Proto uint8
	// Wait marks events emitted while the rank was blocked inside
	// Rank.Wait (the progress engine runs in the waiter's context).
	Wait bool

	// Seq is the per-directed-pair message sequence id.
	Seq uint64
	// PSN is the transport packet sequence number (pkt events).
	PSN uint64
	// CID is the rank-local request id (message lifecycle events).
	CID uint64
	// Aux is event-specific: wrid, collective seq, or a duration in
	// nanoseconds (EvDMASync/EvCmdDone/EvDMADone).
	Aux uint64

	// Bytes is the payload size when the event concerns data movement.
	Bytes int32
}

// Recorder accumulates events. A nil *Recorder is a valid disabled
// recorder: Emit on nil is a no-op, so call sites need no guard.
type Recorder struct {
	events []Event
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Emit appends one event. Safe on a nil receiver.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in emission order (which is
// engine-dispatch order, hence deterministic).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Reset drops all recorded events, keeping capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}
