package causal

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Graph is the cross-rank happens-before relation over recorded
// events. Nodes are event indices into Events; edges are of two kinds:
// the implicit program order within each rank's timeline, and explicit
// cross edges (packet delivery, WR completion, collective fan-in).
type Graph struct {
	// Events is the full event stream in emission order.
	Events []Event
	// End is the simulated end of the run (>= the last event time).
	End sim.Time

	// Timelines[rank] lists event indices in program order. Node-layer
	// events (Rank == -1) are excluded.
	Timelines map[int32][]int
	// pos[i] is the position of event i within its rank timeline.
	pos []int

	// CrossPred[i] is the index of the explicit cross-edge predecessor
	// of event i, or -1. At most one cross edge terminates at any event
	// except collective exits, which use CollPreds.
	CrossPred []int
	// CollPreds[i] lists the fan-in predecessors (all ranks' CollEnter
	// events) for a CollExit event i.
	CollPreds map[int][]int

	// Messages are matched message lifecycles keyed deterministically.
	Messages []Message

	// Ranks is the sorted set of ranks seen.
	Ranks []int32
}

// Message pairs the send-side and receive-side lifecycle of one
// point-to-point message (directed pair src→dst, sequence id seq).
type Message struct {
	Src, Dst int32
	Seq      uint64
	Tag      int32
	Bytes    int32
	Proto    uint8

	// Event indices, -1 when the corresponding event was not observed.
	SendPost, SendDone int
	RecvBind, RecvDone int
}

// Issue is one graph-consistency problem.
type Issue struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// Build constructs the happens-before graph from a recorded event
// stream. end is the engine's final virtual time.
func Build(events []Event, end sim.Time) *Graph {
	g := &Graph{
		Events:    events,
		End:       end,
		Timelines: make(map[int32][]int),
		pos:       make([]int, len(events)),
		CrossPred: make([]int, len(events)),
		CollPreds: make(map[int][]int),
	}
	for i := range g.CrossPred {
		g.CrossPred[i] = -1
	}

	// Program order: per-rank timelines in emission order.
	for i := range events {
		e := &events[i]
		if e.Rank < 0 {
			continue
		}
		tl := g.Timelines[e.Rank]
		if len(tl) == 0 {
			g.Ranks = append(g.Ranks, e.Rank)
		}
		g.pos[i] = len(tl)
		g.Timelines[e.Rank] = append(tl, i)
	}
	sort.Slice(g.Ranks, func(a, b int) bool { return g.Ranks[a] < g.Ranks[b] })

	type pairKey struct {
		src, dst int32
		n        uint64
	}

	// Cross edges: packet delivery (src,dst,psn), WR completion
	// (rank,wrid), and collective fan-in (collSeq).
	pktSend := make(map[pairKey]int)
	wrPost := make(map[pairKey]int)
	collEnter := make(map[uint64][]int)
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case EvPktSend:
			pktSend[pairKey{e.Rank, e.Peer, e.PSN}] = i
		case EvPktRecv:
			if s, ok := pktSend[pairKey{e.Peer, e.Rank, e.PSN}]; ok {
				g.CrossPred[i] = s
				delete(pktSend, pairKey{e.Peer, e.Rank, e.PSN})
			}
		case EvReplayDrop:
			// A deduped replay still consumed the wire: bind it to the
			// original send if one is still unmatched (the replayed
			// packet re-uses the original PSN).
			if s, ok := pktSend[pairKey{e.Peer, e.Rank, e.PSN}]; ok {
				g.CrossPred[i] = s
			}
		case EvWRPost:
			wrPost[pairKey{e.Rank, 0, e.Aux}] = i
		case EvCQE:
			if s, ok := wrPost[pairKey{e.Rank, 0, e.Aux}]; ok {
				g.CrossPred[i] = s
				delete(wrPost, pairKey{e.Rank, 0, e.Aux})
			}
		case EvCollEnter:
			collEnter[e.Aux] = append(collEnter[e.Aux], i)
		case EvCollExit:
			// Defer until all enters are collected.
		default:
			// Every other event kind orders only within its own rank
			// timeline; cross edges exist solely for the wire, WR
			// completion, and collective fan-in pairs handled above.
		}
	}
	for i := range events {
		e := &events[i]
		if e.Kind == EvCollExit {
			g.CollPreds[i] = collEnter[e.Aux]
		}
	}

	g.buildMessages()
	return g
}

// buildMessages pairs send-side and receive-side lifecycles.
func (g *Graph) buildMessages() {
	type msgKey struct {
		src, dst int32
		seq      uint64
	}
	idx := make(map[msgKey]int)
	get := func(k msgKey) *Message {
		if j, ok := idx[k]; ok {
			return &g.Messages[j]
		}
		idx[k] = len(g.Messages)
		g.Messages = append(g.Messages, Message{
			Src: k.src, Dst: k.dst, Seq: k.seq,
			SendPost: -1, SendDone: -1, RecvBind: -1, RecvDone: -1,
		})
		return &g.Messages[len(g.Messages)-1]
	}
	for i := range g.Events {
		e := &g.Events[i]
		switch e.Kind {
		case EvSendPost:
			if e.Peer == e.Rank {
				continue // self messages have no cross-rank lifecycle
			}
			m := get(msgKey{e.Rank, e.Peer, e.Seq})
			m.SendPost, m.Tag, m.Bytes = i, e.Tag, e.Bytes
		case EvSendDone:
			if e.Peer == e.Rank || e.Proto == ProtoSelf {
				continue
			}
			m := get(msgKey{e.Rank, e.Peer, e.Seq})
			m.SendDone = i
			if m.Proto == ProtoUnknown {
				m.Proto = e.Proto
			}
		case EvRecvBind:
			m := get(msgKey{e.Peer, e.Rank, e.Seq})
			m.RecvBind = i
		case EvRecvDone:
			if e.Peer == e.Rank || e.Proto == ProtoSelf {
				continue
			}
			m := get(msgKey{e.Peer, e.Rank, e.Seq})
			m.RecvDone = i
			m.Proto = e.Proto
		default:
			// Only the four post/done endpoints define a message's
			// lifecycle; waits, packets, and collectives never key a
			// message record.
		}
	}
	sort.Slice(g.Messages, func(a, b int) bool {
		x, y := &g.Messages[a], &g.Messages[b]
		if x.Src != y.Src {
			return x.Src < y.Src
		}
		if x.Dst != y.Dst {
			return x.Dst < y.Dst
		}
		return x.Seq < y.Seq
	})
}

// preds appends all happens-before predecessors of event i to buf.
func (g *Graph) preds(i int, buf []int) []int {
	e := &g.Events[i]
	if e.Rank >= 0 && g.pos[i] > 0 {
		buf = append(buf, g.Timelines[e.Rank][g.pos[i]-1])
	}
	if p := g.CrossPred[i]; p >= 0 {
		buf = append(buf, p)
	}
	buf = append(buf, g.CollPreds[i]...)
	return buf
}

// Check validates graph invariants and returns the issues found:
// posted sends/recvs with no completion, packets consumed with no
// matching send, backward cross edges, and cycles in happens-before.
func (g *Graph) Check() []Issue {
	var issues []Issue
	for i := range g.Messages {
		m := &g.Messages[i]
		if m.SendPost >= 0 && m.SendDone < 0 {
			issues = append(issues, Issue{"unmatched-send", fmt.Sprintf(
				"send %d→%d seq=%d posted but never completed", m.Src, m.Dst, m.Seq)})
		}
		if m.RecvBind >= 0 && m.RecvDone < 0 {
			issues = append(issues, Issue{"unmatched-recv", fmt.Sprintf(
				"recv %d←%d seq=%d bound but never completed", m.Dst, m.Src, m.Seq)})
		}
	}
	for i := range g.Events {
		e := &g.Events[i]
		if e.Kind == EvPktRecv && g.CrossPred[i] < 0 {
			issues = append(issues, Issue{"orphan-packet", fmt.Sprintf(
				"rank %d consumed pkt kind=%d psn=%d from %d with no recorded send",
				e.Rank, e.Pkt, e.PSN, e.Peer)})
		}
		if p := g.CrossPred[i]; p >= 0 && g.Events[p].T > e.T {
			issues = append(issues, Issue{"backward-edge", fmt.Sprintf(
				"event %d (%s @%d) precedes its effect %d (%s @%d)",
				p, g.Events[p].Kind, g.Events[p].T, i, e.Kind, e.T)})
		}
	}
	if cyc := g.findCycle(); cyc != "" {
		issues = append(issues, Issue{"cycle", cyc})
	}
	return issues
}

// findCycle runs Kahn's algorithm over program order + cross edges and
// reports a non-empty description if any nodes remain unprocessed.
func (g *Graph) findCycle() string {
	n := len(g.Events)
	indeg := make([]int, n)
	var buf []int
	for i := 0; i < n; i++ {
		buf = g.preds(i, buf[:0])
		indeg[i] = len(buf)
	}
	// succ lists are the reverse of preds.
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		buf = g.preds(i, buf[:0])
		for _, p := range buf {
			succ[p] = append(succ[p], i)
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		done++
		for _, s := range succ[i] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if done != n {
		return fmt.Sprintf("happens-before contains a cycle: %d of %d events unreachable by topological order", n-done, n)
	}
	return ""
}
