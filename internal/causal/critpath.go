package causal

import (
	"sort"

	"repro/internal/sim"
)

// Category names every nanosecond on the critical path lands in. The
// set is closed so report shares always partition total sim time.
const (
	CatCompute  = "compute"        // application work between MPI events
	CatEager    = "eager-copy"     // eager/control packet assembly + wire
	CatRndvRTT  = "rendezvous-rtt" // handshake round trips + RDMA bulk
	CatDMA      = "dma-coi"        // PCIe DMA staging / COI transfers
	CatCmd      = "cmd-channel"    // DCFA command-channel calls
	CatWait     = "wait"           // blocked in Wait with no attributable cause
	CatRecovery = "recovery"       // fault recovery: resets, replays, fallbacks
)

// Categories lists every category in report order.
var Categories = []string{CatCompute, CatEager, CatRndvRTT, CatDMA, CatCmd, CatWait, CatRecovery}

// PathStep is one segment of the critical path: the interval
// (Start, End] spent on rank Rank attributed to Cat, terminated by the
// event at index Event (or -1 for the synthetic head/tail segments).
type PathStep struct {
	Start, End sim.Time
	Rank       int32
	Cat        string
	Event      int
	// Cross marks steps that followed a cross-rank/cross-layer edge.
	Cross bool
}

// CriticalPath walks the happens-before graph backward from the
// latest event, always following the binding (latest-finishing)
// predecessor, and returns the path as forward-ordered steps whose
// intervals exactly partition [0, g.End].
func (g *Graph) CriticalPath() []PathStep {
	last := -1
	for i := range g.Events {
		if g.Events[i].Rank < 0 {
			continue
		}
		if last < 0 || g.Events[i].T > g.Events[last].T || (g.Events[i].T == g.Events[last].T && i > last) {
			last = i
		}
	}
	if last < 0 {
		if g.End > 0 {
			return []PathStep{{Start: 0, End: g.End, Rank: -1, Cat: CatCompute, Event: -1}}
		}
		return nil
	}

	var rev []PathStep
	cur := last
	var buf []int
	for {
		e := &g.Events[cur]
		// Choose the binding predecessor: the one that finished last.
		buf = g.preds(cur, buf[:0])
		best, bestT := -1, sim.Time(-1)
		for _, p := range buf {
			if g.Events[p].T > bestT || (g.Events[p].T == bestT && p > best) {
				best, bestT = p, g.Events[p].T
			}
		}
		if best < 0 {
			// Head of the path: attribute [0, e.T] to startup compute.
			if e.T > 0 {
				rev = append(rev, PathStep{Start: 0, End: e.T, Rank: e.Rank, Cat: CatCompute, Event: cur})
			}
			break
		}
		cross := best != g.crossProgramPred(cur) && (best == g.CrossPred[cur] || isIn(g.CollPreds[cur], best))
		rev = append(rev, g.steps(best, cur, cross)...)
		cur = best
	}

	// Reverse into forward order and close the tail out to g.End.
	steps := make([]PathStep, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		steps = append(steps, rev[i])
	}
	if lastT := g.Events[last].T; g.End > lastT {
		steps = append(steps, PathStep{Start: lastT, End: g.End, Rank: g.Events[last].Rank, Cat: CatCompute, Event: -1})
	}
	return steps
}

// crossProgramPred returns the program-order predecessor index of i,
// or -1.
func (g *Graph) crossProgramPred(i int) int {
	e := &g.Events[i]
	if e.Rank >= 0 && g.pos[i] > 0 {
		return g.Timelines[e.Rank][g.pos[i]-1]
	}
	return -1
}

func isIn(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// steps attributes the interval between predecessor p and event i,
// possibly splitting it when the terminating event carries its own
// duration (DMA sync, command-channel call).
func (g *Graph) steps(p, i int, cross bool) []PathStep {
	e := &g.Events[i]
	start, end := g.Events[p].T, e.T
	if end <= start {
		return nil
	}
	cat := g.categorize(i, cross)
	if d := sim.Duration(e.Aux); (e.Kind == EvDMASync || e.Kind == EvCmdDone || e.Kind == EvDMADone) && d > 0 && end-sim.Time(d) > start {
		// The event records its own duration: only that trailing part
		// is staging/command time; the remainder was rank progress.
		return []PathStep{
			{Start: end - sim.Time(d), End: end, Rank: e.Rank, Cat: cat, Event: i, Cross: cross},
			{Start: start, End: end - sim.Time(d), Rank: e.Rank, Cat: CatCompute, Event: i},
		}
	}
	return []PathStep{{Start: start, End: end, Rank: e.Rank, Cat: cat, Event: i, Cross: cross}}
}

// categorize maps the event terminating a path segment to the
// category the segment's time is attributed to.
func (g *Graph) categorize(i int, cross bool) string {
	e := &g.Events[i]
	switch e.Kind {
	case EvQPReset, EvReplay, EvReplayDrop, EvFallback:
		return CatRecovery
	case EvDMASync, EvDMADone:
		return CatDMA
	case EvCmdDone:
		return CatCmd
	case EvPktRecv:
		if cross {
			// Wire time of the packet that unblocked us.
			if e.Pkt == PktEager || e.Pkt == PktCredit {
				return CatEager
			}
			return CatRndvRTT
		}
		if e.Wait {
			return CatWait
		}
		return CatCompute
	case EvCQE:
		if cross {
			// RDMA bulk transfer flight time.
			return CatRndvRTT
		}
		if e.Wait {
			return CatWait
		}
		return CatCompute
	case EvPktSend:
		if e.Bytes > 0 {
			return CatEager
		}
		if e.Wait {
			return CatWait
		}
		return CatCompute
	case EvSendDone, EvRecvDone:
		switch e.Proto {
		case ProtoEager:
			return CatEager
		case ProtoSenderRzv, ProtoRecvRzv, ProtoSimulRzv:
			return CatRndvRTT
		default:
			return CatCompute
		}
	case EvWaitEnd, EvCollExit:
		if cross {
			return CatWait
		}
		return CatWait
	default:
		if e.Wait {
			return CatWait
		}
		return CatCompute
	}
}

// Breakdown sums critical-path step durations per category. The values
// partition the run: they always sum to g.End.
func Breakdown(steps []PathStep) map[string]sim.Duration {
	out := make(map[string]sim.Duration, len(Categories))
	for _, c := range Categories {
		out[c] = 0
	}
	for _, s := range steps {
		out[s.Cat] += sim.Duration(s.End - s.Start)
	}
	return out
}

// SortedCategories returns the breakdown as (category, duration) pairs
// ordered by descending duration, ties broken by name.
func SortedCategories(b map[string]sim.Duration) []struct {
	Cat string
	Dur sim.Duration
} {
	out := make([]struct {
		Cat string
		Dur sim.Duration
	}, 0, len(b))
	for _, c := range Categories {
		out = append(out, struct {
			Cat string
			Dur sim.Duration
		}{c, b[c]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].Cat < out[j].Cat
	})
	return out
}
