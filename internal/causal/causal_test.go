package causal

// Unit tests over hand-built event streams: graph construction, the
// consistency checker, the critical-path partition invariant, each
// pattern detector, and report determinism. The integration-level
// counterparts (real workloads, fingerprint neutrality) live in
// internal/bench and internal/core.

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// eagerExchange is a minimal well-formed run: rank 0 eagerly sends one
// 64-byte message to rank 1, which had pre-posted the receive. A
// node-layer HW CQE rides along to exercise the Rank == -1 exclusion.
func eagerExchange() []Event {
	return []Event{
		{T: 50, Kind: EvRecvPost, Rank: 1, Peer: 0, Tag: 5, CID: 1},
		{T: 100, Kind: EvSendPost, Rank: 0, Peer: 1, Tag: 5, Seq: 0, CID: 1, Bytes: 64},
		{T: 120, Kind: EvPktSend, Rank: 0, Peer: 1, Pkt: PktEager, PSN: 1, Bytes: 64},
		{T: 130, Kind: EvSendDone, Rank: 0, Peer: 1, Tag: 5, Seq: 0, CID: 1, Proto: ProtoEager},
		{T: 180, Kind: EvHWCQE, Rank: -1, Peer: 2, Aux: 7},
		{T: 200, Kind: EvRecvBind, Rank: 1, Peer: 0, Tag: 5, Seq: 0, CID: 1},
		{T: 200, Kind: EvPktRecv, Rank: 1, Peer: 0, Pkt: PktEager, PSN: 1, Bytes: 64},
		{T: 210, Kind: EvRecvDone, Rank: 1, Peer: 0, Tag: 5, Seq: 0, CID: 1, Proto: ProtoEager},
	}
}

func TestBuildTimelinesAndCrossEdges(t *testing.T) {
	evs := eagerExchange()
	g := Build(evs, 300)

	if len(g.Ranks) != 2 || g.Ranks[0] != 0 || g.Ranks[1] != 1 {
		t.Fatalf("ranks = %v, want [0 1]", g.Ranks)
	}
	// Node-layer events stay off rank timelines.
	if got := len(g.Timelines[0]) + len(g.Timelines[1]); got != len(evs)-1 {
		t.Errorf("timelines hold %d events, want %d (HW CQE excluded)", got, len(evs)-1)
	}
	// The packet consume must have the packet send as cross predecessor.
	var pktRecv, pktSend int = -1, -1
	for i := range evs {
		switch evs[i].Kind {
		case EvPktSend:
			pktSend = i
		case EvPktRecv:
			pktRecv = i
		default:
			// This scan only locates the one wire pair in the fixture.
		}
	}
	if g.CrossPred[pktRecv] != pktSend {
		t.Errorf("pkt-recv cross pred = %d, want %d", g.CrossPred[pktRecv], pktSend)
	}
	// One fully matched message with the eager protocol resolved.
	if len(g.Messages) != 1 {
		t.Fatalf("got %d messages, want 1", len(g.Messages))
	}
	m := g.Messages[0]
	if m.Src != 0 || m.Dst != 1 || m.Proto != ProtoEager ||
		m.SendPost < 0 || m.SendDone < 0 || m.RecvBind < 0 || m.RecvDone < 0 {
		t.Errorf("message not fully matched: %+v", m)
	}
	if issues := g.Check(); len(issues) != 0 {
		t.Errorf("clean stream reported issues: %v", issues)
	}
}

func TestBuildWRCompletionEdge(t *testing.T) {
	evs := []Event{
		{T: 100, Kind: EvWRPost, Rank: 0, Peer: 1, Pkt: WRRndvRead, Aux: 42},
		{T: 900, Kind: EvCQE, Rank: 0, Peer: 1, Pkt: WRRndvRead, Aux: 42, Wait: true},
	}
	g := Build(evs, 1000)
	if g.CrossPred[1] != 0 {
		t.Errorf("CQE cross pred = %d, want 0 (its WR post)", g.CrossPred[1])
	}
}

func TestCheckDetectsInconsistencies(t *testing.T) {
	evs := []Event{
		// A send posted but never completed.
		{T: 100, Kind: EvSendPost, Rank: 0, Peer: 1, Tag: 1, Seq: 0, Bytes: 8},
		// A receive bound but never completed.
		{T: 150, Kind: EvRecvBind, Rank: 1, Peer: 0, Tag: 1, Seq: 0},
		// A packet consumed with no recorded send.
		{T: 200, Kind: EvPktRecv, Rank: 1, Peer: 0, Pkt: PktEager, PSN: 9},
	}
	g := Build(evs, 300)
	found := map[string]bool{}
	for _, is := range g.Check() {
		found[is.Kind] = true
	}
	for _, want := range []string{"unmatched-send", "unmatched-recv", "orphan-packet"} {
		if !found[want] {
			t.Errorf("Check missed %q; got %v", want, found)
		}
	}
}

func TestCheckBackwardEdge(t *testing.T) {
	evs := []Event{
		{T: 500, Kind: EvPktSend, Rank: 0, Peer: 1, Pkt: PktEager, PSN: 1},
		{T: 400, Kind: EvPktRecv, Rank: 1, Peer: 0, Pkt: PktEager, PSN: 1},
	}
	g := Build(evs, 600)
	found := false
	for _, is := range g.Check() {
		if is.Kind == "backward-edge" {
			found = true
		}
	}
	if !found {
		t.Error("Check missed the backward cross edge")
	}
}

// checkPartition asserts the critical-path steps tile [0, end] exactly
// and the per-category breakdown sums to end.
func checkPartition(t *testing.T, g *Graph) {
	t.Helper()
	steps := g.CriticalPath()
	if len(steps) == 0 {
		if g.End != 0 {
			t.Fatalf("no steps for a run ending at %d", g.End)
		}
		return
	}
	if steps[0].Start != 0 {
		t.Errorf("path starts at %d, want 0", steps[0].Start)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Start != steps[i-1].End {
			t.Errorf("step %d starts at %d but step %d ended at %d",
				i, steps[i].Start, i-1, steps[i-1].End)
		}
	}
	if last := steps[len(steps)-1].End; last != g.End {
		t.Errorf("path ends at %d, want %d", last, g.End)
	}
	bd := Breakdown(steps)
	var sum sim.Duration
	for _, c := range Categories {
		sum += bd[c]
	}
	if sim.Time(sum) != g.End {
		t.Errorf("breakdown sums to %d, want %d", sum, g.End)
	}
}

func TestCriticalPathPartition(t *testing.T) {
	checkPartition(t, Build(eagerExchange(), 300))
}

func TestCriticalPathEmptyStream(t *testing.T) {
	g := Build(nil, 500)
	steps := g.CriticalPath()
	if len(steps) != 1 || steps[0].Start != 0 || steps[0].End != 500 || steps[0].Cat != CatCompute {
		t.Fatalf("empty stream path = %+v, want one compute step [0,500]", steps)
	}
	checkPartition(t, g)
}

func TestCriticalPathDurationSplit(t *testing.T) {
	// A command-channel call that finished at t=1000 after taking 300ns:
	// only the trailing 300ns is cmd-channel, the rest rank progress.
	evs := []Event{
		{T: 100, Kind: EvSendPost, Rank: 0, Peer: 1, Seq: 0},
		{T: 1000, Kind: EvCmdDone, Rank: 0, Peer: -1, Aux: 300},
	}
	g := Build(evs, 1000)
	checkPartition(t, g)
	bd := Breakdown(g.CriticalPath())
	if bd[CatCmd] != 300 {
		t.Errorf("cmd-channel attributed %dns, want 300", bd[CatCmd])
	}
	if bd[CatCompute] != 700 {
		t.Errorf("compute attributed %dns, want 700", bd[CatCompute])
	}
}

func TestCriticalPathCrossesRanks(t *testing.T) {
	// rank 1 finishes last, unblocked by a rendezvous packet from
	// rank 0 — the path must hop onto rank 0 through the cross edge.
	evs := []Event{
		{T: 100, Kind: EvSendPost, Rank: 0, Peer: 1, Seq: 0},
		{T: 400, Kind: EvPktSend, Rank: 0, Peer: 1, Pkt: PktRTS, PSN: 1},
		{T: 900, Kind: EvPktRecv, Rank: 1, Peer: 0, Pkt: PktRTS, PSN: 1, Wait: true},
		{T: 950, Kind: EvRecvDone, Rank: 1, Peer: 0, Seq: 0, Proto: ProtoSenderRzv},
	}
	g := Build(evs, 1000)
	checkPartition(t, g)
	steps := g.CriticalPath()
	sawCross := false
	ranks := map[int32]bool{}
	for _, s := range steps {
		ranks[s.Rank] = true
		if s.Cross {
			sawCross = true
			if s.Cat != CatRndvRTT {
				t.Errorf("RTS wire segment categorized %q, want %q", s.Cat, CatRndvRTT)
			}
		}
	}
	if !sawCross {
		t.Error("critical path never followed the cross edge")
	}
	if !ranks[0] || !ranks[1] {
		t.Errorf("critical path visits ranks %v, want both 0 and 1", ranks)
	}
}

func TestDetectLateSender(t *testing.T) {
	evs := []Event{
		{T: 100, Kind: EvRecvBind, Rank: 1, Peer: 0, Tag: 3, Seq: 0},
		{T: 500, Kind: EvSendPost, Rank: 0, Peer: 1, Tag: 3, Seq: 0, Bytes: 8},
		{T: 510, Kind: EvSendDone, Rank: 0, Peer: 1, Tag: 3, Seq: 0, Proto: ProtoEager},
		{T: 600, Kind: EvRecvDone, Rank: 1, Peer: 0, Tag: 3, Seq: 0, Proto: ProtoEager},
	}
	g := Build(evs, 700)
	p := (&Report{Patterns: mustPatterns(g)}).Pattern(PatLateSender)
	if p == nil || p.Count != 1 || p.Cost != 400 {
		t.Fatalf("late-sender = %+v, want count 1 cost 400", p)
	}
	if len(p.Worst) != 1 || p.Worst[0].Cost != 400 {
		t.Errorf("worst instance = %+v", p.Worst)
	}
}

func TestDetectLateReceiverRendezvousOnly(t *testing.T) {
	evs := []Event{
		// Rendezvous send waits 500ns for its receiver: detected.
		{T: 100, Kind: EvSendPost, Rank: 0, Peer: 1, Tag: 1, Seq: 0, Bytes: 1 << 20},
		{T: 600, Kind: EvRecvBind, Rank: 1, Peer: 0, Tag: 1, Seq: 0},
		{T: 700, Kind: EvSendDone, Rank: 0, Peer: 1, Tag: 1, Seq: 0, Proto: ProtoSenderRzv},
		{T: 700, Kind: EvRecvDone, Rank: 1, Peer: 0, Tag: 1, Seq: 0, Proto: ProtoSenderRzv},
		// Eager send with a late receiver: fire-and-forget, excluded.
		{T: 800, Kind: EvSendPost, Rank: 0, Peer: 1, Tag: 2, Seq: 1, Bytes: 8},
		{T: 810, Kind: EvSendDone, Rank: 0, Peer: 1, Tag: 2, Seq: 1, Proto: ProtoEager},
		{T: 1500, Kind: EvRecvBind, Rank: 1, Peer: 0, Tag: 2, Seq: 1},
		{T: 1500, Kind: EvRecvDone, Rank: 1, Peer: 0, Tag: 2, Seq: 1, Proto: ProtoEager},
	}
	g := Build(evs, 1600)
	p := (&Report{Patterns: mustPatterns(g)}).Pattern(PatLateReceiver)
	if p == nil || p.Count != 1 || p.Cost != 500 {
		t.Fatalf("late-receiver = %+v, want count 1 cost 500 (eager excluded)", p)
	}
}

func TestDetectWaitAtCollective(t *testing.T) {
	evs := []Event{
		{T: 100, Kind: EvCollEnter, Rank: 0, Tag: CollBarrier, Aux: 1},
		{T: 400, Kind: EvCollEnter, Rank: 1, Tag: CollBarrier, Aux: 1},
		{T: 410, Kind: EvCollExit, Rank: 0, Tag: CollBarrier, Aux: 1},
		{T: 410, Kind: EvCollExit, Rank: 1, Tag: CollBarrier, Aux: 1},
	}
	g := Build(evs, 500)
	pats, load := g.Analyze()
	p := (&Report{Patterns: pats}).Pattern(PatWaitAtCollective)
	if p == nil || p.Count != 1 || p.Cost != 300 {
		t.Fatalf("wait-at-collective = %+v, want count 1 cost 300", p)
	}
	if want := "barrier #1 straggler=rank1"; p.Worst[0].Where != want {
		t.Errorf("worst = %q, want %q", p.Worst[0].Where, want)
	}
	// The early rank carries the collective wait in the load summary.
	for _, l := range load {
		want := sim.Duration(0)
		if l.Rank == 0 {
			want = 300
		}
		if l.CollWait != want {
			t.Errorf("rank %d coll-wait = %d, want %d", l.Rank, l.CollWait, want)
		}
	}
}

func TestDetectMispredictStall(t *testing.T) {
	evs := []Event{
		// Receiver-first: rank 1 sent an RTR that rank 0 will drop.
		{T: 1000, Kind: EvPktSend, Rank: 1, Peer: 0, Pkt: PktRTR, PSN: 4, Seq: 3},
		{T: 1400, Kind: EvMispredict, Rank: 0, Peer: 1, Seq: 3},
	}
	g := Build(evs, 1500)
	p := (&Report{Patterns: mustPatterns(g)}).Pattern(PatMispredictStall)
	if p == nil || p.Count != 1 || p.Cost != 400 {
		t.Fatalf("mispredict-stall = %+v, want count 1 cost 400", p)
	}
}

func TestDetectAnySourceSerialization(t *testing.T) {
	evs := []Event{
		{T: 100, Kind: EvAnyLock, Rank: 1, Peer: -1, CID: 1},
		{T: 150, Kind: EvDefer, Rank: 1, Peer: 0, CID: 2},
		{T: 900, Kind: EvRecvBind, Rank: 1, Peer: 0, Seq: 5, CID: 2},
		{T: 950, Kind: EvRecvDone, Rank: 1, Peer: 0, Seq: 5, CID: 2, Proto: ProtoEager},
	}
	g := Build(evs, 1000)
	p := (&Report{Patterns: mustPatterns(g)}).Pattern(PatAnySerialization)
	if p == nil || p.Count != 1 || p.Cost != 750 {
		t.Fatalf("any-source-serialization = %+v, want count 1 cost 750", p)
	}
}

func TestLoadSummaryWaitTime(t *testing.T) {
	evs := []Event{
		{T: 100, Kind: EvWaitStart, Rank: 0, Peer: -1, CID: 1},
		{T: 350, Kind: EvWaitEnd, Rank: 0, Peer: -1, CID: 1},
		{T: 400, Kind: EvWaitStart, Rank: 1, Peer: -1, CID: 1},
		{T: 450, Kind: EvWaitEnd, Rank: 1, Peer: -1, CID: 1},
	}
	g := Build(evs, 500)
	_, load := g.Analyze()
	if len(load) != 2 {
		t.Fatalf("got %d rank loads, want 2", len(load))
	}
	if load[0].WaitTime != 250 || load[1].WaitTime != 50 {
		t.Errorf("wait times = %d, %d; want 250, 50", load[0].WaitTime, load[1].WaitTime)
	}
}

func TestReportDeterminism(t *testing.T) {
	evs := eagerExchange()
	write := func() (text, js []byte) {
		rep := Analyze("unit", evs, 300)
		var tb, jb bytes.Buffer
		if err := rep.WriteText(&tb); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), jb.Bytes()
	}
	t1, j1 := write()
	t2, j2 := write()
	if !bytes.Equal(t1, t2) {
		t.Error("text report not byte-identical across runs")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON report not byte-identical across runs")
	}
	if len(t1) == 0 || len(j1) == 0 {
		t.Error("empty report output")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{T: 1, Kind: EvSendPost})
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should drop events")
	}
	r.Reset()
}

// mustPatterns runs the analyzers and returns only the patterns.
func mustPatterns(g *Graph) []Pattern {
	pats, _ := g.Analyze()
	return pats
}
