package causal

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Pattern names for the classic MPI inefficiency patterns.
const (
	PatLateSender       = "late-sender"
	PatLateReceiver     = "late-receiver"
	PatWaitAtCollective = "wait-at-collective"
	PatMispredictStall  = "rendezvous-mispredict-stall"
	PatAnySerialization = "any-source-serialization"
)

// Instance is one concrete occurrence of an inefficiency pattern.
type Instance struct {
	// Where identifies the involved endpoints, e.g. "0→1 seq=3".
	Where string       `json:"where"`
	At    sim.Time     `json:"at"`
	Cost  sim.Duration `json:"cost"`
}

// Pattern aggregates all instances of one inefficiency class.
type Pattern struct {
	Name  string       `json:"name"`
	Count int          `json:"count"`
	Cost  sim.Duration `json:"cost"`
	// Worst holds the costliest instances, descending (capped).
	Worst []Instance `json:"worst,omitempty"`
}

// RankLoad summarizes one rank's blocking profile.
type RankLoad struct {
	Rank     int32        `json:"rank"`
	WaitTime sim.Duration `json:"wait_ns"`
	CollWait sim.Duration `json:"coll_wait_ns"`
	Events   int          `json:"events"`
}

// maxWorst caps the per-pattern instance list in reports.
const maxWorst = 5

// Analyze runs every pattern detector over the graph and returns the
// detected patterns (cost-descending) and the per-rank load summary.
func (g *Graph) Analyze() ([]Pattern, []RankLoad) {
	pats := []Pattern{
		g.detectLateSender(),
		g.detectLateReceiver(),
		g.detectWaitAtCollective(),
		g.detectMispredictStall(),
		g.detectAnySerialization(),
	}
	sort.SliceStable(pats, func(i, j int) bool {
		if pats[i].Cost != pats[j].Cost {
			return pats[i].Cost > pats[j].Cost
		}
		return pats[i].Name < pats[j].Name
	})
	return pats, g.loadSummary()
}

// finish trims and orders a pattern's instance list.
func finish(p Pattern) Pattern {
	sort.SliceStable(p.Worst, func(i, j int) bool {
		if p.Worst[i].Cost != p.Worst[j].Cost {
			return p.Worst[i].Cost > p.Worst[j].Cost
		}
		return p.Worst[i].At < p.Worst[j].At
	})
	if len(p.Worst) > maxWorst {
		p.Worst = p.Worst[:maxWorst]
	}
	return p
}

// detectLateSender finds receives that were bound (buffer ready,
// waiting) before the matching send was even posted: the receiver
// idled for sendPost - recvBind.
func (g *Graph) detectLateSender() Pattern {
	p := Pattern{Name: PatLateSender}
	for i := range g.Messages {
		m := &g.Messages[i]
		if m.SendPost < 0 || m.RecvBind < 0 {
			continue
		}
		gap := g.Events[m.SendPost].T - g.Events[m.RecvBind].T
		if gap <= 0 {
			continue
		}
		p.Count++
		p.Cost += sim.Duration(gap)
		p.Worst = append(p.Worst, Instance{
			Where: fmt.Sprintf("%d→%d seq=%d tag=%d", m.Src, m.Dst, m.Seq, m.Tag),
			At:    g.Events[m.RecvBind].T,
			Cost:  sim.Duration(gap),
		})
	}
	return finish(p)
}

// detectLateReceiver finds rendezvous sends whose receive was bound
// only after the send was posted: the sender's buffer sat pinned (and
// for sender-first, the RTS sat unanswered) for recvBind - sendPost.
// Eager sends are fire-and-forget and never block on the receiver, so
// they are excluded — the documented false-negative boundary.
func (g *Graph) detectLateReceiver() Pattern {
	p := Pattern{Name: PatLateReceiver}
	for i := range g.Messages {
		m := &g.Messages[i]
		if m.SendPost < 0 || m.RecvBind < 0 {
			continue
		}
		switch m.Proto {
		case ProtoSenderRzv, ProtoRecvRzv, ProtoSimulRzv:
		default:
			continue
		}
		gap := g.Events[m.RecvBind].T - g.Events[m.SendPost].T
		if gap <= 0 {
			continue
		}
		p.Count++
		p.Cost += sim.Duration(gap)
		p.Worst = append(p.Worst, Instance{
			Where: fmt.Sprintf("%d→%d seq=%d tag=%d", m.Src, m.Dst, m.Seq, m.Tag),
			At:    g.Events[m.SendPost].T,
			Cost:  sim.Duration(gap),
		})
	}
	return finish(p)
}

// detectWaitAtCollective charges each rank of a collective for the
// time between its own entry and the last rank's entry: everyone
// waits for the straggler.
func (g *Graph) detectWaitAtCollective() Pattern {
	p := Pattern{Name: PatWaitAtCollective}
	enters := make(map[uint64][]int)
	var seqs []uint64
	for i := range g.Events {
		if g.Events[i].Kind == EvCollEnter {
			if _, ok := enters[g.Events[i].Aux]; !ok {
				seqs = append(seqs, g.Events[i].Aux)
			}
			enters[g.Events[i].Aux] = append(enters[g.Events[i].Aux], i)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		es := enters[s]
		if len(es) < 2 {
			continue
		}
		var latest sim.Time
		var straggler int32
		for _, i := range es {
			if g.Events[i].T >= latest {
				latest = g.Events[i].T
				straggler = g.Events[i].Rank
			}
		}
		var cost sim.Duration
		for _, i := range es {
			cost += sim.Duration(latest - g.Events[i].T)
		}
		if cost <= 0 {
			continue
		}
		p.Count++
		p.Cost += cost
		p.Worst = append(p.Worst, Instance{
			Where: fmt.Sprintf("%s #%d straggler=rank%d", collOpName(g.Events[es[0]].Tag), s, straggler),
			At:    latest,
			Cost:  cost,
		})
	}
	return finish(p)
}

// detectMispredictStall charges each protocol misprediction for the
// wasted handshake: the time between the (ultimately dropped) RTR
// leaving the receiver and the misprediction being recognized.
func (g *Graph) detectMispredictStall() Pattern {
	p := Pattern{Name: PatMispredictStall}
	type key struct {
		src, dst int32
		seq      uint64
	}
	rtr := make(map[key]sim.Time)
	for i := range g.Events {
		e := &g.Events[i]
		if e.Kind == EvPktSend && e.Pkt == PktRTR {
			rtr[key{e.Rank, e.Peer, e.Seq}] = e.T
		}
	}
	for i := range g.Events {
		e := &g.Events[i]
		if e.Kind != EvMispredict {
			continue
		}
		// Sender-side drop: the RTR came from the peer. Receiver-side
		// (eager beat our RTR): the RTR was our own.
		t, ok := rtr[key{e.Peer, e.Rank, e.Seq}]
		if !ok {
			t, ok = rtr[key{e.Rank, e.Peer, e.Seq}]
		}
		cost := sim.Duration(0)
		if ok && e.T > t {
			cost = sim.Duration(e.T - t)
		}
		p.Count++
		p.Cost += cost
		p.Worst = append(p.Worst, Instance{
			Where: fmt.Sprintf("rank%d peer=%d seq=%d", e.Rank, e.Peer, e.Seq),
			At:    e.T,
			Cost:  cost,
		})
	}
	return finish(p)
}

// detectAnySerialization charges each receive that was deferred behind
// an active ANY_SOURCE wildcard for the time until it finally got a
// sequence id (bound or took the lock itself).
func (g *Graph) detectAnySerialization() Pattern {
	p := Pattern{Name: PatAnySerialization}
	type key struct {
		rank int32
		cid  uint64
	}
	deferred := make(map[key]sim.Time)
	for i := range g.Events {
		e := &g.Events[i]
		switch e.Kind {
		case EvDefer:
			k := key{e.Rank, e.CID}
			if _, ok := deferred[k]; !ok {
				deferred[k] = e.T
			}
		case EvRecvBind, EvAnyLock:
			k := key{e.Rank, e.CID}
			if t0, ok := deferred[k]; ok {
				delete(deferred, k)
				cost := sim.Duration(e.T - t0)
				if cost <= 0 {
					continue
				}
				p.Count++
				p.Cost += cost
				p.Worst = append(p.Worst, Instance{
					Where: fmt.Sprintf("rank%d req=%d", e.Rank, e.CID),
					At:    t0,
					Cost:  cost,
				})
			}
		default:
			// Only a defer opens a wildcard-serialization window and only
			// a bind or lock closes it; all other kinds are irrelevant to
			// this pattern.
		}
	}
	return finish(p)
}

// loadSummary tallies per-rank blocking time from Wait regions and
// collective straggling.
func (g *Graph) loadSummary() []RankLoad {
	loads := make(map[int32]*RankLoad)
	for _, rank := range g.Ranks {
		loads[rank] = &RankLoad{Rank: rank, Events: len(g.Timelines[rank])}
	}
	open := make(map[int32]sim.Time)
	for i := range g.Events {
		e := &g.Events[i]
		switch e.Kind {
		case EvWaitStart:
			if _, ok := open[e.Rank]; !ok {
				open[e.Rank] = e.T
			}
		case EvWaitEnd:
			if t0, ok := open[e.Rank]; ok {
				delete(open, e.Rank)
				if l := loads[e.Rank]; l != nil {
					l.WaitTime += sim.Duration(e.T - t0)
				}
			}
		default:
			// Wait regions are bracketed solely by WaitStart/WaitEnd;
			// collective straggling is tallied in its own pass below.
		}
	}
	// Collective straggling per rank, in collective order.
	enters := make(map[uint64][]int)
	var seqs []uint64
	for i := range g.Events {
		if g.Events[i].Kind == EvCollEnter {
			if _, ok := enters[g.Events[i].Aux]; !ok {
				seqs = append(seqs, g.Events[i].Aux)
			}
			enters[g.Events[i].Aux] = append(enters[g.Events[i].Aux], i)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		es := enters[s]
		var latest sim.Time
		for _, i := range es {
			if g.Events[i].T > latest {
				latest = g.Events[i].T
			}
		}
		for _, i := range es {
			if l := loads[g.Events[i].Rank]; l != nil {
				l.CollWait += sim.Duration(latest - g.Events[i].T)
			}
		}
	}
	out := make([]RankLoad, 0, len(loads))
	for _, rank := range g.Ranks {
		out = append(out, *loads[rank])
	}
	return out
}

// Collective op codes carried in EvCollEnter/EvCollExit Tag. New codes
// append at the end: recorded traces identify ops by value.
const (
	CollBarrier int32 = iota + 1
	CollAllreduce
	CollAllgather
	CollAlltoall
	CollBcast
)

func collOpName(op int32) string {
	switch op {
	case CollBarrier:
		return "barrier"
	case CollAllreduce:
		return "allreduce"
	case CollAllgather:
		return "allgather"
	case CollAlltoall:
		return "alltoall"
	case CollBcast:
		return "bcast"
	default:
		return "collective"
	}
}
