package sim

// Link models a serialized store-and-forward channel with fixed
// propagation latency and a (possibly size-dependent) bandwidth. It is
// the shared timing primitive for PCIe lanes, DMA engines and InfiniBand
// wires: concurrent transfers queue behind one another for the occupancy
// portion, while latency overlaps freely.
type Link struct {
	eng *Engine
	// Name identifies the link in traces.
	Name string
	// Latency is the propagation delay added after occupancy.
	Latency Duration
	// Bandwidth returns effective bytes/second for a transfer of n bytes.
	// It must be positive.
	Bandwidth func(n int) float64

	nextFree Time
	// Bytes and Transfers accumulate usage for reports.
	Bytes     int64
	Transfers int64
}

// NewLink returns a link with constant bandwidth bps bytes/second.
func NewLink(e *Engine, name string, latency Duration, bps float64) *Link {
	if bps <= 0 {
		panic("sim: non-positive link bandwidth")
	}
	return &Link{eng: e, Name: name, Latency: latency, Bandwidth: func(int) float64 { return bps }}
}

// NewCurveLink returns a link whose bandwidth depends on transfer size.
func NewCurveLink(e *Engine, name string, latency Duration, bw func(n int) float64) *Link {
	return &Link{eng: e, Name: name, Latency: latency, Bandwidth: bw}
}

// OccupancyFor returns the wire-occupancy time for n bytes at the
// link's effective bandwidth, with no queueing.
func (l *Link) OccupancyFor(n int) Duration {
	if n <= 0 {
		return 0
	}
	bps := l.Bandwidth(n)
	if bps <= 0 {
		panic("sim: link bandwidth curve returned non-positive rate")
	}
	return Duration(float64(n) / bps * float64(Second))
}

// Reserve books a transfer of n bytes starting no earlier than the
// current time and returns the virtual time at which the last byte
// arrives (queueing + occupancy + latency). It does not block the
// caller; combine with Engine.At to deliver the completion.
func (l *Link) Reserve(n int) Time {
	now := l.eng.now
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	occ := l.OccupancyFor(n)
	l.nextFree = start + occ
	l.Bytes += int64(n)
	l.Transfers++
	return start + occ + l.Latency
}

// ReserveRate books a transfer of n bytes like Reserve but at an
// explicit effective rate (bytes/second) instead of the link's curve.
// Interconnect models use this when the rate is constrained by the
// slower of several stages (e.g. an HCA DMA read feeding the wire).
func (l *Link) ReserveRate(n int, bps float64) Time {
	return l.ReserveRateAt(l.eng.now, n, bps)
}

// ReserveRateAt books a transfer like ReserveRate but starting no
// earlier than at, which may lie in the virtual future: switched-fabric
// models reserve a downstream hop for a packet that is still crossing
// the upstream one, so each hop queues behind its own traffic from the
// moment the packet could first reach it.
func (l *Link) ReserveRateAt(at Time, n int, bps float64) Time {
	if bps <= 0 {
		panic("sim: non-positive reserve rate")
	}
	start := l.eng.now
	if at > start {
		start = at
	}
	if l.nextFree > start {
		start = l.nextFree
	}
	var occ Duration
	if n > 0 {
		occ = Duration(float64(n) / bps * float64(Second))
	}
	l.nextFree = start + occ
	l.Bytes += int64(n)
	l.Transfers++
	return start + occ + l.Latency
}

// NextFree reports when the link's occupancy window ends.
func (l *Link) NextFree() Time { return l.nextFree }

// Transfer is the common process-context idiom: reserve the link for n
// bytes and sleep until the data has fully arrived.
func (l *Link) Transfer(p *Proc, n int) {
	done := l.Reserve(n)
	p.Sleep(done - p.Now())
}
