package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Microsecond {
		t.Fatalf("woke at %v, want 5µs", at)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("engine now %v, want 5µs", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(-3)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() string {
		e := NewEngine()
		var log []string
		for _, nm := range []string{"a", "b"} {
			name := nm
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(Microsecond)
					log = append(log, fmt.Sprintf("%s@%v", name, p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic schedule:\n%s\nvs\n%s", first, got)
		}
	}
	want := "a@1µs b@1µs a@2µs b@2µs a@3µs b@3µs"
	if first != want {
		t.Fatalf("schedule %q, want %q", first, want)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v, want ascending", order)
		}
	}
}

func TestEventFireWakesWaiters(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.At(9*Microsecond, func() { ev.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 9*Microsecond {
			t.Fatalf("waiter woke at %v, want 9µs", w)
		}
	}
	if !ev.Fired() || ev.FiredAt() != 9*Microsecond {
		t.Fatalf("event state fired=%v at=%v", ev.Fired(), ev.FiredAt())
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	ev.eng = e
	e.Spawn("a", func(p *Proc) {
		p.Sleep(Microsecond)
		ev.Fire()
		ev.Fire() // idempotent
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		ev.Wait(p)
		if p.Now() != 2*Microsecond {
			t.Errorf("wait on fired event blocked until %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	e.Spawn("stuck-proc", func(p *Proc) {
		ev.Wait(p) // never fired
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(de.Stuck) != 1 || de.Stuck[0] != "stuck-proc" {
		t.Fatalf("stuck list %v", de.Stuck)
	}
	if !strings.Contains(de.Error(), "stuck-proc") {
		t.Fatalf("error text %q lacks proc name", de.Error())
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("got %v, want panic error", err)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			n++
			if n == 5 {
				e.Stop()
			}
		}
	})
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("got %v, want ErrStopped", err)
	}
	if n != 5 {
		t.Fatalf("ran %d iterations, want 5", n)
	}
}

func TestSpawnFromInsideSimulation(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		e.Spawn("child", func(c *Proc) {
			childAt = c.Now()
		})
		p.Sleep(Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 3*Microsecond {
		t.Fatalf("child started at %v, want 3µs", childAt)
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1 b1 a2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestSignalEdgeTriggered(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	wakes := 0
	e.Spawn("waiter", func(p *Proc) {
		for i := 0; i < 3; i++ {
			s.Wait(p)
			wakes++
		}
	})
	e.Spawn("caster", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Microsecond)
			s.Broadcast()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 3 {
		t.Fatalf("wakes=%d, want 3", wakes)
	}
}

func TestBroadcastWithNoWaitersIsNoop(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	s.Broadcast()
	e.Spawn("a", func(p *Proc) { p.Sleep(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusyAccounting(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(e)
	var busy Duration
	e.Spawn("a", func(p *Proc) {
		p.Sleep(4 * Microsecond)
		ev.Wait(p) // blocked time must not count
		p.Sleep(Microsecond)
		busy = p.Busy()
	})
	e.At(100*Microsecond, func() { ev.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if busy != 5*Microsecond {
		t.Fatalf("busy=%v, want 5µs", busy)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5µs"},
		{2500000, "2.5ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String()=%q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any set of non-negative sleep offsets, processes wake in
// global timestamp order and the engine clock ends at the max.
func TestQuickSleepOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		if len(offsets) > 50 {
			offsets = offsets[:50]
		}
		e := NewEngine()
		var wakes []Time
		var max Time
		for i, off := range offsets {
			d := Duration(off)
			if d > max {
				max = d
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				wakes = append(wakes, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			if wakes[i] < wakes[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
