package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Microsecond)
			q.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestQueueTryGetAndPeek(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue succeeded")
	}
	q.Put("x")
	q.Put("y")
	if v, ok := q.Peek(); !ok || v != "x" {
		t.Fatalf("Peek=%q,%v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len=%d", q.Len())
	}
	if v, ok := q.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet=%q,%v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != "y" {
		t.Fatalf("TryGet=%q,%v", v, ok)
	}
}

func TestQueueMultipleGettersServedInOrder(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var servedTo []string
	spawn := func(name string) {
		e.Spawn(name, func(p *Proc) {
			q.Get(p)
			servedTo = append(servedTo, name)
		})
	}
	spawn("g1")
	spawn("g2")
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(Microsecond)
		q.Put(1)
		p.Sleep(Microsecond)
		q.Put(2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(servedTo) != 2 || servedTo[0] != "g1" || servedTo[1] != "g2" {
		t.Fatalf("served %v, want [g1 g2]", servedTo)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 2)
	inFlight, maxInFlight := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Acquire(p)
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			p.Sleep(Microsecond)
			inFlight--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInFlight != 2 {
		t.Fatalf("max in flight %d, want 2", maxInFlight)
	}
	if s.Free() != 2 {
		t.Fatalf("free %d, want 2", s.Free())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

// Property: a queue delivers exactly the produced sequence for any
// production schedule.
func TestQuickQueueSequence(t *testing.T) {
	f := func(vals []int32, gaps []uint8) bool {
		e := NewEngine()
		q := NewQueue[int32](e)
		var got []int32
		e.Spawn("consumer", func(p *Proc) {
			for range vals {
				got = append(got, q.Get(p))
			}
		})
		e.Spawn("producer", func(p *Proc) {
			for i, v := range vals {
				var g Duration
				if len(gaps) > 0 {
					g = Duration(gaps[i%len(gaps)])
				}
				p.Sleep(g)
				q.Put(v)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
