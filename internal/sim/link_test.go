package sim

import (
	"testing"
	"testing/quick"
)

func TestLinkOccupancy(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "test", 0, 1e9) // 1 GB/s: 1 byte per ns
	if got := l.OccupancyFor(1000); got != 1000 {
		t.Fatalf("occupancy %v, want 1000ns", got)
	}
	if got := l.OccupancyFor(0); got != 0 {
		t.Fatalf("zero-byte occupancy %v", got)
	}
	if got := l.OccupancyFor(-5); got != 0 {
		t.Fatalf("negative-byte occupancy %v", got)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "test", 100, 1e9)
	// Two back-to-back reservations at t=0: second queues behind first.
	d1 := l.Reserve(1000)
	d2 := l.Reserve(1000)
	if d1 != 1100 {
		t.Fatalf("first done at %v, want 1100", d1)
	}
	if d2 != 2100 {
		t.Fatalf("second done at %v, want 2100 (queued)", d2)
	}
	if l.Bytes != 2000 || l.Transfers != 2 {
		t.Fatalf("stats bytes=%d transfers=%d", l.Bytes, l.Transfers)
	}
}

func TestLinkLatencyOverlaps(t *testing.T) {
	// Latency is propagation: a second transfer may start while the
	// first's last byte is still in flight.
	e := NewEngine()
	l := NewLink(e, "test", 1000, 1e9)
	d1 := l.Reserve(10) // occupies [0,10], arrives 1010
	d2 := l.Reserve(10) // occupies [10,20], arrives 1020
	if d1 != 1010 || d2 != 1020 {
		t.Fatalf("done times %v,%v want 1010,1020", d1, d2)
	}
}

func TestLinkTransferBlocksProc(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "test", 50, 1e9)
	var done Time
	e.Spawn("xfer", func(p *Proc) {
		l.Transfer(p, 100)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 150 {
		t.Fatalf("transfer finished at %v, want 150", done)
	}
}

func TestCurveLink(t *testing.T) {
	e := NewEngine()
	l := NewCurveLink(e, "curve", 0, func(n int) float64 {
		if n < 100 {
			return 1e9
		}
		return 2e9
	})
	if got := l.OccupancyFor(50); got != 50 {
		t.Fatalf("small occupancy %v", got)
	}
	if got := l.OccupancyFor(200); got != 100 {
		t.Fatalf("large occupancy %v", got)
	}
}

func TestReserveRateOverridesCurve(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "test", 10, 4e9)
	// 1000 bytes at an explicit 1 GB/s: 1000ns occupancy + 10ns latency.
	if got := l.ReserveRate(1000, 1e9); got != 1010 {
		t.Fatalf("done at %v, want 1010", got)
	}
	// Queues behind the first reservation.
	if got := l.ReserveRate(1000, 1e9); got != 2010 {
		t.Fatalf("second done at %v, want 2010", got)
	}
	if got := l.ReserveRate(0, 1e9); got != 2010 {
		t.Fatalf("zero-byte reserve at %v, want 2010", got)
	}
}

func TestReserveRateRejectsNonPositive(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "test", 0, 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive rate accepted")
		}
	}()
	l.ReserveRate(10, 0)
}

// Property: total completion time of n sequential reservations equals
// sum of occupancies plus one latency per transfer measured at arrival,
// and completion times are monotone.
func TestQuickLinkMonotone(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := NewEngine()
		l := NewLink(e, "q", 77, 3.5e9)
		var last Time
		var sumOcc Duration
		for _, s := range sizes {
			n := int(s)
			d := l.Reserve(n)
			sumOcc += l.OccupancyFor(n)
			if d < last {
				return false
			}
			last = d
		}
		if len(sizes) == 0 {
			return true
		}
		// Final arrival = total occupancy + latency (all queued from t=0).
		return last == sumOcc+77
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
