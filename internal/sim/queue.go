package sim

// Queue is an unbounded FIFO of arbitrary items with blocking Get,
// usable only from inside a running simulation. Multiple getters are
// served in the order they blocked.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	getters []*Proc
}

// NewQueue returns an empty queue on engine e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the oldest blocked getter, if any. It may be
// called from process or callback context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wake()
	}
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Get blocks p until an item is available, then removes and returns it.
func (q *Queue[T]) Get(p *Proc) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		q.getters = append(q.getters, p)
		p.block()
	}
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Semaphore is a counting semaphore for modeling limited resources
// (DMA channels, QP slots). Acquire blocks in FIFO order.
type Semaphore struct {
	eng     *Engine
	free    int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore")
	}
	return &Semaphore{eng: e, free: n}
}

// Free returns the number of available permits.
func (s *Semaphore) Free() int { return s.free }

// TryAcquire takes a permit without blocking.
func (s *Semaphore) TryAcquire() bool {
	if s.free > 0 {
		s.free--
		return true
	}
	return false
}

// Acquire blocks p until a permit is available.
func (s *Semaphore) Acquire(p *Proc) {
	for !s.TryAcquire() {
		s.waiters = append(s.waiters, p)
		p.block()
	}
}

// Release returns a permit and wakes the oldest waiter.
func (s *Semaphore) Release() {
	s.free++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.wake()
	}
}
