// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine owns a virtual clock. Simulated activities are either
// processes (Proc) — goroutines that run cooperatively, exactly one at a
// time, and advance the clock by sleeping or blocking — or scheduled
// callbacks (Engine.At / Engine.After) used by hardware models to deliver
// completions. Because only one process runs at any instant and ties are
// broken by insertion order, every simulation is bit-for-bit reproducible
// and free of data races by construction.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package for readability.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a single entry in the engine's calendar queue.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc  // non-nil: wake this process
	fn   func() // non-nil: run this callback in engine context
}

// eventHeap is a hand-rolled binary min-heap of event values, ordered
// by (time, seq). Holding values rather than pointers keeps schedule()
// allocation-free on the per-event path, and avoiding container/heap
// skips the interface boxing its Push/Pop signatures force — this
// queue is the hottest data structure in the repository.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap invariant by sifting it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event, clearing the vacated slot
// so the queue does not pin dead procs or closures.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

func (h eventHeap) empty() bool { return len(h) == 0 }

// Engine is a discrete-event simulation. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   []*Proc
	current *Proc
	stopped bool
	err     error

	// Stats.
	eventsRun int64
	maxQueue  int

	// fp accumulates an FNV-1a digest of every dispatched event's
	// (time, seq, proc) tuple; see Fingerprint.
	fp uint64
}

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// Fingerprint sentinel process ids. Calendar events run by engine
// callbacks mix callbackPID; lookahead clock advances (Sleep fast path,
// no calendar round-trip) mix fastPathPID followed by the real process
// id, so workloads with different sleep schedules keep distinct
// fingerprints even when no heap event is dispatched.
const (
	callbackPID = uint64(1<<64 - 1)
	fastPathPID = uint64(1<<64 - 2)
)

// NewEngine returns an empty simulation at virtual time zero.
func NewEngine() *Engine {
	return &Engine{fp: fnv64Offset}
}

// fpMix folds one 64-bit word into the event-order digest.
func (e *Engine) fpMix(x uint64) {
	for i := 0; i < 8; i++ {
		e.fp ^= x & 0xff
		e.fp *= fnv64Prime
		x >>= 8
	}
}

// Fingerprint returns an order-sensitive FNV-1a digest of every event
// dispatched so far: each event contributes its (virtual time, sequence
// number, process id) tuple, with callbacks contributing a sentinel id.
// Two runs of the same workload on fresh engines must produce identical
// fingerprints; a divergence means nondeterminism leaked into the
// simulation (wall-clock time, map iteration order, real concurrency).
func (e *Engine) Fingerprint() uint64 { return e.fp }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports how many calendar events have been dispatched.
func (e *Engine) EventsRun() int64 { return e.eventsRun }

// schedule inserts an event into the calendar. It must not be called with
// a timestamp in the past. The entry is pushed by value: beyond the
// calendar slice's amortized growth, scheduling allocates nothing.
//
//simlint:hot
func (e *Engine) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(event{at: at, seq: e.seq, proc: p, fn: fn})
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
}

// At schedules fn to run in engine context at absolute virtual time t.
// Hardware models use this to deliver DMA and link completions.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, nil, fn)
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

// Spawn creates a new process named name running fn and schedules its
// first activation at the current virtual time. It may be called before
// Run or from inside a running simulation.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		id:     len(e.procs),
		resume: make(chan struct{}),
		parked: make(chan parkMsg),
	}
	e.procs = append(e.procs, p)
	go p.run(fn)
	e.schedule(e.now, p, nil)
	return p
}

// Stop aborts the simulation after the current event finishes. Run
// returns ErrStopped unless another error is pending.
func (e *Engine) Stop() { e.stopped = true }

// ErrStopped is returned by Run when the simulation was halted by Stop.
var ErrStopped = fmt.Errorf("sim: stopped")

// DeadlockError is returned by Run when the calendar drains while
// processes are still blocked on events that can no longer fire.
type DeadlockError struct {
	Now   Time
	Stuck []string // names of blocked processes
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %s",
		d.Now, len(d.Stuck), strings.Join(d.Stuck, ", "))
}

// Run executes the simulation until the calendar drains, a process
// panics, or Stop is called. It returns nil on a clean drain with every
// process finished, a *DeadlockError if blocked processes remain, or the
// panic value wrapped in an error.
func (e *Engine) Run() error {
	for !e.queue.empty() {
		if e.stopped {
			e.killAll()
			if e.err != nil {
				return e.err
			}
			return ErrStopped
		}
		ev := e.queue.pop()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.eventsRun++
		pid := callbackPID
		if ev.proc != nil {
			pid = uint64(ev.proc.id)
		}
		e.fpMix(uint64(ev.at))
		e.fpMix(ev.seq)
		e.fpMix(pid)
		switch {
		case ev.proc != nil:
			if ev.proc.dead {
				continue
			}
			if err := e.dispatch(ev.proc); err != nil {
				e.killAll()
				return err
			}
		case ev.fn != nil:
			ev.fn()
		}
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.finished && !p.dead && !p.daemon {
			stuck = append(stuck, p.name)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		e.killAll()
		return &DeadlockError{Now: e.now, Stuck: stuck}
	}
	return nil
}

// dispatch resumes p and waits for it to park again.
func (e *Engine) dispatch(p *Proc) error {
	e.current = p
	p.resume <- struct{}{}
	msg := <-p.parked
	e.current = nil
	switch msg.kind {
	case parkBlocked, parkScheduled:
		return nil
	case parkFinished:
		p.finished = true
		return nil
	case parkPanicked:
		p.finished = true
		return fmt.Errorf("sim: process %q panicked: %v", p.name, msg.panicVal)
	}
	panic("sim: unknown park kind")
}

// killAll marks all processes dead so their goroutines can be collected.
// Parked goroutines stay blocked on their resume channels; they hold no
// locks and are garbage once the engine is unreachable, but we unblock
// finished bookkeeping for deterministic tests.
func (e *Engine) killAll() {
	for _, p := range e.procs {
		if !p.finished {
			p.dead = true
		}
	}
}

// Current returns the process currently executing, or nil when the engine
// is running a callback or is idle.
func (e *Engine) Current() *Proc { return e.current }
