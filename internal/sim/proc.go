package sim

import "fmt"

type parkKind int

const (
	parkBlocked   parkKind = iota // waiting on an Event/Signal/Queue; no timer
	parkScheduled                 // a wake event is already in the calendar
	parkFinished                  // process function returned
	parkPanicked                  // process function panicked
)

type parkMsg struct {
	kind     parkKind
	panicVal any
}

// Proc is a simulated process: a goroutine that runs only when the engine
// dispatches it and that advances virtual time by sleeping or blocking.
// All Proc methods must be called from the process's own goroutine while
// it is running.
type Proc struct {
	eng      *Engine
	name     string
	id       int
	resume   chan struct{}
	parked   chan parkMsg
	finished bool
	dead     bool
	daemon   bool

	// busy accumulates virtual time this process spent in Sleep/Compute
	// (as opposed to blocked waiting), for utilization reporting.
	busy Duration
}

// MarkDaemon excludes this process from deadlock detection: a daemon
// blocked forever (e.g. a delegation server waiting for commands) is
// normal program shape, not a hang.
func (p *Proc) MarkDaemon() { p.daemon = true }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's engine-unique id.
func (p *Proc) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Busy returns the virtual time this process spent actively sleeping or
// computing (not blocked).
func (p *Proc) Busy() Duration { return p.busy }

// run is the goroutine body backing the process.
func (p *Proc) run(fn func(p *Proc)) {
	<-p.resume // wait for first dispatch
	defer func() {
		if r := recover(); r != nil {
			if r == errProcKilled {
				// Engine tore us down; exit silently.
				return
			}
			p.parked <- parkMsg{kind: parkPanicked, panicVal: r}
			return
		}
		p.parked <- parkMsg{kind: parkFinished}
	}()
	fn(p)
}

// errProcKilled is thrown to unwind a process the engine abandoned.
var errProcKilled = fmt.Errorf("sim: proc killed")

// park hands control back to the engine and waits to be resumed.
func (p *Proc) park(kind parkKind) {
	p.parked <- parkMsg{kind: kind}
	<-p.resume
	if p.dead {
		panic(errProcKilled)
	}
}

// Sleep advances this process's virtual clock by d. Other events run in
// the meantime. Negative durations are treated as zero.
//
// Lookahead fast path: when no calendar event falls inside the sleep
// window, nothing can observe the intermediate instants, so the clock
// advances inline without a schedule+park round-trip. The advance is
// folded into the fingerprint (fastPathPID sentinel) so different sleep
// schedules stay distinguishable. This is what keeps thousand-rank
// runs — millions of staging-copy sleeps — wall-clock sane.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.busy += d
	e := p.eng
	if !e.stopped && (e.queue.empty() || e.queue[0].at > e.now+d) {
		e.now += d
		e.fpMix(uint64(e.now))
		e.fpMix(fastPathPID)
		e.fpMix(uint64(p.id))
		return
	}
	e.schedule(e.now+d, p, nil)
	p.park(parkScheduled)
}

// Yield reschedules the process at the current time, letting every other
// event already queued for this instant run first. When nothing is
// queued for this instant the round-trip is a no-op and is skipped.
func (p *Proc) Yield() {
	e := p.eng
	if !e.stopped && (e.queue.empty() || e.queue[0].at > e.now) {
		return
	}
	e.schedule(e.now, p, nil)
	p.park(parkScheduled)
}

// block parks the process with no pending wake; some other party must
// call wake.
func (p *Proc) block() {
	p.park(parkBlocked)
}

// wake schedules the process to resume at the current virtual time.
func (p *Proc) wake() {
	p.eng.schedule(p.eng.now, p, nil)
}

// Event is a one-shot level-triggered completion: once fired it stays
// fired, and waiters return immediately. Fire is idempotent.
type Event struct {
	eng     *Engine
	fired   bool
	firedAt Time
	waiters []*Proc
}

// NewEvent returns an unfired event on engine e.
func NewEvent(e *Engine) *Event { return &Event{eng: e} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time of the first Fire; zero if unfired.
func (ev *Event) FiredAt() Time { return ev.firedAt }

// Fire marks the event complete and wakes all waiters at the current
// virtual time. Subsequent calls are no-ops.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.firedAt = ev.eng.now
	for _, w := range ev.waiters {
		w.wake()
	}
	ev.waiters = nil
}

// Wait blocks p until the event fires. Returns immediately if already
// fired.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block()
}

// Signal is an edge-triggered broadcast: Wait blocks until the next
// Broadcast after the wait began. It is the engine's condition variable;
// because the engine is cooperative there is no lost-wakeup race as long
// as the caller re-checks its predicate after waking.
type Signal struct {
	eng     *Engine
	waiters []*Proc
}

// NewSignal returns a signal on engine e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Broadcast wakes every currently blocked waiter.
func (s *Signal) Broadcast() {
	for _, w := range s.waiters {
		w.wake()
	}
	s.waiters = s.waiters[:0]
}

// Wait blocks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.block()
}
