package sim

import "testing"

// fingerprintWorkload runs a representative mixed workload — producer /
// consumer processes over a Queue, timer callbacks, an Event fan-in and
// a daemon — and returns the engine's event-order digest.
func fingerprintWorkload(t *testing.T) (uint64, int64, Time) {
	t.Helper()
	e := NewEngine()
	q := NewQueue[int](e)
	done := NewEvent(e)

	// A daemon server that echoes queue items until told to stop.
	var served int
	e.Spawn("server", func(p *Proc) {
		p.MarkDaemon()
		for {
			v := q.Get(p)
			if v < 0 {
				return
			}
			served += v
			p.Sleep(Duration(v) * Nanosecond)
		}
	})

	// Three producers racing at the same virtual instants; ties are
	// broken by insertion order, so the interleaving is fixed.
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("producer", func(p *Proc) {
			for j := 0; j < 5; j++ {
				q.Put(i*10 + j)
				p.Sleep(Microsecond)
			}
			if i == 2 {
				done.Fire()
			}
		})
	}

	// Timer callbacks layered over the process activity.
	for d := Duration(1); d <= 5; d++ {
		e.After(d*Microsecond/2, func() { q.Put(1) })
	}

	e.Spawn("closer", func(p *Proc) {
		done.Wait(p)
		p.Sleep(10 * Microsecond)
		q.Put(-1)
	})

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Fingerprint(), e.EventsRun(), e.Now()
}

// TestDeterminismDoubleRun executes the same workload twice on fresh
// engines and requires bit-identical event-order digests: the check
// that backs the package's "reproducible by construction" claim.
func TestDeterminismDoubleRun(t *testing.T) {
	fp1, n1, t1 := fingerprintWorkload(t)
	fp2, n2, t2 := fingerprintWorkload(t)
	if fp1 != fp2 {
		t.Errorf("fingerprints differ across runs: %#x vs %#x", fp1, fp2)
	}
	if n1 != n2 {
		t.Errorf("events run differ across runs: %d vs %d", n1, n2)
	}
	if t1 != t2 {
		t.Errorf("final virtual times differ across runs: %v vs %v", t1, t2)
	}
	if fp1 == fnv64Offset {
		t.Error("fingerprint never updated: digest still at FNV offset basis")
	}
}

// TestFingerprintDistinguishesWorkloads makes sure the digest is not a
// constant: a different schedule must hash differently.
func TestFingerprintDistinguishesWorkloads(t *testing.T) {
	e1 := NewEngine()
	e1.Spawn("a", func(p *Proc) { p.Sleep(Microsecond) })
	if err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine()
	e2.Spawn("a", func(p *Proc) { p.Sleep(2 * Microsecond); p.Sleep(Microsecond) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if e1.Fingerprint() == e2.Fingerprint() {
		t.Errorf("different schedules produced identical fingerprint %#x", e1.Fingerprint())
	}
}
