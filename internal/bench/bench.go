// Package bench regenerates every measurement in the paper's
// evaluation section (§V): Figures 5, 7, 8, 9, 10, 11 and 12 and
// Tables I–III, as data series computed on the simulated platform. Each
// figure function builds fresh clusters, runs the measurement, and
// returns a renderable Figure; cmd/dcfabench prints them and
// bench_test.go wraps them as Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Point is one measurement: X is the swept parameter (message bytes,
// process count, thread count), Y the measured value.
type Point struct {
	X int
	Y float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// At returns the Y value at x.
func (s Series) At(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a renderable reproduction of one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// ByLabel returns the series with the given label.
func (f *Figure) ByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// Render prints the figure as an aligned table, one row per X value and
// one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	// Collect the X axis (union, in first-seen order).
	var xs []int
	seen := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{formatX(x)}
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%.4g", y))
			} else {
				row = append(row, "-")
			}
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		rows = append(rows, row)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(cols)
	for _, row := range rows {
		printRow(row)
	}
	fmt.Fprintf(w, "  (%s)\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// formatX pretty-prints byte sizes and small counts.
func formatX(x int) string {
	switch {
	case x >= 1<<20 && x%(1<<20) == 0:
		return fmt.Sprintf("%dM", x>>20)
	case x >= 1<<10 && x%(1<<10) == 0:
		return fmt.Sprintf("%dK", x>>10)
	default:
		return fmt.Sprintf("%d", x)
	}
}

// gbps converts a byte count moved in d virtual time to GB/s.
func gbps(n int, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / (float64(d) / float64(sim.Second)) / 1e9
}

// usec converts virtual time to microseconds.
func usec(d sim.Duration) float64 { return d.Micros() }
