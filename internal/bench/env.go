package bench

import (
	"repro/internal/faults"
	"repro/internal/metrics"
)

// Env carries one benchmark run's configuration and observability
// sinks. Each Env is independent: two sweeps with different metrics
// registries or fault plans can run in one process — even concurrently,
// in separate engines — without observing each other. Keeping this
// state off package level is what the simlint globalmut rule certifies;
// do not add package-level knobs back.
type Env struct {
	// Metrics, when non-nil, is installed on every cluster and fabric
	// the sweeps build, so a whole figure run reports into one registry.
	Metrics *metrics.Registry
	// Faults, when non-nil, installs a deterministic fault injector on
	// every cluster the sweeps build. Each world gets a fresh injector
	// from the same plan, so runs stay reproducible regardless of sweep
	// order.
	Faults *faults.Plan
	// MsgSizes is the message-size sweep used by the communication
	// figures.
	MsgSizes []int
	// StencilIters is the per-configuration iteration count for the
	// stencil figures; the paper uses 100 but the averages stabilize
	// much earlier.
	StencilIters int
}

// NewEnv returns the default benchmark configuration.
func NewEnv() *Env {
	return &Env{
		MsgSizes:     []int{4, 64, 1024, 4096, 8192, 16384, 65536, 262144, 1 << 20, 4 << 20},
		StencilIters: 20,
	}
}
