package bench

// Acceptance tests for the telemetry layer: the protocol showcase's
// spans must reconstruct all four §IV-B3 protocols, the Chrome trace
// export must be valid and carry every rank's track, and the whole
// pipeline must be bit-identical across runs.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// runShowcase runs the showcase on a fresh registry.
func runShowcase(t *testing.T) (*metrics.Registry, sim.Time) {
	t.Helper()
	reg := metrics.New()
	final, err := ProtocolShowcase(perfmodel.Default(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, final
}

// TestShowcaseSpansReconstructProtocols checks that both ranks' message
// spans carry all four protocol kinds, and that the wire-level child
// spans nest under a send or recv lifecycle span.
func TestShowcaseSpansReconstructProtocols(t *testing.T) {
	reg, _ := runShowcase(t)
	if n := reg.OpenSpans(); n != 0 {
		t.Fatalf("%d spans left open", n)
	}
	byID := map[uint64]*metrics.Span{}
	kinds := map[string]map[string]int{} // actor → kind → count
	for _, s := range reg.Spans() {
		byID[s.ID] = s
		if s.Kind != "" {
			if kinds[s.Actor] == nil {
				kinds[s.Actor] = map[string]int{}
			}
			kinds[s.Actor][s.Kind]++
		}
	}
	for _, actor := range []string{"rank0", "rank1"} {
		for _, k := range []string{"eager", "sender-rzv", "recv-rzv", "simultaneous-rzv"} {
			if kinds[actor][k] == 0 {
				t.Errorf("%s: no span classified %s; got %v", actor, k, kinds[actor])
			}
		}
	}
	// Child spans nest under a message-lifecycle span on the same track.
	nested := 0
	for _, s := range reg.Spans() {
		switch s.Name {
		case "rdma-read", "rdma-write", "offload-sync":
			p := byID[s.Parent]
			if p == nil {
				t.Errorf("span %s#%d has no parent", s.Name, s.ID)
				continue
			}
			if p.Name != "send" && p.Name != "recv" {
				t.Errorf("span %s#%d nests under %q, want send or recv", s.Name, s.ID, p.Name)
			}
			if p.Actor != s.Actor {
				t.Errorf("span %s#%d on track %q but parent on %q", s.Name, s.ID, s.Actor, p.Actor)
			}
			nested++
		}
	}
	if nested == 0 {
		t.Error("no wire-level child spans recorded")
	}
	// The offload-staged phase ran.
	if got := reg.Counter("rank0", "offload.staged-bytes").Value(); got < 1<<20 {
		t.Errorf("offload.staged-bytes = %d, want >= 1 MiB", got)
	}
}

// traceEvent mirrors the subset of the Chrome trace-event schema the
// test needs.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Cat  string            `json:"cat"`
	Pid  int               `json:"pid"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

// TestShowcaseChromeTraceExport validates the Perfetto export: parseable
// JSON, a named track per actor, at least one complete span per rank,
// and all four protocol categories present.
func TestShowcaseChromeTraceExport(t *testing.T) {
	reg, _ := runShowcase(t)
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	trackPid := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			trackPid[e.Args["name"]] = e.Pid
		}
	}
	spansPerPid := map[int]int{}
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spansPerPid[e.Pid]++
		if e.Cat != "" {
			cats[e.Cat] = true
		}
	}
	for _, actor := range []string{"rank0", "rank1"} {
		pid, ok := trackPid[actor]
		if !ok {
			t.Fatalf("no track named %s in trace (tracks: %v)", actor, trackPid)
		}
		if spansPerPid[pid] == 0 {
			t.Errorf("track %s has no complete spans", actor)
		}
	}
	for _, k := range []string{"eager", "sender-rzv", "recv-rzv", "simultaneous-rzv"} {
		if !cats[k] {
			t.Errorf("trace has no %s category; got %v", k, cats)
		}
	}
}

// TestShowcaseDeterministic requires two fresh runs to produce the same
// final virtual time and byte-identical summary, JSON, and trace
// exports.
func TestShowcaseDeterministic(t *testing.T) {
	reg1, t1 := runShowcase(t)
	reg2, t2 := runShowcase(t)
	if t1 != t2 {
		t.Fatalf("final virtual times differ: %v vs %v", t1, t2)
	}
	var sum1, sum2, tr1, tr2, js1, js2 bytes.Buffer
	reg1.WriteSummary(&sum1)
	reg2.WriteSummary(&sum2)
	if err := reg1.WriteChromeTrace(&tr1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteChromeTrace(&tr2); err != nil {
		t.Fatal(err)
	}
	if err := reg1.WriteJSON(&js1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WriteJSON(&js2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sum1.Bytes(), sum2.Bytes()) {
		t.Error("summaries differ across runs")
	}
	if !bytes.Equal(tr1.Bytes(), tr2.Bytes()) {
		t.Error("Chrome traces differ across runs")
	}
	if !bytes.Equal(js1.Bytes(), js2.Bytes()) {
		t.Error("JSON snapshots differ across runs")
	}
}
