package bench

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/stencil"
)

// defaultIters balances sweep stability and simulation cost.
const defaultIters = 10

// Figure5 reproduces "InfiniBand communication with different data
// transfer directions": raw RDMA-write bandwidth for the four
// host/Phi source/destination combinations.
func (e *Env) Figure5(plat *perfmodel.Platform) *Figure {
	dirs := []struct {
		label    string
		src, dst machine.DomainKind
	}{
		{"host->host", machine.HostMem, machine.HostMem},
		{"host->phi", machine.HostMem, machine.MicMem},
		{"phi->host", machine.MicMem, machine.HostMem},
		{"phi->phi", machine.MicMem, machine.MicMem},
	}
	f := &Figure{
		ID:     "Figure 5",
		Title:  "Raw IB RDMA-write bandwidth by direction",
		XLabel: "bytes",
		YLabel: "GB/s",
	}
	for _, d := range dirs {
		s := Series{Label: d.label}
		for _, n := range e.MsgSizes {
			t := e.RawOneWay(plat, d.src, d.dst, n, defaultIters)
			s.Points = append(s.Points, Point{X: n, Y: gbps(n, t)})
		}
		f.Series = append(f.Series, s)
	}
	hh, _ := f.Series[0].At(4 << 20)
	ph, _ := f.Series[2].At(4 << 20)
	f.Notes = append(f.Notes, fmt.Sprintf(
		"Phi-sourced transfers %.1f× slower than host-sourced at 4 MiB (paper: >4×)", hh/ph))
	return f
}

// Figure7 reproduces "Evaluation of DCFA-MPI with offloading send
// buffer design using non-blocking inter-node MPI communication": the
// exchange round-trip time for DCFA-MPI with and without the offload
// design, against the host MPI.
func (e *Env) Figure7(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Figure 7",
		Title:  "Non-blocking exchange RTT (MPI_Isend/MPI_Irecv)",
		XLabel: "bytes",
		YLabel: "µs",
	}
	for _, m := range []Mode{ModeDCFABase, ModeDCFA, ModeHost} {
		ts := e.NonblockingExchangeTimes(plat, m, e.MsgSizes, defaultIters)
		s := Series{Label: m.String()}
		for i, n := range e.MsgSizes {
			s.Points = append(s.Points, Point{X: n, Y: usec(ts[i])})
		}
		f.Series = append(f.Series, s)
	}
	off, _ := f.ByLabel(ModeDCFA.String())
	host, _ := f.ByLabel(ModeHost.String())
	o, _ := off.At(1 << 20)
	h, _ := host.At(1 << 20)
	f.Notes = append(f.Notes, fmt.Sprintf(
		"offloaded DCFA-MPI %.1f× the host RTT at 1 MiB (paper: \"only 2 times slower\")", o/h))
	return f
}

// Figure8 is Figure 7's sweep expressed as bandwidth: the offloading
// design lifts inter-node bandwidth to ~2.8 GB/s.
func (e *Env) Figure8(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Figure 8",
		Title:  "Inter-node MPI bandwidth with the offloading send buffer",
		XLabel: "bytes",
		YLabel: "GB/s per direction",
	}
	for _, m := range []Mode{ModeDCFABase, ModeDCFA, ModeHost} {
		ts := e.NonblockingExchangeTimes(plat, m, e.MsgSizes, defaultIters)
		s := Series{Label: m.String()}
		for i, n := range e.MsgSizes {
			s.Points = append(s.Points, Point{X: n, Y: gbps(n, ts[i])})
		}
		f.Series = append(f.Series, s)
	}
	off, _ := f.ByLabel(ModeDCFA.String())
	peak := 0.0
	for _, p := range off.Points {
		if p.Y > peak {
			peak = p.Y
		}
	}
	f.Notes = append(f.Notes, fmt.Sprintf("offloaded peak %.2f GB/s (paper: 2.8 GB/s)", peak))
	return f
}

// Figure9 reproduces the blocking ping-pong bandwidth comparison of
// DCFA-MPI against 'Intel MPI on Xeon Phi co-processors'.
func (e *Env) Figure9(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Figure 9",
		Title:  "Blocking ping-pong bandwidth: DCFA-MPI vs Intel MPI on Phi",
		XLabel: "bytes",
		YLabel: "GB/s (size / (RTT/2))",
	}
	var rtt4 [2]sim.Duration
	for i, m := range []Mode{ModeDCFA, ModePhiMPI} {
		ts := e.BlockingPingPongRTTs(plat, m, e.MsgSizes, defaultIters)
		s := Series{Label: m.String()}
		for j, n := range e.MsgSizes {
			s.Points = append(s.Points, Point{X: n, Y: gbps(n, ts[j]/2)})
			if n == 4 {
				rtt4[i] = ts[j]
			}
		}
		f.Series = append(f.Series, s)
	}
	d, _ := f.Series[0].At(4 << 20)
	x, _ := f.Series[1].At(4 << 20)
	f.Notes = append(f.Notes,
		fmt.Sprintf("4-byte RTT: DCFA-MPI %.1f µs vs Intel-on-Phi %.1f µs (paper: 15 vs 28)",
			usec(rtt4[0]), usec(rtt4[1])),
		fmt.Sprintf("4 MiB bandwidth ratio %.2f× (paper: 3×)", d/x))
	return f
}

// Figure10 reproduces the communication-only application comparison of
// DCFA-MPI against 'Intel MPI on Xeon + offload' (Table II workload).
func (e *Env) Figure10(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Figure 10",
		Title:  "Communication-only application per-iteration time",
		XLabel: "bytes",
		YLabel: "µs per iteration",
	}
	dc := e.CommOnlyDCFA(plat, e.MsgSizes, defaultIters)
	ho := e.CommOnlyHostOffload(plat, e.MsgSizes, defaultIters)
	sd := Series{Label: "DCFA-MPI"}
	sh := Series{Label: "IntelMPI-Xeon+offload"}
	sr := Series{Label: "speedup"}
	for i, n := range e.MsgSizes {
		sd.Points = append(sd.Points, Point{X: n, Y: usec(dc[i])})
		sh.Points = append(sh.Points, Point{X: n, Y: usec(ho[i])})
		sr.Points = append(sr.Points, Point{X: n, Y: float64(ho[i]) / float64(dc[i])})
	}
	f.Series = []Series{sd, sh, sr}
	small, _ := sr.At(64)
	large, _ := sr.At(1 << 20)
	f.Notes = append(f.Notes,
		fmt.Sprintf("speedup %.1f× at 64 B (paper: 12× below 128 B)", small),
		fmt.Sprintf("speedup %.1f× at 1 MiB (paper: 2× above 512 KiB)", large))
	return f
}

// stencilTime runs one stencil configuration in benchmark mode and
// returns the per-iteration time.
func (e *Env) stencilTime(plat *perfmodel.Platform, mode string, procs, threads int) sim.Duration {
	pr := stencil.Params{N: 1280, Iters: e.StencilIters, Procs: procs, Threads: threads, SkipCompute: true}
	var res stencil.Result
	var err error
	switch mode {
	case "dcfa":
		res, err = stencil.RunDCFA(plat, pr, true)
	case "phi":
		res, err = stencil.RunPhiMPI(plat, pr)
	case "host":
		res, err = stencil.RunHostOffload(plat, pr)
	case "serial":
		res, err = stencil.RunSerial(plat, stencil.Params{N: 1280, Iters: e.StencilIters, Procs: 1, Threads: 1, SkipCompute: true})
	default:
		panic("bench: unknown stencil mode " + mode)
	}
	if err != nil {
		panic(err)
	}
	return res.PerIter
}

// stencilModeLabels maps internal mode keys to figure labels.
var stencilModes = []struct{ key, label string }{
	{"dcfa", "DCFA-MPI"},
	{"phi", "IntelMPI-on-Phi"},
	{"host", "IntelMPI-Xeon+offload"},
}

// Figure11 reproduces "Processing time of five point stencil
// computation with different number of MPI processes" for the three
// libraries, at 1 and 56 OpenMP threads.
func (e *Env) Figure11(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Figure 11",
		Title:  "Five-point stencil per-iteration processing time vs MPI processes",
		XLabel: "procs",
		YLabel: "ms per iteration",
	}
	for _, threads := range []int{1, 56} {
		for _, m := range stencilModes {
			s := Series{Label: fmt.Sprintf("%s T=%d", m.label, threads)}
			for _, procs := range []int{1, 2, 4, 8} {
				t := e.stencilTime(plat, m.key, procs, threads)
				s.Points = append(s.Points, Point{X: procs, Y: float64(t) / float64(sim.Millisecond)})
			}
			f.Series = append(f.Series, s)
		}
	}
	return f
}

// Figure12 reproduces "Speed-up of five point stencil computation with
// different number of OpenMP threads ... comparing to the serial
// program" at 8 MPI processes.
func (e *Env) Figure12(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Figure 12",
		Title:  "Five-point stencil speed-up over the serial program (8 MPI procs)",
		XLabel: "threads",
		YLabel: "speed-up ×",
	}
	serial := e.stencilTime(plat, "serial", 1, 1)
	threads := []int{1, 2, 4, 8, 16, 28, 56}
	for _, m := range stencilModes {
		s := Series{Label: m.label}
		for _, t := range threads {
			pt := e.stencilTime(plat, m.key, 8, t)
			s.Points = append(s.Points, Point{X: t, Y: float64(serial) / float64(pt)})
		}
		f.Series = append(f.Series, s)
	}
	var at56 [3]float64
	for i, s := range f.Series {
		at56[i], _ = s.At(56)
	}
	f.Notes = append(f.Notes, fmt.Sprintf(
		"at 8×56: DCFA-MPI %.0f×, Intel-on-Phi %.0f×, Xeon+offload %.0f× (paper: 117/113/74)",
		at56[0], at56[1], at56[2]))
	return f
}

// AllFigures regenerates every evaluation figure.
func (e *Env) AllFigures(plat *perfmodel.Platform) []*Figure {
	return []*Figure{
		e.Figure5(plat), e.Figure7(plat), e.Figure8(plat),
		e.Figure9(plat), e.Figure10(plat), e.Figure11(plat), e.Figure12(plat),
	}
}
