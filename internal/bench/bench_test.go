package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func plat() *perfmodel.Platform { return perfmodel.Default() }

func TestRawOneWayDirections(t *testing.T) {
	const n = 1 << 20
	env := NewEnv()
	hh := env.RawOneWay(plat(), machine.HostMem, machine.HostMem, n, 3)
	hp := env.RawOneWay(plat(), machine.HostMem, machine.MicMem, n, 3)
	ph := env.RawOneWay(plat(), machine.MicMem, machine.HostMem, n, 3)
	pp := env.RawOneWay(plat(), machine.MicMem, machine.MicMem, n, 3)
	if r := float64(hp) / float64(hh); r > 1.05 {
		t.Fatalf("host->phi %.2f× host->host, want ≈1", r)
	}
	if r := float64(ph) / float64(hh); r < 4 {
		t.Fatalf("phi->host only %.2f× slower, want >4×", r)
	}
	if r := float64(pp) / float64(ph); r < 0.9 || r > 1.1 {
		t.Fatalf("phi->phi vs phi->host ratio %.2f, want ≈1", r)
	}
}

func TestFigure5Shape(t *testing.T) {
	f := NewEnv().Figure5(plat())
	if len(f.Series) != 4 {
		t.Fatalf("series %d, want 4", len(f.Series))
	}
	hh, _ := f.Series[0].At(4 << 20)
	if hh < 5.0 || hh > 6.0 {
		t.Fatalf("host->host large bandwidth %.2f GB/s, want ≈5.8", hh)
	}
	pp, _ := f.Series[3].At(4 << 20)
	if pp > 1.4 {
		t.Fatalf("phi->phi large bandwidth %.2f GB/s, want ≈1.2", pp)
	}
}

func TestFigure7And8OffloadCurves(t *testing.T) {
	f7 := NewEnv().Figure7(plat())
	base, _ := f7.ByLabel(ModeDCFABase.String())
	off, _ := f7.ByLabel(ModeDCFA.String())
	host, _ := f7.ByLabel(ModeHost.String())
	// Below the 8 KiB threshold the two DCFA variants are identical.
	b4, _ := base.At(4096)
	o4, _ := off.At(4096)
	if b4 != o4 {
		t.Fatalf("offload changed sub-threshold RTT: %v vs %v", b4, o4)
	}
	// Above it, offload wins and approaches the host.
	b1m, _ := base.At(1 << 20)
	o1m, _ := off.At(1 << 20)
	h1m, _ := host.At(1 << 20)
	if o1m >= b1m {
		t.Fatalf("offload RTT %v not below base %v at 1 MiB", o1m, b1m)
	}
	ratio := o1m / h1m
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("offloaded/host RTT ratio %.2f at 1 MiB, paper says ≈2", ratio)
	}

	f8 := NewEnv().Figure8(plat())
	off8, _ := f8.ByLabel(ModeDCFA.String())
	peak := 0.0
	for _, p := range off8.Points {
		if p.Y > peak {
			peak = p.Y
		}
	}
	if peak < 2.5 || peak > 3.1 {
		t.Fatalf("offloaded peak bandwidth %.2f GB/s, paper: 2.8", peak)
	}
	base8, _ := f8.ByLabel(ModeDCFABase.String())
	basePeak := 0.0
	for _, p := range base8.Points {
		if p.Y > basePeak {
			basePeak = p.Y
		}
	}
	if basePeak > 1.4 {
		t.Fatalf("non-offloaded peak %.2f GB/s, should stay near the DMA-read cap", basePeak)
	}
}

func TestFigure9Targets(t *testing.T) {
	f := NewEnv().Figure9(plat())
	d, _ := f.ByLabel(ModeDCFA.String())
	x, _ := f.ByLabel(ModePhiMPI.String())
	dl, _ := d.At(4 << 20)
	xl, _ := x.At(4 << 20)
	if r := dl / xl; r < 2.5 || r > 3.6 {
		t.Fatalf("large-message ratio %.2f, paper: 3×", r)
	}
	// DCFA-MPI must win at every size.
	for _, p := range d.Points {
		xv, _ := x.At(p.X)
		if p.Y <= xv {
			t.Fatalf("Intel-on-Phi wins at %d bytes (%.3f vs %.3f GB/s)", p.X, xv, p.Y)
		}
	}
}

func TestFigure10Targets(t *testing.T) {
	f := NewEnv().Figure10(plat())
	r, _ := f.ByLabel("speedup")
	small, _ := r.At(64)
	if small < 8 || small > 16 {
		t.Fatalf("small-message speedup %.1f×, paper: 12×", small)
	}
	large, _ := r.At(1 << 20)
	if large < 1.6 || large > 2.6 {
		t.Fatalf("large-message speedup %.1f×, paper: 2×", large)
	}
	// Monotone decreasing overall trend: offload overhead amortizes.
	first := r.Points[0].Y
	last := r.Points[len(r.Points)-1].Y
	if first <= last {
		t.Fatalf("speedup should shrink with size: %.1f -> %.1f", first, last)
	}
}

func TestFigure11Shape(t *testing.T) {
	env := NewEnv()
	env.StencilIters = 5
	f := env.Figure11(plat())
	if len(f.Series) != 6 {
		t.Fatalf("series %d, want 6 (3 modes × 2 thread counts)", len(f.Series))
	}
	for _, s := range f.Series {
		// Time decreases with procs for every mode/thread combo.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y >= s.Points[i-1].Y {
				t.Fatalf("%s: time not decreasing at procs=%d", s.Label, s.Points[i].X)
			}
		}
	}
	// Host+offload is the slowest everywhere.
	for _, threads := range []string{"T=1", "T=56"} {
		var dcfa, host Series
		for _, s := range f.Series {
			if strings.Contains(s.Label, threads) {
				if strings.HasPrefix(s.Label, "DCFA") {
					dcfa = s
				}
				if strings.Contains(s.Label, "offload") {
					host = s
				}
			}
		}
		for _, p := range dcfa.Points {
			h, _ := host.At(p.X)
			if h <= p.Y {
				t.Fatalf("host+offload (%s) not slower at procs=%d", threads, p.X)
			}
		}
	}
}

func TestFigure12Targets(t *testing.T) {
	env := NewEnv()
	env.StencilIters = 5
	f := env.Figure12(plat())
	dcfa, _ := f.ByLabel("DCFA-MPI")
	phi, _ := f.ByLabel("IntelMPI-on-Phi")
	host, _ := f.ByLabel("IntelMPI-Xeon+offload")
	d, _ := dcfa.At(56)
	x, _ := phi.At(56)
	h, _ := host.At(56)
	if d < 117*0.85 || d > 117*1.15 {
		t.Fatalf("DCFA speedup %.0f×, paper 117×", d)
	}
	if x < 113*0.85 || x > 113*1.15 {
		t.Fatalf("Intel-on-Phi speedup %.0f×, paper 113×", x)
	}
	if h < 74*0.85 || h > 74*1.15 {
		t.Fatalf("host+offload speedup %.0f×, paper 74×", h)
	}
	if !(d > x && x > h) {
		t.Fatalf("ordering violated: %.0f/%.0f/%.0f", d, x, h)
	}
	// Speedup grows with threads in every mode.
	for _, s := range f.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y <= s.Points[i-1].Y {
				t.Fatalf("%s: speedup not increasing at T=%d", s.Label, s.Points[i].X)
			}
		}
	}
}

func TestRenderAndTables(t *testing.T) {
	f := &Figure{
		ID: "Figure X", Title: "test", XLabel: "bytes", YLabel: "GB/s",
		Series: []Series{{Label: "a", Points: []Point{{4, 1.5}, {1024, 2.5}, {1 << 20, 3}}}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "bytes", "1K", "1M", "hello", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	Table1(&buf)
	if !strings.Contains(buf.String(), "ConnectX-3") {
		t.Fatal("Table I missing HCA row")
	}
	buf.Reset()
	Table2(&buf, []int{4, 1024})
	if !strings.Contains(buf.String(), "Copy In 1024") {
		t.Fatal("Table II missing offload row")
	}
	buf.Reset()
	Table3(&buf)
	if !strings.Contains(buf.String(), "1282 x 1282") {
		t.Fatal("Table III missing problem size")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeDCFA, ModeDCFABase, ModeHost, ModePhiMPI, Mode(99)} {
		if m.String() == "" {
			t.Fatalf("empty mode string for %d", int(m))
		}
	}
}

func TestSeriesAndFigureHelpers(t *testing.T) {
	s := Series{Label: "x", Points: []Point{{1, 2}}}
	if _, ok := s.At(5); ok {
		t.Fatal("At found missing point")
	}
	f := &Figure{Series: []Series{s}}
	if _, ok := f.ByLabel("nope"); ok {
		t.Fatal("ByLabel found missing series")
	}
	if formatX(2048) != "2K" || formatX(3<<20) != "3M" || formatX(100) != "100" {
		t.Fatal("formatX wrong")
	}
	if gbps(1000, 0) != 0 {
		t.Fatal("gbps with zero duration should be 0")
	}
	if usec(sim.Microsecond*3) != 3 {
		t.Fatal("usec conversion wrong")
	}
}
