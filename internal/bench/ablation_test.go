package bench

import (
	"testing"
)

func TestAblationOffloadThresholdOptimumNear8K(t *testing.T) {
	f := AblationOffloadThreshold(plat())
	total, ok := f.ByLabel("sum over probe sizes")
	if !ok {
		t.Fatal("total series missing")
	}
	best, bestY := 0, 0.0
	for _, p := range total.Points {
		if best == 0 || p.Y < bestY {
			best, bestY = p.X, p.Y
		}
	}
	// The paper tuned to 8 KiB; our model should find its optimum in
	// the same neighborhood.
	if best < 4<<10 || best > 16<<10 {
		t.Fatalf("optimal threshold %d, expected in [4K,16K] around the paper's 8K", best)
	}
}

func TestAblationEagerThresholdTradeoffs(t *testing.T) {
	f := AblationEagerThreshold(plat())
	// A 512 B message should not care much about the threshold (always
	// eager); a 32 KiB message should be fastest when eager (one copy
	// beats the rendezvous handshake at these sizes on the Phi path).
	small, ok := f.ByLabel("512 msg")
	if !ok {
		t.Fatal("512 series missing")
	}
	lo, _ := small.At(1 << 10)
	hi, _ := small.At(64 << 10)
	if lo == 0 || hi == 0 {
		t.Fatal("missing points")
	}
	if diff := hi/lo - 1; diff > 0.05 && diff < -0.05 {
		t.Fatalf("512 B exchange moved %.1f%% across thresholds", diff*100)
	}
}

func TestAblationMRCacheWins(t *testing.T) {
	f := AblationMRCache(plat())
	s := f.Series[0]
	first := s.Points[0]
	last := s.Points[len(s.Points)-1]
	if first.X != 1 || last.X != 64 {
		t.Fatalf("unexpected sweep %v", s.Points)
	}
	if last.Y >= first.Y {
		t.Fatalf("cache (%f µs) not faster than per-message registration (%f µs)", last.Y, first.Y)
	}
	// Re-registering on every message costs a delegated round trip plus
	// pinning: expect a large gap.
	if first.Y-last.Y < 50 {
		t.Fatalf("cache saves only %.1f µs, expected >50 µs", first.Y-last.Y)
	}
}

func TestAblationRingDepthMonotone(t *testing.T) {
	f := AblationRingDepth(plat())
	s := f.Series[0]
	// Deeper rings are never slower under a burst.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y > s.Points[i-1].Y*1.02 {
			t.Fatalf("ring depth %d slower than %d: %.2f vs %.2f µs",
				s.Points[i].X, s.Points[i-1].X, s.Points[i].Y, s.Points[i-1].Y)
		}
	}
	shallow := s.Points[0].Y
	deep := s.Points[len(s.Points)-1].Y
	if deep >= shallow {
		t.Fatalf("64 slots (%f) not faster than 2 slots (%f)", deep, shallow)
	}
}

func TestAblationCollectivesScaling(t *testing.T) {
	f := AblationCollectives(plat())
	if len(f.Series) != 4 {
		t.Fatalf("series %d, want 4", len(f.Series))
	}
	for _, s := range f.Series {
		// Latency grows with rank count (log factor in the trees).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y <= s.Points[i-1].Y {
				t.Fatalf("%s: latency not growing at ranks=%d", s.Label, s.Points[i].X)
			}
		}
	}
	// DCFA beats the proxied mode at every point.
	d8, _ := f.Series[0].At(8)
	p8, _ := f.Series[2].At(8)
	if d8 >= p8 {
		t.Fatalf("DCFA allreduce (%.1f µs) not faster than proxied (%.1f µs)", d8, p8)
	}
}

func TestAblationDatatypePackCrossover(t *testing.T) {
	f := AblationDatatypePack(plat())
	local, _ := f.ByLabel("Phi-local pack")
	off, _ := f.ByLabel("host-offloaded pack")
	// Small vectors: local wins (round trip dominates). Large: offload
	// wins (host pack rate beats the Phi core).
	l0, o0 := local.Points[0].Y, off.Points[0].Y
	ln, on := local.Points[len(local.Points)-1].Y, off.Points[len(off.Points)-1].Y
	if o0 <= l0 {
		t.Fatalf("offload should lose at %d bytes: %.1f vs %.1f µs", local.Points[0].X, o0, l0)
	}
	if on >= ln {
		t.Fatalf("offload should win at %d bytes: %.1f vs %.1f µs", local.Points[len(local.Points)-1].X, on, ln)
	}
}

func TestAblationCGModesAndScaling(t *testing.T) {
	f := AblationCG(plat())
	dcfa, _ := f.ByLabel(ModeDCFA.String())
	phi, _ := f.ByLabel(ModePhiMPI.String())
	host, _ := f.ByLabel(ModeHost.String())
	// DCFA beats the proxied mode at every process count above 1.
	for _, p := range dcfa.Points {
		if p.X == 1 {
			continue
		}
		x, _ := phi.At(p.X)
		if p.Y >= x {
			t.Fatalf("DCFA CG (%.1f µs) not faster than proxied (%.1f µs) at procs=%d", p.Y, x, p.X)
		}
	}
	// The host reference with its fast cores stays fastest.
	h8, _ := host.At(8)
	d8, _ := dcfa.At(8)
	if h8 >= d8 {
		t.Fatalf("host CG (%.1f µs) should beat Phi-resident CG (%.1f µs) per iteration", h8, d8)
	}
	// Scaling: 8 procs beat 1 proc in every mode.
	for _, s := range f.Series {
		one, _ := s.At(1)
		eight, _ := s.At(8)
		if eight >= one {
			t.Fatalf("%s: no scaling (%.1f -> %.1f µs)", s.Label, one, eight)
		}
	}
}
