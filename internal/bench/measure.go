package bench

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ib"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// RawOneWay measures the one-way time of an n-byte raw RDMA write from
// a buffer in srcKind memory on node 0 to dstKind memory on node 1
// (Figure 5's primitive), averaged over iters ping-pong rounds.
func (e *Env) RawOneWay(plat *perfmodel.Platform, srcKind, dstKind machine.DomainKind, n, iters int) sim.Duration {
	eng := sim.NewEngine()
	fab := ib.NewFabric(eng, plat)
	fab.Metrics = e.Metrics
	n0, n1 := machine.NewNode(0), machine.NewNode(1)
	h0, h1 := fab.AttachHCA(n0), fab.AttachHCA(n1)
	ctxA := h0.Open(srcKind)
	ctxB := h1.Open(dstKind)
	pdA, pdB := ctxA.AllocPD(), ctxB.AllocPD()
	cqA := ctxA.CreateCQ(1024)
	cqB := ctxB.CreateCQ(1024)
	qpA := ctxA.CreateQP(pdA, cqA, cqA)
	qpB := ctxB.CreateQP(pdB, cqB, cqB)
	if err := ib.ConnectPair(qpA, qpB); err != nil {
		panic(err)
	}
	src := n0.Domain(srcKind).Alloc(n)
	dst := n1.Domain(dstKind).Alloc(n)
	var total sim.Duration
	eng.Spawn("fig5", func(p *sim.Proc) {
		smr, err := ctxA.RegMR(p, pdA, src.Dom, src.Addr, n)
		if err != nil {
			panic(err)
		}
		dmr, err := ctxB.RegMR(p, pdB, dst.Dom, dst.Addr, n)
		if err != nil {
			panic(err)
		}
		for it := 1; it <= iters; it++ {
			// Stamp the marker the receiver polls for.
			binary.LittleEndian.PutUint32(src.Data[n-4:], uint32(it))
			start := p.Now()
			if err := qpA.PostSend(p, &ib.SendWR{
				WRID: uint64(it), Opcode: ib.OpRDMAWrite, Signaled: true,
				SGL:    []ib.SGE{{Addr: src.Addr, Len: n, LKey: smr.LKey}},
				Remote: ib.RemoteAddr{Addr: dmr.Addr, RKey: dmr.RKey},
			}); err != nil {
				panic(err)
			}
			// Receiver-side memory polling for the marker.
			for binary.LittleEndian.Uint32(dst.Data[n-4:]) != uint32(it) {
				h1.Doorbell.Wait(p)
			}
			total += p.Now() - start
			cqA.WaitPoll(p, 1)
		}
		if err := ctxA.DeregMR(p, smr); err != nil {
			panic(err)
		}
		if err := ctxB.DeregMR(p, dmr); err != nil {
			panic(err)
		}
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return total / sim.Duration(iters)
}

// Mode selects an MPI configuration for the communication sweeps.
type Mode int

const (
	// ModeDCFA is DCFA-MPI with the offloading send-buffer design.
	ModeDCFA Mode = iota
	// ModeDCFABase is DCFA-MPI without the offload design.
	ModeDCFABase
	// ModeHost is the host MPI reference (YAMPII on the Xeons).
	ModeHost
	// ModePhiMPI is 'Intel MPI on Xeon Phi co-processors'.
	ModePhiMPI
)

func (m Mode) String() string {
	switch m {
	case ModeDCFA:
		return "DCFA-MPI+offload"
	case ModeDCFABase:
		return "DCFA-MPI"
	case ModeHost:
		return "Host MPI"
	case ModePhiMPI:
		return "IntelMPI-on-Phi"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// buildWorld constructs a fresh 2-node world for the mode.
func (e *Env) buildWorld(plat *perfmodel.Platform, m Mode, ranks int) *core.World {
	c := cluster.New(plat, ranks)
	c.SetMetrics(e.Metrics)
	c.SetFaults(e.Faults)
	switch m {
	case ModeDCFA:
		return c.DCFAWorld(ranks, true)
	case ModeDCFABase:
		return c.DCFAWorld(ranks, false)
	case ModeHost:
		return c.HostWorld(ranks)
	case ModePhiMPI:
		return baseline.PhiMPIWorld(c, ranks)
	default:
		panic("bench: unknown mode")
	}
}

// NonblockingExchangeTimes measures, for each size, the average time of
// one bidirectional MPI_Isend/MPI_Irecv exchange between 2 ranks
// (Figures 7 and 8's primitive). One world serves the whole sweep, so
// MR caches behave as in the paper's steady state.
func (e *Env) NonblockingExchangeTimes(plat *perfmodel.Platform, m Mode, sizes []int, iters int) []sim.Duration {
	out := make([]sim.Duration, len(sizes))
	w := e.buildWorld(plat, m, 2)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		for si, n := range sizes {
			sb := r.Mem(n)
			rb := r.Mem(n)
			if err := r.Barrier(p); err != nil {
				return err
			}
			start := p.Now()
			for it := 0; it < iters; it++ {
				sq, err := r.Isend(p, other, si, core.Whole(sb))
				if err != nil {
					return err
				}
				rq, err := r.Irecv(p, other, si, core.Whole(rb))
				if err != nil {
					// Drain the already-posted send before bailing out.
					return errors.Join(err, r.WaitAll(p, sq))
				}
				if err := r.WaitAll(p, sq, rq); err != nil {
					return err
				}
			}
			if r.ID() == 0 {
				out[si] = (p.Now() - start) / sim.Duration(iters)
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// BlockingPingPongRTTs measures the blocking Send/Recv round-trip time
// for each size (Figure 9's primitive: "bandwidth result is calculated
// using the round trip latency of MPI blocking communication").
func (e *Env) BlockingPingPongRTTs(plat *perfmodel.Platform, m Mode, sizes []int, iters int) []sim.Duration {
	out := make([]sim.Duration, len(sizes))
	w := e.buildWorld(plat, m, 2)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		for si, n := range sizes {
			buf := r.Mem(n)
			if err := r.Barrier(p); err != nil {
				return err
			}
			start := p.Now()
			for it := 0; it < iters; it++ {
				if r.ID() == 0 {
					if err := r.Send(p, other, si, core.Whole(buf)); err != nil {
						return err
					}
					if _, err := r.Recv(p, other, si, core.Whole(buf)); err != nil {
						return err
					}
				} else {
					if _, err := r.Recv(p, other, si, core.Whole(buf)); err != nil {
						return err
					}
					if err := r.Send(p, other, si, core.Whole(buf)); err != nil {
						return err
					}
				}
			}
			if r.ID() == 0 {
				out[si] = (p.Now() - start) / sim.Duration(iters)
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// CommOnlyDCFA measures the per-iteration time of the communication-only
// application (Table II) under DCFA-MPI: the data stays in co-processor
// memory and only the MPI exchange happens.
func (e *Env) CommOnlyDCFA(plat *perfmodel.Platform, sizes []int, iters int) []sim.Duration {
	return e.NonblockingExchangeTimes(plat, ModeDCFA, sizes, iters)
}

// CommOnlyHostOffload measures the same application under 'Intel MPI on
// Xeon + offload': per iteration the results are copied out of the
// card, exchanged between hosts, and the received data copied back in —
// with the paper's four optimizations applied (persistent aligned
// buffers, no per-iteration offload init, double buffering for what the
// data dependencies allow).
func (e *Env) CommOnlyHostOffload(plat *perfmodel.Platform, sizes []int, iters int) []sim.Duration {
	out := make([]sim.Duration, len(sizes))
	c := cluster.New(plat, 2)
	c.SetMetrics(e.Metrics)
	c.SetFaults(e.Faults)
	w, devs := baseline.HostOffloadWorld(c, 2)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		dev := devs[r.ID()]
		dev.Init(p)
		other := 1 - r.ID()
		for si, n := range sizes {
			hostSend := r.Mem(n)
			hostRecv := r.Mem(n)
			micBuf := dev.Node.Mic.Alloc(n)
			if err := r.Barrier(p); err != nil {
				return err
			}
			start := p.Now()
			for it := 0; it < iters; it++ {
				// Copy out the card's results for sending.
				dev.TransferOut(p, hostSend.Data, micBuf.Data)
				// Host MPI exchange.
				sq, err := r.Isend(p, other, si, core.Whole(hostSend))
				if err != nil {
					return err
				}
				rq, err := r.Irecv(p, other, si, core.Whole(hostRecv))
				if err != nil {
					// Drain the already-posted send before bailing out.
					return errors.Join(err, r.WaitAll(p, sq))
				}
				if err := r.WaitAll(p, sq, rq); err != nil {
					return err
				}
				// Copy the received data back in for the next compute.
				dev.TransferIn(p, micBuf.Data, hostRecv.Data)
			}
			if r.ID() == 0 {
				out[si] = (p.Now() - start) / sim.Duration(iters)
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return out
}
