package bench

// The thousand-rank scale workload: an allreduce across a switched
// fat-tree fabric with lazy connect, the configuration that proves the
// collectives layer and the topology model hold up at three orders of
// magnitude more ranks than the paper's 8-node testbed.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/causal"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// ScaleConfig parameterizes ScaleAllreduce. Zero fields take the
// BENCH_9 defaults: 1000 ranks, 1000 f64 elements, seed 7, fat-tree
// topology, ring algorithm.
type ScaleConfig struct {
	Ranks int
	Elems int    // f64 elements reduced per rank
	Seed  uint64 // payload generator seed
	Topo  string // topo.ByName name; default "fattree"
	Algo  string // Config.CollAllreduce; default "ring"
	// Verify makes rank 0 recompute every rank's contribution and check
	// the reduced result element-wise (O(ranks·elems) host work, no
	// simulation events).
	Verify bool
}

func (c *ScaleConfig) defaults() {
	if c.Ranks <= 0 {
		c.Ranks = 1000
	}
	if c.Elems <= 0 {
		c.Elems = 1000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Topo == "" {
		c.Topo = "fattree"
	}
	if c.Algo == "" {
		c.Algo = "ring"
	}
}

// scaleFill writes rank id's contribution: elems f64 values, each a
// small integer from the rank's seeded splitmix64 stream. Small-integer
// payloads keep every reduction order bit-identical (integer f64 sums
// are exact), so algorithm results can be compared byte-for-byte.
func scaleFill(dst []byte, seed uint64, id, elems int) {
	g := perfRNG{s: seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15}
	for i := 0; i < elems; i++ {
		v := float64(g.intn(1024))
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// scaleExpected computes the element-wise sum of every rank's
// contribution on the host (the oracle for Verify).
func scaleExpected(seed uint64, ranks, elems int) []float64 {
	want := make([]float64, elems)
	for id := 0; id < ranks; id++ {
		g := perfRNG{s: seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15}
		for i := range want {
			want[i] += float64(g.intn(1024))
		}
	}
	return want
}

// ScaleAllreduce runs the scale workload uninstrumented.
func ScaleAllreduce(plat *perfmodel.Platform, cfg ScaleConfig) (PerfResult, error) {
	return ScaleAllreduceProfiled(plat, cfg, nil, nil)
}

// ScaleAllreduceProfiled is ScaleAllreduce with optional passive
// instrumentation. The world runs host-verbs ranks with the scale
// configuration: lazy connect (the all-pairs bootstrap would build
// ~10⁶ endpoint pairs), a shallow 8-slot eager ring, a 1 KiB eager
// threshold, and no offload arena (10³ ranks × 16 MiB would dwarf the
// payload). Same seed ⇒ same fingerprint, byte for byte.
func ScaleAllreduceProfiled(plat *perfmodel.Platform, cfg ScaleConfig, reg *metrics.Registry, rec *causal.Recorder) (PerfResult, error) {
	cfg.defaults()
	c := cluster.NewWithTopo(plat, cfg.Ranks, cfg.Topo)
	c.SetMetrics(reg)
	c.SetCausal(rec)
	wcfg := core.ConfigFromPlatform(plat)
	wcfg.Offload = false
	wcfg.EagerSlots = 8
	wcfg.EagerMax = 1024
	wcfg.ConnectMode = "lazy"
	wcfg.CollAllreduce = cfg.Algo
	wcfg.Metrics = c.Metrics
	wcfg.Causal = c.Causal
	w := core.NewWorld(c.Eng, plat, wcfg, c.HostEnvs(cfg.Ranks))
	var want []float64
	if cfg.Verify {
		want = scaleExpected(cfg.Seed, cfg.Ranks, cfg.Elems)
	}
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		buf := r.Mem(cfg.Elems * 8)
		scaleFill(buf.Data, cfg.Seed, r.ID(), cfg.Elems)
		if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
			return err
		}
		if want != nil && r.ID() == 0 {
			for i := range want {
				got := math.Float64frombits(binary.LittleEndian.Uint64(buf.Data[i*8:]))
				if got != want[i] {
					return fmt.Errorf("bench: allreduce element %d = %v, want %v", i, got, want[i])
				}
			}
		}
		return nil
	})
	if err != nil {
		return PerfResult{}, err
	}
	return PerfResult{
		Workload:     fmt.Sprintf("allreduce-%drank-%s-%s", cfg.Ranks, cfg.Algo, cfg.Topo),
		Events:       c.Eng.EventsRun(),
		SimTime:      c.Eng.Now(),
		PayloadBytes: int64(cfg.Ranks) * int64(cfg.Elems) * 8,
		Fingerprint:  c.Eng.Fingerprint(),
	}, nil
}
