package bench

import (
	"repro/internal/causal"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// ProtocolShowcase runs a fixed 2-rank DCFA-MPI workload that takes each
// of the four §IV-B3 protocol paths exactly once per direction, plus one
// offload-staged large send (§IV-B4) and one forced protocol
// misprediction. With a registry installed, the resulting spans and
// counters reconstruct the full protocol mix:
//
//   - phase 1: 512 B send           → eager
//   - phase 2: 64 KiB, recv late    → sender-first rendezvous (RDMA read)
//   - phase 3: 64 KiB, send late    → receiver-first rendezvous (RDMA write)
//   - phase 4: 64 KiB Sendrecv      → simultaneous rendezvous, both ways
//   - phase 5: 1 MiB send           → offload-staged sender-first
//   - phase 6: large recv posted early, small send late
//     → receiver predicts rendezvous (RTR), sender goes eager: mispredict
//
// It returns the final virtual time of the run.
func ProtocolShowcase(plat *perfmodel.Platform, reg *metrics.Registry) (sim.Time, error) {
	return ProtocolShowcaseCausal(plat, reg, nil)
}

// ProtocolShowcaseCausal is ProtocolShowcase with a causal-event
// recorder installed across every layer: the golden workload for the
// cross-rank causal profiler, exercising all protocol classes, a
// deliberate late sender/late receiver pair, and a rendezvous
// misprediction stall. Recording is passive, so the run's fingerprint
// matches ProtocolShowcase's.
func ProtocolShowcaseCausal(plat *perfmodel.Platform, reg *metrics.Registry, rec *causal.Recorder) (sim.Time, error) {
	c := cluster.New(plat, 2)
	c.SetMetrics(reg)
	c.SetCausal(rec)
	w := c.DCFAWorld(2, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		delay := 400 * sim.Microsecond

		// Phase 1: eager.
		small := r.Mem(512)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			if err := r.Send(p, other, 1, core.Whole(small)); err != nil {
				return err
			}
		} else if _, err := r.Recv(p, other, 1, core.Whole(small)); err != nil {
			return err
		}

		// Phase 2: sender-first rendezvous (receiver arrives late).
		big := r.Mem(64 << 10)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			if err := r.Send(p, other, 2, core.Whole(big)); err != nil {
				return err
			}
		} else {
			p.Sleep(delay)
			if _, err := r.Recv(p, other, 2, core.Whole(big)); err != nil {
				return err
			}
		}

		// Phase 3: receiver-first rendezvous (sender arrives late).
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			p.Sleep(delay)
			if err := r.Send(p, other, 3, core.Whole(big)); err != nil {
				return err
			}
		} else if _, err := r.Recv(p, other, 3, core.Whole(big)); err != nil {
			return err
		}

		// Phase 4: simultaneous rendezvous (RTS packets cross in flight).
		rbuf := r.Mem(64 << 10)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if _, err := r.Sendrecv(p, other, 4, core.Whole(big), other, 4, core.Whole(rbuf)); err != nil {
			return err
		}

		// Phase 5: offload-staged large send.
		huge := r.Mem(1 << 20)
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			if err := r.Send(p, other, 5, core.Whole(huge)); err != nil {
				return err
			}
		} else if _, err := r.Recv(p, other, 5, core.Whole(huge)); err != nil {
			return err
		}

		// Phase 6: forced rendezvous misprediction. The receiver posts a
		// rendezvous-sized buffer early (so it predicts receiver-first
		// rendezvous and emits an RTR), but the late sender only ships an
		// eager-sized payload: the RTR round trip was wasted and both
		// sides record a mispredict.
		if err := r.Barrier(p); err != nil {
			return err
		}
		if r.ID() == 0 {
			p.Sleep(delay)
			if err := r.Send(p, other, 6, core.Whole(small)); err != nil {
				return err
			}
		} else if _, err := r.Recv(p, other, 6, core.Whole(big)); err != nil {
			return err
		}
		return r.Barrier(p)
	})
	return c.Eng.Now(), err
}
