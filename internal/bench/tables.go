package bench

import (
	"fmt"
	"io"

	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// Table1 renders the server-architecture inventory (paper Table I) with
// the simulated analog of each component.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "=== Table I: Server architecture (paper -> simulated analog) ===")
	for _, r := range perfmodel.TableI() {
		fmt.Fprintf(w, "  %-24s %-42s %s\n", r.Component, r.Paper, r.Simulated)
	}
	fmt.Fprintln(w)
}

// Table2 renders the communication-only application's data sizes
// (paper Table II) for a set of payloads.
func Table2(w io.Writer, sizes []int) {
	fmt.Fprintln(w, "=== Table II: Communication data size of the communication-only application ===")
	fmt.Fprintf(w, "  %-12s %-36s %s\n", "Data size", "Offloading Data", "MPI Communication Data")
	for _, x := range sizes {
		fmt.Fprintf(w, "  %-12s Copy In %d B + Copy Out %d B%-6s Send %d B + Receive %d B\n",
			formatX(x), x, x, "", x, x)
	}
	fmt.Fprintln(w)
}

// Table3 renders the five-point stencil data sizes (paper Table III).
func Table3(w io.Writer) {
	pr := stencil.PaperParams(8, 56)
	fmt.Fprintln(w, "=== Table III: Communication data size of the five-point stencil ===")
	fmt.Fprintf(w, "  %-34s %d x %d\n", "Problem Size (Number of Points)", pr.Width(), pr.Width())
	fmt.Fprintf(w, "  %-34s %.1f MiB\n", "Computing Data", float64(pr.ComputeBytes())/(1<<20))
	fmt.Fprintf(w, "  %-34s Copy In %.1f KiB + Copy Out %.1f KiB per neighbor\n",
		"Offloading Data", float64(pr.HaloBytes())/1024, float64(pr.HaloBytes())/1024)
	fmt.Fprintf(w, "  %-34s Send %.1f KiB + Receive %.1f KiB per neighbor\n",
		"MPI Communication Data", float64(pr.HaloBytes())/1024, float64(pr.HaloBytes())/1024)
	fmt.Fprintln(w)
}
