package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// Ablations isolate the design choices DESIGN.md calls out: the
// offload-send-buffer threshold (the paper: "The message size at the
// beginning of offloading should be tuned ... 8Kbytes shows the best
// performance"), the eager/rendezvous switch, the MR cache pool, the
// eager ring depth, and the future-work datatype-pack offload.

// dcfaWorldWithCfg builds a 2-rank DCFA world with a custom config.
func dcfaWorldWithCfg(plat *perfmodel.Platform, cfg core.Config) *core.World {
	c := cluster.New(plat, 2)
	return core.NewWorld(c.Eng, plat, cfg, c.DCFAEnvs(2))
}

// exchangeSweep measures per-size nonblocking exchange times on w.
func exchangeSweep(w *core.World, sizes []int, iters int) []sim.Duration {
	out := make([]sim.Duration, len(sizes))
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		for si, n := range sizes {
			sb := r.Mem(n)
			rb := r.Mem(n)
			if err := r.Barrier(p); err != nil {
				return err
			}
			// One warmup exchange to amortize registrations.
			if _, err := r.Sendrecv(p, other, si, core.Whole(sb), other, si, core.Whole(rb)); err != nil {
				return err
			}
			start := p.Now()
			for it := 0; it < iters; it++ {
				if _, err := r.Sendrecv(p, other, si, core.Whole(sb), other, si, core.Whole(rb)); err != nil {
					return err
				}
			}
			if r.ID() == 0 {
				out[si] = (p.Now() - start) / sim.Duration(iters)
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// AblationOffloadThreshold sweeps the offloading start size. For each
// threshold t the eager switch is min(t, 8 KiB), so messages between
// the switch and t use the direct (slow) rendezvous path — exactly the
// trade-off the paper tuned. The Y value is the total time of one
// exchange at each probe size; the "total" series exposes the optimum.
func AblationOffloadThreshold(plat *perfmodel.Platform) *Figure {
	thresholds := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	probes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10}
	f := &Figure{
		ID:     "Ablation A1",
		Title:  "Offload-send-buffer threshold tuning (paper §IV-B4: 8 KiB optimal)",
		XLabel: "threshold",
		YLabel: "µs per exchange (sum over probe sizes)",
	}
	var total Series
	total.Label = "sum over probe sizes"
	perProbe := make([]Series, len(probes))
	for i, n := range probes {
		perProbe[i].Label = fmt.Sprintf("%s msg", formatX(n))
	}
	for _, t := range thresholds {
		cfg := core.ConfigFromPlatform(plat)
		cfg.Offload = true
		cfg.OffloadMinSize = t
		if t < cfg.EagerMax {
			cfg.EagerMax = t
		}
		w := dcfaWorldWithCfg(plat, cfg)
		ts := exchangeSweep(w, probes, defaultIters)
		sum := 0.0
		for i := range probes {
			perProbe[i].Points = append(perProbe[i].Points, Point{X: t, Y: usec(ts[i])})
			sum += usec(ts[i])
		}
		total.Points = append(total.Points, Point{X: t, Y: sum})
	}
	f.Series = append(perProbe, total)
	best, bestY := 0, 0.0
	for _, p := range total.Points {
		if best == 0 || p.Y < bestY {
			best, bestY = p.X, p.Y
		}
	}
	f.Notes = append(f.Notes, fmt.Sprintf("best threshold %s (paper tuned to 8K)", formatX(best)))
	return f
}

// AblationEagerThreshold sweeps the eager/rendezvous switch with the
// offload design disabled, isolating the one-copy vs zero-copy
// trade-off on the co-processor.
func AblationEagerThreshold(plat *perfmodel.Platform) *Figure {
	thresholds := []int{1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	probes := []int{512, 2 << 10, 8 << 10, 32 << 10}
	f := &Figure{
		ID:     "Ablation A2",
		Title:  "Eager/rendezvous switch (offload disabled)",
		XLabel: "eager max",
		YLabel: "µs per exchange",
	}
	perProbe := make([]Series, len(probes))
	for i, n := range probes {
		perProbe[i].Label = fmt.Sprintf("%s msg", formatX(n))
	}
	for _, t := range thresholds {
		cfg := core.ConfigFromPlatform(plat)
		cfg.Offload = false
		cfg.EagerMax = t
		w := dcfaWorldWithCfg(plat, cfg)
		ts := exchangeSweep(w, probes, defaultIters)
		for i := range probes {
			perProbe[i].Points = append(perProbe[i].Points, Point{X: t, Y: usec(ts[i])})
		}
	}
	f.Series = perProbe
	return f
}

// AblationMRCache compares the buffer cache pool against per-message
// registration on a buffer-reusing rendezvous workload (the paper: the
// pool "can only benefit applications which always reuse a few
// buffers").
func AblationMRCache(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Ablation A3",
		Title:  "MR cache pool vs per-message registration (64 KiB rendezvous, reused buffers)",
		XLabel: "cache entries",
		YLabel: "µs per exchange",
	}
	var s Series
	s.Label = "64K exchange"
	for _, cap := range []int{1, 2, 4, 64} {
		cfg := core.ConfigFromPlatform(plat)
		cfg.Offload = false // force user-buffer registration
		cfg.MRCacheCap = cap
		w := dcfaWorldWithCfg(plat, cfg)
		ts := exchangeSweep(w, []int{64 << 10}, defaultIters)
		s.Points = append(s.Points, Point{X: cap, Y: usec(ts[0])})
	}
	f.Series = []Series{s}
	worst := s.Points[0].Y
	bestY := s.Points[len(s.Points)-1].Y
	f.Notes = append(f.Notes, fmt.Sprintf("cache saves %.1f µs per exchange (%.1f×)", worst-bestY, worst/bestY))
	return f
}

// AblationRingDepth varies the eager ring depth under a one-way burst:
// shallow rings stall on credits.
func AblationRingDepth(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Ablation A4",
		Title:  "Eager ring depth under a 128-message burst",
		XLabel: "slots",
		YLabel: "µs per message",
	}
	var s Series
	s.Label = "1 KiB burst"
	const burst = 128
	for _, slots := range []int{2, 4, 8, 16, 64} {
		cfg := core.ConfigFromPlatform(plat)
		cfg.EagerSlots = slots
		w := dcfaWorldWithCfg(plat, cfg)
		var per sim.Duration
		err := w.Run(func(r *core.Rank) error {
			p := r.Proc()
			if err := r.Barrier(p); err != nil {
				return err
			}
			if r.ID() == 0 {
				reqs := make([]*core.Request, burst)
				start := p.Now()
				for i := range reqs {
					b := r.Mem(1024)
					var err error
					reqs[i], err = r.Isend(p, 1, 1, core.Whole(b))
					if err != nil {
						return err
					}
				}
				if err := r.WaitAll(p, reqs...); err != nil {
					return err
				}
				per = (p.Now() - start) / burst
				return nil
			}
			for i := 0; i < burst; i++ {
				b := r.Mem(1024)
				if _, err := r.Recv(p, 0, 1, core.Whole(b)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		s.Points = append(s.Points, Point{X: slots, Y: usec(per)})
	}
	f.Series = []Series{s}
	return f
}

// AblationDatatypePack compares local vs host-offloaded noncontiguous
// packing across packed sizes — the paper's §VI future-work proposal.
func AblationDatatypePack(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Ablation A5",
		Title:  "Datatype pack: Phi-local vs host-offloaded (future work, §VI)",
		XLabel: "packed bytes",
		YLabel: "µs per typed send",
	}
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	measure := func(offload bool) Series {
		var s Series
		if offload {
			s.Label = "host-offloaded pack"
		} else {
			s.Label = "Phi-local pack"
		}
		for _, n := range sizes {
			cfg := core.ConfigFromPlatform(plat)
			cfg.OffloadDatatypePack = offload
			cfg.OffloadPackMinSize = 1 // always offload when enabled
			w := dcfaWorldWithCfg(plat, cfg)
			blocks := n / 64
			dt := core.Vector(blocks, 8, 16, 8) // 64-byte blocks, half-dense
			var elapsed sim.Duration
			err := w.Run(func(r *core.Rank) error {
				p := r.Proc()
				buf := r.Mem(dt.Extent())
				if err := r.Barrier(p); err != nil {
					return err
				}
				if r.ID() == 0 {
					// Warmup then timed sends.
					if err := r.SendTyped(p, 1, 0, core.Whole(buf), dt); err != nil {
						return err
					}
					start := p.Now()
					for i := 0; i < 5; i++ {
						if err := r.SendTyped(p, 1, 0, core.Whole(buf), dt); err != nil {
							return err
						}
					}
					elapsed = (p.Now() - start) / 5
					return nil
				}
				for i := 0; i < 6; i++ {
					if _, err := r.RecvTyped(p, 0, 0, core.Whole(buf), dt); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			s.Points = append(s.Points, Point{X: n, Y: usec(elapsed)})
		}
		return s
	}
	f.Series = []Series{measure(false), measure(true)}
	local := f.Series[0]
	off := f.Series[1]
	for i := range sizes {
		if off.Points[i].Y < local.Points[i].Y {
			f.Notes = append(f.Notes, fmt.Sprintf("offload wins from %s packed", formatX(sizes[i])))
			break
		}
	}
	return f
}

// AblationCollectives measures Allreduce latency scaling with rank
// count under DCFA-MPI and the proxied Intel mode — the collective cost
// the paper defers to future work ("some heavy functions, such as
// collective communication ... are planned to be offloaded").
func AblationCollectives(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Ablation A6",
		Title:  "Allreduce latency vs rank count (8 B and 64 KiB payloads)",
		XLabel: "ranks",
		YLabel: "µs per allreduce",
	}
	payloads := []int{8, 64 << 10}
	for _, m := range []Mode{ModeDCFA, ModePhiMPI} {
		for _, n := range payloads {
			s := Series{Label: fmt.Sprintf("%s %s", m, formatX(n))}
			for _, ranks := range []int{2, 4, 8} {
				c := cluster.New(plat, ranks)
				var w *core.World
				if m == ModeDCFA {
					w = c.DCFAWorld(ranks, true)
				} else {
					w = baseline.PhiMPIWorld(c, ranks)
				}
				var per sim.Duration
				err := w.Run(func(r *core.Rank) error {
					p := r.Proc()
					buf := r.Mem(n)
					// Warmup.
					if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
						return err
					}
					if err := r.Barrier(p); err != nil {
						return err
					}
					start := p.Now()
					const iters = 5
					for i := 0; i < iters; i++ {
						if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
							return err
						}
					}
					if r.ID() == 0 {
						per = (p.Now() - start) / iters
					}
					return nil
				})
				if err != nil {
					panic(err)
				}
				s.Points = append(s.Points, Point{X: ranks, Y: usec(per)})
			}
			f.Series = append(f.Series, s)
		}
	}
	return f
}

// AblationCG runs the Conjugate Gradient workload (internal/cg) across
// modes and process counts: a second full application exercising the
// halo-exchange + Allreduce pattern on the library.
func AblationCG(plat *perfmodel.Platform) *Figure {
	f := &Figure{
		ID:     "Ablation A7",
		Title:  "Conjugate Gradient (256² Poisson, 30 iters) time per iteration",
		XLabel: "procs",
		YLabel: "µs per iteration",
	}
	build := func(m Mode, procs int) *core.World {
		c := cluster.New(plat, procs)
		switch m {
		case ModeDCFA:
			return c.DCFAWorld(procs, true)
		case ModePhiMPI:
			return baseline.PhiMPIWorld(c, procs)
		default:
			return c.HostWorld(procs)
		}
	}
	for _, m := range []Mode{ModeDCFA, ModePhiMPI, ModeHost} {
		s := Series{Label: m.String()}
		for _, procs := range []int{1, 2, 4, 8} {
			pr := cg.Params{N: 256, MaxIter: 30, Tol: 1e-30, Procs: procs, Threads: 16}
			res, err := cg.RunWorld(build(m, procs), pr)
			if err != nil {
				panic(err)
			}
			s.Points = append(s.Points, Point{X: procs, Y: usec(res.PerIter)})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// AllAblations regenerates every ablation figure.
func AllAblations(plat *perfmodel.Platform) []*Figure {
	return []*Figure{
		AblationOffloadThreshold(plat),
		AblationEagerThreshold(plat),
		AblationMRCache(plat),
		AblationRingDepth(plat),
		AblationDatatypePack(plat),
		AblationCollectives(plat),
		AblationCG(plat),
	}
}
