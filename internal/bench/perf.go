package bench

// Deterministic engine-throughput workloads. These are the repo's perf
// trajectory: cmd/simbench times them against the wall clock and
// reports events/sec and simulated-bytes/sec into BENCH_N.json. The
// workloads themselves are pure simulation — no wall-clock reads, no
// randomness beyond a seeded splitmix64 — so a result is identified by
// its fingerprint and two runs of one workload are bit-identical.

import (
	"repro/internal/causal"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// PerfResult captures everything a deterministic harness run produces:
// the dispatched-event count and final virtual time (the work done),
// the application payload moved, and the event-order fingerprint that
// pins the schedule.
type PerfResult struct {
	Workload     string
	Events       int64
	SimTime      sim.Time
	PayloadBytes int64
	Fingerprint  uint64
}

// PingPongFlood runs a blocking Send/Recv ping-pong of size-byte
// messages between 2 DCFA ranks for iters round trips — the classic
// latency flood, dominated by per-message protocol events.
func PingPongFlood(plat *perfmodel.Platform, size, iters int) PerfResult {
	res, err := PingPongFloodProfiled(plat, size, iters, nil, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// PingPongFloodProfiled is PingPongFlood with optional passive
// instrumentation installed across every layer: both are nil-tolerant,
// and the fingerprint matches the uninstrumented run.
func PingPongFloodProfiled(plat *perfmodel.Platform, size, iters int, reg *metrics.Registry, rec *causal.Recorder) (PerfResult, error) {
	c := cluster.New(plat, 2)
	c.SetMetrics(reg)
	c.SetCausal(rec)
	w := c.DCFAWorld(2, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		other := 1 - r.ID()
		buf := r.Mem(size)
		for it := 0; it < iters; it++ {
			if r.ID() == 0 {
				if err := r.Send(p, other, 1, core.Whole(buf)); err != nil {
					return err
				}
				if _, err := r.Recv(p, other, 1, core.Whole(buf)); err != nil {
					return err
				}
			} else {
				if _, err := r.Recv(p, other, 1, core.Whole(buf)); err != nil {
					return err
				}
				if err := r.Send(p, other, 1, core.Whole(buf)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return PerfResult{}, err
	}
	return PerfResult{
		Workload:     "pingpong-flood",
		Events:       c.Eng.EventsRun(),
		SimTime:      c.Eng.Now(),
		PayloadBytes: 2 * int64(iters) * int64(size),
		Fingerprint:  c.Eng.Fingerprint(),
	}, nil
}

// perfRNG is a splitmix64 generator for workload construction (the
// repo bans math/rand to keep runs reproducible).
type perfRNG struct{ s uint64 }

func (g *perfRNG) next() uint64 {
	g.s += 0x9E3779B97F4A7C15
	z := g.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (g *perfRNG) intn(n int) int { return int(g.next() % uint64(n)) }

// TortureFlood runs the seeded 4-rank randomized point-to-point
// workload from the torture suite, without faults or payload checks:
// rounds bulk-synchronous rounds of msgs directed Isend/Irecv pairs
// each, over sizes straddling the eager/rendezvous threshold, closed
// by a Barrier. It stresses matching, rendezvous and the collectives'
// control path at once.
func TortureFlood(plat *perfmodel.Platform, seed uint64, rounds, msgs int) PerfResult {
	res, err := TortureFloodProfiled(plat, seed, rounds, msgs, nil, nil, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// TortureFloodProfiled is TortureFlood with optional deterministic
// fault injection and passive instrumentation: plan (nil = sunny day)
// drives the transport fault injector, reg and rec install telemetry
// and causal recording. With plan nil, the fingerprint matches the
// uninstrumented run.
func TortureFloodProfiled(plat *perfmodel.Platform, seed uint64, rounds, msgs int, plan *faults.Plan, reg *metrics.Registry, rec *causal.Recorder) (PerfResult, error) {
	sizes := []int{64, 1024, 8192, 8193, 32768}
	type pmsg struct{ src, dst, size, tag int }
	const ranks = 4
	g := perfRNG{s: seed}
	sched := make([][]pmsg, rounds)
	var payload int64
	for rd := range sched {
		for m := 0; m < msgs; m++ {
			src := g.intn(ranks)
			dst := g.intn(ranks - 1)
			if dst >= src {
				dst++
			}
			sz := sizes[g.intn(len(sizes))]
			sched[rd] = append(sched[rd], pmsg{src: src, dst: dst, size: sz, tag: rd*1000 + m})
			payload += int64(sz)
		}
	}
	c := cluster.New(plat, ranks)
	c.SetMetrics(reg)
	c.SetCausal(rec)
	if plan != nil {
		c.SetFaults(plan)
	}
	w := c.DCFAWorld(ranks, true)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		me := r.ID()
		for _, ro := range sched {
			// Post everything, then complete what was posted even when a
			// later post fails: abandoning an issued Irecv would leak its
			// pinned buffer (and trips the reqwait rule).
			var reqs []*core.Request
			var postErr error
			for mi := range ro {
				m := &ro[mi]
				if m.dst != me {
					continue
				}
				q, err := r.Irecv(p, m.src, m.tag, core.Whole(r.Mem(m.size)))
				if err != nil {
					postErr = err
					break
				}
				reqs = append(reqs, q)
			}
			if postErr == nil {
				for mi := range ro {
					m := &ro[mi]
					if m.src != me {
						continue
					}
					q, err := r.Isend(p, m.dst, m.tag, core.Whole(r.Mem(m.size)))
					if err != nil {
						postErr = err
						break
					}
					reqs = append(reqs, q)
				}
			}
			if err := r.WaitAll(p, reqs...); err != nil {
				return err
			}
			if postErr != nil {
				return postErr
			}
			if err := r.Barrier(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return PerfResult{}, err
	}
	return PerfResult{
		Workload:     "torture-4rank",
		Events:       c.Eng.EventsRun(),
		SimTime:      c.Eng.Now(),
		PayloadBytes: payload,
		Fingerprint:  c.Eng.Fingerprint(),
	}, nil
}
