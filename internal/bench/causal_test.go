package bench_test

// Integration tests for the causal profiler on real workloads: the
// profiler must be fingerprint-neutral (recording on/off runs the same
// schedule), byte-deterministic, and its golden patterns must show up
// in the protocol showcase, which injects a late sender and forced
// rendezvous mispredictions on purpose.

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/causal"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// tortureFaultPlan is the fault mix the fingerprint-neutrality test
// runs under: recovery paths emit causal events too, so neutrality
// must hold with recovery exercised.
func tortureFaultPlan() *faults.Plan {
	p := faults.NewPlan(7)
	p.IBError = 0.02
	p.Cmd = 0.02
	p.DMADelay = 0.05
	p.DMAAbort = 0.05
	return p
}

func TestProfilingDoesNotPerturbSchedule(t *testing.T) {
	plat := perfmodel.Default()
	const seed, rounds, msgs = 7, 4, 12

	base, err := bench.TortureFloodProfiled(plat, seed, rounds, msgs, tortureFaultPlan(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	run := func() (bench.PerfResult, []byte) {
		rec := causal.New()
		reg := metrics.New()
		res, err := bench.TortureFloodProfiled(plat, seed, rounds, msgs, tortureFaultPlan(), reg, rec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := causal.Analyze("torture", rec.Events(), res.SimTime).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	r1, rep1 := run()
	r2, rep2 := run()

	if r1.Fingerprint != base.Fingerprint {
		t.Errorf("profiled fingerprint %#x != unprofiled %#x — profiling perturbed the schedule",
			r1.Fingerprint, base.Fingerprint)
	}
	if r1.SimTime != base.SimTime || r1.Events != base.Events {
		t.Errorf("profiled run shape (%d events, %dns) != unprofiled (%d events, %dns)",
			r1.Events, r1.SimTime, base.Events, base.SimTime)
	}
	if r2.Fingerprint != r1.Fingerprint {
		t.Error("two profiled runs diverged")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Error("causal report not byte-identical across identical runs")
	}
}

// analyzeShowcase runs the protocol showcase with the profiler on and
// returns the report plus the registry it ran with.
func analyzeShowcase(t *testing.T) (*causal.Report, *metrics.Registry) {
	t.Helper()
	rec := causal.New()
	reg := metrics.New()
	end, err := bench.ProtocolShowcaseCausal(perfmodel.Default(), reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	return causal.Analyze("showcase", rec.Events(), end), reg
}

func TestShowcaseGoldenPatterns(t *testing.T) {
	rep, reg := analyzeShowcase(t)

	if len(rep.Issues) != 0 {
		t.Fatalf("showcase graph has inconsistencies: %v", rep.Issues)
	}
	if open := reg.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open", open)
	}

	// The showcase's phase 5 delays the sender by 400µs against a
	// pre-posted receive: late-sender must be detected at that scale.
	ls := rep.Pattern(causal.PatLateSender)
	if ls == nil || ls.Count < 1 {
		t.Fatal("injected late sender not detected")
	}
	if len(ls.Worst) == 0 || ls.Worst[0].Cost < sim.Duration(400*sim.Microsecond) {
		t.Errorf("late-sender worst cost %v, want >= the injected 400µs delay", ls.Worst)
	}

	// Phase 4 (simultaneous rendezvous) and phase 6 (forced eager-vs-RTR
	// race) both mispredict: the stall pattern must catch them.
	ms := rep.Pattern(causal.PatMispredictStall)
	if ms == nil || ms.Count < 2 {
		t.Fatalf("rendezvous mispredict stalls not detected: %+v", ms)
	}
	if ms.Cost <= 0 {
		t.Error("mispredict stalls carry no cost")
	}
}

func TestShowcaseBreakdownPartitionsSimTime(t *testing.T) {
	rep, _ := analyzeShowcase(t)
	var sum sim.Duration
	for _, c := range causal.Categories {
		d, ok := rep.Breakdown[c]
		if !ok {
			t.Errorf("breakdown missing category %q", c)
		}
		sum += d
	}
	if len(rep.Breakdown) != len(causal.Categories) {
		t.Errorf("breakdown has %d categories, want %d", len(rep.Breakdown), len(causal.Categories))
	}
	if sim.Time(sum) != rep.SimTime {
		t.Errorf("breakdown sums to %d, want sim time %d", sum, rep.SimTime)
	}
	// The handshake-heavy showcase must attribute real time to the
	// rendezvous category, and compute can't be the whole story.
	if rep.Breakdown[causal.CatRndvRTT] == 0 {
		t.Error("no critical-path time attributed to rendezvous-rtt")
	}
}

func TestShowcaseMessagesCoverProtocols(t *testing.T) {
	rep, _ := analyzeShowcase(t)
	protos := map[uint8]bool{}
	for _, m := range rep.Graph().Messages {
		protos[m.Proto] = true
	}
	for _, p := range []uint8{causal.ProtoEager, causal.ProtoSenderRzv, causal.ProtoRecvRzv, causal.ProtoSimulRzv} {
		if !protos[p] {
			t.Errorf("no message resolved as %s in the showcase graph", causal.ProtoName(p))
		}
	}
}

func TestShowcaseFlowsBindMessages(t *testing.T) {
	rep, reg := analyzeShowcase(t)
	flows := rep.Flows()
	if len(flows) == 0 {
		t.Fatal("no flow events exported")
	}
	msg := 0
	for _, f := range flows {
		if f.Cat == "message" {
			msg++
			if f.ToTS < f.FromTS {
				t.Errorf("flow %q finishes before it starts", f.Name)
			}
		}
	}
	if msg == 0 {
		t.Error("no message flows among the exported flows")
	}
	// The combined trace must survive the exporter round trip and be
	// byte-deterministic.
	var a, b bytes.Buffer
	if err := rep.WriteTrace(&a, reg); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteTrace(&b, reg); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("trace export empty or not byte-deterministic")
	}
}
