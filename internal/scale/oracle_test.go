package scale

// The property matrix (ISSUE 10 satellite): every collective algorithm
// × every topology × rank counts × seeds, each result compared
// byte-for-byte against the naive-oracle simulation AND a host-computed
// expectation. Payloads are small-integer f64s so every reduction order
// is exact and results must be bit-identical regardless of algorithm.

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/topo"
)

// oracleRNG is the splitmix64 payload generator (math/rand is banned).
type oracleRNG struct{ s uint64 }

func (g *oracleRNG) next() uint64 {
	g.s += 0x9E3779B97F4A7C15
	z := g.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fillF64 writes rank id's allreduce contribution: elems small-integer
// f64 values (exact under any summation order).
func fillF64(dst []byte, seed uint64, id, elems int) {
	g := oracleRNG{s: seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15}
	for i := 0; i < elems; i++ {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(float64(g.next()%1024)))
	}
}

// patByte is the deterministic byte at position i of the (src → dst)
// block — bcast uses dst = 0.
func patByte(seed uint64, src, dst, i int) byte {
	return byte(uint64(i)*2654435761 + seed*31 + uint64(src*7+dst*131))
}

func fillPatBlock(b []byte, seed uint64, src, dst int) {
	for i := range b {
		b[i] = patByte(seed, src, dst, i)
	}
}

// collRun is one simulated collective: kind selects the verb, algo pins
// the algorithm through the world Config, and every rank's result
// buffer is copied out for comparison. Barrier runs carry no data; the
// runner instead checks the synchronization property (no rank may leave
// before the last rank arrives).
func collRun(t *testing.T, kind, algo, topoName string, ranks int, seed uint64, elems int) [][]byte {
	t.Helper()
	plat := perfmodel.Default()
	c := cluster.NewWithTopo(plat, ranks, topoName)
	cfg := core.ConfigFromPlatform(plat)
	cfg.Offload = false
	cfg.EagerSlots = 8
	// A 1 KiB threshold so the elems variants straddle eager (64 B),
	// boundary+8 (1032 B) and rendezvous (2400 B) paths.
	cfg.EagerMax = 1024
	switch kind {
	case "allreduce":
		cfg.CollAllreduce = algo
	case "bcast":
		cfg.CollBcast = algo
	case "barrier":
		cfg.CollBarrier = algo
	case "alltoall":
		cfg.CollAlltoall = algo
	default:
		t.Fatalf("unknown collective kind %q", kind)
	}
	w := core.NewWorld(c.Eng, plat, cfg, c.HostEnvs(ranks))
	out := make([][]byte, ranks)
	pre := make([]sim.Time, ranks)
	post := make([]sim.Time, ranks)
	err := w.Run(func(r *core.Rank) error {
		p := r.Proc()
		me := r.ID()
		switch kind {
		case "allreduce":
			buf := r.Mem(elems * 8)
			fillF64(buf.Data, seed, me, elems)
			if err := r.Allreduce(p, core.Whole(buf), core.OpSumF64); err != nil {
				return err
			}
			out[me] = append([]byte(nil), buf.Data...)
		case "bcast":
			root := int(seed % uint64(ranks))
			buf := r.Mem(elems * 8)
			if me == root {
				fillPatBlock(buf.Data, seed, root, 0)
			}
			if err := r.Bcast(p, root, core.Whole(buf)); err != nil {
				return err
			}
			out[me] = append([]byte(nil), buf.Data...)
		case "alltoall":
			block := elems * 8
			src, dst := r.Mem(ranks*block), r.Mem(ranks*block)
			for j := 0; j < ranks; j++ {
				fillPatBlock(src.Data[j*block:(j+1)*block], seed, me, j)
			}
			if err := r.Alltoall(p, core.Whole(src), core.Whole(dst), block); err != nil {
				return err
			}
			out[me] = append([]byte(nil), dst.Data...)
		case "barrier":
			// Desynchronize arrivals so the property is non-trivial.
			p.Sleep(sim.Duration(me+1) * 3 * sim.Microsecond)
			pre[me] = p.Now()
			if err := r.Barrier(p); err != nil {
				return err
			}
			post[me] = p.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s/%s on %s, %d ranks, seed %d: %v", kind, algo, topoName, ranks, seed, err)
	}
	if kind == "barrier" {
		maxPre, minPost := pre[0], post[0]
		for i := 1; i < ranks; i++ {
			if pre[i] > maxPre {
				maxPre = pre[i]
			}
			if post[i] < minPost {
				minPost = post[i]
			}
		}
		if minPost < maxPre {
			t.Errorf("%s barrier on %s, %d ranks: a rank left at %v before the last arrival at %v",
				algo, topoName, ranks, minPost, maxPre)
		}
	}
	return out
}

// hostExpected computes the collective's result on the host: the oracle
// every simulated algorithm must reproduce bit-for-bit.
func hostExpected(kind string, ranks int, seed uint64, elems int) [][]byte {
	out := make([][]byte, ranks)
	switch kind {
	case "allreduce":
		sum := make([]float64, elems)
		one := make([]byte, elems*8)
		for id := 0; id < ranks; id++ {
			fillF64(one, seed, id, elems)
			for i := range sum {
				sum[i] += math.Float64frombits(binary.LittleEndian.Uint64(one[i*8:]))
			}
		}
		res := make([]byte, elems*8)
		for i, v := range sum {
			binary.LittleEndian.PutUint64(res[i*8:], math.Float64bits(v))
		}
		for id := range out {
			out[id] = res
		}
	case "bcast":
		root := int(seed % uint64(ranks))
		res := make([]byte, elems*8)
		fillPatBlock(res, seed, root, 0)
		for id := range out {
			out[id] = res
		}
	case "alltoall":
		block := elems * 8
		for id := range out {
			buf := make([]byte, ranks*block)
			for j := 0; j < ranks; j++ {
				fillPatBlock(buf[j*block:(j+1)*block], seed, j, id)
			}
			out[id] = buf
		}
	}
	return out
}

func diffOutputs(got, want [][]byte) error {
	for id := range got {
		if len(got[id]) != len(want[id]) {
			return fmt.Errorf("rank %d: %d result bytes, want %d", id, len(got[id]), len(want[id]))
		}
		for i := range got[id] {
			if got[id][i] != want[id][i] {
				return fmt.Errorf("rank %d: byte %d = %#x, want %#x", id, i, got[id][i], want[id][i])
			}
		}
	}
	return nil
}

// TestCollectiveOracle is the matrix. Rank counts cover the degenerate
// (1), even/odd/prime small worlds, a power of two, and — without
// -short — 64 (past the lazy-connect threshold, multi-leaf on both fat
// trees). The 1000-rank point is TestScaleAllreduce's job (flag-driven,
// CI smoke); running every algorithm × topology there would take hours.
func TestCollectiveOracle(t *testing.T) {
	rankSet := []int{1, 2, 3, 5, 8}
	if !testing.Short() {
		rankSet = append(rankSet, 64)
	}
	// Seed/size variants straddle EagerMax=1024: 64 B eager, 1032 B
	// smallest-rendezvous, 2400 B rendezvous.
	variants := []struct {
		seed  uint64
		elems int
	}{{1, 8}, {2, 129}, {3, 300}}
	families := []struct {
		kind   string
		oracle string   // algorithm the others must match (run on the flat fabric)
		algos  []string // every selectable algorithm, oracle included
	}{
		{"allreduce", "naive", []string{"naive", "ring", "rd"}},
		{"bcast", "binomial", []string{"binomial", "scatter-allgather"}},
		{"alltoall", "linear", []string{"linear", "pairwise"}},
		{"barrier", "", []string{"dissemination", "tree"}},
	}
	for _, fam := range families {
		for _, ranks := range rankSet {
			for _, v := range variants {
				fam, ranks, v := fam, ranks, v
				t.Run(fmt.Sprintf("%s/%dranks/%delems", fam.kind, ranks, v.elems), func(t *testing.T) {
					want := hostExpected(fam.kind, ranks, v.seed, v.elems)
					var oracle [][]byte
					if fam.oracle != "" {
						oracle = collRun(t, fam.kind, fam.oracle, "flat", ranks, v.seed, v.elems)
						if err := diffOutputs(oracle, want); err != nil {
							t.Fatalf("oracle %s/%s vs host: %v", fam.kind, fam.oracle, err)
						}
					}
					for _, topoName := range topo.Names() {
						for _, algo := range fam.algos {
							got := collRun(t, fam.kind, algo, topoName, ranks, v.seed, v.elems)
							if fam.oracle == "" {
								continue // barrier: property checked inside collRun
							}
							if err := diffOutputs(got, oracle); err != nil {
								t.Errorf("%s/%s on %s differs from naive oracle: %v", fam.kind, algo, topoName, err)
							}
							if err := diffOutputs(got, want); err != nil {
								t.Errorf("%s/%s on %s differs from host expectation: %v", fam.kind, algo, topoName, err)
							}
						}
					}
				})
			}
		}
	}
}
