// Package scale is the property/scale test harness for the topology
// model and the collectives layer. It holds no library code — the
// tests are the package:
//
//   - TestScaleAllreduce runs the BENCH_9 scale workload (default 64
//     ranks; CI's smoke step passes -ranks=1000) twice and requires
//     bit-identical fingerprints, event counts and virtual end times,
//     with the reduced vector verified against a host-computed oracle.
//     The knobs are plain go-test flags:
//
//     go test ./internal/scale/ -ranks=1000 -seed=7 -topo=fattree -algo=ring
//
//   - TestCollectiveOracle is the property matrix: every collective
//     algorithm × every topology × rank counts {1,2,3,5,8} (64 joins
//     without -short) × three seed/size variants straddling the 1 KiB
//     eager threshold, each compared byte-for-byte against both the
//     naive-algorithm simulation and a host-computed expectation.
package scale
